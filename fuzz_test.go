package ipcp_test

import (
	"reflect"
	"testing"

	"ipcp"
	"ipcp/internal/suite"
	"ipcp/internal/summary"
)

// FuzzAnalyze drives the entire pipeline — front end, SSA, value
// numbering, jump functions, both solvers, complete propagation, the
// intraprocedural baseline — over arbitrary inputs. The invariant under
// fuzzing: no panics, and the flavor containment of §3.1 holds for
// every program that loads.
//
// Run with `go test -fuzz FuzzAnalyze -fuzztime 1m .` for a session.
func FuzzAnalyze(f *testing.F) {
	for _, name := range suite.Names() {
		f.Add(suite.Generate(name, 1).Source)
	}
	for seed := int64(1); seed <= 5; seed++ {
		f.Add(suite.Random(seed, 4).Source)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<15 {
			return
		}
		prog, err := ipcp.Load(src)
		if err != nil {
			return
		}
		prev := -1
		for _, flavor := range ipcp.JumpFunctions {
			rep := prog.Analyze(ipcp.Config{Jump: flavor, ReturnJumpFunctions: true, MOD: true})
			if rep.TotalSubstituted < prev {
				t.Fatalf("flavor containment violated at %v: %d < %d\n%s",
					flavor, rep.TotalSubstituted, prev, src)
			}
			prev = rep.TotalSubstituted
		}
		prog.Analyze(ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true, Complete: true})
		a := prog.Analyze(ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true})
		b := prog.Analyze(ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true, DependenceSolver: true})
		if a.TotalSubstituted != b.TotalSubstituted {
			t.Fatalf("solver disagreement: %d vs %d\n%s", a.TotalSubstituted, b.TotalSubstituted, src)
		}
		prog.AnalyzeIntraprocedural()
	})
}

// FuzzIncrementalEditChain drives the incremental engine — and its
// warm-started stage-3 re-solve — through fuzzer-chosen edit chains:
// pick a suite program and a configuration, then apply a chain of
// literal edits, threading the snapshot from run to run. At every step
// the warm incremental Report must be reflect.DeepEqual to a
// from-scratch Analyze of the same source; any divergence means the
// two-phase restart resurrected a stale lattice cell.
//
// Run with `go test -fuzz FuzzIncrementalEditChain -fuzztime 1m .` for
// a session; scripts/check.sh runs a short smoke.
func FuzzIncrementalEditChain(f *testing.F) {
	names := suite.Names()
	f.Add(0, 0, 1, 2, 3)
	f.Add(3, 2, 11, 0, 7)
	f.Add(7, 5, 5, 5, 5)
	f.Add(10, 6, -4, 100, 13)
	f.Fuzz(func(t *testing.T, progPick, cfgPick, e1, e2, e3 int) {
		if progPick < 0 {
			progPick = -progPick
		}
		if cfgPick < 0 {
			cfgPick = -cfgPick
		}
		src := suite.Generate(names[progPick%len(names)], 1).Source
		cfgs := incrementalConfigs()
		cfg := cfgs[cfgPick%len(cfgs)]
		cache := ipcp.NewMemoryCache()
		var snap *ipcp.Snapshot
		for _, pick := range []int{e1, e2, e3} {
			if next, ok := editProgram(t, src, pick); ok {
				src = next
			}
			prog, err := ipcp.Load(src)
			if err != nil {
				t.Fatalf("edited suite program no longer loads: %v\n%s", err, src)
			}
			warm, nextSnap := prog.AnalyzeIncremental(cfg, snap, cache)
			scratch := prog.Analyze(cfg)
			normalizeIncrementalReports(scratch, warm)
			if !reflect.DeepEqual(scratch, warm) {
				t.Fatalf("incremental report diverges from scratch under %+v\n%s", cfg, src)
			}
			snap = nextSnap
		}
	})
}

// FuzzSummaryCodec throws arbitrary bytes at the summary decoders. The
// invariant: decoding never panics, and any value that does decode
// survives a re-encode/re-decode round trip unchanged (what the
// content-addressed store assumes). Byte-level canonicity is not
// claimed: varint decoding tolerates padded forms.
//
// Run with `go test -fuzz FuzzSummaryCodec -fuzztime 1m .` for a session.
func FuzzSummaryCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(summary.EncodeShared(&summary.SharedSummary{Name: "P", SourceHash: "h"}))
	f.Add(summary.EncodeShared(&summary.SharedSummary{
		Name:       "Q",
		SourceHash: "h2",
		Callees:    []string{"P"},
		Returns: &summary.ReturnSummary{
			Result: &summary.Op{Name: "+", Args: []summary.Expr{
				&summary.Formal{Index: 0, Name: "N"}, &summary.Const{Val: 3}}},
			Formal: []summary.Expr{nil},
		},
		ModFormals: []bool{true},
		RefFormals: []bool{true},
		ModGlobals: []int{0},
		RefGlobals: []int{0, 1},
	}))
	f.Add(summary.EncodeFlavor(&summary.FlavorSummary{
		Name:       "Q",
		SourceHash: "h2",
		Sites:      []*summary.SiteSummary{{Callee: "P", Formal: []summary.Expr{&summary.Const{Val: 1}}}},
	}))
	f.Add(summary.EncodeSnapshot(&summary.Snapshot{
		ConfigKey:   "ck",
		GlobalsHash: "gh",
		Procs: map[string]summary.ProcStamp{
			"P": {SourceHash: "h", Key: summary.KeyOf("proc", "P"), SharedKey: summary.KeyOf("proc-shared", "P"), Callees: []string{"Q"}},
			"Q": {SourceHash: "h2", Key: summary.KeyOf("proc", "Q"), SharedKey: summary.KeyOf("proc-shared", "Q")},
		},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		if s, err := summary.DecodeShared(data); err == nil {
			s2, err := summary.DecodeShared(summary.EncodeShared(s))
			if err != nil || !reflect.DeepEqual(s, s2) {
				t.Fatalf("shared round trip broken on %x: %v", data, err)
			}
		}
		if s, err := summary.DecodeFlavor(data); err == nil {
			s2, err := summary.DecodeFlavor(summary.EncodeFlavor(s))
			if err != nil || !reflect.DeepEqual(s, s2) {
				t.Fatalf("flavor round trip broken on %x: %v", data, err)
			}
		}
		if s, err := summary.DecodeSnapshot(data); err == nil {
			s2, err := summary.DecodeSnapshot(summary.EncodeSnapshot(s))
			if err != nil || !reflect.DeepEqual(s, s2) {
				t.Fatalf("snapshot round trip broken on %x: %v", data, err)
			}
		}
	})
}

// FuzzSnapshotDelta throws arbitrary bytes at the snapshot-delta
// decoder: no panics, any delta that decodes round-trips, and applying
// a decoded delta to an arbitrary parent never panics — it either
// produces a snapshot or rejects with an error (the chain loader's
// torn-tail tolerance depends on that). V3-era frames and the other
// record kinds must be rejected, never misread as deltas.
//
// Run with `go test -fuzz FuzzSnapshotDelta -fuzztime 1m .` for a session.
func FuzzSnapshotDelta(f *testing.F) {
	parent := &summary.Snapshot{
		ConfigKey:   "ck",
		GlobalsHash: "gh",
		Procs: map[string]summary.ProcStamp{
			"P": {SourceHash: "h", Key: summary.KeyOf("proc", "P"), SharedKey: summary.KeyOf("proc-shared", "P")},
		},
	}
	f.Add([]byte{})
	f.Add(summary.EncodeSnapshotDelta(&summary.SnapshotDelta{ConfigKey: "ck", GlobalsHash: "gh"}))
	f.Add(summary.EncodeSnapshotDelta(&summary.SnapshotDelta{
		ConfigKey:   "ck",
		GlobalsHash: "gh2",
		Parent:      summary.SnapshotContentKey(parent),
		Updated: map[string]summary.ProcStamp{
			"Q": {SourceHash: "h2", Key: summary.KeyOf("proc", "Q"), SharedKey: summary.KeyOf("proc-shared", "Q")},
		},
		Removed: []string{"P"},
	}))
	// Cross-kind confusion seeds: a full snapshot and a shared record
	// must not decode as deltas.
	f.Add(summary.EncodeSnapshot(parent))
	f.Add(summary.EncodeShared(&summary.SharedSummary{Name: "P", SourceHash: "h"}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		d, err := summary.DecodeSnapshotDelta(data)
		if err != nil {
			return
		}
		d2, err := summary.DecodeSnapshotDelta(summary.EncodeSnapshotDelta(d))
		if err != nil || !reflect.DeepEqual(d, d2) {
			t.Fatalf("delta round trip broken on %x: %v", data, err)
		}
		// Applying any decoded delta must never panic, whatever parent.
		if out, err := summary.ApplySnapshotDelta(parent, d); err == nil {
			if out == nil {
				t.Fatal("ApplySnapshotDelta returned nil snapshot without error")
			}
		}
		if _, err := summary.ApplySnapshotDelta(nil, d); err == nil {
			t.Fatal("ApplySnapshotDelta accepted a nil parent")
		}
	})
}
