package ipcp_test

import (
	"testing"

	"ipcp"
	"ipcp/internal/suite"
)

// FuzzAnalyze drives the entire pipeline — front end, SSA, value
// numbering, jump functions, both solvers, complete propagation, the
// intraprocedural baseline — over arbitrary inputs. The invariant under
// fuzzing: no panics, and the flavor containment of §3.1 holds for
// every program that loads.
//
// Run with `go test -fuzz FuzzAnalyze -fuzztime 1m .` for a session.
func FuzzAnalyze(f *testing.F) {
	for _, name := range suite.Names() {
		f.Add(suite.Generate(name, 1).Source)
	}
	for seed := int64(1); seed <= 5; seed++ {
		f.Add(suite.Random(seed, 4).Source)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<15 {
			return
		}
		prog, err := ipcp.Load(src)
		if err != nil {
			return
		}
		prev := -1
		for _, flavor := range ipcp.JumpFunctions {
			rep := prog.Analyze(ipcp.Config{Jump: flavor, ReturnJumpFunctions: true, MOD: true})
			if rep.TotalSubstituted < prev {
				t.Fatalf("flavor containment violated at %v: %d < %d\n%s",
					flavor, rep.TotalSubstituted, prev, src)
			}
			prev = rep.TotalSubstituted
		}
		prog.Analyze(ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true, Complete: true})
		a := prog.Analyze(ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true})
		b := prog.Analyze(ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true, DependenceSolver: true})
		if a.TotalSubstituted != b.TotalSubstituted {
			t.Fatalf("solver disagreement: %d vs %d\n%s", a.TotalSubstituted, b.TotalSubstituted, src)
		}
		prog.AnalyzeIntraprocedural()
	})
}
