package ipcp_test

import (
	"fmt"
	"testing"

	"ipcp"
	"ipcp/internal/core/lattice"
	"ipcp/internal/report"
	"ipcp/internal/suite"
)

// The benchmarks below regenerate every exhibit in the paper's
// evaluation section; `go test -bench .` is the full harness. Each
// BenchmarkTableN measures the cost of producing that table and, on the
// first iteration, prints it — so the benchmark run doubles as the
// results run recorded in EXPERIMENTS.md.

func loadSuite(b *testing.B) []*report.Loaded {
	b.Helper()
	var ls []*report.Loaded
	for _, p := range suite.Programs() {
		prog, err := ipcp.Load(p.Source)
		if err != nil {
			b.Fatalf("%s: %v", p.Name, err)
		}
		ls = append(ls, report.NewLoaded(p, prog))
	}
	return ls
}

// BenchmarkFigure1 measures the lattice meet operation Figure 1 defines
// — the innermost step of the whole framework.
func BenchmarkFigure1LatticeMeet(b *testing.B) {
	vals := []lattice.Value{
		lattice.Top, lattice.Bottom,
		lattice.OfInt(1), lattice.OfInt(2), lattice.OfBool(true),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := lattice.Top
		for _, w := range vals {
			v = lattice.Meet(v, w)
		}
		if !v.IsBottom() {
			b.Fatal("meet of conflicting constants must be bottom")
		}
	}
}

// BenchmarkTable1 regenerates the program-characteristics table.
func BenchmarkTable1(b *testing.B) {
	progs := loadSuite(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Table1(progs).Render()
	}
	b.StopTimer()
	if b.N > 0 {
		b.Logf("\n%s", out)
	}
}

// BenchmarkTable2 regenerates the jump-function comparison (six
// analysis configurations over twelve programs).
func BenchmarkTable2(b *testing.B) {
	progs := loadSuite(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Table2(progs).Render()
	}
	b.StopTimer()
	if b.N > 0 {
		b.Logf("\n%s", out)
	}
}

// BenchmarkTable3 regenerates the MOD / complete-propagation /
// intraprocedural comparison.
func BenchmarkTable3(b *testing.B) {
	progs := loadSuite(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = report.Table3(progs).Render()
	}
	b.StopTimer()
	if b.N > 0 {
		b.Logf("\n%s", out)
	}
}

// BenchmarkJumpFunction measures one full analysis of the entire suite
// per flavor: the §3.1.5 compile-time comparison. The paper predicts the
// literal flavor is cheapest to construct, the polynomial most
// expensive, with pass-through close to the simpler ones in practice.
func BenchmarkJumpFunction(b *testing.B) {
	progs := loadSuite(b)
	for _, flavor := range ipcp.JumpFunctions {
		b.Run(flavor.String(), func(b *testing.B) {
			cfg := ipcp.Config{Jump: flavor, ReturnJumpFunctions: true, MOD: true}
			b.ReportAllocs()
			total := 0
			for i := 0; i < b.N; i++ {
				total = 0
				for _, l := range progs {
					total += l.Prog().Analyze(cfg).TotalSubstituted
				}
			}
			if total == 0 {
				b.Fatal("no constants found")
			}
		})
	}
}

// BenchmarkConfiguration measures the other axes of the study: return
// jump functions, MOD, and complete propagation.
func BenchmarkConfiguration(b *testing.B) {
	progs := loadSuite(b)
	cfgs := []struct {
		name string
		cfg  ipcp.Config
	}{
		{"baseline", ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true}},
		{"no-return-jfs", ipcp.Config{Jump: ipcp.PassThrough, MOD: true}},
		{"no-mod", ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true}},
		{"complete", ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true, Complete: true}},
		{"dependence-solver", ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true, DependenceSolver: true}},
	}
	for _, c := range cfgs {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, l := range progs {
					l.Prog().Analyze(c.cfg)
				}
			}
		})
	}
}

// BenchmarkIntraproceduralBaseline measures Table 3's column 4.
func BenchmarkIntraproceduralBaseline(b *testing.B) {
	progs := loadSuite(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, l := range progs {
			l.Prog().AnalyzeIntraprocedural()
		}
	}
}

// BenchmarkScale measures how analysis time grows with program size
// (the ocean generator scales linearly in procedures and call sites).
func BenchmarkScale(b *testing.B) {
	for _, scale := range []int{1, 2, 4, 8, 16} {
		p := suite.Generate("ocean", scale)
		prog, err := ipcp.Load(p.Source)
		if err != nil {
			b.Fatal(err)
		}
		st := prog.Stats()
		b.Run(fmt.Sprintf("scale%d-lines%d", scale, st.Lines), func(b *testing.B) {
			cfg := ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				prog.Analyze(cfg)
			}
		})
	}
}

// BenchmarkLoad measures the front end (lex, parse, sema) alone.
func BenchmarkLoad(b *testing.B) {
	src := suite.Generate("snasa7", suite.DefaultScale).Source
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ipcp.Load(src); err != nil {
			b.Fatal(err)
		}
	}
}
