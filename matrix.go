package ipcp

import (
	"context"

	"ipcp/internal/core"
)

// This file implements the configuration-matrix runner: the study
// analyzes every program under 16+ configurations (4 jump-function
// flavors × MOD × return jump functions, plus complete propagation and
// solver variants), and those runs are independent. AnalyzeMatrix
// executes them on a bounded worker pool, sharing one parsed and
// semantically analyzed program and one IR lowering across all
// configurations; each worker analyzes its own deep clone of the IR, so
// nothing mutable is shared. Results are positionally ordered and
// byte-identical to calling Analyze once per configuration — the
// determinism test suite asserts exactly that.

// AnalyzeMatrix analyzes the program under every configuration, in
// parallel, and returns the reports in configuration order. workers
// bounds the configuration-level pool (0 = one per CPU); the
// per-configuration pipelines additionally honor their own
// Config.Workers, so a matrix of sequential pipelines
// (Config.Workers == 1) on a wide pool is the usual sweet spot.
func (p *Program) AnalyzeMatrix(cfgs []Config, workers int) []*Report {
	icfgs := make([]core.Config, len(cfgs))
	for i, c := range cfgs {
		icfgs[i] = c.internal()
	}
	results := core.AnalyzeMatrix(p.sp, icfgs, workers)
	reps := make([]*Report, len(results))
	for i, res := range results {
		reps[i] = buildReport(cfgs[i], res)
	}
	return reps
}

// AnalyzeMatrix is the package-level form of Program.AnalyzeMatrix with
// a CPU-sized configuration pool.
func AnalyzeMatrix(p *Program, cfgs []Config) []*Report {
	return p.AnalyzeMatrix(cfgs, 0)
}

// AnalyzeMatrixContext is AnalyzeMatrix under a context: every
// configuration's pipeline polls ctx, and if it is canceled or times
// out the whole matrix is abandoned with an error wrapping ErrCanceled.
func (p *Program) AnalyzeMatrixContext(ctx context.Context, cfgs []Config, workers int) ([]*Report, error) {
	hook := cancelHook(ctx)
	icfgs := make([]core.Config, len(cfgs))
	for i, c := range cfgs {
		icfgs[i] = c.internal()
		icfgs[i].Cancel = hook
	}
	results, err := core.AnalyzeMatrixErr(p.sp, icfgs, workers)
	if err != nil {
		return nil, err
	}
	reps := make([]*Report, len(results))
	for i, res := range results {
		reps[i] = buildReport(cfgs[i], res)
	}
	return reps, nil
}

// FullMatrix returns the study's full configuration matrix: every
// forward jump-function flavor crossed with the MOD and
// return-jump-function toggles — 16 configurations, the sweep behind
// the paper's Tables 2 and 3. Configurations come out in a fixed order:
// flavors cheapest-first, and for each flavor the four toggle
// combinations (neither, return JFs, MOD, both).
func FullMatrix() []Config {
	var cfgs []Config
	for _, j := range JumpFunctions {
		for _, mod := range []bool{false, true} {
			for _, ret := range []bool{false, true} {
				cfgs = append(cfgs, Config{Jump: j, MOD: mod, ReturnJumpFunctions: ret})
			}
		}
	}
	return cfgs
}
