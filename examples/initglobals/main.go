// Initglobals: the paper's "ocean" effect (§4.2). When a program starts
// with an initialization routine that assigns constants to COMMON
// variables, those constants are invisible to forward jump functions
// alone — the assignments happen inside the callee. Return jump
// functions model the transmission of constants *back* to the call site,
// after which every later call site sees them.
//
// On ocean this tripled the number of constants the analyzer found; this
// example reproduces the mechanism on a miniature of the same structure,
// including the dead debug code that complete propagation removes.
package main

import (
	"fmt"
	"log"

	"ipcp"
)

const source = `
PROGRAM MINIOC
  COMMON /GRID/ NX, NY, NSTEPS
  INTEGER NX, NY, NSTEPS
  CALL INIT(0)
  CALL DIFFUSE
  CALL ADVECT
  CALL OUTPUT
END

SUBROUTINE INIT(IDEBUG)
  COMMON /GRID/ NX, NY, NSTEPS
  INTEGER NX, NY, NSTEPS, IDEBUG
  NX = 128
  NY = 64
  NSTEPS = 500
  IF (IDEBUG .NE. 0) THEN
    READ NSTEPS
  ENDIF
  RETURN
END

SUBROUTINE DIFFUSE
  COMMON /GRID/ NX, NY, NSTEPS
  INTEGER NX, NY, NSTEPS, I, J, S
  S = 0
  DO I = 1, NX
    DO J = 1, NY
      S = S + I + J
    ENDDO
  ENDDO
  RETURN
END

SUBROUTINE ADVECT
  COMMON /GRID/ NX, NY, NSTEPS
  INTEGER NX, NY, NSTEPS, T, S
  S = 0
  DO T = 1, NSTEPS
    S = S + NX*NY
  ENDDO
  RETURN
END

SUBROUTINE OUTPUT
  COMMON /GRID/ NX, NY, NSTEPS
  INTEGER NX, NY, NSTEPS
  WRITE(*,*) NX, NY, NSTEPS
  RETURN
END
`

func show(title string, rep *ipcp.Report) {
	fmt.Printf("%s: %d constants, %d references substituted\n",
		title, rep.TotalConstants, rep.TotalSubstituted)
	for _, name := range []string{"DIFFUSE", "ADVECT", "OUTPUT"} {
		p := rep.Procedure(name)
		fmt.Printf("  %-8s:", name)
		if p == nil || len(p.Constants) == 0 {
			fmt.Println(" (nothing known)")
			continue
		}
		for _, c := range p.Constants {
			fmt.Printf(" %s=%d", c.Name, c.Value)
		}
		fmt.Println()
	}
}

func main() {
	prog, err := ipcp.Load(source)
	if err != nil {
		log.Fatal(err)
	}

	without := prog.Analyze(ipcp.Config{
		Jump: ipcp.Polynomial, ReturnJumpFunctions: false, MOD: true,
	})
	show("Without return jump functions", without)
	fmt.Println()

	with := prog.Analyze(ipcp.Config{
		Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true,
	})
	show("With return jump functions   ", with)
	fmt.Println()

	// NSTEPS merges the constant 500 with a possible debug READ, so it
	// stays unknown — until complete propagation proves the debug arm
	// dead (IDEBUG is the interprocedural constant 0) and removes it.
	complete := prog.Analyze(ipcp.Config{
		Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true, Complete: true,
	})
	show("Complete propagation         ", complete)

	fmt.Println()
	fmt.Printf("Return jump functions: %d -> %d substitutions (the paper saw 62 -> 194 on ocean).\n",
		without.TotalSubstituted, with.TotalSubstituted)
	fmt.Printf("Dead-code elimination rounds used: %d (the paper needed one).\n", complete.DCERounds)
}
