// Quickstart: load a small MiniFortran program, run interprocedural
// constant propagation with pass-through jump functions (the paper's
// recommended configuration), and print the CONSTANTS sets.
package main

import (
	"fmt"
	"log"

	"ipcp"
)

const source = `
PROGRAM DRIVER
  INTEGER N, TOL
  N = 1000
  TOL = 5
  CALL SOLVE(N, TOL)
  CALL REPORT(N)
END

SUBROUTINE SOLVE(NPTS, ITOL)
  INTEGER NPTS, ITOL, I, ACC
  ACC = 0
  DO I = 1, NPTS
    ACC = ACC + I
    IF (ACC .GT. ITOL * 100) ACC = 0
  ENDDO
  CALL SMOOTH(NPTS)
  RETURN
END

SUBROUTINE SMOOTH(M)
  INTEGER M, J, S
  S = 0
  DO J = 2, M - 1
    S = S + J
  ENDDO
  RETURN
END

SUBROUTINE REPORT(NPTS)
  INTEGER NPTS
  WRITE(*,*) 'points:', NPTS
  RETURN
END
`

func main() {
	prog, err := ipcp.Load(source)
	if err != nil {
		log.Fatal(err)
	}

	report := prog.Analyze(ipcp.Config{
		Jump:                ipcp.PassThrough,
		ReturnJumpFunctions: true,
		MOD:                 true,
	})

	fmt.Println("Interprocedural constants (pass-through jump functions):")
	for _, p := range report.Procedures {
		for _, c := range p.Constants {
			fmt.Printf("  on entry to %-8s %-6s = %d\n", p.Name+",", c.Name, c.Value)
		}
	}
	fmt.Printf("\n%d constants; %d references would be substituted.\n",
		report.TotalConstants, report.TotalSubstituted)

	// NPTS reaches SMOOTH only because the pass-through jump function
	// carries SOLVE's formal through to the inner call; the simpler
	// flavors stop one level deep.
	lit := prog.Analyze(ipcp.Config{Jump: ipcp.Literal, ReturnJumpFunctions: true, MOD: true})
	if _, found := lit.ConstantValue("SMOOTH", "M"); !found {
		fmt.Println("\nThe literal flavor misses SMOOTH's bound — jump-function choice matters.")
	}
}
