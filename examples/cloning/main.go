// Cloning: the downstream use of interprocedural constants the paper
// highlights in §1 and §5. Metzger & Stroud's CONVEX Application
// Compiler used CONSTANTS sets to drive goal-directed procedure cloning:
// when call sites pass conflicting constants, the lattice meet destroys
// all of them, and cloning the procedure per incoming constant vector
// gets them back.
//
// This example models a solver configured at two resolutions. The plain
// propagation proves nothing about GRID's parameters; cloning produces
// GRID and GRID_C1, each with a fully constant configuration.
package main

import (
	"fmt"
	"log"

	"ipcp"
)

const source = `
PROGRAM MULTIG
  CALL GRID(129, 4)
  CALL GRID(257, 6)
END

SUBROUTINE GRID(NPTS, NLEVEL)
  INTEGER NPTS, NLEVEL, L, W
  W = 0
  DO L = 1, NLEVEL
    CALL RELAX(NPTS, L)
  ENDDO
  W = NPTS - 1
  RETURN
END

SUBROUTINE RELAX(N, LEV)
  INTEGER N, LEV, I, S
  S = 0
  DO I = 2, N - 1
    S = S + I*LEV
  ENDDO
  RETURN
END
`

func main() {
	prog, err := ipcp.Load(source)
	if err != nil {
		log.Fatal(err)
	}
	cfg := ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true}

	out := prog.AnalyzeWithCloning(cfg, ipcp.CloneOptions{})

	fmt.Println("Before cloning:")
	printConstants(out.Base)
	fmt.Println()
	fmt.Printf("After %d round(s) of cloning (%d clones):\n", out.Rounds, out.TotalClones)
	printConstants(out.Final)

	fmt.Println()
	fmt.Printf("Substituted references: %d -> %d\n",
		out.Base.TotalSubstituted, out.Final.TotalSubstituted)
	fmt.Println("Each GRID version now has constant NPTS and NLEVEL — and the")
	fmt.Println("cascade specialized RELAX per grid size on the second round,")
	fmt.Println("exactly the effect Metzger & Stroud reported.")
}

func printConstants(rep *ipcp.Report) {
	for _, p := range rep.Procedures {
		if len(p.Constants) == 0 {
			continue
		}
		fmt.Printf("  %-10s", p.Name)
		for _, c := range p.Constants {
			fmt.Printf(" %s=%d", c.Name, c.Value)
		}
		fmt.Println()
	}
	if rep.TotalConstants == 0 {
		fmt.Println("  (no constants — every call-site pair conflicts)")
	}
}
