// Modmatters: Table 3's central lesson — interprocedural MOD
// information is what lets value numbering carry constants across call
// sites. Without it, the analyzer must assume every call clobbers every
// by-reference binding and every COMMON variable, and "the presence of
// any call in a routine eliminated potential constants along paths
// leaving the call site" (§4.2).
//
// The example program is harmless at runtime: HELPER never writes
// anything. Only the MOD summary can prove that.
package main

import (
	"fmt"
	"log"

	"ipcp"
)

const source = `
PROGRAM BANDED
  COMMON /CFG/ NBAND
  INTEGER NBAND, N
  NBAND = 7
  N = 100
  CALL FACTOR(N)
  CALL BACKSUB(N)
END

SUBROUTINE FACTOR(N)
  COMMON /CFG/ NBAND
  INTEGER NBAND, N, I, S
  S = 0
  CALL HELPER(N)
  DO I = 1, N
    S = S + NBAND
  ENDDO
  RETURN
END

SUBROUTINE BACKSUB(N)
  COMMON /CFG/ NBAND
  INTEGER NBAND, N, W
  W = N + NBAND
  RETURN
END

SUBROUTINE HELPER(LEN)
  INTEGER LEN, T
  T = LEN * 2
  RETURN
END
`

func main() {
	prog, err := ipcp.Load(source)
	if err != nil {
		log.Fatal(err)
	}

	withMOD := prog.Analyze(ipcp.Config{
		Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true,
	})
	withoutMOD := prog.Analyze(ipcp.Config{
		Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: false,
	})

	fmt.Println("What each configuration can prove about FACTOR and BACKSUB:")
	fmt.Println()
	for _, tc := range []struct {
		title string
		rep   *ipcp.Report
	}{
		{"with MOD summaries   ", withMOD},
		{"worst-case (no MOD)  ", withoutMOD},
	} {
		fmt.Printf("%s  substituted=%d\n", tc.title, tc.rep.TotalSubstituted)
		for _, proc := range []string{"FACTOR", "BACKSUB"} {
			n, nOK := tc.rep.ConstantValue(proc, "N")
			g, gOK := tc.rep.ConstantValue(proc, "CFG.NBAND")
			fmt.Printf("    %-8s N=%s  NBAND=%s\n", proc, render(n, nOK), render(g, gOK))
		}
		fmt.Println()
	}

	fmt.Println("Without MOD, the analyzer must assume CALL FACTOR(N) may have")
	fmt.Println("rewritten both N and NBAND before BACKSUB runs, and that CALL")
	fmt.Println("HELPER(N) rewrote N before FACTOR's loop — so the loop bound and")
	fmt.Println("the band width silently stop being constants. The paper measured")
	fmt.Println("this effect at up to 98% of all constants lost (simple: 183 -> 2).")
}

func render(v int64, ok bool) string {
	if !ok {
		return "unknown"
	}
	return fmt.Sprintf("%d", v)
}
