// Loopbounds: the paper's motivating scenario (§1). Eigenmann & Blume
// observed that interprocedural constants are often used as loop bounds,
// and knowing them improves both dependence information and the
// profitability analysis of automatic parallelization.
//
// This example models a small stencil code whose grid dimensions are
// configured once at the top of the program and passed down a call
// chain. It compares how far each jump-function flavor propagates the
// bounds, printing the per-procedure CONSTANTS sets a parallelizer
// would consume.
package main

import (
	"fmt"
	"log"

	"ipcp"
)

const source = `
PROGRAM STENCIL
  INTEGER NX, NY
  NX = 512
  NY = 256
  CALL OUTER(NX, NY)
END

SUBROUTINE OUTER(N, M)
  INTEGER N, M, I
  DO I = 1, N
    CALL ROW(M, I)
  ENDDO
  RETURN
END

SUBROUTINE ROW(LEN, IDX)
  INTEGER LEN, IDX, J, S
  S = 0
  DO J = 1, LEN
    S = S + J * IDX
  ENDDO
  CALL TAIL(LEN)
  RETURN
END

SUBROUTINE TAIL(LEN)
  INTEGER LEN, J, S
  S = 0
  DO J = LEN - 2, LEN
    S = S + J
  ENDDO
  RETURN
END
`

func main() {
	prog, err := ipcp.Load(source)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Loop-bound constants discovered per jump-function flavor:")
	fmt.Println("(a parallelizing compiler needs these to compute trip counts)")
	fmt.Println()

	procs := []string{"OUTER", "ROW", "TAIL"}
	bounds := map[string]string{"OUTER": "N", "ROW": "LEN", "TAIL": "LEN"}

	fmt.Printf("%-16s", "flavor")
	for _, p := range procs {
		fmt.Printf("  %8s", p)
	}
	fmt.Println()
	for _, flavor := range ipcp.JumpFunctions {
		rep := prog.Analyze(ipcp.Config{
			Jump:                flavor,
			ReturnJumpFunctions: true,
			MOD:                 true,
		})
		fmt.Printf("%-16s", flavor)
		for _, p := range procs {
			if v, ok := rep.ConstantValue(p, bounds[p]); ok {
				fmt.Printf("  %8d", v)
			} else {
				fmt.Printf("  %8s", "unknown")
			}
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("The intraprocedural flavor reaches OUTER (one call edge); only the")
	fmt.Println("pass-through and polynomial flavors reach ROW and TAIL, where the")
	fmt.Println("actual parallel loops live — the paper's argument for pass-through")
	fmt.Println("as the most cost-effective choice.")

	// IDX, by contrast, varies with the loop: no flavor may claim it.
	rep := prog.Analyze(ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true})
	if _, ok := rep.ConstantValue("ROW", "IDX"); ok {
		log.Fatal("BUG: loop-varying IDX reported constant")
	}
	fmt.Println()
	fmt.Println("ROW's IDX varies per iteration and is correctly reported unknown.")

	// The §4 classification: how many of the substituted references sit
	// in loop bounds and conditions (the ones a dependence analyzer and
	// a parallelizer actually consume).
	fmt.Printf("\nOf %d substituted references, %d are loop bounds or branch conditions.\n",
		rep.TotalSubstituted, rep.TotalControlFlowSubstituted)
}
