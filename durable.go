package ipcp

import (
	"fmt"

	"ipcp/internal/summary"
	"ipcp/internal/wal"
)

// This file is the public surface of crash durability: a disk-backed
// cache whose accepted writes survive SIGKILL via a write-ahead
// journal, and snapshot persistence that appends small deltas instead
// of rewriting the full index on every edit. See DESIGN.md, "Crash
// durability".

// DurableCacheOptions configures NewDurableCache.
type DurableCacheOptions struct {
	// Dir is the cache directory (required). It holds the
	// content-addressed blobs, the snapshot files, and the journal's
	// wal-*.wal segments side by side.
	Dir string

	// RemoteURL, when non-empty, adds a remote blob-service tier behind
	// the disk tier (the library form of -remote-cache).
	RemoteURL string

	// MemEntries bounds the in-memory front tier; 0 means unbounded.
	MemEntries int

	// SyncEveryAppend upgrades the journal to fsync each record before
	// the put is acknowledged — durable against power loss, not just
	// process death, at a large throughput cost. The default syncs on
	// segment rotation and close, which loses nothing to SIGKILL.
	SyncEveryAppend bool
}

// WALReplayStats counts what boot-time journal recovery did.
type WALReplayStats struct {
	Replayed int // records re-put into the cache
	Skipped  int // records whose key was already present
	Corrupt  int // torn or corrupt records dropped
}

// NewDurableCache opens a crash-durable tiered cache: memory in front
// of disk (in front of a remote when RemoteURL is set), with every
// accepted put journaled to a write-ahead log before it is
// acknowledged. Journal records retire only once the slower tiers have
// confirmed the write-back, so a crash — SIGKILL included — at any
// point loses no acknowledged put: the next NewDurableCache on the
// same directory replays the survivors, and the returned stats say how
// many. Callers should Flush (and check FlushErr, or just Close) at
// shutdown; an unclean exit merely means the next open replays more.
func NewDurableCache(opts DurableCacheOptions) (*SummaryCache, WALReplayStats, error) {
	var rs WALReplayStats
	if opts.Dir == "" {
		return nil, rs, fmt.Errorf("ipcp: NewDurableCache needs a directory")
	}
	disk, err := summary.NewDiskStore(opts.Dir)
	if err != nil {
		return nil, rs, fmt.Errorf("ipcp: %w", err)
	}
	tiers := []summary.Store{summary.NewMemStore(opts.MemEntries), disk}
	if opts.RemoteURL != "" {
		tiers = append(tiers, summary.NewRemoteStore(opts.RemoteURL))
	}
	sync := wal.SyncRotate
	if opts.SyncEveryAppend {
		sync = wal.SyncAlways
	}
	j, err := wal.Open(opts.Dir, wal.Options{Sync: sync})
	if err != nil {
		return nil, rs, fmt.Errorf("ipcp: %w", err)
	}
	store := summary.NewDurableTieredStore(j, tiers...)
	srs, err := summary.RecoverJournal(j, store)
	if err != nil {
		// Replay aborted: the journal keeps its segments for the next
		// boot, and this one does not open.
		//lint:ignore codecerr recovery already failed; Close is best-effort cleanup and the replay error is the one reported
		j.Close()
		return nil, rs, fmt.Errorf("ipcp: wal recovery: %w", err)
	}
	rs = WALReplayStats{Replayed: srs.Replayed, Skipped: srs.Skipped, Corrupt: srs.Corrupt}
	return &SummaryCache{store: store}, rs, nil
}

// FlushErr returns the first error any of the cache's asynchronous
// operations — background write-backs, journal appends — has hit, or
// nil. Put cannot return those errors (they happen after it
// acknowledged), so shutdown paths check here instead of silently
// dropping them. Non-tiered caches have no asynchronous work and
// always return nil.
func (c *SummaryCache) FlushErr() error {
	if ts, ok := c.store.(*summary.TieredStore); ok {
		return ts.FlushErr()
	}
	return nil
}

// Close flushes pending write-backs, retires the journal segments
// whose write-backs confirmed, closes the journal, and returns
// FlushErr — so a logged Close surfaces any write the shutdown is
// abandoning. Unconfirmed journal records stay on disk for the next
// open's recovery. Close is a no-op (nil) on caches without
// asynchronous work.
func (c *SummaryCache) Close() error {
	if ts, ok := c.store.(*summary.TieredStore); ok {
		return ts.Close()
	}
	return nil
}

// SnapshotChainStats reports one SaveChain write: how many frames the
// chain file now has, whether this save rewrote it from scratch, and
// the delta-versus-full byte sizes.
type SnapshotChainStats = summary.ChainStats

// SaveChain persists the snapshot to a delta chain at path: when the
// file already holds a snapshot of the same configuration lineage,
// only the stamps this run changed are appended (a frame typically a
// few percent of the full encoding for a one-procedure edit); a full
// rewrite happens on the first save, after enough accumulated deltas,
// or when the delta would not be worth it. LoadSnapshot reads either
// form. Save remains the single-frame legacy writer.
func (s *Snapshot) SaveChain(path string) (SnapshotChainStats, error) {
	st, err := summary.SaveSnapshotChain(path, s.snap, summary.DeltaPolicy{})
	if err != nil {
		return st, fmt.Errorf("ipcp: %w", err)
	}
	return st, nil
}
