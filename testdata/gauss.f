* Dense Gaussian elimination on a fixed-size system, linpack style:
* the dimension parameters are computed once in the driver and passed
* down the factor/solve call chain as pass-through formals.
PROGRAM GAUSS
  INTEGER N, LDA
  REAL A(64, 64), B(64)
  INTEGER I, J
  N = 64
  LDA = 64
  DO I = 1, N
    DO J = 1, N
      A(I, J) = 1.0
    ENDDO
    A(I, I) = 10.0
    B(I) = 2.0
  ENDDO
  CALL GEFA(A, LDA, N)
  CALL GESL(A, LDA, N, B)
  WRITE(*,*) 'x(1) =', B(1)
END

SUBROUTINE GEFA(A, LDA, N)
  INTEGER LDA, N
  REAL A(64, 64), PIV
  INTEGER K, I, J
  DO K = 1, N - 1
    PIV = A(K, K)
    IF (PIV .EQ. 0.0) THEN
      CALL FIXUP(A, LDA, K)
      PIV = A(K, K)
    ENDIF
    DO I = K + 1, N
      A(I, K) = A(I, K) / PIV
      DO J = K + 1, N
        A(I, J) = A(I, J) - A(I, K)*A(K, J)
      ENDDO
    ENDDO
  ENDDO
  RETURN
END

SUBROUTINE FIXUP(A, LDA, K)
  INTEGER LDA, K
  REAL A(64, 64)
  A(K, K) = 1.0
  RETURN
END

SUBROUTINE GESL(A, LDA, N, B)
  INTEGER LDA, N
  REAL A(64, 64), B(64), S
  INTEGER K, I
  DO K = 1, N - 1
    DO I = K + 1, N
      B(I) = B(I) - A(I, K)*B(K)
    ENDDO
  ENDDO
  DO 30 K = N, 1, -1
    B(K) = B(K) / A(K, K)
    DO 20 I = 1, K - 1
      B(I) = B(I) - A(I, K)*B(K)
20  CONTINUE
30 CONTINUE
  S = B(1)
  RETURN
END
