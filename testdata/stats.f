* Running statistics over synthetic data: functions, intrinsics,
* DO WHILE, PARAMETER constants, and DATA initialization.
PROGRAM STATS
  PARAMETER (NOBS = 240, NBIN = 12)
  INTEGER DATA1(240)
  INTEGER I, LO, HI, NBAD
  DATA NBAD /0/
  DO I = 1, NOBS
    DATA1(I) = MOD(I*I, 97) - 48
  ENDDO
  LO = IMIN(DATA1, NOBS)
  HI = IMAX(DATA1, NOBS)
  CALL HIST(DATA1, NOBS, NBIN, LO, HI)
  I = 1
  DO WHILE (I .LE. NOBS)
    IF (DATA1(I) .LT. LO .OR. DATA1(I) .GT. HI) NBAD = NBAD + 1
    I = I + 1
  ENDDO
  WRITE(*,*) 'range', LO, HI, 'bad', NBAD
END

INTEGER FUNCTION IMIN(V, N)
  INTEGER V(240), N, I
  IMIN = V(1)
  DO I = 2, N
    IMIN = MIN(IMIN, V(I))
  ENDDO
  RETURN
END

INTEGER FUNCTION IMAX(V, N)
  INTEGER V(240), N, I
  IMAX = V(1)
  DO I = 2, N
    IMAX = MAX(IMAX, V(I))
  ENDDO
  RETURN
END

SUBROUTINE HIST(V, N, NB, LO, HI)
  INTEGER V(240), N, NB, LO, HI
  INTEGER COUNTS(12)
  INTEGER I, W, B
  DO I = 1, NB
    COUNTS(I) = 0
  ENDDO
  W = MAX(1, (HI - LO + NB) / NB)
  DO I = 1, N
    B = (V(I) - LO) / W + 1
    B = MIN(MAX(B, 1), NB)
    COUNTS(B) = COUNTS(B) + 1
  ENDDO
  DO I = 1, NB
    WRITE(*,*) I, COUNTS(I)
  ENDDO
  RETURN
END
