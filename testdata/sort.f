* Sorting with FORTRAN-66 flavored control flow: GOTOs, labels, and a
* logical-IF loop, plus an integer function. Exercises the irregular
* CFG paths of the front end.
PROGRAM SORTER
  INTEGER KEYS(100)
  INTEGER N, I, NSWAP
  N = 100
  DO I = 1, N
    KEYS(I) = MOD(I*37 + 11, 100)
  ENDDO
  CALL BUBBLE(KEYS, N, NSWAP)
  WRITE(*,*) 'swaps:', NSWAP
  I = CHKSUM(KEYS, N)
  WRITE(*,*) 'checksum:', I
END

SUBROUTINE BUBBLE(KEYS, N, NSWAP)
  INTEGER KEYS(100), N, NSWAP
  INTEGER I, T, LIMIT
  LOGICAL AGAIN
  NSWAP = 0
  LIMIT = N - 1
10 CONTINUE
  AGAIN = .FALSE.
  DO I = 1, LIMIT
    IF (KEYS(I) .LE. KEYS(I+1)) GOTO 20
    T = KEYS(I)
    KEYS(I) = KEYS(I+1)
    KEYS(I+1) = T
    NSWAP = NSWAP + 1
    AGAIN = .TRUE.
20  CONTINUE
  ENDDO
  IF (AGAIN) GOTO 10
  RETURN
END

INTEGER FUNCTION CHKSUM(KEYS, N)
  INTEGER KEYS(100), N
  INTEGER I, ACC
  ACC = 0
  DO I = 1, N
    ACC = ACC + KEYS(I)*I
  ENDDO
  CHKSUM = MOD(IABS(ACC), 9973)
  RETURN
END
