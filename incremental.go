package ipcp

import (
	"context"
	"encoding/hex"
	"fmt"
	"os"

	"ipcp/internal/core"
	"ipcp/internal/incr"
	"ipcp/internal/summary"
)

// This file is the public surface of the program database: a summary
// cache (in memory or on disk), per-run snapshots, and
// Program.AnalyzeIncremental, which reuses the summaries of procedures
// an edit did not touch. See DESIGN.md, "Summary store and incremental
// re-analysis".

// SummaryCache is a content-addressed store of per-procedure analysis
// summaries, shared across AnalyzeIncremental runs (and, for the disk
// variant, across processes). Safe for concurrent use.
type SummaryCache struct {
	store summary.Store
}

// NewMemoryCache returns an unbounded in-memory summary cache.
func NewMemoryCache() *SummaryCache {
	return &SummaryCache{store: summary.NewMemStore(0)}
}

// NewBoundedMemoryCache returns an in-memory cache holding at most
// maxEntries summaries; older entries are evicted past the bound.
func NewBoundedMemoryCache(maxEntries int) *SummaryCache {
	return &SummaryCache{store: summary.NewMemStore(maxEntries)}
}

// NewDiskCache opens (creating if needed) a summary cache persisted
// under dir — the library form of cmd/ipcp's -cache-dir.
func NewDiskCache(dir string) (*SummaryCache, error) {
	st, err := summary.NewDiskStore(dir)
	if err != nil {
		return nil, fmt.Errorf("ipcp: %w", err)
	}
	return &SummaryCache{store: st}, nil
}

// NewRemoteCache returns a cache backed by a blob service speaking the
// content-addressed protocol an ipcpd daemon serves at /v1/blob/ — the
// library form of cmd/ipcp's -remote-cache. Remote failures (network
// errors, 5xx, corrupted transfers) never fail an analysis: they count
// into CacheStats.Errors and degrade to recomputation.
func NewRemoteCache(baseURL string) *SummaryCache {
	return &SummaryCache{store: summary.NewRemoteStore(baseURL)}
}

// NewTieredCache stacks caches fastest-first into one read-through
// hierarchy — typically memory in front of disk in front of a remote.
// Lookups probe in order and back-fill the faster tiers on a hit;
// writes land in the first tier synchronously and drain to the rest in
// the background (Flush waits for them). Content-addressed keys make
// the tiers coherent by construction.
func NewTieredCache(tiers ...*SummaryCache) *SummaryCache {
	stores := make([]summary.Store, len(tiers))
	for i, t := range tiers {
		stores[i] = t.store
	}
	return &SummaryCache{store: summary.NewTieredStore(stores...)}
}

// CacheStats counts a cache's traffic since it was opened.
type CacheStats struct {
	Hits       int64 // lookups that found a summary
	Misses     int64 // lookups that found nothing
	Puts       int64 // summary blobs written
	BytesSaved int64 // bytes written by those puts
	Evictions  int64 // summaries dropped by a bounded cache
	Errors     int64 // I/O or remote failures, distinct from misses
}

func cacheStatsOf(s summary.StoreStats) CacheStats {
	return CacheStats{
		Hits: s.Hits, Misses: s.Misses,
		Puts: s.Puts, BytesSaved: s.PutBytes,
		Evictions: s.Evictions, Errors: s.Errors,
	}
}

// Stats returns the cache's accumulated counters.
func (c *SummaryCache) Stats() CacheStats { return cacheStatsOf(c.store.Stats()) }

// TierStats returns per-tier counters for a cache built with
// NewTieredCache, fastest tier first; for any other cache it returns
// the cache's own stats as a single tier.
func (c *SummaryCache) TierStats() []CacheStats {
	if ts, ok := c.store.(*summary.TieredStore); ok {
		inner := ts.TierStats()
		out := make([]CacheStats, len(inner))
		for i, s := range inner {
			out[i] = cacheStatsOf(s)
		}
		return out
	}
	return []CacheStats{c.Stats()}
}

// Flush blocks until pending background write-backs (a tiered cache's
// slower tiers) have drained; on other caches it is a no-op.
func (c *SummaryCache) Flush() {
	if ts, ok := c.store.(*summary.TieredStore); ok {
		ts.Flush()
	}
}

// String renders the counters in one line (the -trace-passes cache
// stats row).
func (s CacheStats) String() string {
	return fmt.Sprintf("summary cache: %d hits, %d misses, %d puts (%d bytes), %d evictions, %d errors",
		s.Hits, s.Misses, s.Puts, s.BytesSaved, s.Evictions, s.Errors)
}

// GetBlob reads one raw blob by its 64-hex content address — the
// serving side of the remote-cache protocol (ipcpd's blob endpoint
// calls it). The bool reports presence; the error flags a malformed
// key.
func (c *SummaryCache) GetBlob(hexKey string) ([]byte, bool, error) {
	k, err := parseBlobKey(hexKey)
	if err != nil {
		return nil, false, err
	}
	v, ok := c.store.Get(k)
	return v, ok, nil
}

// PutBlob stores one raw blob under its 64-hex content address.
func (c *SummaryCache) PutBlob(hexKey string, data []byte) error {
	k, err := parseBlobKey(hexKey)
	if err != nil {
		return err
	}
	return c.store.Put(k, data)
}

func parseBlobKey(hexKey string) (summary.Key, error) {
	var k summary.Key
	raw, err := hex.DecodeString(hexKey)
	if err != nil || len(raw) != len(k) {
		return k, fmt.Errorf("ipcp: blob key must be %d hex characters", 2*len(k))
	}
	copy(k[:], raw)
	return k, nil
}

// Snapshot is the index one AnalyzeIncremental run leaves behind: the
// per-procedure fingerprints and store keys a later run diffs against.
// Snapshots are immutable and may seed any number of later runs.
type Snapshot struct {
	snap  *summary.Snapshot
	cache *SummaryCache
}

// Procedures returns the number of procedures the snapshot stamps.
func (s *Snapshot) Procedures() int { return len(s.snap.Procs) }

// Save writes the snapshot to a file (the companion of a disk cache).
func (s *Snapshot) Save(path string) error {
	if err := os.WriteFile(path, summary.EncodeSnapshot(s.snap), 0o644); err != nil {
		return fmt.Errorf("ipcp: %w", err)
	}
	return nil
}

// LoadSnapshot reads a snapshot written by Save or SaveChain — either
// on-disk form — and attaches it to the cache holding its summaries.
func LoadSnapshot(path string, cache *SummaryCache) (*Snapshot, error) {
	snap, err := summary.LoadSnapshotFile(path)
	if err != nil {
		return nil, fmt.Errorf("ipcp: %w", err)
	}
	return &Snapshot{snap: snap, cache: cache}, nil
}

// CacheGCStats reports one CacheGC sweep over a disk cache directory.
type CacheGCStats = summary.GCStats

// CacheGC garbage-collects a disk cache directory (the -cache-dir of
// cmd/ipcp, or an ipcpd daemon's cache): summaries no snapshot
// references are deleted, and if the referenced ones still exceed
// budgetBytes (0 = unbounded) the coldest are deleted until they fit.
// The live set is the union of every snapshot file saved in the
// directory and the extra in-memory snapshots passed in (a resident
// server passes its current ones). Collecting a live summary is always
// sound — it merely costs a future recomputation — so CacheGC is safe
// to run concurrently with analyses using the same directory.
func CacheGC(dir string, budgetBytes int64, live ...*Snapshot) (CacheGCStats, error) {
	var extra []summary.Key
	for _, s := range live {
		if s != nil && s.snap != nil {
			extra = append(extra, s.snap.Keys()...)
		}
	}
	return summary.GCDir(dir, extra, budgetBytes)
}

// FlavorCacheKey fingerprints every configuration bit stored summaries
// depend on (jump-function flavor, return JFs, MOD, codec version) —
// useful for naming snapshot files per configuration, as cmd/ipcp
// does. Two configs with equal FlavorCacheKey store and hit identical
// entries at both cache layers.
func FlavorCacheKey(cfg Config) string {
	return incr.ConfigKey(cfg.internal())
}

// SharedCacheKey is FlavorCacheKey with the jump-function flavor left
// out: the key prefix of the stage-1 (shared) cache layer. Two configs
// that differ only in JumpFunctions have equal SharedCacheKey and
// share their stage-1 summaries — return jump functions, MOD/REF sets,
// call edges, use counts — through one cache.
func SharedCacheKey(cfg Config) string {
	return incr.SharedConfigKey(cfg.internal())
}

// ConfigCacheKey is the historical name of FlavorCacheKey.
func ConfigCacheKey(cfg Config) string { return FlavorCacheKey(cfg) }

// IncrementalStats describes how an incremental run split the program.
type IncrementalStats struct {
	// TotalProcedures is the procedure count; Reanalyzed of them had
	// their summaries rebuilt, Reused ran on cached ones.
	TotalProcedures int
	Reanalyzed      int
	Reused          int

	// CacheHits and CacheMisses count this run's full-record cache
	// lookups — one per candidate procedure: every procedure the
	// invalidation analysis kept when a comparable snapshot exists, or
	// every procedure at all on a first run (content-addressed keys
	// make hits from any prior run sound, so a fresh run against a
	// warm shared cache starts at full reuse). A hit means both the
	// stage-1 and the flavor record were present and bound, and the
	// procedure ran on them.
	CacheHits   int
	CacheMisses int

	// Stage1Hits and Stage1Misses count the same lookups at the shared
	// stage-1 layer, whose keys leave the jump-function flavor out. A
	// stage-1 hit without a full hit means another flavor's run wrote
	// the shared record: the procedure still re-analyzes, but its
	// return JFs/MOD/REF half is never re-stored. Stage1Hits ≥
	// CacheHits always; the gap is the cross-flavor sharing at work.
	Stage1Hits   int
	Stage1Misses int

	// WarmStarted reports whether the stage-3 solve warm-started from
	// the previous snapshot's fixpoint (false on a first run, under
	// Config.NoWarmStart, or when the snapshot was not comparable);
	// ConeProcedures counts the procedures it reset to their initial
	// lattice cells — the whole program on a cold solve.
	WarmStarted    bool
	ConeProcedures int

	// WorklistSeeded, WorklistVisited, and WorklistEnqueued are the
	// stage-3 worklist counters: items initially scheduled, items
	// popped over the whole solve, and items re-enqueued by lattice
	// changes. A warm start's win shows up as WorklistVisited shrinking
	// to the edit's cone instead of the whole program.
	WorklistSeeded   int64
	WorklistVisited  int64
	WorklistEnqueued int64
}

// HitRate returns the fraction of this run's cache lookups that hit,
// in [0,1]; a run with no lookups (a first run) reports 0.
func (s *IncrementalStats) HitRate() float64 {
	lookups := s.CacheHits + s.CacheMisses
	if lookups == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(lookups)
}

// AnalyzeIncremental runs interprocedural constant propagation under
// cfg, reusing stored summaries for every procedure that prev proves
// unchanged — the changed procedures, plus everything reachable
// backward through the call graph from them, are re-analyzed; the rest
// bind their cached jump functions and MOD/REF sets straight into the
// solver. The returned Report is reflect.DeepEqual to Analyze(cfg)
// apart from the Incremental field (the determinism suite proves it
// over random edit sequences), and the returned Snapshot seeds the
// next run.
//
// prev may be nil (first run: all procedures analyzed and cached).
// cache may be nil, in which case prev's cache is used, or a fresh
// in-memory cache when there is no prev either.
func (p *Program) AnalyzeIncremental(cfg Config, prev *Snapshot, cache *SummaryCache) (*Report, *Snapshot) {
	rep, snap, err := p.analyzeIncremental(cfg.internal(), cfg, prev, cache)
	if err != nil {
		// Only a Cancel hook can fail, and internal() never sets one.
		panic("ipcp: AnalyzeIncremental: " + err.Error())
	}
	return rep, snap
}

// AnalyzeIncrementalContext is AnalyzeIncremental under a context:
// cancellation and deadline expiry abandon the run with an error
// wrapping ErrCanceled, leaving prev and the cache untouched (stored
// summaries are content-addressed, so a partially warmed cache is
// still sound).
func (p *Program) AnalyzeIncrementalContext(ctx context.Context, cfg Config, prev *Snapshot, cache *SummaryCache) (*Report, *Snapshot, error) {
	icfg := cfg.internal()
	icfg.Cancel = cancelHook(ctx)
	return p.analyzeIncremental(icfg, cfg, prev, cache)
}

func (p *Program) analyzeIncremental(icfg core.Config, cfg Config, prev *Snapshot, cache *SummaryCache) (*Report, *Snapshot, error) {
	if cache == nil {
		if prev != nil && prev.cache != nil {
			cache = prev.cache
		} else {
			cache = NewMemoryCache()
		}
	}
	var prevSnap *summary.Snapshot
	if prev != nil {
		prevSnap = prev.snap
	}
	eng := incr.NewEngine(cache.store)
	res, snap, st, err := eng.Analyze(p.sp, icfg, prevSnap)
	if err != nil {
		return nil, nil, err
	}
	rep := buildReport(cfg, res)
	rep.Incremental = &IncrementalStats{
		TotalProcedures:  st.TotalProcs,
		Reanalyzed:       st.Reanalyzed,
		Reused:           st.Reused,
		CacheHits:        st.Hits,
		CacheMisses:      st.Misses,
		Stage1Hits:       st.SharedHits,
		Stage1Misses:     st.SharedMisses,
		WarmStarted:      st.WarmStarted,
		ConeProcedures:   st.ConeProcs,
		WorklistSeeded:   st.WorklistSeeded,
		WorklistVisited:  st.WorklistVisited,
		WorklistEnqueued: st.WorklistEnqueued,
	}
	return rep, &Snapshot{snap: snap, cache: cache}, nil
}
