package ipcp

import (
	"context"
	"fmt"
	"os"

	"ipcp/internal/core"
	"ipcp/internal/incr"
	"ipcp/internal/summary"
)

// This file is the public surface of the program database: a summary
// cache (in memory or on disk), per-run snapshots, and
// Program.AnalyzeIncremental, which reuses the summaries of procedures
// an edit did not touch. See DESIGN.md, "Summary store and incremental
// re-analysis".

// SummaryCache is a content-addressed store of per-procedure analysis
// summaries, shared across AnalyzeIncremental runs (and, for the disk
// variant, across processes). Safe for concurrent use.
type SummaryCache struct {
	store summary.Store
}

// NewMemoryCache returns an unbounded in-memory summary cache.
func NewMemoryCache() *SummaryCache {
	return &SummaryCache{store: summary.NewMemStore(0)}
}

// NewBoundedMemoryCache returns an in-memory cache holding at most
// maxEntries summaries; older entries are evicted past the bound.
func NewBoundedMemoryCache(maxEntries int) *SummaryCache {
	return &SummaryCache{store: summary.NewMemStore(maxEntries)}
}

// NewDiskCache opens (creating if needed) a summary cache persisted
// under dir — the library form of cmd/ipcp's -cache-dir.
func NewDiskCache(dir string) (*SummaryCache, error) {
	st, err := summary.NewDiskStore(dir)
	if err != nil {
		return nil, fmt.Errorf("ipcp: %w", err)
	}
	return &SummaryCache{store: st}, nil
}

// CacheStats counts a cache's traffic since it was opened.
type CacheStats struct {
	Hits      int64 // lookups that found a summary
	Misses    int64 // lookups that found nothing
	Puts      int64 // summaries written
	Evictions int64 // summaries dropped by a bounded cache
}

// Stats returns the cache's accumulated counters.
func (c *SummaryCache) Stats() CacheStats {
	s := c.store.Stats()
	return CacheStats{Hits: s.Hits, Misses: s.Misses, Puts: s.Puts, Evictions: s.Evictions}
}

// String renders the counters in one line (the -trace-passes cache
// stats row).
func (s CacheStats) String() string {
	return fmt.Sprintf("summary cache: %d hits, %d misses, %d puts, %d evictions",
		s.Hits, s.Misses, s.Puts, s.Evictions)
}

// Snapshot is the index one AnalyzeIncremental run leaves behind: the
// per-procedure fingerprints and store keys a later run diffs against.
// Snapshots are immutable and may seed any number of later runs.
type Snapshot struct {
	snap  *summary.Snapshot
	cache *SummaryCache
}

// Procedures returns the number of procedures the snapshot stamps.
func (s *Snapshot) Procedures() int { return len(s.snap.Procs) }

// Save writes the snapshot to a file (the companion of a disk cache).
func (s *Snapshot) Save(path string) error {
	if err := os.WriteFile(path, summary.EncodeSnapshot(s.snap), 0o644); err != nil {
		return fmt.Errorf("ipcp: %w", err)
	}
	return nil
}

// LoadSnapshot reads a snapshot written by Save and attaches it to the
// cache holding its summaries.
func LoadSnapshot(path string, cache *SummaryCache) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ipcp: %w", err)
	}
	snap, err := summary.DecodeSnapshot(data)
	if err != nil {
		return nil, fmt.Errorf("ipcp: %w", err)
	}
	return &Snapshot{snap: snap, cache: cache}, nil
}

// CacheGCStats reports one CacheGC sweep over a disk cache directory.
type CacheGCStats = summary.GCStats

// CacheGC garbage-collects a disk cache directory (the -cache-dir of
// cmd/ipcp, or an ipcpd daemon's cache): summaries no snapshot
// references are deleted, and if the referenced ones still exceed
// budgetBytes (0 = unbounded) the coldest are deleted until they fit.
// The live set is the union of every snapshot file saved in the
// directory and the extra in-memory snapshots passed in (a resident
// server passes its current ones). Collecting a live summary is always
// sound — it merely costs a future recomputation — so CacheGC is safe
// to run concurrently with analyses using the same directory.
func CacheGC(dir string, budgetBytes int64, live ...*Snapshot) (CacheGCStats, error) {
	var extra []summary.Key
	for _, s := range live {
		if s != nil && s.snap != nil {
			extra = append(extra, s.snap.Keys()...)
		}
	}
	return summary.GCDir(dir, extra, budgetBytes)
}

// ConfigCacheKey fingerprints the configuration bits summaries depend
// on (jump-function flavor, return JFs, MOD, codec version) — useful
// for naming snapshot files per configuration, as cmd/ipcp does.
func ConfigCacheKey(cfg Config) string {
	return incr.ConfigKey(cfg.internal())
}

// IncrementalStats describes how an incremental run split the program.
type IncrementalStats struct {
	// TotalProcedures is the procedure count; Reanalyzed of them had
	// their summaries rebuilt, Reused ran on cached ones.
	TotalProcedures int
	Reanalyzed      int
	Reused          int

	// CacheHits and CacheMisses count this run's cache lookups — one
	// per procedure the invalidation analysis kept. Procedures the edit
	// invalidated are never looked up.
	CacheHits   int
	CacheMisses int

	// WarmStarted reports whether the stage-3 solve warm-started from
	// the previous snapshot's fixpoint (false on a first run, under
	// Config.NoWarmStart, or when the snapshot was not comparable);
	// ConeProcedures counts the procedures it reset to their initial
	// lattice cells — the whole program on a cold solve.
	WarmStarted    bool
	ConeProcedures int

	// WorklistSeeded, WorklistVisited, and WorklistEnqueued are the
	// stage-3 worklist counters: items initially scheduled, items
	// popped over the whole solve, and items re-enqueued by lattice
	// changes. A warm start's win shows up as WorklistVisited shrinking
	// to the edit's cone instead of the whole program.
	WorklistSeeded   int64
	WorklistVisited  int64
	WorklistEnqueued int64
}

// HitRate returns the fraction of this run's cache lookups that hit,
// in [0,1]; a run with no lookups (a first run) reports 0.
func (s *IncrementalStats) HitRate() float64 {
	lookups := s.CacheHits + s.CacheMisses
	if lookups == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(lookups)
}

// AnalyzeIncremental runs interprocedural constant propagation under
// cfg, reusing stored summaries for every procedure that prev proves
// unchanged — the changed procedures, plus everything reachable
// backward through the call graph from them, are re-analyzed; the rest
// bind their cached jump functions and MOD/REF sets straight into the
// solver. The returned Report is reflect.DeepEqual to Analyze(cfg)
// apart from the Incremental field (the determinism suite proves it
// over random edit sequences), and the returned Snapshot seeds the
// next run.
//
// prev may be nil (first run: all procedures analyzed and cached).
// cache may be nil, in which case prev's cache is used, or a fresh
// in-memory cache when there is no prev either.
func (p *Program) AnalyzeIncremental(cfg Config, prev *Snapshot, cache *SummaryCache) (*Report, *Snapshot) {
	rep, snap, err := p.analyzeIncremental(cfg.internal(), cfg, prev, cache)
	if err != nil {
		// Only a Cancel hook can fail, and internal() never sets one.
		panic("ipcp: AnalyzeIncremental: " + err.Error())
	}
	return rep, snap
}

// AnalyzeIncrementalContext is AnalyzeIncremental under a context:
// cancellation and deadline expiry abandon the run with an error
// wrapping ErrCanceled, leaving prev and the cache untouched (stored
// summaries are content-addressed, so a partially warmed cache is
// still sound).
func (p *Program) AnalyzeIncrementalContext(ctx context.Context, cfg Config, prev *Snapshot, cache *SummaryCache) (*Report, *Snapshot, error) {
	icfg := cfg.internal()
	icfg.Cancel = cancelHook(ctx)
	return p.analyzeIncremental(icfg, cfg, prev, cache)
}

func (p *Program) analyzeIncremental(icfg core.Config, cfg Config, prev *Snapshot, cache *SummaryCache) (*Report, *Snapshot, error) {
	if cache == nil {
		if prev != nil && prev.cache != nil {
			cache = prev.cache
		} else {
			cache = NewMemoryCache()
		}
	}
	var prevSnap *summary.Snapshot
	if prev != nil {
		prevSnap = prev.snap
	}
	eng := incr.NewEngine(cache.store)
	res, snap, st, err := eng.Analyze(p.sp, icfg, prevSnap)
	if err != nil {
		return nil, nil, err
	}
	rep := buildReport(cfg, res)
	rep.Incremental = &IncrementalStats{
		TotalProcedures:  st.TotalProcs,
		Reanalyzed:       st.Reanalyzed,
		Reused:           st.Reused,
		CacheHits:        st.Hits,
		CacheMisses:      st.Misses,
		WarmStarted:      st.WarmStarted,
		ConeProcedures:   st.ConeProcs,
		WorklistSeeded:   st.WorklistSeeded,
		WorklistVisited:  st.WorklistVisited,
		WorklistEnqueued: st.WorklistEnqueued,
	}
	return rep, &Snapshot{snap: snap, cache: cache}, nil
}
