package ipcp_test

import (
	"fmt"
	"reflect"
	"testing"

	"ipcp"
	"ipcp/internal/suite"
)

// This file is the differential proof of the flavor-split cache keys:
// one summary cache shared across jump-function flavors must change
// only the cache traffic — stage-1 (flavor-invariant) summaries are
// fetched instead of recomputed — and never the reports, which stay
// reflect.DeepEqual to isolated-cache and from-scratch runs.

// TestCrossFlavorSharedCache runs the four-flavor sweep the way
// cmd/ipcp -all now does — one cache for all flavors — and pins the
// sharing contract: the first flavor populates the stage-1 layer, every
// later flavor hits it (Stage1Hits > 0) without full-record hits
// masking the effect, the shared cache stores strictly fewer bytes
// than four isolated caches, and each report equals its isolated-cache
// counterpart and scratch.
func TestCrossFlavorSharedCache(t *testing.T) {
	for _, name := range []string{"ocean", "linpackd", "spec77"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			prog := ipcp.MustLoad(suite.Generate(name, 2).Source)
			shared := ipcp.NewMemoryCache()
			var sharedReports []*ipcp.Report
			for i, j := range ipcp.JumpFunctions {
				cfg := ipcp.Config{Jump: j, ReturnJumpFunctions: true, MOD: true}
				rep, _ := prog.AnalyzeIncremental(cfg, nil, shared)
				st := rep.Incremental
				if i == 0 && st.Stage1Hits != 0 {
					t.Fatalf("%v on an empty cache reported %d stage-1 hits", j, st.Stage1Hits)
				}
				if i > 0 && st.Stage1Hits != st.TotalProcedures {
					t.Fatalf("%v after %d flavors: %d stage-1 hits, want %d (shared blobs are flavor-invariant)",
						j, i, st.Stage1Hits, st.TotalProcedures)
				}
				if st.Stage1Hits < st.CacheHits {
					t.Fatalf("%v: stage-1 hits %d < full-record hits %d (a full record contains its stage-1 half)",
						j, st.Stage1Hits, st.CacheHits)
				}
				sharedReports = append(sharedReports, rep)
			}
			sharedBytes := shared.Stats().BytesSaved

			var isolatedBytes int64
			for i, j := range ipcp.JumpFunctions {
				cfg := ipcp.Config{Jump: j, ReturnJumpFunctions: true, MOD: true}
				iso := ipcp.NewMemoryCache()
				rep, _ := prog.AnalyzeIncremental(cfg, nil, iso)
				isolatedBytes += iso.Stats().BytesSaved
				scratch := prog.Analyze(cfg)
				normalizeIncrementalReports(scratch, rep, sharedReports[i])
				if !reflect.DeepEqual(rep, sharedReports[i]) {
					t.Fatalf("%v: shared-cache report diverges from isolated-cache report", j)
				}
				if !reflect.DeepEqual(scratch, sharedReports[i]) {
					t.Fatalf("%v: shared-cache report diverges from scratch", j)
				}
			}
			if sharedBytes >= isolatedBytes {
				t.Fatalf("shared cache stored %d bytes, isolated caches %d: key split saved nothing",
					sharedBytes, isolatedBytes)
			}
		})
	}
}

// TestCrossConfigSharedCacheGrid drives the full configuration grid —
// flavors, precision toggles, complete propagation, the dependence
// solver — through one long-lived cache, in order and then again in
// reverse, comparing every report against an isolated-cache run of the
// same configuration. Whatever mixture of stage-1 and full-record hits
// each pairing produces, the reports must be identical: a cache shared
// across arbitrary configurations is invisible in the results.
func TestCrossConfigSharedCacheGrid(t *testing.T) {
	prog := ipcp.MustLoad(suite.Generate("mdg", 2).Source)
	cfgs := incrementalConfigs()
	order := make([]ipcp.Config, 0, 2*len(cfgs))
	order = append(order, cfgs...)
	for i := len(cfgs) - 1; i >= 0; i-- {
		order = append(order, cfgs[i])
	}
	shared := ipcp.NewMemoryCache()
	for step, cfg := range order {
		rep, _ := prog.AnalyzeIncremental(cfg, nil, shared)
		st := rep.Incremental
		if st.Stage1Hits < st.CacheHits {
			t.Fatalf("step %d %+v: stage-1 hits %d < full hits %d", step, cfg, st.Stage1Hits, st.CacheHits)
		}
		iso, _ := prog.AnalyzeIncremental(cfg, nil, ipcp.NewMemoryCache())
		normalizeIncrementalReports(rep, iso)
		if !reflect.DeepEqual(rep, iso) {
			t.Fatalf("step %d: shared-cache report diverges from isolated under %+v", step, cfg)
		}
	}
	// The reverse sweep replays configurations already cached: every one
	// must now be a 100% full-record hit.
	rep, _ := prog.AnalyzeIncremental(cfgs[0], nil, shared)
	if st := rep.Incremental; st.CacheHits != st.TotalProcedures {
		t.Fatalf("replayed configuration missed the cache: %+v", st)
	}
}

// TestSharedCacheKeySplit pins the key-derivation contract the sharing
// rests on: configurations that differ only in jump-function flavor
// share a stage-1 key but not a flavor key, while toggling anything
// stage 1 consumes (return jump functions, MOD) splits both.
func TestSharedCacheKeySplit(t *testing.T) {
	base := ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true}
	for _, j := range ipcp.JumpFunctions {
		cfg := base
		cfg.Jump = j
		if got, want := ipcp.SharedCacheKey(cfg), ipcp.SharedCacheKey(base); got != want {
			t.Fatalf("flavor %v changed the shared key: %s != %s", j, got, want)
		}
		if j != base.Jump && ipcp.FlavorCacheKey(cfg) == ipcp.FlavorCacheKey(base) {
			t.Fatalf("flavor %v did not change the flavor key", j)
		}
	}
	for _, mut := range []struct {
		name string
		cfg  ipcp.Config
	}{
		{"no return JFs", ipcp.Config{Jump: ipcp.PassThrough, MOD: true}},
		{"no MOD", ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true}},
	} {
		if ipcp.SharedCacheKey(mut.cfg) == ipcp.SharedCacheKey(base) {
			t.Fatalf("%s shares a stage-1 key with the base configuration", mut.name)
		}
		if ipcp.FlavorCacheKey(mut.cfg) == ipcp.FlavorCacheKey(base) {
			t.Fatalf("%s shares a flavor key with the base configuration", mut.name)
		}
	}
	if fmt.Sprint(ipcp.ConfigCacheKey(base)) != fmt.Sprint(ipcp.FlavorCacheKey(base)) {
		t.Fatal("ConfigCacheKey must alias FlavorCacheKey")
	}
}
