package ipcp

import (
	"ipcp/internal/core"
	"ipcp/internal/core/clone"
)

// This file exposes the two extensions beyond the paper's core study:
// the dependence-driven solver variant (the algorithm of Callahan et
// al. whose complexity bound §3.1.5 quotes) and goal-directed procedure
// cloning (the downstream consumer of CONSTANTS sets the paper
// discusses in §1 and §5).

// CloneOptions bounds the procedure-cloning transformation.
type CloneOptions struct {
	// MaxVersionsPerProc caps the versions of one procedure (including
	// the original). Default 4.
	MaxVersionsPerProc int

	// MaxRounds caps the clone→reanalyze iterations. Default 3.
	MaxRounds int
}

// CloneReport is the outcome of AnalyzeWithCloning.
type CloneReport struct {
	// Base is the analysis of the original program.
	Base *Report

	// Final is the analysis after cloning converged; clone procedures
	// appear as <name>_C1, <name>_C2, …
	Final *Report

	// Rounds of cloning applied and total clones created.
	Rounds      int
	TotalClones int
}

// AnalyzeWithCloning runs the propagation, then iterates goal-directed
// procedure cloning: call sites that pass different constant vectors to
// one procedure get their own specialized versions, each keeping the
// constants the meet would have destroyed. Metzger & Stroud report this
// "can substantially increase the number of interprocedural constants";
// the CloneReport quantifies it as Base vs Final substitution counts.
func (p *Program) AnalyzeWithCloning(cfg Config, opts CloneOptions) *CloneReport {
	icfg := cfg.internal()
	base := core.Analyze(p.sp, icfg)
	out := clone.AndAnalyze(base, icfg, clone.Options{
		MaxVersionsPerProc: opts.MaxVersionsPerProc,
		MaxRounds:          opts.MaxRounds,
	})
	return &CloneReport{
		Base:        p.toReport(cfg, out.Base),
		Final:       p.toReport(cfg, out.Final),
		Rounds:      out.Rounds,
		TotalClones: out.TotalClones,
	}
}

// toReport converts a core result (shared with Analyze).
func (p *Program) toReport(cfg Config, res *core.Result) *Report {
	return buildReport(cfg, res)
}
