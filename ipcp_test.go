package ipcp_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ipcp"
)

const apiTestSrc = `
PROGRAM MAIN
  INTEGER N
  N = 10
  CALL WORK(N, 5)
END
SUBROUTINE WORK(A, B)
  INTEGER A, B, X
  X = A + B
  CALL INNER(A)
  RETURN
END
SUBROUTINE INNER(V)
  INTEGER V, W
  W = V * 2
  RETURN
END
`

func TestLoadAndAnalyze(t *testing.T) {
	prog, err := ipcp.Load(apiTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	rep := prog.Analyze(ipcp.Config{
		Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true,
	})
	if v, ok := rep.ConstantValue("WORK", "A"); !ok || v != 10 {
		t.Errorf("WORK.A = %d,%v want 10", v, ok)
	}
	if v, ok := rep.ConstantValue("WORK", "B"); !ok || v != 5 {
		t.Errorf("WORK.B = %d,%v want 5", v, ok)
	}
	if v, ok := rep.ConstantValue("INNER", "V"); !ok || v != 10 {
		t.Errorf("INNER.V = %d,%v want 10 (pass-through)", v, ok)
	}
	if rep.TotalConstants != 3 {
		t.Errorf("TotalConstants = %d, want 3", rep.TotalConstants)
	}
	if rep.Procedure("NOSUCH") != nil {
		t.Error("Procedure of unknown name should be nil")
	}
	if _, ok := rep.ConstantValue("NOSUCH", "A"); ok {
		t.Error("ConstantValue on unknown procedure should fail")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := ipcp.Load("PROGRAM\n"); err == nil {
		t.Error("syntax error should surface")
	}
	if _, err := ipcp.Load("PROGRAM P\n  IMPLICIT NONE\n  X = 1\nEND\n"); err == nil {
		t.Error("semantic error should surface")
	}
	if _, err := ipcp.LoadFile("/nonexistent/path.f"); err == nil {
		t.Error("missing file should surface")
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.f")
	if err := os.WriteFile(path, []byte(apiTestSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := ipcp.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Units()) != 3 {
		t.Errorf("units: %v", prog.Units())
	}
}

func TestMustLoadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLoad should panic on bad source")
		}
	}()
	ipcp.MustLoad("not fortran at all")
}

func TestStats(t *testing.T) {
	prog := ipcp.MustLoad(apiTestSrc)
	st := prog.Stats()
	if st.Procedures != 3 {
		t.Errorf("procedures = %d", st.Procedures)
	}
	if st.CallSites != 2 {
		t.Errorf("call sites = %d", st.CallSites)
	}
	if st.Lines <= 0 || st.MeanLinesPerProc <= 0 || st.MedianLinesPerProc <= 0 {
		t.Errorf("stats: %+v", st)
	}
}

func TestFormatRoundTrips(t *testing.T) {
	prog := ipcp.MustLoad(apiTestSrc)
	printed := prog.Format()
	if !strings.Contains(printed, "SUBROUTINE WORK(A, B)") {
		t.Errorf("format lost structure:\n%s", printed)
	}
	if _, err := ipcp.Load(printed); err != nil {
		t.Errorf("formatted source does not reload: %v", err)
	}
}

func TestIntraproceduralBaseline(t *testing.T) {
	prog := ipcp.MustLoad(`
PROGRAM MAIN
  INTEGER K, A, B
  K = 7
  A = K + 1
  B = K * 2
  CALL S(1)
END
SUBROUTINE S(N)
  INTEGER N, X
  X = N
  RETURN
END
`)
	intra := prog.AnalyzeIntraprocedural()
	// K is referenced twice; N's reference is interprocedural only.
	if intra.Substituted["MAIN"] != 2 {
		t.Errorf("MAIN local substitutions = %d, want 2", intra.Substituted["MAIN"])
	}
	if intra.Substituted["S"] != 0 {
		t.Errorf("S local substitutions = %d, want 0", intra.Substituted["S"])
	}
	inter := prog.Analyze(ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true})
	if inter.Procedure("S").Substituted != 1 {
		t.Errorf("S interprocedural substitutions = %d, want 1", inter.Procedure("S").Substituted)
	}
}

func TestJumpFunctionStrings(t *testing.T) {
	want := map[ipcp.JumpFunction]string{
		ipcp.Literal:         "literal",
		ipcp.Intraprocedural: "intraprocedural",
		ipcp.PassThrough:     "pass-through",
		ipcp.Polynomial:      "polynomial",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

// TestControlFlowClassification checks the §4 motivation metric: which
// substituted references sit in loop bounds and branch conditions.
func TestControlFlowClassification(t *testing.T) {
	prog := ipcp.MustLoad(`
PROGRAM MAIN
  CALL WORK(50, 3)
END
SUBROUTINE WORK(N, MODE)
  INTEGER N, MODE, I, S, A, B
  S = 0
  DO I = 1, N
    S = S + I
  ENDDO
  IF (MODE .EQ. 3) THEN
    S = 0
  ENDIF
  A = N + 1
  B = MODE * 2
  RETURN
END
`)
	rep := prog.Analyze(ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true})
	w := rep.Procedure("WORK")
	// Four references total: N in the DO bound, MODE in the IF, and the
	// two plain arithmetic uses.
	if w.Substituted != 4 {
		t.Fatalf("substituted = %d, want 4", w.Substituted)
	}
	if w.ControlFlowSubstituted != 2 {
		t.Fatalf("control-flow substituted = %d, want 2 (DO bound + IF condition)", w.ControlFlowSubstituted)
	}
	if rep.TotalControlFlowSubstituted != 2 {
		t.Fatalf("total control-flow = %d", rep.TotalControlFlowSubstituted)
	}
}

// TestConcurrentAnalyze guards the documented immutability contract: one
// Program analyzed from many goroutines must produce identical results
// with no data races (run under -race in CI).
func TestConcurrentAnalyze(t *testing.T) {
	prog := ipcp.MustLoad(apiTestSrc)
	want := prog.Analyze(ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true})
	const workers = 8
	results := make([]*ipcp.Report, workers)
	done := make(chan int)
	for w := 0; w < workers; w++ {
		go func(w int) {
			cfg := ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true}
			if w%2 == 1 {
				cfg.Complete = true
			}
			results[w] = prog.Analyze(cfg)
			done <- w
		}(w)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	for w, r := range results {
		if r.TotalSubstituted != want.TotalSubstituted || r.TotalConstants != want.TotalConstants {
			t.Errorf("worker %d: %d/%d vs %d/%d",
				w, r.TotalSubstituted, r.TotalConstants, want.TotalSubstituted, want.TotalConstants)
		}
	}
}
