package ipcp

import (
	"fmt"

	"ipcp/internal/interp"
	"ipcp/internal/ir/irbuild"
)

// ExecOptions configures Execute.
type ExecOptions struct {
	// Fuel bounds the number of IR instructions executed (default 2e6).
	Fuel int

	// InputSeed seeds the deterministic READ stream.
	InputSeed int64
}

// ExecResult is the outcome of one program execution.
type ExecResult struct {
	// Output collects the integer values passed to WRITE/PRINT, in
	// order (capped at 4096 entries).
	Output []int64

	// Stopped reports a STOP statement ended the program.
	Stopped bool

	// FuelExhausted reports the run was cut off by the fuel bound.
	FuelExhausted bool

	// Calls counts procedure invocations by name.
	Calls map[string]int

	// Err holds a runtime fault (division by zero, subscript out of
	// range), if any.
	Err error
}

// Execute interprets the program with deterministic input. The analyzer
// itself never needs this — constants are compile-time facts — but the
// test suite uses execution as a differential oracle (every member of
// every CONSTANTS set is checked against observed runtime values), and
// it lets users smoke-test MiniFortran programs directly.
func (p *Program) Execute(opts ExecOptions) *ExecResult {
	prog := irbuild.Build(p.sp)
	res := interp.Run(prog, interp.Options{Fuel: opts.Fuel, InputSeed: opts.InputSeed})
	out := &ExecResult{
		Output:        res.Output,
		Stopped:       res.Stopped,
		FuelExhausted: res.FuelExhausted,
		Calls:         make(map[string]int, len(res.Observations)),
		Err:           res.Err,
	}
	for proc, obs := range res.Observations {
		out.Calls[proc.Name] = obs.Calls
	}
	return out
}

// VerifyConstants executes the program and checks every constant in the
// report against the values observed at each procedure entry. It
// returns a description of each violation (empty means the report is
// consistent with the execution). This is the library form of the
// differential oracle the test suite applies to every benchmark.
func (p *Program) VerifyConstants(rep *Report, opts ExecOptions) []string {
	prog := irbuild.Build(p.sp)
	res := interp.Run(prog, interp.Options{Fuel: opts.Fuel, InputSeed: opts.InputSeed})

	// Observed (procedure, name) → summary.
	type key struct{ proc, name string }
	observed := make(map[key]*interp.Seen)
	calls := make(map[string]int)
	for proc, obs := range res.Observations {
		calls[proc.Name] = obs.Calls
		for i, seen := range obs.Formals {
			if seen != nil && seen.Count > 0 {
				observed[key{proc.Name, proc.Formals[i].Name}] = seen
			}
		}
		for k, seen := range obs.Globals {
			if seen != nil && seen.Count > 0 {
				observed[key{proc.Name, prog.ScalarGlobals[k].String()}] = seen
			}
		}
	}

	var violations []string
	for _, pr := range rep.Procedures {
		if calls[pr.Name] == 0 {
			continue // never executed: nothing to contradict
		}
		for _, c := range pr.Constants {
			seen, ok := observed[key{pr.Name, c.Name}]
			if !ok {
				continue
			}
			if !seen.AllEqual || seen.First != c.Value {
				violations = append(violations, fmt.Sprintf(
					"%s: %s claimed %d but execution observed first=%d allEqual=%v over %d calls",
					pr.Name, c.Name, c.Value, seen.First, seen.AllEqual, seen.Count))
			}
		}
	}
	return violations
}
