package ipcp_test

import (
	"testing"

	"ipcp"
	"ipcp/internal/suite"
)

// Scratch-vs-incremental benchmarks on the largest suite program
// (doduc: the most procedures at default scale). The acceptance bar
// for the program database: a single-procedure edit re-analyzed
// incrementally must beat a from-scratch run.

var benchCfg = ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true}

func benchSources(b *testing.B) (string, string) {
	b.Helper()
	src := suite.Generate("doduc", suite.DefaultScale).Source
	edited, ok := editProgram(b, src, 17)
	if !ok {
		b.Fatal("no editable literal in doduc")
	}
	return src, edited
}

func BenchmarkAnalyzeScratch(b *testing.B) {
	src, _ := benchSources(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog := ipcp.MustLoad(src)
		prog.Analyze(benchCfg)
	}
}

// BenchmarkAnalyzeIncrementalEdit measures the steady-state editing
// loop: a warm cache and snapshot exist, one procedure changed. Load
// time is included in both benchmarks so the comparison is end to end.
func BenchmarkAnalyzeIncrementalEdit(b *testing.B) {
	src, edited := benchSources(b)
	cache := ipcp.NewMemoryCache()
	_, snap := ipcp.MustLoad(src).AnalyzeIncremental(benchCfg, nil, cache)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog := ipcp.MustLoad(edited)
		rep, _ := prog.AnalyzeIncremental(benchCfg, snap, cache)
		if rep.Incremental.Reused == 0 {
			b.Fatal("edit benchmark reused nothing")
		}
	}
}

// benchLeafEdit is the warm-vs-cold re-solve comparison: a warm cache
// and snapshot exist and exactly one leaf procedure of doduc changed
// (LEAF0 has no callees and one caller, so the edit's cone is a single
// procedure). Beyond ns/op it reports the stage-3 worklist items the
// re-solve visited — the demand-driven claim is that the warm number
// stays proportional to the cone, not the program.
func benchLeafEdit(b *testing.B, cfg ipcp.Config, metric string) {
	src := suite.Generate("doduc", suite.DefaultScale).Source
	edited, ok := editProgramIn(b, src, "LEAF0", 1)
	if !ok {
		b.Fatal("LEAF0 has no editable literals")
	}
	cache := ipcp.NewMemoryCache()
	_, snap := ipcp.MustLoad(src).AnalyzeIncremental(cfg, nil, cache)
	var visited int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog := ipcp.MustLoad(edited)
		rep, _ := prog.AnalyzeIncremental(cfg, snap, cache)
		visited = rep.Incremental.WorklistVisited
	}
	b.ReportMetric(float64(visited), metric)
}

// BenchmarkResolveWarmLeafEdit re-solves the leaf edit warm-started
// from the previous fixpoint (the default).
func BenchmarkResolveWarmLeafEdit(b *testing.B) {
	benchLeafEdit(b, benchCfg, "warm_worklist_visited")
}

// BenchmarkResolveColdLeafEdit is the same edit with NoWarmStart: the
// stage-3 worklist restarts from ⊤ over the whole program.
func BenchmarkResolveColdLeafEdit(b *testing.B) {
	cfg := benchCfg
	cfg.NoWarmStart = true
	benchLeafEdit(b, cfg, "cold_worklist_visited")
}

// BenchmarkCrossFlavorSweep measures the cmd/ipcp -all scenario: the
// four jump-function flavors analyzed back to back through one shared
// cache. Beyond ns/op it reports the flavor-split payoff — the stage-1
// hit rate over the three follow-on flavors (1.0 = every procedure's
// config-invariant summary was reused across flavors) and the bytes
// the shared cache stored versus four isolated, unsplit-key caches
// (shared_cache_bytes / isolated_cache_bytes; the gap is what the key
// split deduplicates).
func BenchmarkCrossFlavorSweep(b *testing.B) {
	src, _ := benchSources(b)
	prog := ipcp.MustLoad(src)
	var hitRate, sharedBytes, isolatedBytes float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shared := ipcp.NewMemoryCache()
		var s1Hits, s1Lookups int
		for fi, j := range ipcp.JumpFunctions {
			cfg := benchCfg
			cfg.Jump = j
			rep, _ := prog.AnalyzeIncremental(cfg, nil, shared)
			if fi > 0 {
				st := rep.Incremental
				s1Hits += st.Stage1Hits
				s1Lookups += st.Stage1Hits + st.Stage1Misses
			}
		}
		hitRate = float64(s1Hits) / float64(s1Lookups)
		sharedBytes = float64(shared.Stats().BytesSaved)
	}
	b.StopTimer()
	for _, j := range ipcp.JumpFunctions {
		cfg := benchCfg
		cfg.Jump = j
		iso := ipcp.NewMemoryCache()
		prog.AnalyzeIncremental(cfg, nil, iso)
		isolatedBytes += float64(iso.Stats().BytesSaved)
	}
	b.ReportMetric(hitRate, "s1_hit_rate")
	b.ReportMetric(sharedBytes, "shared_cache_bytes")
	b.ReportMetric(isolatedBytes, "isolated_cache_bytes")
}

// BenchmarkAnalyzeIncrementalUnchanged is the no-op floor: fingerprint,
// diff, bind every summary, solve.
func BenchmarkAnalyzeIncrementalUnchanged(b *testing.B) {
	src, _ := benchSources(b)
	cache := ipcp.NewMemoryCache()
	prog := ipcp.MustLoad(src)
	_, snap := prog.AnalyzeIncremental(benchCfg, nil, cache)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ipcp.MustLoad(src)
		rep, _ := p.AnalyzeIncremental(benchCfg, snap, cache)
		if rep.Incremental.Reanalyzed != 0 {
			b.Fatal("unchanged benchmark re-analyzed something")
		}
	}
}
