package ipcp_test

import (
	"testing"

	"ipcp"
	"ipcp/internal/suite"
)

// Scratch-vs-incremental benchmarks on the largest suite program
// (doduc: the most procedures at default scale). The acceptance bar
// for the program database: a single-procedure edit re-analyzed
// incrementally must beat a from-scratch run.

var benchCfg = ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true}

func benchSources(b *testing.B) (string, string) {
	b.Helper()
	src := suite.Generate("doduc", suite.DefaultScale).Source
	edited, ok := editProgram(b, src, 17)
	if !ok {
		b.Fatal("no editable literal in doduc")
	}
	return src, edited
}

func BenchmarkAnalyzeScratch(b *testing.B) {
	src, _ := benchSources(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog := ipcp.MustLoad(src)
		prog.Analyze(benchCfg)
	}
}

// BenchmarkAnalyzeIncrementalEdit measures the steady-state editing
// loop: a warm cache and snapshot exist, one procedure changed. Load
// time is included in both benchmarks so the comparison is end to end.
func BenchmarkAnalyzeIncrementalEdit(b *testing.B) {
	src, edited := benchSources(b)
	cache := ipcp.NewMemoryCache()
	_, snap := ipcp.MustLoad(src).AnalyzeIncremental(benchCfg, nil, cache)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog := ipcp.MustLoad(edited)
		rep, _ := prog.AnalyzeIncremental(benchCfg, snap, cache)
		if rep.Incremental.Reused == 0 {
			b.Fatal("edit benchmark reused nothing")
		}
	}
}

// BenchmarkAnalyzeIncrementalUnchanged is the no-op floor: fingerprint,
// diff, bind every summary, solve.
func BenchmarkAnalyzeIncrementalUnchanged(b *testing.B) {
	src, _ := benchSources(b)
	cache := ipcp.NewMemoryCache()
	prog := ipcp.MustLoad(src)
	_, snap := prog.AnalyzeIncremental(benchCfg, nil, cache)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ipcp.MustLoad(src)
		rep, _ := p.AnalyzeIncremental(benchCfg, snap, cache)
		if rep.Incremental.Reanalyzed != 0 {
			b.Fatal("unchanged benchmark re-analyzed something")
		}
	}
}
