package ipcp_test

import (
	"fmt"

	"ipcp"
)

// The paper's basic scenario: a constant flows from a call site into a
// procedure, and from there through an unmodified formal into a deeper
// one.
func Example() {
	prog := ipcp.MustLoad(`
PROGRAM MAIN
  CALL OUTER(365)
END
SUBROUTINE OUTER(NDAYS)
  INTEGER NDAYS, H
  H = NDAYS * 24
  CALL INNER(NDAYS)
  RETURN
END
SUBROUTINE INNER(N)
  INTEGER N, M
  M = N * 1440
  RETURN
END
`)
	rep := prog.Analyze(ipcp.Config{
		Jump:                ipcp.PassThrough,
		ReturnJumpFunctions: true,
		MOD:                 true,
	})
	for _, p := range rep.Procedures {
		for _, c := range p.Constants {
			fmt.Printf("%s: %s = %d\n", p.Name, c.Name, c.Value)
		}
	}
	fmt.Println("substituted references:", rep.TotalSubstituted)
	// Output:
	// INNER: N = 365
	// OUTER: NDAYS = 365
	// substituted references: 3
}

// Comparing the four jump-function flavors reproduces the paper's core
// experiment in miniature: the pass-through and polynomial flavors find
// the deep constant, the cheaper two do not.
func ExampleProgram_Analyze() {
	prog := ipcp.MustLoad(`
PROGRAM MAIN
  CALL A(8)
END
SUBROUTINE A(X)
  INTEGER X
  CALL B(X)
  RETURN
END
SUBROUTINE B(Y)
  INTEGER Y, W
  W = Y
  RETURN
END
`)
	for _, flavor := range ipcp.JumpFunctions {
		rep := prog.Analyze(ipcp.Config{Jump: flavor, ReturnJumpFunctions: true, MOD: true})
		_, deep := rep.ConstantValue("B", "Y")
		fmt.Printf("%-16s reaches B: %v\n", flavor, deep)
	}
	// Output:
	// literal          reaches B: false
	// intraprocedural  reaches B: false
	// pass-through     reaches B: true
	// polynomial       reaches B: true
}
