package ipcp_test

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"ipcp"
	"ipcp/internal/suite"
)

// This file tests the context-aware analysis entry points the server
// depends on: an unexpired context must not perturb the result in any
// way, and a canceled or expired one must abandon the run promptly
// with an error wrapping both ErrCanceled and the context's own error.

func contextTestProgram(t *testing.T) *ipcp.Program {
	t.Helper()
	return ipcp.MustLoad(suite.Generate("ocean", 2).Source)
}

func TestAnalyzeContextMatchesAnalyze(t *testing.T) {
	prog := contextTestProgram(t)
	for _, cfg := range []ipcp.Config{
		{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true},
		{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true, DependenceSolver: true},
		{Jump: ipcp.Literal, Complete: true},
	} {
		want := prog.Analyze(cfg)
		got, err := prog.AnalyzeContext(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%+v: AnalyzeContext: %v", cfg, err)
		}
		normalizeReports([]*ipcp.Report{want, got})
		if !reflect.DeepEqual(want, got) {
			t.Errorf("%+v: AnalyzeContext result differs from Analyze", cfg)
		}
	}
}

func TestAnalyzeContextCanceled(t *testing.T) {
	prog := contextTestProgram(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := prog.AnalyzeContext(ctx, ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true})
	if rep != nil {
		t.Fatalf("canceled AnalyzeContext returned a report")
	}
	if !errors.Is(err, ipcp.ErrCanceled) {
		t.Fatalf("error %v does not wrap ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}

func TestAnalyzeContextDeadline(t *testing.T) {
	prog := contextTestProgram(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	// Complete mode exercises the fixpoint path's per-pass check too.
	_, err := prog.AnalyzeContext(ctx, ipcp.Config{Jump: ipcp.Polynomial, Complete: true})
	if !errors.Is(err, ipcp.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap ErrCanceled and DeadlineExceeded", err)
	}
}

func TestAnalyzeIncrementalContext(t *testing.T) {
	prog := contextTestProgram(t)
	cfg := ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true}
	want, _ := prog.AnalyzeIncremental(cfg, nil, nil)

	cache := ipcp.NewMemoryCache()
	got, snap, err := prog.AnalyzeIncrementalContext(context.Background(), cfg, nil, cache)
	if err != nil {
		t.Fatalf("AnalyzeIncrementalContext: %v", err)
	}
	if snap == nil || snap.Procedures() == 0 {
		t.Fatalf("AnalyzeIncrementalContext returned an empty snapshot")
	}
	normalizeReports([]*ipcp.Report{want, got})
	if !reflect.DeepEqual(want, got) {
		t.Errorf("AnalyzeIncrementalContext result differs from AnalyzeIncremental")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := prog.AnalyzeIncrementalContext(ctx, cfg, snap, cache); !errors.Is(err, ipcp.ErrCanceled) {
		t.Fatalf("canceled incremental run: error %v does not wrap ErrCanceled", err)
	}
}

func TestAnalyzeMatrixContext(t *testing.T) {
	prog := contextTestProgram(t)
	cfgs := ipcp.FullMatrix()[:4]

	want := prog.AnalyzeMatrix(cfgs, 2)
	got, err := prog.AnalyzeMatrixContext(context.Background(), cfgs, 2)
	if err != nil {
		t.Fatalf("AnalyzeMatrixContext: %v", err)
	}
	normalizeReports(want)
	normalizeReports(got)
	if !reflect.DeepEqual(want, got) {
		t.Errorf("AnalyzeMatrixContext results differ from AnalyzeMatrix")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := prog.AnalyzeMatrixContext(ctx, cfgs, 2); !errors.Is(err, ipcp.ErrCanceled) {
		t.Fatalf("canceled matrix run: error %v does not wrap ErrCanceled", err)
	}
}
