// Package ipcp is a from-scratch reproduction of
//
//	Dan Grove and Linda Torczon,
//	"Interprocedural Constant Propagation: A Study of Jump Function
//	Implementations", PLDI 1993.
//
// It implements the Callahan–Cooper–Kennedy–Torczon interprocedural
// constant propagation framework over a FORTRAN-77-flavored source
// language (MiniFortran), including every substrate the study depends
// on: a front end, an SSA-based intermediate representation, global
// value numbering, call graphs, interprocedural MOD/REF summaries,
// sparse conditional constant propagation, and dead-code elimination.
//
// The package exposes the study's experimental surface:
//
//	prog, err := ipcp.Load(source)
//	report := prog.Analyze(ipcp.Config{
//	        Jump:                ipcp.PassThrough,
//	        ReturnJumpFunctions: true,
//	        MOD:                 true,
//	})
//	fmt.Println(report.TotalSubstituted)
//
// Four forward jump-function flavors are available (Literal,
// Intraprocedural, PassThrough, Polynomial), return jump functions and
// MOD information toggle independently, and Complete iterates the
// propagation with dead-code elimination — one knob per column of the
// paper's Tables 2 and 3.
package ipcp

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"

	"ipcp/internal/core"
	"ipcp/internal/core/jump"
	"ipcp/internal/ir/irbuild"
	"ipcp/internal/mf/ast"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
	"ipcp/internal/pass"
)

// JumpFunction selects a forward jump-function flavor (§3.1 of the
// paper), in increasing order of construction cost.
type JumpFunction int

// The four forward jump-function flavors.
const (
	// Literal propagates only literal constants written at call sites;
	// constants reach one call-graph edge deep and constant globals are
	// missed entirely.
	Literal JumpFunction = iota

	// Intraprocedural propagates values that intraprocedural constant
	// propagation proves constant at the call site (including globals);
	// still one edge deep.
	Intraprocedural

	// PassThrough additionally forwards formals passed unmodified
	// through the procedure body, so constants flow along arbitrary
	// call-graph paths. The paper's recommendation: equal in power to
	// Polynomial in practice at lower cost.
	PassThrough

	// Polynomial represents each actual as an arbitrary polynomial over
	// the incoming formals (and globals).
	Polynomial
)

// JumpFunctions lists the four flavors from cheapest to most precise.
var JumpFunctions = []JumpFunction{Literal, Intraprocedural, PassThrough, Polynomial}

func (k JumpFunction) String() string { return k.kind().String() }

func (k JumpFunction) kind() jump.Kind {
	switch k {
	case Literal:
		return jump.Literal
	case Intraprocedural:
		return jump.Intraprocedural
	case PassThrough:
		return jump.PassThrough
	default:
		return jump.Polynomial
	}
}

// Config selects one analysis configuration — one column of the paper's
// Tables 2 and 3.
type Config struct {
	// Jump is the forward jump-function flavor.
	Jump JumpFunction

	// ReturnJumpFunctions enables the polynomial return jump functions
	// of §3.2, which model constants a procedure assigns to by-reference
	// parameters and globals (the "ocean" effect).
	ReturnJumpFunctions bool

	// MOD enables interprocedural MOD summaries. When false, value
	// numbering makes worst-case assumptions at every call site
	// (Table 3, column 1).
	MOD bool

	// Complete iterates propagation with dead-code elimination until no
	// dead code is found (Table 3, column 3).
	Complete bool

	// DependenceSolver selects the dependence-driven propagation
	// algorithm of Callahan et al. instead of the paper's simple
	// worklist. Results are identical; only jump functions whose
	// support actually changed are re-evaluated, matching the
	// complexity bound quoted in §3.1.5.
	DependenceSolver bool

	// NoWarmStart makes AnalyzeIncremental solve stage 3 cold from ⊤
	// instead of warm-starting the worklist from the previous
	// snapshot's fixpoint (DESIGN.md, "Demand-driven re-solve"). The
	// Report is identical either way — warm starting only shrinks the
	// solver-effort counters — so the flag exists as an escape hatch
	// and for benchmarking the warm/cold gap. It does not enter the
	// cache key: snapshots written under either setting interoperate.
	NoWarmStart bool

	// Workers bounds the goroutines the per-procedure analysis stages
	// (SSA construction, value numbering, jump-function generation) fan
	// out over. 0 means one worker per available CPU; 1 forces the
	// sequential reference path. The Report is identical for every
	// setting — see DESIGN.md, "Concurrency model".
	Workers int

	// Debug makes the pass runner verify the IR after every pass and
	// fail fast naming the pass that corrupted it. Analysis results are
	// unaffected; only the verification cost is added.
	Debug bool
}

func (c Config) internal() core.Config {
	return core.Config{
		Jump:             c.Jump.kind(),
		ReturnJFs:        c.ReturnJumpFunctions,
		MOD:              c.MOD,
		Complete:         c.Complete,
		DependenceSolver: c.DependenceSolver,
		NoWarmStart:      c.NoWarmStart,
		Workers:          c.Workers,
		Debug:            c.Debug,
	}
}

// PassStat is one entry of a Report's pass trace — a single execution
// of a pass, or the summary line of a fixpoint. Every field except the
// wall-clock Nanos is deterministic.
type PassStat = pass.Stat

// DescribePipeline renders the pass composition a configuration would
// execute, one line per element, without running anything.
func DescribePipeline(cfg Config) []string {
	return core.PipelineDescription(cfg.internal())
}

// Program is a parsed, semantically analyzed MiniFortran program, ready
// to be analyzed any number of times under different configurations.
//
// A Program is immutable after Load; Analyze, AnalyzeIntraprocedural,
// Execute, and the other methods each work on a freshly lowered IR, so
// they are safe to call concurrently from multiple goroutines (the
// table generator runs one goroutine per benchmark program).
type Program struct {
	sp *sema.Program

	// xformCtx lazily caches a pass Context over one lowering of the
	// program — TransformedSource reuses its callgraph/modref instead
	// of recomputing them per call. The Context's lazy getters are
	// mutex-guarded, so concurrent TransformedSource calls are safe.
	xformOnce sync.Once
	xformCtx  *pass.Context
}

// transformContext returns the Program's cached transformation Context.
func (p *Program) transformContext() *pass.Context {
	p.xformOnce.Do(func() {
		p.xformCtx = pass.NewContext(irbuild.Build(p.sp))
	})
	return p.xformCtx
}

// Load parses and semantically analyzes MiniFortran source text.
func Load(source string) (*Program, error) {
	file, err := parser.Parse(source)
	if err != nil {
		return nil, fmt.Errorf("ipcp: %w", err)
	}
	sp, err := sema.Analyze(file)
	if err != nil {
		return nil, fmt.Errorf("ipcp: %w", err)
	}
	return &Program{sp: sp}, nil
}

// LoadFile reads and loads a MiniFortran source file.
func LoadFile(path string) (*Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ipcp: %w", err)
	}
	return Load(string(data))
}

// MustLoad is Load that panics on error; intended for tests, examples,
// and embedded sources known to be valid.
func MustLoad(source string) *Program {
	p, err := Load(source)
	if err != nil {
		panic(err)
	}
	return p
}

// Constant is one member of a CONSTANTS(p) set: a formal parameter or
// global variable proven to hold Value whenever Procedure is invoked.
type Constant struct {
	Procedure string
	Name      string
	Global    bool
	Value     int64
}

// ProcedureReport is the per-procedure analysis outcome.
type ProcedureReport struct {
	Name string

	// Constants is CONSTANTS(p), sorted by name.
	Constants []Constant

	// Substituted counts the textual references to interprocedural
	// constants that the transformer replaces with literals — the
	// Metzger–Stroud metric the paper's tables report.
	Substituted int

	// ControlFlowSubstituted is the subset of Substituted sitting in
	// loop bounds, strides, and branch conditions — the references the
	// study's motivation (§1, §4) is about: they feed dependence
	// analysis and parallelization decisions.
	ControlFlowSubstituted int
}

// Report is the outcome of one Analyze run.
type Report struct {
	Config Config

	// Procedures holds per-procedure results, sorted by name.
	Procedures []*ProcedureReport

	// TotalSubstituted is the program-wide substitution count: one cell
	// of the paper's Table 2 or Table 3.
	TotalSubstituted int

	// TotalConstants is the number of entries across all CONSTANTS sets.
	TotalConstants int

	// TotalControlFlowSubstituted counts the substituted references in
	// loop bounds and branch conditions, program-wide.
	TotalControlFlowSubstituted int

	// SolverPasses counts procedure visits of the interprocedural
	// worklist; JFEvaluations counts jump-function evaluations.
	SolverPasses  int
	JFEvaluations int

	// DCERounds counts complete-propagation rounds that removed code.
	DCERounds int

	// JumpFunctionShape tallies the constructed forward jump functions
	// by syntactic form — the data behind §3.1.5's observation that
	// complex polynomial jump functions are rare in practice.
	JumpFunctionShape JumpFunctionShape

	// Passes is the pass-manager trace of the run: one entry per pass
	// execution plus one summary per fixpoint, in completion order.
	// Everything but the Nanos fields is deterministic (the determinism
	// suite compares whole traces with Nanos normalized).
	Passes []PassStat

	// Incremental reports how an AnalyzeIncremental run split the
	// program between reused summaries and re-analysis; nil for plain
	// Analyze runs. It is bookkeeping about the run, not part of the
	// analysis outcome — the incremental≡scratch determinism comparison
	// normalizes it away like Config.Workers and the trace Nanos.
	Incremental *IncrementalStats
}

// PassTrace renders the pass trace as an aligned per-pass table (name,
// runs, rounds, changed, IR delta, wall time).
func (r *Report) PassTrace() string { return pass.FormatStats(r.Passes) }

// JumpFunctionShape classifies constructed forward jump functions.
type JumpFunctionShape struct {
	Bottom      int // ⊥: nothing propagates along this binding
	Constant    int // a known constant
	PassThrough int // exactly one incoming formal or global
	Polynomial  int // a genuine expression over one or more inputs

	// SupportSum accumulates |support| over the pass-through and
	// polynomial forms; SupportSum/(PassThrough+Polynomial) is the
	// paper's "|support| approaches 1" metric.
	SupportSum int
}

// Procedure returns the report for the named procedure (nil if absent).
func (r *Report) Procedure(name string) *ProcedureReport {
	for _, p := range r.Procedures {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// ConstantValue looks up one constant by procedure and name.
func (r *Report) ConstantValue(procedure, name string) (int64, bool) {
	p := r.Procedure(procedure)
	if p == nil {
		return 0, false
	}
	for _, c := range p.Constants {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Analyze runs interprocedural constant propagation under cfg. The
// program can be analyzed repeatedly; every run lowers a fresh IR.
func (p *Program) Analyze(cfg Config) *Report {
	return buildReport(cfg, core.Analyze(p.sp, cfg.internal()))
}

// ErrCanceled reports an analysis abandoned because its context was
// canceled or its deadline expired; errors from AnalyzeContext and the
// other context-aware entry points wrap it (and the context's own
// error, so errors.Is also matches context.Canceled /
// context.DeadlineExceeded).
var ErrCanceled = core.ErrCanceled

// cancelHook adapts a context to the analysis pipeline's cancellation
// hook: polled between passes and inside the interprocedural solver's
// worklist loop, so a canceled analysis stops within one work item.
func cancelHook(ctx context.Context) func() error {
	return func() error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("ipcp: %w: %w", ErrCanceled, err)
		}
		return nil
	}
}

// AnalyzeContext is Analyze under a context: when ctx is canceled or
// its deadline expires mid-run, the analysis is abandoned (the solver
// polls the context per work item) and an error wrapping ErrCanceled
// and the context's error is returned. The long-running analysis
// server wires per-request deadlines through here.
func (p *Program) AnalyzeContext(ctx context.Context, cfg Config) (*Report, error) {
	icfg := cfg.internal()
	icfg.Cancel = cancelHook(ctx)
	res, err := core.AnalyzeErr(p.sp, icfg)
	if err != nil {
		return nil, err
	}
	return buildReport(cfg, res), nil
}

// buildReport converts a core result to the public form.
func buildReport(cfg Config, res *core.Result) *Report {
	rep := &Report{
		Config:           cfg,
		TotalSubstituted: res.TotalSubstituted,
		TotalConstants:   res.TotalConstants,

		TotalControlFlowSubstituted: res.TotalControlFlow,
		SolverPasses:                res.SolverPasses,
		JFEvaluations:               res.JFEvaluations,
		DCERounds:                   res.DCERounds,
		JumpFunctionShape: JumpFunctionShape{
			Bottom:      res.JFShape.Bottom,
			Constant:    res.JFShape.Constant,
			PassThrough: res.JFShape.PassThrough,
			Polynomial:  res.JFShape.Polynomial,
			SupportSum:  res.JFShape.SupportSum,
		},
		Passes: res.Stats.Passes,
	}
	for name, pr := range res.Procs {
		prep := &ProcedureReport{
			Name:                   name,
			Substituted:            pr.Substituted,
			ControlFlowSubstituted: pr.ControlFlowSubstituted,
		}
		for _, c := range pr.Constants {
			prep.Constants = append(prep.Constants, Constant{
				Procedure: name, Name: c.Name, Global: c.Global, Value: c.Value,
			})
		}
		rep.Procedures = append(rep.Procedures, prep)
	}
	sort.Slice(rep.Procedures, func(i, j int) bool {
		return rep.Procedures[i].Name < rep.Procedures[j].Name
	})
	return rep
}

// IntraproceduralReport is the Table 3 column 4 baseline: constants
// found by purely local propagation (with MOD information at call
// sites), counted with the same reference-substitution metric.
type IntraproceduralReport struct {
	// Substituted maps procedure names to reference counts.
	Substituted map[string]int

	// TotalSubstituted is the program-wide count.
	TotalSubstituted int
}

// AnalyzeIntraprocedural runs the strictly intraprocedural baseline.
func (p *Program) AnalyzeIntraprocedural() *IntraproceduralReport {
	res := core.AnalyzeIntraprocedural(p.sp)
	return &IntraproceduralReport{
		Substituted:      res.Substituted,
		TotalSubstituted: res.TotalSubstituted,
	}
}

// Stats describes a program's shape (the paper's Table 1).
type Stats struct {
	Lines              int // noncomment source lines
	Procedures         int // program units
	CallSites          int // textual call sites (CALL statements + function calls)
	MeanLinesPerProc   float64
	MedianLinesPerProc float64
}

// Stats computes the program's Table 1 characteristics.
func (p *Program) Stats() Stats {
	var s Stats
	var lines []int
	for _, u := range p.sp.Units {
		n := irbuild.UnitLines(u.Unit)
		lines = append(lines, n)
		s.Lines += n
		s.Procedures++
	}
	for node, tgt := range p.sp.CallTargets {
		_ = node
		if tgt.Unit != nil {
			s.CallSites++
		}
	}
	if len(lines) > 0 {
		s.MeanLinesPerProc = float64(s.Lines) / float64(len(lines))
		sort.Ints(lines)
		mid := len(lines) / 2
		if len(lines)%2 == 1 {
			s.MedianLinesPerProc = float64(lines[mid])
		} else {
			s.MedianLinesPerProc = float64(lines[mid-1]+lines[mid]) / 2
		}
	}
	return s
}

// Units returns the names of the program's units in source order.
func (p *Program) Units() []string {
	names := make([]string, len(p.sp.Units))
	for i, u := range p.sp.Units {
		names[i] = u.Name
	}
	return names
}

// Format renders the program back to MiniFortran source.
func (p *Program) Format() string { return ast.Format(p.sp.File) }

// Sema exposes the analyzed program to sibling packages inside this
// module (the benchmark suite and command-line tools); external users
// should not need it.
func (p *Program) Sema() *sema.Program { return p.sp }
