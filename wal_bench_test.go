package ipcp_test

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"ipcp"
	"ipcp/internal/suite"
	"ipcp/internal/summary"
	"ipcp/internal/wal"
)

// Durability benchmarks: what the delta chain saves over rewriting the
// full snapshot on a one-procedure edit, and what a boot-time journal
// replay costs at a real program's cache scale.

// BenchmarkSnapshotDeltaChain measures persisting a LEAF0 edit of
// doduc as a chain delta. Beyond ns/op it reports the appended delta's
// size against the full snapshot encoding (delta_bytes / full_bytes) —
// the acceptance bar is the delta staying a small fraction of the
// full rewrite it replaces.
func BenchmarkSnapshotDeltaChain(b *testing.B) {
	src := suite.Generate("doduc", suite.DefaultScale).Source
	edited, ok := editProgramIn(b, src, "LEAF0", 1)
	if !ok {
		b.Fatal("LEAF0 has no editable literals")
	}
	cache := ipcp.NewMemoryCache()
	_, base := ipcp.MustLoad(src).AnalyzeIncremental(benchCfg, nil, cache)
	_, next := ipcp.MustLoad(edited).AnalyzeIncremental(benchCfg, base, cache)

	var deltaBytes, fullBytes float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := filepath.Join(b.TempDir(), "snapshot.snap")
		if _, err := base.SaveChain(path); err != nil {
			b.Fatal(err)
		}
		st, err := next.SaveChain(path)
		if err != nil {
			b.Fatal(err)
		}
		if st.WroteFull {
			b.Fatal("one-procedure edit forced a full rewrite")
		}
		deltaBytes = float64(st.DeltaBytes)
		fullBytes = float64(st.FullBytes)
	}
	b.ReportMetric(deltaBytes, "delta_bytes")
	b.ReportMetric(fullBytes, "full_bytes")
}

// BenchmarkWALReplay measures boot-time recovery: a journal holding
// every summary blob a doduc analysis produced, opened and replayed
// into a fresh store — the work a crashed process adds to its
// successor's startup. wal_replay_ns duplicates ns/op under a stable
// name for BENCH_ipcp.json.
func BenchmarkWALReplay(b *testing.B) {
	donorDir := b.TempDir()
	donor, err := ipcp.NewDiskCache(donorDir)
	if err != nil {
		b.Fatal(err)
	}
	src := suite.Generate("doduc", suite.DefaultScale).Source
	ipcp.MustLoad(src).AnalyzeIncremental(benchCfg, nil, donor)
	type blob struct {
		key     wal.Key
		payload []byte
	}
	var blobs []blob
	entries, err := os.ReadDir(donorDir)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".ipcs" {
			continue
		}
		raw, err := hex.DecodeString(e.Name()[:len(e.Name())-len(".ipcs")])
		if err != nil || len(raw) != sha256.Size {
			continue
		}
		payload, err := os.ReadFile(filepath.Join(donorDir, e.Name()))
		if err != nil {
			b.Fatal(err)
		}
		var k wal.Key
		copy(k[:], raw)
		blobs = append(blobs, blob{key: k, payload: payload})
	}
	if len(blobs) == 0 {
		b.Fatal("donor run produced no blobs")
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		j, err := wal.Open(dir, wal.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for _, bl := range blobs {
			if _, err := j.Append(bl.key, bl.payload); err != nil {
				b.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		j2, err := wal.Open(dir, wal.Options{})
		if err != nil {
			b.Fatal(err)
		}
		store := summary.NewMemStore(0)
		rs, err := summary.RecoverJournal(j2, store)
		if err != nil {
			b.Fatal(err)
		}
		if rs.Replayed != len(blobs) {
			b.Fatalf("replayed %d of %d records", rs.Replayed, len(blobs))
		}
		j2.Close()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "wal_replay_ns")
}
