package ipcp_test

import (
	"fmt"
	"reflect"
	"testing"

	"ipcp"
	"ipcp/internal/suite"
)

// This file is the differential proof of the analyzer's determinism
// guarantee: for any program and any configuration, the parallel
// pipeline (Config.Workers > 1, plus the matrix-level fan-out of
// AnalyzeMatrix) produces a Report reflect.DeepEqual to the sequential
// reference (Config.Workers == 1, one Analyze per configuration) —
// including the solver-effort counters, not just the CONSTANTS sets.
// Run under -race (scripts/check.sh does) this doubles as the
// shared-state audit of every fan-out path.

// determinismSeeds returns the number of random programs to sweep:
// ≥200 in full mode per the acceptance criteria, fewer under -short.
func determinismSeeds(t *testing.T) int {
	if testing.Short() {
		return 40
	}
	return 200
}

// determinismConfigs is the configuration grid: the full 4-flavor ×
// MOD × return-JF matrix, plus complete-propagation variants across
// the jump-function flavors and the dependence-solver combinations of
// the most precise configuration. The complete-mode rows route the
// whole grid through the pass-manager fixpoint driver.
func determinismConfigs() []ipcp.Config {
	cfgs := ipcp.FullMatrix()
	cfgs = append(cfgs,
		ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true, Complete: true},
		ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true, Complete: true},
		ipcp.Config{Jump: ipcp.Literal, Complete: true},
		ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true, DependenceSolver: true},
		ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true, DependenceSolver: true, Complete: true},
	)
	return cfgs
}

// normalizeReports clears the Report fields that legitimately differ
// between the sequential and parallel runs: the echoed Config.Workers
// knob and the wall-clock Nanos of each pass-trace entry. Everything
// else — the full trace included — must match exactly.
func normalizeReports(reps []*ipcp.Report) {
	for _, r := range reps {
		r.Config.Workers = 0
		for i := range r.Passes {
			r.Passes[i].Nanos = 0
		}
	}
}

// withWorkers returns a copy of the grid with every configuration's
// worker count pinned to n.
func withWorkers(cfgs []ipcp.Config, n int) []ipcp.Config {
	out := make([]ipcp.Config, len(cfgs))
	for i, c := range cfgs {
		out[i] = c
		out[i].Workers = n
	}
	return out
}

func TestDeterminismRandomSuite(t *testing.T) {
	nseeds := determinismSeeds(t)
	cfgs := determinismConfigs()
	for seed := 0; seed < nseeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			size := 2 + seed%9 // programs from ~2 to ~12 procedures
			gen := suite.Random(int64(seed), size)
			prog, err := ipcp.Load(gen.Source)
			if err != nil {
				t.Fatalf("random program %d invalid: %v", seed, err)
			}

			// Sequential reference: one fresh Analyze per configuration,
			// single worker everywhere.
			seq := make([]*ipcp.Report, len(cfgs))
			for i, cfg := range cfgs {
				cfg.Workers = 1
				seq[i] = prog.Analyze(cfg)
			}

			// Parallel run: matrix-level fan-out over cloned IRs, each
			// pipeline itself running on 8 workers. And a second parallel
			// run, so parallel agrees with parallel, not just with the
			// sequential baseline.
			par := prog.AnalyzeMatrix(withWorkers(cfgs, 8), 8)
			par2 := prog.AnalyzeMatrix(withWorkers(cfgs, 8), 8)

			normalizeReports(seq)
			normalizeReports(par)
			normalizeReports(par2)
			for i := range cfgs {
				if !reflect.DeepEqual(seq[i], par[i]) {
					t.Fatalf("seed %d config %+v: parallel report diverges from sequential\nseq: %+v\npar: %+v",
						seed, cfgs[i], seq[i], par[i])
				}
				if !reflect.DeepEqual(par[i], par2[i]) {
					t.Fatalf("seed %d config %+v: two parallel runs disagree", seed, cfgs[i])
				}
			}
		})
	}
}

// TestDeterminismHandBuiltSuite pins the guarantee on the 12 structured
// benchmark programs too — their call-graph shapes (deep pass-through
// chains, initialization routines, skewed procedure sizes) exercise
// wave schedules the random generator rarely produces.
func TestDeterminismHandBuiltSuite(t *testing.T) {
	cfgs := determinismConfigs()
	for _, name := range suite.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			gen := suite.Generate(name, 2)
			prog, err := ipcp.Load(gen.Source)
			if err != nil {
				t.Fatal(err)
			}
			seq := make([]*ipcp.Report, len(cfgs))
			for i, cfg := range cfgs {
				cfg.Workers = 1
				seq[i] = prog.Analyze(cfg)
			}
			par := prog.AnalyzeMatrix(withWorkers(cfgs, 8), 8)
			normalizeReports(seq)
			normalizeReports(par)
			for i := range cfgs {
				if !reflect.DeepEqual(seq[i], par[i]) {
					t.Fatalf("%s config %+v: parallel report diverges from sequential", name, cfgs[i])
				}
			}
		})
	}
}

// TestDeterminismRepeatedParallelRuns hammers one moderately sized
// program with repeated parallel analyses under one configuration; any
// schedule-dependence in the wave pipeline shows up as run-to-run
// drift even when the sequential comparison would pass.
func TestDeterminismRepeatedParallelRuns(t *testing.T) {
	prog := ipcp.MustLoad(suite.Generate("ocean", 4).Source)
	cfg := ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true, Workers: 8}
	first := prog.Analyze(cfg)
	normalizeReports([]*ipcp.Report{first})
	runs := 20
	if testing.Short() {
		runs = 5
	}
	for i := 0; i < runs; i++ {
		rep := prog.Analyze(cfg)
		normalizeReports([]*ipcp.Report{rep})
		if !reflect.DeepEqual(first, rep) {
			t.Fatalf("run %d diverged from run 0", i+1)
		}
	}
}

// TestDeterminismCloning extends the guarantee to the clone-and-analyze
// fixpoint: the cloning rounds, the clone names, and every reanalysis
// must come out identical whether the underlying propagations run
// sequentially or on 8 workers.
func TestDeterminismCloning(t *testing.T) {
	cfg := ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true}
	opts := ipcp.CloneOptions{MaxVersionsPerProc: 8, MaxRounds: 3}
	for _, name := range []string{"ocean", "linpackd", "spec77"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			gen := suite.Generate(name, 2)
			if gen == nil {
				t.Skipf("suite program %s unavailable", name)
			}
			prog := ipcp.MustLoad(gen.Source)

			seqCfg := cfg
			seqCfg.Workers = 1
			seq := prog.AnalyzeWithCloning(seqCfg, opts)
			parCfg := cfg
			parCfg.Workers = 8
			par := prog.AnalyzeWithCloning(parCfg, opts)

			if seq.Rounds != par.Rounds || seq.TotalClones != par.TotalClones {
				t.Fatalf("cloning diverged: seq %d rounds/%d clones, par %d rounds/%d clones",
					seq.Rounds, seq.TotalClones, par.Rounds, par.TotalClones)
			}
			normalizeReports([]*ipcp.Report{seq.Base, seq.Final, par.Base, par.Final})
			if !reflect.DeepEqual(seq.Base, par.Base) {
				t.Fatal("base report diverged between sequential and parallel cloning runs")
			}
			if !reflect.DeepEqual(seq.Final, par.Final) {
				t.Fatal("final report diverged between sequential and parallel cloning runs")
			}
		})
	}
}

// TestAnalyzeMatrixMatchesAnalyze checks the matrix runner's IR-cloning
// shortcut against per-configuration lowering on the realistic corpus
// programs (COMMON blocks, arrays, GOTOs — everything CloneProgram must
// reproduce faithfully).
func TestAnalyzeMatrixMatchesAnalyze(t *testing.T) {
	for _, path := range corpusFiles(t) {
		prog, err := ipcp.LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		cfgs := determinismConfigs()
		direct := make([]*ipcp.Report, len(cfgs))
		for i, cfg := range cfgs {
			direct[i] = prog.Analyze(cfg)
		}
		matrix := prog.AnalyzeMatrix(cfgs, 0)
		normalizeReports(direct)
		normalizeReports(matrix)
		for i := range cfgs {
			if !reflect.DeepEqual(direct[i], matrix[i]) {
				t.Fatalf("%s config %+v: matrix report diverges from direct Analyze", path, cfgs[i])
			}
		}
	}
}
