package ipcp_test

import (
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"ipcp"
	"ipcp/internal/suite"
)

// Regression guard for the shared-state audit: a loaded Program claims
// to be immutable, so every entry point must be callable from many
// goroutines at once. The test drives all of them concurrently against
// one Program instance; run under -race (scripts/check.sh) it would
// have caught a lazily-initialized map or a memoized AST annotation the
// moment one appeared. The determinism suite exercises only Analyze and
// AnalyzeMatrix — this covers the rest of the public surface.
func TestProgramConcurrentEntryPoints(t *testing.T) {
	prog, err := ipcp.LoadFile(filepath.Join("testdata", "sort.f"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true}
	want := prog.Analyze(cfg)
	normalizeReports([]*ipcp.Report{want})

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*8)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep := prog.Analyze(cfg)
			normalizeReports([]*ipcp.Report{rep})
			if !reflect.DeepEqual(rep, want) {
				errs <- "Analyze diverged under concurrency"
			}
			prog.AnalyzeIntraprocedural()
			prog.AnalyzeWithCloning(cfg, ipcp.CloneOptions{})
			prog.Stats()
			prog.Units()
			prog.Format()
			if res := prog.Execute(ipcp.ExecOptions{}); res.Err != nil {
				errs <- res.Err.Error()
			}
			if _, _, err := prog.TransformedSource(want); err != nil {
				errs <- err.Error()
			}
			if v := prog.VerifyConstants(want, ipcp.ExecOptions{}); len(v) != 0 {
				errs <- v[0]
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// One sema.Program feeding many concurrent matrix runs is exactly the
// sharing pattern the table generator uses; pin it on a program with
// recursion-free deep call chains plus a COMMON-seeding initializer
// (the return-jump-function wave schedule's hardest customer).
func TestAnalyzeMatrixConcurrentSameProgram(t *testing.T) {
	prog := ipcp.MustLoad(suite.Generate("ocean", 2).Source)
	cfgs := ipcp.FullMatrix()
	want := prog.AnalyzeMatrix(cfgs, 1)
	normalizeReports(want)

	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := prog.AnalyzeMatrix(cfgs, 4)
			normalizeReports(got)
			for i := range cfgs {
				if !reflect.DeepEqual(got[i], want[i]) {
					mu.Lock()
					failures = append(failures, "concurrent matrix run diverged")
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, f := range failures {
		t.Error(f)
	}
}
