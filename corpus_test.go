package ipcp_test

import (
	"os"
	"path/filepath"
	"testing"

	"ipcp"
)

// The corpus in testdata/ consists of realistic hand-written MiniFortran
// programs that exercise the full language surface (labeled DO loops,
// GOTO-driven control flow, DO WHILE, functions, intrinsics, PARAMETER,
// DATA, COMMON, 2-D arrays). Every program must load, analyze under all
// configurations, and survive the source transformer.
func corpusFiles(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "*.f"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	return files
}

func TestCorpusLoads(t *testing.T) {
	for _, path := range corpusFiles(t) {
		t.Run(filepath.Base(path), func(t *testing.T) {
			prog, err := ipcp.LoadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			st := prog.Stats()
			if st.Procedures < 2 || st.Lines < 20 {
				t.Errorf("suspiciously small corpus program: %+v", st)
			}
		})
	}
}

func TestCorpusAnalyzesUnderAllConfigurations(t *testing.T) {
	for _, path := range corpusFiles(t) {
		prog, err := ipcp.LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		name := filepath.Base(path)
		prev := -1
		for _, flavor := range ipcp.JumpFunctions {
			rep := prog.Analyze(ipcp.Config{Jump: flavor, ReturnJumpFunctions: true, MOD: true})
			if rep.TotalSubstituted < prev {
				t.Errorf("%s: flavor ordering violated at %v", name, flavor)
			}
			prev = rep.TotalSubstituted
		}
		// Every corpus program has interprocedural constants to find.
		if prev == 0 {
			t.Errorf("%s: polynomial flavor found nothing", name)
		}
		// The remaining axes must run clean.
		prog.Analyze(ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: false})
		prog.Analyze(ipcp.Config{Jump: ipcp.Polynomial, MOD: true})
		prog.Analyze(ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true, Complete: true})
		prog.Analyze(ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true, DependenceSolver: true})
		prog.AnalyzeIntraprocedural()
	}
}

func TestCorpusExpectedConstants(t *testing.T) {
	cases := []struct {
		file, proc, name string
		value            int64
	}{
		// heat.f: SETUP seeds the grid configuration; MARCH sees it via
		// return jump functions.
		{"heat.f", "MARCH", "CFG.NCELL", 1024},
		{"heat.f", "STENCIL", "CFG.NCELL", 1024},
		{"heat.f", "MARCH", "CFG.IOUT", 50},
		// gauss.f: the dimensions pass through the factor/solve chain.
		{"gauss.f", "GEFA", "N", 64},
		{"gauss.f", "GESL", "N", 64},
		{"gauss.f", "GEFA", "LDA", 64},
		// sort.f: the element count flows into BUBBLE and CHKSUM.
		{"sort.f", "BUBBLE", "N", 100},
		{"sort.f", "CHKSUM", "N", 100},
		// quadrature.f: rule parameters reach the panel kernel.
		{"quadrature.f", "PANEL", "RULE.NORDER", 4},
		{"quadrature.f", "INTEGRATE", "RULE.NPANEL", 128},
		// stats.f: PARAMETER constants are literals at the call sites.
		{"stats.f", "HIST", "N", 240},
		{"stats.f", "HIST", "NB", 12},
		{"stats.f", "IMIN", "N", 240},
	}
	reports := map[string]*ipcp.Report{}
	for _, tc := range cases {
		rep, ok := reports[tc.file]
		if !ok {
			prog, err := ipcp.LoadFile(filepath.Join("testdata", tc.file))
			if err != nil {
				t.Fatal(err)
			}
			rep = prog.Analyze(ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true})
			reports[tc.file] = rep
		}
		if v, ok := rep.ConstantValue(tc.proc, tc.name); !ok || v != tc.value {
			t.Errorf("%s: %s.%s = %v,%v want %d", tc.file, tc.proc, tc.name, v, ok, tc.value)
		}
	}
	// NSTEP in heat.f hides behind the debug READ; only complete
	// propagation exposes it.
	prog, _ := ipcp.LoadFile(filepath.Join("testdata", "heat.f"))
	plain := reports["heat.f"]
	if _, ok := plain.ConstantValue("MARCH", "CFG.NSTEP"); ok {
		t.Error("heat.f: NSTEP should be hidden by the debug guard")
	}
	complete := prog.Analyze(ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true, Complete: true})
	if v, ok := complete.ConstantValue("MARCH", "CFG.NSTEP"); !ok || v != 500 {
		t.Errorf("heat.f complete: NSTEP = %v,%v want 500", v, ok)
	}
}

func TestCorpusTransformRoundTrip(t *testing.T) {
	for _, path := range corpusFiles(t) {
		prog, err := ipcp.LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		rep := prog.Analyze(ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true})
		src, n, err := prog.TransformedSource(rep)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if _, err := ipcp.Load(src); err != nil {
			t.Fatalf("%s: transformed source invalid: %v\n%s", path, err, src)
		}
		if n == 0 && rep.TotalSubstituted > 0 {
			// Conservative transformer may substitute fewer, but not zero
			// when there are unmodified constant parameters around.
			t.Logf("%s: IR counts %d but textual transformer substituted none", path, rep.TotalSubstituted)
		}
	}
}

func TestCorpusFormatStable(t *testing.T) {
	for _, path := range corpusFiles(t) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		p1, err := ipcp.Load(string(data))
		if err != nil {
			t.Fatal(err)
		}
		once := p1.Format()
		p2, err := ipcp.Load(once)
		if err != nil {
			t.Fatalf("%s: reload of formatted source failed: %v", path, err)
		}
		if twice := p2.Format(); once != twice {
			t.Errorf("%s: format not idempotent", path)
		}
	}
}
