#!/bin/sh
# check.sh — the repo's CI gate.
#
# Runs, in order:
#   1. gofmt -l        formatting gate (fails listing unformatted files)
#   2. go vet          static checks
#   2b. ipcplint       the repo's own invariant-checker suite
#                      (internal/lint) run through go vet -vettool, so
#                      every failure names the analyzer and position;
#                      see DESIGN.md "Static analysis of the analyzer"
#   3. go build        every package compiles
#   4. go test -race   the full test suite under the race detector,
#                      which turns the concurrency regression tests and
#                      the determinism differential suite into a
#                      shared-state audit of the parallel pipeline
#   5. the determinism suite a second time (-count=2 disables test
#      caching), so schedule-dependent flakiness has two chances to
#      show up per CI run
#   6. a CLI smoke run of the pass-manager instrumentation
#      (-trace-passes on a complete-propagation analysis)
#   7. an incremental smoke run: analyze ocean twice through a disk
#      cache; the second run must reuse every summary (100% hit rate),
#      then a shared-cache flavor sweep (ipcp -all): the second flavor
#      must hit the flavor-invariant stage-1 layer the first one wrote
#   8. an analysis-server smoke run: start ipcpd on an ephemeral port,
#      analyze ocean through it twice with ipcp -server (the second
#      run must hit the daemon's resident snapshot), then SIGTERM it
#      and require a clean graceful drain
#   9. a crash-durability smoke: start ipcpd -cache-dir, analyze ocean
#      through it (every summary acked), kill -9 the daemon, restart it
#      on the same directory, and require both that the write-ahead
#      journal metrics are exposed and that a re-run reuses every
#      summary — a SIGKILL after an acked Put may lose nothing
#  10. a fleet smoke run: start ipcpd -workers 2, batch four files
#      whose lineages deterministically span both shards, verify the
#      routing distribution in /metrics, SIGKILL one worker and require
#      both immediate failover and a supervised restart, then SIGTERM
#      the fleet and require a clean drain that reaps every worker
#  11. a short fuzz smoke of FuzzIncrementalEditChain, the
#      warm-vs-scratch differential over fuzzer-chosen edit chains
#
# Usage: scripts/check.sh [-short]
#   -short trims the random-program sweeps (200 -> 40 seeds) for a
#   faster local pre-commit pass; CI should run the full version.

set -eu

cd "$(dirname "$0")/.."

short=""
if [ "${1:-}" = "-short" ]; then
    short="-short"
fi

echo "==> gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> ipcplint (go vet -vettool) ./..."
lintdir=$(mktemp -d)
go build -o "$lintdir/ipcplint" ./cmd/ipcplint
# Failures print as file:line:col: message [analyzer] and exit non-zero.
go vet -vettool="$lintdir/ipcplint" ./...
rm -rf "$lintdir"

echo "==> go build ./..."
go build ./...

echo "==> go test -race $short ./..."
go test -race $short ./...

echo "==> go test -race -run 'TestDeterminism' -count=2 $short ."
go test -race -run 'TestDeterminism' -count=2 $short .

echo "==> pass-trace smoke (ipcp -suite ocean -complete -trace-passes)"
# Capture the output first: in a `go run ... | grep -q` pipeline under
# plain sh (no pipefail) a go run failure would be masked by grep's
# exit status; assigning to a variable makes set -e see it.
trace=$(go run ./cmd/ipcp -suite ocean -complete -trace-passes)
echo "$trace" | grep -q '^propagate' \
    || { echo "pass trace missing propagate row" >&2; exit 1; }

echo "==> incremental smoke (ipcp -suite ocean -cache-dir, run twice)"
cachedir=$(mktemp -d)
ipcpd_pid=""
fleet_pid=""
cleanup() {
    if [ -n "$ipcpd_pid" ]; then
        kill "$ipcpd_pid" 2>/dev/null || true
    fi
    if [ -n "$fleet_pid" ]; then
        kill "$fleet_pid" 2>/dev/null || true
    fi
    rm -rf "$cachedir"
}
trap cleanup EXIT
go run ./cmd/ipcp -suite ocean -cache-dir "$cachedir" > /dev/null
warm=$(go run ./cmd/ipcp -suite ocean -cache-dir "$cachedir")
echo "$warm" | grep -q '100.0% hit rate' \
    || { echo "warm incremental run did not reuse every summary:" >&2; echo "$warm" >&2; exit 1; }
echo "$warm" | grep -q 'warm, 0-procedure cone' \
    || { echo "unchanged re-run did not warm-start with an empty cone:" >&2; echo "$warm" >&2; exit 1; }

echo "==> shared-cache sweep smoke (ipcp -all -suite ocean, flavor-split stage-1 reuse)"
sweep=$(go run ./cmd/ipcp -all -suite ocean -cache-dir "$cachedir/sweep")
# Row 3 is the second flavor; column NF-1 is its s1-hits count, which
# must be > 0: the stage-1 blobs the first flavor wrote are keyed
# without the jump-function flavor, so every later flavor reuses them.
second_hits=$(echo "$sweep" | awk 'NR==3 {print $(NF-1)}')
[ "${second_hits:-0}" -gt 0 ] 2>/dev/null \
    || { echo "second flavor of the shared-cache sweep saw no stage-1 hits:" >&2; echo "$sweep" >&2; exit 1; }

echo "==> analysis-server smoke (ipcpd ephemeral port, remote analyze, graceful drain)"
go build -o "$cachedir/ipcpd" ./cmd/ipcpd
"$cachedir/ipcpd" -addr 127.0.0.1:0 > "$cachedir/ipcpd.log" 2>&1 &
ipcpd_pid=$!
addr=""
for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
    addr=$(sed -n 's/^ipcpd: listening on //p' "$cachedir/ipcpd.log")
    [ -n "$addr" ] && break
    sleep 0.25
done
[ -n "$addr" ] || { echo "ipcpd never reported its address:" >&2; cat "$cachedir/ipcpd.log" >&2; exit 1; }
go run ./cmd/ipcp -server "$addr" -suite ocean > /dev/null
served=$(go run ./cmd/ipcp -server "$addr" -suite ocean)
echo "$served" | grep -q '100.0% hit rate' \
    || { echo "second served run did not hit the daemon's resident snapshot:" >&2; echo "$served" >&2; exit 1; }
kill -TERM "$ipcpd_pid"
wait "$ipcpd_pid" \
    || { echo "ipcpd did not drain cleanly:" >&2; cat "$cachedir/ipcpd.log" >&2; exit 1; }
ipcpd_pid=""

echo "==> WAL durability smoke (ipcpd -cache-dir, kill -9, restart, zero loss)"
waldir="$cachedir/waldir"
"$cachedir/ipcpd" -addr 127.0.0.1:0 -cache-dir "$waldir" > "$cachedir/wal.log" 2>&1 &
ipcpd_pid=$!
addr=""
for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
    addr=$(sed -n 's/^ipcpd: listening on //p' "$cachedir/wal.log")
    [ -n "$addr" ] && break
    sleep 0.25
done
[ -n "$addr" ] || { echo "durable ipcpd never reported its address:" >&2; cat "$cachedir/wal.log" >&2; exit 1; }
# Every summary this run produces is acked — journaled before the
# response — so none of them may be lost to the SIGKILL that follows,
# whether or not the async disk write-backs had finished.
go run ./cmd/ipcp -server "$addr" -suite ocean > /dev/null
kill -9 "$ipcpd_pid"
wait "$ipcpd_pid" 2>/dev/null || true
ipcpd_pid=""
"$cachedir/ipcpd" -addr 127.0.0.1:0 -cache-dir "$waldir" > "$cachedir/wal2.log" 2>&1 &
ipcpd_pid=$!
addr=""
for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
    addr=$(sed -n 's/^ipcpd: listening on //p' "$cachedir/wal2.log")
    [ -n "$addr" ] && break
    sleep 0.25
done
[ -n "$addr" ] || { echo "restarted ipcpd never reported its address:" >&2; cat "$cachedir/wal2.log" >&2; exit 1; }
go run ./cmd/ipcp -server "$addr" -metrics | grep -q 'ipcpd_wal_replayed_total' \
    || { echo "restarted ipcpd does not expose WAL replay metrics" >&2; exit 1; }
rerun=$(go run ./cmd/ipcp -server "$addr" -suite ocean)
echo "$rerun" | grep -q '100.0% hit rate' \
    || { echo "summaries lost across kill -9 (re-run not fully warm):" >&2; echo "$rerun" >&2; cat "$cachedir/wal2.log" >&2; exit 1; }
kill -TERM "$ipcpd_pid"
wait "$ipcpd_pid" \
    || { echo "durable ipcpd did not drain cleanly:" >&2; cat "$cachedir/wal2.log" >&2; exit 1; }
ipcpd_pid=""

echo "==> fleet smoke (ipcpd -workers 2: cross-shard batch, crash failover, drain)"
go build -o "$cachedir/ipcp" ./cmd/ipcp
# One small program under four names. The names are chosen so that
# rendezvous routing under the default configuration deterministically
# puts fleet-a/c on shard 1 and fleet-b/d on shard 0 — the batch spans
# both shards on every run (TestRouteAnalyzeMatchesDispatchKey pins
# the hash).
cat > "$cachedir/fleet-a.f" <<'EOF'
PROGRAM DRIVER
  INTEGER N, TOL
  N = 1000
  TOL = 5
  CALL SOLVE(N, TOL)
END

SUBROUTINE SOLVE(NPTS, ITOL)
  INTEGER NPTS, ITOL, I, ACC
  ACC = 0
  DO I = 1, NPTS
    ACC = ACC + ITOL
  ENDDO
  RETURN
END
EOF
for f in fleet-b.f fleet-c.f fleet-d.f; do
    cp "$cachedir/fleet-a.f" "$cachedir/$f"
done
"$cachedir/ipcpd" -addr 127.0.0.1:0 -workers 2 > "$cachedir/fleet.log" 2>&1 &
fleet_pid=$!
fleet_addr=""
for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
    fleet_addr=$(sed -n 's/^ipcpd: listening on //p' "$cachedir/fleet.log")
    if [ -n "$fleet_addr" ] && grep -q 'fleet: 2 workers ready' "$cachedir/fleet.log"; then
        break
    fi
    fleet_addr=""
    sleep 0.25
done
[ -n "$fleet_addr" ] || { echo "fleet never became ready:" >&2; cat "$cachedir/fleet.log" >&2; exit 1; }

batch=$(cd "$cachedir" && ./ipcp -server "$fleet_addr" fleet-a.f fleet-b.f fleet-c.f fleet-d.f)
for f in fleet-a.f fleet-b.f fleet-c.f fleet-d.f; do
    echo "$batch" | grep -q "^$f:" \
        || { echo "batch result missing $f:" >&2; echo "$batch" >&2; exit 1; }
done
metrics=$("$cachedir/ipcp" -server "$fleet_addr" -metrics)
for shard in 0 1; do
    echo "$metrics" | grep -q "ipcpd_fleet_routed_total{shard=\"$shard\"} [1-9]" \
        || { echo "batch did not route anything to shard $shard:" >&2; echo "$metrics" | grep fleet_routed >&2; exit 1; }
done

# Crash one worker (shard 1 owns fleet-a.f): the very next request must
# fail over to the surviving shard, and the supervisor must restart the
# dead one within its backoff bound.
w1pid=$(sed -n 's/.*fleet: shard 1 ready on .* (pid \([0-9]*\)).*/\1/p' "$cachedir/fleet.log" | head -n 1)
[ -n "$w1pid" ] || { echo "could not find shard 1's pid in the fleet log" >&2; cat "$cachedir/fleet.log" >&2; exit 1; }
kill -9 "$w1pid"
(cd "$cachedir" && ./ipcp -server "$fleet_addr" fleet-a.f > /dev/null) \
    || { echo "request for the dead shard's lineage did not fail over" >&2; cat "$cachedir/fleet.log" >&2; exit 1; }
restarted=0
for _ in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
    if [ "$(grep -c 'fleet: shard 1 ready' "$cachedir/fleet.log")" -ge 2 ]; then
        restarted=1
        break
    fi
    sleep 0.25
done
[ "$restarted" = 1 ] || { echo "shard 1 was not restarted after its crash:" >&2; cat "$cachedir/fleet.log" >&2; exit 1; }
"$cachedir/ipcp" -server "$fleet_addr" -metrics | grep -q 'ipcpd_fleet_restarts_total{shard="1"} 1' \
    || { echo "restart not counted in fleet metrics" >&2; exit 1; }

# Graceful drain must reap every worker process.
w0pid=$(sed -n 's/.*fleet: shard 0 ready on .* (pid \([0-9]*\)).*/\1/p' "$cachedir/fleet.log" | head -n 1)
w1pid=$(sed -n 's/.*fleet: shard 1 ready on .* (pid \([0-9]*\)).*/\1/p' "$cachedir/fleet.log" | tail -n 1)
kill -TERM "$fleet_pid"
wait "$fleet_pid" \
    || { echo "fleet did not drain cleanly:" >&2; cat "$cachedir/fleet.log" >&2; exit 1; }
fleet_pid=""
for pid in $w0pid $w1pid; do
    if kill -0 "$pid" 2>/dev/null; then
        echo "worker $pid survived the fleet drain" >&2
        exit 1
    fi
done

echo "==> fuzz smoke (FuzzIncrementalEditChain, 10s)"
go test -fuzz 'FuzzIncrementalEditChain' -fuzztime 10s -run '^$' .

echo "OK"
