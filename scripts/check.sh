#!/bin/sh
# check.sh — the repo's CI gate.
#
# Runs, in order:
#   1. gofmt -l        formatting gate (fails listing unformatted files)
#   2. go vet          static checks
#   3. go build        every package compiles
#   4. go test -race   the full test suite under the race detector,
#                      which turns the concurrency regression tests and
#                      the determinism differential suite into a
#                      shared-state audit of the parallel pipeline
#   5. the determinism suite a second time (-count=2 disables test
#      caching), so schedule-dependent flakiness has two chances to
#      show up per CI run
#   6. a CLI smoke run of the pass-manager instrumentation
#      (-trace-passes on a complete-propagation analysis)
#   7. an incremental smoke run: analyze ocean twice through a disk
#      cache; the second run must reuse every summary (100% hit rate)
#
# Usage: scripts/check.sh [-short]
#   -short trims the random-program sweeps (200 -> 40 seeds) for a
#   faster local pre-commit pass; CI should run the full version.

set -eu

cd "$(dirname "$0")/.."

short=""
if [ "${1:-}" = "-short" ]; then
    short="-short"
fi

echo "==> gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race $short ./..."
go test -race $short ./...

echo "==> go test -race -run 'TestDeterminism' -count=2 $short ."
go test -race -run 'TestDeterminism' -count=2 $short .

echo "==> pass-trace smoke (ipcp -suite ocean -complete -trace-passes)"
# Capture the output first: in a `go run ... | grep -q` pipeline under
# plain sh (no pipefail) a go run failure would be masked by grep's
# exit status; assigning to a variable makes set -e see it.
trace=$(go run ./cmd/ipcp -suite ocean -complete -trace-passes)
echo "$trace" | grep -q '^propagate' \
    || { echo "pass trace missing propagate row" >&2; exit 1; }

echo "==> incremental smoke (ipcp -suite ocean -cache-dir, run twice)"
cachedir=$(mktemp -d)
trap 'rm -rf "$cachedir"' EXIT
go run ./cmd/ipcp -suite ocean -cache-dir "$cachedir" > /dev/null
warm=$(go run ./cmd/ipcp -suite ocean -cache-dir "$cachedir")
echo "$warm" | grep -q '100.0% hit rate' \
    || { echo "warm incremental run did not reuse every summary:" >&2; echo "$warm" >&2; exit 1; }

echo "OK"
