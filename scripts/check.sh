#!/bin/sh
# check.sh — the repo's CI gate.
#
# Runs, in order:
#   1. go vet          static checks
#   2. go build        every package compiles
#   3. go test -race   the full test suite under the race detector,
#                      which turns the concurrency regression tests and
#                      the determinism differential suite into a
#                      shared-state audit of the parallel pipeline
#   4. the determinism suite a second time (-count=2 disables test
#      caching), so schedule-dependent flakiness has two chances to
#      show up per CI run
#
# Usage: scripts/check.sh [-short]
#   -short trims the random-program sweeps (200 -> 40 seeds) for a
#   faster local pre-commit pass; CI should run the full version.

set -eu

cd "$(dirname "$0")/.."

short=""
if [ "${1:-}" = "-short" ]; then
    short="-short"
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race $short ./..."
go test -race $short ./...

echo "==> go test -race -run 'TestDeterminism' -count=2 $short ."
go test -race -run 'TestDeterminism' -count=2 $short .

echo "OK"
