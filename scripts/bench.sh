#!/bin/sh
# bench.sh — run the repo's benchmark suites and emit BENCH_ipcp.json.
#
# Covers the five benchmark-bearing packages:
#   .                 end-to-end analysis, table generation, and the
#                     scratch-vs-incremental comparison over doduc
#   ./internal/core   solver, stage, and substitution-count benchmarks
#   ./internal/interp the differential-oracle interpreter
#   ./internal/server the analysis-server throughput benchmark, which
#                     also reports req/s and p50/p99 request latency
#   ./internal/fleet  the sharded-fleet /v1/batch throughput benchmark
#                     (per-item req/s, p50/p99 batch latency across two
#                     in-process worker shards)
#
# The JSON output is one object per benchmark with the package, name,
# iteration count, ns/op, and (with -benchmem) B/op and allocs/op —
# plus req_per_s / p50_ns / p99_ns for the server benchmark,
# warm_worklist_visited / cold_worklist_visited for the warm-vs-cold
# re-solve pair, s1_hit_rate / shared_cache_bytes /
# isolated_cache_bytes for the cross-flavor shared-cache sweep (the
# flavor-split key payoff), delta_bytes / full_bytes for the snapshot
# delta-chain benchmark (the delta must stay a small fraction of the
# full rewrite), and wal_replay_ns for boot-time journal recovery —
# flat enough for jq or a spreadsheet without a Go-bench parser.
#
# Usage: scripts/bench.sh [-quick]
#   -quick runs each benchmark for 100ms instead of the 1s default,
#   for a fast local smoke; numbers from it are noisy.

set -eu

cd "$(dirname "$0")/.."

benchtime="1s"
if [ "${1:-}" = "-quick" ]; then
    benchtime="100ms"
fi

out="BENCH_ipcp.json"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

for pkg in . ./internal/core ./internal/interp ./internal/server ./internal/fleet; do
    echo "==> go test -bench . -benchmem -benchtime $benchtime -run '^\$' $pkg"
    echo "PKG $pkg" >> "$raw"
    go test -bench . -benchmem -benchtime "$benchtime" -run '^$' "$pkg" | tee -a "$raw"
done

awk -v q='"' '
BEGIN { printf "{\n%sbenchmarks%s: [\n", q, q }
/^PKG / { pkg = $2 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    iters = $2; ns = $3
    bytes = ""; allocs = ""; reqs = ""; p50 = ""; p99 = ""; warmv = ""; coldv = ""
    s1rate = ""; sharedb = ""; isob = ""
    deltab = ""; fullb = ""; walns = ""
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op") bytes = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
        if ($i == "req/s") reqs = $(i - 1)
        if ($i == "p50-ns") p50 = $(i - 1)
        if ($i == "p99-ns") p99 = $(i - 1)
        if ($i == "warm_worklist_visited") warmv = $(i - 1)
        if ($i == "cold_worklist_visited") coldv = $(i - 1)
        if ($i == "s1_hit_rate") s1rate = $(i - 1)
        if ($i == "shared_cache_bytes") sharedb = $(i - 1)
        if ($i == "isolated_cache_bytes") isob = $(i - 1)
        if ($i == "delta_bytes") deltab = $(i - 1)
        if ($i == "full_bytes") fullb = $(i - 1)
        if ($i == "wal_replay_ns") walns = $(i - 1)
    }
    if (n++) printf ",\n"
    printf "  {%spackage%s: %s%s%s, %sname%s: %s%s%s, %siterations%s: %s, %sns_per_op%s: %s", \
        q, q, q, pkg, q, q, q, q, name, q, q, q, iters, q, q, ns
    if (bytes != "") printf ", %sbytes_per_op%s: %s", q, q, bytes
    if (allocs != "") printf ", %sallocs_per_op%s: %s", q, q, allocs
    if (reqs != "") printf ", %sreq_per_s%s: %s", q, q, reqs
    if (p50 != "") printf ", %sp50_ns%s: %s", q, q, p50
    if (p99 != "") printf ", %sp99_ns%s: %s", q, q, p99
    if (warmv != "") printf ", %swarm_worklist_visited%s: %s", q, q, warmv
    if (coldv != "") printf ", %scold_worklist_visited%s: %s", q, q, coldv
    if (s1rate != "") printf ", %ss1_hit_rate%s: %s", q, q, s1rate
    if (sharedb != "") printf ", %sshared_cache_bytes%s: %s", q, q, sharedb
    if (isob != "") printf ", %sisolated_cache_bytes%s: %s", q, q, isob
    if (deltab != "") printf ", %sdelta_bytes%s: %s", q, q, deltab
    if (fullb != "") printf ", %sfull_bytes%s: %s", q, q, fullb
    if (walns != "") printf ", %swal_replay_ns%s: %s", q, q, walns
    printf "}"
}
END { printf "\n]}\n" }
' "$raw" > "$out"

echo "wrote $out"
