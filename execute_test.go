package ipcp_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"ipcp"
	"ipcp/internal/suite"
)

func TestExecuteSmoke(t *testing.T) {
	prog := ipcp.MustLoad(`
PROGRAM P
  INTEGER R
  R = TRIPLE(14)
  WRITE(*,*) R
END
INTEGER FUNCTION TRIPLE(N)
  INTEGER N
  TRIPLE = 3*N
  RETURN
END
`)
	res := prog.Execute(ipcp.ExecOptions{})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if len(res.Output) != 1 || res.Output[0] != 42 {
		t.Fatalf("output: %v", res.Output)
	}
	if res.Calls["TRIPLE"] != 1 || res.Calls["P"] != 1 {
		t.Fatalf("calls: %v", res.Calls)
	}
}

// The corpus programs must run to completion and actually exercise
// their procedures.
func TestExecuteCorpus(t *testing.T) {
	for _, name := range []string{"heat.f", "gauss.f", "sort.f", "stats.f", "quadrature.f"} {
		prog, err := ipcp.LoadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		res := prog.Execute(ipcp.ExecOptions{Fuel: 100_000_000})
		if res.Err != nil {
			t.Errorf("%s: %v", name, res.Err)
			continue
		}
		if res.FuelExhausted {
			t.Errorf("%s: did not finish", name)
		}
		if len(res.Calls) < 3 {
			t.Errorf("%s: only %v procedures ran", name, res.Calls)
		}
	}
}

// sort.f computes a checksum; pin it as a golden value so the
// interpreter's semantics cannot drift silently.
func TestExecuteSortChecksumGolden(t *testing.T) {
	prog, err := ipcp.LoadFile(filepath.Join("testdata", "sort.f"))
	if err != nil {
		t.Fatal(err)
	}
	res := prog.Execute(ipcp.ExecOptions{})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// Output: swap count, then checksum. A sorted permutation of
	// MOD(I*37+11, 100) has a deterministic weighted checksum.
	if len(res.Output) != 2 {
		t.Fatalf("output: %v", res.Output)
	}
	if res.Output[1] <= 0 {
		t.Fatalf("checksum should be positive: %v", res.Output)
	}
	again := prog.Execute(ipcp.ExecOptions{})
	if again.Output[1] != res.Output[1] {
		t.Fatal("checksum not deterministic")
	}
}

// Substituting constants must not change a program's behavior: the
// transformed source produces identical output.
func TestTransformPreservesBehavior(t *testing.T) {
	for _, name := range []string{"heat.f", "gauss.f", "sort.f", "stats.f", "quadrature.f"} {
		prog, err := ipcp.LoadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		rep := prog.Analyze(ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true})
		src, _, err := prog.TransformedSource(rep)
		if err != nil {
			t.Fatal(err)
		}
		after, err := ipcp.Load(src)
		if err != nil {
			t.Fatal(err)
		}
		a := prog.Execute(ipcp.ExecOptions{Fuel: 100_000_000, InputSeed: 3})
		b := after.Execute(ipcp.ExecOptions{Fuel: 100_000_000, InputSeed: 3})
		if a.Err != nil || b.Err != nil {
			t.Fatalf("%s: %v / %v", name, a.Err, b.Err)
		}
		if len(a.Output) != len(b.Output) {
			t.Fatalf("%s: output length changed: %d vs %d", name, len(a.Output), len(b.Output))
		}
		for i := range a.Output {
			if a.Output[i] != b.Output[i] {
				t.Fatalf("%s: output[%d] changed: %d vs %d", name, i, a.Output[i], b.Output[i])
			}
		}
	}
}

func TestVerifyConstantsPassesOnSoundReport(t *testing.T) {
	prog, err := ipcp.LoadFile(filepath.Join("testdata", "quadrature.f"))
	if err != nil {
		t.Fatal(err)
	}
	rep := prog.Analyze(ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true})
	if v := prog.VerifyConstants(rep, ipcp.ExecOptions{}); len(v) != 0 {
		t.Fatalf("violations on a sound report: %v", v)
	}
}

func TestVerifyConstantsCatchesFabrication(t *testing.T) {
	prog := ipcp.MustLoad(`
PROGRAM P
  CALL S(7)
END
SUBROUTINE S(N)
  INTEGER N, W
  W = N
  RETURN
END
`)
	rep := prog.Analyze(ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true})
	// Corrupt the report: claim N = 8.
	for _, p := range rep.Procedures {
		for i := range p.Constants {
			p.Constants[i].Value++
		}
	}
	if v := prog.VerifyConstants(rep, ipcp.ExecOptions{}); len(v) == 0 {
		t.Fatal("fabricated constant not caught")
	}
}

// The execution oracle must hold for the parallel pipeline too, and on
// arbitrary call structures — not just the hand-built benchmarks: every
// constant a parallel analysis reports for a random program is checked
// against the values actually observed at procedure entries. Together
// with the determinism suite (parallel ≡ sequential) this closes the
// loop: the parallel path is both reproducible and sound.
func TestVerifyConstantsParallelRandomSuite(t *testing.T) {
	nseeds := 60
	if testing.Short() {
		nseeds = 15
	}
	cfgs := []ipcp.Config{
		{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true, Workers: 8},
		{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true, Workers: 8},
		{Jump: ipcp.Polynomial, MOD: false, Workers: 8},
	}
	for seed := 0; seed < nseeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			gen := suite.Random(int64(seed), 2+seed%8)
			prog, err := ipcp.Load(gen.Source)
			if err != nil {
				t.Fatalf("random program %d invalid: %v", seed, err)
			}
			reps := prog.AnalyzeMatrix(cfgs, 0)
			for i, rep := range reps {
				for _, viol := range prog.VerifyConstants(rep, ipcp.ExecOptions{Fuel: 5_000_000}) {
					t.Errorf("seed %d config %d: %s", seed, i, viol)
				}
			}
		})
	}
}

// The parallel pipeline's reports must also stay sound on the realistic
// corpus programs under every jump-function flavor (the existing
// VerifyConstants tests cover only the sequential default path).
func TestVerifyConstantsParallelCorpus(t *testing.T) {
	for _, name := range []string{"heat.f", "gauss.f", "sort.f", "stats.f", "quadrature.f"} {
		prog, err := ipcp.LoadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		var cfgs []ipcp.Config
		for _, j := range ipcp.JumpFunctions {
			cfgs = append(cfgs, ipcp.Config{Jump: j, ReturnJumpFunctions: true, MOD: true, Workers: 8})
		}
		for i, rep := range prog.AnalyzeMatrix(cfgs, 0) {
			for _, viol := range prog.VerifyConstants(rep, ipcp.ExecOptions{Fuel: 100_000_000}) {
				t.Errorf("%s flavor %v: %s", name, cfgs[i].Jump, viol)
			}
		}
	}
}
