package ipcp_test

import (
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"ipcp"
	"ipcp/internal/mf/ast"
	"ipcp/internal/mf/parser"
	"ipcp/internal/suite"
)

// This file is the differential proof of the incremental engine's
// correctness guarantee: for any program, any edit history, and any
// configuration, AnalyzeIncremental produces a Report
// reflect.DeepEqual to a from-scratch Analyze of the same program —
// summaries only short-circuit derivations whose outcome is already
// known, they never change it.

// editProgram applies one deterministic "edit" to MiniFortran source:
// it picks an integer literal inside some unit's executable body
// (choice driven by pick) and changes its value. It returns the new
// source and false when the program has no body literals to edit.
func editProgram(t testing.TB, src string, pick int) (string, bool) {
	return editProgramIn(t, src, "", pick)
}

// editProgramIn is editProgram restricted to the named unit ("" means
// any unit).
func editProgramIn(t testing.TB, src string, unit string, pick int) (string, bool) {
	t.Helper()
	file, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("editProgram: source no longer parses: %v", err)
	}
	total := 0
	for _, u := range file.Units {
		if unit != "" && u.Name != unit {
			continue
		}
		ast.RewriteExprs(u, func(e ast.Expr) ast.Expr {
			if _, ok := e.(*ast.IntLit); ok {
				total++
			}
			return e
		})
	}
	if total == 0 {
		return "", false
	}
	if pick < 0 { // fuzzed picks may be negative
		pick = -pick
	}
	target := pick % total
	delta := int64(1 + pick%5)
	seen := 0
	for _, u := range file.Units {
		if unit != "" && u.Name != unit {
			continue
		}
		ast.RewriteExprs(u, func(e ast.Expr) ast.Expr {
			if lit, ok := e.(*ast.IntLit); ok {
				if seen == target {
					lit.Value += delta
				}
				seen++
			}
			return e
		})
	}
	return ast.Format(file), true
}

// incrementalConfigs is the configuration grid the incremental
// differential suite sweeps: all four jump-function flavors at full
// precision, a no-return-JF/no-MOD row, a complete-propagation row
// (whose post-DCE re-propagations must run fresh), and a
// dependence-solver row.
func incrementalConfigs() []ipcp.Config {
	cfgs := make([]ipcp.Config, 0, 7)
	for _, j := range ipcp.JumpFunctions {
		cfgs = append(cfgs, ipcp.Config{Jump: j, ReturnJumpFunctions: true, MOD: true})
	}
	return append(cfgs,
		ipcp.Config{Jump: ipcp.PassThrough},
		ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true, Complete: true},
		ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true, DependenceSolver: true},
	)
}

// normalizeIncrementalReports clears the fields that legitimately
// differ between scratch and incremental runs: the run bookkeeping
// (Incremental), the echoed worker and warm-start knobs, wall-clock
// Nanos, and the solver-effort counters — a warm-started stage 3
// visits fewer items and evaluates fewer jump functions than a cold
// solve while computing the identical assignment, which is the whole
// point.
func normalizeIncrementalReports(reps ...*ipcp.Report) {
	for _, r := range reps {
		r.Incremental = nil
		r.Config.NoWarmStart = false
		r.SolverPasses = 0
		r.JFEvaluations = 0
	}
	normalizeReports(reps)
}

// TestDeterminismIncrementalEdits chains random single-procedure edits
// over the random-program corpus and asserts, at every step of every
// chain, that the incremental Report equals the from-scratch one —
// sequentially and on 8 workers — for every configuration in the grid.
func TestDeterminismIncrementalEdits(t *testing.T) {
	nseeds := determinismSeeds(t)
	cfgs := incrementalConfigs()
	for seed := 0; seed < nseeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			size := 2 + seed%9
			gen := suite.Random(int64(seed), size)
			srcs := []string{gen.Source}
			for e := 0; e < 2; e++ {
				next, ok := editProgram(t, srcs[len(srcs)-1], seed*31+e*7+1)
				if !ok {
					break
				}
				srcs = append(srcs, next)
			}
			for ci, cfg := range cfgs {
				cache := ipcp.NewMemoryCache()
				var snap *ipcp.Snapshot
				for step, src := range srcs {
					prog, err := ipcp.Load(src)
					if err != nil {
						t.Fatalf("seed %d step %d: edited program invalid: %v", seed, step, err)
					}
					seqCfg := cfg
					seqCfg.Workers = 1
					scratch := prog.Analyze(seqCfg)
					incSeq, nextSnap := prog.AnalyzeIncremental(seqCfg, snap, cache)
					parCfg := cfg
					parCfg.Workers = 8
					incPar, _ := prog.AnalyzeIncremental(parCfg, snap, cache)

					st := incSeq.Incremental
					if st == nil || st.TotalProcedures != st.Reanalyzed+st.Reused {
						t.Fatalf("seed %d config %d step %d: inconsistent incremental stats %+v",
							seed, ci, step, st)
					}
					normalizeIncrementalReports(scratch, incSeq, incPar)
					if !reflect.DeepEqual(scratch, incSeq) {
						t.Fatalf("seed %d config %+v step %d: incremental report diverges from scratch\nscratch: %+v\nincr:    %+v",
							seed, cfg, step, scratch, incSeq)
					}
					if !reflect.DeepEqual(scratch, incPar) {
						t.Fatalf("seed %d config %+v step %d: parallel incremental report diverges from scratch",
							seed, cfg, step)
					}
					snap = nextSnap
				}
			}
		})
	}
}

// TestDeterminismIncrementalUnchanged pins the no-op contract: a
// re-run over unchanged source reports zero re-analyzed procedures and
// a 100% cache hit rate, while the Report still matches scratch.
func TestDeterminismIncrementalUnchanged(t *testing.T) {
	cfgs := incrementalConfigs()
	for _, name := range []string{"ocean", "linpackd", "spec77"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			prog := ipcp.MustLoad(suite.Generate(name, 2).Source)
			for _, cfg := range cfgs {
				cache := ipcp.NewMemoryCache()
				first, snap := prog.AnalyzeIncremental(cfg, nil, cache)
				if st := first.Incremental; st.Reanalyzed != st.TotalProcedures || st.CacheHits != 0 {
					t.Fatalf("%s %+v: first run expected all-reanalyzed, got %+v", name, cfg, st)
				}
				// nil cache on the re-run: it must follow the snapshot.
				second, _ := prog.AnalyzeIncremental(cfg, snap, nil)
				st := second.Incremental
				if st.Reanalyzed != 0 || st.Reused != st.TotalProcedures {
					t.Fatalf("%s %+v: unchanged re-run re-analyzed %d of %d procedures",
						name, cfg, st.Reanalyzed, st.TotalProcedures)
				}
				if st.CacheHits != st.TotalProcedures || st.CacheMisses != 0 || st.HitRate() != 1.0 {
					t.Fatalf("%s %+v: unchanged re-run hit rate %.2f (%d hits, %d misses)",
						name, cfg, st.HitRate(), st.CacheHits, st.CacheMisses)
				}
				scratch := prog.Analyze(cfg)
				normalizeIncrementalReports(scratch, first, second)
				if !reflect.DeepEqual(scratch, first) || !reflect.DeepEqual(scratch, second) {
					t.Fatalf("%s %+v: incremental reports diverge from scratch", name, cfg)
				}
			}
		})
	}
}

// TestWarmColdEquivalenceSweep is the differential proof of the
// warm-start re-solve: for every suite program and every configuration
// in the grid, over an unchanged re-run and a two-edit chain, the
// warm-started incremental Report, the cold (NoWarmStart) incremental
// Report, and the from-scratch Report are reflect.DeepEqual. The
// two-phase restart scheme (DESIGN.md, "Demand-driven re-solve") must
// be invisible in the results; only the worklist counters may differ.
func TestWarmColdEquivalenceSweep(t *testing.T) {
	cfgs := incrementalConfigs()
	for _, name := range suite.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			gen := suite.Generate(name, 2)
			// Step 0 is the capture run, step 1 an unchanged re-run, and
			// the remaining steps a chain of single-literal edits.
			srcs := []string{gen.Source, gen.Source}
			src := gen.Source
			for e := 0; e < 2; e++ {
				next, ok := editProgram(t, src, e*13+5)
				if !ok {
					break
				}
				src = next
				srcs = append(srcs, src)
			}
			for _, cfg := range cfgs {
				cache := ipcp.NewMemoryCache()
				var snap *ipcp.Snapshot
				for step, s := range srcs {
					prog := ipcp.MustLoad(s)
					warm, next := prog.AnalyzeIncremental(cfg, snap, cache)
					coldCfg := cfg
					coldCfg.NoWarmStart = true
					cold, _ := prog.AnalyzeIncremental(coldCfg, snap, cache)
					scratch := prog.Analyze(cfg)

					ws, cs := warm.Incremental, cold.Incremental
					if cs.WarmStarted {
						t.Fatalf("%s %+v step %d: NoWarmStart run claims a warm start", name, cfg, step)
					}
					if step == 0 && ws.WarmStarted {
						t.Fatalf("%s %+v: first run (no snapshot) claims a warm start", name, cfg)
					}
					if step > 0 && !ws.WarmStarted {
						t.Fatalf("%s %+v step %d: snapshot-seeded run did not warm-start", name, cfg, step)
					}
					if step == 1 && (ws.ConeProcedures != 0 || ws.WorklistVisited != 0) {
						t.Fatalf("%s %+v: unchanged re-run reset a %d-procedure cone and visited %d items",
							name, cfg, ws.ConeProcedures, ws.WorklistVisited)
					}

					normalizeIncrementalReports(scratch, warm, cold)
					if !reflect.DeepEqual(scratch, warm) {
						t.Fatalf("%s %+v step %d: warm report diverges from scratch\nscratch: %+v\nwarm:    %+v",
							name, cfg, step, scratch, warm)
					}
					if !reflect.DeepEqual(scratch, cold) {
						t.Fatalf("%s %+v step %d: cold report diverges from scratch", name, cfg, step)
					}
					snap = next
				}
			}
		})
	}
}

// TestWarmStartConeLocality pins the demand-driven claim itself: after
// an edit confined to one leaf procedure of doduc (the largest suite
// program), the warm re-solve resets a cone that is a small fraction of
// the program and visits far fewer worklist items than the cold solve —
// while still agreeing with scratch.
func TestWarmStartConeLocality(t *testing.T) {
	gen := suite.Generate("doduc", 4)
	cfg := ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true}
	cache := ipcp.NewMemoryCache()
	prog := ipcp.MustLoad(gen.Source)
	first, snap := prog.AnalyzeIncremental(cfg, nil, cache)

	// LEAF0 is one of doduc's generated leaf procedures: no callees, a
	// single caller, so the edit's cone is {LEAF0} exactly.
	edited, ok := editProgramIn(t, gen.Source, "LEAF0", 1)
	if !ok {
		t.Fatal("LEAF0 has no editable literals")
	}
	prog2 := ipcp.MustLoad(edited)
	rep, _ := prog2.AnalyzeIncremental(cfg, snap, cache)
	st := rep.Incremental
	if !st.WarmStarted {
		t.Fatalf("leaf edit did not warm-start: %+v", st)
	}
	if st.ConeProcedures*4 > st.TotalProcedures {
		t.Fatalf("leaf edit reset %d of %d procedures (want < 25%%)", st.ConeProcedures, st.TotalProcedures)
	}
	coldVisited := first.Incremental.WorklistVisited
	if st.WorklistVisited*4 > coldVisited {
		t.Fatalf("leaf edit visited %d worklist items, cold solve visited %d (want < 25%%)",
			st.WorklistVisited, coldVisited)
	}
	scratch := prog2.Analyze(cfg)
	normalizeIncrementalReports(scratch, rep)
	if !reflect.DeepEqual(scratch, rep) {
		t.Fatal("leaf-edit warm report diverges from scratch")
	}
}

// TestDeterminismIncrementalPartialReuse edits only the main program —
// which nothing calls, so the backward-invalidation closure is exactly
// {main} — and asserts every other procedure's summary is reused.
func TestDeterminismIncrementalPartialReuse(t *testing.T) {
	gen := suite.Random(1, 8)
	cfg := ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true}
	cache := ipcp.NewMemoryCache()
	prog := ipcp.MustLoad(gen.Source)
	_, snap := prog.AnalyzeIncremental(cfg, nil, cache)

	edited, ok := editProgramIn(t, gen.Source, "RANDP", 3)
	if !ok {
		t.Fatal("main program has no editable literals")
	}
	prog2 := ipcp.MustLoad(edited)
	rep, _ := prog2.AnalyzeIncremental(cfg, snap, cache)
	st := rep.Incremental
	if st.Reanalyzed != 1 || st.Reused != st.TotalProcedures-1 {
		t.Fatalf("main-only edit should re-analyze exactly 1 of %d procedures, got %+v",
			st.TotalProcedures, st)
	}
	scratch := prog2.Analyze(cfg)
	normalizeIncrementalReports(scratch, rep)
	if !reflect.DeepEqual(scratch, rep) {
		t.Fatal("partial-reuse report diverges from scratch")
	}
}

// TestDeterminismIncrementalConfigIsolation feeds a snapshot taken
// under one configuration to a run under another: the config-key check
// must force a full re-analysis (stale summaries from a different
// flavor would silently corrupt the result), and the outcome must
// still match scratch.
func TestDeterminismIncrementalConfigIsolation(t *testing.T) {
	prog := ipcp.MustLoad(suite.Generate("ocean", 2).Source)
	cache := ipcp.NewMemoryCache()
	a := ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true}
	b := ipcp.Config{Jump: ipcp.Literal}
	if ipcp.ConfigCacheKey(a) == ipcp.ConfigCacheKey(b) {
		t.Fatal("distinct configurations share a cache key")
	}
	_, snapA := prog.AnalyzeIncremental(a, nil, cache)
	repB, _ := prog.AnalyzeIncremental(b, snapA, cache)
	if st := repB.Incremental; st.Reanalyzed != st.TotalProcedures {
		t.Fatalf("config change must invalidate everything, got %+v", st)
	}
	scratch := prog.Analyze(b)
	normalizeIncrementalReports(scratch, repB)
	if !reflect.DeepEqual(scratch, repB) {
		t.Fatal("cross-config incremental report diverges from scratch")
	}
}

// TestIncrementalDiskCache round-trips the whole program database
// through disk: a disk-backed cache plus a snapshot file, reopened
// cold (fresh store handles, as a new process would), must yield a
// 100%-hit unchanged re-run and a scratch-equal report after an edit.
func TestIncrementalDiskCache(t *testing.T) {
	dir := t.TempDir()
	snapPath := filepath.Join(dir, "snapshot.ipcsnap")
	gen := suite.Random(7, 6)
	cfg := ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true}

	cache, err := ipcp.NewDiskCache(filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	prog := ipcp.MustLoad(gen.Source)
	_, snap := prog.AnalyzeIncremental(cfg, nil, cache)
	if err := snap.Save(snapPath); err != nil {
		t.Fatal(err)
	}

	// "New process": reopen everything from disk.
	cache2, err := ipcp.NewDiskCache(filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := ipcp.LoadSnapshot(snapPath, cache2)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Procedures() != snap.Procedures() {
		t.Fatalf("snapshot round-trip lost procedures: %d != %d", loaded.Procedures(), snap.Procedures())
	}
	rerun, _ := prog.AnalyzeIncremental(cfg, loaded, cache2)
	if st := rerun.Incremental; st.Reanalyzed != 0 || st.HitRate() != 1.0 {
		t.Fatalf("disk re-run expected full reuse, got %+v", st)
	}

	edited, ok := editProgram(t, gen.Source, 11)
	if !ok {
		t.Fatal("no editable literal")
	}
	prog2 := ipcp.MustLoad(edited)
	rep, _ := prog2.AnalyzeIncremental(cfg, loaded, cache2)
	scratch := prog2.Analyze(cfg)
	normalizeIncrementalReports(scratch, rep)
	if !reflect.DeepEqual(scratch, rep) {
		t.Fatal("disk-cached incremental report diverges from scratch")
	}
	if s := cache2.Stats(); s.Hits == 0 {
		t.Fatalf("disk cache recorded no hits: %+v", s)
	}
}

// TestIncrementalBoundedCache checks that eviction degrades gracefully:
// a cache too small for the program stays correct (evicted summaries
// are recomputed) and reports evictions in its stats.
func TestIncrementalBoundedCache(t *testing.T) {
	gen := suite.Random(3, 9)
	cfg := ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true}
	cache := ipcp.NewBoundedMemoryCache(2)
	prog := ipcp.MustLoad(gen.Source)
	_, snap := prog.AnalyzeIncremental(cfg, nil, cache)
	rep, _ := prog.AnalyzeIncremental(cfg, snap, cache)
	scratch := prog.Analyze(cfg)
	normalizeIncrementalReports(scratch, rep)
	if !reflect.DeepEqual(scratch, rep) {
		t.Fatal("bounded-cache incremental report diverges from scratch")
	}
	if s := cache.Stats(); s.Evictions == 0 {
		t.Fatalf("2-entry cache over a %d-procedure program never evicted: %+v",
			len(prog.Units()), s)
	}
}
