package ipcp_test

import (
	"reflect"
	"strings"
	"testing"

	"ipcp"
)

// twoRoundSrc needs two rounds of complete propagation to finish:
// round one folds A's branch with the seeded K=1, which straightens X=2
// and makes B's argument constant; round two then folds B's branch. A
// third round finds nothing and converges the fixpoint.
const twoRoundSrc = `
PROGRAM MAIN
  INTEGER I
  I = 1
  CALL A(I)
END

SUBROUTINE A(K)
  INTEGER K, X
  IF (K .EQ. 1) THEN
    X = 2
  ELSE
    X = 3
  ENDIF
  CALL B(X)
END

SUBROUTINE B(M)
  INTEGER M, Y
  IF (M .EQ. 2) THEN
    Y = 1
  ELSE
    Y = 9
  ENDIF
  WRITE(*,*) Y
END
`

// TestCompletePropagationTrace pins the pass-manager execution schedule
// of complete propagation on a program that genuinely needs two DCE
// rounds: the fixpoint driver re-provisions the propagation result each
// round (the dce pass Requires it after SetProgram dropped it), so the
// trace must read propagate,dce three times and close with the fixpoint
// summary.
func TestCompletePropagationTrace(t *testing.T) {
	prog := ipcp.MustLoad(twoRoundSrc)
	rep := prog.Analyze(ipcp.Config{
		Jump:                ipcp.PassThrough,
		ReturnJumpFunctions: true,
		MOD:                 true,
		Complete:            true,
		Debug:               true, // and verify the IR between every pass
	})

	if rep.DCERounds != 2 {
		t.Fatalf("DCERounds = %d, want 2", rep.DCERounds)
	}

	type entry struct {
		pass    string
		round   int
		changed bool
	}
	var got []entry
	for _, st := range rep.Passes {
		got = append(got, entry{st.Pass, st.Round, st.Changed})
	}
	want := []entry{
		{"propagate", 1, true}, // includes the SSA build
		{"dce", 1, true},
		{"propagate", 2, true},
		{"dce", 2, true},
		{"propagate", 3, true},
		{"dce", 3, false},     // converged
		{"complete", 0, true}, // fixpoint summary closes last
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("trace schedule:\n got %+v\nwant %+v", got, want)
	}

	var sum ipcp.PassStat
	for _, st := range rep.Passes {
		if st.Fixpoint {
			sum = st
		}
	}
	if sum.Pass != "complete" || sum.Rounds != 2 {
		t.Fatalf("fixpoint summary = %+v, want complete with 2 rounds", sum)
	}
	if sum.Instrs >= sum.InstrsBefore || sum.Blocks >= sum.BlocksBefore {
		t.Fatalf("fixpoint summary shows no IR shrinkage: %+v", sum)
	}

	table := rep.PassTrace()
	for _, needle := range []string{"pass", "rounds", "propagate", "dce", "complete"} {
		if !strings.Contains(table, needle) {
			t.Fatalf("PassTrace missing %q:\n%s", needle, table)
		}
	}
}

// TestSimpleAnalysisTrace: without Complete the report still carries a
// trace — a single propagate execution outside any fixpoint.
func TestSimpleAnalysisTrace(t *testing.T) {
	prog := ipcp.MustLoad(twoRoundSrc)
	rep := prog.Analyze(ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true})
	if len(rep.Passes) != 1 {
		t.Fatalf("trace has %d entries, want 1: %+v", len(rep.Passes), rep.Passes)
	}
	st := rep.Passes[0]
	if st.Pass != "propagate" || st.Round != 0 || st.Fixpoint {
		t.Fatalf("trace entry = %+v, want a bare propagate run", st)
	}
}

func TestDescribePipeline(t *testing.T) {
	simple := ipcp.DescribePipeline(ipcp.Config{Jump: ipcp.PassThrough})
	if len(simple) != 2 || simple[0] != "propagation(propagate)" {
		t.Fatalf("simple pipeline = %q", simple)
	}
	complete := ipcp.DescribePipeline(ipcp.Config{Jump: ipcp.PassThrough, Complete: true})
	want := "complete-propagation(fixpoint complete[<=10 rounds]{dce [requires ipcp-result]})"
	if len(complete) != 2 || complete[0] != want {
		t.Fatalf("complete pipeline = %q, want %q", complete, want)
	}
	if !strings.Contains(complete[1], "ipcp-result <- propagate") {
		t.Fatalf("provider line = %q", complete[1])
	}
}

// TestTransformedSourceGolden locks down the exact output of the
// cached-context transformer on a fixed program — any drift in the
// substitution policy or the formatter shows up as a diff — and proves
// the output reanalyzes to the same CONSTANTS sets.
func TestTransformedSourceGolden(t *testing.T) {
	const input = `
PROGRAM MAIN
  COMMON /C/ NG
  INTEGER NG
  NG = 12
  CALL WORK(100)
END

SUBROUTINE WORK(N)
  COMMON /C/ NG
  INTEGER N, NG, S, I
  S = 0
  DO I = 1, N
    S = S + NG
  ENDDO
  WRITE(*,*) S, N
  RETURN
END
`
	const golden = `PROGRAM MAIN
  COMMON /C/ NG
  INTEGER NG
  NG = 12
  CALL WORK(100)
END

SUBROUTINE WORK(N)
  COMMON /C/ NG
  INTEGER N, NG, S, I
  S = 0
  DO I = 1, 100
    S = S+12
  ENDDO
  WRITE(*,*) S, 100
  RETURN
END
`
	cfg := ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true}
	prog := ipcp.MustLoad(input)
	rep := prog.Analyze(cfg)
	src, n, err := prog.TransformedSource(rep)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("substituted %d references, want 3 (N twice, NG once)", n)
	}
	if src != golden {
		t.Fatalf("transformed source drifted:\n--- got ---\n%s--- want ---\n%s", src, golden)
	}

	// The transformed program must reparse and reanalyze to the same
	// CONSTANTS sets (substituting a literal cannot change what is
	// constant, only where it is spelled).
	after, err := ipcp.Load(src)
	if err != nil {
		t.Fatalf("golden output does not reload: %v", err)
	}
	rep2 := after.Analyze(cfg)
	for _, p := range rep.Procedures {
		p2 := rep2.Procedure(p.Name)
		if p2 == nil {
			t.Fatalf("procedure %s vanished from the reanalyzed report", p.Name)
		}
		if !reflect.DeepEqual(p.Constants, p2.Constants) {
			t.Fatalf("%s: CONSTANTS drifted after transformation:\nbefore %+v\nafter  %+v",
				p.Name, p.Constants, p2.Constants)
		}
	}
}
