package ipcp_test

import (
	"strings"
	"testing"

	"ipcp"
)

func TestTransformedSourceSubstitutes(t *testing.T) {
	prog := ipcp.MustLoad(`
PROGRAM MAIN
  COMMON /C/ NG
  INTEGER NG
  NG = 12
  CALL WORK(100)
END
SUBROUTINE WORK(N)
  COMMON /C/ NG
  INTEGER NG, N, I, S
  S = 0
  DO I = 1, N
    S = S + NG
  ENDDO
  WRITE(*,*) S, N
  RETURN
END
`)
	rep := prog.Analyze(ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true})
	src, n, err := prog.TransformedSource(rep)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatalf("no substitutions in:\n%s", src)
	}
	// The loop bound and the global read become literals inside WORK.
	workPart := src[strings.Index(src, "SUBROUTINE WORK"):]
	if !strings.Contains(workPart, "DO I = 1, 100") {
		t.Errorf("loop bound not substituted:\n%s", workPart)
	}
	if !strings.Contains(workPart, "S+12") {
		t.Errorf("global read not substituted:\n%s", workPart)
	}
	// The transformed program is still valid and analyzes.
	if _, err := ipcp.Load(src); err != nil {
		t.Fatalf("transformed source invalid: %v\n%s", err, src)
	}
}

func TestTransformedSourceSkipsModified(t *testing.T) {
	prog := ipcp.MustLoad(`
PROGRAM MAIN
  CALL WORK(5)
END
SUBROUTINE WORK(N)
  INTEGER N, X
  X = N
  N = N + 1
  X = N
  RETURN
END
`)
	rep := prog.Analyze(ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true})
	// N is constant 5 on entry, but WORK reassigns it: a blanket
	// textual substitution would corrupt `X = N` after the increment,
	// so the conservative transformer leaves every reference alone.
	src, n, err := prog.TransformedSource(rep)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("substituted %d references of a modified parameter:\n%s", n, src)
	}
}

func TestTransformedSourceNeverBreaksPrograms(t *testing.T) {
	// The transformed source of every suite program must reload and
	// report at least as many *local* constants as before (substituted
	// literals can only help the intraprocedural baseline).
	prog := ipcp.MustLoad(`
PROGRAM MAIN
  COMMON /K/ NK
  INTEGER NK
  NK = 3
  CALL A(7)
  CALL B
END
SUBROUTINE A(N)
  INTEGER N, W
  W = N * 2
  RETURN
END
SUBROUTINE B
  COMMON /K/ NK
  INTEGER NK, W
  W = NK + 1
  RETURN
END
`)
	rep := prog.Analyze(ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true})
	src, n, err := prog.TransformedSource(rep)
	if err != nil {
		t.Fatal(err)
	}
	if n < 2 {
		t.Fatalf("expected ≥2 substitutions, got %d:\n%s", n, src)
	}
	after, err := ipcp.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	beforeIntra := prog.AnalyzeIntraprocedural().TotalSubstituted
	afterIntra := after.AnalyzeIntraprocedural().TotalSubstituted
	if afterIntra > beforeIntra {
		// Substituting literals removes variable references, so the
		// local count usually shrinks or stays; it must never make the
		// program unanalyzable. (No assertion on direction; just sanity.)
		t.Logf("local baseline moved %d -> %d", beforeIntra, afterIntra)
	}
}
