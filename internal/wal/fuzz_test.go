package wal

import (
	"bytes"
	"crypto/sha256"
	"testing"
)

// FuzzWALRecord feeds arbitrary bytes to the record scanner — the code
// that parses whatever a crash left on disk, so it must survive torn
// writes, bit flips, and hostile lengths without panicking. When the
// scanner accepts a record, re-encoding it must reproduce exactly the
// bytes consumed (the format is canonical), and a second scan of that
// encoding must return the same record.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeRecord(sha256.Sum256([]byte("seed")), []byte("payload")))
	f.Add(EncodeRecord(sha256.Sum256([]byte("empty")), nil))
	torn := EncodeRecord(sha256.Sum256([]byte("torn")), []byte("cut short"))
	f.Add(torn[:len(torn)-3])
	flipped := EncodeRecord(sha256.Sum256([]byte("flip")), []byte("bit rot"))
	flipped[recHeaderSize] ^= 0x01
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		key, payload, n, err := ScanRecord(data)
		if err != nil {
			return
		}
		if n < recHeaderSize || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		enc := EncodeRecord(key, payload)
		if !bytes.Equal(enc, data[:n]) {
			t.Fatalf("re-encoding differs from the %d bytes scanned", n)
		}
		k2, p2, n2, err := ScanRecord(enc)
		if err != nil || k2 != key || !bytes.Equal(p2, payload) || n2 != n {
			t.Fatalf("rescan mismatch: err=%v", err)
		}
	})
}
