// Package wal implements the write-ahead journal that makes the
// summary store crash-durable. A store that acknowledges a Put before
// its slower tiers have confirmed it (summary.TieredStore writes disk
// and remote tiers asynchronously) appends the record here first; a
// crash then loses nothing, because the next open replays every record
// whose write-back never confirmed.
//
// The journal is a sequence of segment files, "wal-%016x.wal", each
//
//	magic "IPWL" | version u16 | segment seq u64
//
// followed by length-prefixed records
//
//	payload length u32 | key [32]byte | sha256(key ‖ payload) | payload
//
// with all fixed-width fields big-endian. Appends go to one active
// segment, rotated past Options.SegmentBytes; a segment is deleted
// ("retired") once every record appended to it has been confirmed by
// the caller, so the journal's steady-state size is the write-back
// backlog, not the write history. Open scans the segments a previous
// process left behind, truncates any torn tail (a record cut short by
// a crash mid-append), and exposes the survivors through Replay.
//
// The package deliberately knows nothing about the summary codec: a
// record is an opaque (key, payload) pair, so the store above decides
// what replaying one means.
package wal

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Key is a journal record's content address — the same 32 bytes as a
// summary.Key, kept as a plain array so the packages stay decoupled.
type Key = [32]byte

const (
	segMagic      = "IPWL"
	segVersion    = 1
	segHeaderSize = 4 + 2 + 8
	recHeaderSize = 4 + 32 + sha256.Size

	// DefaultSegmentBytes is the rotation threshold when Options leaves
	// SegmentBytes zero.
	DefaultSegmentBytes = 4 << 20

	// MaxRecordBytes caps one record's payload — matching the blob
	// protocol's cap — so a corrupt length prefix cannot demand a giant
	// read.
	MaxRecordBytes = 64 << 20
)

// ErrCorrupt is wrapped by every scan failure: torn tails, bad
// checksums, impossible lengths.
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrCrashed is returned by Append after an injected crash point (see
// CrashAfter) — the in-process stand-in for the process dying.
var ErrCrashed = errors.New("wal: crashed (injected)")

// SyncPolicy says when the active segment is fsynced.
type SyncPolicy int

const (
	// SyncRotate (the default) fsyncs on segment rotation and Close.
	// Acknowledged records are write()n before the Put returns, so a
	// process crash (SIGKILL) loses nothing; only an OS crash can lose
	// the tail of the active segment.
	SyncRotate SyncPolicy = iota
	// SyncAlways fsyncs after every append: power-loss durable, one
	// fsync per Put.
	SyncAlways
	// SyncNever never fsyncs; the OS flushes on its own schedule.
	SyncNever
)

// Options tunes a Journal. The zero value is usable.
type Options struct {
	SegmentBytes int64 // rotation threshold (default DefaultSegmentBytes)
	Sync         SyncPolicy
}

// Stats counts a journal's traffic since Open.
type Stats struct {
	Appends         int64
	AppendBytes     int64
	Syncs           int64
	SegmentsCreated int64
	SegmentsRetired int64
	LiveSegments    int
}

// RecoverStats describes what Open found left behind by the previous
// process.
type RecoverStats struct {
	Segments    int // readable segments carried into Replay
	Records     int // intact records in them
	Corrupt     int // torn or corrupt tails truncated away
	BadSegments int // segments whose header was unreadable
}

// segState tracks one live segment's unconfirmed records.
type segState struct {
	path    string
	pending int
	sealed  bool
}

// Journal is an append-only, segmented, checksummed record log. All
// methods are safe for concurrent use.
type Journal struct {
	dir  string
	opts Options

	mu         sync.Mutex
	active     *os.File
	activeSeq  uint64
	activeSize int64
	nextSeq    uint64
	segs       map[uint64]*segState
	recovered  []string // sanitized pre-existing segments, oldest first
	recStats   RecoverStats

	appends     int64
	appendBytes int64
	syncs       int64
	created     int64
	retired     int64

	// Crash injection (tests only): after crashLeft more successful
	// appends the next one writes crashTorn bytes of its record and the
	// journal refuses all further work.
	crashArmed bool
	crashLeft  int
	crashTorn  int
	crashed    bool
}

// Open scans dir (created if needed) for segments a previous process
// left behind, truncates torn tails so every surviving record is
// intact, and returns a journal whose next append starts a fresh
// segment numbered after the highest found. Call Replay before
// appending anything you would mind re-reading.
func Open(dir string, opts Options) (*Journal, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	j := &Journal{dir: dir, opts: opts, nextSeq: 1, segs: make(map[uint64]*segState)}
	type found struct {
		seq  uint64
		path string
	}
	var olds []found
	for _, e := range entries {
		name := e.Name()
		var seq uint64
		if n, err := fmt.Sscanf(name, "wal-%016x.wal", &seq); n != 1 || err != nil {
			continue
		}
		olds = append(olds, found{seq, filepath.Join(dir, name)})
		if seq >= j.nextSeq {
			j.nextSeq = seq + 1
		}
	}
	sort.Slice(olds, func(a, b int) bool { return olds[a].seq < olds[b].seq })
	for _, o := range olds {
		records, corrupt, ok := sanitize(o.path)
		if !ok {
			j.recStats.BadSegments++
			j.recovered = append(j.recovered, o.path) // DropRecovered still deletes it
			continue
		}
		j.recStats.Segments++
		j.recStats.Records += records
		j.recStats.Corrupt += corrupt
		j.recovered = append(j.recovered, o.path)
	}
	return j, nil
}

// sanitize validates one pre-existing segment, truncating it at the
// first torn or corrupt record so later reads see only intact ones.
// ok=false means the header itself was unreadable and the segment
// holds nothing recoverable.
func sanitize(path string) (records, corrupt int, ok bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, false
	}
	if len(data) < segHeaderSize || string(data[:4]) != segMagic ||
		binary.BigEndian.Uint16(data[4:]) != segVersion {
		return 0, 0, false
	}
	off := segHeaderSize
	for off < len(data) {
		_, _, n, err := ScanRecord(data[off:])
		if err != nil {
			corrupt++
			_ = os.Truncate(path, int64(off))
			break
		}
		records++
		off += n
	}
	return records, corrupt, true
}

// EncodeRecord renders one record in the journal's canonical on-disk
// form: length prefix, key, checksum over key and payload, payload.
func EncodeRecord(key Key, payload []byte) []byte {
	out := make([]byte, recHeaderSize, recHeaderSize+len(payload))
	binary.BigEndian.PutUint32(out, uint32(len(payload)))
	copy(out[4:], key[:])
	h := sha256.New()
	h.Write(key[:])
	h.Write(payload)
	copy(out[4+32:], h.Sum(nil))
	return append(out, payload...)
}

// ScanRecord parses the record at the head of data, returning the key,
// the payload (aliasing data), and the bytes consumed. It never
// panics; torn or corrupt input yields an error wrapping ErrCorrupt.
func ScanRecord(data []byte) (key Key, payload []byte, n int, err error) {
	if len(data) < recHeaderSize {
		return key, nil, 0, fmt.Errorf("%w: torn header (%d bytes)", ErrCorrupt, len(data))
	}
	plen := binary.BigEndian.Uint32(data)
	if plen > MaxRecordBytes {
		return key, nil, 0, fmt.Errorf("%w: payload length %d exceeds cap", ErrCorrupt, plen)
	}
	if int(plen) > len(data)-recHeaderSize {
		return key, nil, 0, fmt.Errorf("%w: torn payload (%d of %d bytes)", ErrCorrupt, len(data)-recHeaderSize, plen)
	}
	copy(key[:], data[4:])
	payload = data[recHeaderSize : recHeaderSize+int(plen)]
	h := sha256.New()
	h.Write(key[:])
	h.Write(payload)
	if !bytes.Equal(h.Sum(nil), data[4+32:recHeaderSize]) {
		return key, nil, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return key, payload, recHeaderSize + int(plen), nil
}

// Append logs one record and returns the sequence number of the
// segment holding it — the token Confirm takes once the record's
// write-back has landed in every backing tier. The record is written
// (and, under SyncAlways, fsynced) before Append returns, so an
// acknowledged Put is recoverable from the moment the caller sees it.
func (j *Journal) Append(key Key, payload []byte) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.crashed {
		return 0, ErrCrashed
	}
	rec := EncodeRecord(key, payload)
	if j.active == nil || (j.activeSize+int64(len(rec)) > j.opts.SegmentBytes && j.activeSize > segHeaderSize) {
		if err := j.rotateLocked(); err != nil {
			return 0, err
		}
	}
	if j.crashArmed {
		if j.crashLeft == 0 {
			j.crashed = true
			torn := min(j.crashTorn, len(rec))
			if torn > 0 {
				j.active.Write(rec[:torn])
				j.activeSize += int64(torn)
			}
			return 0, ErrCrashed
		}
		j.crashLeft--
	}
	if _, err := j.active.Write(rec); err != nil {
		// The tail may be torn mid-record; roll it back so later
		// appends stay scannable, poisoning the journal if even the
		// rollback fails.
		if j.active.Truncate(j.activeSize) != nil {
			j.crashed = true
		}
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	j.activeSize += int64(len(rec))
	j.appends++
	j.appendBytes += int64(len(rec))
	if j.opts.Sync == SyncAlways {
		if err := j.active.Sync(); err != nil {
			return 0, fmt.Errorf("wal: sync: %w", err)
		}
		j.syncs++
	}
	j.segs[j.activeSeq].pending++
	return j.activeSeq, nil
}

// rotateLocked seals the active segment (it retires immediately if
// already fully confirmed) and opens the next one.
func (j *Journal) rotateLocked() error {
	if j.active != nil {
		if j.opts.Sync != SyncNever {
			if err := j.active.Sync(); err == nil {
				j.syncs++
			}
		}
		j.active.Close()
		st := j.segs[j.activeSeq]
		st.sealed = true
		j.maybeRetireLocked(j.activeSeq, st)
		j.active = nil
	}
	seq := j.nextSeq
	path := filepath.Join(j.dir, fmt.Sprintf("wal-%016x.wal", seq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	var hdr [segHeaderSize]byte
	copy(hdr[:], segMagic)
	binary.BigEndian.PutUint16(hdr[4:], segVersion)
	binary.BigEndian.PutUint64(hdr[6:], seq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: %w", err)
	}
	j.nextSeq = seq + 1
	j.active = f
	j.activeSeq = seq
	j.activeSize = segHeaderSize
	j.segs[seq] = &segState{path: path}
	j.created++
	return nil
}

// Confirm reports that one record appended under seq has landed in
// every backing tier. A sealed segment whose records are all confirmed
// is deleted — the retirement protocol that keeps the journal bounded
// by the write-back backlog.
func (j *Journal) Confirm(seq uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.segs[seq]
	if st == nil {
		return
	}
	if st.pending > 0 {
		st.pending--
	}
	j.maybeRetireLocked(seq, st)
}

func (j *Journal) maybeRetireLocked(seq uint64, st *segState) {
	if !st.sealed || st.pending != 0 {
		return
	}
	if os.Remove(st.path) == nil {
		j.retired++
	}
	delete(j.segs, seq)
}

// Sweep retires the active segment if every record in it has been
// confirmed (the next append starts a fresh one). Callers run it after
// draining write-backs — Flush, shutdown — so a cleanly stopped
// process leaves no segments for the next boot to replay.
func (j *Journal) Sweep() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.active == nil {
		return
	}
	st := j.segs[j.activeSeq]
	if st.pending != 0 {
		return
	}
	j.active.Close()
	j.active = nil
	if os.Remove(st.path) == nil {
		j.retired++
	}
	delete(j.segs, j.activeSeq)
}

// Close syncs and closes the active segment without deleting anything:
// records still unconfirmed stay on disk for the next Open to recover.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.active == nil {
		return nil
	}
	var err error
	if j.opts.Sync != SyncNever {
		if err = j.active.Sync(); err == nil {
			j.syncs++
		}
	}
	if cerr := j.active.Close(); err == nil {
		err = cerr
	}
	j.active = nil
	return err
}

// Replay streams every surviving record from the segments Open found,
// oldest segment first, in append order. fn's error aborts the replay.
// Open already truncated torn tails, so every record delivered here
// passed its checksum.
func (j *Journal) Replay(fn func(key Key, payload []byte) error) error {
	j.mu.Lock()
	paths := append([]string(nil), j.recovered...)
	j.mu.Unlock()
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil || len(data) < segHeaderSize || string(data[:4]) != segMagic {
			continue // sanitize already counted it as bad
		}
		off := segHeaderSize
		for off < len(data) {
			key, payload, n, err := ScanRecord(data[off:])
			if err != nil {
				break
			}
			if err := fn(key, payload); err != nil {
				return err
			}
			off += n
		}
	}
	return nil
}

// DropRecovered deletes the segments Open found. Call it after Replay
// has re-put every surviving record (re-puts through a journaled store
// land in fresh segments, so nothing is lost by dropping the old ones).
func (j *Journal) DropRecovered() {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, path := range j.recovered {
		os.Remove(path)
	}
	j.recovered = nil
}

// RecoverStats reports what Open found.
func (j *Journal) RecoverStats() RecoverStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recStats
}

// Stats reports the journal's counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Appends:         j.appends,
		AppendBytes:     j.appendBytes,
		Syncs:           j.syncs,
		SegmentsCreated: j.created,
		SegmentsRetired: j.retired,
		LiveSegments:    len(j.segs),
	}
}

// Recover replays every surviving record through put and, if all of
// them were accepted, deletes the recovered segments. It returns what
// Open found; the caller's put decides what replaying means (the
// summary store re-puts records whose key is absent).
func Recover(j *Journal, put func(key Key, payload []byte) error) (RecoverStats, error) {
	st := j.RecoverStats()
	if err := j.Replay(put); err != nil {
		return st, err
	}
	j.DropRecovered()
	return st, nil
}

// CrashAfter arms the crash-injection hook: the next n Appends
// succeed, then the following one writes only tornBytes bytes of its
// record (a torn tail, as a crash mid-write leaves) and fails with
// ErrCrashed, as does every Append after it. Tests use it to place a
// deterministic crash point between any two acknowledged puts.
func (j *Journal) CrashAfter(n, tornBytes int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.crashArmed = true
	j.crashLeft = n
	j.crashTorn = tornBytes
}
