package wal

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func keyOf(s string) Key { return sha256.Sum256([]byte(s)) }

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".wal") {
			out = append(out, e.Name())
		}
	}
	return out
}

// collect replays a fresh open of dir into a map.
func collect(t *testing.T, dir string) map[Key][]byte {
	t.Helper()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	got := make(map[Key][]byte)
	if err := j.Replay(func(k Key, p []byte) error {
		got[k] = append([]byte(nil), p...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[Key][]byte)
	for i := 0; i < 20; i++ {
		k := keyOf(fmt.Sprintf("k%d", i))
		v := bytes.Repeat([]byte{byte(i)}, i*13)
		want[k] = v
		if _, err := j.Append(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	got := collect(t, dir)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for k, v := range want {
		if !bytes.Equal(got[k], v) {
			t.Fatalf("record %x not bit-identical after replay", k[:4])
		}
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := j.Append(keyOf(fmt.Sprintf("k%d", i)), []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Tear the tail: append half of a valid record, as a crash
	// mid-write would leave it.
	segs := segFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("segments = %v, want 1", segs)
	}
	path := filepath.Join(dir, segs[0])
	rec := EncodeRecord(keyOf("torn"), []byte("never acknowledged"))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(rec[:len(rec)/2])
	f.Close()
	before, _ := os.Stat(path)

	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st := j2.RecoverStats()
	if st.Records != 3 || st.Corrupt != 1 || st.Segments != 1 {
		t.Fatalf("recover stats = %+v, want 3 records, 1 corrupt, 1 segment", st)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("torn tail not truncated: %d -> %d bytes", before.Size(), after.Size())
	}
	n := 0
	j2.Replay(func(Key, []byte) error { n++; return nil })
	if n != 3 {
		t.Fatalf("replayed %d records past a torn tail, want 3", n)
	}
}

func TestBitFlipTruncatesFromFlippedRecord(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, Options{})
	var recs [][]byte
	for i := 0; i < 3; i++ {
		v := []byte(fmt.Sprintf("payload-%d", i))
		recs = append(recs, EncodeRecord(keyOf(fmt.Sprintf("k%d", i)), v))
		if _, err := j.Append(keyOf(fmt.Sprintf("k%d", i)), v); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Flip one payload byte inside the second record: recovery must
	// keep record 1 and drop 2 and 3 (a corrupt record hides where the
	// next one starts).
	path := filepath.Join(dir, segFiles(t, dir)[0])
	data, _ := os.ReadFile(path)
	off := segHeaderSize + len(recs[0]) + recHeaderSize // first payload byte of record 2
	data[off] ^= 0x40
	os.WriteFile(path, data, 0o644)

	got := collect(t, dir)
	if len(got) != 1 {
		t.Fatalf("replayed %d records after a bit flip, want 1", len(got))
	}
	if string(got[keyOf("k0")]) != "payload-0" {
		t.Fatal("surviving record not intact")
	}
}

func TestRotationAndRetirement(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every record rotates.
	j, err := Open(dir, Options{SegmentBytes: recHeaderSize + 8})
	if err != nil {
		t.Fatal(err)
	}
	var seqs []uint64
	for i := 0; i < 4; i++ {
		seq, err := j.Append(keyOf(fmt.Sprintf("k%d", i)), []byte("12345678"))
		if err != nil {
			t.Fatal(err)
		}
		seqs = append(seqs, seq)
	}
	if st := j.Stats(); st.SegmentsCreated != 4 {
		t.Fatalf("segments created = %d, want 4", st.SegmentsCreated)
	}
	// Confirming records in sealed segments retires them; the active
	// segment's confirm retires nothing until Sweep.
	for _, seq := range seqs {
		j.Confirm(seq)
	}
	if st := j.Stats(); st.SegmentsRetired != 3 || st.LiveSegments != 1 {
		t.Fatalf("stats after confirm = %+v, want 3 retired, 1 live", st)
	}
	j.Sweep()
	if st := j.Stats(); st.SegmentsRetired != 4 || st.LiveSegments != 0 {
		t.Fatalf("stats after sweep = %+v, want 4 retired, 0 live", st)
	}
	if segs := segFiles(t, dir); len(segs) != 0 {
		t.Fatalf("segments on disk after full retirement: %v", segs)
	}
	j.Close()
}

func TestUnconfirmedSurvivesSweepAndClose(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, Options{})
	if _, err := j.Append(keyOf("pending"), []byte("not yet written back")); err != nil {
		t.Fatal(err)
	}
	j.Sweep() // pending record: must keep the segment
	if segs := segFiles(t, dir); len(segs) != 1 {
		t.Fatalf("sweep deleted a segment with pending records: %v", segs)
	}
	j.Close()
	got := collect(t, dir)
	if string(got[keyOf("pending")]) != "not yet written back" {
		t.Fatal("unconfirmed record lost across close/open")
	}
}

func TestCrashAfterHook(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, Options{})
	j.CrashAfter(2, 10)
	if _, err := j.Append(keyOf("a"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(keyOf("b"), []byte("two")); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(keyOf("c"), []byte("torn")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append at crash point: err = %v, want ErrCrashed", err)
	}
	if _, err := j.Append(keyOf("d"), []byte("dead")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append after crash: err = %v, want ErrCrashed", err)
	}
	// No Close — the crash abandoned the journal. Recovery must see
	// exactly the two acknowledged records, with the torn third
	// truncated away.
	got := collect(t, dir)
	if len(got) != 2 || string(got[keyOf("a")]) != "one" || string(got[keyOf("b")]) != "two" {
		t.Fatalf("recovered %d records = %q, want the 2 acknowledged", len(got), got)
	}
}

func TestRecoverDropsSegments(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, Options{})
	j.Append(keyOf("x"), []byte("x"))
	j.Close()

	j2, _ := Open(dir, Options{})
	n := 0
	st, err := Recover(j2, func(Key, []byte) error { n++; return nil })
	if err != nil || n != 1 || st.Records != 1 {
		t.Fatalf("recover: n=%d stats=%+v err=%v", n, st, err)
	}
	j2.Close()
	if segs := segFiles(t, dir); len(segs) != 0 {
		t.Fatalf("recovered segments not dropped: %v", segs)
	}
}

func TestRecoverAbortKeepsSegments(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, Options{})
	j.Append(keyOf("x"), []byte("x"))
	j.Close()

	j2, _ := Open(dir, Options{})
	boom := errors.New("put failed")
	if _, err := Recover(j2, func(Key, []byte) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("recover error = %v, want the put's", err)
	}
	j2.Close()
	if segs := segFiles(t, dir); len(segs) != 1 {
		t.Fatalf("aborted recovery dropped segments: %v", segs)
	}
}

func TestBadHeaderSegmentCounted(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-00000000000000aa.wal"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if st := j.RecoverStats(); st.BadSegments != 1 || st.Records != 0 {
		t.Fatalf("recover stats = %+v, want 1 bad segment", st)
	}
	// A fresh append must not collide with the unreadable segment's seq.
	if seq, err := j.Append(keyOf("k"), []byte("v")); err != nil || seq <= 0xaa {
		t.Fatalf("append after bad segment: seq=%d err=%v", seq, err)
	}
}

func TestScanRecordCanonical(t *testing.T) {
	rec := EncodeRecord(keyOf("k"), []byte("hello"))
	k, p, n, err := ScanRecord(append(rec, "trailing"...))
	if err != nil || n != len(rec) || k != keyOf("k") || string(p) != "hello" {
		t.Fatalf("scan: k=%x p=%q n=%d err=%v", k[:4], p, n, err)
	}
	// Every proper prefix is torn.
	for i := 0; i < len(rec); i++ {
		if _, _, _, err := ScanRecord(rec[:i]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix %d: err = %v, want ErrCorrupt", i, err)
		}
	}
	// Every bit flip is caught by the checksum (or the length guard).
	for i := 0; i < len(rec); i++ {
		mut := append([]byte(nil), rec...)
		mut[i] ^= 0x01
		if _, _, _, err := ScanRecord(mut); err == nil {
			t.Fatalf("byte %d flipped: scan succeeded", i)
		}
	}
}

func TestEmptyPayload(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, Options{Sync: SyncAlways})
	if _, err := j.Append(keyOf("empty"), nil); err != nil {
		t.Fatal(err)
	}
	j.Close()
	got := collect(t, dir)
	if v, ok := got[keyOf("empty")]; !ok || len(v) != 0 {
		t.Fatalf("empty payload not recovered: %q, %v", v, ok)
	}
}
