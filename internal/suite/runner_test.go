package suite

import (
	"reflect"
	"testing"
)

// Run must return results in suite order whatever the worker count, and
// identical sources across runs — generation has no shared state for
// workers to race on. Runs under -race via scripts/check.sh.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	source := func(p *Program) string { return p.Source }
	want := Run(2, 1, source)
	if len(want) != len(Names()) {
		t.Fatalf("Run produced %d results for %d programs", len(want), len(Names()))
	}
	for i, name := range Names() {
		if want[i] != Generate(name, 2).Source {
			t.Fatalf("Run result %d is not %s's source", i, name)
		}
	}
	for _, workers := range []int{0, 2, 8, 64} {
		if got := Run(2, workers, source); !reflect.DeepEqual(got, want) {
			t.Fatalf("Run with %d workers diverged from sequential", workers)
		}
	}
}
