package suite

import (
	"testing"

	"ipcp"
)

// TestPolynomialJumpFunctionsAreRare reproduces §3.1.5's empirical
// observation: "In practice, we found that the number of complex
// polynomial jump functions actually constructed is small. Taken over
// the program, cost(J) approaches the cost of pass-through parameter
// jump functions and |support(J)| approaches 1."
func TestPolynomialJumpFunctionsAreRare(t *testing.T) {
	totalJFs := 0
	totalPoly := 0
	supportSum := 0
	supportCount := 0
	for _, p := range Programs() {
		prog := ipcp.MustLoad(p.Source)
		rep := prog.Analyze(ipcp.Config{
			Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true,
		})
		s := rep.JumpFunctionShape
		totalJFs += s.Bottom + s.Constant + s.PassThrough + s.Polynomial
		totalPoly += s.Polynomial
		supportSum += s.SupportSum
		supportCount += s.PassThrough + s.Polynomial
	}
	if totalJFs == 0 {
		t.Fatal("no jump functions built")
	}
	// Complex polynomial forms are a small fraction of all jump
	// functions (<10% over the suite).
	if totalPoly*10 > totalJFs {
		t.Errorf("polynomial forms = %d of %d (>10%%)", totalPoly, totalJFs)
	}
	// Mean support size approaches 1 (< 1.5 over the suite).
	if supportCount > 0 && supportSum*2 > supportCount*3 {
		t.Errorf("mean support = %d/%d, not close to 1", supportSum, supportCount)
	}
	t.Logf("suite: %d jump functions, %d polynomial (%.1f%%), mean support %.2f",
		totalJFs, totalPoly, 100*float64(totalPoly)/float64(totalJFs),
		float64(supportSum)/float64(max(1, supportCount)))
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
