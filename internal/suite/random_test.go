package suite

import (
	"testing"

	"ipcp"
)

// The property tests below run the analyzer over randomly generated
// programs (see Random). They check invariants that must hold for *any*
// valid input, not just the curated benchmark suite.

const randomSeeds = 40

func randomPrograms(t *testing.T) []*ipcp.Program {
	t.Helper()
	var progs []*ipcp.Program
	for seed := int64(1); seed <= randomSeeds; seed++ {
		p := Random(seed, 6)
		prog, err := ipcp.Load(p.Source)
		if err != nil {
			t.Fatalf("seed %d generates invalid source: %v\n%s", seed, err, p.Source)
		}
		progs = append(progs, prog)
	}
	return progs
}

// Property: the subset containment of §3.1 — each flavor finds at least
// the substitutions of every simpler flavor — holds on arbitrary
// programs, including ones with genuinely polynomial actuals (where
// polynomial may strictly beat pass-through, unlike on the paper's
// suite).
func TestRandomFlavorContainment(t *testing.T) {
	for i, prog := range randomPrograms(t) {
		prev := -1
		for _, flavor := range ipcp.JumpFunctions {
			rep := prog.Analyze(ipcp.Config{Jump: flavor, ReturnJumpFunctions: true, MOD: true})
			if rep.TotalSubstituted < prev {
				t.Errorf("seed %d: flavor %v finds %d < previous %d",
					i+1, flavor, rep.TotalSubstituted, prev)
			}
			prev = rep.TotalSubstituted
		}
	}
}

// Property: MOD information never loses substitutions, and return jump
// functions never lose substitutions (both only add precision).
func TestRandomMonotonicity(t *testing.T) {
	for i, prog := range randomPrograms(t) {
		full := prog.Analyze(ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true})
		noMod := prog.Analyze(ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: false})
		noRet := prog.Analyze(ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: false, MOD: true})
		if noMod.TotalSubstituted > full.TotalSubstituted {
			t.Errorf("seed %d: no-MOD found more (%d > %d)", i+1, noMod.TotalSubstituted, full.TotalSubstituted)
		}
		if noRet.TotalSubstituted > full.TotalSubstituted {
			t.Errorf("seed %d: no-return-JFs found more (%d > %d)", i+1, noRet.TotalSubstituted, full.TotalSubstituted)
		}
	}
}

// Property: the dependence-driven solver computes exactly the same
// answer as the simple worklist.
func TestRandomSolverEquivalence(t *testing.T) {
	for i, prog := range randomPrograms(t) {
		a := prog.Analyze(ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true})
		b := prog.Analyze(ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true, DependenceSolver: true})
		if a.TotalSubstituted != b.TotalSubstituted || a.TotalConstants != b.TotalConstants {
			t.Errorf("seed %d: solvers disagree: %d/%d vs %d/%d",
				i+1, a.TotalSubstituted, a.TotalConstants, b.TotalSubstituted, b.TotalConstants)
		}
	}
}

// Property: analysis is deterministic.
func TestRandomDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		src := Random(seed, 6).Source
		if src != Random(seed, 6).Source {
			t.Fatalf("seed %d: generation nondeterministic", seed)
		}
		prog := ipcp.MustLoad(src)
		cfg := ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true, Complete: true}
		a := prog.Analyze(cfg)
		b := prog.Analyze(cfg)
		if a.TotalSubstituted != b.TotalSubstituted || a.TotalConstants != b.TotalConstants {
			t.Errorf("seed %d: analysis nondeterministic", seed)
		}
	}
}

// Property: printing and reparsing a program preserves the analysis
// results exactly (the printer is semantics-preserving).
func TestRandomPrintReanalyze(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		prog := ipcp.MustLoad(Random(seed, 6).Source)
		reparsed, err := ipcp.Load(prog.Format())
		if err != nil {
			t.Fatalf("seed %d: formatted source does not reload: %v", seed, err)
		}
		cfg := ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true}
		a := prog.Analyze(cfg)
		b := reparsed.Analyze(cfg)
		if a.TotalSubstituted != b.TotalSubstituted || a.TotalConstants != b.TotalConstants {
			t.Errorf("seed %d: reparse changed results: %d/%d vs %d/%d",
				seed, a.TotalSubstituted, a.TotalConstants, b.TotalSubstituted, b.TotalConstants)
		}
	}
}

// Property: complete propagation terminates within the round budget and
// never panics on random inputs (its count may legitimately move in
// either direction when dead references are removed).
func TestRandomCompletePropagationTerminates(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		prog := ipcp.MustLoad(Random(seed, 6).Source)
		rep := prog.Analyze(ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true, Complete: true})
		if rep.DCERounds > 9 {
			t.Errorf("seed %d: DCE did not converge (%d rounds)", seed, rep.DCERounds)
		}
	}
}

// Property: cloning never decreases the substitution count.
func TestRandomCloningMonotone(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		prog := ipcp.MustLoad(Random(seed, 6).Source)
		cfg := ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true}
		out := prog.AnalyzeWithCloning(cfg, ipcp.CloneOptions{})
		if out.Final.TotalSubstituted < out.Base.TotalSubstituted {
			t.Errorf("seed %d: cloning lost substitutions: %d -> %d",
				seed, out.Base.TotalSubstituted, out.Final.TotalSubstituted)
		}
	}
}
