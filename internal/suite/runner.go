package suite

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Run generates every benchmark program at the given scale and maps fn
// over them on a bounded worker pool, returning the results in the
// suite's canonical (alphabetical) order regardless of which worker
// finished first. workers <= 0 means one worker per CPU; workers == 1
// runs inline, with no goroutines at all.
//
// Generation is pure (each generator writes only its own builder) and
// fn receives a freshly generated Program, so any fn that is itself
// safe for concurrent use — loading, analyzing, rendering a table row —
// can be mapped this way. This is the suite-level half of the parallel
// pipeline: cmd/tables and internal/report fan out per program here,
// and each program fans out per configuration via AnalyzeMatrix.
func Run[T any](scale, workers int, fn func(*Program) T) []T {
	names := Names()
	out := make([]T, len(names))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(names) {
		workers = len(names)
	}
	if workers <= 1 {
		for i, name := range names {
			out[i] = fn(Generate(name, scale))
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(names) {
					return
				}
				out[i] = fn(Generate(names[i], scale))
			}
		}()
	}
	wg.Wait()
	return out
}
