package suite

import (
	"fmt"
	"math/rand"
	"strings"
)

// Random generates a random but always-valid MiniFortran program from a
// seed. The generator exists for property testing: the analyzer's
// invariants (flavor containment, solver equivalence, monotonicity in
// MOD and return-jump-function information, print/reparse stability)
// must hold on arbitrary call structures, not just the hand-built
// benchmark suite.
//
// The call graph is acyclic by construction (procedure i only calls
// procedures with larger indices), every variable is declared INTEGER,
// and all generated expressions avoid division (so no fold can fail for
// arithmetic reasons the properties would have to special-case).
func Random(seed int64, size int) *Program {
	if size < 1 {
		size = 1
	}
	g := &randGen{r: rand.New(rand.NewSource(seed)), w: newWriter()}
	nprocs := 2 + g.r.Intn(size+2)

	// Shared COMMON block.
	g.globals = []string{"IG0", "IG1", "IG2"}

	// Pre-plan signatures so calls can be generated before bodies.
	g.formals = make([][]string, nprocs)
	for i := range g.formals {
		n := g.r.Intn(3)
		for k := 0; k < n; k++ {
			g.formals[i] = append(g.formals[i], fmt.Sprintf("IP%d", k))
		}
	}

	g.emitMain(nprocs)
	for i := 0; i < nprocs; i++ {
		g.emitProc(i, nprocs)
	}
	return &Program{
		Name:   fmt.Sprintf("random-%d", seed),
		Source: g.w.String(),
		Traits: "randomly generated (property-test fodder)",
	}
}

type randGen struct {
	r       *rand.Rand
	w       *writer
	globals []string
	formals [][]string

	// Per-procedure generation state.
	locals   []string
	nextLoop int
	scope    []string // all readable scalars
}

func (g *randGen) common() {
	g.w.L("COMMON /RNG/ %s", strings.Join(g.globals, ", "))
	g.w.L("INTEGER %s", strings.Join(g.globals, ", "))
}

// beginScope prepares locals for one unit.
func (g *randGen) beginScope(formals []string) {
	g.locals = nil
	g.nextLoop = 0
	n := 1 + g.r.Intn(4)
	for k := 0; k < n; k++ {
		g.locals = append(g.locals, fmt.Sprintf("IL%d", k))
	}
	g.scope = append(append(append([]string{}, formals...), g.locals...), g.globals...)
}

func (g *randGen) declare(formals []string) {
	g.common()
	names := append(append([]string{}, formals...), g.locals...)
	// Loop variables are pre-allocated generously.
	for k := 0; k < 4; k++ {
		names = append(names, fmt.Sprintf("ILV%d", k))
	}
	g.w.L("INTEGER %s", strings.Join(names, ", "))
}

func (g *randGen) emitMain(nprocs int) {
	g.w.Program("RANDP")
	g.beginScope(nil)
	g.declare(nil)
	// Seed some state so the program has constants to find.
	g.stmts(2+g.r.Intn(4), 0, nprocs)
	g.w.End()
}

func (g *randGen) emitProc(i, nprocs int) {
	g.w.Subroutine(fmt.Sprintf("RP%d", i), g.formals[i]...)
	g.beginScope(g.formals[i])
	g.declare(g.formals[i])
	g.stmts(1+g.r.Intn(5), i+1, nprocs)
	g.w.L("RETURN")
	g.w.End()
}

// stmts emits n statements; calls may target procedures in [from, nprocs).
func (g *randGen) stmts(n, from, nprocs int) {
	for k := 0; k < n; k++ {
		g.stmt(from, nprocs)
	}
}

func (g *randGen) stmt(from, nprocs int) {
	switch g.r.Intn(10) {
	case 0, 1, 2, 3: // assignment
		g.w.L("%s = %s", g.pick(g.scope), g.expr(2))
	case 4: // conditional
		g.w.L("IF (%s %s %s) THEN", g.expr(1), g.relop(), g.expr(1))
		g.w.indent++
		g.stmts(1+g.r.Intn(2), from, nprocs)
		g.w.indent--
		if g.r.Intn(2) == 0 {
			g.w.L("ELSE")
			g.w.indent++
			g.stmts(1, from, nprocs)
			g.w.indent--
		}
		g.w.L("ENDIF")
	case 5: // loop
		if g.nextLoop >= 4 {
			g.w.L("%s = %s", g.pick(g.scope), g.expr(1))
			return
		}
		lv := fmt.Sprintf("ILV%d", g.nextLoop)
		g.nextLoop++
		g.w.L("DO %s = %s, %s", lv, g.expr(0), g.expr(1))
		g.w.indent++
		g.stmts(1, from, nprocs)
		g.w.indent--
		g.w.L("ENDDO")
		g.nextLoop--
	case 6: // input
		g.w.L("READ %s", g.pick(g.scope))
	case 7: // output
		g.w.L("WRITE(*,*) %s", g.expr(1))
	default: // call
		if from >= nprocs {
			g.w.L("%s = %s", g.pick(g.scope), g.expr(1))
			return
		}
		callee := from + g.r.Intn(nprocs-from)
		args := make([]string, len(g.formals[callee]))
		for a := range args {
			switch g.r.Intn(3) {
			case 0:
				args[a] = fmt.Sprintf("%d", g.r.Intn(10))
			case 1:
				args[a] = g.pick(g.scope)
			default:
				args[a] = g.expr(1)
			}
		}
		g.w.L("CALL RP%d(%s)", callee, strings.Join(args, ", "))
	}
}

func (g *randGen) pick(list []string) string { return list[g.r.Intn(len(list))] }

func (g *randGen) relop() string {
	ops := []string{".EQ.", ".NE.", ".LT.", ".LE.", ".GT.", ".GE."}
	return ops[g.r.Intn(len(ops))]
}

func (g *randGen) expr(depth int) string {
	if depth <= 0 || g.r.Intn(3) == 0 {
		if g.r.Intn(2) == 0 {
			return fmt.Sprintf("%d", g.r.Intn(10))
		}
		return g.pick(g.scope)
	}
	ops := []string{"+", "-", "*"}
	return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), ops[g.r.Intn(len(ops))], g.expr(depth-1))
}
