// Package suite generates the benchmark programs for the reproduction
// of the paper's evaluation (§4.2).
//
// The original study analyzed 12 programs from the SPEC and PERFECT
// club FORTRAN suites (adm, doduc, fpppp, linpackd, matrix300, mdg,
// ocean, qcd, simple, snasa7, spec77, trfd). Those sources are not
// available here, so each program is regenerated as a deterministic
// synthetic MiniFortran program whose *structural traits* — where
// literal constants appear, whether constants are computed locally or
// held in COMMON, how deep pass-through chains run, whether an
// initialization routine seeds globals, and how vulnerable references
// are to worst-case call assumptions — are chosen to reproduce the
// paper's qualitative results program by program:
//
//   - which jump-function flavors tie and which show gaps (Table 2),
//   - where return jump functions matter (ocean ~3×, doduc/mdg small,
//     elsewhere nothing),
//   - how much MOD information is worth (Table 3, columns 1–2),
//   - where complete propagation adds constants (ocean, spec77),
//   - the interprocedural vs intraprocedural gap (Table 3, column 4).
//
// Absolute counts are not calibrated to the paper's (the originals are
// 2k–18k-line production codes); the shape is what the integration
// tests in this package assert and what EXPERIMENTS.md records.
package suite

import (
	"fmt"
	"strings"
)

// Program is one generated benchmark program.
type Program struct {
	// Name matches the paper's program name.
	Name string

	// Source is the MiniFortran text.
	Source string

	// Traits is a one-line description of the structural traits the
	// generator models.
	Traits string
}

// generator builds one named program at a given scale.
type generator struct {
	name   string
	traits string
	build  func(w *writer, scale int)
}

var generators = []generator{
	{"adm", "literal actuals only, by-ref re-passes make references MOD-vulnerable, many local constants", genADM},
	{"doduc", "hundreds of literal actuals used immediately, almost nothing local or global", genDODUC},
	{"fpppp", "mixed literal/computed actuals, pass-through chains, one giant routine", genFPPPP},
	{"linpackd", "constant COMMON blocks read everywhere, computed actuals, no chains", genLINPACKD},
	{"matrix300", "dimension parameters passed down 3-level pass-through chains", genMATRIX300},
	{"mdg", "small; computed globals as actuals, one returned constant", genMDG},
	{"ocean", "initialization routine seeds COMMON; everything reads it (return-JF showcase)", genOCEAN},
	{"qcd", "lattice constants mostly local; literal actuals equal under all flavors", genQCD},
	{"simple", "one skewed routine; nearly every reference dies without MOD", genSIMPLE},
	{"snasa7", "computed local constants as actuals, used before any call", genSNASA7},
	{"spec77", "computed actuals plus a debug-guarded initialization (complete-propagation case)", genSPEC77},
	{"trfd", "tiny integral-transform driver, a handful of constants", genTRFD},
}

// DefaultScale is the generation scale used by Programs and the table
// benchmarks; it puts the substitution counts in the same order of
// magnitude as the paper's.
const DefaultScale = 4

// Names lists the 12 program names in the paper's (alphabetical) order.
func Names() []string {
	names := make([]string, len(generators))
	for i, g := range generators {
		names[i] = g.name
	}
	return names
}

// Programs generates the full 12-program suite at DefaultScale,
// fanning the generators out over the CPUs (see Run).
func Programs() []*Program {
	return Run(DefaultScale, 0, func(p *Program) *Program { return p })
}

// Generate builds one named program at the given scale (≥1). Generation
// is deterministic: the same name and scale always produce identical
// source.
func Generate(name string, scale int) *Program {
	if scale < 1 {
		scale = 1
	}
	for _, g := range generators {
		if g.name == name {
			w := newWriter()
			g.build(w, scale)
			return &Program{Name: g.name, Source: w.String(), Traits: g.traits}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Source writer

// writer accumulates MiniFortran source with light formatting.
type writer struct {
	sb     strings.Builder
	indent int
}

func newWriter() *writer { return &writer{} }

func (w *writer) String() string { return w.sb.String() }

// L writes one indented source line.
func (w *writer) L(format string, args ...any) {
	w.sb.WriteString(strings.Repeat("  ", w.indent))
	fmt.Fprintf(&w.sb, format, args...)
	w.sb.WriteByte('\n')
}

// Program opens the PROGRAM unit.
func (w *writer) Program(name string) {
	w.L("PROGRAM %s", name)
	w.indent++
}

// Subroutine opens a SUBROUTINE unit.
func (w *writer) Subroutine(name string, params ...string) {
	w.L("SUBROUTINE %s(%s)", name, strings.Join(params, ", "))
	w.indent++
}

// Function opens an INTEGER FUNCTION unit.
func (w *writer) Function(name string, params ...string) {
	w.L("INTEGER FUNCTION %s(%s)", name, strings.Join(params, ", "))
	w.indent++
}

// End closes the current unit.
func (w *writer) End() {
	w.indent--
	w.L("END")
	w.L("")
}

// Uses emits n distinct statements each containing exactly one textual
// reference to expr, assigning into fresh sink variables named
// <sink>0.. (integer names). Each statement is one countable reference.
func (w *writer) Uses(sink, expr string, n int) {
	for i := 0; i < n; i++ {
		w.L("%s%d = %s + %d", sink, i, expr, i)
	}
}

// FillerDecls declares the variables FillerBody uses; it must be called
// in the declaration section of the unit.
func (w *writer) FillerDecls(prefix string, n int) {
	if n <= 0 {
		return
	}
	names := make([]string, n+1)
	names[0] = prefix + "R"
	for i := 1; i <= n; i++ {
		names[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	w.L("INTEGER %s", joinWrapped(names))
}

// FillerBody emits n lines of analysis-neutral code (arithmetic over a
// runtime input, so nothing folds and nothing is countable). It inflates
// one routine's line count to model the skewed per-procedure
// distributions Table 1 reports for fpppp and simple.
func (w *writer) FillerBody(prefix string, n int) {
	if n <= 0 {
		return
	}
	w.L("READ %sR", prefix)
	prev := prefix + "R"
	for i := 1; i <= n; i++ {
		cur := fmt.Sprintf("%s%d", prefix, i)
		w.L("%s = %s + %d", cur, prev, i)
		prev = cur
	}
}

// joinWrapped joins names with commas, inserting continuations to keep
// declaration lines readable.
func joinWrapped(names []string) string {
	var sb strings.Builder
	for i, n := range names {
		if i > 0 {
			sb.WriteString(", ")
			if i%12 == 0 {
				sb.WriteString("&\n    ")
			}
		}
		sb.WriteString(n)
	}
	return sb.String()
}

// DeclSinks declares the sink variables Uses writes.
func (w *writer) DeclSinks(sink string, n int) {
	if n == 0 {
		return
	}
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("%s%d", sink, i)
	}
	w.L("INTEGER %s", strings.Join(names, ", "))
}
