package suite

import "fmt"

// Each generator below regenerates one row of the paper's tables. The
// comments state the paper's qualitative result for that program and the
// structural mechanism used to reproduce it. Counting conventions the
// mechanisms rely on (see internal/core/count.go):
//
//   - a use of a constant formal/global's entry value is one
//     substituted reference;
//   - a bare variable at a by-reference call position is substitutable
//     only when MOD shows the callee does not modify it — so, without
//     MOD, every by-ref position and every use after a by-ref re-pass
//     of the same variable stops counting;
//   - globals are killed at every call under worst-case assumptions, so
//     call-site global values survive only under MOD (or through a
//     return jump function whose evaluation folds to a constant).

// genADM — paper: all four flavors equal (110); return JFs no effect;
// without MOD the count collapses to 25; intraprocedural-only close
// behind (105).
//
// Mechanism: every interprocedural constant enters as a literal actual
// one call deep (all flavors equal); each stage re-passes its formal by
// reference to a shared read-only helper and then keeps using it, so
// most references die without MOD; the helper receives conflicting
// values (⊥ under every flavor); stages carry local-constant blocks for
// the intraprocedural baseline.
func genADM(w *writer, scale int) {
	stages := 6 * scale

	w.Program("ADM")
	for k := 0; k < stages; k++ {
		w.L("CALL STAGE%d(%d)", k, 100+k)
	}
	w.End()

	for k := 0; k < stages; k++ {
		w.Subroutine(fmt.Sprintf("STAGE%d", k), "N")
		w.L("INTEGER N, LC")
		w.DeclSinks("M", 4)
		nloc := 5
		if k == stages-1 {
			nloc = 3 // keep the intraprocedural total just below the interprocedural one
		}
		w.DeclSinks("L", nloc)
		w.Uses("M", "N", 1)   // survives even without MOD
		w.L("CALL SHARED(N)") // by-ref: reference counts only with MOD
		for i := 1; i < 4; i++ {
			w.L("M%d = N * %d", i, i+1) // post-re-pass: MOD-dependent
		}
		w.L("LC = 7")
		w.Uses("L", "LC", nloc) // intraprocedural-baseline fodder
		w.L("RETURN")
		w.End()
	}

	w.Subroutine("SHARED", "V")
	w.L("INTEGER V, W")
	w.L("W = V + 1") // V meets conflicting constants: ⊥ under every flavor
	w.L("RETURN")
	w.End()
}

// genDODUC — paper: literal 288 ≈ intraprocedural 289 = pass-through =
// polynomial 289; return JFs worth +2; MOD worth almost nothing (288
// without); intraprocedural-only finds just 3.
//
// Mechanism: a large battery of routines each called once with literal
// actuals used immediately (before any call); no constant globals; one
// computed-constant actual (the literal/intraprocedural gap) and one
// returned-constant pattern (the return-JF gap); almost nothing for the
// local baseline.
func genDODUC(w *writer, scale int) {
	routines := 10 * scale

	w.Program("DODUC")
	w.L("INTEGER KONST, IV, LC")
	w.DeclSinks("Q", 3)
	w.L("KONST = 250") // computed constant: invisible to the literal flavor
	w.L("IV = 0")
	w.L("CALL GETSEV(IV)")        // IV = 7 on return: visible only with return JFs
	w.L("CALL RTN0(KONST, 1, 2)") // first routine sees the computed constant
	w.L("CALL RTNRET(IV)")
	for k := 1; k < routines; k++ {
		w.L("CALL RTN%d(%d, %d, %d)", k, 3*k, 3*k+1, 3*k+2)
	}
	w.L("LC = 3")
	w.Uses("Q", "LC", 3) // the paper's three intraprocedural constants
	w.End()

	for k := 0; k < routines; k++ {
		w.Subroutine(fmt.Sprintf("RTN%d", k), "IA", "IB", "IC")
		w.L("INTEGER IA, IB, IC")
		nsink := 9
		if k == 1 {
			nsink = 10
		}
		w.DeclSinks("M", nsink)
		for i, f := range []string{"IA", "IB", "IC"} {
			for j := 0; j < 3; j++ {
				w.L("M%d = %s + %d", 3*i+j, f, j) // used before any call
			}
		}
		if k == 1 {
			// The single MOD-sensitive spot in the program: a formal
			// re-passed by reference, then used once more (the paper's
			// doduc loses exactly one constant without MOD).
			w.L("CALL LEAF1(IB)")
			w.L("M9 = IB + 9")
		} else {
			w.L("CALL LEAF%d(%d)", k, 7*k) // literal actual, one level deeper
		}
		w.L("RETURN")
		w.End()

		w.Subroutine(fmt.Sprintf("LEAF%d", k), "N")
		w.L("INTEGER N")
		w.DeclSinks("M", 3)
		w.Uses("M", "N", 3)
		w.L("RETURN")
		w.End()
	}

	w.Subroutine("GETSEV", "IOUT")
	w.L("INTEGER IOUT")
	w.L("IOUT = 7")
	w.L("RETURN")
	w.End()

	w.Subroutine("RTNRET", "N")
	w.L("INTEGER N")
	w.DeclSinks("M", 2)
	w.Uses("M", "N", 2) // +2 with return JFs
	w.L("RETURN")
	w.End()
}

// genFPPPP — paper: literal 49 < intraprocedural 54 < pass-through 60 =
// polynomial (56 without return JFs); MOD worth a lot (34 without);
// one routine holds a large share of the code (skewed line counts).
//
// Mechanism: a blend — literal actuals (base), computed-constant actuals
// (+intraprocedural), a three-deep pass-through chain (+pass-through), a
// returned constant (+return JFs), post-re-pass references (the MOD
// gap), and one oversized routine.
func genFPPPP(w *writer, scale int) {
	w.Program("FPPPP")
	w.L("INTEGER KDIM, IV")
	w.L("KDIM = 5 * 5")
	w.L("IV = 0")
	w.L("CALL GETLEN(IV)")
	for k := 0; k < 2*scale; k++ {
		w.L("CALL ERIC%d(%d, %d)", k, 10+k, 50+k)
	}
	w.L("CALL BIGONE(KDIM, 900)")
	w.L("CALL CHAIN1(%d)", 17)
	w.L("CALL USELEN(IV)")
	w.End()

	for k := 0; k < 2*scale; k++ {
		w.Subroutine(fmt.Sprintf("ERIC%d", k), "I1", "I2")
		w.L("INTEGER I1, I2, LC")
		w.DeclSinks("M", 4)
		w.DeclSinks("L", 3)
		w.Uses("M", "I1", 2)
		w.L("CALL FSINK(I1)") // by-ref re-pass
		w.L("M2 = I1 + I2")   // two references, both MOD-dependent for I1
		w.L("M3 = I2 * 2")
		w.L("LC = 9")
		w.Uses("L", "LC", 3) // intraprocedural baseline
		w.L("RETURN")
		w.End()
	}

	// The skewed giant routine.
	w.Subroutine("BIGONE", "NDIM", "NMAX")
	w.L("INTEGER NDIM, NMAX, I")
	w.DeclSinks("M", 10)
	w.DeclSinks("L", 8)
	w.L("INTEGER LC")
	w.FillerDecls("IF", 20*scale)
	w.Uses("M", "NDIM", 5)
	w.Uses("L", "NMAX", 4)
	w.L("LC = 12")
	w.L("DO I = 1, NDIM")
	w.L("  M5 = M5 + LC")
	w.L("ENDDO")
	w.L("M6 = NDIM * NMAX")
	w.L("M7 = NDIM - NMAX")
	w.FillerBody("IF", 20*scale) // the skewed line-count distribution (Table 1)
	w.L("RETURN")
	w.End()

	// Pass-through chain: CHAIN1 → CHAIN2 → CHAIN3.
	w.Subroutine("CHAIN1", "N")
	w.L("INTEGER N")
	w.DeclSinks("M", 1)
	w.Uses("M", "N", 1)
	w.L("CALL CHAIN2(N)")
	w.L("RETURN")
	w.End()
	w.Subroutine("CHAIN2", "N")
	w.L("INTEGER N")
	w.DeclSinks("M", 2)
	w.Uses("M", "N", 2)
	w.L("CALL CHAIN3(N)")
	w.L("RETURN")
	w.End()
	w.Subroutine("CHAIN3", "N")
	w.L("INTEGER N")
	w.DeclSinks("M", 2)
	w.Uses("M", "N", 2)
	w.L("RETURN")
	w.End()

	w.Subroutine("GETLEN", "IOUT")
	w.L("INTEGER IOUT")
	w.L("IOUT = 256")
	w.L("RETURN")
	w.End()
	w.Subroutine("USELEN", "N")
	w.L("INTEGER N")
	w.DeclSinks("M", 3)
	w.Uses("M", "N", 3) // +3 with return JFs
	w.L("RETURN")
	w.End()
	w.Subroutine("FSINK", "V")
	w.L("INTEGER V, W")
	w.L("W = V")
	w.L("RETURN")
	w.End()
}

// genLINPACKD — paper: literal 94 ≪ intraprocedural 170 = pass-through;
// without MOD 33; intraprocedural-only 74.
//
// Mechanism: the BLAS-style driver keeps its dimension parameters in
// COMMON, assigns them once in the main program, and every routine reads
// them; only MOD keeps the globals alive across the call sequence in
// main. A thinner stream of literal actuals provides the literal
// baseline, and local constants the intraprocedural one. No pass-through
// chains, so the pass-through flavor adds nothing over intraprocedural.
func genLINPACKD(w *writer, scale int) {
	routines := 5 * scale

	w.Program("LINPAK")
	w.L("COMMON /DIMS/ N, LDA, NB")
	w.L("INTEGER N, LDA, NB")
	w.L("N = 100")
	w.L("LDA = 201")
	w.L("NB = 64")
	for k := 0; k < routines; k++ {
		w.L("CALL BLAS%d(%d)", k, 1000+k)
	}
	w.End()

	for k := 0; k < routines; k++ {
		w.Subroutine(fmt.Sprintf("BLAS%d", k), "INCX")
		w.L("COMMON /DIMS/ N, LDA, NB")
		w.L("INTEGER N, LDA, NB, INCX, LC, I")
		w.DeclSinks("M", 9)
		w.DeclSinks("L", 3)
		// Globals: visible to intraprocedural+ flavors, dead without MOD
		// for every routine after the first call in main.
		w.Uses("M", "N", 2)
		w.L("M2 = LDA + 1")
		w.L("M3 = NB * 2")
		w.L("DO I = 1, N")
		w.L("  M4 = M4 + I")
		w.L("ENDDO")
		// Literal actual: the literal-flavor baseline. The stride is
		// re-passed by reference first, so these references die without
		// MOD exactly like the global ones (the paper's linpackd keeps
		// only 33 of 170 constants without MOD).
		w.L("CALL LSINK(INCX)")
		w.L("M5 = INCX + 1")
		w.L("M6 = INCX * 2")
		w.L("M7 = INCX - 1")
		w.L("M8 = INCX * 4")
		// Local constants for the intraprocedural baseline.
		w.L("LC = 4")
		w.Uses("L", "LC", 3)
		w.L("RETURN")
		w.End()
	}

	w.Subroutine("LSINK", "V")
	w.L("INTEGER V, W")
	w.L("W = V") // conflicting strides: ⊥ under every flavor
	w.L("RETURN")
	w.End()
}

// genMATRIX300 — paper: literal 71 < intraprocedural 122 < pass-through
// 138 = polynomial; without MOD 18; intraprocedural-only 69.
//
// Mechanism: dimension parameters computed in the driver flow down a
// three-level call chain as pass-through formals, with references both
// before and after each re-pass (the post-re-pass ones die without MOD).
func genMATRIX300(w *writer, scale int) {
	chains := 3 * scale

	w.Program("MTX300")
	w.L("INTEGER LDA, N")
	w.L("LDA = 301")
	w.L("N = 300")
	for k := 0; k < chains; k++ {
		w.L("CALL MXM%d(LDA, N, %d)", k, 8+k)
	}
	w.End()

	for k := 0; k < chains; k++ {
		// Level 1: sees computed constants (intraprocedural+).
		w.Subroutine(fmt.Sprintf("MXM%d", k), "LDA", "N", "NBLK")
		w.L("INTEGER LDA, N, NBLK")
		w.DeclSinks("M", 6)
		w.L("M0 = LDA - N")  // two refs, pre-call
		w.L("M1 = NBLK + 1") // literal-flavor refs
		w.L("M4 = NBLK * 2")
		w.L("M5 = NBLK - 3")
		w.L("CALL MXV%d(LDA, N)", k)
		w.L("M2 = LDA + 1") // post-re-pass: MOD-dependent
		w.L("M3 = N + 2")
		w.L("RETURN")
		w.End()

		// Level 2: reachable only through pass-through.
		w.Subroutine(fmt.Sprintf("MXV%d", k), "LDA", "N")
		w.L("INTEGER LDA, N")
		w.DeclSinks("M", 4)
		w.L("M0 = LDA * 2")
		w.L("M1 = N - 1")
		w.L("CALL DOT%d(N)", k)
		w.L("M2 = N + 3") // post-re-pass
		w.L("RETURN")
		w.End()

		// Level 3.
		w.Subroutine(fmt.Sprintf("DOT%d", k), "N")
		w.L("INTEGER N, LC")
		w.DeclSinks("M", 2)
		w.DeclSinks("L", 3)
		w.Uses("M", "N", 2)
		w.L("LC = 30")
		w.Uses("L", "LC", 3) // intraprocedural baseline
		w.L("RETURN")
		w.End()
	}
}

// genMDG — paper (small program): literal 31 < intraprocedural 40 =
// pass-through; return JFs worth +1 (41); without MOD back to the
// literal level (31); intraprocedural-only 31.
//
// Mechanism: a computed global drives the intraprocedural gap and dies
// without MOD (the assignments sit before an unrelated call); a single
// returned constant provides the +1.
func genMDG(w *writer, scale int) {
	w.Program("MDG")
	w.L("COMMON /CTRL/ NMOL, NATM")
	w.L("INTEGER NMOL, NATM, IV")
	w.L("NMOL = 343")
	w.L("NATM = 3")
	w.L("IV = 0")
	w.L("CALL PREP")
	for k := 0; k < 2*scale; k++ {
		w.L("CALL WAVE%d(%d)", k, 20+k)
	}
	w.L("CALL GETONE(IV)")
	w.L("CALL LAST(IV)")
	w.End()

	w.Subroutine("PREP")
	w.L("INTEGER W")
	w.L("W = 0")
	w.L("RETURN")
	w.End()

	for k := 0; k < 2*scale; k++ {
		w.Subroutine(fmt.Sprintf("WAVE%d", k), "ISTEP")
		w.L("COMMON /CTRL/ NMOL, NATM")
		w.L("INTEGER NMOL, NATM, ISTEP, LC")
		w.DeclSinks("M", 7)
		w.DeclSinks("L", 4)
		// Globals: alive only with MOD (PREP precedes in main).
		w.L("M0 = NMOL + 1")
		w.L("M1 = NATM * 2")
		w.L("M2 = NMOL - NATM")
		// Literal actual.
		w.L("M3 = ISTEP + 1")
		w.L("M4 = ISTEP * 3")
		w.L("M5 = ISTEP - 1")
		w.L("M6 = ISTEP + 2")
		// Local constants.
		w.L("LC = 2")
		w.Uses("L", "LC", 4)
		w.L("RETURN")
		w.End()
	}

	w.Subroutine("GETONE", "IOUT")
	w.L("INTEGER IOUT")
	w.L("IOUT = 1")
	w.L("RETURN")
	w.End()

	w.Subroutine("LAST", "N")
	w.L("INTEGER N, W")
	w.L("W = N + 1") // +1 with return JFs
	w.L("RETURN")
	w.End()
}

// genOCEAN — paper's headline return-JF result: 57 literal, 62 without
// return JFs, 194 with them (all flavors equal), 204 under complete
// propagation, 79 without MOD; intraprocedural-only 56.
//
// Mechanism: an initialization routine assigns constants to the grid
// COMMON; every timestep routine reads the grid block; two of the
// globals sit behind a debug-only READ that complete propagation
// removes. Half of each step's references come after an internal kernel
// call, so the no-MOD run loses them.
func genOCEAN(w *writer, scale int) {
	steps := 4 * scale

	w.Program("OCEAN")
	w.L("COMMON /GRID/ NX, NY, NZ, NT")
	w.L("INTEGER NX, NY, NZ, NT, KICK")
	w.L("KICK = 3 * 11") // computed constant: the small no-return-JF margin over literal
	w.L("CALL SETUP(0)")
	for k := 0; k < steps; k++ {
		w.L("CALL STEP%d(%d, KICK + 0)", k, 30+k)
	}
	w.End()

	w.Subroutine("SETUP", "IDBG")
	w.L("COMMON /GRID/ NX, NY, NZ, NT")
	w.L("INTEGER NX, NY, NZ, NT, IDBG")
	w.L("NX = 64")
	w.L("NY = 32")
	w.L("NZ = 16")
	w.L("NT = 100")
	w.L("IF (IDBG .NE. 0) THEN")
	w.L("  READ NZ")
	w.L("  READ NT")
	w.L("ENDIF")
	w.L("RETURN")
	w.End()

	for k := 0; k < steps; k++ {
		w.Subroutine(fmt.Sprintf("STEP%d", k), "ITER", "NKICK")
		w.L("COMMON /GRID/ NX, NY, NZ, NT")
		w.L("INTEGER NX, NY, NZ, NT, ITER, NKICK, I, LC")
		w.DeclSinks("M", 9)
		w.DeclSinks("L", 2)
		w.L("M8 = NKICK + 1") // computed-constant actual: visible without return JFs
		// Constants from the initialization routine (return JFs only).
		w.L("M0 = NX + 1")
		w.L("M1 = NY * 2")
		w.L("DO I = 1, NX")
		w.L("  M2 = M2 + I")
		w.L("ENDDO")
		// The debug-guarded globals: complete propagation only.
		w.L("M3 = NZ + 1")
		w.L("M4 = NT - 1")
		// Literal actual baseline.
		w.L("M5 = ITER + 1")
		w.L("CALL KERNEL(ITER)")
		// Post-call global references: lost without MOD.
		w.L("M6 = NX * NY")
		w.L("M7 = NY + NX")
		// Local constants.
		w.L("LC = 8")
		w.Uses("L", "LC", 2)
		w.L("RETURN")
		w.End()
	}

	w.Subroutine("KERNEL", "IT")
	w.L("INTEGER IT, W")
	w.L("W = IT") // conflicting literals: ⊥
	w.L("RETURN")
	w.End()
}

// genQCD — paper: all flavors equal (180); MOD worth a little (169
// without); intraprocedural-only just one behind (179).
//
// Mechanism: lattice constants live as literal actuals used before any
// call (flavor-independent, mostly MOD-independent), one global block
// provides the small MOD gap, and heavy local-constant blocks bring the
// intraprocedural baseline within one reference of the interprocedural
// count.
func genQCD(w *writer, scale int) {
	routines := 6 * scale

	w.Program("QCD")
	for k := 0; k < routines; k++ {
		w.L("CALL UPD%d(%d, %d)", k, 4+k, 16+k)
	}
	w.End()

	for k := 0; k < routines; k++ {
		w.Subroutine(fmt.Sprintf("UPD%d", k), "MU", "NU")
		w.L("INTEGER MU, NU, LC")
		w.DeclSinks("M", 4)
		w.DeclSinks("L", 5)
		// Literal actuals, used immediately (flavor-independent).
		w.Uses("M", "MU", 2)
		w.L("M2 = NU + 1")
		w.L("M3 = NU * MU")
		// One by-reference re-pass at the end: the reference counts only
		// with MOD (the small Table 3 gap), and the sink receives
		// conflicting values so no flavor gains from it.
		w.L("CALL QSINK(MU)")
		// Local constants: nearly one-for-one with the above.
		w.L("LC = 6")
		w.Uses("L", "LC", 5)
		w.L("RETURN")
		w.End()
	}

	w.Subroutine("QSINK", "V")
	w.L("INTEGER V, W")
	w.L("W = V")
	w.L("RETURN")
	w.End()
}

// genSIMPLE — paper: literal 174 < intraprocedural 179 < pass-through
// 183; the no-MOD run collapses to 2; one routine dominates the line
// count; intraprocedural-only 174.
//
// Mechanism: every routine re-passes its formals by reference to a
// shared helper *first* and uses them afterwards, so with worst-case
// call assumptions almost nothing survives — exactly two references sit
// before any call. Computed-constant and pass-through extras provide the
// small flavor gaps.
func genSIMPLE(w *writer, scale int) {
	routines := 5 * scale

	w.Program("SIMPLE")
	w.L("COMMON /HYDRO/ NCYC")
	w.L("INTEGER NCYC, KK")
	w.L("NCYC = 12")
	w.L("KK = 9 * 9")
	for k := 0; k < routines; k++ {
		w.L("CALL HYD%d(%d)", k, 40+k)
	}
	w.L("CALL BIGHYD(KK, 777)")
	w.L("CALL CH1(55)")
	w.End()

	for k := 0; k < routines; k++ {
		w.Subroutine(fmt.Sprintf("HYD%d", k), "N")
		w.L("INTEGER N, LC")
		w.DeclSinks("M", 5)
		w.DeclSinks("L", 5)
		w.L("CALL HSINK(N)") // re-pass first: everything below is MOD-dependent
		w.Uses("M", "N", 5)
		w.L("LC = 14")
		w.Uses("L", "LC", 5) // intraprocedural baseline
		w.L("RETURN")
		w.End()
	}

	// The dominant routine (skewed distribution; Table 1 calls this out).
	w.Subroutine("BIGHYD", "KDIM", "NLIT")
	w.L("COMMON /HYDRO/ NCYC")
	w.L("INTEGER NCYC, KDIM, NLIT, I, LC")
	w.DeclSinks("M", 14)
	w.DeclSinks("L", 6)
	w.FillerDecls("IH", 20*scale)
	w.L("M0 = NLIT + 1") // the two MOD-independent references
	w.L("M1 = NLIT * 2")
	w.L("CALL HSINK(KDIM)")
	for i := 2; i < 8; i++ {
		w.L("M%d = KDIM + %d", i, i) // computed-constant refs, MOD-dependent
	}
	w.L("M8 = NCYC + 1") // global refs (post-call): MOD-dependent
	w.L("M9 = NCYC * 2")
	w.L("DO I = 1, KDIM")
	w.L("  M10 = M10 + I")
	w.L("ENDDO")
	w.L("LC = 5")
	w.Uses("L", "LC", 6)
	w.FillerBody("IH", 20*scale) // the dominant-routine skew (Table 1)
	w.L("RETURN")
	w.End()

	// A short pass-through chain for the pass-through gap.
	w.Subroutine("CH1", "N")
	w.L("INTEGER N")
	w.L("CALL CH2(N)")
	w.L("RETURN")
	w.End()
	w.Subroutine("CH2", "N")
	w.L("INTEGER N")
	w.DeclSinks("M", 4)
	w.L("CALL HSINK(N)")
	w.Uses("M", "N", 4)
	w.L("RETURN")
	w.End()

	w.Subroutine("HSINK", "V")
	w.L("INTEGER V, W")
	w.L("W = V") // conflicting values: ⊥
	w.L("RETURN")
	w.End()
}

// genSNASA7 — paper: literal 254 < intraprocedural 336 = pass-through;
// without MOD 303 (mild); intraprocedural-only 254.
//
// Mechanism: the seven kernels receive a mix of literal and
// computed-constant actuals and use them at the top of each routine
// (before any call), so the no-MOD run keeps most references; a small
// post-call tail provides the mild MOD gap; local constants match the
// literal count for the baseline.
func genSNASA7(w *writer, scale int) {
	kernels := 7
	perKernel := 2 * scale

	w.Program("SNASA7")
	w.L("INTEGER KSZ")
	w.L("KSZ = 512")
	for k := 0; k < kernels; k++ {
		for j := 0; j < perKernel; j++ {
			w.L("CALL KRN%d%d(%d, KSZ + 0)", k, j, 60+10*k+j)
		}
	}
	w.End()

	for k := 0; k < kernels; k++ {
		for j := 0; j < perKernel; j++ {
			w.Subroutine(fmt.Sprintf("KRN%d%d", k, j), "N", "NSZ")
			w.L("INTEGER N, NSZ, LC")
			w.DeclSinks("M", 7)
			w.DeclSinks("L", 3)
			// Literal actual: three refs before any call.
			w.Uses("M", "N", 3)
			// Computed-constant actual: three refs before any call.
			w.L("M3 = NSZ + 1")
			w.L("M4 = NSZ * 2")
			w.L("M5 = NSZ - N")
			w.L("CALL KSINK(N)")
			w.L("M6 = N + 9") // the mild MOD-dependent tail
			// Local constants sized to the literal count.
			w.L("LC = 11")
			w.Uses("L", "LC", 3)
			w.L("RETURN")
			w.End()
		}
	}

	w.Subroutine("KSINK", "V")
	w.L("INTEGER V, W")
	w.L("W = V")
	w.L("RETURN")
	w.End()
}

// genSPEC77 — paper: literal 104 < intraprocedural 137 = pass-through;
// return jump functions make no difference; complete propagation adds a
// few (141); without MOD 76; intraprocedural-only 83.
//
// Mechanism: a weather-model driver that assigns its COMMON resolution
// parameters directly in the main program — one of them behind a
// debug-only READ whose guard is a local constant, so only complete
// propagation (which folds the guard and removes the READ) exposes it.
// Computed-constant actuals and post-call references provide the
// literal and MOD gaps; no returned constants anywhere, so return jump
// functions change nothing.
func genSPEC77(w *writer, scale int) {
	routines := 4 * scale

	w.Program("SPEC77")
	w.L("COMMON /ATMO/ NLEV, NLON")
	w.L("INTEGER NLEV, NLON, KRES, IDBG")
	w.L("KRES = 42")
	w.L("IDBG = 0")
	w.L("NLEV = 12")
	w.L("NLON = 96")
	w.L("IF (IDBG .NE. 0) THEN")
	w.L("  READ NLEV")
	w.L("ENDIF")
	for k := 0; k < routines; k++ {
		// KRES travels as an expression so the by-reference binding
		// does not kill it under worst-case assumptions.
		w.L("CALL GLOOP%d(%d, KRES + 0)", k, 70+k)
	}
	w.End()

	for k := 0; k < routines; k++ {
		w.Subroutine(fmt.Sprintf("GLOOP%d", k), "N", "NR")
		w.L("COMMON /ATMO/ NLEV, NLON")
		w.L("INTEGER NLEV, NLON, N, NR, LC")
		w.DeclSinks("M", 8)
		w.DeclSinks("L", 4)
		// Literal actual refs.
		w.Uses("M", "N", 2)
		// Computed-constant actual refs.
		w.L("M2 = NR + 1")
		w.L("M3 = NR * 2")
		// NLON is assigned unconditionally in main; NLEV hides behind
		// the debug guard and needs complete propagation.
		w.L("M4 = NLON + 1")
		w.L("M5 = NLEV + 1")
		w.L("CALL SSINK(N)")
		w.L("M6 = N + 4")    // post-re-pass
		w.L("M7 = NLON * 2") // post-call global
		w.L("LC = 3")
		w.Uses("L", "LC", 4)
		w.L("RETURN")
		w.End()
	}

	w.Subroutine("SSINK", "V")
	w.L("INTEGER V, W")
	w.L("W = V")
	w.L("RETURN")
	w.End()
}

// genTRFD — paper (smallest program): every flavor finds the same 16;
// without MOD 10; intraprocedural-only 15.
//
// Mechanism: a two-phase integral transform with literal actuals, a few
// post-call references, and a local-constant block one short of the
// interprocedural count.
func genTRFD(w *writer, scale int) {
	w.Program("TRFD")
	w.L("INTEGER NB")
	w.L("NB = 10 + 0*%d", scale) // scale-independent tiny program
	w.L("CALL TRF1(40)")
	w.L("CALL TRF2(80)") // distinct values: the shared sink stays ⊥ under every flavor
	w.End()

	w.Subroutine("TRF1", "N")
	w.L("INTEGER N, LC")
	w.DeclSinks("M", 8)
	w.DeclSinks("L", 8)
	w.Uses("M", "N", 5)
	w.L("CALL TSINK(N)")
	w.L("M5 = N + 1")
	w.L("M6 = N + 2")
	w.L("M7 = N + 3")
	w.L("LC = 20")
	w.Uses("L", "LC", 8)
	w.L("RETURN")
	w.End()

	w.Subroutine("TRF2", "N")
	w.L("INTEGER N, LC")
	w.DeclSinks("M", 8)
	w.DeclSinks("L", 7)
	w.Uses("M", "N", 5)
	w.L("CALL TSINK(N)")
	w.L("M5 = N * 2")
	w.L("M6 = N * 3")
	w.L("M7 = N * 4")
	w.L("LC = 21")
	w.Uses("L", "LC", 7)
	w.L("RETURN")
	w.End()

	w.Subroutine("TSINK", "V")
	w.L("INTEGER V, W")
	w.L("W = V")
	w.L("RETURN")
	w.End()
}
