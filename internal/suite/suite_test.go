package suite

import (
	"testing"

	"ipcp"
)

// results bundles every configuration the paper's tables use, for one
// program.
type results struct {
	name string
	// Table 2: the four flavors with return JFs + MOD.
	lit, intra, pass, poly int
	// Table 2, last columns: polynomial / pass-through without return JFs.
	polyNoRet, passNoRet int
	// Table 3: polynomial without MOD; complete propagation;
	// intraprocedural-only.
	polyNoMOD int
	complete  int
	intraOnly int
}

func run(t *testing.T, name string) results {
	t.Helper()
	p := Generate(name, DefaultScale)
	if p == nil {
		t.Fatalf("unknown program %s", name)
	}
	prog, err := ipcp.Load(p.Source)
	if err != nil {
		t.Fatalf("%s does not load: %v\n%s", name, err, p.Source)
	}
	cfg := func(j ipcp.JumpFunction, ret, mod, complete bool) int {
		return prog.Analyze(ipcp.Config{
			Jump: j, ReturnJumpFunctions: ret, MOD: mod, Complete: complete,
		}).TotalSubstituted
	}
	return results{
		name:      name,
		lit:       cfg(ipcp.Literal, true, true, false),
		intra:     cfg(ipcp.Intraprocedural, true, true, false),
		pass:      cfg(ipcp.PassThrough, true, true, false),
		poly:      cfg(ipcp.Polynomial, true, true, false),
		polyNoRet: cfg(ipcp.Polynomial, false, true, false),
		passNoRet: cfg(ipcp.PassThrough, false, true, false),
		polyNoMOD: cfg(ipcp.Polynomial, true, false, false),
		complete:  cfg(ipcp.Polynomial, true, true, true),
		intraOnly: prog.AnalyzeIntraprocedural().TotalSubstituted,
	}
}

var resultCache = map[string]results{}

func get(t *testing.T, name string) results {
	t.Helper()
	if r, ok := resultCache[name]; ok {
		return r
	}
	r := run(t, name)
	resultCache[name] = r
	return r
}

// TestEveryProgramLoadsAndFindsConstants is the baseline sanity check.
func TestEveryProgramLoadsAndFindsConstants(t *testing.T) {
	for _, name := range Names() {
		r := get(t, name)
		if r.poly == 0 {
			t.Errorf("%s: polynomial configuration found nothing", name)
		}
	}
}

// TestSubsetOrderingAllPrograms asserts §3.1's containment: the set of
// constants propagated by each flavor is a subset of the next flavor's,
// so the substitution counts are monotone, and pass-through equals
// polynomial on every program (the paper's headline result).
func TestSubsetOrderingAllPrograms(t *testing.T) {
	for _, name := range Names() {
		r := get(t, name)
		if !(r.lit <= r.intra && r.intra <= r.pass && r.pass <= r.poly) {
			t.Errorf("%s: flavor ordering violated: lit=%d intra=%d pass=%d poly=%d",
				name, r.lit, r.intra, r.pass, r.poly)
		}
		if r.pass != r.poly {
			t.Errorf("%s: pass-through (%d) != polynomial (%d); the paper found them equal on every program",
				name, r.pass, r.poly)
		}
		if r.passNoRet != r.polyNoRet {
			t.Errorf("%s: without return JFs pass-through (%d) != polynomial (%d)",
				name, r.passNoRet, r.polyNoRet)
		}
	}
}

// TestTable2FlavorGaps pins down, per program, which flavors tie and
// which show strict gaps, matching the paper's Table 2 row shapes.
func TestTable2FlavorGaps(t *testing.T) {
	// Programs where all four flavors tie.
	for _, name := range []string{"adm", "qcd", "trfd"} {
		r := get(t, name)
		if !(r.lit == r.intra && r.intra == r.poly) {
			t.Errorf("%s: expected all flavors equal, got lit=%d intra=%d pass=%d poly=%d",
				name, r.lit, r.intra, r.pass, r.poly)
		}
	}
	// Programs with a literal < intraprocedural gap but no pass-through
	// gain (no chains): linpackd, snasa7, spec77, mdg.
	for _, name := range []string{"linpackd", "snasa7", "spec77", "mdg"} {
		r := get(t, name)
		if !(r.lit < r.intra) {
			t.Errorf("%s: expected literal < intraprocedural, got %d vs %d", name, r.lit, r.intra)
		}
		if r.intra != r.pass {
			t.Errorf("%s: expected intraprocedural == pass-through, got %d vs %d", name, r.intra, r.pass)
		}
	}
	// Programs where pass-through strictly beats intraprocedural
	// (pass-through chains): fpppp, matrix300, simple.
	for _, name := range []string{"fpppp", "matrix300", "simple"} {
		r := get(t, name)
		if !(r.lit < r.intra && r.intra < r.pass) {
			t.Errorf("%s: expected lit < intra < pass, got lit=%d intra=%d pass=%d",
				name, r.lit, r.intra, r.pass)
		}
	}
	// doduc: tiny gaps, near-tie between literal and the rest.
	r := get(t, "doduc")
	if !(r.lit < r.poly && r.poly-r.lit <= 10) {
		t.Errorf("doduc: expected a small literal/polynomial gap, got %d vs %d", r.lit, r.poly)
	}
}

// TestReturnJumpFunctionEffects reproduces the paper's finding: return
// jump functions made no noticeable difference in most programs, helped
// a little on doduc and mdg, and tripled the count on ocean.
func TestReturnJumpFunctionEffects(t *testing.T) {
	for _, name := range []string{"adm", "linpackd", "matrix300", "qcd", "simple", "snasa7", "spec77", "trfd"} {
		r := get(t, name)
		if r.poly != r.polyNoRet {
			t.Errorf("%s: return JFs should not matter, got %d with vs %d without",
				name, r.poly, r.polyNoRet)
		}
	}
	for _, name := range []string{"doduc", "mdg", "fpppp"} {
		r := get(t, name)
		if !(r.poly > r.polyNoRet) {
			t.Errorf("%s: return JFs should add a little, got %d with vs %d without",
				name, r.poly, r.polyNoRet)
		}
		if r.poly-r.polyNoRet > r.polyNoRet {
			t.Errorf("%s: return JF gain should be small, got %d → %d", name, r.polyNoRet, r.poly)
		}
	}
	// ocean: the initialization-routine effect, at least 2.5×.
	r := get(t, "ocean")
	if r.polyNoRet*5 > r.poly*2 {
		t.Errorf("ocean: return JFs should at least 2.5× the count, got %d → %d", r.polyNoRet, r.poly)
	}
}

// TestMODInformationEffects reproduces Table 3 columns 1–2: removing MOD
// loses constants everywhere, catastrophically on the programs whose
// references live behind by-reference re-passes or in COMMON.
func TestMODInformationEffects(t *testing.T) {
	for _, name := range Names() {
		r := get(t, name)
		if !(r.polyNoMOD < r.poly) {
			t.Errorf("%s: no-MOD should lose constants: %d vs %d", name, r.polyNoMOD, r.poly)
		}
	}
	// Dramatic losses (the paper's adm 110→25, linpackd 170→33,
	// matrix300 138→18, simple 183→2).
	for _, name := range []string{"adm", "linpackd", "matrix300", "simple"} {
		r := get(t, name)
		if r.polyNoMOD*5 > r.poly*2 {
			t.Errorf("%s: no-MOD loss should be dramatic (≤40%%), got %d of %d",
				name, r.polyNoMOD, r.poly)
		}
	}
	// Mild losses (doduc 289→288, qcd 180→169, snasa7 336→303).
	for _, name := range []string{"doduc", "qcd", "snasa7"} {
		r := get(t, name)
		if r.polyNoMOD*10 < r.poly*7 {
			t.Errorf("%s: no-MOD loss should be mild (≥70%%), got %d of %d",
				name, r.polyNoMOD, r.poly)
		}
	}
	// simple: the paper's near-total collapse.
	r := get(t, "simple")
	if r.polyNoMOD > r.poly/10 {
		t.Errorf("simple: no-MOD should collapse (paper: 183→2), got %d of %d",
			r.polyNoMOD, r.poly)
	}
}

// TestCompletePropagationEffects reproduces Table 3 column 3: dead-code
// elimination exposes extra constants only on ocean and spec77, and one
// DCE round suffices.
func TestCompletePropagationEffects(t *testing.T) {
	for _, name := range Names() {
		r := get(t, name)
		switch name {
		case "ocean", "spec77":
			if !(r.complete > r.poly) {
				t.Errorf("%s: complete propagation should add constants: %d vs %d",
					name, r.complete, r.poly)
			}
		default:
			if r.complete != r.poly {
				t.Errorf("%s: complete propagation should change nothing: %d vs %d",
					name, r.complete, r.poly)
			}
		}
	}
}

// TestInterVsIntraprocedural reproduces Table 3 column 4: the
// interprocedural propagation always finds more substitutions than the
// strictly intraprocedural one, dramatically so on doduc.
func TestInterVsIntraprocedural(t *testing.T) {
	for _, name := range Names() {
		r := get(t, name)
		if !(r.poly > r.intraOnly) {
			t.Errorf("%s: interprocedural (%d) should beat intraprocedural-only (%d)",
				name, r.poly, r.intraOnly)
		}
	}
	r := get(t, "doduc")
	if r.intraOnly*10 > r.poly {
		t.Errorf("doduc: intraprocedural-only should be tiny (paper: 3 vs 289), got %d vs %d",
			r.intraOnly, r.poly)
	}
	// adm and qcd: the near-tie.
	for _, name := range []string{"adm", "qcd"} {
		r := get(t, name)
		if r.intraOnly*10 < r.poly*6 {
			t.Errorf("%s: intraprocedural-only should be close behind (paper within ~5%%), got %d vs %d",
				name, r.intraOnly, r.poly)
		}
	}
}

// TestGenerationDeterministic guards the reproducibility claim.
func TestGenerationDeterministic(t *testing.T) {
	for _, name := range Names() {
		a := Generate(name, DefaultScale)
		b := Generate(name, DefaultScale)
		if a.Source != b.Source {
			t.Errorf("%s: generation is not deterministic", name)
		}
	}
	if Generate("nosuch", 1) != nil {
		t.Error("unknown names should return nil")
	}
	if Generate("adm", 0) == nil {
		t.Error("scale is clamped, not rejected")
	}
}

// TestScalesMonotone: larger scales produce more substitutions (the
// generators replicate their structural patterns).
func TestScalesMonotone(t *testing.T) {
	for _, name := range []string{"adm", "linpackd", "ocean"} {
		small := ipcp.MustLoad(Generate(name, 1).Source).
			Analyze(ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true})
		large := ipcp.MustLoad(Generate(name, 6).Source).
			Analyze(ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true})
		if large.TotalSubstituted <= small.TotalSubstituted {
			t.Errorf("%s: scale 6 (%d) should beat scale 1 (%d)",
				name, large.TotalSubstituted, small.TotalSubstituted)
		}
	}
}

// TestTable1Shape checks the program-characteristics claims the suite
// makes for Table 1: fpppp and simple have skewed line distributions
// (mean well above median); the others are more even.
func TestTable1Shape(t *testing.T) {
	for _, name := range []string{"fpppp", "simple"} {
		st := ipcp.MustLoad(Generate(name, DefaultScale).Source).Stats()
		if st.MeanLinesPerProc < st.MedianLinesPerProc*1.1 {
			t.Errorf("%s: expected skewed distribution, mean=%.1f median=%.1f",
				name, st.MeanLinesPerProc, st.MedianLinesPerProc)
		}
	}
	st := ipcp.MustLoad(Generate("doduc", DefaultScale).Source).Stats()
	if st.Procedures < 10 || st.CallSites < 10 {
		t.Errorf("doduc: expected a call-heavy program, got %+v", st)
	}
}
