package summary

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// sampleDelta exercises every delta field: an added stamp with cells, a
// changed stamp without them, and a removal.
func sampleDelta() *SnapshotDelta {
	base := sampleSnapshot()
	return &SnapshotDelta{
		ConfigKey:   base.ConfigKey,
		GlobalsHash: "def456",
		Parent:      SnapshotContentKey(base),
		Updated: map[string]ProcStamp{
			"SOLVE": base.Procs["SOLVE"],
			"NEW":   {SourceHash: "h9", Key: KeyOf("proc", "9"), SharedKey: KeyOf("proc-shared", "9"), JFHash: "jf9"},
		},
		Removed: []string{"STEP"},
	}
}

func TestSnapshotDeltaRoundTrip(t *testing.T) {
	cases := []*SnapshotDelta{
		sampleDelta(),
		{ConfigKey: "c", GlobalsHash: "g"},
		{ConfigKey: "c", Removed: []string{"A", "B"}},
	}
	for i, d := range cases {
		enc := EncodeSnapshotDelta(d)
		got, err := DecodeSnapshotDelta(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		// The codec canonicalizes nil and empty collections; normalize
		// before comparing.
		want := *d
		if want.Updated == nil {
			want.Updated = map[string]ProcStamp{}
		}
		if got.Updated == nil {
			got.Updated = map[string]ProcStamp{}
		}
		if !reflect.DeepEqual(&want, got) {
			t.Fatalf("case %d: round trip mismatch\nwant %+v\ngot  %+v", i, &want, got)
		}
	}
}

func TestDiffApplyInverse(t *testing.T) {
	parent := sampleSnapshot()
	child := sampleSnapshot()
	// One changed stamp, one added, one removed — the shape of a
	// single-procedure edit plus ripple.
	st := child.Procs["SOLVE"]
	st.SourceHash = "h1-edited"
	child.Procs["SOLVE"] = st
	child.Procs["NEW"] = ProcStamp{SourceHash: "hn", Key: KeyOf("proc", "n"), SharedKey: KeyOf("proc-shared", "n")}
	delete(child.Procs, "STEP")
	child.GlobalsHash = "changed"

	d := DiffSnapshot(parent, child)
	if d == nil {
		t.Fatal("DiffSnapshot returned nil for diffable snapshots")
	}
	if len(d.Updated) != 2 {
		t.Fatalf("Updated has %d entries, want 2 (SOLVE, NEW): %v", len(d.Updated), d.Updated)
	}
	if len(d.Removed) != 1 || d.Removed[0] != "STEP" {
		t.Fatalf("Removed = %v, want [STEP]", d.Removed)
	}
	got, err := ApplySnapshotDelta(parent, d)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if SnapshotContentKey(got) != SnapshotContentKey(child) {
		t.Fatal("apply(parent, diff(parent, child)) != child")
	}

	// Round-tripping the delta through the codec must preserve that.
	d2, err := DecodeSnapshotDelta(EncodeSnapshotDelta(d))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	got2, err := ApplySnapshotDelta(parent, d2)
	if err != nil {
		t.Fatalf("apply decoded: %v", err)
	}
	if SnapshotContentKey(got2) != SnapshotContentKey(child) {
		t.Fatal("decoded delta no longer reconstructs child")
	}
}

func TestDiffSnapshotNotDiffable(t *testing.T) {
	a := sampleSnapshot()
	b := sampleSnapshot()
	b.ConfigKey = "other-lineage"
	if DiffSnapshot(a, b) != nil {
		t.Fatal("cross-lineage snapshots diffed")
	}
	if DiffSnapshot(nil, a) != nil || DiffSnapshot(a, nil) != nil {
		t.Fatal("nil side diffed")
	}
}

func TestApplySnapshotDeltaRejectsMismatch(t *testing.T) {
	parent := sampleSnapshot()
	d := sampleDelta()

	wrongParent := sampleSnapshot()
	st := wrongParent.Procs["INIT"]
	st.SourceHash = "drifted"
	wrongParent.Procs["INIT"] = st
	if _, err := ApplySnapshotDelta(wrongParent, d); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong parent content: err = %v, want ErrCorrupt", err)
	}

	wrongCfg := *d
	wrongCfg.ConfigKey = "other"
	if _, err := ApplySnapshotDelta(parent, &wrongCfg); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("wrong config key: err = %v, want ErrCorrupt", err)
	}

	badRemove := *d
	badRemove.Removed = []string{"NO-SUCH-PROC"}
	if _, err := ApplySnapshotDelta(parent, &badRemove); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown removal: err = %v, want ErrCorrupt", err)
	}

	if _, err := ApplySnapshotDelta(nil, d); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("nil parent: err = %v, want ErrCorrupt", err)
	}
}

// editN returns a many-procedure snapshot with one procedure's source
// hash bumped to generation n — the minimal one-procedure edit against
// a program big enough that its delta is small relative to the full
// encoding.
func editN(n int) *Snapshot {
	s := sampleSnapshot()
	for i := 0; i < 24; i++ {
		name := "PROC" + string(rune('A'+i))
		s.Procs[name] = ProcStamp{
			SourceHash: "hash-" + name,
			Key:        KeyOf("proc", name),
			SharedKey:  KeyOf("proc-shared", name),
			Callees:    []string{"INIT"},
			JFHash:     "jf-" + name,
		}
	}
	st := s.Procs["SOLVE"]
	st.SourceHash = string(rune('a'+n)) + "-gen"
	s.Procs["SOLVE"] = st
	return s
}

func TestChainSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot-x.snap")

	// First save writes a full frame.
	st, err := SaveSnapshotChain(path, editN(0), DeltaPolicy{})
	if err != nil {
		t.Fatalf("first save: %v", err)
	}
	if !st.WroteFull || st.Frames != 1 {
		t.Fatalf("first save: stats %+v, want full rewrite with 1 frame", st)
	}

	// A one-procedure edit appends a delta much smaller than the full
	// encoding.
	st, err = SaveSnapshotChain(path, editN(1), DeltaPolicy{})
	if err != nil {
		t.Fatalf("delta save: %v", err)
	}
	if st.WroteFull || st.Frames != 2 || st.DeltaBytes == 0 {
		t.Fatalf("delta save: stats %+v, want appended delta frame", st)
	}
	if st.DeltaBytes >= st.FullBytes {
		t.Fatalf("delta (%d bytes) not smaller than full (%d bytes)", st.DeltaBytes, st.FullBytes)
	}

	// Loading folds the chain back into the latest snapshot.
	snap, frames, err := LoadSnapshotChain(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if frames != 2 {
		t.Fatalf("loaded %d frames, want 2", frames)
	}
	if SnapshotContentKey(snap) != SnapshotContentKey(editN(1)) {
		t.Fatal("folded chain does not equal the last saved snapshot")
	}

	// Saving the identical snapshot writes nothing.
	before, _ := os.ReadFile(path)
	st, err = SaveSnapshotChain(path, editN(1), DeltaPolicy{})
	if err != nil {
		t.Fatalf("no-op save: %v", err)
	}
	after, _ := os.ReadFile(path)
	if st.AppendedBytes != 0 || len(after) != len(before) {
		t.Fatalf("unchanged snapshot grew the chain: stats %+v, %d -> %d bytes", st, len(before), len(after))
	}
}

func TestChainMaxDeltasTripsRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot-x.snap")
	p := DeltaPolicy{MaxDeltas: 2, MaxRatio: 1.0}
	for i := 0; i <= 2; i++ {
		if _, err := SaveSnapshotChain(path, editN(i), p); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	// Frames now: full + 2 deltas. The next edit must rewrite.
	st, err := SaveSnapshotChain(path, editN(3), p)
	if err != nil {
		t.Fatalf("save past MaxDeltas: %v", err)
	}
	if !st.WroteFull || st.Frames != 1 {
		t.Fatalf("save past MaxDeltas: stats %+v, want full rewrite", st)
	}
	snap, _, err := LoadSnapshotChain(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if SnapshotContentKey(snap) != SnapshotContentKey(editN(3)) {
		t.Fatal("rewritten chain does not equal the last saved snapshot")
	}
}

func TestChainRatioTripsRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot-x.snap")
	if _, err := SaveSnapshotChain(path, editN(0), DeltaPolicy{}); err != nil {
		t.Fatalf("first save: %v", err)
	}
	// A tiny MaxRatio makes any delta oversized, forcing a rewrite.
	st, err := SaveSnapshotChain(path, editN(1), DeltaPolicy{MaxDeltas: 8, MaxRatio: 0.0001})
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	if !st.WroteFull {
		t.Fatalf("oversized delta appended anyway: stats %+v", st)
	}
}

func TestChainTornTailKeepsPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot-x.snap")
	if _, err := SaveSnapshotChain(path, editN(0), DeltaPolicy{}); err != nil {
		t.Fatalf("save: %v", err)
	}
	if _, err := SaveSnapshotChain(path, editN(1), DeltaPolicy{}); err != nil {
		t.Fatalf("save: %v", err)
	}

	// Tear the last delta frame mid-way, as a crash during appendFrame
	// would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	snap, frames, err := LoadSnapshotChain(path)
	if err != nil {
		t.Fatalf("load with torn tail: %v", err)
	}
	if frames != 1 {
		t.Fatalf("loaded %d frames, want the 1-frame prefix", frames)
	}
	if SnapshotContentKey(snap) != SnapshotContentKey(editN(0)) {
		t.Fatal("torn chain did not fold to the surviving prefix")
	}

	// The next save notices the chain state and still converges: it may
	// append against the prefix or rewrite, but the load must equal the
	// save.
	if _, err := SaveSnapshotChain(path, editN(2), DeltaPolicy{}); err != nil {
		t.Fatalf("save after tear: %v", err)
	}
	snap, _, err = LoadSnapshotChain(path)
	if err != nil {
		t.Fatalf("load after tear+save: %v", err)
	}
	if SnapshotContentKey(snap) != SnapshotContentKey(editN(2)) {
		t.Fatal("chain diverged after torn tail recovery")
	}
}

func TestChainCorruptHeadIsError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snapshot-x.snap")
	buf := []byte(chainMagic)
	buf = binary.BigEndian.AppendUint16(buf, chainVersion)
	buf = binary.BigEndian.AppendUint32(buf, 8)
	buf = append(buf, []byte("garbage!")...)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadSnapshotChain(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt head frame: err = %v, want ErrCorrupt", err)
	}
	// SaveSnapshotChain on an unreadable chain falls back to a full
	// rewrite rather than failing.
	st, err := SaveSnapshotChain(path, editN(0), DeltaPolicy{})
	if err != nil {
		t.Fatalf("save over corrupt chain: %v", err)
	}
	if !st.WroteFull {
		t.Fatalf("save over corrupt chain: stats %+v, want full rewrite", st)
	}
}

func TestLoadSnapshotFileLegacy(t *testing.T) {
	dir := t.TempDir()

	// Legacy form: a bare full encoding, as Snapshot.Save writes it.
	legacy := filepath.Join(dir, "snapshot-legacy.snap")
	if err := os.WriteFile(legacy, EncodeSnapshot(editN(0)), 0o644); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadSnapshotFile(legacy)
	if err != nil {
		t.Fatalf("legacy load: %v", err)
	}
	if SnapshotContentKey(snap) != SnapshotContentKey(editN(0)) {
		t.Fatal("legacy snapshot did not round-trip")
	}

	// Chain form through the same entry point.
	chain := filepath.Join(dir, "snapshot-chain.snap")
	if _, err := SaveSnapshotChain(chain, editN(1), DeltaPolicy{}); err != nil {
		t.Fatal(err)
	}
	snap, err = LoadSnapshotFile(chain)
	if err != nil {
		t.Fatalf("chain load: %v", err)
	}
	if SnapshotContentKey(snap) != SnapshotContentKey(editN(1)) {
		t.Fatal("chain snapshot did not round-trip")
	}
}
