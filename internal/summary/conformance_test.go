package summary

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// This file is the Store conformance suite: every implementation —
// unbounded memory, bounded memory, disk, tiered stacks, and the
// remote HTTP client — runs the same battery, so a new store (or a
// changed one) is held to the shared contract: round-trip fidelity,
// exact access counters, and safety under concurrent put/get
// (scripts/check.sh runs this under -race).

// storeVariants enumerates the implementations under test. The bounded
// variant's cap exceeds every key count the shared battery uses, so
// eviction never interferes here; eviction semantics get their own
// test below. Tiered variants register a Flush cleanup so background
// write-backs drain before the test's temp dirs vanish.
func storeVariants() map[string]func(t *testing.T) Store {
	return map[string]func(t *testing.T) Store{
		"memory":  func(t *testing.T) Store { return NewMemStore(0) },
		"bounded": func(t *testing.T) Store { return NewMemStore(4096) },
		"disk": func(t *testing.T) Store {
			s, err := NewDiskStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"tiered": func(t *testing.T) Store {
			s := NewTieredStore(NewMemStore(0), NewMemStore(0))
			t.Cleanup(s.Flush)
			return s
		},
		"tiered-disk": func(t *testing.T) Store {
			d, err := NewDiskStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			s := NewTieredStore(NewMemStore(0), d)
			t.Cleanup(s.Flush)
			return s
		},
		"remote": func(t *testing.T) Store {
			return NewRemoteStore(newFakeBlobServer(t).URL())
		},
		"tiered-remote": func(t *testing.T) Store {
			s := NewTieredStore(NewMemStore(0), NewRemoteStore(newFakeBlobServer(t).URL()))
			t.Cleanup(s.Flush)
			return s
		},
	}
}

func TestStoreConformance(t *testing.T) {
	for name, mk := range storeVariants() {
		t.Run(name, func(t *testing.T) {
			t.Run("RoundTrip", func(t *testing.T) { testStoreRoundTrip(t, mk(t)) })
			t.Run("Counters", func(t *testing.T) { testStoreCounters(t, mk(t)) })
			t.Run("Concurrent", func(t *testing.T) { testStoreConcurrent(t, mk(t)) })
		})
	}
}

// flush drains pending background work on stores that have any, so
// counter checks and temp-dir cleanup see a quiescent store.
func flush(s Store) {
	if f, ok := s.(interface{ Flush() }); ok {
		f.Flush()
	}
}

func testStoreRoundTrip(t *testing.T, s Store) {
	k := KeyOf("roundtrip")
	if _, ok := s.Get(k); ok {
		t.Fatal("fresh store returned a value")
	}
	if err := s.Put(k, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get(k); !ok || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("got %q, %v; want \"v1\", true", v, ok)
	}
	// Overwrite under the same key wins.
	if err := s.Put(k, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get(k); !ok || !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("after overwrite got %q, %v; want \"v2\", true", v, ok)
	}
	// An empty value is a value, not a miss.
	ke := KeyOf("empty")
	if err := s.Put(ke, nil); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get(ke); !ok || len(v) != 0 {
		t.Fatalf("empty value got %q, %v; want \"\", true", v, ok)
	}
}

func testStoreCounters(t *testing.T, s Store) {
	a, b := KeyOf("a"), KeyOf("b")
	if err := s.Put(a, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(b, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(a, []byte("z")); err != nil { // overwrite still counts
		t.Fatal(err)
	}
	s.Get(a)
	s.Get(b)
	s.Get(KeyOf("missing"))
	s.Get(KeyOf("missing too"))
	s.Get(KeyOf("still missing"))
	flush(s)
	want := StoreStats{Hits: 2, Misses: 3, Puts: 3, PutBytes: 3, Evictions: 0}
	if got := s.Stats(); got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
}

func testStoreConcurrent(t *testing.T, s Store) {
	const goroutines, keys = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine owns a key range: put them all, then read
			// them all back (guaranteed hits), plus one guaranteed miss.
			for i := 0; i < keys; i++ {
				k := KeyOf("concurrent", fmt.Sprint(g), fmt.Sprint(i))
				if err := s.Put(k, []byte{byte(g), byte(i)}); err != nil {
					t.Error(err)
				}
			}
			for i := 0; i < keys; i++ {
				k := KeyOf("concurrent", fmt.Sprint(g), fmt.Sprint(i))
				v, ok := s.Get(k)
				if !ok || !bytes.Equal(v, []byte{byte(g), byte(i)}) {
					t.Errorf("goroutine %d key %d: got %v, %v", g, i, v, ok)
				}
			}
			s.Get(KeyOf("never put", fmt.Sprint(g)))
		}(g)
	}
	wg.Wait()
	flush(s)
	want := StoreStats{
		Hits:     goroutines * keys,
		Misses:   goroutines,
		Puts:     goroutines * keys,
		PutBytes: goroutines * keys * 2,
	}
	if got := s.Stats(); got != want {
		t.Fatalf("stats after concurrent traffic = %+v, want %+v", got, want)
	}
}

// TestBoundedStoreEvictionOrder pins the bounded MemStore's LRU
// discipline: inserting past the cap evicts the least recently *used*
// entry — a read refreshes recency, and overwriting an existing key
// promotes it rather than inserting.
func TestBoundedStoreEvictionOrder(t *testing.T) {
	s := NewMemStore(3)
	k := func(i int) Key { return KeyOf("evict", fmt.Sprint(i)) }
	for i := 1; i <= 3; i++ { // recency (LRU→MRU): 1, 2, 3
		if err := s.Put(k(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(k(1), []byte("updated")); err != nil { // promotes: 2, 3, 1
		t.Fatal(err)
	}
	if st := s.Stats(); st.Evictions != 0 {
		t.Fatalf("overwrite evicted: %+v", st)
	}
	if _, ok := s.Get(k(2)); !ok { // promotes: 3, 1, 2
		t.Fatal("entry 2 missing before eviction")
	}

	if err := s.Put(k(4), []byte{4}); err != nil { // evicts k3, the LRU
		t.Fatal(err)
	}
	if _, ok := s.Get(k(3)); ok {
		t.Error("least recently used entry survived eviction")
	}
	if v, ok := s.Get(k(1)); !ok || string(v) != "updated" {
		t.Errorf("overwritten entry: got %q, %v; want \"updated\", true", v, ok)
	}
	for _, i := range []int{2, 4} { // recency now: 1, 2, 4
		if _, ok := s.Get(k(i)); !ok {
			t.Errorf("entry %d evicted out of order", i)
		}
	}

	if err := s.Put(k(5), []byte{5}); err != nil { // evicts k1 next
		t.Fatal(err)
	}
	if _, ok := s.Get(k(1)); ok {
		t.Error("second least recently used entry survived eviction")
	}
	if _, ok := s.Get(k(2)); !ok {
		t.Error("entry 2 evicted out of order")
	}
	if st := s.Stats(); st.Evictions != 2 || s.Len() != 3 {
		t.Fatalf("evictions = %d, len = %d; want 2, 3", st.Evictions, s.Len())
	}
}
