package summary

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// This file is the Store conformance suite: every implementation —
// unbounded memory, bounded memory, disk — runs the same battery, so a
// new store (or a changed one) is held to the shared contract:
// round-trip fidelity, exact access counters, and safety under
// concurrent put/get (scripts/check.sh runs this under -race).

// storeVariants enumerates the implementations under test. The bounded
// variant's cap exceeds every key count the shared battery uses, so
// eviction never interferes here; eviction semantics get their own
// test below.
func storeVariants() map[string]func(t *testing.T) Store {
	return map[string]func(t *testing.T) Store{
		"memory":  func(t *testing.T) Store { return NewMemStore(0) },
		"bounded": func(t *testing.T) Store { return NewMemStore(4096) },
		"disk": func(t *testing.T) Store {
			s, err := NewDiskStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
	}
}

func TestStoreConformance(t *testing.T) {
	for name, mk := range storeVariants() {
		t.Run(name, func(t *testing.T) {
			t.Run("RoundTrip", func(t *testing.T) { testStoreRoundTrip(t, mk(t)) })
			t.Run("Counters", func(t *testing.T) { testStoreCounters(t, mk(t)) })
			t.Run("Concurrent", func(t *testing.T) { testStoreConcurrent(t, mk(t)) })
		})
	}
}

func testStoreRoundTrip(t *testing.T, s Store) {
	k := KeyOf("roundtrip")
	if _, ok := s.Get(k); ok {
		t.Fatal("fresh store returned a value")
	}
	if err := s.Put(k, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get(k); !ok || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("got %q, %v; want \"v1\", true", v, ok)
	}
	// Overwrite under the same key wins.
	if err := s.Put(k, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get(k); !ok || !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("after overwrite got %q, %v; want \"v2\", true", v, ok)
	}
	// An empty value is a value, not a miss.
	ke := KeyOf("empty")
	if err := s.Put(ke, nil); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get(ke); !ok || len(v) != 0 {
		t.Fatalf("empty value got %q, %v; want \"\", true", v, ok)
	}
}

func testStoreCounters(t *testing.T, s Store) {
	a, b := KeyOf("a"), KeyOf("b")
	if err := s.Put(a, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(b, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(a, []byte("z")); err != nil { // overwrite still counts
		t.Fatal(err)
	}
	s.Get(a)
	s.Get(b)
	s.Get(KeyOf("missing"))
	s.Get(KeyOf("missing too"))
	s.Get(KeyOf("still missing"))
	want := StoreStats{Hits: 2, Misses: 3, Puts: 3, Evictions: 0}
	if got := s.Stats(); got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
}

func testStoreConcurrent(t *testing.T, s Store) {
	const goroutines, keys = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine owns a key range: put them all, then read
			// them all back (guaranteed hits), plus one guaranteed miss.
			for i := 0; i < keys; i++ {
				k := KeyOf("concurrent", fmt.Sprint(g), fmt.Sprint(i))
				if err := s.Put(k, []byte{byte(g), byte(i)}); err != nil {
					t.Error(err)
				}
			}
			for i := 0; i < keys; i++ {
				k := KeyOf("concurrent", fmt.Sprint(g), fmt.Sprint(i))
				v, ok := s.Get(k)
				if !ok || !bytes.Equal(v, []byte{byte(g), byte(i)}) {
					t.Errorf("goroutine %d key %d: got %v, %v", g, i, v, ok)
				}
			}
			s.Get(KeyOf("never put", fmt.Sprint(g)))
		}(g)
	}
	wg.Wait()
	want := StoreStats{
		Hits:   goroutines * keys,
		Misses: goroutines,
		Puts:   goroutines * keys,
	}
	if got := s.Stats(); got != want {
		t.Fatalf("stats after concurrent traffic = %+v, want %+v", got, want)
	}
}

// TestBoundedStoreEvictionOrder pins the bounded MemStore's FIFO
// discipline: inserting past the cap evicts the oldest *insertion*,
// and overwriting an existing key is not an insertion.
func TestBoundedStoreEvictionOrder(t *testing.T) {
	s := NewMemStore(3)
	k := func(i int) Key { return KeyOf("evict", fmt.Sprint(i)) }
	for i := 1; i <= 3; i++ {
		if err := s.Put(k(i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(k(2), []byte("updated")); err != nil { // overwrite: no eviction
		t.Fatal(err)
	}
	if st := s.Stats(); st.Evictions != 0 {
		t.Fatalf("overwrite evicted: %+v", st)
	}

	if err := s.Put(k(4), []byte{4}); err != nil { // evicts k1, the oldest
		t.Fatal(err)
	}
	if _, ok := s.Get(k(1)); ok {
		t.Error("oldest entry survived eviction")
	}
	for i := 2; i <= 4; i++ {
		if _, ok := s.Get(k(i)); !ok {
			t.Errorf("entry %d evicted out of order", i)
		}
	}

	if err := s.Put(k(5), []byte{5}); err != nil { // evicts k2 next
		t.Fatal(err)
	}
	if _, ok := s.Get(k(2)); ok {
		t.Error("second-oldest entry survived eviction")
	}
	if _, ok := s.Get(k(3)); !ok {
		t.Error("entry 3 evicted out of order")
	}
	if st := s.Stats(); st.Evictions != 2 || s.Len() != 3 {
		t.Fatalf("evictions = %d, len = %d; want 2, 3", st.Evictions, s.Len())
	}
}
