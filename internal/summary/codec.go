package summary

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// Binary format. Every stored value is
//
//	magic "IPCS" | version u16 | kind u8 | checksum u64 | payload
//
// with all fixed-width fields big-endian and the checksum an FNV-1a 64
// over the payload. Integers inside the payload are varints; strings
// and slices are length-prefixed. The format is strictly versioned: a
// reader rejects any version it does not know, and the version is also
// folded into every store key (internal/incr), so a codec change
// silently invalidates old entries instead of misreading them.
//
// Decoding is defensive — it must survive arbitrary bytes (the fuzz
// target feeds it some): every length is checked against the bytes
// actually remaining, expression nesting is depth-capped, and every
// failure is an error, never a panic.

// Version is the codec version; bump on any format change.
// Version 2 added the warm-start fields of ProcStamp (JFHash and the
// persisted VAL-cell vectors). Version 3 split the procedure record
// into a config-invariant shared blob and a flavor blob (kindShared /
// kindFlavor replacing the old kindProc) and added SharedKey to
// ProcStamp. Version 4 added delta-encoded snapshots (kindDelta): a
// per-procedure add/update/remove record against a parent snapshot
// identified by its content key.
const Version = 4

const magic = "IPCS"

// Value kinds.
const (
	kindShared   = 1
	kindSnapshot = 2
	kindFlavor   = 3
	kindDelta    = 4
)

const (
	headerSize   = 4 + 2 + 1 + 8
	maxExprDepth = 1 << 12
)

// ErrCorrupt is wrapped by every decode failure.
var ErrCorrupt = errors.New("summary: corrupt data")

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// ---------------------------------------------------------------------------
// Writer

type writer struct{ buf []byte }

func (w *writer) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) varint(v int64)   { w.buf = binary.AppendVarint(w.buf, v) }
func (w *writer) count(n int)      { w.uvarint(uint64(n)) }
func (w *writer) bytes(b []byte)   { w.count(len(b)); w.buf = append(w.buf, b...) }
func (w *writer) str(s string)     { w.count(len(s)); w.buf = append(w.buf, s...) }
func (w *writer) strs(ss []string) {
	w.count(len(ss))
	for _, s := range ss {
		w.str(s)
	}
}
func (w *writer) boolean(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}
func (w *writer) bools(bs []bool) {
	w.count(len(bs))
	for _, b := range bs {
		w.boolean(b)
	}
}
func (w *writer) ints(vs []int) {
	w.count(len(vs))
	for _, v := range vs {
		w.varint(int64(v))
	}
}
func (w *writer) uses(us []UseCount) {
	w.count(len(us))
	for _, u := range us {
		w.varint(int64(u.Subs))
		w.varint(int64(u.Control))
	}
}
func (w *writer) cells(cs []ValCell) {
	w.count(len(cs))
	for _, c := range cs {
		w.buf = append(w.buf, byte(c.Kind))
		switch c.Kind {
		case CellInt:
			w.varint(c.Int)
		case CellReal:
			var fb [8]byte
			binary.BigEndian.PutUint64(fb[:], math.Float64bits(c.Real))
			w.buf = append(w.buf, fb[:]...)
		case CellBool:
			w.boolean(c.Bool)
		}
	}
}

func (w *writer) expr(e Expr) {
	switch e := e.(type) {
	case nil:
		w.buf = append(w.buf, 0)
	case *Const:
		w.buf = append(w.buf, 1)
		w.varint(e.Val)
	case *Formal:
		w.buf = append(w.buf, 2)
		w.varint(int64(e.Index))
		w.str(e.Name)
	case *Global:
		w.buf = append(w.buf, 3)
		w.varint(int64(e.ID))
		w.str(e.Ref)
	case *Op:
		w.buf = append(w.buf, 4)
		w.str(e.Name)
		w.count(len(e.Args))
		for _, a := range e.Args {
			w.expr(a)
		}
	default:
		panic(fmt.Sprintf("summary: unencodable expression %T", e))
	}
}

func (w *writer) exprs(es []Expr) {
	w.count(len(es))
	for _, e := range es {
		w.expr(e)
	}
}

// seal prepends the header (magic, version, kind, payload checksum) to
// the accumulated payload.
func (w *writer) seal(kind byte) []byte {
	out := make([]byte, headerSize, headerSize+len(w.buf))
	copy(out, magic)
	binary.BigEndian.PutUint16(out[4:], Version)
	out[6] = kind
	h := fnv.New64a()
	h.Write(w.buf)
	binary.BigEndian.PutUint64(out[7:], h.Sum64())
	return append(out, w.buf...)
}

// ---------------------------------------------------------------------------
// Reader

type reader struct {
	data []byte
	pos  int
}

func (r *reader) remaining() int { return len(r.data) - r.pos }

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, corrupt("bad uvarint at offset %d", r.pos)
	}
	r.pos += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.data[r.pos:])
	if n <= 0 {
		return 0, corrupt("bad varint at offset %d", r.pos)
	}
	r.pos += n
	return v, nil
}

// count reads a length prefix, refusing any count larger than the bytes
// remaining (every element occupies at least one byte) — the guard that
// keeps hostile lengths from turning into giant allocations.
func (r *reader) count() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(r.remaining()) {
		return 0, corrupt("count %d exceeds %d remaining bytes", v, r.remaining())
	}
	return int(v), nil
}

func (r *reader) byteVal() (byte, error) {
	if r.remaining() < 1 {
		return 0, corrupt("unexpected end of data")
	}
	b := r.data[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) str() (string, error) {
	n, err := r.count()
	if err != nil {
		return "", err
	}
	s := string(r.data[r.pos : r.pos+n])
	r.pos += n
	return s, nil
}

func (r *reader) strs() ([]string, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]string, n)
	for i := range out {
		if out[i], err = r.str(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *reader) boolean() (bool, error) {
	b, err := r.byteVal()
	if err != nil {
		return false, err
	}
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, corrupt("bad bool byte %d", b)
}

func (r *reader) bools() ([]bool, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]bool, n)
	for i := range out {
		if out[i], err = r.boolean(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (r *reader) ints() ([]int, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]int, n)
	for i := range out {
		v, err := r.varint()
		if err != nil {
			return nil, err
		}
		out[i] = int(v)
	}
	return out, nil
}

func (r *reader) uses() ([]UseCount, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]UseCount, n)
	for i := range out {
		s, err := r.varint()
		if err != nil {
			return nil, err
		}
		c, err := r.varint()
		if err != nil {
			return nil, err
		}
		out[i] = UseCount{Subs: int(s), Control: int(c)}
	}
	return out, nil
}

func (r *reader) cells() ([]ValCell, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > r.remaining() {
		return nil, corrupt("cell count %d exceeds %d remaining bytes", n, r.remaining())
	}
	out := make([]ValCell, n)
	for i := range out {
		tag, err := r.byteVal()
		if err != nil {
			return nil, err
		}
		if tag > byte(CellBool) {
			return nil, corrupt("cell kind %d", tag)
		}
		out[i].Kind = CellKind(tag)
		switch out[i].Kind {
		case CellInt:
			if out[i].Int, err = r.varint(); err != nil {
				return nil, err
			}
		case CellReal:
			if r.remaining() < 8 {
				return nil, corrupt("truncated real cell")
			}
			out[i].Real = math.Float64frombits(binary.BigEndian.Uint64(r.data[r.pos:]))
			r.pos += 8
		case CellBool:
			if out[i].Bool, err = r.boolean(); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func (r *reader) expr(depth int) (Expr, error) {
	if depth > maxExprDepth {
		return nil, corrupt("expression nesting exceeds %d", maxExprDepth)
	}
	tag, err := r.byteVal()
	if err != nil {
		return nil, err
	}
	switch tag {
	case 0:
		return nil, nil
	case 1:
		v, err := r.varint()
		if err != nil {
			return nil, err
		}
		return &Const{Val: v}, nil
	case 2:
		idx, err := r.varint()
		if err != nil {
			return nil, err
		}
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		return &Formal{Index: int(idx), Name: name}, nil
	case 3:
		id, err := r.varint()
		if err != nil {
			return nil, err
		}
		ref, err := r.str()
		if err != nil {
			return nil, err
		}
		return &Global{ID: int(id), Ref: ref}, nil
	case 4:
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		n, err := r.count()
		if err != nil {
			return nil, err
		}
		op := &Op{Name: name, Args: make([]Expr, n)}
		for i := range op.Args {
			a, err := r.expr(depth + 1)
			if err != nil {
				return nil, err
			}
			if a == nil {
				return nil, corrupt("⊥ argument inside operator %q", name)
			}
			op.Args[i] = a
		}
		return op, nil
	}
	return nil, corrupt("bad expression tag %d", tag)
}

func (r *reader) exprs() ([]Expr, error) {
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]Expr, n)
	for i := range out {
		if out[i], err = r.expr(0); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// open validates the header against the expected kind and returns a
// reader positioned at the payload.
func open(data []byte, kind byte) (*reader, error) {
	if len(data) < headerSize {
		return nil, corrupt("short header (%d bytes)", len(data))
	}
	if string(data[:4]) != magic {
		return nil, corrupt("bad magic %q", data[:4])
	}
	if v := binary.BigEndian.Uint16(data[4:]); v != Version {
		return nil, corrupt("version %d, want %d", v, Version)
	}
	if data[6] != kind {
		return nil, corrupt("kind %d, want %d", data[6], kind)
	}
	payload := data[headerSize:]
	h := fnv.New64a()
	h.Write(payload)
	if sum := binary.BigEndian.Uint64(data[7:]); sum != h.Sum64() {
		return nil, corrupt("checksum mismatch")
	}
	return &reader{data: payload}, nil
}

// ---------------------------------------------------------------------------
// Procedure summaries

// EncodeShared serializes the config-invariant half of one procedure's
// record.
func EncodeShared(s *SharedSummary) []byte {
	w := &writer{}
	w.str(s.Name)
	w.str(s.SourceHash)
	w.strs(s.Callees)
	w.boolean(s.Returns != nil)
	if s.Returns != nil {
		w.expr(s.Returns.Result)
		w.exprs(s.Returns.Formal)
		w.count(len(s.Returns.Globals))
		for _, ge := range s.Returns.Globals {
			w.varint(int64(ge.ID))
			w.str(ge.Ref)
			w.expr(ge.E)
		}
	}
	w.bools(s.ModFormals)
	w.bools(s.RefFormals)
	w.ints(s.ModGlobals)
	w.ints(s.RefGlobals)
	w.uses(s.FormalUses)
	w.uses(s.GlobalUses)
	w.varint(int64(s.SSAPhis))
	return w.seal(kindShared)
}

// DecodeShared is the inverse of EncodeShared. It never panics:
// corrupted input yields an error wrapping ErrCorrupt.
func DecodeShared(data []byte) (*SharedSummary, error) {
	r, err := open(data, kindShared)
	if err != nil {
		return nil, err
	}
	s := &SharedSummary{}
	if s.Name, err = r.str(); err != nil {
		return nil, err
	}
	if s.SourceHash, err = r.str(); err != nil {
		return nil, err
	}
	if s.Callees, err = r.strs(); err != nil {
		return nil, err
	}
	hasReturns, err := r.boolean()
	if err != nil {
		return nil, err
	}
	if hasReturns {
		ret := &ReturnSummary{}
		if ret.Result, err = r.expr(0); err != nil {
			return nil, err
		}
		if ret.Formal, err = r.exprs(); err != nil {
			return nil, err
		}
		n, err := r.count()
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			var ge GlobalExpr
			id, err := r.varint()
			if err != nil {
				return nil, err
			}
			ge.ID = int(id)
			if ge.Ref, err = r.str(); err != nil {
				return nil, err
			}
			if ge.E, err = r.expr(0); err != nil {
				return nil, err
			}
			ret.Globals = append(ret.Globals, ge)
		}
		s.Returns = ret
	}
	if s.ModFormals, err = r.bools(); err != nil {
		return nil, err
	}
	if s.RefFormals, err = r.bools(); err != nil {
		return nil, err
	}
	if s.ModGlobals, err = r.ints(); err != nil {
		return nil, err
	}
	if s.RefGlobals, err = r.ints(); err != nil {
		return nil, err
	}
	if s.FormalUses, err = r.uses(); err != nil {
		return nil, err
	}
	if s.GlobalUses, err = r.uses(); err != nil {
		return nil, err
	}
	phis, err := r.varint()
	if err != nil {
		return nil, err
	}
	s.SSAPhis = int(phis)
	if r.remaining() != 0 {
		return nil, corrupt("%d trailing bytes", r.remaining())
	}
	return s, nil
}

// EncodeFlavor serializes the flavor-dependent half of one procedure's
// record.
func EncodeFlavor(s *FlavorSummary) []byte {
	w := &writer{}
	w.str(s.Name)
	w.str(s.SourceHash)
	w.count(len(s.Sites))
	for _, site := range s.Sites {
		w.str(site.Callee)
		w.exprs(site.Formal)
		w.exprs(site.Global)
	}
	return w.seal(kindFlavor)
}

// DecodeFlavor is the inverse of EncodeFlavor; corrupted input yields
// an error wrapping ErrCorrupt, never a panic.
func DecodeFlavor(data []byte) (*FlavorSummary, error) {
	r, err := open(data, kindFlavor)
	if err != nil {
		return nil, err
	}
	s := &FlavorSummary{}
	if s.Name, err = r.str(); err != nil {
		return nil, err
	}
	if s.SourceHash, err = r.str(); err != nil {
		return nil, err
	}
	nsites, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < nsites; i++ {
		site := &SiteSummary{}
		if site.Callee, err = r.str(); err != nil {
			return nil, err
		}
		if site.Formal, err = r.exprs(); err != nil {
			return nil, err
		}
		if site.Global, err = r.exprs(); err != nil {
			return nil, err
		}
		s.Sites = append(s.Sites, site)
	}
	if r.remaining() != 0 {
		return nil, corrupt("%d trailing bytes", r.remaining())
	}
	return s, nil
}

// ---------------------------------------------------------------------------
// Snapshots

// stamp writes one procedure's ProcStamp — the per-procedure body
// shared by full snapshots and snapshot deltas.
func (w *writer) stamp(st ProcStamp) {
	w.str(st.SourceHash)
	w.bytes(st.Key[:])
	w.bytes(st.SharedKey[:])
	w.strs(st.Callees)
	w.str(st.JFHash)
	w.boolean(st.Cells != nil)
	if st.Cells != nil {
		w.cells(st.Cells.Formals)
		w.cells(st.Cells.Globals)
	}
}

// stamp is the inverse of writer.stamp.
func (r *reader) stamp() (ProcStamp, error) {
	var st ProcStamp
	var err error
	if st.SourceHash, err = r.str(); err != nil {
		return st, err
	}
	klen, err := r.count()
	if err != nil {
		return st, err
	}
	if klen != len(st.Key) {
		return st, corrupt("key length %d, want %d", klen, len(st.Key))
	}
	copy(st.Key[:], r.data[r.pos:])
	r.pos += klen
	sklen, err := r.count()
	if err != nil {
		return st, err
	}
	if sklen != len(st.SharedKey) {
		return st, corrupt("shared-key length %d, want %d", sklen, len(st.SharedKey))
	}
	copy(st.SharedKey[:], r.data[r.pos:])
	r.pos += sklen
	if st.Callees, err = r.strs(); err != nil {
		return st, err
	}
	if st.JFHash, err = r.str(); err != nil {
		return st, err
	}
	hasCells, err := r.boolean()
	if err != nil {
		return st, err
	}
	if hasCells {
		st.Cells = &ValCells{}
		if st.Cells.Formals, err = r.cells(); err != nil {
			return st, err
		}
		if st.Cells.Globals, err = r.cells(); err != nil {
			return st, err
		}
	}
	return st, nil
}

// EncodeSnapshot serializes a snapshot, procedures sorted by name so
// equal snapshots encode to equal bytes — content keys and delta
// diffing both rely on the encoding being canonical.
func EncodeSnapshot(s *Snapshot) []byte {
	w := &writer{}
	w.str(s.ConfigKey)
	w.str(s.GlobalsHash)
	names := make([]string, 0, len(s.Procs))
	for name := range s.Procs {
		names = append(names, name)
	}
	sort.Strings(names)
	w.count(len(names))
	for _, name := range names {
		w.str(name)
		w.stamp(s.Procs[name])
	}
	return w.seal(kindSnapshot)
}

// DecodeSnapshot is the inverse of EncodeSnapshot; corrupted input
// yields an error wrapping ErrCorrupt, never a panic.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	r, err := open(data, kindSnapshot)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{Procs: make(map[string]ProcStamp)}
	if s.ConfigKey, err = r.str(); err != nil {
		return nil, err
	}
	if s.GlobalsHash, err = r.str(); err != nil {
		return nil, err
	}
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		st, err := r.stamp()
		if err != nil {
			return nil, err
		}
		if _, dup := s.Procs[name]; dup {
			return nil, corrupt("duplicate procedure %q", name)
		}
		s.Procs[name] = st
	}
	if r.remaining() != 0 {
		return nil, corrupt("%d trailing bytes", r.remaining())
	}
	return s, nil
}

// EncodeSnapshotDelta serializes a snapshot delta, updated procedures
// and removals sorted by name so equal deltas encode to equal bytes.
func EncodeSnapshotDelta(d *SnapshotDelta) []byte {
	w := &writer{}
	w.str(d.ConfigKey)
	w.str(d.GlobalsHash)
	w.bytes(d.Parent[:])
	names := make([]string, 0, len(d.Updated))
	for name := range d.Updated {
		names = append(names, name)
	}
	sort.Strings(names)
	w.count(len(names))
	for _, name := range names {
		w.str(name)
		w.stamp(d.Updated[name])
	}
	removed := append([]string(nil), d.Removed...)
	sort.Strings(removed)
	w.strs(removed)
	return w.seal(kindDelta)
}

// DecodeSnapshotDelta is the inverse of EncodeSnapshotDelta; corrupted
// input yields an error wrapping ErrCorrupt, never a panic.
func DecodeSnapshotDelta(data []byte) (*SnapshotDelta, error) {
	r, err := open(data, kindDelta)
	if err != nil {
		return nil, err
	}
	d := &SnapshotDelta{Updated: make(map[string]ProcStamp)}
	if d.ConfigKey, err = r.str(); err != nil {
		return nil, err
	}
	if d.GlobalsHash, err = r.str(); err != nil {
		return nil, err
	}
	plen, err := r.count()
	if err != nil {
		return nil, err
	}
	if plen != len(d.Parent) {
		return nil, corrupt("parent key length %d, want %d", plen, len(d.Parent))
	}
	copy(d.Parent[:], r.data[r.pos:])
	r.pos += plen
	n, err := r.count()
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		st, err := r.stamp()
		if err != nil {
			return nil, err
		}
		if _, dup := d.Updated[name]; dup {
			return nil, corrupt("duplicate updated procedure %q", name)
		}
		d.Updated[name] = st
	}
	if d.Removed, err = r.strs(); err != nil {
		return nil, err
	}
	if r.remaining() != 0 {
		return nil, corrupt("%d trailing bytes", r.remaining())
	}
	return d, nil
}
