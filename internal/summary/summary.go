// Package summary is the analyzer's persistent program database, after
// the one Grove & Torczon's analyzer lived in inside ParaScope: a
// versioned codec and a content-addressed store for per-procedure
// interprocedural summaries. A procedure's record captures everything
// stage 1 and stage 2 of the propagation compute for it — its return
// jump functions, the forward jump functions of every call site in its
// body, its MOD/REF sets, and its outgoing call edges — split into a
// config-invariant SharedSummary and a flavor-dependent FlavorSummary,
// in a portable form with no pointers into any particular IR instance,
// so a summary written by one run can be bound into the freshly
// lowered program of a later run (internal/incr does the binding and
// decides validity).
package summary

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"

	"ipcp/internal/ir"
	"ipcp/internal/sym"
)

// Key addresses one stored value: a SHA-256 over everything the value
// depends on (internal/incr computes cone keys; see its documentation
// for the scheme).
type Key [sha256.Size]byte

// KeyOf hashes a list of byte strings into a Key. Each part is
// length-prefixed so the framing is unambiguous.
func KeyOf(parts ...string) Key {
	h := sha256.New()
	var frame [20]byte
	for _, p := range parts {
		b := strconv.AppendInt(frame[:0], int64(len(p)), 10)
		b = append(b, ':')
		h.Write(b)
		h.Write([]byte(p))
	}
	var k Key
	h.Sum(k[:0])
	return k
}

func (k Key) String() string { return hex.EncodeToString(k[:]) }

// ---------------------------------------------------------------------------
// Portable expressions

// Expr is a jump-function expression with every IR pointer replaced by
// a stable coordinate: formals by index, globals by dense ID (guarded
// by the program's globals-schema hash), operators by name. A nil Expr
// is ⊥, exactly like a nil sym.Expr. Stored expressions are always
// closed — the propagation only keeps closed jump functions — so there
// is no Unknown variant.
type Expr interface{ isExpr() }

// Const is an integer constant leaf.
type Const struct{ Val int64 }

// Formal is the entry value of the enclosing procedure's Index-th
// formal parameter.
type Formal struct {
	Index int
	Name  string
}

// Global is the entry value of the global with the given dense ID; Ref
// is its "BLOCK.NAME" spelling, cross-checked when binding.
type Global struct {
	ID  int
	Ref string
}

// Op applies a named operator to argument expressions.
type Op struct {
	Name string
	Args []Expr
}

func (*Const) isExpr()  {}
func (*Formal) isExpr() {}
func (*Global) isExpr() {}
func (*Op) isExpr()     {}

// opByName maps operator spellings back to IR operators — exactly the
// arithmetic set sym.MakeOp accepts.
var opByName = map[string]ir.Op{}

func init() {
	for _, op := range []ir.Op{
		ir.OpNeg, ir.OpAbs, ir.OpAdd, ir.OpSub, ir.OpMul,
		ir.OpDiv, ir.OpPow, ir.OpMod, ir.OpMin, ir.OpMax,
	} {
		opByName[op.String()] = op
	}
}

// FromSym converts a symbolic jump function to portable form. It
// returns an error on any leaf that has no portable coordinate (an
// Unknown, or an operator outside the arithmetic set) — callers treat
// that summary as unstorable and simply skip caching it.
func FromSym(e sym.Expr) (Expr, error) {
	switch e := e.(type) {
	case nil:
		return nil, nil
	case *sym.Const:
		return &Const{Val: e.Val}, nil
	case *sym.Formal:
		return &Formal{Index: e.Index, Name: e.Name}, nil
	case *sym.GlobalEntry:
		return &Global{ID: e.G.ID, Ref: e.G.String()}, nil
	case *sym.Op:
		name := e.Op.String()
		if _, ok := opByName[name]; !ok {
			return nil, fmt.Errorf("summary: operator %q is not portable", name)
		}
		out := &Op{Name: name, Args: make([]Expr, len(e.Args))}
		for i, a := range e.Args {
			pa, err := FromSym(a)
			if err != nil {
				return nil, err
			}
			if pa == nil {
				return nil, fmt.Errorf("summary: ⊥ argument inside %q", name)
			}
			out.Args[i] = pa
		}
		return out, nil
	}
	return nil, fmt.Errorf("summary: expression %v is not portable", e)
}

// ToSym binds a portable expression into a program: formals become
// sym.Formal leaves (validated against nformals, the arity of the
// procedure whose entry values the expression ranges over), globals
// resolve by ID against prog.Globals with the Ref spelling
// cross-checked, and operators rebuild through sym.MakeOp — which is
// idempotent on the normalized trees the propagation stores, so the
// bound expression is structurally identical to the one encoded.
func ToSym(e Expr, prog *ir.Program, nformals int) (sym.Expr, error) {
	switch e := e.(type) {
	case nil:
		return nil, nil
	case *Const:
		return sym.NewConst(e.Val), nil
	case *Formal:
		if e.Index < 0 || e.Index >= nformals {
			return nil, fmt.Errorf("summary: formal index %d out of range [0,%d)", e.Index, nformals)
		}
		return &sym.Formal{Index: e.Index, Name: e.Name}, nil
	case *Global:
		if e.ID < 0 || e.ID >= len(prog.Globals) {
			return nil, fmt.Errorf("summary: global id %d out of range", e.ID)
		}
		g := prog.Globals[e.ID]
		if g.String() != e.Ref {
			return nil, fmt.Errorf("summary: global id %d is %s, summary says %s", e.ID, g, e.Ref)
		}
		return &sym.GlobalEntry{G: g}, nil
	case *Op:
		op, ok := opByName[e.Name]
		if !ok {
			return nil, fmt.Errorf("summary: unknown operator %q", e.Name)
		}
		args := make([]sym.Expr, len(e.Args))
		for i, a := range e.Args {
			sa, err := ToSym(a, prog, nformals)
			if err != nil {
				return nil, err
			}
			if sa == nil {
				return nil, fmt.Errorf("summary: ⊥ argument inside %q", e.Name)
			}
			args[i] = sa
		}
		out := sym.MakeOp(op, args...)
		if out == nil {
			return nil, fmt.Errorf("summary: %q failed to rebuild", e.Name)
		}
		return out, nil
	}
	return nil, fmt.Errorf("summary: unknown expression variant %T", e)
}

// ---------------------------------------------------------------------------
// Procedure summaries

// GlobalExpr pairs a global coordinate with an expression (return jump
// functions for globals; the map form of jump.Returns, flattened and
// sorted by ID for determinism).
type GlobalExpr struct {
	ID  int
	Ref string
	E   Expr
}

// ReturnSummary is the portable form of jump.Returns: the return jump
// functions of one procedure, over its own entry values.
type ReturnSummary struct {
	// Result is the function-result jump function (functions only).
	Result Expr

	// Formal[i] is the return jump function of the i-th formal.
	Formal []Expr

	// Globals holds the return jump functions of globals, sorted by ID.
	Globals []GlobalExpr
}

// SiteSummary is the portable form of jump.Site: the forward jump
// functions of one call site in the summarized procedure's body, over
// the *caller's* entry values. Sites are stored in the callgraph's
// deterministic body order, so the i-th SiteSummary binds to the i-th
// callgraph site on reuse.
type SiteSummary struct {
	// Callee is the called procedure's name, cross-checked on binding.
	Callee string

	// Formal[i] is the jump function of the callee's i-th formal
	// (nil = ⊥; array formals stay nil).
	Formal []Expr

	// Global[k] is the jump function of the program's k-th scalar
	// global.
	Global []Expr
}

// A procedure's stored record is split into two blobs along the
// paper's stage boundary, because the two halves depend on different
// configuration bits. SharedSummary holds the stage-1 outputs — return
// jump functions, MOD/REF sets, call edges, use vectors — which are
// identical under every forward jump-function flavor: the flavor knob
// (Config.Jump) is only ever consulted by stage 2's jump.Filter, after
// everything in this record has been derived. FlavorSummary holds the
// stage-2 outputs — the forward jump functions of each call site —
// which the flavor directly shapes. Keying the two blobs separately
// (internal/incr computes a flavor-free cone key for the first and a
// full one for the second) lets a polynomial run reuse the stage-1
// entries a pass-through run wrote.

// SharedSummary is the config-invariant half of one procedure's
// record: everything stage 1 computes, plus the substitution-use
// vectors and SSA phi count that let a reusing run count without
// re-deriving. It depends on the return-JF and MOD toggles but not on
// the forward jump-function flavor.
type SharedSummary struct {
	// Name is the procedure name; SourceHash the normalized-source
	// fingerprint of the unit the summary was computed from.
	Name       string
	SourceHash string

	// Callees lists the distinct procedures this one calls, sorted.
	Callees []string

	// Returns holds the return jump functions, nil when none were built
	// (recursive procedures, or a configuration without return JFs).
	Returns *ReturnSummary

	// ModFormals/RefFormals flag the formals the procedure (transitively)
	// may modify / reference; ModGlobals/RefGlobals list the IDs of such
	// globals, sorted. Binding cross-checks these against a freshly
	// computed MOD/REF summary, so a stale summary can never smuggle in
	// wrong side-effect information.
	ModFormals []bool
	RefFormals []bool
	ModGlobals []int
	RefGlobals []int

	// FormalUses[i] / GlobalUses[k] count the textual references the
	// i-th formal's / k-th scalar global's constant entry value would
	// substitute (GlobalUses is parallel to the program's scalar-global
	// list, guarded by the globals-schema hash). With these cached, a
	// run that reuses the summary counts substitutions without ever
	// converting the procedure to SSA form.
	FormalUses []UseCount
	GlobalUses []UseCount

	// SSAPhis is the number of phi instructions the procedure's SSA
	// conversion inserts; a run that skips the conversion replays it so
	// IR-size traces stay identical to a from-scratch run.
	SSAPhis int
}

// FlavorSummary is the flavor-dependent half: the stage-2 forward jump
// functions of every call site in the procedure's body. It is stored
// under a key that folds in the full configuration (flavor included),
// so each flavor keeps its own copy while all of them share one
// SharedSummary.
type FlavorSummary struct {
	// Name and SourceHash mirror the shared record; binding
	// cross-checks both halves against the same fresh program.
	Name       string
	SourceHash string

	// Sites holds one entry per call site in body order.
	Sites []*SiteSummary
}

// UseCount is one variable's substitutable-reference tally: Subs total
// references, Control of them in control-flow roles (loop bounds,
// strides, branch conditions).
type UseCount struct {
	Subs    int
	Control int
}

// SortGlobalExprs orders a GlobalExpr slice by ID (encoding requires
// deterministic order).
func SortGlobalExprs(gs []GlobalExpr) {
	sort.Slice(gs, func(i, j int) bool { return gs[i].ID < gs[j].ID })
}

// ---------------------------------------------------------------------------
// Snapshots

// CellKind discriminates a persisted VAL lattice cell.
type CellKind uint8

const (
	CellTop    CellKind = 0
	CellBottom CellKind = 1
	CellInt    CellKind = 2
	CellReal   CellKind = 3
	CellBool   CellKind = 4
)

// ValCell is one persisted stage-3 lattice cell: ⊤, ⊥, or a constant
// of one of the source language's scalar types (Int/Real/Bool carry
// the value in the matching field).
type ValCell struct {
	Kind CellKind
	Int  int64
	Real float64
	Bool bool
}

// ValCells is one procedure's final VAL assignment from stage 3:
// Formals is parallel to the procedure's formal list, Globals to the
// program's scalar-global list (both guarded by SourceHash and the
// snapshot's GlobalsHash respectively). It is the warm-start seed the
// next incremental run restarts the worklist from.
type ValCells struct {
	Formals []ValCell
	Globals []ValCell
}

// ProcStamp is what a snapshot remembers about one procedure: enough to
// decide reuse (SourceHash), locate the stored summary blobs (Key for
// the flavor record, SharedKey for the config-invariant one), document
// the dependence edges the keys covered (Callees), and warm-start the
// next run's stage-3 solve (JFHash, Cells).
type ProcStamp struct {
	SourceHash string
	Key        Key // flavor-record key (full configuration)
	SharedKey  Key // shared-record key (flavor-free configuration)
	Callees    []string

	// JFHash fingerprints the forward jump functions of the procedure's
	// call sites (canonical expression spellings in body order, computed
	// by internal/core); the next run re-solves the procedure's cone
	// when the fingerprint moved. Empty when the run recorded none.
	JFHash string

	// Cells is the procedure's final VAL assignment, nil when the run
	// did not (or could not) persist one.
	Cells *ValCells
}

// Snapshot is the per-run index of the program database: which
// configuration and globals schema it was taken under, and the stamp of
// every procedure. A snapshot plus the store it indexes is sufficient
// to re-analyze an edited program incrementally.
type Snapshot struct {
	// ConfigKey fingerprints the analysis configuration bits summaries
	// depend on (jump-function flavor, return JFs, MOD) plus the codec
	// version; GlobalsHash fingerprints the COMMON-block layout.
	ConfigKey   string
	GlobalsHash string

	// Procs maps procedure names to their stamps.
	Procs map[string]ProcStamp
}
