package summary

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Store is a content-addressed blob store: encoded summaries keyed by
// the Key that fingerprints everything they depend on. Because a key
// change *is* the invalidation (a stale entry is simply never asked
// for again), a Store needs no delete operation — only bounded stores
// evict. Implementations are safe for concurrent use.
type Store interface {
	// Get returns the value stored under k.
	Get(k Key) ([]byte, bool)

	// Put stores v under k, overwriting any previous value. Failures
	// (a full disk) are reported but non-fatal: the store is a cache,
	// and a missed Put only costs a future recomputation.
	Put(k Key, v []byte) error

	// Stats returns the access counters accumulated so far.
	Stats() StoreStats
}

// StoreStats counts store traffic.
type StoreStats struct {
	Hits      int64 // Gets that found a value
	Misses    int64 // Gets that found nothing
	Puts      int64 // successful Puts
	Evictions int64 // entries dropped by a bounded MemStore
}

// counters is the shared atomic tally behind both stores.
type counters struct {
	hits, misses, puts, evictions atomic.Int64
}

func (c *counters) stats() StoreStats {
	return StoreStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Puts:      c.puts.Load(),
		Evictions: c.evictions.Load(),
	}
}

// ---------------------------------------------------------------------------
// In-memory store

// MemStore is an in-memory Store, optionally bounded: when maxEntries
// is positive, inserting past the bound evicts the oldest entries in
// insertion order (the incremental engine re-keys on every change, so
// old keys go cold and FIFO approximates LRU well enough for a cache
// whose misses are merely recomputations).
type MemStore struct {
	mu         sync.Mutex
	maxEntries int
	vals       map[Key][]byte
	order      []Key // insertion order, for bounded eviction
	counters
}

// NewMemStore returns an in-memory store holding at most maxEntries
// values (0 = unbounded).
func NewMemStore(maxEntries int) *MemStore {
	return &MemStore{maxEntries: maxEntries, vals: make(map[Key][]byte)}
}

// Get implements Store.
func (s *MemStore) Get(k Key) ([]byte, bool) {
	s.mu.Lock()
	v, ok := s.vals[k]
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return v, ok
}

// Put implements Store.
func (s *MemStore) Put(k Key, v []byte) error {
	s.mu.Lock()
	if _, exists := s.vals[k]; !exists {
		s.order = append(s.order, k)
		if s.maxEntries > 0 {
			for len(s.order) > s.maxEntries {
				victim := s.order[0]
				s.order = s.order[1:]
				delete(s.vals, victim)
				s.evictions.Add(1)
			}
		}
	}
	s.vals[k] = v
	s.mu.Unlock()
	s.puts.Add(1)
	return nil
}

// Stats implements Store.
func (s *MemStore) Stats() StoreStats { return s.stats() }

// Len returns the number of stored entries.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.vals)
}

// ---------------------------------------------------------------------------
// Disk store

// DiskStore persists values as one file per key under a directory
// (cmd/ipcp -cache-dir), so summaries survive across processes. Writes
// go through a temp file and a rename, keeping concurrent readers from
// ever seeing a torn value.
type DiskStore struct {
	dir string
	counters
}

// NewDiskStore opens (creating if needed) a disk store rooted at dir.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("summary: cache dir: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

func (s *DiskStore) path(k Key) string {
	return filepath.Join(s.dir, k.String()+".ipcs")
}

// Get implements Store.
func (s *DiskStore) Get(k Key) ([]byte, bool) {
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return data, true
}

// Put implements Store.
func (s *DiskStore) Put(k Key, v []byte) error {
	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(v); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, s.path(k)); err != nil {
		os.Remove(name)
		return err
	}
	s.puts.Add(1)
	return nil
}

// Stats implements Store.
func (s *DiskStore) Stats() StoreStats { return s.stats() }
