package summary

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Store is a content-addressed blob store: encoded summaries keyed by
// the Key that fingerprints everything they depend on. Because a key
// change *is* the invalidation (a stale entry is simply never asked
// for again), a Store needs no delete operation — only bounded stores
// evict. Implementations are safe for concurrent use.
type Store interface {
	// Get returns the value stored under k.
	Get(k Key) ([]byte, bool)

	// Put stores v under k, overwriting any previous value. Failures
	// (a full disk) are reported but non-fatal: the store is a cache,
	// and a missed Put only costs a future recomputation.
	Put(k Key, v []byte) error

	// Stats returns the access counters accumulated so far.
	Stats() StoreStats
}

// StoreStats counts store traffic.
type StoreStats struct {
	Hits      int64 // Gets that found a value
	Misses    int64 // Gets that found nothing stored
	Puts      int64 // successful Puts
	PutBytes  int64 // bytes written by successful Puts
	Evictions int64 // entries dropped by a bounded MemStore
	Errors    int64 // I/O or protocol failures (distinct from misses)
}

// counters is the shared atomic tally behind the stores.
type counters struct {
	hits, misses, puts, putBytes, evictions, errors atomic.Int64
}

func (c *counters) stats() StoreStats {
	return StoreStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Puts:      c.puts.Load(),
		PutBytes:  c.putBytes.Load(),
		Evictions: c.evictions.Load(),
		Errors:    c.errors.Load(),
	}
}

// ---------------------------------------------------------------------------
// In-memory store

// MemStore is an in-memory Store, optionally bounded: when maxEntries
// is positive, inserting past the bound evicts the least recently used
// entry — Get and an overwriting Put both count as use, so the hot
// working set survives a sweep of cold lookups.
type MemStore struct {
	mu         sync.Mutex
	maxEntries int
	elems      map[Key]*list.Element
	lru        *list.List // front = least recently used
	counters
}

// memEntry is one resident key/value pair, owned by its list element.
type memEntry struct {
	key Key
	val []byte
}

// NewMemStore returns an in-memory store holding at most maxEntries
// values (0 = unbounded).
func NewMemStore(maxEntries int) *MemStore {
	return &MemStore{maxEntries: maxEntries, elems: make(map[Key]*list.Element), lru: list.New()}
}

// Get implements Store. A hit promotes the entry to most recently
// used.
func (s *MemStore) Get(k Key) ([]byte, bool) {
	s.mu.Lock()
	el, ok := s.elems[k]
	var v []byte
	if ok {
		s.lru.MoveToBack(el)
		v = el.Value.(*memEntry).val
	}
	s.mu.Unlock()
	if ok {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return v, ok
}

// Put implements Store. Overwriting an existing key promotes it; only
// a genuinely new key can push the store past its bound and evict the
// least recently used entry.
func (s *MemStore) Put(k Key, v []byte) error {
	s.mu.Lock()
	if el, exists := s.elems[k]; exists {
		el.Value.(*memEntry).val = v
		s.lru.MoveToBack(el)
	} else {
		s.elems[k] = s.lru.PushBack(&memEntry{key: k, val: v})
		if s.maxEntries > 0 {
			for s.lru.Len() > s.maxEntries {
				victim := s.lru.Remove(s.lru.Front()).(*memEntry)
				delete(s.elems, victim.key)
				s.evictions.Add(1)
			}
		}
	}
	s.mu.Unlock()
	s.puts.Add(1)
	s.putBytes.Add(int64(len(v)))
	return nil
}

// Stats implements Store.
func (s *MemStore) Stats() StoreStats { return s.stats() }

// Len returns the number of stored entries.
func (s *MemStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.elems)
}

// ---------------------------------------------------------------------------
// Disk store

// DiskStore persists values as one file per key under a directory
// (cmd/ipcp -cache-dir), so summaries survive across processes. Writes
// go through a temp file and a rename, keeping concurrent readers from
// ever seeing a torn value.
type DiskStore struct {
	dir string
	counters
}

// NewDiskStore opens (creating if needed) a disk store rooted at dir.
func NewDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("summary: cache dir: %w", err)
	}
	return &DiskStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

func (s *DiskStore) path(k Key) string {
	return filepath.Join(s.dir, k.String()+".ipcs")
}

// Get implements Store. A missing file is a miss; any other read
// failure (permissions, a dying disk) counts as an error instead, so
// the stats distinguish "nothing stored" from "storage unwell" — both
// degrade to recomputation.
func (s *DiskStore) Get(k Key) ([]byte, bool) {
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		if os.IsNotExist(err) {
			s.misses.Add(1)
		} else {
			s.errors.Add(1)
		}
		return nil, false
	}
	s.hits.Add(1)
	return data, true
}

// Put implements Store.
func (s *DiskStore) Put(k Key, v []byte) error {
	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		s.errors.Add(1)
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(v); err != nil {
		tmp.Close()
		os.Remove(name)
		s.errors.Add(1)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		s.errors.Add(1)
		return err
	}
	if err := os.Rename(name, s.path(k)); err != nil {
		os.Remove(name)
		s.errors.Add(1)
		return err
	}
	s.puts.Add(1)
	s.putBytes.Add(int64(len(v)))
	return nil
}

// Stats implements Store.
func (s *DiskStore) Stats() StoreStats { return s.stats() }
