package summary

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ipcp/internal/wal"
)

// TieredStore composes stores into a cache hierarchy — typically
// memory in front of disk in front of a remote — with read-through
// fill and asynchronous write-back. Because every key is a complete
// content address (the key change *is* the invalidation), tiers never
// need coherence traffic: a value under a key is the same value in
// every tier that has it, so filling and writing back can be lazy and
// lossy without ever serving a wrong answer.
type TieredStore struct {
	tiers []Store
	counters

	// journal, when non-nil, logs every accepted Put before it is
	// acknowledged; a record is confirmed back (retiring its segment
	// once drained) only after every backing tier's write-back
	// succeeded, so a crash at any point loses no acknowledged put.
	journal *wal.Journal

	// Write-back to the slower tiers runs on background goroutines,
	// bounded by sem so a burst of Puts cannot pile up unbounded
	// concurrency against a remote.
	wg  sync.WaitGroup
	sem chan struct{}

	// flushErr holds the first asynchronous failure — a write-back or
	// journal error the Put that caused it could not return — surfaced
	// by FlushErr so shutdown paths can report instead of silently
	// dropping it.
	flushMu  sync.Mutex
	flushErr error
}

// writeBackWorkers bounds the concurrent background Puts draining into
// the non-primary tiers.
const writeBackWorkers = 4

// NewTieredStore stacks stores fastest-first. Get probes in order and
// back-fills every faster tier on a hit; Put writes the first tier
// synchronously and the rest asynchronously (Flush drains). A single
// tier is legal (the stack degenerates to that store plus counters),
// zero tiers is a programming error.
func NewTieredStore(tiers ...Store) *TieredStore {
	if len(tiers) == 0 {
		panic("summary: NewTieredStore needs at least one tier")
	}
	return &TieredStore{tiers: tiers, sem: make(chan struct{}, writeBackWorkers)}
}

// NewDurableTieredStore is NewTieredStore with a write-ahead journal:
// every accepted Put is appended to j before it is acknowledged, and
// j's segments retire only once the asynchronous write-backs confirm
// every backing tier. With a single tier the journal itself is the
// durable copy and records are never confirmed — recovery replays
// them into whatever stack the next open builds.
func NewDurableTieredStore(j *wal.Journal, tiers ...Store) *TieredStore {
	s := NewTieredStore(tiers...)
	s.journal = j
	return s
}

// Get implements Store: the first tier that has the value wins, and
// every tier in front of it is filled so the next lookup stops sooner.
func (s *TieredStore) Get(k Key) ([]byte, bool) {
	for i, t := range s.tiers {
		v, ok := t.Get(k)
		if !ok {
			continue
		}
		for j := 0; j < i; j++ {
			// A failed fill only costs the next lookup a deeper probe.
			//lint:ignore codecerr read-through fill is best-effort; the failing tier's own Errors counter records the fault
			_ = s.tiers[j].Put(k, v)
		}
		s.hits.Add(1)
		return v, true
	}
	s.misses.Add(1)
	return nil, false
}

// Put implements Store: journaled first (when a journal is attached),
// then synchronous into the first tier (so the value is immediately
// visible to this process), write-back into the rest in the
// background. The journal record is confirmed — making its segment
// retirable — only when every backing tier's write-back succeeded; a
// failed write-back leaves the record on disk for the next open's
// recovery to retry, and a failed journal append degrades to the
// unjournaled behavior (counted in Errors and FlushErr) rather than
// refusing the put.
func (s *TieredStore) Put(k Key, v []byte) error {
	var seq uint64
	logged := false
	if s.journal != nil {
		if sq, jerr := s.journal.Append(wal.Key(k), v); jerr == nil {
			seq, logged = sq, true
		} else {
			s.errors.Add(1)
			s.noteErr(fmt.Errorf("summary: wal append: %w", jerr))
		}
	}
	err := s.tiers[0].Put(k, v)
	if err == nil {
		s.puts.Add(1)
		s.putBytes.Add(int64(len(v)))
	}
	rest := s.tiers[1:]
	if len(rest) == 0 {
		return err
	}
	// One confirmation per put: the last write-back to finish confirms,
	// unless any of them failed.
	var remaining atomic.Int32
	var failed atomic.Bool
	remaining.Store(int32(len(rest)))
	for _, t := range rest {
		t := t
		s.wg.Add(1)
		s.sem <- struct{}{}
		go func() {
			defer func() { <-s.sem; s.wg.Done() }()
			if perr := t.Put(k, v); perr != nil {
				failed.Store(true)
				s.noteErr(perr)
			}
			if remaining.Add(-1) == 0 && logged && !failed.Load() {
				s.journal.Confirm(seq)
			}
		}()
	}
	return err
}

func (s *TieredStore) noteErr(err error) {
	s.flushMu.Lock()
	if s.flushErr == nil {
		s.flushErr = err
	}
	s.flushMu.Unlock()
}

// Flush blocks until every pending write-back has drained — tests and
// process shutdown call it so slower tiers are complete — then retires
// the journal's fully confirmed segments, so a clean shutdown leaves
// nothing for the next boot to replay.
func (s *TieredStore) Flush() {
	s.wg.Wait()
	if s.journal != nil {
		s.journal.Sweep()
	}
}

// FlushErr returns the first error any asynchronous write-back or
// journal operation has hit since the store was opened (sticky; nil
// when everything drained cleanly). Put cannot return these — they
// happen after it acknowledged — so shutdown paths check here instead
// of silently dropping them.
func (s *TieredStore) FlushErr() error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	return s.flushErr
}

// Close flushes pending write-backs, retires what the journal can
// retire, and closes it — unconfirmed records stay on disk for the
// next open's recovery. It returns FlushErr, so callers logging the
// close also surface any write-back the shutdown is abandoning.
func (s *TieredStore) Close() error {
	s.Flush()
	if s.journal != nil {
		if err := s.journal.Close(); err != nil {
			s.noteErr(err)
		}
	}
	return s.FlushErr()
}

// Journal exposes the attached write-ahead journal (nil without one) —
// servers read its Stats for metrics.
func (s *TieredStore) Journal() *wal.Journal { return s.journal }

// ReplayStats counts one journal recovery.
type ReplayStats struct {
	Replayed int // records re-put into the store
	Skipped  int // records whose key was already present
	Corrupt  int // torn or corrupt records dropped at open
}

// RecoverJournal replays j's surviving records into store — skipping
// keys already present, re-putting the rest — and drops the recovered
// segments. Call it at boot, after building the store stack but before
// serving: when store is itself journaled by j, the re-puts land in
// fresh segments, so dropping the old ones loses nothing. An error
// aborts the replay with the segments kept for the next boot.
func RecoverJournal(j *wal.Journal, store Store) (ReplayStats, error) {
	var rs ReplayStats
	wst, err := wal.Recover(j, func(k wal.Key, v []byte) error {
		key := Key(k)
		if _, ok := store.Get(key); ok {
			rs.Skipped++
			return nil
		}
		if err := store.Put(key, v); err != nil {
			return err
		}
		rs.Replayed++
		return nil
	})
	rs.Corrupt = wst.Corrupt
	return rs, err
}

// Stats implements Store. The hit/miss/put counters are the stack's
// own (one logical lookup regardless of how many tiers it probed);
// evictions and errors are aggregated from the tiers, since only they
// evict or fail.
func (s *TieredStore) Stats() StoreStats {
	st := s.stats()
	for _, t := range s.tiers {
		ts := t.Stats()
		st.Evictions += ts.Evictions
		st.Errors += ts.Errors
	}
	return st
}

// TierStats returns each tier's own counters, fastest-first. Note the
// traffic a tier sees is shaped by the stack: tier i only sees the
// Gets that missed tiers 0..i-1, plus fills and write-backs as Puts.
func (s *TieredStore) TierStats() []StoreStats {
	out := make([]StoreStats, len(s.tiers))
	for i, t := range s.tiers {
		out[i] = t.Stats()
	}
	return out
}
