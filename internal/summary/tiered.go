package summary

import "sync"

// TieredStore composes stores into a cache hierarchy — typically
// memory in front of disk in front of a remote — with read-through
// fill and asynchronous write-back. Because every key is a complete
// content address (the key change *is* the invalidation), tiers never
// need coherence traffic: a value under a key is the same value in
// every tier that has it, so filling and writing back can be lazy and
// lossy without ever serving a wrong answer.
type TieredStore struct {
	tiers []Store
	counters

	// Write-back to the slower tiers runs on background goroutines,
	// bounded by sem so a burst of Puts cannot pile up unbounded
	// concurrency against a remote.
	wg  sync.WaitGroup
	sem chan struct{}
}

// writeBackWorkers bounds the concurrent background Puts draining into
// the non-primary tiers.
const writeBackWorkers = 4

// NewTieredStore stacks stores fastest-first. Get probes in order and
// back-fills every faster tier on a hit; Put writes the first tier
// synchronously and the rest asynchronously (Flush drains). A single
// tier is legal (the stack degenerates to that store plus counters),
// zero tiers is a programming error.
func NewTieredStore(tiers ...Store) *TieredStore {
	if len(tiers) == 0 {
		panic("summary: NewTieredStore needs at least one tier")
	}
	return &TieredStore{tiers: tiers, sem: make(chan struct{}, writeBackWorkers)}
}

// Get implements Store: the first tier that has the value wins, and
// every tier in front of it is filled so the next lookup stops sooner.
func (s *TieredStore) Get(k Key) ([]byte, bool) {
	for i, t := range s.tiers {
		v, ok := t.Get(k)
		if !ok {
			continue
		}
		for j := 0; j < i; j++ {
			// A failed fill only costs the next lookup a deeper probe.
			_ = s.tiers[j].Put(k, v)
		}
		s.hits.Add(1)
		return v, true
	}
	s.misses.Add(1)
	return nil, false
}

// Put implements Store: synchronous into the first tier (so the value
// is immediately visible to this process), write-back into the rest in
// the background.
func (s *TieredStore) Put(k Key, v []byte) error {
	err := s.tiers[0].Put(k, v)
	if err == nil {
		s.puts.Add(1)
		s.putBytes.Add(int64(len(v)))
	}
	for _, t := range s.tiers[1:] {
		t := t
		s.wg.Add(1)
		s.sem <- struct{}{}
		go func() {
			defer func() { <-s.sem; s.wg.Done() }()
			_ = t.Put(k, v)
		}()
	}
	return err
}

// Flush blocks until every pending write-back has drained — tests and
// process shutdown call it so slower tiers are complete.
func (s *TieredStore) Flush() { s.wg.Wait() }

// Stats implements Store. The hit/miss/put counters are the stack's
// own (one logical lookup regardless of how many tiers it probed);
// evictions and errors are aggregated from the tiers, since only they
// evict or fail.
func (s *TieredStore) Stats() StoreStats {
	st := s.stats()
	for _, t := range s.tiers {
		ts := t.Stats()
		st.Evictions += ts.Evictions
		st.Errors += ts.Errors
	}
	return st
}

// TierStats returns each tier's own counters, fastest-first. Note the
// traffic a tier sees is shaped by the stack: tier i only sees the
// Gets that missed tiers 0..i-1, plus fills and write-backs as Puts.
func (s *TieredStore) TierStats() []StoreStats {
	out := make([]StoreStats, len(s.tiers))
	for i, t := range s.tiers {
		out[i] = t.Stats()
	}
	return out
}
