package summary

import (
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// This file implements cross-run garbage collection for disk store
// directories. A DiskStore only ever grows: every edit writes new
// content-addressed keys and the superseded ones are unreachable but
// never deleted. GCDir reclaims them by computing the live key set —
// the union of every snapshot file in the directory plus any
// caller-supplied snapshots (a daemon's in-memory ones) — deleting
// unreferenced .ipcs files, and then enforcing a byte budget over the
// survivors, coldest (oldest mtime) first. Snapshot files themselves
// are never collected.

// GCStats reports one garbage-collection sweep.
type GCStats struct {
	// Snapshots counts the snapshot files consulted for live keys
	// (undecodable ones are skipped, not trusted); LiveKeys is the size
	// of the resulting live set, caller-supplied keys included.
	Snapshots int
	LiveKeys  int

	// Scanned counts the .ipcs files examined, totalling ScannedBytes.
	Scanned      int
	ScannedBytes int64

	// Unreferenced counts files deleted because no live snapshot
	// references their key; OverBudget counts live files deleted to
	// enforce the byte budget. DeletedBytes totals both.
	Unreferenced int
	OverBudget   int
	DeletedBytes int64

	// Kept counts the surviving files, totalling KeptBytes.
	Kept      int
	KeptBytes int64
}

// String renders the sweep in one line.
func (s GCStats) String() string {
	return fmt.Sprintf("cache gc: %d/%d files deleted (%d unreferenced, %d over budget), %d bytes freed, %d kept (%d bytes), %d live keys from %d snapshots",
		s.Unreferenced+s.OverBudget, s.Scanned, s.Unreferenced, s.OverBudget,
		s.DeletedBytes, s.Kept, s.KeptBytes, s.LiveKeys, s.Snapshots)
}

// Keys returns the store keys the snapshot references, in unspecified
// order — the live set one run contributes to a GC sweep. Each
// procedure contributes both blob keys: collecting either half would
// force the whole procedure to re-analyze. A zero key (a stamp written
// without that half) pins nothing.
func (s *Snapshot) Keys() []Key {
	var zero Key
	keys := make([]Key, 0, 2*len(s.Procs))
	for _, st := range s.Procs {
		if st.Key != zero {
			//lint:ignore mapiter GCDir consumes Keys as an unordered pin set (membership only); the doc comment declares the order unspecified
			keys = append(keys, st.Key)
		}
		if st.SharedKey != zero {
			keys = append(keys, st.SharedKey)
		}
	}
	return keys
}

// GCDir sweeps a disk store directory: every *.ipcs file whose key no
// snapshot references is deleted, and if the referenced survivors
// still exceed budgetBytes (0 = unbounded), the coldest are deleted
// until they fit — a collected live entry is only a future cache miss,
// never an error. extraLive adds keys beyond the directory's snapshot
// files (e.g. snapshots held in memory by a resident server). The
// sweep is safe to run concurrently with store readers and writers:
// deletion of an in-use file only forces a recomputation.
func GCDir(dir string, extraLive []Key, budgetBytes int64) (GCStats, error) {
	var st GCStats
	entries, err := os.ReadDir(dir)
	if err != nil {
		return st, fmt.Errorf("summary: cache gc: %w", err)
	}

	live := make(map[Key]bool, len(extraLive))
	for _, k := range extraLive {
		live[k] = true
	}
	type blob struct {
		key  Key
		path string
		size int64
		mod  int64 // mtime in nanoseconds, the eviction clock
	}
	var blobs []blob
	for _, e := range entries {
		name := e.Name()
		path := filepath.Join(dir, name)
		switch {
		case strings.HasPrefix(name, "snapshot-") && strings.HasSuffix(name, ".snap"):
			// Either on-disk form pins its keys: a delta chain or a
			// single full encoding.
			snap, err := LoadSnapshotFile(path)
			if err != nil {
				continue // corrupt snapshots pin nothing
			}
			st.Snapshots++
			for _, k := range snap.Keys() {
				live[k] = true
			}
		case strings.HasSuffix(name, ".wal"):
			// Write-ahead journal segments belong to the WAL's own
			// retirement protocol: they hold puts whose write-back has
			// not confirmed, and GC must never touch them.
			continue
		case strings.HasSuffix(name, ".ipcs"):
			raw, err := hex.DecodeString(strings.TrimSuffix(name, ".ipcs"))
			if err != nil || len(raw) != len(Key{}) {
				continue // not a store file of ours
			}
			var key Key
			copy(key[:], raw)
			info, err := e.Info()
			if err != nil {
				continue // raced with a concurrent delete
			}
			st.Scanned++
			st.ScannedBytes += info.Size()
			blobs = append(blobs, blob{key: key, path: path, size: info.Size(), mod: info.ModTime().UnixNano()})
		default:
			// GC deletes only files it can prove it owns; anything with
			// an unknown extension is someone else's.
			continue
		}
	}
	st.LiveKeys = len(live)

	var survivors []blob
	var keptBytes int64
	for _, b := range blobs {
		if !live[b.key] {
			if os.Remove(b.path) == nil {
				st.Unreferenced++
				st.DeletedBytes += b.size
			}
			continue
		}
		survivors = append(survivors, b)
		keptBytes += b.size
	}

	// Budget enforcement: drop the coldest live entries until the rest
	// fit. Ties break on path so the sweep is deterministic.
	sort.Slice(survivors, func(i, j int) bool {
		if survivors[i].mod != survivors[j].mod {
			return survivors[i].mod < survivors[j].mod
		}
		return survivors[i].path < survivors[j].path
	})
	i := 0
	for ; budgetBytes > 0 && keptBytes > budgetBytes && i < len(survivors); i++ {
		b := survivors[i]
		if os.Remove(b.path) == nil {
			st.OverBudget++
			st.DeletedBytes += b.size
			keptBytes -= b.size
		}
	}
	st.Kept = len(survivors) - i
	st.KeptBytes = keptBytes
	return st, nil
}
