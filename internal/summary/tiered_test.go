package summary

import (
	"bytes"
	"testing"
)

// TestTieredReadThroughFill pins the promotion path: a value present
// only in a slow tier is served through the stack and copied into
// every faster tier, so the next lookup stops at tier 0.
func TestTieredReadThroughFill(t *testing.T) {
	fast, slow := NewMemStore(0), NewMemStore(0)
	s := NewTieredStore(fast, slow)
	defer s.Flush()

	k := KeyOf("fill")
	if err := slow.Put(k, []byte("deep")); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get(k); !ok || !bytes.Equal(v, []byte("deep")) {
		t.Fatalf("stack Get = %q, %v", v, ok)
	}
	if v, ok := fast.Get(k); !ok || !bytes.Equal(v, []byte("deep")) {
		t.Fatalf("fast tier after read-through = %q, %v; want filled", v, ok)
	}
	// The stack counts one logical hit, not one per tier probed.
	if st := s.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stack stats = %+v", st)
	}
}

// TestTieredWriteBack pins that Put lands synchronously in tier 0 and,
// after Flush, in every slower tier.
func TestTieredWriteBack(t *testing.T) {
	fast, slow := NewMemStore(0), NewMemStore(0)
	s := NewTieredStore(fast, slow)

	k := KeyOf("writeback")
	if err := s.Put(k, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, ok := fast.Get(k); !ok {
		t.Fatal("tier 0 missing the value immediately after Put")
	}
	s.Flush()
	if v, ok := slow.Get(k); !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("slow tier after Flush = %q, %v", v, ok)
	}
}

// TestTieredFaultyRemoteDegrades stacks memory over a remote that is
// serving 500s: reads and writes keep working out of the memory tier,
// and the remote's failures surface only as the aggregated Errors
// counter — the layered cache never fails an analysis.
func TestTieredFaultyRemoteDegrades(t *testing.T) {
	f := newFakeBlobServer(t)
	f.setMode("error")
	remote := NewRemoteStore(f.URL())
	s := NewTieredStore(NewMemStore(0), remote)

	k := KeyOf("degrade")
	if err := s.Put(k, []byte("local")); err != nil {
		t.Fatalf("Put with faulty remote tier: %v", err)
	}
	s.Flush()
	if v, ok := s.Get(k); !ok || !bytes.Equal(v, []byte("local")) {
		t.Fatalf("Get with faulty remote tier = %q, %v", v, ok)
	}
	if st := s.Stats(); st.Errors == 0 {
		t.Fatal("remote failures did not surface in aggregated Errors")
	}
	if st := s.Stats(); st.Hits != 1 || st.Puts != 1 {
		t.Fatalf("stack stats = %+v; faults must not disturb hit/put counts", st)
	}

	// A miss probes the remote too: still a clean miss, one more error.
	if _, ok := s.Get(KeyOf("absent")); ok {
		t.Fatal("miss through faulty remote returned a value")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("stack stats = %+v; want exactly one miss", st)
	}
}

// TestTieredTierStats pins the per-tier view: tier 0 sees every
// lookup, tier 1 only the ones tier 0 missed, and eviction activity in
// a bounded tier is visible both per-tier and in the aggregate.
func TestTieredTierStats(t *testing.T) {
	fast, slow := NewMemStore(1), NewMemStore(0) // tier 0 holds one entry
	s := NewTieredStore(fast, slow)
	defer s.Flush()

	k1, k2 := KeyOf("t1"), KeyOf("t2")
	if err := s.Put(k1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k2, []byte("b")); err != nil { // evicts k1 from tier 0
		t.Fatal(err)
	}
	s.Flush()
	if v, ok := s.Get(k1); !ok || !bytes.Equal(v, []byte("a")) { // served by tier 1
		t.Fatalf("Get(k1) = %q, %v", v, ok)
	}

	tiers := s.TierStats()
	if len(tiers) != 2 {
		t.Fatalf("TierStats len = %d, want 2", len(tiers))
	}
	if tiers[0].Misses == 0 {
		t.Fatal("tier 0 recorded no miss for the evicted key")
	}
	if tiers[1].Hits == 0 {
		t.Fatal("tier 1 recorded no hit for the evicted key")
	}
	if tiers[0].Evictions == 0 {
		t.Fatal("bounded tier recorded no eviction")
	}
	if st := s.Stats(); st.Evictions != tiers[0].Evictions+tiers[1].Evictions {
		t.Fatalf("aggregate evictions %d != sum of tiers", st.Evictions)
	}
}

// TestTieredSingleTier pins that a one-tier stack is legal and behaves
// as that store plus counters.
func TestTieredSingleTier(t *testing.T) {
	s := NewTieredStore(NewMemStore(0))
	defer s.Flush()
	k := KeyOf("single")
	if err := s.Put(k, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get(k); !ok || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	if st := s.Stats(); st.Hits != 1 || st.Puts != 1 || st.PutBytes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}
