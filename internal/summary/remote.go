package summary

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// RemoteStore is a Store backed by a blob service over HTTP — the
// client half of the protocol ipcpd serves at /v1/blob/ — so a fleet
// of analyzers can share one summary pool. The protocol is two verbs
// on one resource:
//
//	GET  {base}/v1/blob/{key}   200 body = value, 404 = miss
//	PUT  {base}/v1/blob/{key}   body = value, 2xx = stored
//
// with {key} the 64-hex spelling of the content address and an
// X-Blob-Sum header carrying the SHA-256 of the body in both
// directions, so either side can reject a corrupted transfer.
//
// A RemoteStore never fails an analysis: network errors, non-2xx
// statuses, truncated bodies, and checksum mismatches all count into
// the Errors stat and degrade to a miss (Get) or a dropped write
// (Put) — the caller recomputes, exactly as on a cold cache.
type RemoteStore struct {
	base string

	// Client performs the requests; the constructor installs one with a
	// conservative timeout, and tests substitute their own.
	Client *http.Client

	counters
}

// blobSumHeader carries the hex SHA-256 of the request or response
// body.
const blobSumHeader = "X-Blob-Sum"

// maxBlobSize bounds a fetched blob (and what the server accepts):
// far above any real summary, small enough that a misbehaving peer
// cannot balloon memory.
const maxBlobSize = 64 << 20

// NewRemoteStore returns a store speaking the blob protocol rooted at
// baseURL (e.g. "http://127.0.0.1:7455"); a trailing slash or an
// explicit /v1/blob suffix is tolerated.
func NewRemoteStore(baseURL string) *RemoteStore {
	base := strings.TrimSuffix(strings.TrimSuffix(baseURL, "/"), "/v1/blob")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &RemoteStore{
		base:   base,
		Client: &http.Client{Timeout: 30 * time.Second},
	}
}

func (s *RemoteStore) url(k Key) string {
	return s.base + "/v1/blob/" + k.String()
}

// Get implements Store.
func (s *RemoteStore) Get(k Key) ([]byte, bool) {
	resp, err := s.Client.Get(s.url(k))
	if err != nil {
		s.errors.Add(1)
		return nil, false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		s.misses.Add(1)
		return nil, false
	case resp.StatusCode != http.StatusOK:
		s.errors.Add(1)
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBlobSize+1))
	if err != nil || len(data) > maxBlobSize {
		s.errors.Add(1)
		return nil, false
	}
	// The transfer self-checks twice over: the server's checksum header
	// must match the bytes received, and a served Content-Length that
	// the body fell short of already surfaced as a read error above.
	if want := resp.Header.Get(blobSumHeader); want != "" {
		sum := sha256.Sum256(data)
		if !strings.EqualFold(want, hex.EncodeToString(sum[:])) {
			s.errors.Add(1)
			return nil, false
		}
	}
	s.hits.Add(1)
	return data, true
}

// Put implements Store.
func (s *RemoteStore) Put(k Key, v []byte) error {
	req, err := http.NewRequest(http.MethodPut, s.url(k), bytes.NewReader(v))
	if err != nil {
		s.errors.Add(1)
		return err
	}
	sum := sha256.Sum256(v)
	req.Header.Set(blobSumHeader, hex.EncodeToString(sum[:]))
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.Client.Do(req)
	if err != nil {
		s.errors.Add(1)
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		s.errors.Add(1)
		return fmt.Errorf("summary: remote put: status %d", resp.StatusCode)
	}
	s.puts.Add(1)
	s.putBytes.Add(int64(len(v)))
	return nil
}

// Stats implements Store.
func (s *RemoteStore) Stats() StoreStats { return s.stats() }

// MaxBlobSize is the protocol's size cap on one blob, shared with the
// serving side.
const MaxBlobSize = maxBlobSize
