package summary

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// sampleShared exercises every field of the config-invariant record: a
// full return summary with nested expressions and nil (⊥) slots, and
// non-empty MOD/REF and use vectors.
func sampleShared() *SharedSummary {
	return &SharedSummary{
		Name:       "SOLVE",
		SourceHash: "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef",
		Callees:    []string{"INIT", "STEP"},
		Returns: &ReturnSummary{
			Result: &Op{Name: "+", Args: []Expr{&Formal{Index: 0, Name: "N"}, &Const{Val: 1}}},
			Formal: []Expr{&Formal{Index: 0, Name: "N"}, nil},
			Globals: []GlobalExpr{
				{ID: 2, Ref: "COM.K", E: &Const{Val: 42}},
				{ID: 5, Ref: "COM.M", E: &Global{ID: 5, Ref: "COM.M"}},
			},
		},
		ModFormals: []bool{true, false},
		RefFormals: []bool{true, true},
		ModGlobals: []int{2},
		RefGlobals: []int{2, 5},
		FormalUses: []UseCount{{Subs: 4, Control: 2}, {Subs: 0, Control: 0}},
		GlobalUses: []UseCount{{Subs: 1, Control: 1}},
		SSAPhis:    3,
	}
}

// sampleFlavor exercises the flavor-dependent record: multiple sites
// with nil (⊥) slots and nested expressions.
func sampleFlavor() *FlavorSummary {
	return &FlavorSummary{
		Name:       "SOLVE",
		SourceHash: "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef",
		Sites: []*SiteSummary{
			{
				Callee: "INIT",
				Formal: []Expr{&Const{Val: -7}, nil},
				Global: []Expr{&Op{Name: "*", Args: []Expr{&Const{Val: 2}, &Global{ID: 2, Ref: "COM.K"}}}},
			},
			{Callee: "STEP", Formal: nil, Global: []Expr{nil}},
		},
	}
}

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		ConfigKey:   KeyOf("config", "test").String(),
		GlobalsHash: "abc123",
		Procs: map[string]ProcStamp{
			"SOLVE": {
				SourceHash: "h1", Key: KeyOf("proc", "1"), SharedKey: KeyOf("proc-shared", "1"),
				Callees: []string{"INIT", "STEP"},
				JFHash:  "jf1",
				Cells: &ValCells{
					Formals: []ValCell{{Kind: CellInt, Int: 42}, {Kind: CellBottom}, {Kind: CellInt, Int: -3}},
					Globals: []ValCell{{Kind: CellTop}, {Kind: CellReal, Real: 2.5}, {Kind: CellBool, Bool: true}, {Kind: CellInt, Int: 0}},
				},
			},
			// A stamp without warm-start data (a run that could not
			// persist the assignment) must round-trip as-is.
			"INIT": {SourceHash: "h2", Key: KeyOf("proc", "2"), SharedKey: KeyOf("proc-shared", "2")},
			"STEP": {
				SourceHash: "h3", Key: KeyOf("proc", "3"), SharedKey: KeyOf("proc-shared", "3"),
				Callees: []string{"INIT"},
				JFHash:  "jf3",
				Cells:   &ValCells{Globals: []ValCell{{Kind: CellBottom}}},
			},
		},
	}
}

func TestSharedRoundTrip(t *testing.T) {
	cases := []*SharedSummary{
		sampleShared(),
		{Name: "EMPTY", SourceHash: "h"},
		{Name: "LEAF", SourceHash: "h", Returns: &ReturnSummary{Formal: []Expr{nil}}},
	}
	for _, s := range cases {
		enc := EncodeShared(s)
		got, err := DecodeShared(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", s.Name, err)
		}
		if !reflect.DeepEqual(s, got) {
			t.Fatalf("%s: round trip mismatch\nwant %+v\ngot  %+v", s.Name, s, got)
		}
	}
}

func TestFlavorRoundTrip(t *testing.T) {
	cases := []*FlavorSummary{
		sampleFlavor(),
		{Name: "EMPTY", SourceHash: "h"},
		{Name: "ONE", SourceHash: "h", Sites: []*SiteSummary{{Callee: "EMPTY"}}},
	}
	for _, s := range cases {
		enc := EncodeFlavor(s)
		got, err := DecodeFlavor(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", s.Name, err)
		}
		if !reflect.DeepEqual(s, got) {
			t.Fatalf("%s: round trip mismatch\nwant %+v\ngot  %+v", s.Name, s, got)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := sampleSnapshot()
	got, err := DecodeSnapshot(EncodeSnapshot(s))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, got) {
		t.Fatalf("round trip mismatch\nwant %+v\ngot  %+v", s, got)
	}
}

// TestEncodeDeterministic pins that encoding is byte-for-byte stable —
// content-addressed storage and snapshot diffing both rely on it. The
// snapshot case matters most: its procs live in a map, so the encoder
// must impose an order.
func TestEncodeDeterministic(t *testing.T) {
	for i := 0; i < 10; i++ {
		if !bytes.Equal(EncodeShared(sampleShared()), EncodeShared(sampleShared())) {
			t.Fatal("EncodeShared is not deterministic")
		}
		if !bytes.Equal(EncodeFlavor(sampleFlavor()), EncodeFlavor(sampleFlavor())) {
			t.Fatal("EncodeFlavor is not deterministic")
		}
		if !bytes.Equal(EncodeSnapshot(sampleSnapshot()), EncodeSnapshot(sampleSnapshot())) {
			t.Fatal("EncodeSnapshot is not deterministic")
		}
	}
}

// TestGoldenHeader pins the wire header so accidental format changes
// without a Version bump are caught.
func TestGoldenHeader(t *testing.T) {
	enc := EncodeShared(&SharedSummary{Name: "P", SourceHash: "h"})
	if string(enc[:4]) != "IPCS" {
		t.Fatalf("magic = %q, want IPCS", enc[:4])
	}
	if v := uint16(enc[4])<<8 | uint16(enc[5]); v != Version {
		t.Fatalf("version = %d, want %d", v, Version)
	}
	if enc[6] != 1 {
		t.Fatalf("kind = %d, want 1 (shared)", enc[6])
	}
	snap := EncodeSnapshot(&Snapshot{Procs: map[string]ProcStamp{}})
	if snap[6] != 2 {
		t.Fatalf("snapshot kind = %d, want 2", snap[6])
	}
	flav := EncodeFlavor(&FlavorSummary{Name: "P", SourceHash: "h"})
	if flav[6] != 3 {
		t.Fatalf("flavor kind = %d, want 3", flav[6])
	}
	delta := EncodeSnapshotDelta(&SnapshotDelta{})
	if delta[6] != 4 {
		t.Fatalf("delta kind = %d, want 4", delta[6])
	}
}

// TestDecodeCorrupt flips every byte of valid encodings one at a time:
// decode must either succeed-with-equal-value (impossible here thanks
// to the checksum) or return an error wrapping ErrCorrupt — it must
// never panic and never return silently wrong data.
func TestDecodeCorrupt(t *testing.T) {
	enc := EncodeShared(sampleShared())
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0x41
		if _, err := DecodeShared(mut); err == nil {
			t.Fatalf("byte %d flipped: decode succeeded", i)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("byte %d flipped: error %v does not wrap ErrCorrupt", i, err)
		}
	}
	fenc := EncodeFlavor(sampleFlavor())
	for i := range fenc {
		mut := append([]byte(nil), fenc...)
		mut[i] ^= 0x41
		if _, err := DecodeFlavor(mut); err == nil {
			t.Fatalf("flavor byte %d flipped: decode succeeded", i)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flavor byte %d flipped: error %v does not wrap ErrCorrupt", i, err)
		}
	}
	snap := EncodeSnapshot(sampleSnapshot())
	for i := range snap {
		mut := append([]byte(nil), snap...)
		mut[i] ^= 0x41
		if _, err := DecodeSnapshot(mut); err == nil {
			t.Fatalf("snapshot byte %d flipped: decode succeeded", i)
		}
	}
	denc := EncodeSnapshotDelta(sampleDelta())
	for i := range denc {
		mut := append([]byte(nil), denc...)
		mut[i] ^= 0x41
		if _, err := DecodeSnapshotDelta(mut); err == nil {
			t.Fatalf("delta byte %d flipped: decode succeeded", i)
		} else if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("delta byte %d flipped: error %v does not wrap ErrCorrupt", i, err)
		}
	}
}

// TestDecodeTruncated drops suffixes: every proper prefix must fail
// cleanly, as must trailing garbage.
func TestDecodeTruncated(t *testing.T) {
	enc := EncodeShared(sampleShared())
	for n := 0; n < len(enc); n++ {
		if _, err := DecodeShared(enc[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix of %d bytes: error %v does not wrap ErrCorrupt", n, err)
		}
	}
	fenc := EncodeFlavor(sampleFlavor())
	for n := 0; n < len(fenc); n++ {
		if _, err := DecodeFlavor(fenc[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flavor prefix of %d bytes: error %v does not wrap ErrCorrupt", n, err)
		}
	}
	if _, err := DecodeShared(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := DecodeShared(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatal("nil input must report corruption")
	}
	// Kind confusion: every record kind fed to every other decoder.
	if _, err := DecodeShared(EncodeSnapshot(sampleSnapshot())); !errors.Is(err, ErrCorrupt) {
		t.Fatal("snapshot bytes accepted as shared record")
	}
	if _, err := DecodeShared(fenc); !errors.Is(err, ErrCorrupt) {
		t.Fatal("flavor bytes accepted as shared record")
	}
	if _, err := DecodeFlavor(enc); !errors.Is(err, ErrCorrupt) {
		t.Fatal("shared bytes accepted as flavor record")
	}
	if _, err := DecodeSnapshot(enc); !errors.Is(err, ErrCorrupt) {
		t.Fatal("shared bytes accepted as snapshot")
	}
	denc := EncodeSnapshotDelta(sampleDelta())
	for n := 0; n < len(denc); n++ {
		if _, err := DecodeSnapshotDelta(denc[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("delta prefix of %d bytes: error %v does not wrap ErrCorrupt", n, err)
		}
	}
	if _, err := DecodeSnapshotDelta(EncodeSnapshot(sampleSnapshot())); !errors.Is(err, ErrCorrupt) {
		t.Fatal("snapshot bytes accepted as delta")
	}
	if _, err := DecodeSnapshot(denc); !errors.Is(err, ErrCorrupt) {
		t.Fatal("delta bytes accepted as snapshot")
	}
}

func TestKeyOfFraming(t *testing.T) {
	// Length-prefixed framing: concatenation ambiguity must not collide.
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Fatal("KeyOf collides under re-framing")
	}
	if KeyOf("a", "b") == KeyOf("a", "b", "") {
		t.Fatal("KeyOf ignores empty trailing part")
	}
}

func TestMemStoreEviction(t *testing.T) {
	s := NewMemStore(2)
	k1, k2, k3 := KeyOf("1"), KeyOf("2"), KeyOf("3")
	for _, k := range []Key{k1, k2, k3} {
		if err := s.Put(k, []byte(k.String())); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d after eviction, want 2", s.Len())
	}
	if _, ok := s.Get(k1); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if v, ok := s.Get(k3); !ok || string(v) != k3.String() {
		t.Fatal("newest entry lost")
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Puts != 3 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestMemStoreLRUPromotion pins that Get refreshes recency: touching
// the oldest entry must divert the next eviction to the untouched one.
func TestMemStoreLRUPromotion(t *testing.T) {
	s := NewMemStore(2)
	k1, k2, k3 := KeyOf("1"), KeyOf("2"), KeyOf("3")
	mustPut(t, s, k1)
	mustPut(t, s, k2)
	if _, ok := s.Get(k1); !ok { // promote k1 over k2
		t.Fatal("k1 missing before eviction")
	}
	mustPut(t, s, k3) // evicts k2, the least recently used
	if _, ok := s.Get(k2); ok {
		t.Fatal("least recently used entry survived eviction")
	}
	if _, ok := s.Get(k1); !ok {
		t.Fatal("recently read entry was evicted")
	}
	if _, ok := s.Get(k3); !ok {
		t.Fatal("newest entry was evicted")
	}
}

func mustPut(t *testing.T, s Store, k Key) {
	t.Helper()
	if err := s.Put(k, []byte(k.String())); err != nil {
		t.Fatal(err)
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf("proc", "X")
	if _, ok := s.Get(k); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(k, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// A second handle over the same directory sees the entry.
	s2, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s2.Get(k); !ok || string(v) != "payload" {
		t.Fatalf("cross-handle read got %q, %v", v, ok)
	}
}
