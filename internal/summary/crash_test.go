package summary

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"ipcp/internal/wal"
)

// Crash-semantics battery. These tests simulate a process dying at
// every interesting point of a batch of Puts — after the journal
// append, before the write-back lands — and assert the invariant the
// WAL exists to provide: every put the store acknowledged before the
// crash is recovered bit-identically, no matter where the crash fell.

// deadStore is a backing tier that accepts nothing: write-backs never
// land, so recovery must come entirely from the journal.
type deadStore struct{ counters }

func (d *deadStore) Get(Key) ([]byte, bool) { return nil, false }
func (d *deadStore) Put(Key, []byte) error  { return errors.New("dead tier") }
func (d *deadStore) Stats() StoreStats      { return d.stats() }

func crashKey(i int) Key { return KeyOf("crash", fmt.Sprint(i)) }

func crashVal(i int) []byte {
	return []byte(fmt.Sprintf("summary-payload-%d-%s", i, string(make([]byte, i%7))))
}

// TestCrashAtEveryPoint kills the journal after n appends for every n
// in a batch of puts, restarts, and checks the acknowledged prefix is
// recovered exactly.
func TestCrashAtEveryPoint(t *testing.T) {
	const batch = 6
	for n := 0; n <= batch; n++ {
		n := n
		t.Run(fmt.Sprintf("crash-after-%d", n), func(t *testing.T) {
			dir := t.TempDir()
			j, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{})
			if err != nil {
				t.Fatal(err)
			}
			store := NewDurableTieredStore(j, NewMemStore(0), &deadStore{})
			j.CrashAfter(n, 13) // torn 13-byte tail after the nth append

			acked := 0
			for i := 0; i < batch; i++ {
				// Put still succeeds into tier0 even when the journal is
				// dead — but only journaled puts are durable, so the
				// acknowledged-durable prefix is the first n.
				if err := store.Put(crashKey(i), crashVal(i)); err != nil {
					t.Fatalf("put %d: %v", i, err)
				}
				acked++
			}
			if acked != batch {
				t.Fatalf("acked %d, want %d", acked, batch)
			}
			store.Flush()
			// The process dies here: no Close, the mem tier is gone, the
			// dead tier never stored anything. All that survives is the
			// journal directory.

			j2, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			fresh := NewDurableTieredStore(j2, NewMemStore(0))
			rs, err := RecoverJournal(j2, fresh)
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			if rs.Replayed != n {
				t.Fatalf("replayed %d records, want the %d journaled before the crash", rs.Replayed, n)
			}
			for i := 0; i < n; i++ {
				got, ok := fresh.Get(crashKey(i))
				if !ok {
					t.Fatalf("journaled put %d lost", i)
				}
				if !reflect.DeepEqual(got, crashVal(i)) {
					t.Fatalf("journaled put %d corrupted: got %q want %q", i, got, crashVal(i))
				}
			}
			for i := n; i < batch; i++ {
				if _, ok := fresh.Get(crashKey(i)); ok {
					t.Fatalf("unjournaled put %d resurrected from nowhere", i)
				}
			}
		})
	}
}

// TestCrashRecoveryMatchesCrashFreeRun runs the same batch twice — once
// crash-free, once with a kill mid-batch plus recovery — and checks the
// recovered store serves the identical bytes for every key the crashed
// run journaled.
func TestCrashRecoveryMatchesCrashFreeRun(t *testing.T) {
	const batch = 10

	// Crash-free reference: a plain store holding the batch.
	ref := NewMemStore(0)
	for i := 0; i < batch; i++ {
		if err := ref.Put(crashKey(i), crashVal(i)); err != nil {
			t.Fatal(err)
		}
	}

	dir := t.TempDir()
	j, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	store := NewDurableTieredStore(j, NewMemStore(0), &deadStore{})
	for i := 0; i < batch; i++ {
		if err := store.Put(crashKey(i), crashVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	store.Flush()
	// Die without Close.

	j2, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recovered := NewDurableTieredStore(j2, NewMemStore(0))
	rs, err := RecoverJournal(j2, recovered)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rs.Replayed != batch {
		t.Fatalf("replayed %d, want %d", rs.Replayed, batch)
	}
	for i := 0; i < batch; i++ {
		want, _ := ref.Get(crashKey(i))
		got, ok := recovered.Get(crashKey(i))
		if !ok || !reflect.DeepEqual(got, want) {
			t.Fatalf("key %d: recovered store diverges from crash-free run (ok=%v)", i, ok)
		}
	}
}

// TestUnconfirmedSegmentsSurviveFailedWriteBack checks the retirement
// protocol end-to-end at the store level: a failing backing tier means
// no Confirm, so Flush+Close retire nothing and the next boot replays.
func TestUnconfirmedSegmentsSurviveFailedWriteBack(t *testing.T) {
	dir := t.TempDir()
	waldir := filepath.Join(dir, "wal")
	j, err := wal.Open(waldir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	store := NewDurableTieredStore(j, NewMemStore(0), &deadStore{})
	if err := store.Put(crashKey(0), crashVal(0)); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err == nil {
		t.Fatal("Close returned nil despite a failed write-back")
	}

	j2, err := wal.Open(waldir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rs := j2.RecoverStats(); rs.Records != 1 {
		t.Fatalf("next boot sees %d surviving records, want 1", rs.Records)
	}
}

// TestConfirmedSegmentsRetireOnCleanShutdown is the happy-path inverse:
// write-backs land, Flush retires everything, the next boot replays
// nothing.
func TestConfirmedSegmentsRetireOnCleanShutdown(t *testing.T) {
	dir := t.TempDir()
	waldir := filepath.Join(dir, "wal")
	j, err := wal.Open(waldir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := NewDiskStore(filepath.Join(dir, "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	store := NewDurableTieredStore(j, NewMemStore(0), disk)
	for i := 0; i < 4; i++ {
		if err := store.Put(crashKey(i), crashVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Close(); err != nil {
		t.Fatalf("clean close: %v", err)
	}

	j2, err := wal.Open(waldir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if rs := j2.RecoverStats(); rs.Records != 0 {
		t.Fatalf("clean shutdown left %d records to replay", rs.Records)
	}
}

// TestFlushErrSticky checks FlushErr reports the first asynchronous
// failure and keeps reporting it.
func TestFlushErrSticky(t *testing.T) {
	store := NewTieredStore(NewMemStore(0), &deadStore{})
	if store.FlushErr() != nil {
		t.Fatal("FlushErr non-nil before any failure")
	}
	if err := store.Put(crashKey(0), crashVal(0)); err != nil {
		t.Fatal(err)
	}
	store.Flush()
	first := store.FlushErr()
	if first == nil {
		t.Fatal("FlushErr nil after a failed write-back")
	}
	if err := store.Put(crashKey(1), crashVal(1)); err != nil {
		t.Fatal(err)
	}
	store.Flush()
	if store.FlushErr() != first {
		t.Fatal("FlushErr is not sticky on the first error")
	}
}

// TestJournalAppendFailureDegrades checks a dead journal does not take
// the store down with it: puts keep working, the failure lands in
// Errors and FlushErr.
func TestJournalAppendFailureDegrades(t *testing.T) {
	dir := t.TempDir()
	j, err := wal.Open(filepath.Join(dir, "wal"), wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.CrashAfter(0, 0) // every append fails from the start
	store := NewDurableTieredStore(j, NewMemStore(0))
	if err := store.Put(crashKey(0), crashVal(0)); err != nil {
		t.Fatalf("put with dead journal: %v", err)
	}
	if _, ok := store.Get(crashKey(0)); !ok {
		t.Fatal("put with dead journal not visible")
	}
	if store.Stats().Errors == 0 {
		t.Fatal("journal failure not counted in Errors")
	}
	if store.FlushErr() == nil {
		t.Fatal("journal failure not surfaced in FlushErr")
	}
}
