package summary

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
)

// Delta-encoded snapshots. A full snapshot re-encodes every
// procedure's stamp on every save, growing linearly with program size
// even when one procedure changed; a SnapshotDelta records only the
// stamps an edit added, changed, or removed, against a parent snapshot
// identified by its content key. Deltas persist in a chain file — one
// full frame followed by deltas, each applying to the cumulative state
// before it — that LoadSnapshotChain folds back into a snapshot,
// tolerating a torn tail the way the WAL does: the longest valid
// prefix wins.
//
// Soundness rests on two facts. The snapshot encoding is canonical
// (procedures sorted, nil and empty collapse to the same bytes), so a
// content key names exactly one logical snapshot and a delta can never
// silently apply to the wrong parent. And the chain file only ever
// grows by appended frames or is atomically rewritten from scratch, so
// any crash leaves either the old chain, the old chain plus a torn
// frame (dropped on load), or the new file.

// SnapshotDelta is the difference between two snapshots of one
// configuration lineage.
type SnapshotDelta struct {
	ConfigKey   string
	GlobalsHash string // the child's (an edit may change the global set)

	// Parent is the content key — SnapshotContentKey — of the snapshot
	// this delta applies to.
	Parent Key

	// Updated holds the stamps of procedures the child added or
	// changed; Removed names the ones it no longer has.
	Updated map[string]ProcStamp
	Removed []string
}

// SnapshotContentKey names a snapshot by its canonical encoding — the
// identity a delta's Parent field refers to.
func SnapshotContentKey(s *Snapshot) Key {
	return Key(sha256.Sum256(EncodeSnapshot(s)))
}

// stampEqual compares two stamps by their canonical encoding, so nil
// and empty slices — which decode interchangeably — never register as
// a change.
func stampEqual(a, b ProcStamp) bool {
	wa, wb := &writer{}, &writer{}
	wa.stamp(a)
	wb.stamp(b)
	return bytes.Equal(wa.buf, wb.buf)
}

// DiffSnapshot computes the delta taking parent to child, or nil when
// the two are not diffable (different lineages, or either side
// missing) and the caller should write a full snapshot instead.
func DiffSnapshot(parent, child *Snapshot) *SnapshotDelta {
	if parent == nil || child == nil || parent.ConfigKey != child.ConfigKey {
		return nil
	}
	d := &SnapshotDelta{
		ConfigKey:   child.ConfigKey,
		GlobalsHash: child.GlobalsHash,
		Parent:      SnapshotContentKey(parent),
		Updated:     make(map[string]ProcStamp),
	}
	for name, st := range child.Procs {
		if old, ok := parent.Procs[name]; !ok || !stampEqual(old, st) {
			d.Updated[name] = st
		}
	}
	for name := range parent.Procs {
		if _, ok := child.Procs[name]; !ok {
			d.Removed = append(d.Removed, name)
		}
	}
	return d
}

// ApplySnapshotDelta reconstructs the child snapshot from its parent
// and the delta. The parent's content key must match the delta's
// Parent — the check that makes replaying a chain against the wrong
// base an error rather than a silently wrong snapshot.
func ApplySnapshotDelta(parent *Snapshot, d *SnapshotDelta) (*Snapshot, error) {
	if parent == nil {
		return nil, corrupt("delta without a parent snapshot")
	}
	if d.ConfigKey != parent.ConfigKey {
		return nil, corrupt("delta config key %q does not match parent %q", d.ConfigKey, parent.ConfigKey)
	}
	if d.Parent != SnapshotContentKey(parent) {
		return nil, corrupt("delta parent key mismatch")
	}
	out := &Snapshot{
		ConfigKey:   d.ConfigKey,
		GlobalsHash: d.GlobalsHash,
		Procs:       make(map[string]ProcStamp, len(parent.Procs)+len(d.Updated)),
	}
	for name, st := range parent.Procs {
		out.Procs[name] = st
	}
	for _, name := range d.Removed {
		if _, ok := out.Procs[name]; !ok {
			return nil, corrupt("delta removes unknown procedure %q", name)
		}
		delete(out.Procs, name)
	}
	for name, st := range d.Updated {
		out.Procs[name] = st
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Chain files
//
//	magic "IPCH" | version u16 | frames...
//	frame := length u32 | sealed codec value (kindSnapshot, then kindDelta*)

const (
	chainMagic      = "IPCH"
	chainVersion    = 1
	chainHeaderSize = 4 + 2
)

// DeltaPolicy says when a chain save gives up on appending a delta and
// rewrites the full snapshot: after MaxDeltas accumulated edits (so
// loads stay cheap and the chain cannot grow without bound), or when
// one delta exceeds MaxRatio of the full encoding (a rewrite is then
// nearly as cheap and resets the chain).
type DeltaPolicy struct {
	MaxDeltas int
	MaxRatio  float64
}

// DefaultDeltaPolicy rewrites every 8 edits or when a delta reaches
// half the full snapshot's size.
var DefaultDeltaPolicy = DeltaPolicy{MaxDeltas: 8, MaxRatio: 0.5}

// ChainStats reports one SaveSnapshotChain write.
type ChainStats struct {
	Frames        int  // frames in the file after the save, full head included
	WroteFull     bool // true when the save rewrote the chain from scratch
	AppendedBytes int  // bytes this save added to the file (0 = no change)
	DeltaBytes    int  // size of the delta frame appended (0 when full)
	FullBytes     int  // size of the snapshot's full encoding, for comparison
}

// LoadSnapshotChain reads a chain file and folds it into the snapshot
// it represents, returning the frame count consumed. A torn or corrupt
// tail after the first frame is dropped — the longest valid prefix is
// still a snapshot some save produced; a chain whose head frame is
// unreadable is an error.
func LoadSnapshotChain(path string) (*Snapshot, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("summary: %w", err)
	}
	snap, frames, _, err := decodeChain(data)
	return snap, frames, err
}

// decodeChain also returns the byte offset where the valid prefix ends,
// so a save over a torn chain can truncate the garbage before
// appending.
func decodeChain(data []byte) (*Snapshot, int, int, error) {
	if len(data) < chainHeaderSize || string(data[:4]) != chainMagic {
		return nil, 0, 0, corrupt("not a snapshot chain")
	}
	if v := binary.BigEndian.Uint16(data[4:]); v != chainVersion {
		return nil, 0, 0, corrupt("chain version %d, want %d", v, chainVersion)
	}
	var snap *Snapshot
	frames := 0
	off := chainHeaderSize
	for off < len(data) {
		if len(data)-off < 4 {
			break // torn length prefix
		}
		flen := int(binary.BigEndian.Uint32(data[off:]))
		if flen > len(data)-off-4 {
			break // torn frame
		}
		frame := data[off+4 : off+4+flen]
		if frames == 0 {
			s, err := DecodeSnapshot(frame)
			if err != nil {
				return nil, 0, 0, err
			}
			snap = s
		} else {
			d, err := DecodeSnapshotDelta(frame)
			if err != nil {
				break // corrupt tail: keep the prefix
			}
			next, err := ApplySnapshotDelta(snap, d)
			if err != nil {
				break
			}
			snap = next
		}
		off += 4 + flen
		frames++
	}
	if snap == nil {
		return nil, 0, 0, corrupt("empty snapshot chain")
	}
	return snap, frames, off, nil
}

// LoadSnapshotFile reads a snapshot from path in either on-disk form:
// a delta chain (written by SaveSnapshotChain) or a single full
// encoding (the legacy Save format).
func LoadSnapshotFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("summary: %w", err)
	}
	if len(data) >= 4 && string(data[:4]) == chainMagic {
		snap, _, _, err := decodeChain(data)
		return snap, err
	}
	return DecodeSnapshot(data)
}

// SaveSnapshotChain persists s to the chain at path: appending a delta
// frame against the chain's current state when one is resident and
// small enough under the policy, rewriting the file to a single full
// frame otherwise (first save, unreadable or foreign chain, policy
// trip). An unchanged snapshot writes nothing.
func SaveSnapshotChain(path string, s *Snapshot, p DeltaPolicy) (ChainStats, error) {
	if p.MaxDeltas <= 0 {
		p.MaxDeltas = DefaultDeltaPolicy.MaxDeltas
	}
	if p.MaxRatio <= 0 {
		p.MaxRatio = DefaultDeltaPolicy.MaxRatio
	}
	full := EncodeSnapshot(s)
	st := ChainStats{FullBytes: len(full)}

	var parent *Snapshot
	var frames, validEnd int
	fileLen := -1
	if data, rerr := os.ReadFile(path); rerr == nil {
		fileLen = len(data)
		//lint:ignore codecerr a corrupt chain intentionally degrades to writing a fresh full snapshot; nil parent is the handled outcome
		parent, frames, validEnd, _ = decodeChain(data)
	}
	if parent != nil {
		if bytes.Equal(EncodeSnapshot(parent), full) {
			st.Frames = frames
			return st, nil // nothing changed since the last save
		}
		if d := DiffSnapshot(parent, s); d != nil && frames-1 < p.MaxDeltas {
			frame := EncodeSnapshotDelta(d)
			if float64(len(frame)) <= p.MaxRatio*float64(len(full)) {
				if validEnd < fileLen {
					// A crash left a torn frame behind the valid prefix;
					// appending after it would bury the new frame behind
					// garbage the loader stops at.
					if err := os.Truncate(path, int64(validEnd)); err != nil {
						return st, fmt.Errorf("summary: %w", err)
					}
				}
				if err := appendFrame(path, frame); err != nil {
					return st, err
				}
				st.Frames = frames + 1
				st.AppendedBytes = 4 + len(frame)
				st.DeltaBytes = len(frame)
				return st, nil
			}
		}
	}

	// Full rewrite, atomically: header plus one full frame.
	buf := make([]byte, 0, chainHeaderSize+4+len(full))
	buf = append(buf, chainMagic...)
	buf = binary.BigEndian.AppendUint16(buf, chainVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(full)))
	buf = append(buf, full...)
	tmp, err := os.CreateTemp(filepath.Dir(path), ".chain-*")
	if err != nil {
		return st, fmt.Errorf("summary: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return st, fmt.Errorf("summary: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return st, fmt.Errorf("summary: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return st, fmt.Errorf("summary: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return st, fmt.Errorf("summary: %w", err)
	}
	st.Frames = 1
	st.WroteFull = true
	st.AppendedBytes = len(buf)
	return st, nil
}

// appendFrame appends one length-prefixed frame, synced so the frame
// is durable before the save is reported done (a crash mid-append
// leaves a torn tail the loader drops).
func appendFrame(path string, frame []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("summary: %w", err)
	}
	var lp [4]byte
	binary.BigEndian.PutUint32(lp[:], uint32(len(frame)))
	if _, err := f.Write(append(lp[:], frame...)); err != nil {
		f.Close()
		return fmt.Errorf("summary: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("summary: %w", err)
	}
	return f.Close()
}
