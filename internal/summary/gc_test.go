package summary

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// gcSnapshot writes a snapshot file into dir referencing the given
// keys, mimicking what cmd/ipcp -cache-dir leaves behind.
func gcSnapshot(t *testing.T, dir, name string, keys ...Key) {
	t.Helper()
	s := &Snapshot{ConfigKey: "cfg", GlobalsHash: "g", Procs: make(map[string]ProcStamp)}
	for i, k := range keys {
		s.Procs[string(rune('a'+i))] = ProcStamp{SourceHash: "h", Key: k}
	}
	path := filepath.Join(dir, "snapshot-"+name+".snap")
	if err := os.WriteFile(path, EncodeSnapshot(s), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestGCDirDeletesUnreferenced(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	kLive := KeyOf("live")
	kLive2 := KeyOf("live2")
	kDead := KeyOf("dead")
	kMem := KeyOf("in-memory")
	for _, k := range []Key{kLive, kLive2, kDead, kMem} {
		if err := store.Put(k, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	gcSnapshot(t, dir, "one", kLive)
	gcSnapshot(t, dir, "two", kLive2)

	st, err := GCDir(dir, []Key{kMem}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != 4 || st.Unreferenced != 1 || st.OverBudget != 0 || st.Kept != 3 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	if st.Snapshots != 2 || st.LiveKeys != 3 {
		t.Fatalf("live-set stats wrong: %+v", st)
	}
	if _, ok := store.Get(kDead); ok {
		t.Error("unreferenced entry survived GC")
	}
	for _, k := range []Key{kLive, kLive2, kMem} {
		if _, ok := store.Get(k); !ok {
			t.Errorf("live entry %s was collected", k)
		}
	}
	// Snapshot files themselves are never collected.
	snaps, _ := filepath.Glob(filepath.Join(dir, "snapshot-*.snap"))
	if len(snaps) != 2 {
		t.Errorf("GC touched snapshot files: %d left", len(snaps))
	}
}

// TestGCDirPinsSharedKeys pins that a stamp's SharedKey is part of the
// live set: collecting the shared half would force the procedure to
// re-analyze even though its flavor blob survived.
func TestGCDirPinsSharedKeys(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	kFlavor, kShared, kDead := KeyOf("flavor"), KeyOf("shared"), KeyOf("dead")
	for _, k := range []Key{kFlavor, kShared, kDead} {
		if err := store.Put(k, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	s := &Snapshot{ConfigKey: "cfg", GlobalsHash: "g", Procs: map[string]ProcStamp{
		"a": {SourceHash: "h", Key: kFlavor, SharedKey: kShared},
	}}
	if err := os.WriteFile(filepath.Join(dir, "snapshot-sk.snap"), EncodeSnapshot(s), 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := GCDir(dir, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.LiveKeys != 2 || st.Unreferenced != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	for _, k := range []Key{kFlavor, kShared} {
		if _, ok := store.Get(k); !ok {
			t.Errorf("pinned key %s was collected", k)
		}
	}
	if _, ok := store.Get(kDead); ok {
		t.Error("unreferenced entry survived GC")
	}
}

func TestGCDirBudgetEvictsColdestFirst(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100)
	var keys []Key
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 4; i++ {
		k := KeyOf("entry", string(rune('0'+i)))
		keys = append(keys, k)
		if err := store.Put(k, payload); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes, oldest first, so eviction order is fixed.
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(store.path(k), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	gcSnapshot(t, dir, "all", keys...)

	// Budget fits two entries: the two oldest must go, newest stay.
	st, err := GCDir(dir, nil, 250)
	if err != nil {
		t.Fatal(err)
	}
	if st.Unreferenced != 0 || st.OverBudget != 2 || st.Kept != 2 || st.KeptBytes != 200 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	for i, k := range keys {
		_, ok := store.Get(k)
		if wantAlive := i >= 2; ok != wantAlive {
			t.Errorf("entry %d alive=%v, want %v", i, ok, wantAlive)
		}
	}
}

func TestGCDirSkipsCorruptSnapshots(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf("entry")
	if err := store.Put(k, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snapshot-bad.snap"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := GCDir(dir, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The corrupt snapshot pins nothing, so the entry is unreferenced.
	if st.Snapshots != 0 || st.Unreferenced != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

// TestGCDirIgnoresForeignFiles pins the ownership rule: GC deletes
// only files it can prove are unreferenced store blobs. WAL segments,
// notes, badly named .ipcs files — anything else in the directory —
// must survive a sweep untouched.
func TestGCDirIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	kDead := KeyOf("dead")
	if err := store.Put(kDead, []byte("x")); err != nil {
		t.Fatal(err)
	}

	foreign := []string{
		"wal-0000000000000001.wal", // journal segment: WAL retirement owns it
		"notes.txt",                // a user's file
		"README",                   // no extension at all
		"not-hex-at-all.ipcs",      // .ipcs but not a key of ours
		"abcd.ipcs",                // valid hex, wrong length
		".chain-tmp123",            // an in-flight chain rewrite temp
	}
	for _, name := range foreign {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("foreign"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	st, err := GCDir(dir, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Only the one owned, unreferenced blob goes.
	if st.Scanned != 1 || st.Unreferenced != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	for _, name := range foreign {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("GC deleted foreign file %s: %v", name, err)
		}
	}
	if _, ok := store.Get(kDead); ok {
		t.Error("unreferenced entry survived GC")
	}
}

// TestGCDirPinsChainSnapshots checks a delta-chain snapshot file pins
// the keys of its folded (latest) state just like a legacy full
// encoding does.
func TestGCDirPinsChainSnapshots(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	kOld, kNew, kDead := KeyOf("old"), KeyOf("new"), KeyOf("dead")
	for _, k := range []Key{kOld, kNew, kDead} {
		if err := store.Put(k, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, "snapshot-chain.snap")
	parent := &Snapshot{ConfigKey: "cfg", GlobalsHash: "g", Procs: map[string]ProcStamp{
		"a": {SourceHash: "h1", Key: kOld},
	}}
	if _, err := SaveSnapshotChain(path, parent, DeltaPolicy{}); err != nil {
		t.Fatal(err)
	}
	child := &Snapshot{ConfigKey: "cfg", GlobalsHash: "g", Procs: map[string]ProcStamp{
		"a": {SourceHash: "h2", Key: kNew},
	}}
	if _, err := SaveSnapshotChain(path, child, DeltaPolicy{MaxDeltas: 8, MaxRatio: 1.0}); err != nil {
		t.Fatal(err)
	}

	st, err := GCDir(dir, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Snapshots != 1 {
		t.Fatalf("chain snapshot not consulted: %+v", st)
	}
	// The chain folds to the child: kNew is live, kOld and kDead are not.
	if _, ok := store.Get(kNew); !ok {
		t.Error("chain-referenced key was collected")
	}
	for _, k := range []Key{kOld, kDead} {
		if _, ok := store.Get(k); ok {
			t.Errorf("unreferenced key %s survived GC", k)
		}
	}
}
