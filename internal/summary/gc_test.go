package summary

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// gcSnapshot writes a snapshot file into dir referencing the given
// keys, mimicking what cmd/ipcp -cache-dir leaves behind.
func gcSnapshot(t *testing.T, dir, name string, keys ...Key) {
	t.Helper()
	s := &Snapshot{ConfigKey: "cfg", GlobalsHash: "g", Procs: make(map[string]ProcStamp)}
	for i, k := range keys {
		s.Procs[string(rune('a'+i))] = ProcStamp{SourceHash: "h", Key: k}
	}
	path := filepath.Join(dir, "snapshot-"+name+".snap")
	if err := os.WriteFile(path, EncodeSnapshot(s), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestGCDirDeletesUnreferenced(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	kLive := KeyOf("live")
	kLive2 := KeyOf("live2")
	kDead := KeyOf("dead")
	kMem := KeyOf("in-memory")
	for _, k := range []Key{kLive, kLive2, kDead, kMem} {
		if err := store.Put(k, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	gcSnapshot(t, dir, "one", kLive)
	gcSnapshot(t, dir, "two", kLive2)

	st, err := GCDir(dir, []Key{kMem}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Scanned != 4 || st.Unreferenced != 1 || st.OverBudget != 0 || st.Kept != 3 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	if st.Snapshots != 2 || st.LiveKeys != 3 {
		t.Fatalf("live-set stats wrong: %+v", st)
	}
	if _, ok := store.Get(kDead); ok {
		t.Error("unreferenced entry survived GC")
	}
	for _, k := range []Key{kLive, kLive2, kMem} {
		if _, ok := store.Get(k); !ok {
			t.Errorf("live entry %s was collected", k)
		}
	}
	// Snapshot files themselves are never collected.
	snaps, _ := filepath.Glob(filepath.Join(dir, "snapshot-*.snap"))
	if len(snaps) != 2 {
		t.Errorf("GC touched snapshot files: %d left", len(snaps))
	}
}

// TestGCDirPinsSharedKeys pins that a stamp's SharedKey is part of the
// live set: collecting the shared half would force the procedure to
// re-analyze even though its flavor blob survived.
func TestGCDirPinsSharedKeys(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	kFlavor, kShared, kDead := KeyOf("flavor"), KeyOf("shared"), KeyOf("dead")
	for _, k := range []Key{kFlavor, kShared, kDead} {
		if err := store.Put(k, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	s := &Snapshot{ConfigKey: "cfg", GlobalsHash: "g", Procs: map[string]ProcStamp{
		"a": {SourceHash: "h", Key: kFlavor, SharedKey: kShared},
	}}
	if err := os.WriteFile(filepath.Join(dir, "snapshot-sk.snap"), EncodeSnapshot(s), 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := GCDir(dir, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.LiveKeys != 2 || st.Unreferenced != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	for _, k := range []Key{kFlavor, kShared} {
		if _, ok := store.Get(k); !ok {
			t.Errorf("pinned key %s was collected", k)
		}
	}
	if _, ok := store.Get(kDead); ok {
		t.Error("unreferenced entry survived GC")
	}
}

func TestGCDirBudgetEvictsColdestFirst(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 100)
	var keys []Key
	base := time.Now().Add(-time.Hour)
	for i := 0; i < 4; i++ {
		k := KeyOf("entry", string(rune('0'+i)))
		keys = append(keys, k)
		if err := store.Put(k, payload); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes, oldest first, so eviction order is fixed.
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(store.path(k), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	gcSnapshot(t, dir, "all", keys...)

	// Budget fits two entries: the two oldest must go, newest stay.
	st, err := GCDir(dir, nil, 250)
	if err != nil {
		t.Fatal(err)
	}
	if st.Unreferenced != 0 || st.OverBudget != 2 || st.Kept != 2 || st.KeptBytes != 200 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	for i, k := range keys {
		_, ok := store.Get(k)
		if wantAlive := i >= 2; ok != wantAlive {
			t.Errorf("entry %d alive=%v, want %v", i, ok, wantAlive)
		}
	}
}

func TestGCDirSkipsCorruptSnapshots(t *testing.T) {
	dir := t.TempDir()
	store, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := KeyOf("entry")
	if err := store.Put(k, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snapshot-bad.snap"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := GCDir(dir, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The corrupt snapshot pins nothing, so the entry is unreferenced.
	if st.Snapshots != 0 || st.Unreferenced != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}
