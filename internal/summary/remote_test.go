package summary

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeBlobServer speaks the ipcpd blob protocol in-process, with a
// fault dial: the remote-store tests flip it between healthy serving
// and the failure modes a real network exhibits (server errors,
// truncated transfers, corrupted checksums, hangs) to pin that the
// client degrades to a miss and never serves damaged bytes.
type fakeBlobServer struct {
	mu    sync.Mutex
	blobs map[string][]byte
	mode  string // "" | "error" | "truncate" | "corrupt-sum" | "slow"
	srv   *httptest.Server
}

func newFakeBlobServer(t *testing.T) *fakeBlobServer {
	f := &fakeBlobServer{blobs: make(map[string][]byte)}
	f.srv = httptest.NewServer(http.HandlerFunc(f.handle))
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeBlobServer) URL() string { return f.srv.URL }

func (f *fakeBlobServer) setMode(mode string) {
	f.mu.Lock()
	f.mode = mode
	f.mu.Unlock()
}

func (f *fakeBlobServer) handle(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/v1/blob/")
	f.mu.Lock()
	mode := f.mode
	data, ok := f.blobs[key]
	f.mu.Unlock()

	switch mode {
	case "error":
		http.Error(w, "internal", http.StatusInternalServerError)
		return
	case "slow":
		time.Sleep(200 * time.Millisecond)
	}

	switch r.Method {
	case http.MethodGet:
		if !ok {
			http.NotFound(w, r)
			return
		}
		sum := sha256.Sum256(data)
		hexSum := hex.EncodeToString(sum[:])
		switch mode {
		case "truncate":
			// Advertise the full length but send half: the client's read
			// must fail rather than yield a short blob.
			w.Header().Set(blobSumHeader, hexSum)
			w.Header().Set("Content-Length", strconv.Itoa(len(data)))
			w.Write(data[:len(data)/2])
			return
		case "corrupt-sum":
			w.Header().Set(blobSumHeader, strings.Repeat("0", 64))
		default:
			w.Header().Set(blobSumHeader, hexSum)
		}
		w.Write(data)
	case http.MethodPut:
		body := new(bytes.Buffer)
		body.ReadFrom(r.Body)
		if want := r.Header.Get(blobSumHeader); want != "" {
			sum := sha256.Sum256(body.Bytes())
			if !strings.EqualFold(want, hex.EncodeToString(sum[:])) {
				http.Error(w, "checksum mismatch", http.StatusBadRequest)
				return
			}
		}
		f.mu.Lock()
		f.blobs[key] = body.Bytes()
		f.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	}
}

// TestRemoteStoreFaultsDegradeToMiss drives every failure mode through
// Get: each must return a miss and count an error — and once the fault
// clears, the blob must come back intact, proving no mode corrupted
// either side.
func TestRemoteStoreFaultsDegradeToMiss(t *testing.T) {
	f := newFakeBlobServer(t)
	s := NewRemoteStore(f.URL())
	s.Client.Timeout = 100 * time.Millisecond // makes "slow" a transport fault

	k := KeyOf("fault")
	val := []byte("the one true payload")
	if err := s.Put(k, val); err != nil {
		t.Fatal(err)
	}

	for i, mode := range []string{"error", "truncate", "corrupt-sum", "slow"} {
		f.setMode(mode)
		before := s.Stats().Errors
		v, ok := s.Get(k)
		if ok {
			t.Fatalf("mode %q: Get returned ok with %q", mode, v)
		}
		if got := s.Stats().Errors; got != before+1 {
			t.Fatalf("mode %q: errors = %d, want %d", mode, got, before+1)
		}
		if got := s.Stats().Errors; got != int64(i+1) {
			t.Fatalf("mode %q: cumulative errors = %d, want %d", mode, got, i+1)
		}
	}

	f.setMode("")
	if v, ok := s.Get(k); !ok || !bytes.Equal(v, val) {
		t.Fatalf("after faults cleared: got %q, %v; want %q, true", v, ok, val)
	}
	st := s.Stats()
	if st.Misses != 0 || st.Hits != 1 {
		t.Fatalf("stats = %+v: faults must count as errors, not misses", st)
	}
}

// TestRemoteStorePutFaults pins that a failed Put reports the error,
// counts it, and leaves the server's prior blob (if any) untouched.
func TestRemoteStorePutFaults(t *testing.T) {
	f := newFakeBlobServer(t)
	s := NewRemoteStore(f.URL())

	k := KeyOf("putfault")
	if err := s.Put(k, []byte("original")); err != nil {
		t.Fatal(err)
	}
	f.setMode("error")
	if err := s.Put(k, []byte("replacement")); err == nil {
		t.Fatal("Put against a 500 server succeeded")
	}
	if st := s.Stats(); st.Errors != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v, want 1 error and 1 successful put", st)
	}
	f.setMode("")
	if v, ok := s.Get(k); !ok || string(v) != "original" {
		t.Fatalf("blob after failed overwrite: %q, %v", v, ok)
	}
}

// TestRemoteStoreURLNormalization pins the constructor's tolerance for
// the obvious spellings of the same endpoint.
func TestRemoteStoreURLNormalization(t *testing.T) {
	f := newFakeBlobServer(t)
	k := KeyOf("norm")
	if err := NewRemoteStore(f.URL()).Put(k, []byte("v")); err != nil {
		t.Fatal(err)
	}
	for _, base := range []string{
		f.URL(),
		f.URL() + "/",
		f.URL() + "/v1/blob",
		strings.TrimPrefix(f.URL(), "http://"), // bare host:port
	} {
		s := NewRemoteStore(base)
		if v, ok := s.Get(k); !ok || string(v) != "v" {
			t.Errorf("base %q: got %q, %v", base, v, ok)
		}
	}
}
