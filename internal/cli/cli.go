// Package cli holds the argument-handling plumbing the command-line
// drivers (cmd/ipcp, cmd/mfc, cmd/tables) share: resolving the input
// program from either a -suite name or a file argument, and uniform
// fatal-error exits.
package cli

import (
	"fmt"
	"os"
	"strings"

	"ipcp"
	"ipcp/internal/suite"
)

// Source resolves the program source a driver operates on: the named
// generated suite program when suiteName is non-empty, otherwise the
// single file argument. The returned name is the suite name or file
// path, for messages.
func Source(suiteName string, scale int, args []string) (src, name string, err error) {
	if suiteName != "" {
		p := suite.Generate(suiteName, scale)
		if p == nil {
			return "", "", fmt.Errorf("unknown suite program %q (have: %s)",
				suiteName, strings.Join(suite.Names(), ", "))
		}
		return p.Source, suiteName, nil
	}
	if len(args) != 1 {
		return "", "", fmt.Errorf("expected one input: file.f (or -suite name)")
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return "", "", err
	}
	return string(data), args[0], nil
}

// Load is Source followed by ipcp.Load.
func Load(suiteName string, scale int, args []string) (*ipcp.Program, string, error) {
	src, name, err := Source(suiteName, scale, args)
	if err != nil {
		return nil, "", err
	}
	prog, err := ipcp.Load(src)
	return prog, name, err
}

// Fatal prints "tool: err" to stderr and exits with status 1.
func Fatal(tool string, err error) {
	fmt.Fprintln(os.Stderr, tool+":", err)
	os.Exit(1)
}
