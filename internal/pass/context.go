package pass

import (
	"fmt"
	"sync"
	"time"

	"ipcp/internal/analysis/callgraph"
	"ipcp/internal/analysis/modref"
	"ipcp/internal/ir"
)

// Context is the shared state a pipeline runs over: the current
// program, lazily built callgraph and mod/ref summaries, the fact
// cache, and the accumulated pass trace. One Context serves one
// pipeline run; the lazy caches are additionally safe for concurrent
// readers (TransformedSource shares a Context across goroutines).
type Context struct {
	// Debug makes the runner verify the IR after every non-composite
	// pass and fail fast naming the pass that corrupted it.
	Debug bool

	// Cancel, when non-nil, is polled by the runner before every
	// non-composite pass (and by long-running passes at finer grain —
	// the interprocedural solver checks it per work item). A non-nil
	// return aborts the pipeline with that error; drivers wire a
	// context.Context's deadline in through it. Nil means the run is
	// uncancellable, which costs nothing on the hot path.
	Cancel func() error

	mu    sync.Mutex
	prog  *ir.Program
	cg    *callgraph.Graph
	mods  *modref.Summary
	facts map[Fact]any

	trace     []Stat
	reg       *Registry
	round     int
	resolving map[Fact]bool
}

// NewContext wraps a program for pipeline execution.
func NewContext(prog *ir.Program) *Context {
	return &Context{
		prog:      prog,
		facts:     make(map[Fact]any),
		resolving: make(map[Fact]bool),
	}
}

// NewContextWith wraps a program whose callgraph and mod/ref summaries
// were already built (the incremental driver computes both to decide
// summary validity before the pipeline runs). cg and mods must describe
// prog in its current — pre-SSA — form; either may be nil to fall back
// to lazy construction. SetProgram drops them like any other cache.
func NewContextWith(prog *ir.Program, cg *callgraph.Graph, mods *modref.Summary) *Context {
	ctx := NewContext(prog)
	ctx.cg = cg
	ctx.mods = mods
	return ctx
}

// Program returns the current program.
func (ctx *Context) Program() *ir.Program {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	return ctx.prog
}

// SetProgram replaces the program, dropping the callgraph/modref
// caches and every fact: a different program identity makes all of
// them stale. Passes that rebuild the program (DCE, cloning, inlining)
// call this instead of enumerating what they broke.
func (ctx *Context) SetProgram(p *ir.Program) {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	ctx.prog = p
	ctx.cg = nil
	ctx.mods = nil
	ctx.facts = make(map[Fact]any)
}

// CallGraph returns the callgraph for the current program, building it
// on first use. Note the callgraph must be built before SSA
// construction rewrites call instructions — callers that need both
// take the callgraph first (the propagate pass does).
func (ctx *Context) CallGraph() *callgraph.Graph {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	if ctx.cg == nil {
		ctx.cg = callgraph.Build(ctx.prog)
	}
	return ctx.cg
}

// ModRef returns the mod/ref summary for the current program, building
// it (and the callgraph it depends on) on first use.
func (ctx *Context) ModRef() *modref.Summary {
	ctx.mu.Lock()
	defer ctx.mu.Unlock()
	if ctx.mods == nil {
		if ctx.cg == nil {
			ctx.cg = callgraph.Build(ctx.prog)
		}
		ctx.mods = modref.Compute(ctx.prog, ctx.cg)
	}
	return ctx.mods
}

// Fact returns a cached fact and whether it is present.
func (ctx *Context) Fact(f Fact) (any, bool) {
	v, ok := ctx.facts[f]
	return v, ok
}

// SetFact publishes a fact into the cache.
func (ctx *Context) SetFact(f Fact, v any) {
	ctx.facts[f] = v
}

// Invalidate drops the named facts (All drops everything).
func (ctx *Context) Invalidate(facts ...Fact) {
	for _, f := range facts {
		if f == All {
			ctx.facts = make(map[Fact]any)
			return
		}
		delete(ctx.facts, f)
	}
}

// Require ensures a fact is present, running its registered provider
// if it is missing. A missing provider is ErrNoProvider; a provider
// that transitively requires its own fact is a cycle error.
func (ctx *Context) Require(f Fact) error {
	if _, ok := ctx.facts[f]; ok {
		return nil
	}
	prov := ctx.reg.Provider(f)
	if prov == nil {
		return fmt.Errorf("fact %q: %w", f, ErrNoProvider)
	}
	if ctx.resolving[f] {
		return fmt.Errorf("fact %q: provider %q requires its own fact (cycle)", f, prov.Name())
	}
	ctx.resolving[f] = true
	defer delete(ctx.resolving, f)
	if _, err := ctx.Exec(prov); err != nil {
		return err
	}
	if _, ok := ctx.facts[f]; !ok {
		return fmt.Errorf("fact %q: provider %q ran but did not produce it", f, prov.Name())
	}
	return nil
}

// Exec runs one pass with the full runner protocol: requirement
// resolution, instrumentation, invalidation, and (in debug mode) IR
// verification. Composite passes (Pipeline, Fixpoint) orchestrate
// their members through Exec and are not themselves instrumented
// per-member semantics aside; Fixpoint appends its own summary Stat.
func (ctx *Context) Exec(p Pass) (bool, error) {
	if err := ctx.Canceled(); err != nil {
		return false, err
	}
	if _, ok := p.(compositePass); ok {
		return p.Run(ctx)
	}
	for _, f := range p.Requires() {
		if err := ctx.Require(f); err != nil {
			return false, fmt.Errorf("pass %q: %w", p.Name(), err)
		}
	}
	st := ctx.beginStat(p.Name(), ctx.round)
	changed, err := p.Run(ctx)
	if err != nil {
		return changed, fmt.Errorf("pass %q: %w", p.Name(), err)
	}
	st.Changed = changed
	ctx.endStat(st)
	if changed {
		ctx.Invalidate(p.Invalidates()...)
	}
	if ctx.Debug {
		if verr := ir.VerifyProgram(ctx.Program()); verr != nil {
			return changed, fmt.Errorf("pass %q corrupted the IR: %w", p.Name(), verr)
		}
	}
	return changed, nil
}

// Canceled polls the Context's cancellation hook (nil when none is
// installed). Long-running passes call it from their inner loops.
func (ctx *Context) Canceled() error {
	if ctx.Cancel == nil {
		return nil
	}
	return ctx.Cancel()
}

// PassStats returns the accumulated trace in execution order.
func (ctx *Context) PassStats() []Stat {
	out := make([]Stat, len(ctx.trace))
	copy(out, ctx.trace)
	return out
}

// beginStat opens a trace entry: before-counters and start time.
func (ctx *Context) beginStat(name string, round int) *Stat {
	st := &Stat{Pass: name, Round: round}
	st.ProcsBefore, st.BlocksBefore, st.InstrsBefore = countIR(ctx.Program())
	st.start = time.Now()
	return st
}

// endStat closes a trace entry — after-counters, wall time — and
// appends it. Fixpoint summaries close after their member entries, so
// the trace reads in completion order.
func (ctx *Context) endStat(st *Stat) {
	st.Nanos = time.Since(st.start).Nanoseconds()
	st.start = time.Time{} // only Nanos carries timing; keep Stat DeepEqual-comparable
	st.Procs, st.Blocks, st.Instrs = countIR(ctx.Program())
	ctx.trace = append(ctx.trace, *st)
}

// EnsureSSA builds SSA form for every procedure that is not yet in it,
// using the Context's mod/ref oracle for call-site definition points.
// It is the standard prelude for per-procedure passes like SCCP, and
// reports whether it changed the program (so callers can propagate an
// honest changed flag).
func EnsureSSA(ctx *Context) bool {
	oracle := ctx.ModRef().Oracle()
	changed := false
	for _, proc := range ctx.Program().Procs {
		if proc.EntryValues == nil {
			proc.BuildSSA(oracle)
			changed = true
		}
	}
	return changed
}
