package pass

import (
	"fmt"
	"strings"
	"time"

	"ipcp/internal/ir"
)

// Stat is one trace entry: a single execution of a leaf pass, or the
// summary line of a Fixpoint. Every field except Nanos is a pure
// function of the program and the pass composition — the determinism
// suite compares whole traces with Nanos normalized to zero.
type Stat struct {
	// Pass is the pass (or fixpoint) name.
	Pass string

	// Round is the 1-based fixpoint round this execution ran in, 0 for
	// executions outside any fixpoint (a Fixpoint summary records the
	// round of its enclosing fixpoint, if any).
	Round int

	// Changed reports whether the execution transformed the program.
	Changed bool

	// Fixpoint marks a summary entry for a whole Fixpoint run; Rounds
	// is then the number of rounds whose body reported a change.
	Fixpoint bool
	Rounds   int

	// IR size before and after the execution.
	ProcsBefore, BlocksBefore, InstrsBefore int
	Procs, Blocks, Instrs                   int

	// Nanos is wall-clock time — the one nondeterministic field,
	// excluded from determinism comparisons.
	Nanos int64

	start time.Time
}

// countIR sizes a program for trace deltas.
func countIR(p *ir.Program) (procs, blocks, instrs int) {
	if p == nil {
		return 0, 0, 0
	}
	procs = len(p.Procs)
	for _, proc := range p.Procs {
		blocks += len(proc.Blocks)
		instrs += proc.ElidedPhis
		for _, b := range proc.Blocks {
			instrs += len(b.Instrs)
		}
	}
	return procs, blocks, instrs
}

// FormatStats renders a trace as an aligned per-pass table: one row
// per pass name in first-execution order, aggregating runs, changed
// rounds, IR deltas, and wall time.
func FormatStats(stats []Stat) string {
	type agg struct {
		name    string
		runs    int
		rounds  int
		changed int
		dInstrs int
		dBlocks int
		nanos   int64
	}
	var order []*agg
	byName := make(map[string]*agg)
	for _, st := range stats {
		a := byName[st.Pass]
		if a == nil {
			a = &agg{name: st.Pass}
			byName[st.Pass] = a
			order = append(order, a)
		}
		a.runs++
		a.rounds += st.Rounds
		if st.Changed {
			a.changed++
		}
		// A fixpoint's summary row spans its members' rows, so columns
		// are per-row facts, not a summable breakdown.
		a.dInstrs += st.Instrs - st.InstrsBefore
		a.dBlocks += st.Blocks - st.BlocksBefore
		a.nanos += st.Nanos
	}

	headers := []string{"pass", "runs", "rounds", "changed", "Δinstrs", "Δblocks", "time"}
	rows := make([][]string, 0, len(order))
	for _, a := range order {
		rows = append(rows, []string{
			a.name,
			fmt.Sprintf("%d", a.runs),
			fmt.Sprintf("%d", a.rounds),
			fmt.Sprintf("%d", a.changed),
			fmt.Sprintf("%+d", a.dInstrs),
			fmt.Sprintf("%+d", a.dBlocks),
			time.Duration(a.nanos).Round(time.Microsecond).String(),
		})
	}

	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len([]rune(h))
	}
	for _, row := range rows {
		for i, cell := range row {
			if n := len([]rune(cell)); n > widths[i] {
				widths[i] = n
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			pad := widths[i] - len([]rune(cell))
			if i == 0 {
				sb.WriteString(cell)
				sb.WriteString(strings.Repeat(" ", pad))
			} else {
				sb.WriteString(strings.Repeat(" ", pad))
				sb.WriteString(cell)
			}
		}
		sb.WriteString("\n")
	}
	line(headers)
	total := len(headers) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteString("\n")
	for _, row := range rows {
		line(row)
	}
	return sb.String()
}
