// Package pass implements the unified pass manager every analysis
// composition in this repository runs on: a Pass interface over a
// shared Context, a Registry that maps analysis facts to the passes
// that provide them, a Pipeline runner, and a Fixpoint combinator with
// bounded rounds.
//
// Before this package existed, every iterate-to-fixpoint composition
// was a bespoke driver: core.Analyze hard-coded its stages, complete
// propagation hand-rolled its propagate→DCE loop, procedure cloning
// hand-rolled its clone→reanalyze loop. Padhye & Khedker's value-context
// framework argues that a uniform analysis-driver abstraction is what
// makes interprocedural frameworks extensible; this package is that
// abstraction. A composition is now a declared Pipeline of passes, and
// the runner supplies uniformly what each driver used to reimplement:
//
//   - requirement resolution: a pass declares the facts it Requires,
//     and the runner executes the registered provider for any fact the
//     Context does not currently hold;
//   - invalidation: a pass that reports a change drops the facts it
//     Invalidates (and replacing the program drops everything);
//   - instrumentation: every pass execution is timed and its IR delta
//     (procedures, blocks, instructions before/after) recorded into a
//     Trace, exposed through core.Stats and ipcp.Report;
//   - verification: in debug mode the runner calls ir.VerifyProgram
//     after every pass and fails fast naming the offending pass;
//   - fixpoint safety: Fixpoint bounds its rounds, and a body that
//     still reports changes at the cap is an ErrNoFixpoint error (a
//     misbehaving pass cannot hang a complete-propagation run).
//
// Determinism contract: every field of every Stat except the
// wall-clock Nanos is a pure function of the program and the pass
// composition, so traces are bit-identical between sequential and
// parallel runs of the same configuration once Nanos is zeroed. The
// determinism suite asserts exactly that.
package pass

import (
	"errors"
	"fmt"
	"strings"
)

// Fact names an analysis artifact a pass can provide, require, or
// invalidate — "ipcp-result", "sccp", "valnum". Facts are the currency
// of the requirement-resolution machinery: requiring a fact the Context
// does not hold runs the registered provider pass first.
type Fact string

// All is the wildcard fact: a pass that Invalidates All drops every
// cached fact when it reports a change. Transforms that mutate the
// program in place use it; transforms that replace the program get the
// same effect from Context.SetProgram.
const All Fact = "*"

// Pass is one unit of analysis or transformation over a Context's
// program.
type Pass interface {
	// Name identifies the pass in traces and error messages.
	Name() string

	// Requires lists the facts that must be present in the Context
	// before Run; the runner executes registered providers for any
	// that are missing.
	Requires() []Fact

	// Invalidates lists the facts destroyed when Run reports a change
	// (All for everything). Facts a pass leaves intact survive into
	// the next pass — that is what makes caches like the
	// callgraph/modref pair reusable across a pipeline.
	Invalidates() []Fact

	// Run executes the pass. changed reports whether the program was
	// transformed (analyses that only publish facts return false; a
	// pass that builds SSA in place has changed the program and says
	// so). A non-nil error aborts the whole pipeline.
	Run(ctx *Context) (changed bool, err error)
}

// ErrNoFixpoint reports a Fixpoint whose body still claimed changes
// when the round cap was reached.
var ErrNoFixpoint = errors.New("fixpoint not reached")

// ErrNoProvider reports a required fact with no registered provider.
var ErrNoProvider = errors.New("no provider registered")

// Registry maps facts to the passes that provide them. A registry is
// per-pipeline (passes carry per-run state), not global.
type Registry struct {
	providers map[Fact]Pass
	order     []Pass
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{providers: make(map[Fact]Pass)}
}

// Register adds a pass, optionally as the provider of the given facts.
func (r *Registry) Register(p Pass, provides ...Fact) {
	r.order = append(r.order, p)
	for _, f := range provides {
		r.providers[f] = p
	}
}

// Provider returns the registered provider for a fact (nil if none).
func (r *Registry) Provider(f Fact) Pass {
	if r == nil {
		return nil
	}
	return r.providers[f]
}

// Passes returns the registered passes in registration order.
func (r *Registry) Passes() []Pass {
	if r == nil {
		return nil
	}
	return r.order
}

// Run executes root over ctx with reg supplying fact providers. It is
// the entry point every driver uses:
//
//	ctx := pass.NewContext(irp)
//	err := pass.Run(ctx, reg, pass.NewPipeline("complete", fixpoint))
func Run(ctx *Context, reg *Registry, root Pass) error {
	ctx.reg = reg
	_, err := ctx.Exec(root)
	return err
}

// Pipeline runs a fixed sequence of passes. It implements Pass, so
// pipelines nest and serve as Fixpoint bodies. Its changed result is
// the OR of its members'.
type Pipeline struct {
	name   string
	passes []Pass
}

// NewPipeline builds a named pipeline.
func NewPipeline(name string, passes ...Pass) *Pipeline {
	return &Pipeline{name: name, passes: passes}
}

func (pl *Pipeline) Name() string        { return pl.name }
func (pl *Pipeline) Requires() []Fact    { return nil }
func (pl *Pipeline) Invalidates() []Fact { return nil }
func (pl *Pipeline) composite()          {}
func (pl *Pipeline) Passes() []Pass      { return pl.passes }

// Run executes the member passes in order, stopping at the first
// error.
func (pl *Pipeline) Run(ctx *Context) (bool, error) {
	changed := false
	for _, p := range pl.passes {
		ch, err := ctx.Exec(p)
		if err != nil {
			return changed, err
		}
		changed = changed || ch
	}
	return changed, nil
}

// Fixpoint repeats a body pass until it reports no change, bounded by
// a round cap. A body still reporting changes at the cap either errors
// (the default: a pass claiming changed=true forever is a bug and must
// not hang the driver) or stops silently (budgeted mode, for
// transformations like procedure cloning where the cap is a quality
// budget rather than a convergence bound).
type Fixpoint struct {
	name      string
	body      Pass
	maxRounds int
	errOnCap  bool
	rounds    int
}

// DefaultMaxRounds bounds a Fixpoint whose constructor got a
// non-positive cap.
const DefaultMaxRounds = 10

// NewFixpoint builds a fixpoint that errors with ErrNoFixpoint if the
// body still reports changes after maxRounds rounds (<= 0 means
// DefaultMaxRounds).
func NewFixpoint(name string, body Pass, maxRounds int) *Fixpoint {
	if maxRounds <= 0 {
		maxRounds = DefaultMaxRounds
	}
	return &Fixpoint{name: name, body: body, maxRounds: maxRounds, errOnCap: true}
}

// NewBudgetedFixpoint builds a fixpoint that stops silently at the
// round cap: the cap is a budget, not a convergence guarantee.
func NewBudgetedFixpoint(name string, body Pass, maxRounds int) *Fixpoint {
	fp := NewFixpoint(name, body, maxRounds)
	fp.errOnCap = false
	return fp
}

func (f *Fixpoint) Name() string        { return f.name }
func (f *Fixpoint) Requires() []Fact    { return nil }
func (f *Fixpoint) Invalidates() []Fact { return nil }
func (f *Fixpoint) composite()          {}
func (f *Fixpoint) Body() Pass          { return f.body }
func (f *Fixpoint) MaxRounds() int      { return f.maxRounds }

// Rounds reports how many rounds of the last Run changed the program —
// the number the paper's "DCE rounds" column counts.
func (f *Fixpoint) Rounds() int { return f.rounds }

// Run iterates the body. Round numbering in the trace is 1-based; a
// round whose body reports no change ends the iteration (and is not
// counted in Rounds).
func (f *Fixpoint) Run(ctx *Context) (bool, error) {
	f.rounds = 0
	changedAny := false
	outer := ctx.round
	defer func() { ctx.round = outer }()

	st := ctx.beginStat(f.name, outer)
	st.Fixpoint = true
	converged := false
	for round := 1; round <= f.maxRounds; round++ {
		ctx.round = round
		changed, err := ctx.Exec(f.body)
		if err != nil {
			return changedAny, err
		}
		if !changed {
			converged = true
			break
		}
		changedAny = true
		f.rounds++
	}
	ctx.round = outer
	st.Rounds = f.rounds
	st.Changed = changedAny
	ctx.endStat(st)
	if !converged && f.errOnCap {
		return changedAny, fmt.Errorf("fixpoint %q: pass %q still reports changes after %d rounds: %w",
			f.name, f.body.Name(), f.maxRounds, ErrNoFixpoint)
	}
	return changedAny, nil
}

// composite marks passes that orchestrate other passes; the runner
// skips per-pass instrumentation and debug verification for them
// (their members get both).
type compositePass interface {
	Pass
	composite()
}

// Describe renders a pass composition as one line: pipelines show
// their members, fixpoints their cap and body, leaf passes their fact
// requirements.
func Describe(p Pass) string {
	switch p := p.(type) {
	case *Pipeline:
		names := make([]string, len(p.passes))
		for i, m := range p.passes {
			names[i] = Describe(m)
		}
		return fmt.Sprintf("%s(%s)", p.name, strings.Join(names, " -> "))
	case *Fixpoint:
		return fmt.Sprintf("fixpoint %s[<=%d rounds]{%s}", p.name, p.maxRounds, Describe(p.body))
	default:
		s := p.Name()
		if req := p.Requires(); len(req) > 0 {
			parts := make([]string, len(req))
			for i, f := range req {
				parts[i] = string(f)
			}
			s += fmt.Sprintf(" [requires %s]", strings.Join(parts, ", "))
		}
		return s
	}
}
