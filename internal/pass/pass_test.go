package pass

import (
	"errors"
	"strings"
	"testing"

	"ipcp/internal/ir"
	"ipcp/internal/ir/irbuild"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
)

// fakePass is a configurable leaf pass for exercising the runner.
type fakePass struct {
	name        string
	requires    []Fact
	invalidates []Fact
	run         func(ctx *Context) (bool, error)
}

func (p *fakePass) Name() string        { return p.name }
func (p *fakePass) Requires() []Fact    { return p.requires }
func (p *fakePass) Invalidates() []Fact { return p.invalidates }
func (p *fakePass) Run(ctx *Context) (bool, error) {
	if p.run == nil {
		return false, nil
	}
	return p.run(ctx)
}

func buildIR(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sema.Analyze(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return irbuild.Build(sp)
}

const twoProcSrc = `
PROGRAM MAIN
  INTEGER I
  I = 1
  CALL SHOW(I)
END

SUBROUTINE SHOW(N)
  INTEGER N
  WRITE(*,*) N
END
`

func TestFixpointConverges(t *testing.T) {
	runs := 0
	body := &fakePass{name: "body", run: func(*Context) (bool, error) {
		runs++
		return runs <= 2, nil // rounds 1 and 2 change, round 3 converges
	}}
	fix := NewFixpoint("fx", body, 0)
	ctx := NewContext(nil)
	if err := Run(ctx, nil, fix); err != nil {
		t.Fatalf("converging fixpoint errored: %v", err)
	}
	if fix.Rounds() != 2 {
		t.Fatalf("Rounds() = %d, want 2", fix.Rounds())
	}
	if fix.MaxRounds() != DefaultMaxRounds {
		t.Fatalf("MaxRounds() = %d, want DefaultMaxRounds", fix.MaxRounds())
	}

	trace := ctx.PassStats()
	if len(trace) != 4 {
		t.Fatalf("trace has %d entries, want 3 body runs + 1 summary: %+v", len(trace), trace)
	}
	for i := 0; i < 3; i++ {
		st := trace[i]
		if st.Pass != "body" || st.Round != i+1 {
			t.Fatalf("trace[%d] = %+v, want body round %d", i, st, i+1)
		}
		if wantChanged := i < 2; st.Changed != wantChanged {
			t.Fatalf("trace[%d].Changed = %v, want %v", i, st.Changed, wantChanged)
		}
	}
	sum := trace[3]
	if !sum.Fixpoint || sum.Pass != "fx" || sum.Rounds != 2 || !sum.Changed {
		t.Fatalf("fixpoint summary = %+v, want Fixpoint fx with 2 changed rounds", sum)
	}
	if !sum.start.IsZero() {
		t.Fatal("Stat retained a live start time; traces must be DeepEqual-comparable")
	}
}

func TestFixpointCapError(t *testing.T) {
	body := &fakePass{name: "always", run: func(*Context) (bool, error) { return true, nil }}
	fix := NewFixpoint("cap", body, 3)
	err := Run(NewContext(nil), nil, fix)
	if !errors.Is(err, ErrNoFixpoint) {
		t.Fatalf("err = %v, want ErrNoFixpoint", err)
	}
	if !strings.Contains(err.Error(), `"always"`) || !strings.Contains(err.Error(), "3 rounds") {
		t.Fatalf("error does not name the misbehaving pass and cap: %v", err)
	}
	if fix.Rounds() != 3 {
		t.Fatalf("Rounds() = %d, want 3 (every round changed)", fix.Rounds())
	}
}

func TestBudgetedFixpointStopsSilently(t *testing.T) {
	body := &fakePass{name: "always", run: func(*Context) (bool, error) { return true, nil }}
	fix := NewBudgetedFixpoint("budget", body, 3)
	if err := Run(NewContext(nil), nil, fix); err != nil {
		t.Fatalf("budgeted fixpoint errored at its cap: %v", err)
	}
	if fix.Rounds() != 3 {
		t.Fatalf("Rounds() = %d, want 3", fix.Rounds())
	}
}

func TestRequireRunsProviderOnce(t *testing.T) {
	providerRuns := 0
	provider := &fakePass{name: "provider", run: func(ctx *Context) (bool, error) {
		providerRuns++
		ctx.SetFact("f", providerRuns)
		return false, nil
	}}
	sawFact := 0
	consumer := func(name string) *fakePass {
		return &fakePass{name: name, requires: []Fact{"f"}, run: func(ctx *Context) (bool, error) {
			if v, ok := ctx.Fact("f"); ok {
				sawFact = v.(int)
			}
			return false, nil
		}}
	}
	reg := NewRegistry()
	reg.Register(provider, "f")
	ctx := NewContext(nil)
	root := NewPipeline("p", consumer("first"), consumer("second"))
	if err := Run(ctx, reg, root); err != nil {
		t.Fatal(err)
	}
	if providerRuns != 1 {
		t.Fatalf("provider ran %d times, want 1 (fact cached between consumers)", providerRuns)
	}
	if sawFact != 1 {
		t.Fatalf("consumer saw fact %d, want 1", sawFact)
	}
	names := make([]string, 0, 3)
	for _, st := range ctx.PassStats() {
		names = append(names, st.Pass)
	}
	if got := strings.Join(names, ","); got != "provider,first,second" {
		t.Fatalf("trace order %q, want provider,first,second", got)
	}
}

func TestRequireMissingProvider(t *testing.T) {
	consumer := &fakePass{name: "needs-ghost", requires: []Fact{"ghost"}}
	err := Run(NewContext(nil), NewRegistry(), NewPipeline("p", consumer))
	if !errors.Is(err, ErrNoProvider) {
		t.Fatalf("err = %v, want ErrNoProvider", err)
	}
	if !strings.Contains(err.Error(), `"needs-ghost"`) {
		t.Fatalf("error does not name the requiring pass: %v", err)
	}
}

func TestRequireProviderCycle(t *testing.T) {
	provider := &fakePass{name: "selfish", requires: []Fact{"f"}}
	reg := NewRegistry()
	reg.Register(provider, "f")
	consumer := &fakePass{name: "consumer", requires: []Fact{"f"}}
	err := Run(NewContext(nil), reg, NewPipeline("p", consumer))
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("err = %v, want a cycle error", err)
	}
}

func TestRequireProviderMustProduce(t *testing.T) {
	provider := &fakePass{name: "lazy"} // registered for "f" but never publishes it
	reg := NewRegistry()
	reg.Register(provider, "f")
	consumer := &fakePass{name: "consumer", requires: []Fact{"f"}}
	err := Run(NewContext(nil), reg, NewPipeline("p", consumer))
	if err == nil || !strings.Contains(err.Error(), "did not produce") {
		t.Fatalf("err = %v, want a did-not-produce error", err)
	}
}

func TestInvalidationOnChange(t *testing.T) {
	ctx := NewContext(nil)
	ctx.SetFact("a", 1)
	ctx.SetFact("b", 2)

	// A pass that reports no change keeps its invalidation set intact.
	noop := &fakePass{name: "noop", invalidates: []Fact{"a"}}
	if err := Run(ctx, nil, NewPipeline("p", noop)); err != nil {
		t.Fatal(err)
	}
	if _, ok := ctx.Fact("a"); !ok {
		t.Fatal("unchanged pass invalidated its fact")
	}

	// A changing pass drops exactly what it declares.
	mut := &fakePass{name: "mut", invalidates: []Fact{"a"},
		run: func(*Context) (bool, error) { return true, nil }}
	if err := Run(ctx, nil, NewPipeline("p", mut)); err != nil {
		t.Fatal(err)
	}
	if _, ok := ctx.Fact("a"); ok {
		t.Fatal("fact a survived an invalidating change")
	}
	if _, ok := ctx.Fact("b"); !ok {
		t.Fatal("fact b was dropped without being declared")
	}

	// The wildcard drops everything.
	ctx.SetFact("a", 1)
	wipe := &fakePass{name: "wipe", invalidates: []Fact{All},
		run: func(*Context) (bool, error) { return true, nil }}
	if err := Run(ctx, nil, NewPipeline("p", wipe)); err != nil {
		t.Fatal(err)
	}
	if _, ok := ctx.Fact("a"); ok {
		t.Fatal("fact a survived Invalidates(All)")
	}
	if _, ok := ctx.Fact("b"); ok {
		t.Fatal("fact b survived Invalidates(All)")
	}
}

func TestSetProgramDropsCaches(t *testing.T) {
	prog := buildIR(t, twoProcSrc)
	ctx := NewContext(prog)
	g1 := ctx.CallGraph()
	ctx.SetFact("f", 1)

	ctx.SetProgram(prog) // same pointer: identity change is what matters
	if _, ok := ctx.Fact("f"); ok {
		t.Fatal("fact survived SetProgram")
	}
	if g2 := ctx.CallGraph(); g2 == g1 {
		t.Fatal("callgraph cache survived SetProgram")
	}
}

// TestDebugCatchesCorruptingPass is the seeded-fault proof of the debug
// verifier: a pass that breaks an IR invariant must abort the pipeline
// with an error naming that pass.
func TestDebugCatchesCorruptingPass(t *testing.T) {
	corrupt := &fakePass{name: "corrupt", run: func(ctx *Context) (bool, error) {
		ctx.Program().Procs[0].Entry = nil
		return true, nil
	}}

	// Without debug mode the corruption goes unnoticed by the runner.
	if err := Run(NewContext(buildIR(t, twoProcSrc)), nil, NewPipeline("p", corrupt)); err != nil {
		t.Fatalf("non-debug run errored: %v", err)
	}

	ctx := NewContext(buildIR(t, twoProcSrc))
	ctx.Debug = true
	err := Run(ctx, nil, NewPipeline("p", corrupt))
	if err == nil {
		t.Fatal("debug run did not catch the corrupting pass")
	}
	if !strings.Contains(err.Error(), `pass "corrupt" corrupted the IR`) {
		t.Fatalf("error does not name the corrupting pass: %v", err)
	}

	// And a well-behaved pass sails through with verification on.
	ctx = NewContext(buildIR(t, twoProcSrc))
	ctx.Debug = true
	honest := &fakePass{name: "honest", run: func(*Context) (bool, error) { return true, nil }}
	if err := Run(ctx, nil, NewPipeline("p", honest)); err != nil {
		t.Fatalf("debug verification rejected a well-formed program: %v", err)
	}
}

func TestEnsureSSA(t *testing.T) {
	ctx := NewContext(buildIR(t, twoProcSrc))
	if !EnsureSSA(ctx) {
		t.Fatal("first EnsureSSA reported no change on a pre-SSA program")
	}
	for _, proc := range ctx.Program().Procs {
		if proc.EntryValues == nil {
			t.Fatalf("%s not in SSA form after EnsureSSA", proc.Name)
		}
	}
	if EnsureSSA(ctx) {
		t.Fatal("second EnsureSSA claimed a change on an already-SSA program")
	}
	if err := ir.VerifyProgram(ctx.Program()); err != nil {
		t.Fatalf("SSA program fails verification: %v", err)
	}
}

func TestDescribe(t *testing.T) {
	fix := NewFixpoint("loop", &fakePass{name: "dce", requires: []Fact{"res"}}, 4)
	root := NewPipeline("all", &fakePass{name: "prop"}, fix)
	want := "all(prop -> fixpoint loop[<=4 rounds]{dce [requires res]})"
	if got := Describe(root); got != want {
		t.Fatalf("Describe = %q, want %q", got, want)
	}
}

func TestFormatStats(t *testing.T) {
	stats := []Stat{
		{Pass: "propagate", Round: 1, Changed: true, InstrsBefore: 10, Instrs: 14, BlocksBefore: 3, Blocks: 3, Nanos: 1500},
		{Pass: "dce", Round: 1, Changed: true, InstrsBefore: 14, Instrs: 9, BlocksBefore: 3, Blocks: 2, Nanos: 900},
		{Pass: "propagate", Round: 2, InstrsBefore: 9, Instrs: 9, BlocksBefore: 2, Blocks: 2, Nanos: 1100},
		{Pass: "complete", Fixpoint: true, Rounds: 1, Changed: true, InstrsBefore: 10, Instrs: 9, BlocksBefore: 3, Blocks: 2, Nanos: 4000},
	}
	out := FormatStats(stats)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header, rule, three aggregated rows
		t.Fatalf("table has %d lines, want 5:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "pass") || !strings.Contains(lines[0], "Δinstrs") {
		t.Fatalf("missing header: %q", lines[0])
	}
	var propRow string
	for _, l := range lines {
		if strings.HasPrefix(l, "propagate") {
			propRow = l
		}
	}
	if propRow == "" {
		t.Fatalf("no propagate row:\n%s", out)
	}
	fields := strings.Fields(propRow)
	// pass runs rounds changed Δinstrs Δblocks time
	if fields[1] != "2" || fields[3] != "1" || fields[4] != "+4" {
		t.Fatalf("propagate row %q: want 2 runs, 1 changed, +4 instrs", propRow)
	}
}
