package interp

import (
	"os"
	"path/filepath"
	"testing"

	"ipcp/internal/core"
	"ipcp/internal/core/jump"
	"ipcp/internal/ir"
	"ipcp/internal/ir/irbuild"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
	"ipcp/internal/suite"
)

// TestAnalysisSoundAgainstExecution is the differential oracle for the
// whole analyzer: for every benchmark, corpus, and random program, run
// the program under the interpreter and check that every member of
// every CONSTANTS(p) set matches the value actually observed at every
// invocation of p — the soundness contract of §2.
//
// ⊤ entries are checked too: a procedure whose formal stayed ⊤ must
// never have been called (the paper: "z retains the value ⊤ only if the
// procedure containing z is never called").
func TestAnalysisSoundAgainstExecution(t *testing.T) {
	sources := map[string]string{}
	for _, name := range suite.Names() {
		sources["suite/"+name] = suite.Generate(name, 2).Source
	}
	for seed := int64(1); seed <= 25; seed++ {
		p := suite.Random(seed, 6)
		sources[p.Name] = p.Source
	}
	corpus, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "*.f"))
	for _, path := range corpus {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sources["corpus/"+filepath.Base(path)] = string(data)
	}
	if len(sources) < 30 {
		t.Fatalf("only %d sources", len(sources))
	}

	configs := []core.Config{
		{Jump: jump.Polynomial, ReturnJFs: true, MOD: true},
		{Jump: jump.PassThrough, ReturnJFs: true, MOD: true, Complete: true},
		{Jump: jump.Polynomial, ReturnJFs: true, MOD: false},
		{Jump: jump.Literal, MOD: true},
	}

	for name, src := range sources {
		f, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sp, err := sema.Analyze(f)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		// Execute once per input seed on a fresh IR.
		type runObs struct{ res *Result }
		var runs []runObs
		var execProg *ir.Program
		for seed := int64(0); seed < 3; seed++ {
			prog := irbuild.Build(sp)
			res := Run(prog, Options{InputSeed: seed, Fuel: 500_000})
			runs = append(runs, runObs{res})
			execProg = prog
			_ = execProg
			if res.Err != nil {
				// Runtime faults (e.g. a random program dividing by
				// zero) still yield valid partial observations.
				t.Logf("%s seed %d: %v", name, seed, res.Err)
			}
		}

		for _, cfg := range configs {
			ares := core.Analyze(sp, cfg)
			for _, run := range runs {
				checkSoundness(t, name, cfg, ares, run.res)
			}
		}
	}
}

// checkSoundness compares one analysis result against one execution.
func checkSoundness(t *testing.T, name string, cfg core.Config, ares *core.Result, eres *Result) {
	t.Helper()
	// Observations key on the executed IR's procs; match by name.
	byName := make(map[string]*Observation)
	for proc, obs := range eres.Observations {
		byName[proc.Name] = obs
	}
	for pname, pr := range ares.Procs {
		obs := byName[pname]
		called := obs != nil && obs.Calls > 0

		for i, v := range pr.FormalVals {
			c, isConst := v.IntConst()
			if v.IsTop() && called && !eres.FuelExhausted {
				// ⊤ with observed calls is only legitimate when the call
				// sits in code the analysis saw but execution reached
				// via... nothing: it is a soundness bug.
				t.Errorf("%s %+v: %s formal %d is ⊤ but procedure ran %d times",
					name, cfg, pname, i, obs.Calls)
			}
			if !isConst || !called {
				continue
			}
			seen := obs.Formals[i]
			if seen == nil || seen.Count == 0 {
				continue
			}
			if !seen.AllEqual || seen.First != c {
				t.Errorf("%s %+v: %s formal %d claimed %d but execution saw first=%d allEqual=%v over %d calls",
					name, cfg, pname, i, c, seen.First, seen.AllEqual, seen.Count)
			}
		}
		for k, v := range pr.GlobalVals {
			c, isConst := v.IntConst()
			if !isConst || !called {
				continue
			}
			seen := obs.Globals[k]
			if seen == nil || seen.Count == 0 {
				continue
			}
			if !seen.AllEqual || seen.First != c {
				t.Errorf("%s %+v: %s global %d claimed %d but execution saw first=%d allEqual=%v",
					name, cfg, pname, k, c, seen.First, seen.AllEqual)
			}
		}
	}
}
