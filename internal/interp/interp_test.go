package interp

import (
	"strings"
	"testing"

	"ipcp/internal/ir"
	"ipcp/internal/ir/irbuild"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
)

func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sema.Analyze(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return irbuild.Build(sp)
}

func run(t *testing.T, src string) *Result {
	t.Helper()
	res := Run(build(t, src), Options{})
	if res.Err != nil {
		t.Fatalf("runtime error: %v", res.Err)
	}
	return res
}

func TestArithmeticAndOutput(t *testing.T) {
	res := run(t, `
PROGRAM P
  INTEGER A, B
  A = 6*7
  B = MOD(A, 10) + MAX(1, 2, 3) - MIN(4, 5) + IABS(-2) + 2**5
  WRITE(*,*) A, B
END
`)
	if len(res.Output) != 2 || res.Output[0] != 42 || res.Output[1] != 2+3-4+2+32 {
		t.Fatalf("output: %v", res.Output)
	}
}

func TestFactorialFunction(t *testing.T) {
	res := run(t, `
PROGRAM P
  INTEGER R
  R = FACT(6)
  WRITE(*,*) R
END
INTEGER FUNCTION FACT(N)
  INTEGER N
  IF (N .LE. 1) THEN
    FACT = 1
  ELSE
    FACT = N * FACT(N-1)
  ENDIF
  RETURN
END
`)
	if len(res.Output) != 1 || res.Output[0] != 720 {
		t.Fatalf("6! = %v", res.Output)
	}
}

func TestByReferenceMutation(t *testing.T) {
	res := run(t, `
PROGRAM P
  INTEGER X
  X = 1
  CALL BUMP(X)
  CALL BUMP(X)
  WRITE(*,*) X
END
SUBROUTINE BUMP(V)
  INTEGER V
  V = V + 10
  RETURN
END
`)
	if res.Output[0] != 21 {
		t.Fatalf("by-ref mutation: %v", res.Output)
	}
}

func TestExpressionActualIsByValue(t *testing.T) {
	res := run(t, `
PROGRAM P
  INTEGER X
  X = 5
  CALL BUMP(X + 0)
  WRITE(*,*) X
END
SUBROUTINE BUMP(V)
  INTEGER V
  V = V + 10
  RETURN
END
`)
	if res.Output[0] != 5 {
		t.Fatalf("temp actual leaked back: %v", res.Output)
	}
}

func TestLoopsAndArrays(t *testing.T) {
	res := run(t, `
PROGRAM P
  INTEGER A(10), I, S
  DO I = 1, 10
    A(I) = I*I
  ENDDO
  S = 0
  DO I = 10, 1, -1
    S = S + A(I)
  ENDDO
  WRITE(*,*) S
END
`)
	if res.Output[0] != 385 {
		t.Fatalf("sum of squares: %v", res.Output)
	}
}

func TestTwoDimensionalColumnMajor(t *testing.T) {
	res := run(t, `
PROGRAM P
  INTEGER M(3, 2), I, J, S
  DO J = 1, 2
    DO I = 1, 3
      M(I, J) = I + 10*J
    ENDDO
  ENDDO
  S = M(1,1) + M(3,1) + M(1,2) + M(3,2)
  WRITE(*,*) S
END
`)
	if res.Output[0] != 11+13+21+23 {
		t.Fatalf("2-D indexing: %v", res.Output)
	}
}

func TestGlobalsSharedAcrossProcs(t *testing.T) {
	res := run(t, `
PROGRAM P
  COMMON /G/ N
  INTEGER N
  N = 5
  CALL DOUBLE
  CALL DOUBLE
  WRITE(*,*) N
END
SUBROUTINE DOUBLE
  COMMON /G/ N
  INTEGER N
  N = N * 2
  RETURN
END
`)
	if res.Output[0] != 20 {
		t.Fatalf("global sharing: %v", res.Output)
	}
}

func TestGotoControlFlow(t *testing.T) {
	res := run(t, `
PROGRAM P
  INTEGER I, S
  S = 0
  I = 0
10 I = I + 1
  S = S + I
  IF (I .LT. 10) GOTO 10
  WRITE(*,*) S
END
`)
	if res.Output[0] != 55 {
		t.Fatalf("goto loop: %v", res.Output)
	}
}

func TestStopTerminates(t *testing.T) {
	res := run(t, `
PROGRAM P
  WRITE(*,*) 1
  STOP
  WRITE(*,*) 2
END
`)
	if !res.Stopped || len(res.Output) != 1 {
		t.Fatalf("STOP handling: stopped=%v out=%v", res.Stopped, res.Output)
	}
}

func TestDivisionByZeroFaults(t *testing.T) {
	prog := build(t, `
PROGRAM P
  INTEGER A, B
  A = 0
  B = 1/A
END
`)
	res := Run(prog, Options{})
	if res.Err == nil || !strings.Contains(res.Err.Error(), "fault") {
		t.Fatalf("expected integer fault, got %v", res.Err)
	}
}

func TestFuelBoundsInfiniteLoops(t *testing.T) {
	prog := build(t, `
PROGRAM P
  INTEGER I
  I = 0
10 I = I + 1
  GOTO 10
END
`)
	res := Run(prog, Options{Fuel: 10_000})
	if !res.FuelExhausted {
		t.Fatal("fuel should run out")
	}
}

func TestReadIsDeterministicPerSeed(t *testing.T) {
	src := `
PROGRAM P
  INTEGER A, B
  READ A
  READ B
  WRITE(*,*) A + B
END
`
	a := Run(build(t, src), Options{InputSeed: 7})
	b := Run(build(t, src), Options{InputSeed: 7})
	c := Run(build(t, src), Options{InputSeed: 8})
	if a.Output[0] != b.Output[0] {
		t.Fatal("same seed must give same input")
	}
	_ = c // different seed may or may not differ; just must run
}

func TestObservationsRecordEntries(t *testing.T) {
	prog := build(t, `
PROGRAM P
  CALL S(4)
  CALL S(4)
  CALL S(9)
END
SUBROUTINE S(N)
  INTEGER N, W
  W = N
  RETURN
END
`)
	res := Run(prog, Options{})
	s := prog.ProcByName["S"]
	obs := res.Observations[s]
	if obs == nil || obs.Calls != 3 {
		t.Fatalf("observations: %+v", obs)
	}
	seen := obs.Formals[0]
	if seen.Count != 3 || seen.AllEqual || seen.First != 4 {
		t.Fatalf("formal summary: %+v", seen)
	}
}

func TestDoWhile(t *testing.T) {
	res := run(t, `
PROGRAM P
  INTEGER I, S
  I = 1
  S = 0
  DO WHILE (I .LE. 4)
    S = S + I
    I = I + 1
  ENDDO
  WRITE(*,*) S
END
`)
	if res.Output[0] != 10 {
		t.Fatalf("do while: %v", res.Output)
	}
}

func TestRealArithmetic(t *testing.T) {
	res := run(t, `
PROGRAM P
  REAL X, Y
  INTEGER N
  X = 1.5
  Y = X * 4.0
  N = Y
  WRITE(*,*) N
END
`)
	if res.Output[0] != 6 {
		t.Fatalf("real arithmetic: %v", res.Output)
	}
}
