package interp

import (
	"fmt"

	"ipcp/internal/ir"
	"ipcp/internal/sym"
)

// operand evaluates an instruction operand to a cell value. Array
// operands are not values; callers handle them specially.
func (m *machine) operand(f *frame, op ir.Operand) (cell, error) {
	if op.Const != nil {
		switch op.Const.Type {
		case ir.Int:
			return cell{i: op.Const.Int}, nil
		case ir.Real:
			return cell{r: op.Const.Real}, nil
		default:
			return cell{b: op.Const.Bool}, nil
		}
	}
	if op.Var == nil {
		return cell{}, fmt.Errorf("interp: %s: empty operand", f.proc.Name)
	}
	if op.Var.Type.IsArray() {
		return cell{}, fmt.Errorf("interp: %s: array %s used as a value", f.proc.Name, op.Var.Name)
	}
	c := f.vars[op.Var]
	if c == nil {
		return cell{}, fmt.Errorf("interp: %s: unbound variable %s", f.proc.Name, op.Var.Name)
	}
	return *c, nil
}

// operandType reports the scalar type of an operand.
func operandType(op ir.Operand) ir.Type {
	if op.Const != nil {
		return op.Const.Type
	}
	if op.Var != nil {
		return op.Var.Type
	}
	return ir.Int
}

// asReal widens an operand value to float64.
func asReal(t ir.Type, c cell) float64 {
	if t == ir.Real {
		return c.r
	}
	return float64(c.i)
}

// instr executes one non-terminator instruction.
func (m *machine) instr(f *frame, i *ir.Instr) error {
	switch i.Op {
	case ir.OpPhi:
		return fmt.Errorf("interp: %s: phi in pre-SSA program", f.proc.Name)

	case ir.OpCopy:
		v, err := m.operand(f, i.Args[0])
		if err != nil {
			return err
		}
		*f.vars[i.Var] = v
		return nil

	case ir.OpI2R:
		v, err := m.operand(f, i.Args[0])
		if err != nil {
			return err
		}
		f.vars[i.Var].r = float64(v.i)
		return nil

	case ir.OpR2I:
		v, err := m.operand(f, i.Args[0])
		if err != nil {
			return err
		}
		f.vars[i.Var].i = int64(v.r)
		return nil

	case ir.OpNeg, ir.OpAbs, ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv,
		ir.OpPow, ir.OpMod, ir.OpMin, ir.OpMax:
		return m.arith(f, i)

	case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		return m.compare(f, i)

	case ir.OpNot:
		v, err := m.operand(f, i.Args[0])
		if err != nil {
			return err
		}
		f.vars[i.Var].b = !v.b
		return nil

	case ir.OpAnd, ir.OpOr:
		x, err := m.operand(f, i.Args[0])
		if err != nil {
			return err
		}
		y, err := m.operand(f, i.Args[1])
		if err != nil {
			return err
		}
		if i.Op == ir.OpAnd {
			f.vars[i.Var].b = x.b && y.b
		} else {
			f.vars[i.Var].b = x.b || y.b
		}
		return nil

	case ir.OpALoad:
		arr, idx, err := m.element(f, i.Args[0].Var, i.Args[1:])
		if err != nil {
			return err
		}
		*f.vars[i.Var] = arr[idx]
		return nil

	case ir.OpAStore:
		v, err := m.operand(f, i.Args[0])
		if err != nil {
			return err
		}
		arr, idx, err := m.element(f, i.Var, i.Args[1:])
		if err != nil {
			return err
		}
		arr[idx] = v
		return nil

	case ir.OpRead:
		c := f.vars[i.Var]
		switch i.Var.Type {
		case ir.Int:
			c.i = int64(m.rng.Intn(104) - 4)
		case ir.Real:
			c.r = m.rng.Float64() * 10
		default:
			c.b = m.rng.Intn(2) == 0
		}
		return nil

	case ir.OpWrite:
		for _, a := range i.Args {
			v, err := m.operand(f, a)
			if err != nil {
				return err
			}
			if len(m.res.Output) < 4096 && operandType(a) == ir.Int {
				m.res.Output = append(m.res.Output, v.i)
			}
		}
		return nil

	case ir.OpCall:
		return m.execCall(f, i)
	}
	return fmt.Errorf("interp: %s: unexpected op %v", f.proc.Name, i.Op)
}

// element resolves an array element, applying FORTRAN column-major
// layout with 1-based subscripts.
func (m *machine) element(f *frame, arrVar *ir.Var, subs []ir.Operand) ([]cell, int64, error) {
	arr := f.arrays[arrVar]
	if arr == nil {
		return nil, 0, fmt.Errorf("interp: %s: unbound array %s", f.proc.Name, arrVar.Name)
	}
	idx := int64(0)
	stride := int64(1)
	dims := arrVar.Dims
	for k, s := range subs {
		v, err := m.operand(f, s)
		if err != nil {
			return nil, 0, err
		}
		idx += (v.i - 1) * stride
		if k < len(dims) {
			stride *= dims[k]
		}
	}
	if idx < 0 || idx >= int64(len(arr)) {
		return nil, 0, fmt.Errorf("interp: %s: subscript %d out of range for %s(1..%d)",
			f.proc.Name, idx+1, arrVar.Name, len(arr))
	}
	return arr, idx, nil
}

func (m *machine) arith(f *frame, i *ir.Instr) error {
	// Real arithmetic when the destination is real; integer otherwise,
	// using the analyzer's shared folding rules so interpreter and
	// analysis agree bit-for-bit on integer semantics.
	if i.Var.Type == ir.Real {
		vals := make([]float64, len(i.Args))
		for k, a := range i.Args {
			c, err := m.operand(f, a)
			if err != nil {
				return err
			}
			vals[k] = asReal(operandType(a), c)
		}
		r, err := realArith(i.Op, vals)
		if err != nil {
			return fmt.Errorf("interp: %s: %w", f.proc.Name, err)
		}
		f.vars[i.Var].r = r
		return nil
	}
	ints := make([]int64, len(i.Args))
	for k, a := range i.Args {
		c, err := m.operand(f, a)
		if err != nil {
			return err
		}
		ints[k] = c.i
	}
	r, ok := sym.FoldInt(i.Op, ints)
	if !ok {
		return fmt.Errorf("interp: %s: integer fault in %v%v", f.proc.Name, i.Op, ints)
	}
	f.vars[i.Var].i = r
	return nil
}

func realArith(op ir.Op, v []float64) (float64, error) {
	switch op {
	case ir.OpNeg:
		return -v[0], nil
	case ir.OpAbs:
		if v[0] < 0 {
			return -v[0], nil
		}
		return v[0], nil
	case ir.OpAdd:
		return v[0] + v[1], nil
	case ir.OpSub:
		return v[0] - v[1], nil
	case ir.OpMul:
		return v[0] * v[1], nil
	case ir.OpDiv:
		if v[1] == 0 {
			return 0, fmt.Errorf("real division by zero")
		}
		return v[0] / v[1], nil
	case ir.OpPow:
		r := 1.0
		n := int64(v[1])
		neg := n < 0
		if neg {
			n = -n
		}
		for k := int64(0); k < n; k++ {
			r *= v[0]
		}
		if neg {
			if r == 0 {
				return 0, fmt.Errorf("real power fault")
			}
			r = 1 / r
		}
		return r, nil
	case ir.OpMin:
		r := v[0]
		for _, x := range v[1:] {
			if x < r {
				r = x
			}
		}
		return r, nil
	case ir.OpMax:
		r := v[0]
		for _, x := range v[1:] {
			if x > r {
				r = x
			}
		}
		return r, nil
	}
	return 0, fmt.Errorf("unsupported real op %v", op)
}

func (m *machine) compare(f *frame, i *ir.Instr) error {
	x, err := m.operand(f, i.Args[0])
	if err != nil {
		return err
	}
	y, err := m.operand(f, i.Args[1])
	if err != nil {
		return err
	}
	xt, yt := operandType(i.Args[0]), operandType(i.Args[1])
	var res bool
	if xt == ir.Real || yt == ir.Real {
		a, b := asReal(xt, x), asReal(yt, y)
		res = floatCmp(i.Op, a, b)
	} else {
		res = intCmp(i.Op, x.i, y.i)
	}
	f.vars[i.Var].b = res
	return nil
}

func intCmp(op ir.Op, a, b int64) bool {
	switch op {
	case ir.OpEq:
		return a == b
	case ir.OpNe:
		return a != b
	case ir.OpLt:
		return a < b
	case ir.OpLe:
		return a <= b
	case ir.OpGt:
		return a > b
	default:
		return a >= b
	}
}

func floatCmp(op ir.Op, a, b float64) bool {
	switch op {
	case ir.OpEq:
		return a == b
	case ir.OpNe:
		return a != b
	case ir.OpLt:
		return a < b
	case ir.OpLe:
		return a <= b
	case ir.OpGt:
		return a > b
	default:
		return a >= b
	}
}

// execCall evaluates the actuals and invokes the callee, honoring
// FORTRAN by-reference semantics for bare variables and arrays.
func (m *machine) execCall(f *frame, call *ir.Instr) error {
	callee := call.Callee
	cells := make([]*cell, call.NumActuals)
	arrays := make([][]cell, call.NumActuals)
	for a := 0; a < call.NumActuals; a++ {
		op := call.Args[a]
		switch {
		case op.Var != nil && op.Var.Type.IsArray():
			arrays[a] = f.arrays[op.Var]
		case op.Var != nil:
			cells[a] = f.vars[op.Var] // by reference (temps included)
		default:
			v, err := m.operand(f, op)
			if err != nil {
				return err
			}
			fresh := v
			cells[a] = &fresh
		}
	}
	result, err := m.callWithResult(callee, cells, arrays)
	if err != nil {
		return err
	}
	if call.Var != nil {
		*f.vars[call.Var] = result
	}
	return nil
}

// callWithResult invokes proc and returns its function result (zero
// cell for subroutines).
func (m *machine) callWithResult(proc *ir.Proc, cells []*cell, arrays [][]cell) (cell, error) {
	f := &frame{
		proc:   proc,
		vars:   make(map[*ir.Var]*cell, len(proc.Vars)),
		arrays: make(map[*ir.Var][]cell),
	}
	for i, v := range proc.Formals {
		if v.Type.IsArray() {
			if i < len(arrays) && arrays[i] != nil {
				f.arrays[v] = arrays[i]
			} else {
				f.arrays[v] = make([]cell, v.Size)
			}
			continue
		}
		if i < len(cells) && cells[i] != nil {
			f.vars[v] = cells[i]
		} else {
			f.vars[v] = &cell{}
		}
	}
	for k, gv := range proc.GlobalVars {
		f.vars[gv] = m.globals[k]
	}
	for _, v := range proc.Vars {
		if _, bound := f.vars[v]; bound {
			continue
		}
		if v.Type.IsArray() {
			if _, bound := f.arrays[v]; bound {
				continue
			}
			if v.Kind == ir.GlobalRefVar && v.Global != nil {
				f.arrays[v] = m.garrays[v.Global]
			} else {
				f.arrays[v] = make([]cell, v.Size)
			}
			continue
		}
		f.vars[v] = &cell{}
	}
	m.observeEntry(proc, f)
	if err := m.exec(f); err != nil {
		return cell{}, err
	}
	if proc.Result != nil {
		return *f.vars[proc.Result], nil
	}
	return cell{}, nil
}
