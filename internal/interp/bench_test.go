package interp

import (
	"testing"

	"ipcp/internal/ir"
	"ipcp/internal/ir/irbuild"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
)

// BenchmarkInterp measures raw interpretation speed on a loop-heavy
// kernel (instructions per second is the meaningful figure).
func BenchmarkInterp(b *testing.B) {
	f, err := parser.Parse(`
PROGRAM P
  INTEGER I, J, S
  S = 0
  DO I = 1, 1000
    DO J = 1, 100
      S = S + MOD(I*J, 17)
    ENDDO
  ENDDO
  WRITE(*,*) S
END
`)
	if err != nil {
		b.Fatal(err)
	}
	sp, err := sema.Analyze(f)
	if err != nil {
		b.Fatal(err)
	}
	var prog *ir.Program
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		prog = irbuild.Build(sp)
		b.StartTimer()
		res := Run(prog, Options{Fuel: 10_000_000})
		if res.Err != nil || res.FuelExhausted {
			b.Fatalf("run failed: %v %v", res.Err, res.FuelExhausted)
		}
	}
}
