// Package interp executes MiniFortran programs by interpreting the
// pre-SSA IR directly. Its purpose is *differential validation of the
// analyzer*: run a program, observe the actual value of every formal
// parameter and global at every procedure entry, and check that each
// member of a CONSTANTS(p) set really does hold that value on every
// invocation — the soundness contract of §2 ("each pair in CONSTANTS(p)
// denotes a run-time constant").
//
// Execution is deterministic: READ statements draw from a seeded
// pseudo-input stream, WRITE output is collected, and a fuel counter
// bounds runaway programs (a fuel-exhausted run still yields valid
// observations for the invocations that completed entry).
package interp

import (
	"errors"
	"fmt"
	"math/rand"

	"ipcp/internal/ir"
)

// Options configures one execution.
type Options struct {
	// Fuel bounds the number of instructions executed (default 2e6).
	Fuel int

	// InputSeed seeds the READ stream (values in [-4, 99]).
	InputSeed int64
}

// Observation records the values seen at one procedure's entries.
type Observation struct {
	// Calls counts the invocations of the procedure.
	Calls int

	// Formals[i] holds the meet-style summary of the i-th scalar
	// formal across invocations; Globals likewise per scalar global
	// (Program.ScalarGlobals order). A nil entry means the value was
	// not an integer (REAL/LOGICAL formals are not tracked).
	Formals []*Seen
	Globals []*Seen
}

// Seen summarizes the integer values observed for one binding.
type Seen struct {
	Count    int
	First    int64
	AllEqual bool
}

func (s *Seen) observe(v int64) {
	if s.Count == 0 {
		s.First = v
		s.AllEqual = true
	} else if v != s.First {
		s.AllEqual = false
	}
	s.Count++
}

// Result of one program execution.
type Result struct {
	// Observations per procedure.
	Observations map[*ir.Proc]*Observation

	// Output collects WRITE values (for smoke checks).
	Output []int64

	// Stopped reports whether the program ended via STOP.
	Stopped bool

	// FuelExhausted reports that execution was cut off; observations
	// remain valid for everything that ran.
	FuelExhausted bool

	// Err holds a runtime error (division by zero, negative exponent),
	// if any; observations up to the fault remain valid.
	Err error
}

// cell is one scalar storage location. MiniFortran scalars are integer,
// real, or logical; by-reference semantics pass *cell.
type cell struct {
	i int64
	r float64
	b bool
}

// frame is one procedure activation.
type frame struct {
	proc *ir.Proc
	// vars maps every scalar Var to its cell; formals may alias caller
	// cells (by-reference), globals alias program cells.
	vars map[*ir.Var]*cell
	// arrays maps array Vars to their backing storage; array formals
	// alias caller arrays, array globals alias program storage.
	arrays map[*ir.Var][]cell
}

type machine struct {
	prog    *ir.Program
	opts    Options
	rng     *rand.Rand
	fuel    int
	res     *Result
	globals []*cell // parallel ScalarGlobals
	garrays map[*ir.GlobalVar][]cell
}

var errFuel = errors.New("interp: fuel exhausted")

// Run executes the program from its main procedure.
func Run(prog *ir.Program, opts Options) *Result {
	if opts.Fuel == 0 {
		opts.Fuel = 2_000_000
	}
	m := &machine{
		prog:    prog,
		opts:    opts,
		rng:     rand.New(rand.NewSource(opts.InputSeed)),
		fuel:    opts.Fuel,
		res:     &Result{Observations: make(map[*ir.Proc]*Observation)},
		garrays: make(map[*ir.GlobalVar][]cell),
	}
	for range prog.ScalarGlobals {
		m.globals = append(m.globals, &cell{})
	}
	for _, g := range prog.Globals {
		if g.Type.IsArray() {
			m.garrays[g] = make([]cell, g.Size)
		}
	}
	if prog.Main == nil {
		m.res.Err = errors.New("interp: no main program")
		return m.res
	}
	_, err := m.callWithResult(prog.Main, nil, nil)
	switch {
	case errors.Is(err, errFuel):
		m.res.FuelExhausted = true
	case err != nil && !errors.Is(err, errStop):
		m.res.Err = err
	}
	return m.res
}

var errStop = errors.New("interp: STOP")

// observeEntry records the entry values for the soundness check.
func (m *machine) observeEntry(proc *ir.Proc, f *frame) {
	obs := m.res.Observations[proc]
	if obs == nil {
		obs = &Observation{
			Formals: make([]*Seen, len(proc.Formals)),
			Globals: make([]*Seen, len(m.prog.ScalarGlobals)),
		}
		for i, v := range proc.Formals {
			if v.Type == ir.Int {
				obs.Formals[i] = &Seen{}
			}
		}
		for k, g := range m.prog.ScalarGlobals {
			if g.Type == ir.Int {
				obs.Globals[k] = &Seen{}
			}
		}
		m.res.Observations[proc] = obs
	}
	obs.Calls++
	for i, v := range proc.Formals {
		if obs.Formals[i] != nil {
			obs.Formals[i].observe(f.vars[v].i)
		}
	}
	for k := range m.prog.ScalarGlobals {
		if obs.Globals[k] != nil {
			obs.Globals[k].observe(m.globals[k].i)
		}
	}
}

// exec runs the frame's CFG until Ret/Stop.
func (m *machine) exec(f *frame) error {
	b := f.proc.Entry
	for {
		var next *ir.Block
		for _, i := range b.Instrs {
			m.fuel--
			if m.fuel <= 0 {
				return errFuel
			}
			switch i.Op {
			case ir.OpJmp:
				next = b.Succs[0]
			case ir.OpBr:
				v, err := m.operand(f, i.Args[0])
				if err != nil {
					return err
				}
				if v.b {
					next = b.Succs[0]
				} else {
					next = b.Succs[1]
				}
			case ir.OpRet:
				return nil
			case ir.OpStop:
				m.res.Stopped = true
				return errStop
			default:
				if err := m.instr(f, i); err != nil {
					return err
				}
			}
		}
		if next == nil {
			return fmt.Errorf("interp: %s: block %v fell through", f.proc.Name, b)
		}
		b = next
	}
}
