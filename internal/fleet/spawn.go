package fleet

import (
	"bufio"
	"context"
	"fmt"
	"log"
	"os/exec"
	"strings"
	"syscall"
	"time"
)

// This file turns a real ipcpd binary into a StartWorker: each shard
// is a child process serving on an ephemeral loopback port, its bound
// address parsed from the same "ipcpd: listening on" line operators
// and scripts/check.sh parse, SIGTERM forwarded for graceful drain.

// addrLinePrefix is the stdout line every ipcpd prints once bound.
const addrLinePrefix = "ipcpd: listening on "

// ProcessSpawner returns a StartWorker that execs bin with args(shard)
// — which must include "-addr 127.0.0.1:0" (or another loopback
// ephemeral bind) so shards never collide — and hands the worker's
// remaining output to logger line by line.
func ProcessSpawner(bin string, args func(shard int) []string, logger *log.Logger) StartWorker {
	return func(shard int) (*WorkerHandle, error) {
		cmd := exec.Command(bin, args(shard)...)
		setPdeathsig(cmd)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, err
		}
		cmd.Stderr = &lineLogger{logger: logger, prefix: fmt.Sprintf("shard %d: ", shard)}
		if err := cmd.Start(); err != nil {
			return nil, err
		}

		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()

		// The worker prints its bound address as its first line; relay
		// everything after it to the logger.
		addrc := make(chan string, 1)
		go func() {
			sc := bufio.NewScanner(stdout)
			for sc.Scan() {
				line := sc.Text()
				if addr, ok := strings.CutPrefix(line, addrLinePrefix); ok {
					select {
					case addrc <- strings.TrimSpace(addr):
						continue
					default:
					}
				}
				if logger != nil {
					logger.Printf("shard %d: %s", shard, line)
				}
			}
		}()

		select {
		case addr := <-addrc:
			return &WorkerHandle{
				Addr: addr,
				Pid:  cmd.Process.Pid,
				Stop: func(ctx context.Context) error {
					return cmd.Process.Signal(syscall.SIGTERM)
				},
				Kill: func() { cmd.Process.Kill() },
				Done: done,
			}, nil
		case err := <-done:
			return nil, fmt.Errorf("worker exited before binding: %v", err)
		case <-time.After(30 * time.Second):
			cmd.Process.Kill()
			<-done
			return nil, fmt.Errorf("worker never reported its address")
		}
	}
}

// lineLogger forwards a child's stderr to the logger line by line.
type lineLogger struct {
	logger *log.Logger
	prefix string
	buf    []byte
}

func (l *lineLogger) Write(p []byte) (int, error) {
	l.buf = append(l.buf, p...)
	//lint:ignore cancelpoll each iteration consumes one newline-terminated line from the finite buffer, then returns
	for {
		i := strings.IndexByte(string(l.buf), '\n')
		if i < 0 {
			return len(p), nil
		}
		if l.logger != nil {
			l.logger.Print(l.prefix + string(l.buf[:i]))
		}
		l.buf = l.buf[i+1:]
	}
}
