package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"ipcp/internal/server"
	"ipcp/internal/server/client"
)

// This file is the dispatch path: pick the rendezvous owner of the
// request's routing key among the healthy shards, forward through the
// typed client (which retries once on 429 honoring Retry-After), and
// on a transport failure — the crash window before the supervisor
// notices the exit — fail over once to the runner-up shard.

// errNoWorkers reports an empty healthy set (503 at the edge).
var errNoWorkers = errors.New("fleet: no ready workers")

// route picks the owner of key among the ready shards, excluding one
// (a shard that just failed a dispatch; -1 excludes none).
func (f *Fleet) route(key string, exclude int) (shard int, addr string, ok bool) {
	alive := f.sup.healthy()
	if exclude >= 0 {
		kept := alive[:0]
		for _, s := range alive {
			if s != exclude {
				kept = append(kept, s)
			}
		}
		alive = kept
	}
	shard = owner(key, alive)
	if shard < 0 {
		return -1, "", false
	}
	addr, ok = f.sup.addr(shard)
	if !ok {
		// The shard dropped between healthy() and addr(); treat as no
		// owner rather than racing further.
		return -1, "", false
	}
	return shard, addr, true
}

// isTransport reports whether a dispatch error is a transport-level
// failure (connection refused/reset — the worker vanished) rather than
// an HTTP answer or the caller's own context expiring.
func isTransport(err error) bool {
	var se *client.StatusError
	if errors.As(err, &se) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// dispatch routes one call by key: owner first, runner-up on transport
// failure. It returns the shard that actually answered.
func dispatch[T any](f *Fleet, ctx context.Context, key, endpoint string, call func(context.Context, *client.Client) (T, error)) (int, T, error) {
	var zero T
	shard, addr, ok := f.route(key, -1)
	if !ok {
		f.metrics.noWorkers.Add(1)
		return -1, zero, errNoWorkers
	}
	f.metrics.routed(shard)
	out, err := call(ctx, f.client(addr))
	f.metrics.request(shard, endpoint, statusOf(err))
	if err == nil || !isTransport(err) {
		return shard, out, err
	}

	// The owner dropped mid-request. Its in-flight work is lost (the
	// caller sees the error below if no runner-up exists), but new
	// work re-routes immediately instead of waiting for the
	// supervisor's crash detection.
	f.metrics.reroutes.Add(1)
	shard2, addr2, ok := f.route(key, shard)
	if !ok {
		return shard, zero, err
	}
	f.metrics.routed(shard2)
	out, err = call(ctx, f.client(addr2))
	f.metrics.request(shard2, endpoint, statusOf(err))
	return shard2, out, err
}

// statusOf maps a dispatch outcome to the status recorded per shard.
func statusOf(err error) int {
	if err == nil {
		return http.StatusOK
	}
	var se *client.StatusError
	if errors.As(err, &se) {
		return se.Code
	}
	return http.StatusBadGateway
}

// failDispatch writes the edge response for a failed dispatch: worker
// HTTP answers pass through verbatim (with Retry-After preserved on
// 429), an empty fleet answers 503, a transport failure 502.
func (f *Fleet) failDispatch(w http.ResponseWriter, err error) {
	var se *client.StatusError
	switch {
	case errors.As(err, &se):
		if se.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(int(se.RetryAfter/time.Second)))
		}
		f.fail(w, se.Code, errors.New(se.Message))
	case errors.Is(err, errNoWorkers):
		f.fail(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		f.fail(w, http.StatusGatewayTimeout, err)
	default:
		f.fail(w, http.StatusBadGateway, fmt.Errorf("fleet: worker unavailable: %w", err))
	}
}

func (f *Fleet) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req server.AnalyzeRequest
	if !f.decode(w, r, &req) {
		return
	}
	cfg, err := req.Config.Config()
	if err != nil {
		f.fail(w, http.StatusBadRequest, err)
		return
	}
	shard, resp, err := dispatch(f, r.Context(), analyzeKey(req.Program, cfg), "analyze",
		func(ctx context.Context, c *client.Client) (*server.AnalyzeResponse, error) {
			return c.Analyze(ctx, req)
		})
	if err != nil {
		f.failDispatch(w, err)
		return
	}
	f.reply(w, shard, resp)
}

func (f *Fleet) handleTransform(w http.ResponseWriter, r *http.Request) {
	var req server.TransformRequest
	if !f.decode(w, r, &req) {
		return
	}
	cfg, err := req.Config.Config()
	if err != nil {
		f.fail(w, http.StatusBadRequest, err)
		return
	}
	shard, resp, err := dispatch(f, r.Context(), analyzeKey(req.Program, cfg), "transform",
		func(ctx context.Context, c *client.Client) (*server.TransformResponse, error) {
			return c.Transform(ctx, req)
		})
	if err != nil {
		f.failDispatch(w, err)
		return
	}
	f.reply(w, shard, resp)
}

// rawResponse is a pass-through proxy answer (the matrix endpoint is
// forwarded verbatim, query string and all, so every worker-side knob
// keeps working without the router re-modeling it).
type rawResponse struct {
	status      int
	contentType string
	body        []byte
}

func (f *Fleet) handleMatrix(w http.ResponseWriter, r *http.Request) {
	program := r.URL.Query().Get("program")
	query := r.URL.RawQuery
	shard, resp, err := dispatch(f, r.Context(), matrixKey(program), "matrix",
		func(ctx context.Context, c *client.Client) (*rawResponse, error) {
			return f.proxyGet(ctx, c.Base()+"/v1/matrix?"+query)
		})
	if err != nil {
		f.failDispatch(w, err)
		return
	}
	w.Header().Set("X-Fleet-Shard", fmt.Sprint(shard))
	if resp.contentType != "" {
		w.Header().Set("Content-Type", resp.contentType)
	}
	w.WriteHeader(resp.status)
	w.Write(resp.body)
}

// proxyGet forwards one GET, returning non-2xx answers as
// *client.StatusError so dispatch and failDispatch treat proxied and
// typed calls uniformly.
func (f *Fleet) proxyGet(ctx context.Context, url string) (*rawResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	res, err := f.proxy.Do(req)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	if res.StatusCode/100 != 2 {
		return nil, client.StatusErrorOf(res)
	}
	body, err := io.ReadAll(res.Body)
	if err != nil {
		return nil, err
	}
	return &rawResponse{
		status:      res.StatusCode,
		contentType: res.Header.Get("Content-Type"),
		body:        body,
	}, nil
}
