package fleet_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"ipcp"
	"ipcp/internal/fleet"
	"ipcp/internal/server"
	"ipcp/internal/server/client"
	"ipcp/internal/suite"
)

// startBrokenShard runs shard `broken` as a stub that passes readiness
// but answers every analysis with `code` — a worker wedged in exactly
// the way admission control cannot see — while the other shards are
// real servers. Returns the fleet's typed client.
func startFleetWithBrokenShard(t *testing.T, n, broken, code int, wcfg server.Config) *fleet.Fleet {
	t.Helper()
	tw := newTestWorkers(t, wcfg)
	start := func(shard int) (*fleet.WorkerHandle, error) {
		if shard != broken {
			return tw.start(shard)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, "ok")
		})
		mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			json.NewEncoder(w).Encode(server.ErrorResponse{Error: "stub shard always fails"})
		})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: mux}
		done := make(chan error, 1)
		go func() { done <- hs.Serve(l) }()
		return &fleet.WorkerHandle{
			Addr: l.Addr().String(),
			Stop: func(ctx context.Context) error { return hs.Shutdown(ctx) },
			Kill: func() { hs.Close() },
			Done: done,
		}, nil
	}
	fl, err := fleet.New(fleet.Config{
		Workers:    n,
		Start:      start,
		BackoffMin: 50 * time.Millisecond,
		BackoffMax: time.Second,
		RetryBusy:  -1, // a 429 from the stub would just repeat; keep items single-shot
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := fl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		fl.Shutdown(ctx)
	})
	return fl
}

// TestFleetBatchPartialFailure is the satellite's scenario: one shard
// answers 500 (and, in a second pass, 504) while its siblings succeed.
// The batch must return one result per item — failures carry the
// shard's status per item, successes are full reports — and the router
// must keep serving afterwards.
func TestFleetBatchPartialFailure(t *testing.T) {
	for _, code := range []int{http.StatusInternalServerError, http.StatusGatewayTimeout} {
		t.Run(fmt.Sprintf("code%d", code), func(t *testing.T) {
			const broken = 1
			fl := startFleetWithBrokenShard(t, 2, broken, code, server.Config{Workers: 2})
			ts := httptest.NewServer(fl.Handler())
			t.Cleanup(ts.Close)
			c := client.New(ts.URL)

			byShard := programsSpanningShards(t, 2)
			names := []string{byShard[0][0], byShard[broken][0], byShard[0][1], byShard[broken][1]}
			gen := suite.Random(5, 6)
			local := ipcp.MustLoad(gen.Source).Analyze(e2eConfig)
			normalize(local)

			breq := server.BatchRequest{Config: server.ConfigOf(e2eConfig)}
			for _, name := range names {
				breq.Items = append(breq.Items, server.BatchItem{Source: gen.Source, Program: name})
			}
			results, err := c.Batch(context.Background(), breq)
			if err != nil {
				t.Fatalf("a broken shard must not fail the whole batch: %v", err)
			}
			for i, name := range names {
				res := results[i]
				shard, routeErr := fleet.RouteAnalyzeWire(name, server.ConfigOf(e2eConfig), 2)
				if routeErr != nil {
					t.Fatal(routeErr)
				}
				if shard == broken {
					if res.OK() || res.Status != code {
						t.Errorf("item %d (%s) on the broken shard: status %d, want %d", i, name, res.Status, code)
					}
					if res.Error == "" {
						t.Errorf("item %d (%s) failed without an error message", i, name)
					}
					continue
				}
				if !res.OK() {
					t.Errorf("item %d (%s) on a healthy shard failed: %d %s", i, name, res.Status, res.Error)
					continue
				}
				normalize(res.Report)
				if !reflect.DeepEqual(res.Report, local) {
					t.Errorf("item %d (%s): healthy-shard report diverges from local Analyze", i, name)
				}
			}

			// The router must not be wedged: a fresh single request to a
			// healthy shard still round-trips.
			if _, err := c.Analyze(context.Background(), server.AnalyzeRequest{
				Source: gen.Source, Program: byShard[0][0], Config: server.ConfigOf(e2eConfig),
			}); err != nil {
				t.Fatalf("router wedged after partial batch failure: %v", err)
			}
		})
	}
}

// TestFleetBatchValidation pins the edge contract: an empty batch and
// an oversized batch are rejected whole with 400 before any dispatch.
func TestFleetBatchValidation(t *testing.T) {
	_, _, c, _ := startFleet(t, 2, server.Config{Workers: 1})
	ctx := context.Background()
	if _, err := c.Batch(ctx, server.BatchRequest{}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("empty batch: err = %v, want HTTP 400", err)
	}
	over := server.BatchRequest{Items: make([]server.BatchItem, server.MaxBatchItems+1)}
	if _, err := c.Batch(ctx, over); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("oversized batch: err = %v, want HTTP 400", err)
	}
}
