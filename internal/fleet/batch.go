package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"ipcp/internal/server"
	"ipcp/internal/server/client"
)

// This file is the fleet's batch fan-out: one POST /v1/batch request
// of N sources splits per item, each item routed to the shard that
// owns its lineage and dispatched as an ordinary /v1/analyze, with the
// results streamed back as NDJSON in completion order. Partial failure
// is per item: a shard dying mid-batch errors only the items in flight
// on it (status 502), items routed after the crash fail over to the
// runner-up, and sibling items on healthy shards are never voided.

func (f *Fleet) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req server.BatchRequest
	if !f.decode(w, r, &req) {
		return
	}
	if len(req.Items) == 0 {
		f.fail(w, http.StatusBadRequest, errors.New("batch: no items"))
		return
	}
	if len(req.Items) > server.MaxBatchItems {
		f.fail(w, http.StatusBadRequest,
			fmt.Errorf("batch: %d items exceeds the %d-item bound", len(req.Items), server.MaxBatchItems))
		return
	}
	f.metrics.batchSize.Observe(float64(len(req.Items)))

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(res server.BatchItemResult) {
		if res.OK() {
			f.metrics.batchItems.Add(1)
		} else {
			f.metrics.batchErrors.Add(1)
		}
		mu.Lock()
		defer mu.Unlock()
		if err := enc.Encode(res); err != nil {
			f.logf("fleet: batch: encode item %d: %v", res.Index, err)
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Bound the fleet-wide fan-out; each worker additionally sheds per
	// item through its own admission control (and the dispatch client
	// absorbs one 429 per item).
	sem := make(chan struct{}, f.cfg.BatchConcurrency)
	var wg sync.WaitGroup
	for i := range req.Items {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			emit(f.batchItem(r.Context(), i, req))
		}(i)
	}
	wg.Wait()
}

// batchItem dispatches one item to the shard owning its lineage.
func (f *Fleet) batchItem(ctx context.Context, i int, req server.BatchRequest) server.BatchItemResult {
	item := req.Items[i]
	res := server.BatchItemResult{Index: i, Shard: -1}
	cfgReq := req.Config
	if item.Config != nil {
		cfgReq = *item.Config
	}
	cfg, err := cfgReq.Config()
	if err != nil {
		res.Status, res.Error = http.StatusBadRequest, err.Error()
		return res
	}
	timeout := req.TimeoutMS
	if item.TimeoutMS > 0 {
		timeout = item.TimeoutMS
	}
	areq := server.AnalyzeRequest{
		Source:    item.Source,
		Program:   item.Program,
		Config:    cfgReq,
		TimeoutMS: timeout,
	}
	shard, out, err := dispatch(f, ctx, analyzeKey(item.Program, cfg), "batch",
		func(ctx context.Context, c *client.Client) (*server.AnalyzeResponse, error) {
			return c.Analyze(ctx, areq)
		})
	res.Shard = shard
	if err != nil {
		res.Status, res.Error = batchStatus(err), err.Error()
		return res
	}
	res.Status, res.Report, res.Coalesced = http.StatusOK, out.Report, out.Coalesced
	return res
}

// batchStatus maps a dispatch error to the item's status, mirroring
// failDispatch.
func batchStatus(err error) int {
	var se *client.StatusError
	switch {
	case errors.As(err, &se):
		return se.Code
	case errors.Is(err, errNoWorkers):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusBadGateway
	}
}
