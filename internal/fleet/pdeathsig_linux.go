//go:build linux

package fleet

import (
	"os/exec"
	"syscall"
)

// setPdeathsig asks the kernel to SIGKILL the worker if the supervisor
// dies without running its drain path, so a crashed front end never
// leaks shard processes.
func setPdeathsig(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Pdeathsig: syscall.SIGKILL}
}
