// Package fleet turns ipcpd into a horizontally scaled service: one
// front-end router owning admission and a listener, dispatching
// requests to N shared-nothing worker processes — each a full ipcpd on
// a loopback port — by rendezvous hashing on the lineage key, so a
// lineage's resident snapshot and warm-start state always live on
// exactly one worker and incremental re-solves stay hot (the serving
// form of value-context reuse: route the query to the owner of its
// cached context). The supervisor health-checks workers, restarts
// crashes with bounded backoff, re-routes a down shard's lineages to
// the rendezvous runner-up, and drains everything gracefully on
// SIGTERM. POST /v1/batch fans one request of N sources out across
// shards concurrently with per-item statuses. See DESIGN.md, "The
// analysis fleet".
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ipcp/internal/server"
	"ipcp/internal/server/client"
)

// Config tunes a Fleet. Workers and Start are required; every other
// field has a serving default.
type Config struct {
	// Workers is the number of shards.
	Workers int

	// Start launches one shard (ProcessSpawner for real worker
	// processes; tests inject in-process servers).
	Start StartWorker

	// ReadyTimeout bounds how long a freshly started worker may take to
	// answer /readyz before it is killed and retried (default 30s).
	ReadyTimeout time.Duration

	// BackoffMin and BackoffMax bound the restart backoff after a
	// worker crash: the first restart waits BackoffMin, doubling per
	// consecutive failure up to BackoffMax, resetting once a worker
	// becomes ready (defaults 100ms and 5s).
	BackoffMin time.Duration
	BackoffMax time.Duration

	// DrainTimeout bounds each worker's graceful drain during shutdown
	// before it is killed (default 30s).
	DrainTimeout time.Duration

	// RetryBusy is the cap on the one 429 retry the router's worker
	// dispatch performs (default 2s; negative disables the retry).
	RetryBusy time.Duration

	// BatchConcurrency bounds how many batch items are in flight across
	// the fleet at once (default 4×Workers).
	BatchConcurrency int

	// Log, when non-nil, receives supervision events.
	Log *log.Logger
}

// Fleet is the routing front end plus its supervised worker set.
// Create with New, call Start to spawn the workers, mount Handler (or
// call Serve), and stop with Shutdown.
type Fleet struct {
	cfg     Config
	sup     *supervisor
	metrics *fleetMetrics

	// proxy performs raw pass-through requests (matrix) and shares its
	// connection pool across shards.
	proxy *http.Client

	mu      sync.Mutex
	clients map[string]*client.Client
	httpSrv *http.Server

	ready atomic.Bool
}

// New builds a Fleet. Workers must be positive and Start non-nil.
func New(cfg Config) (*Fleet, error) {
	if cfg.Workers <= 0 {
		return nil, errors.New("fleet: Workers must be positive")
	}
	if cfg.Start == nil {
		return nil, errors.New("fleet: Config.Start is required")
	}
	if cfg.ReadyTimeout <= 0 {
		cfg.ReadyTimeout = 30 * time.Second
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 100 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 5 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 30 * time.Second
	}
	if cfg.RetryBusy == 0 {
		cfg.RetryBusy = 2 * time.Second
	}
	if cfg.BatchConcurrency <= 0 {
		cfg.BatchConcurrency = 4 * cfg.Workers
	}
	f := &Fleet{
		cfg:     cfg,
		metrics: newFleetMetrics(cfg.Workers),
		proxy:   &http.Client{},
		clients: make(map[string]*client.Client),
	}
	f.sup = newSupervisor(cfg.Start, cfg.Workers, cfg.ReadyTimeout,
		cfg.BackoffMin, cfg.BackoffMax, cfg.DrainTimeout, f.logf)
	return f, nil
}

// Start spawns the workers and blocks until every shard is ready or
// ctx expires (supervision keeps running either way; a worker that
// missed the barrier keeps being retried).
func (f *Fleet) Start(ctx context.Context) error {
	f.sup.run()
	err := f.sup.waitReady(ctx)
	if err == nil {
		f.ready.Store(true)
	}
	return err
}

// Handler returns the router's HTTP surface: the worker endpoints
// dispatched by lineage, the batch fan-out, and the fleet's own
// health/metrics.
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", f.instrument("analyze", f.handleAnalyze))
	mux.HandleFunc("POST /v1/transform", f.instrument("transform", f.handleTransform))
	mux.HandleFunc("POST /v1/batch", f.instrument("batch", f.handleBatch))
	mux.HandleFunc("GET /v1/matrix", f.instrument("matrix", f.handleMatrix))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !f.ready.Load() || len(f.sup.healthy()) == 0 {
			http.Error(w, "no ready workers", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		f.metrics.write(w, f.sup.snapshot())
	})
	return mux
}

// Serve accepts connections on l until Shutdown.
func (f *Fleet) Serve(l net.Listener) error {
	srv := &http.Server{Handler: f.Handler(), ReadHeaderTimeout: 10 * time.Second}
	f.mu.Lock()
	f.httpSrv = srv
	f.mu.Unlock()
	err := srv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the fleet front to back: readiness goes false, the
// router stops accepting and waits for open requests (which may still
// be dispatching to workers — workers drain after the router), then
// every worker is stopped gracefully (SIGTERM forwarded, in-flight
// work awaited) within its drain timeout.
func (f *Fleet) Shutdown(ctx context.Context) error {
	f.ready.Store(false)
	f.mu.Lock()
	srv := f.httpSrv
	f.mu.Unlock()
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	f.sup.stop()
	return err
}

// Shards reports every shard's state (address, readiness, restarts).
func (f *Fleet) Shards() []ShardStatus {
	return f.sup.snapshot()
}

// client returns the (cached) typed client for a worker address, with
// the router's 429-retry policy applied.
func (f *Fleet) client(addr string) *client.Client {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.clients[addr]; ok {
		return c
	}
	c := client.New(addr)
	if f.cfg.RetryBusy > 0 {
		c.RetryBusy(f.cfg.RetryBusy)
	}
	f.clients[addr] = c
	return c
}

func (f *Fleet) logf(format string, args ...any) {
	if f.cfg.Log != nil {
		f.cfg.Log.Printf(format, args...)
	}
}

// decode reads a JSON request body (bounded), answering 400 itself on
// failure.
func (f *Fleet) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, 256<<20)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		f.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func (f *Fleet) fail(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(server.ErrorResponse{Error: err.Error()})
}

func (f *Fleet) reply(w http.ResponseWriter, shard int, v any) {
	w.Header().Set("X-Fleet-Shard", fmt.Sprint(shard))
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		f.logf("fleet: encode response: %v", err)
	}
}

// instrument wraps an endpoint with the per-endpoint latency histogram
// (per-shard request counters are recorded at dispatch, where the
// shard is known).
func (f *Fleet) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		f.metrics.observe(endpoint, sw.code, time.Since(start))
	}
}

// statusWriter remembers the status code an endpoint wrote.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so the batch NDJSON stream stays
// incremental through the instrumentation wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
