//go:build !linux

package fleet

import "os/exec"

// setPdeathsig is linux-only; elsewhere orphaned workers are reaped by
// the supervisor's drain path alone.
func setPdeathsig(cmd *exec.Cmd) {}
