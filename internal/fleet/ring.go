package fleet

import (
	"hash/fnv"
	"io"

	"ipcp"
	"ipcp/internal/server"
)

// This file implements the fleet's routing function: rendezvous
// (highest-random-weight) hashing of a request's lineage key over the
// healthy shards. Rendezvous hashing gives the two properties the
// fleet's warm state depends on: the same lineage always lands on the
// same shard while the healthy set is stable (so a lineage's resident
// snapshot and warm-start fixpoint accumulate on exactly one worker),
// and when a shard goes down only *its* lineages move — everyone
// else's placement, and therefore their warm caches, are untouched.

// score is the rendezvous weight of (key, shard): a 64-bit FNV-1a hash
// over the key and the shard index.
func score(key string, shard int) uint64 {
	h := fnv.New64a()
	io.WriteString(h, key)
	h.Write([]byte{0, byte(shard), byte(shard >> 8), byte(shard >> 16), byte(shard >> 24)})
	return h.Sum64()
}

// owner returns the member of alive with the highest score for key, or
// -1 when alive is empty. Ties break toward the lowest shard index so
// the choice is total.
func owner(key string, alive []int) int {
	best, bestScore := -1, uint64(0)
	for _, s := range alive {
		sc := score(key, s)
		if best == -1 || sc > bestScore || (sc == bestScore && s < best) {
			best, bestScore = s, sc
		}
	}
	return best
}

// analyzeKey is the routing key of an analyze/transform/batch-item
// request: the same lineage string the worker keys its resident
// snapshot on, so stickiness at the router is exactly snapshot
// residency at the shard.
func analyzeKey(program string, cfg ipcp.Config) string {
	return ipcp.ConfigCacheKey(cfg) + "\x00" + program
}

// matrixKey routes GET /v1/matrix by program name: a matrix sweep has
// no lineage, but pinning it to one shard keeps its coalescing and any
// generated-program caching local.
func matrixKey(program string) string {
	return "matrix\x00" + program
}

// RouteAnalyze predicts which of n shards owns the analyze lineage of
// (program, cfg) when every shard is healthy — exported so tests and
// operational tooling can place programs without a running fleet.
func RouteAnalyze(program string, cfg ipcp.Config, n int) int {
	alive := make([]int, n)
	for i := range alive {
		alive[i] = i
	}
	return owner(analyzeKey(program, cfg), alive)
}

// RouteAnalyzeWire is RouteAnalyze over a wire-format configuration.
func RouteAnalyzeWire(program string, cfg server.ConfigRequest, n int) (int, error) {
	c, err := cfg.Config()
	if err != nil {
		return -1, err
	}
	return RouteAnalyze(program, c, n), nil
}
