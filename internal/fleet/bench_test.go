package fleet_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"ipcp/internal/fleet"
	"ipcp/internal/server"
	"ipcp/internal/server/client"
	"ipcp/internal/suite"
)

// BenchmarkFleetBatchThroughput drives /v1/batch through the full
// routing stack — edge decode, rendezvous dispatch fan-out across two
// in-process worker shards, NDJSON streaming — with a fixed batch of
// distinct program lineages per operation. Beyond ns/op it reports
// per-item req/s and the p50/p99 batch latencies; scripts/bench.sh
// folds all three into BENCH_ipcp.json.
func BenchmarkFleetBatchThroughput(b *testing.B) {
	const batchItems = 8
	tw := &testWorkers{cfg: server.Config{Workers: runtime.GOMAXPROCS(0)}, handles: map[int]*fleet.WorkerHandle{}}
	fl, err := fleet.New(fleet.Config{Workers: 2, Start: tw.start})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	if err := fl.Start(ctx); err != nil {
		cancel()
		b.Fatal(err)
	}
	cancel()
	ts := httptest.NewServer(fl.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		fl.Shutdown(ctx)
	}()

	gen := suite.Random(1, 6)
	req := server.BatchRequest{Config: server.ConfigOf(e2eConfig)}
	for i := 0; i < batchItems; i++ {
		req.Items = append(req.Items, server.BatchItem{
			Source:  gen.Source,
			Program: fmt.Sprintf("bench-batch-%d", i),
		})
	}

	var (
		mu  sync.Mutex
		lat []time.Duration
	)
	start := time.Now()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := client.New(ts.URL)
		var local []time.Duration
		for pb.Next() {
			t0 := time.Now()
			results, err := c.Batch(context.Background(), req)
			if err != nil {
				b.Error(err)
				return
			}
			for _, res := range results {
				if !res.OK() {
					b.Errorf("item %d: status %d (%s)", res.Index, res.Status, res.Error)
					return
				}
			}
			local = append(local, time.Since(t0))
		}
		mu.Lock()
		lat = append(lat, local...)
		mu.Unlock()
	})
	elapsed := time.Since(start)
	b.StopTimer()

	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	quantile := func(q float64) float64 {
		i := int(q * float64(len(lat)-1))
		return float64(lat[i].Nanoseconds())
	}
	b.ReportMetric(float64(len(lat)*batchItems)/elapsed.Seconds(), "req/s")
	b.ReportMetric(quantile(0.50), "p50-ns")
	b.ReportMetric(quantile(0.99), "p99-ns")
}
