package fleet

import (
	"fmt"
	"testing"

	"ipcp"
	"ipcp/internal/server"
)

// Unit tests for the rendezvous routing function: the owner must be a
// pure function of (key, healthy set), spread keys across shards, and
// — the property the fleet's warm caches live on — move only a downed
// shard's keys when the healthy set shrinks.

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("cfg\x00program-%d", i)
	}
	return out
}

func TestOwnerDeterministicAndInSet(t *testing.T) {
	alive := []int{0, 1, 2, 3}
	for _, k := range keys(200) {
		got := owner(k, alive)
		if got < 0 || got > 3 {
			t.Fatalf("owner(%q) = %d, outside the healthy set", k, got)
		}
		for i := 0; i < 5; i++ {
			if again := owner(k, alive); again != got {
				t.Fatalf("owner(%q) unstable: %d then %d", k, got, again)
			}
		}
	}
	if got := owner("anything", nil); got != -1 {
		t.Fatalf("owner over an empty set = %d, want -1", got)
	}
}

func TestOwnerSpreadsKeys(t *testing.T) {
	alive := []int{0, 1, 2}
	counts := make(map[int]int)
	ks := keys(3000)
	for _, k := range ks {
		counts[owner(k, alive)]++
	}
	for _, s := range alive {
		if frac := float64(counts[s]) / float64(len(ks)); frac < 0.15 {
			t.Fatalf("shard %d owns %.1f%% of keys; distribution collapsed: %v",
				s, 100*frac, counts)
		}
	}
}

func TestOwnerMinimalDisruption(t *testing.T) {
	before := []int{0, 1, 2}
	after := []int{0, 2} // shard 1 went down
	moved := 0
	for _, k := range keys(2000) {
		was, is := owner(k, before), owner(k, after)
		if was != 1 {
			if is != was {
				t.Fatalf("key %q moved %d→%d although its owner stayed healthy", k, was, is)
			}
			continue
		}
		moved++
		if is != 0 && is != 2 {
			t.Fatalf("orphaned key %q landed on %d", k, is)
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by the downed shard; test is vacuous")
	}
}

func TestRouteAnalyzeMatchesDispatchKey(t *testing.T) {
	cfg := ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true}
	alive := []int{0, 1, 2, 3}
	for i := 0; i < 50; i++ {
		prog := fmt.Sprintf("prog-%d", i)
		want := owner(analyzeKey(prog, cfg), alive)
		if got := RouteAnalyze(prog, cfg, 4); got != want {
			t.Fatalf("RouteAnalyze(%q) = %d, dispatch would pick %d", prog, got, want)
		}
		wire, err := RouteAnalyzeWire(prog, server.ConfigOf(cfg), 4)
		if err != nil {
			t.Fatal(err)
		}
		if wire != want {
			t.Fatalf("RouteAnalyzeWire(%q) = %d, dispatch would pick %d", prog, wire, want)
		}
	}
}
