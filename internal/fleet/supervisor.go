package fleet

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// This file implements worker lifecycle: each shard is started through
// the configured StartWorker hook, health-checked via /readyz before
// it joins the routing set, watched for crashes (an unexpected exit
// marks it down, re-routes its lineages to the rendezvous runner-up,
// and respawns it after a bounded exponential backoff), and drained
// gracefully on shutdown (Stop is forwarded — SIGTERM for processes —
// and the supervisor waits for the worker to finish its in-flight
// work before moving on).

// WorkerHandle is one live worker as the supervisor sees it. The
// process spawner and the in-process test harness both produce it.
type WorkerHandle struct {
	// Addr is the worker's listen address ("host:port").
	Addr string

	// Pid identifies the worker process (0 for in-process workers).
	Pid int

	// Stop asks the worker to drain gracefully (SIGTERM for a process)
	// and may wait for it; nil means only Kill is available.
	Stop func(ctx context.Context) error

	// Kill terminates the worker immediately.
	Kill func()

	// Done yields the worker's exit (error or nil) exactly once.
	Done <-chan error
}

// StartWorker launches shard i and returns its handle once the worker
// has a listen address (readiness is the supervisor's job). The
// default implementation execs an ipcpd binary (ProcessSpawner); tests
// inject in-process servers.
type StartWorker func(shard int) (*WorkerHandle, error)

// shardState is one shard's lifecycle position.
type shardState int

const (
	shardDown shardState = iota
	shardReady
	shardStopped
)

// ShardStatus is one shard's externally visible state.
type ShardStatus struct {
	Shard    int
	Addr     string
	Ready    bool
	Pid      int
	Restarts int64
}

// supervisor owns the worker set.
type supervisor struct {
	start        StartWorker
	n            int
	readyTimeout time.Duration
	backoffMin   time.Duration
	backoffMax   time.Duration
	drainTimeout time.Duration
	logf         func(format string, args ...any)
	probe        *http.Client

	mu     sync.Mutex
	shards []shardInfo

	stopc    chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

type shardInfo struct {
	state    shardState
	addr     string
	pid      int
	restarts int64
}

func newSupervisor(start StartWorker, n int, readyTimeout, backoffMin, backoffMax, drainTimeout time.Duration, logf func(string, ...any)) *supervisor {
	return &supervisor{
		start:        start,
		n:            n,
		readyTimeout: readyTimeout,
		backoffMin:   backoffMin,
		backoffMax:   backoffMax,
		drainTimeout: drainTimeout,
		logf:         logf,
		probe:        &http.Client{Timeout: time.Second},
		shards:       make([]shardInfo, n),
		stopc:        make(chan struct{}),
	}
}

// run launches one manage goroutine per shard. It returns immediately;
// waitReady observes the fleet becoming serveable.
func (s *supervisor) run() {
	s.wg.Add(s.n)
	for i := 0; i < s.n; i++ {
		go s.manage(i)
	}
}

// manage is shard i's lifecycle loop: start, await readiness, serve
// until exit, restart with backoff; on stop, drain gracefully.
func (s *supervisor) manage(i int) {
	defer s.wg.Done()
	backoff := s.backoffMin
	for {
		if s.stopping() {
			return
		}
		h, err := s.start(i)
		if err != nil {
			s.logf("fleet: shard %d start: %v (retrying in %s)", i, err, backoff)
			if !s.pause(backoff) {
				return
			}
			backoff = s.nextBackoff(backoff)
			continue
		}
		if err := s.awaitReady(h); err != nil {
			h.Kill()
			<-h.Done
			if s.stopping() {
				return
			}
			s.logf("fleet: shard %d never became ready: %v (retrying in %s)", i, err, backoff)
			if !s.pause(backoff) {
				return
			}
			backoff = s.nextBackoff(backoff)
			continue
		}
		s.setReady(i, h)
		s.logf("fleet: shard %d ready on %s (pid %d)", i, h.Addr, h.Pid)
		backoff = s.backoffMin

		select {
		case <-s.stopc:
			s.stopWorker(i, h)
			return
		case exitErr := <-h.Done:
			s.markDown(i, true)
			s.logf("fleet: shard %d exited (%v); restarting in %s", i, exitErr, backoff)
			if !s.pause(backoff) {
				return
			}
			backoff = s.nextBackoff(backoff)
		}
	}
}

// stopWorker is the graceful half of shutdown: forward Stop (SIGTERM),
// wait for the worker's in-flight work to drain, kill it only if the
// drain timeout expires.
func (s *supervisor) stopWorker(i int, h *WorkerHandle) {
	s.markDown(i, false)
	ctx, cancel := context.WithTimeout(context.Background(), s.drainTimeout)
	defer cancel()
	if h.Stop != nil {
		if err := h.Stop(ctx); err != nil {
			s.logf("fleet: shard %d stop: %v", i, err)
		}
	}
	select {
	case <-h.Done:
	case <-ctx.Done():
		s.logf("fleet: shard %d did not drain within %s; killing", i, s.drainTimeout)
		h.Kill()
		<-h.Done
	}
	s.mu.Lock()
	s.shards[i].state = shardStopped
	s.mu.Unlock()
}

// awaitReady polls the worker's /readyz until it answers 200, bounded
// by the ready timeout, the worker exiting, and supervisor stop.
func (s *supervisor) awaitReady(h *WorkerHandle) error {
	deadline := time.Now().Add(s.readyTimeout)
	for {
		resp, err := s.probe.Get("http://" + h.Addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("not ready after %s", s.readyTimeout)
		}
		t := time.NewTimer(25 * time.Millisecond)
		select {
		case <-t.C:
		case <-s.stopc:
			t.Stop()
			return fmt.Errorf("supervisor stopping")
		}
	}
}

// stop ends supervision: every manage loop drains its worker and
// exits. Safe to call twice.
func (s *supervisor) stop() {
	s.stopOnce.Do(func() { close(s.stopc) })
	s.wg.Wait()
}

func (s *supervisor) stopping() bool {
	select {
	case <-s.stopc:
		return true
	default:
		return false
	}
}

// pause sleeps for d, returning false when supervision stopped first.
func (s *supervisor) pause(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.stopc:
		return false
	}
}

func (s *supervisor) nextBackoff(d time.Duration) time.Duration {
	if d *= 2; d > s.backoffMax {
		return s.backoffMax
	}
	return d
}

func (s *supervisor) setReady(i int, h *WorkerHandle) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shards[i].state = shardReady
	s.shards[i].addr = h.Addr
	s.shards[i].pid = h.Pid
}

// markDown takes shard i out of the routing set; crashed counts it as
// a restart (the respawn that follows).
func (s *supervisor) markDown(i int, crashed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shards[i].state = shardDown
	if crashed {
		s.shards[i].restarts++
	}
}

// healthy returns the shards currently in the routing set.
func (s *supervisor) healthy() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	alive := make([]int, 0, s.n)
	for i := range s.shards {
		if s.shards[i].state == shardReady {
			alive = append(alive, i)
		}
	}
	return alive
}

// addr returns shard i's address when it is ready.
func (s *supervisor) addr(i int) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= s.n || s.shards[i].state != shardReady {
		return "", false
	}
	return s.shards[i].addr, true
}

// snapshot reports every shard's state.
func (s *supervisor) snapshot() []ShardStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ShardStatus, s.n)
	for i := range s.shards {
		out[i] = ShardStatus{
			Shard:    i,
			Addr:     s.shards[i].addr,
			Ready:    s.shards[i].state == shardReady,
			Pid:      s.shards[i].pid,
			Restarts: s.shards[i].restarts,
		}
	}
	return out
}

// waitReady blocks until every shard is ready or ctx expires — the
// startup barrier (and the test hook for restart-within-backoff).
func (s *supervisor) waitReady(ctx context.Context) error {
	for {
		ready := 0
		for _, st := range s.snapshot() {
			if st.Ready {
				ready++
			}
		}
		if ready == s.n {
			return nil
		}
		t := time.NewTimer(25 * time.Millisecond)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("fleet: %d/%d workers ready: %w", ready, s.n, ctx.Err())
		}
	}
}
