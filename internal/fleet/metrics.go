package fleet

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ipcp/internal/server"
)

// Fleet-level instrumentation, merged into the same Prometheus text
// exposition the single-process server emits: per-shard request,
// routing-distribution, and restart counters; per-endpoint latency
// histograms over the whole dispatch (queue + worker + wire); the
// batch size histogram and per-item outcome counters. Everything is
// hand-rolled over sync/atomic — the module is dependency-free by
// policy — and shares the server package's Histogram.

type fleetMetrics struct {
	start     time.Time
	shards    []*shardMetrics
	latency   map[string]*server.Histogram // per endpoint
	batchSize *server.Histogram

	reroutes    atomic.Int64 // dispatches failed over to a runner-up shard
	noWorkers   atomic.Int64 // dispatches refused: empty healthy set
	batchItems  atomic.Int64 // batch items answered with a report
	batchErrors atomic.Int64 // batch items answered with a per-item error
}

type shardMetrics struct {
	routed atomic.Int64 // dispatches routed here (routing distribution)

	mu       sync.Mutex
	requests map[string]map[int]int64 // endpoint → status → count
}

var fleetEndpoints = []string{"analyze", "batch", "matrix", "transform"}

func newFleetMetrics(n int) *fleetMetrics {
	m := &fleetMetrics{
		start:     time.Now(),
		shards:    make([]*shardMetrics, n),
		latency:   make(map[string]*server.Histogram, len(fleetEndpoints)),
		batchSize: server.NewHistogram(server.BatchSizeBounds),
	}
	for i := range m.shards {
		m.shards[i] = &shardMetrics{requests: make(map[string]map[int]int64)}
	}
	for _, ep := range fleetEndpoints {
		m.latency[ep] = server.NewHistogram(server.LatencyBounds)
	}
	return m
}

// routed counts one dispatch landing on a shard.
func (m *fleetMetrics) routed(shard int) {
	if shard >= 0 && shard < len(m.shards) {
		m.shards[shard].routed.Add(1)
	}
}

// request tallies one worker call's outcome under its shard.
func (m *fleetMetrics) request(shard int, endpoint string, status int) {
	if shard < 0 || shard >= len(m.shards) {
		return
	}
	s := m.shards[shard]
	s.mu.Lock()
	byCode := s.requests[endpoint]
	if byCode == nil {
		byCode = make(map[int]int64)
		s.requests[endpoint] = byCode
	}
	byCode[status]++
	s.mu.Unlock()
}

// observe records one edge request's latency (instrument wrapper).
func (m *fleetMetrics) observe(endpoint string, status int, elapsed time.Duration) {
	if h := m.latency[endpoint]; h != nil {
		h.Observe(elapsed.Seconds())
	}
}

// write renders the exposition; shard readiness and restart counts are
// sampled from the supervisor and passed in.
func (m *fleetMetrics) write(w io.Writer, shards []ShardStatus) {
	ready := 0
	for _, st := range shards {
		if st.Ready {
			ready++
		}
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("ipcpd_fleet_workers", "Configured worker shards.", int64(len(shards)))
	gauge("ipcpd_fleet_ready_workers", "Shards currently in the routing set.", int64(ready))

	fmt.Fprintf(w, "# HELP ipcpd_fleet_requests_total Worker calls by shard, endpoint, and status.\n")
	fmt.Fprintf(w, "# TYPE ipcpd_fleet_requests_total counter\n")
	for i, s := range m.shards {
		s.mu.Lock()
		eps := make([]string, 0, len(s.requests))
		for ep := range s.requests {
			eps = append(eps, ep)
		}
		sort.Strings(eps)
		for _, ep := range eps {
			codes := make([]int, 0, len(s.requests[ep]))
			for c := range s.requests[ep] {
				codes = append(codes, c)
			}
			sort.Ints(codes)
			for _, c := range codes {
				fmt.Fprintf(w, "ipcpd_fleet_requests_total{shard=\"%d\",endpoint=%q,code=\"%d\"} %d\n",
					i, ep, c, s.requests[ep][c])
			}
		}
		s.mu.Unlock()
	}

	fmt.Fprintf(w, "# HELP ipcpd_fleet_routed_total Dispatches routed to each shard (routing distribution).\n")
	fmt.Fprintf(w, "# TYPE ipcpd_fleet_routed_total counter\n")
	for i, s := range m.shards {
		fmt.Fprintf(w, "ipcpd_fleet_routed_total{shard=\"%d\"} %d\n", i, s.routed.Load())
	}

	fmt.Fprintf(w, "# HELP ipcpd_fleet_restarts_total Crash restarts per shard.\n")
	fmt.Fprintf(w, "# TYPE ipcpd_fleet_restarts_total counter\n")
	for _, st := range shards {
		fmt.Fprintf(w, "ipcpd_fleet_restarts_total{shard=\"%d\"} %d\n", st.Shard, st.Restarts)
	}

	fmt.Fprintf(w, "# HELP ipcpd_fleet_request_duration_seconds Edge request latency by endpoint.\n")
	fmt.Fprintf(w, "# TYPE ipcpd_fleet_request_duration_seconds histogram\n")
	for _, ep := range fleetEndpoints {
		m.latency[ep].Expose(w, "ipcpd_fleet_request_duration_seconds", fmt.Sprintf("endpoint=%q", ep))
	}

	fmt.Fprintf(w, "# HELP ipcpd_fleet_batch_size Items per /v1/batch request.\n")
	fmt.Fprintf(w, "# TYPE ipcpd_fleet_batch_size histogram\n")
	m.batchSize.Expose(w, "ipcpd_fleet_batch_size", "")

	counter("ipcpd_fleet_batch_items_total", "Batch items answered with a report.", m.batchItems.Load())
	counter("ipcpd_fleet_batch_item_errors_total", "Batch items answered with a per-item error.", m.batchErrors.Load())
	counter("ipcpd_fleet_reroutes_total", "Dispatches failed over to a runner-up shard.", m.reroutes.Load())
	counter("ipcpd_fleet_no_worker_total", "Dispatches refused because no shard was ready.", m.noWorkers.Load())
	fmt.Fprintf(w, "# HELP ipcpd_fleet_uptime_seconds Seconds since the router started.\n# TYPE ipcpd_fleet_uptime_seconds gauge\nipcpd_fleet_uptime_seconds %g\n",
		time.Since(m.start).Seconds())
}
