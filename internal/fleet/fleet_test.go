package fleet_test

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ipcp"
	"ipcp/internal/fleet"
	"ipcp/internal/mf/ast"
	"ipcp/internal/mf/parser"
	"ipcp/internal/server"
	"ipcp/internal/server/client"
	"ipcp/internal/suite"
	"ipcp/internal/wal"
)

// End-to-end proof of the fleet contract: a report served through the
// router — dispatched, batched, failed over, or incremental on a warm
// shard — is reflect.DeepEqual to the single-process server's answer
// and to a local from-scratch Analyze; killing a worker errors only
// the work in flight on that shard and the supervisor restarts it
// within the backoff bound.

var e2eConfig = ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true, Workers: 1}

// testWorkers runs each shard as an in-process server.Server behind a
// real TCP listener, so the supervisor sees genuine readiness probes,
// transport errors, and drains without spawning processes.
type testWorkers struct {
	t   *testing.T
	cfg server.Config

	// cfgFor, when non-nil, overrides cfg per shard — the WAL recovery
	// test gives each shard its own cache directory, the way ipcpd
	// -workers does with DIR/shard-<i>.
	cfgFor func(shard int) server.Config

	mu      sync.Mutex
	handles map[int]*fleet.WorkerHandle
}

func newTestWorkers(t *testing.T, cfg server.Config) *testWorkers {
	return &testWorkers{t: t, cfg: cfg, handles: make(map[int]*fleet.WorkerHandle)}
}

func (tw *testWorkers) start(shard int) (*fleet.WorkerHandle, error) {
	cfg := tw.cfg
	if tw.cfgFor != nil {
		cfg = tw.cfgFor(shard)
	}
	s, err := server.New(cfg)
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	done := make(chan error, 1)
	go func() { done <- hs.Serve(l) }()
	h := &fleet.WorkerHandle{
		Addr: l.Addr().String(),
		Stop: func(ctx context.Context) error {
			err := hs.Shutdown(ctx)
			s.Shutdown(ctx)
			return err
		},
		Kill: func() { hs.Close() },
		Done: done,
	}
	tw.mu.Lock()
	tw.handles[shard] = h
	tw.mu.Unlock()
	return h, nil
}

// kill crashes a shard the way a dying process does: the listener and
// every connection drop, and the worker's Done fires.
func (tw *testWorkers) kill(shard int) {
	tw.mu.Lock()
	h := tw.handles[shard]
	tw.mu.Unlock()
	if h == nil {
		tw.t.Fatalf("no handle for shard %d", shard)
	}
	h.Kill()
}

// startFleet brings up an n-shard fleet over in-process workers and
// returns it with a typed client and the router's base URL.
func startFleet(t *testing.T, n int, wcfg server.Config) (*fleet.Fleet, *testWorkers, *client.Client, string) {
	return startFleetWorkers(t, n, newTestWorkers(t, wcfg))
}

func startFleetWorkers(t *testing.T, n int, tw *testWorkers) (*fleet.Fleet, *testWorkers, *client.Client, string) {
	t.Helper()
	fl, err := fleet.New(fleet.Config{
		Workers:    n,
		Start:      tw.start,
		BackoffMin: 50 * time.Millisecond,
		BackoffMax: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := fl.Start(ctx); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(fl.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		fl.Shutdown(ctx)
	})
	return fl, tw, client.New(ts.URL), ts.URL
}

// normalize clears the report fields that legitimately differ between
// a served run and a local one (mirrors the server e2e suite).
func normalize(reps ...*ipcp.Report) {
	for _, r := range reps {
		if r == nil {
			continue
		}
		r.Config.Workers = 0
		r.Incremental = nil
		r.SolverPasses = 0
		r.JFEvaluations = 0
		for i := range r.Passes {
			r.Passes[i].Nanos = 0
		}
	}
}

// editFirstLiteral bumps the first integer literal in the named unit.
func editFirstLiteral(t *testing.T, src, unit string) string {
	t.Helper()
	file, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	edited := false
	for _, u := range file.Units {
		if u.Name != unit {
			continue
		}
		ast.RewriteExprs(u, func(e ast.Expr) ast.Expr {
			if lit, ok := e.(*ast.IntLit); ok && !edited {
				lit.Value += 3
				edited = true
			}
			return e
		})
	}
	if !edited {
		t.Fatalf("unit %s has no integer literal to edit", unit)
	}
	return ast.Format(file)
}

// programsSpanningShards returns per-shard program names (with their
// sources) under the standard config, so tests can aim work at a
// specific shard of an n-shard fleet. Routing is deterministic, so
// this is a pure computation.
func programsSpanningShards(t *testing.T, n int) map[int][]string {
	t.Helper()
	byShard := make(map[int][]string)
	covered := func() bool {
		for shard := 0; shard < n; shard++ {
			if len(byShard[shard]) < 2 {
				return false
			}
		}
		return true
	}
	for i := 0; !covered() && i <= 100; i++ {
		name := fmt.Sprintf("fleet-prog-%d", i)
		shard, err := fleet.RouteAnalyzeWire(name, server.ConfigOf(e2eConfig), n)
		if err != nil {
			t.Fatal(err)
		}
		byShard[shard] = append(byShard[shard], name)
	}
	if !covered() {
		t.Fatalf("first 100 names do not put two programs on every one of %d shards", n)
	}
	return byShard
}

// TestFleetMatchesSingleServerAndLocal is the acceptance criterion:
// the same requests — singles and a /v1/batch — through a 2-worker
// fleet, a single-process server, and local Analyze must produce
// DeepEqual reports, with batch items landing on their predicted
// shards.
func TestFleetMatchesSingleServerAndLocal(t *testing.T) {
	_, _, fc, _ := startFleet(t, 2, server.Config{Workers: 2})
	single, err := server.New(server.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sts := httptest.NewServer(single.Handler())
	t.Cleanup(func() {
		sts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		single.Shutdown(ctx)
	})
	sc := client.New(sts.URL)

	byShard := programsSpanningShards(t, 2)
	var names []string
	for shard := 0; shard < 2; shard++ {
		names = append(names, byShard[shard][0], byShard[shard][1])
	}

	sources := make(map[string]string)
	locals := make(map[string]*ipcp.Report)
	for i, name := range names {
		gen := suite.Random(int64(i), 6)
		sources[name] = gen.Source
		locals[name] = ipcp.MustLoad(gen.Source).Analyze(e2eConfig)
		normalize(locals[name])
	}

	ctx := context.Background()
	for _, name := range names {
		req := server.AnalyzeRequest{Source: sources[name], Program: name, Config: server.ConfigOf(e2eConfig)}
		fresp, err := fc.Analyze(ctx, req)
		if err != nil {
			t.Fatalf("fleet analyze %s: %v", name, err)
		}
		sresp, err := sc.Analyze(ctx, req)
		if err != nil {
			t.Fatalf("single analyze %s: %v", name, err)
		}
		normalize(fresp.Report, sresp.Report)
		if !reflect.DeepEqual(fresp.Report, locals[name]) {
			t.Errorf("%s: fleet report diverges from local Analyze", name)
		}
		if !reflect.DeepEqual(fresp.Report, sresp.Report) {
			t.Errorf("%s: fleet report diverges from single-process server", name)
		}
	}

	// The same sources as one batch through both serving stacks.
	breq := server.BatchRequest{Config: server.ConfigOf(e2eConfig)}
	for _, name := range names {
		breq.Items = append(breq.Items, server.BatchItem{Source: sources[name], Program: name})
	}
	fres, err := fc.Batch(ctx, breq)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := sc.Batch(ctx, breq)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		if !fres[i].OK() || !sres[i].OK() {
			t.Fatalf("batch item %d (%s): fleet status %d, single status %d",
				i, name, fres[i].Status, sres[i].Status)
		}
		want, wantErr := fleet.RouteAnalyzeWire(name, server.ConfigOf(e2eConfig), 2)
		if wantErr != nil {
			t.Fatal(wantErr)
		}
		if fres[i].Shard != want {
			t.Errorf("batch item %s landed on shard %d, rendezvous owner is %d", name, fres[i].Shard, want)
		}
		if sres[i].Shard != -1 {
			t.Errorf("single-process batch item %s reports shard %d, want -1", name, sres[i].Shard)
		}
		normalize(fres[i].Report, sres[i].Report)
		if !reflect.DeepEqual(fres[i].Report, locals[name]) {
			t.Errorf("%s: fleet batch report diverges from local Analyze", name)
		}
		if !reflect.DeepEqual(fres[i].Report, sres[i].Report) {
			t.Errorf("%s: fleet batch report diverges from single-process batch", name)
		}
	}
}

// TestFleetShardStickiness pins the routing invariant: repeat requests
// down one lineage land on the same shard (X-Fleet-Shard), and the
// second, edited request re-analyzes only part of the program — proof
// it reached the worker holding the lineage's resident snapshot.
func TestFleetShardStickiness(t *testing.T) {
	_, _, _, base := startFleet(t, 2, server.Config{Workers: 2})
	gen := suite.Random(7, 8)
	edited := editFirstLiteral(t, gen.Source, "RANDP")
	want := ipcp.MustLoad(edited).Analyze(e2eConfig)
	normalize(want)

	post := func(src string) (string, *server.AnalyzeResponse) {
		t.Helper()
		body, err := json.Marshal(server.AnalyzeRequest{
			Source: src, Program: "sticky", Config: server.ConfigOf(e2eConfig),
		})
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/v1/analyze", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(resp.Body)
			t.Fatalf("analyze: status %d: %s", resp.StatusCode, raw)
		}
		var out server.AnalyzeResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("X-Fleet-Shard"), &out
	}

	shard1, _ := post(gen.Source)
	shard2, resp := post(edited)
	if shard1 == "" || shard1 != shard2 {
		t.Fatalf("lineage moved shards between requests: %q then %q", shard1, shard2)
	}
	st := resp.Report.Incremental
	if st == nil {
		t.Fatal("second request lost the incremental path entirely")
	}
	if st.Reanalyzed == 0 || st.Reanalyzed >= st.TotalProcedures {
		t.Fatalf("second request re-analyzed %d/%d procedures; the resident snapshot did not carry over",
			st.Reanalyzed, st.TotalProcedures)
	}
	normalize(resp.Report)
	if !reflect.DeepEqual(resp.Report, want) {
		t.Fatal("warm-shard incremental report diverges from local Analyze")
	}
}

// TestFleetFailoverAndRestart kills one worker: requests for its
// lineages must immediately fail over to the rendezvous runner-up with
// correct results, and the supervisor must restart the shard within
// the backoff bound.
func TestFleetFailoverAndRestart(t *testing.T) {
	fl, tw, c, base := startFleet(t, 2, server.Config{Workers: 2})
	byShard := programsSpanningShards(t, 2)
	victim := 1
	name := byShard[victim][0]
	gen := suite.Random(3, 6)
	want := ipcp.MustLoad(gen.Source).Analyze(e2eConfig)
	normalize(want)
	req := server.AnalyzeRequest{Source: gen.Source, Program: name, Config: server.ConfigOf(e2eConfig)}

	ctx := context.Background()
	if _, err := c.Analyze(ctx, req); err != nil {
		t.Fatalf("warmup on shard %d: %v", victim, err)
	}

	tw.kill(victim)
	resp, err := c.Analyze(ctx, req)
	if err != nil {
		t.Fatalf("analyze after killing shard %d did not fail over: %v", victim, err)
	}
	normalize(resp.Report)
	if !reflect.DeepEqual(resp.Report, want) {
		t.Fatal("failed-over report diverges from local Analyze")
	}

	// BackoffMin is 50ms; well within 5s the shard must be back with its
	// restart counted.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := fl.Shards()[victim]
		if st.Ready && st.Restarts >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard %d not restarted within the backoff bound: %+v", victim, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := c.Analyze(ctx, req); err != nil {
		t.Fatalf("analyze after restart: %v", err)
	}

	resp2, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	for _, want := range []string{
		fmt.Sprintf("ipcpd_fleet_restarts_total{shard=\"%d\"} 1", victim),
		"ipcpd_fleet_routed_total",
		"ipcpd_fleet_requests_total",
		"ipcpd_fleet_workers 2",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("fleet metrics missing %q", want)
		}
	}
}

// TestFleetCrashRestartRecoversWAL is the fleet half of the durability
// contract. Each shard gets its own cache directory (as ipcpd -workers
// lays them out); the victim shard's directory is pre-seeded with a
// write-ahead journal holding every summary of the program's donor run
// — the state a shard killed after acknowledging its puts but before
// any write-back leaves behind. The worker must replay the journal at
// boot (the first analysis runs at a 100% summary hit rate), and after
// a crash plus supervisor restart on the same directory the lineage
// must still be warm.
func TestFleetCrashRestartRecoversWAL(t *testing.T) {
	root := t.TempDir()
	gen := suite.Random(3, 6)
	want := ipcp.MustLoad(gen.Source).Analyze(e2eConfig)
	normalize(want)

	// Donor run: the same program and configuration through a local disk
	// cache, producing the exact content-addressed blobs a shard's
	// analysis would have put (keys are deterministic across processes).
	donorDir := t.TempDir()
	donorCache, err := ipcp.NewDiskCache(donorDir)
	if err != nil {
		t.Fatal(err)
	}
	ipcp.MustLoad(gen.Source).AnalyzeIncremental(e2eConfig, nil, donorCache)

	byShard := programsSpanningShards(t, 2)
	victim := 1
	name := byShard[victim][0]

	// Seed the victim shard's journal with the donor blobs, unconfirmed —
	// as if a previous worker died right after acknowledging them.
	shardDir := filepath.Join(root, fmt.Sprintf("shard-%d", victim))
	j, err := wal.Open(shardDir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(donorDir)
	if err != nil {
		t.Fatal(err)
	}
	seeded := 0
	for _, e := range entries {
		hexKey, ok := strings.CutSuffix(e.Name(), ".ipcs")
		if !ok {
			continue
		}
		raw, err := hex.DecodeString(hexKey)
		if err != nil || len(raw) != 32 {
			continue
		}
		payload, err := os.ReadFile(filepath.Join(donorDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		var key wal.Key
		copy(key[:], raw)
		if _, err := j.Append(key, payload); err != nil {
			t.Fatal(err)
		}
		seeded++
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if seeded == 0 {
		t.Fatal("donor run produced no cache blobs to seed")
	}

	tw := newTestWorkers(t, server.Config{})
	tw.cfgFor = func(shard int) server.Config {
		return server.Config{Workers: 2, CacheDir: filepath.Join(root, fmt.Sprintf("shard-%d", shard))}
	}
	fl, _, c, _ := startFleetWorkers(t, 2, tw)

	// First analysis on the recovered shard: every summary lookup must
	// hit — the only possible source is the journal replay.
	ctx := context.Background()
	req := server.AnalyzeRequest{Source: gen.Source, Program: name, Config: server.ConfigOf(e2eConfig)}
	resp, err := c.Analyze(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	st := resp.Report.Incremental
	if st == nil || st.HitRate() != 1 {
		t.Fatalf("first analysis after WAL seed did not run fully warm: %+v", st)
	}
	normalize(resp.Report)
	if !reflect.DeepEqual(resp.Report, want) {
		t.Fatal("WAL-recovered report diverges from local Analyze")
	}

	// Crash the shard and let the supervisor restart it on the same
	// directory: the lineage must come back warm from disk plus journal.
	tw.kill(victim)
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := fl.Shards()[victim]
		if s.Ready && s.Restarts >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard %d not restarted in time: %+v", victim, s)
		}
		time.Sleep(20 * time.Millisecond)
	}
	resp, err = c.Analyze(ctx, req)
	if err != nil {
		t.Fatalf("analyze after crash restart: %v", err)
	}
	if st := resp.Report.Incremental; st == nil || st.HitRate() != 1 {
		t.Fatalf("restarted shard lost its summaries: %+v", st)
	}
	normalize(resp.Report)
	if !reflect.DeepEqual(resp.Report, want) {
		t.Fatal("post-restart report diverges from local Analyze")
	}
}
