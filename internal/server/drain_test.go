package server_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"ipcp"
	"ipcp/internal/server"
	"ipcp/internal/server/client"
	"ipcp/internal/suite"
)

// TestServerShutdownFlushesRemoteTier pins the graceful-drain contract
// for the tiered summary store: the write-back queue to the remote
// tier is asynchronous, so a server that exits right after answering
// could silently drop its summaries. Shutdown must flush — after the
// drain, a cold machine sharing only the remote tier reuses every
// summary the server computed.
func TestServerShutdownFlushesRemoteTier(t *testing.T) {
	_, base := startBlobServer(t, server.Config{Workers: 1})

	s, err := server.New(server.Config{Workers: 1, RemoteCache: base})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	c := client.New(ts.URL)
	src := suite.Generate("ocean", 2).Source
	if _, err := c.Analyze(context.Background(), server.AnalyzeRequest{
		Source: src, Program: "drain", Config: server.ConfigOf(e2eConfig),
	}); err != nil {
		t.Fatal(err)
	}

	// Drain: the flush happens here, not on some background cadence.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	cold := ipcp.NewTieredCache(ipcp.NewMemoryCache(), ipcp.NewRemoteCache(base))
	rep, _ := ipcp.MustLoad(src).AnalyzeIncremental(e2eConfig, nil, cold)
	st := rep.Incremental
	if st.CacheHits != st.TotalProcedures || st.Reanalyzed != 0 {
		t.Fatalf("cold machine should find every summary on the remote tier after drain, got %+v", st)
	}
}
