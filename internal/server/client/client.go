// Package client is the typed client for ipcpd, the resident analysis
// server (see package ipcp/internal/server). It speaks the server's
// JSON wire protocol and maps non-2xx answers to *StatusError so
// callers can distinguish overload (429), draining (503), and deadline
// expiry (504) from real failures.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"ipcp/internal/server"
)

// StatusError is a non-2xx server answer.
type StatusError struct {
	// Code is the HTTP status code.
	Code int

	// Message is the server's error text.
	Message string

	// RetryAfter is the server's requested backoff on a 429, zero
	// otherwise.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("ipcpd: %s (HTTP %d)", e.Message, e.Code)
}

// Busy reports whether the error is the server shedding load (a retry
// after e.RetryAfter is reasonable).
func (e *StatusError) Busy() bool { return e.Code == http.StatusTooManyRequests }

// Client talks to one ipcpd server. It is safe for concurrent use.
type Client struct {
	base      string
	http      *http.Client
	retryBusy time.Duration
}

// New returns a client for the server at addr ("host:port" or a full
// http:// URL).
func New(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{base: strings.TrimSuffix(addr, "/"), http: &http.Client{}}
}

// RetryBusy makes the client retry a request once when the server
// sheds it with 429, sleeping for the server's Retry-After (or
// defaultBusyDelay when the header is missing), clamped to cap. Off by
// default — callers that need to observe overload directly (load
// tests, admission-control probes) keep the raw 429. cmd/ipcp -server
// and the fleet router's worker dispatch both turn it on. Returns the
// client for chaining.
func (c *Client) RetryBusy(cap time.Duration) *Client {
	c.retryBusy = cap
	return c
}

// defaultBusyDelay is the backoff used for a 429 without a Retry-After
// header.
const defaultBusyDelay = 100 * time.Millisecond

// Base returns the server's base URL ("http://host:port") — proxies
// that forward raw requests alongside typed calls build on it.
func (c *Client) Base() string { return c.base }

// Analyze posts req to /v1/analyze.
func (c *Client) Analyze(ctx context.Context, req server.AnalyzeRequest) (*server.AnalyzeResponse, error) {
	var resp server.AnalyzeResponse
	if err := c.post(ctx, "/v1/analyze", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Transform posts req to /v1/transform.
func (c *Client) Transform(ctx context.Context, req server.TransformRequest) (*server.TransformResponse, error) {
	var resp server.TransformResponse
	if err := c.post(ctx, "/v1/transform", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Batch posts req to /v1/batch and collects the NDJSON result stream
// into a slice ordered by item index (one entry per request item). A
// nil error means the batch ran; individual items may still have
// failed — check each result's OK()/Status (partial-failure
// semantics).
func (c *Client) Batch(ctx context.Context, req server.BatchRequest) ([]server.BatchItemResult, error) {
	data, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("ipcpd client: %w", err)
	}
	res, err := c.do(ctx, http.MethodPost, "/v1/batch", true, data)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	results := make([]server.BatchItemResult, len(req.Items))
	seen := make([]bool, len(req.Items))
	dec := json.NewDecoder(res.Body)
	//lint:ignore cancelpoll bounded by the response body: Decode hits io.EOF, and the request context aborts the body reads
	for {
		var item server.BatchItemResult
		if err := dec.Decode(&item); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("ipcpd client: decode batch stream: %w", err)
		}
		if item.Index < 0 || item.Index >= len(results) {
			return nil, fmt.Errorf("ipcpd client: batch stream returned index %d for a %d-item request", item.Index, len(req.Items))
		}
		results[item.Index] = item
		seen[item.Index] = true
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("ipcpd client: batch stream ended without a result for item %d", i)
		}
	}
	return results, nil
}

// Matrix fetches the full configuration sweep over the named generated
// program (scale 0 = the server's default).
func (c *Client) Matrix(ctx context.Context, program string, scale int) (*server.MatrixResponse, error) {
	q := url.Values{"program": {program}}
	if scale > 0 {
		q.Set("scale", strconv.Itoa(scale))
	}
	var resp server.MatrixResponse
	if err := c.get(ctx, "/v1/matrix?"+q.Encode(), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Ready polls /readyz: nil when the server is accepting work.
func (c *Client) Ready(ctx context.Context) error {
	var ignored string
	return c.roundTrip(ctx, http.MethodGet, "/readyz", nil, &ignored)
}

// Metrics fetches the /metrics text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	var text string
	err := c.roundTrip(ctx, http.MethodGet, "/metrics", nil, &text)
	return text, err
}

func (c *Client) post(ctx context.Context, path string, req, resp any) error {
	return c.roundTrip(ctx, http.MethodPost, path, req, resp)
}

func (c *Client) get(ctx context.Context, path string, resp any) error {
	return c.roundTrip(ctx, http.MethodGet, path, nil, resp)
}

// roundTrip performs one request. A non-nil body is sent as JSON. The
// answer decodes into resp — into the string itself when resp is a
// *string (the text endpoints), as JSON otherwise. With RetryBusy set
// a 429 answer is retried once after the server's requested backoff.
func (c *Client) roundTrip(ctx context.Context, method, path string, body, resp any) error {
	var data []byte
	if body != nil {
		var err error
		if data, err = json.Marshal(body); err != nil {
			return fmt.Errorf("ipcpd client: %w", err)
		}
	}
	res, err := c.do(ctx, method, path, body != nil, data)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if text, ok := resp.(*string); ok {
		raw, err := io.ReadAll(res.Body)
		if err != nil {
			return fmt.Errorf("ipcpd client: %w", err)
		}
		*text = string(raw)
		return nil
	}
	if err := json.NewDecoder(res.Body).Decode(resp); err != nil {
		return fmt.Errorf("ipcpd client: decode response: %w", err)
	}
	return nil
}

// do sends the request and returns a 2xx response, retrying a 429 once
// when RetryBusy is configured. Every non-2xx answer (including an
// unretried or twice-shed 429) comes back as *StatusError.
func (c *Client) do(ctx context.Context, method, path string, hasBody bool, data []byte) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if hasBody {
			rd = bytes.NewReader(data)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return nil, fmt.Errorf("ipcpd client: %w", err)
		}
		if hasBody {
			req.Header.Set("Content-Type", "application/json")
		}
		res, err := c.http.Do(req)
		if err != nil {
			return nil, fmt.Errorf("ipcpd client: %w", err)
		}
		if res.StatusCode/100 == 2 {
			return res, nil
		}
		serr := statusError(res)
		res.Body.Close()
		var se *StatusError
		if attempt == 0 && c.retryBusy > 0 && errors.As(serr, &se) && se.Busy() {
			delay := se.RetryAfter
			if delay <= 0 {
				delay = defaultBusyDelay
			}
			if delay > c.retryBusy {
				delay = c.retryBusy
			}
			t := time.NewTimer(delay)
			select {
			case <-t.C:
				continue
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
		}
		return nil, serr
	}
}

// StatusErrorOf builds the *StatusError for a non-2xx response a
// caller performed itself (a raw proxy pass-through), reading the JSON
// error body when there is one — the same mapping the typed calls use.
func StatusErrorOf(res *http.Response) error { return statusError(res) }

// statusError builds the *StatusError for a non-2xx response, reading
// the JSON error body when there is one.
func statusError(res *http.Response) error {
	e := &StatusError{Code: res.StatusCode, Message: res.Status}
	var body server.ErrorResponse
	if data, err := io.ReadAll(io.LimitReader(res.Body, 1<<20)); err == nil {
		if json.Unmarshal(data, &body) == nil && body.Error != "" {
			e.Message = body.Error
		} else if text := strings.TrimSpace(string(data)); text != "" {
			e.Message = text
		}
	}
	if s := res.Header.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			e.RetryAfter = time.Duration(n) * time.Second
		}
	}
	return e
}
