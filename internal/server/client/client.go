// Package client is the typed client for ipcpd, the resident analysis
// server (see package ipcp/internal/server). It speaks the server's
// JSON wire protocol and maps non-2xx answers to *StatusError so
// callers can distinguish overload (429), draining (503), and deadline
// expiry (504) from real failures.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"ipcp/internal/server"
)

// StatusError is a non-2xx server answer.
type StatusError struct {
	// Code is the HTTP status code.
	Code int

	// Message is the server's error text.
	Message string

	// RetryAfter is the server's requested backoff on a 429, zero
	// otherwise.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("ipcpd: %s (HTTP %d)", e.Message, e.Code)
}

// Busy reports whether the error is the server shedding load (a retry
// after e.RetryAfter is reasonable).
func (e *StatusError) Busy() bool { return e.Code == http.StatusTooManyRequests }

// Client talks to one ipcpd server. It is safe for concurrent use.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the server at addr ("host:port" or a full
// http:// URL).
func New(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{base: strings.TrimSuffix(addr, "/"), http: &http.Client{}}
}

// Analyze posts req to /v1/analyze.
func (c *Client) Analyze(ctx context.Context, req server.AnalyzeRequest) (*server.AnalyzeResponse, error) {
	var resp server.AnalyzeResponse
	if err := c.post(ctx, "/v1/analyze", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Transform posts req to /v1/transform.
func (c *Client) Transform(ctx context.Context, req server.TransformRequest) (*server.TransformResponse, error) {
	var resp server.TransformResponse
	if err := c.post(ctx, "/v1/transform", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Matrix fetches the full configuration sweep over the named generated
// program (scale 0 = the server's default).
func (c *Client) Matrix(ctx context.Context, program string, scale int) (*server.MatrixResponse, error) {
	q := url.Values{"program": {program}}
	if scale > 0 {
		q.Set("scale", strconv.Itoa(scale))
	}
	var resp server.MatrixResponse
	if err := c.get(ctx, "/v1/matrix?"+q.Encode(), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Ready polls /readyz: nil when the server is accepting work.
func (c *Client) Ready(ctx context.Context) error {
	var ignored string
	return c.roundTrip(ctx, http.MethodGet, "/readyz", nil, &ignored)
}

// Metrics fetches the /metrics text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	var text string
	err := c.roundTrip(ctx, http.MethodGet, "/metrics", nil, &text)
	return text, err
}

func (c *Client) post(ctx context.Context, path string, req, resp any) error {
	return c.roundTrip(ctx, http.MethodPost, path, req, resp)
}

func (c *Client) get(ctx context.Context, path string, resp any) error {
	return c.roundTrip(ctx, http.MethodGet, path, nil, resp)
}

// roundTrip performs one request. A non-nil body is sent as JSON. The
// answer decodes into resp — into the string itself when resp is a
// *string (the text endpoints), as JSON otherwise.
func (c *Client) roundTrip(ctx context.Context, method, path string, body, resp any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("ipcpd client: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("ipcpd client: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	res, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("ipcpd client: %w", err)
	}
	defer res.Body.Close()
	if res.StatusCode/100 != 2 {
		return statusError(res)
	}
	if text, ok := resp.(*string); ok {
		data, err := io.ReadAll(res.Body)
		if err != nil {
			return fmt.Errorf("ipcpd client: %w", err)
		}
		*text = string(data)
		return nil
	}
	if err := json.NewDecoder(res.Body).Decode(resp); err != nil {
		return fmt.Errorf("ipcpd client: decode response: %w", err)
	}
	return nil
}

// statusError builds the *StatusError for a non-2xx response, reading
// the JSON error body when there is one.
func statusError(res *http.Response) error {
	e := &StatusError{Code: res.StatusCode, Message: res.Status}
	var body server.ErrorResponse
	if data, err := io.ReadAll(io.LimitReader(res.Body, 1<<20)); err == nil {
		if json.Unmarshal(data, &body) == nil && body.Error != "" {
			e.Message = body.Error
		} else if text := strings.TrimSpace(string(data)); text != "" {
			e.Message = text
		}
	}
	if s := res.Header.Get("Retry-After"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			e.RetryAfter = time.Duration(n) * time.Second
		}
	}
	return e
}
