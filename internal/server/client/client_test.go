package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ipcp/internal/server"
)

// These tests pin the client's error surface: every non-2xx answer
// must come back as a *StatusError carrying the server's message and
// backoff hint, and transport or decode failures must be wrapped
// errors, never panics.

func TestStatusErrorJSONBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"program FOO: parse error"}`))
	}))
	defer srv.Close()

	_, err := New(srv.URL).Analyze(context.Background(), server.AnalyzeRequest{})
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("want *StatusError, got %T: %v", err, err)
	}
	if se.Code != http.StatusBadRequest || se.Message != "program FOO: parse error" {
		t.Fatalf("status error did not carry the server body: %+v", se)
	}
	if se.Busy() {
		t.Fatal("400 must not report Busy")
	}
}

func TestStatusErrorBusyRetryAfter(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"error":"queue full"}`))
	}))
	defer srv.Close()

	_, err := New(srv.URL).Transform(context.Background(), server.TransformRequest{})
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("want *StatusError, got %T: %v", err, err)
	}
	if !se.Busy() {
		t.Fatal("429 must report Busy")
	}
	if se.RetryAfter != 7*time.Second {
		t.Fatalf("Retry-After not parsed: %v", se.RetryAfter)
	}
	if se.Message != "queue full" {
		t.Fatalf("message: %q", se.Message)
	}
}

func TestStatusErrorNonJSONBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusGatewayTimeout)
		w.Write([]byte("analysis deadline exceeded\n"))
	}))
	defer srv.Close()

	_, err := New(srv.URL).Matrix(context.Background(), "doduc", 2)
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("want *StatusError, got %T: %v", err, err)
	}
	if se.Code != http.StatusGatewayTimeout || se.Message != "analysis deadline exceeded" {
		t.Fatalf("plain-text error body not surfaced: %+v", se)
	}
	if se.RetryAfter != 0 {
		t.Fatalf("no Retry-After header, but RetryAfter = %v", se.RetryAfter)
	}
}

func TestStatusErrorEmptyBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	err := New(srv.URL).Ready(context.Background())
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("want *StatusError, got %T: %v", err, err)
	}
	// With nothing else to go on, the message falls back to the status line.
	if se.Code != http.StatusServiceUnavailable || !strings.Contains(se.Message, "503") {
		t.Fatalf("empty-body fallback: %+v", se)
	}
}

func TestMalformedSuccessBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"report": [this is not json`))
	}))
	defer srv.Close()

	_, err := New(srv.URL).Analyze(context.Background(), server.AnalyzeRequest{})
	if err == nil {
		t.Fatal("malformed 200 body must fail")
	}
	var se *StatusError
	if errors.As(err, &se) {
		t.Fatalf("decode failure is not a *StatusError: %v", err)
	}
	if !strings.Contains(err.Error(), "decode response") {
		t.Fatalf("decode failure not labeled: %v", err)
	}
}

func TestConnectionRefused(t *testing.T) {
	// Grab a port that is certainly closed: bind, note the address, close.
	srv := httptest.NewServer(http.NotFoundHandler())
	addr := srv.Listener.Addr().String()
	srv.Close()

	_, err := New(addr).Analyze(context.Background(), server.AnalyzeRequest{})
	if err == nil {
		t.Fatal("connecting to a closed port must fail")
	}
	var se *StatusError
	if errors.As(err, &se) {
		t.Fatalf("transport failure is not a *StatusError: %v", err)
	}
	if !strings.Contains(err.Error(), "ipcpd client:") {
		t.Fatalf("transport failure not wrapped: %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer srv.Close()
	defer close(block)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := New(srv.URL).Analyze(ctx, server.AnalyzeRequest{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context deadline error, got %v", err)
	}
}

func TestAddressNormalization(t *testing.T) {
	// host:port and full URLs (with or without a trailing slash) must
	// produce the same base.
	for _, in := range []string{"localhost:7070", "http://localhost:7070", "http://localhost:7070/"} {
		c := New(in)
		if c.base != "http://localhost:7070" {
			t.Fatalf("New(%q).base = %q", in, c.base)
		}
	}
}
