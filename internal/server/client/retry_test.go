package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// These tests pin the opt-in 429 retry: off by default (load tests and
// admission probes must see the raw overload), exactly one retry when
// enabled, and the server's Retry-After clamped to the configured cap
// so a misconfigured header cannot stall the caller.

// busyN answers 429 (with the given Retry-After header, "" for none)
// to the first n requests and 200 after, counting attempts.
func busyN(n int32, retryAfter string) (*httptest.Server, *atomic.Int32) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= n {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			http.Error(w, `{"error":"busy"}`, http.StatusTooManyRequests)
			return
		}
		fmt.Fprintln(w, "ok")
	}))
	return ts, &calls
}

func TestRetryBusyOffByDefault(t *testing.T) {
	ts, calls := busyN(1, "")
	defer ts.Close()
	err := New(ts.URL).Ready(context.Background())
	var se *StatusError
	if !errors.As(err, &se) || !se.Busy() {
		t.Fatalf("err = %v, want a 429 StatusError", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("made %d requests without RetryBusy, want 1", got)
	}
}

func TestRetryBusyRetriesOnce(t *testing.T) {
	ts, calls := busyN(1, "")
	defer ts.Close()
	if err := New(ts.URL).RetryBusy(time.Second).Ready(context.Background()); err != nil {
		t.Fatalf("retry should have landed the request: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("made %d requests, want 2 (original + one retry)", got)
	}
}

func TestRetryBusyOnlyOnce(t *testing.T) {
	ts, calls := busyN(5, "")
	defer ts.Close()
	err := New(ts.URL).RetryBusy(time.Second).Ready(context.Background())
	var se *StatusError
	if !errors.As(err, &se) || !se.Busy() {
		t.Fatalf("err = %v, want the second 429 surfaced", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("made %d requests, want exactly 2", got)
	}
}

func TestRetryBusyClampsRetryAfter(t *testing.T) {
	ts, _ := busyN(1, "30") // 30s requested; the cap must win
	defer ts.Close()
	start := time.Now()
	if err := New(ts.URL).RetryBusy(50 * time.Millisecond).Ready(context.Background()); err != nil {
		t.Fatalf("retry should have landed the request: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry waited %s; the cap did not clamp Retry-After", elapsed)
	}
}

func TestRetryBusyContextCutsBackoff(t *testing.T) {
	ts, _ := busyN(1, "30")
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := New(ts.URL).RetryBusy(time.Minute).Ready(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the context to cut the backoff short", err)
	}
}
