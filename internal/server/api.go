// Package server implements ipcpd, the resident analysis server: a
// long-running daemon that keeps the summary cache and per-program
// snapshots hot in memory and serves interprocedural constant
// propagation queries over HTTP — the ParaScope program database as a
// network service (see DESIGN.md, "The analysis server").
//
// The serving core is production-shaped: a bounded worker pool behind
// a bounded admission queue (full queue = 429 + Retry-After),
// per-request deadlines wired through context.Context into the
// analysis pipeline's cancellation hook, singleflight coalescing of
// identical concurrent requests, incremental re-analysis against the
// resident snapshot of each program lineage, Prometheus-style metrics,
// and graceful shutdown that drains in-flight work.
package server

import (
	"fmt"
	"strings"

	"ipcp"
)

// This file defines the JSON wire protocol. Everything a client posts
// or receives round-trips through these types; internal/server/client
// is the typed client over them.

// ConfigRequest selects an analysis configuration on the wire. The
// jump-function flavor travels as a lower-case name for curl-ability;
// the boolean toggles that default to *on* in the paper's recommended
// configuration (return jump functions, MOD) are pointers so that an
// omitted field means "recommended", not "off".
type ConfigRequest struct {
	// Jump is the forward jump-function flavor: "literal", "intra",
	// "passthrough" (default), or "polynomial".
	Jump string `json:"jump,omitempty"`

	// ReturnJumpFunctions and MOD default to true when omitted.
	ReturnJumpFunctions *bool `json:"return_jump_functions,omitempty"`
	MOD                 *bool `json:"mod,omitempty"`

	// Complete iterates propagation with dead-code elimination.
	Complete bool `json:"complete,omitempty"`

	// DependenceSolver selects the dependence-driven solver.
	DependenceSolver bool `json:"dependence_solver,omitempty"`

	// Workers bounds the per-request analysis pipeline's own fan-out
	// (0 = server default of 1: the server parallelizes across
	// requests, not within them).
	Workers int `json:"workers,omitempty"`
}

// jumpNames maps wire names to flavors (ParseJump accepts them
// case-insensitively).
var jumpNames = map[string]ipcp.JumpFunction{
	"literal":     ipcp.Literal,
	"intra":       ipcp.Intraprocedural,
	"passthrough": ipcp.PassThrough,
	"polynomial":  ipcp.Polynomial,
}

// ParseJump resolves a wire jump-function name ("" = passthrough).
func ParseJump(name string) (ipcp.JumpFunction, error) {
	if name == "" {
		return ipcp.PassThrough, nil
	}
	if j, ok := jumpNames[strings.ToLower(name)]; ok {
		return j, nil
	}
	return 0, fmt.Errorf("unknown jump function %q (have literal, intra, passthrough, polynomial)", name)
}

// JumpName renders a flavor as its wire name.
func JumpName(j ipcp.JumpFunction) string {
	switch j {
	case ipcp.Literal:
		return "literal"
	case ipcp.Intraprocedural:
		return "intra"
	case ipcp.PassThrough:
		return "passthrough"
	default:
		return "polynomial"
	}
}

// Config resolves the request to an ipcp.Config, applying the
// defaults (passthrough flavor, return JFs and MOD on).
func (c ConfigRequest) Config() (ipcp.Config, error) {
	j, err := ParseJump(c.Jump)
	if err != nil {
		return ipcp.Config{}, err
	}
	cfg := ipcp.Config{
		Jump:                j,
		ReturnJumpFunctions: c.ReturnJumpFunctions == nil || *c.ReturnJumpFunctions,
		MOD:                 c.MOD == nil || *c.MOD,
		Complete:            c.Complete,
		DependenceSolver:    c.DependenceSolver,
		Workers:             c.Workers,
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	return cfg, nil
}

// ConfigOf spells an ipcp.Config as a wire request, every field
// explicit (the typed client uses it so round trips are exact).
func ConfigOf(cfg ipcp.Config) ConfigRequest {
	ret, mod := cfg.ReturnJumpFunctions, cfg.MOD
	return ConfigRequest{
		Jump:                JumpName(cfg.Jump),
		ReturnJumpFunctions: &ret,
		MOD:                 &mod,
		Complete:            cfg.Complete,
		DependenceSolver:    cfg.DependenceSolver,
		Workers:             cfg.Workers,
	}
}

// AnalyzeRequest is the body of POST /v1/analyze.
type AnalyzeRequest struct {
	// Source is the MiniFortran program text.
	Source string `json:"source"`

	// Program optionally names the snapshot lineage this source belongs
	// to: successive requests naming the same program re-analyze
	// incrementally against the previous request's snapshot, so an
	// edited source only re-analyzes the procedures the edit
	// invalidated. Anonymous requests ("") share one lineage.
	Program string `json:"program,omitempty"`

	// Config selects the analysis configuration.
	Config ConfigRequest `json:"config"`

	// TimeoutMS overrides the server's default per-request deadline
	// (bounded by the server's maximum).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// AnalyzeResponse is the body of a successful POST /v1/analyze.
type AnalyzeResponse struct {
	// Report is the full analysis report, including incremental-reuse
	// statistics for warm lineages.
	Report *ipcp.Report `json:"report"`

	// Coalesced reports that this response shares the work of an
	// identical concurrent request instead of a run of its own.
	Coalesced bool `json:"coalesced,omitempty"`
}

// TransformRequest is the body of POST /v1/transform.
type TransformRequest struct {
	Source    string        `json:"source"`
	Program   string        `json:"program,omitempty"`
	Config    ConfigRequest `json:"config"`
	TimeoutMS int64         `json:"timeout_ms,omitempty"`
}

// TransformResponse carries the constant-substituted source.
type TransformResponse struct {
	// Source is the transformed program text with every safely
	// substitutable interprocedural constant replaced by its literal.
	Source string `json:"source"`

	// Substituted counts the references replaced in Source.
	Substituted int `json:"substituted"`

	Coalesced bool `json:"coalesced,omitempty"`
}

// BatchRequest is the body of POST /v1/batch: N independent sources
// analyzed in one request. Items fan out concurrently — across the
// worker pool on a single server, across shards behind a fleet router
// — and each item succeeds or fails on its own (partial-failure
// semantics: the batch itself answers 200 whenever it was well-formed,
// and every item carries its own status).
type BatchRequest struct {
	// Items are the sources to analyze, at most MaxBatchItems of them.
	Items []BatchItem `json:"items"`

	// Config is the default configuration for items that do not carry
	// their own.
	Config ConfigRequest `json:"config"`

	// TimeoutMS is the default per-item deadline for items that do not
	// carry their own (each item gets its own deadline; a slow item
	// times out alone).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchItem is one source in a batch.
type BatchItem struct {
	Source string `json:"source"`

	// Program names the item's snapshot lineage, exactly as in
	// AnalyzeRequest. Behind a fleet router the lineage also decides
	// which shard serves the item.
	Program string `json:"program,omitempty"`

	// Config, when non-nil, overrides the batch-level default.
	Config *ConfigRequest `json:"config,omitempty"`

	// TimeoutMS, when positive, overrides the batch-level default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BatchItemResult is one line of the /v1/batch response stream. The
// response body is NDJSON — one BatchItemResult per line, written in
// completion order, so a client can act on early items while slow ones
// are still running. Index ties a line back to the request's Items.
type BatchItemResult struct {
	// Index is the item's position in BatchRequest.Items.
	Index int `json:"index"`

	// Status is the item's own HTTP-style status: 200 with a Report on
	// success, else the code a standalone /v1/analyze would have
	// answered (400, 429, 500, 502, 503, 504) with Error set.
	Status int `json:"status"`

	// Shard is the worker that served the item behind a fleet router
	// (-1 on a single-process server).
	Shard int `json:"shard"`

	Report    *ipcp.Report `json:"report,omitempty"`
	Error     string       `json:"error,omitempty"`
	Coalesced bool         `json:"coalesced,omitempty"`
}

// OK reports whether the item succeeded.
func (r BatchItemResult) OK() bool { return r.Status/100 == 2 }

// MatrixResponse is the body of GET /v1/matrix?program=NAME: the full
// jump-function × MOD × return-JF configuration sweep (the paper's
// Tables 2 and 3) over one named corpus program.
type MatrixResponse struct {
	// Program and Scale identify the generated corpus program.
	Program string `json:"program"`
	Scale   int    `json:"scale"`

	// Configs and Reports are parallel, in ipcp.FullMatrix order.
	Configs []ConfigRequest `json:"configs"`
	Reports []*ipcp.Report  `json:"reports"`

	Coalesced bool `json:"coalesced,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}
