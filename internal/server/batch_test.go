package server_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"ipcp"
	"ipcp/internal/server"
	"ipcp/internal/suite"
)

// TestServerBatchPartialFailure pins the single-process batch
// contract: per-item statuses (a malformed source answers 400 for its
// item only), results for every index, item-level config overrides
// honored, and reports equal to local Analyze.
func TestServerBatchPartialFailure(t *testing.T) {
	gen := suite.Random(4, 6)
	intraCfg := e2eConfig
	intraCfg.Jump = ipcp.Intraprocedural
	wantPoly := ipcp.MustLoad(gen.Source).Analyze(e2eConfig)
	wantIntra := ipcp.MustLoad(gen.Source).Analyze(intraCfg)
	normalize(wantPoly, wantIntra)

	_, c := startServer(t, server.Config{Workers: 2})
	override := server.ConfigOf(intraCfg)
	results, err := c.Batch(context.Background(), server.BatchRequest{
		Config: server.ConfigOf(e2eConfig),
		Items: []server.BatchItem{
			{Source: gen.Source, Program: "batch-a"},
			{Source: "this is not a program", Program: "batch-bad"},
			{Source: gen.Source, Program: "batch-b", Config: &override},
		},
	})
	if err != nil {
		t.Fatalf("a bad item must not fail the whole batch: %v", err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results for 3 items", len(results))
	}

	if !results[0].OK() {
		t.Fatalf("item 0: status %d (%s)", results[0].Status, results[0].Error)
	}
	normalize(results[0].Report)
	if !reflect.DeepEqual(results[0].Report, wantPoly) {
		t.Error("item 0: batch report diverges from local Analyze")
	}

	if results[1].OK() || results[1].Status != 400 || results[1].Error == "" {
		t.Errorf("item 1 (malformed source): status %d error %q, want 400 with a message",
			results[1].Status, results[1].Error)
	}

	if !results[2].OK() {
		t.Fatalf("item 2: status %d (%s)", results[2].Status, results[2].Error)
	}
	normalize(results[2].Report)
	if !reflect.DeepEqual(results[2].Report, wantIntra) {
		t.Error("item 2: per-item config override was not honored")
	}

	for i, res := range results {
		if res.Shard != -1 {
			t.Errorf("item %d: single-process server reports shard %d, want -1", i, res.Shard)
		}
	}
}

// TestServerBatchValidation: an empty batch and an oversized batch are
// rejected whole — no stream, a plain 400.
func TestServerBatchValidation(t *testing.T) {
	_, c := startServer(t, server.Config{Workers: 1})
	ctx := context.Background()
	if _, err := c.Batch(ctx, server.BatchRequest{}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("empty batch: err = %v, want HTTP 400", err)
	}
	over := server.BatchRequest{Items: make([]server.BatchItem, server.MaxBatchItems+1)}
	if _, err := c.Batch(ctx, over); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("oversized batch: err = %v, want HTTP 400", err)
	}
}
