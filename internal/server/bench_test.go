package server_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ipcp/internal/server"
	"ipcp/internal/server/client"
	"ipcp/internal/suite"
)

// BenchmarkServerThroughput drives the full serving stack — HTTP,
// admission, the worker pool, and warm incremental re-analysis — with
// one client goroutine per GOMAXPROCS, each on its own program lineage
// (so nothing coalesces and every request does real cache traffic).
// Beyond ns/op it reports req/s and the p50/p99 request latencies;
// scripts/bench.sh folds all three into BENCH_ipcp.json.
func BenchmarkServerThroughput(b *testing.B) {
	gen := suite.Random(1, 8)
	s, err := server.New(server.Config{Workers: runtime.GOMAXPROCS(0)})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	cfg := server.ConfigOf(e2eConfig)
	var (
		id  atomic.Int64
		mu  sync.Mutex
		lat []time.Duration
	)
	start := time.Now()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c := client.New(ts.URL)
		req := server.AnalyzeRequest{
			Source:  gen.Source,
			Program: fmt.Sprintf("bench-%d", id.Add(1)),
			Config:  cfg,
		}
		var local []time.Duration
		for pb.Next() {
			t0 := time.Now()
			if _, err := c.Analyze(context.Background(), req); err != nil {
				b.Error(err)
				return
			}
			local = append(local, time.Since(t0))
		}
		mu.Lock()
		lat = append(lat, local...)
		mu.Unlock()
	})
	elapsed := time.Since(start)
	b.StopTimer()

	if len(lat) == 0 {
		return
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	quantile := func(q float64) float64 {
		i := int(q * float64(len(lat)-1))
		return float64(lat[i].Nanoseconds())
	}
	b.ReportMetric(float64(len(lat))/elapsed.Seconds(), "req/s")
	b.ReportMetric(quantile(0.50), "p50-ns")
	b.ReportMetric(quantile(0.99), "p99-ns")
}
