package server_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ipcp"
	"ipcp/internal/mf/ast"
	"ipcp/internal/mf/parser"
	"ipcp/internal/server"
	"ipcp/internal/server/client"
	"ipcp/internal/suite"
)

// This file is the end-to-end proof of the serving contract: a report
// served over HTTP — concurrent, coalesced, or incremental — is
// reflect.DeepEqual to a local from-scratch Analyze of the same source
// under the same configuration; overload answers 429, deadline expiry
// answers 504 without wedging the pool, and shutdown drains.

// startServer builds a Server, mounts it on an httptest listener, and
// returns a typed client pointed at it.
func startServer(t *testing.T, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, client.New(ts.URL)
}

// editFirstLiteral bumps the first integer literal in the named unit —
// the same single-procedure edit the incremental differential suite
// uses (editing the main program keeps the invalidation closure small).
func editFirstLiteral(t *testing.T, src, unit string) string {
	t.Helper()
	file, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	edited := false
	for _, u := range file.Units {
		if u.Name != unit {
			continue
		}
		ast.RewriteExprs(u, func(e ast.Expr) ast.Expr {
			if lit, ok := e.(*ast.IntLit); ok && !edited {
				lit.Value += 3
				edited = true
			}
			return e
		})
	}
	if !edited {
		t.Fatalf("unit %s has no integer literal to edit", unit)
	}
	return ast.Format(file)
}

// normalize clears the report fields that legitimately differ between
// a served run and a local one: the echoed worker knob, wall-clock
// Nanos, and the incremental bookkeeping.
func normalize(reps ...*ipcp.Report) {
	for _, r := range reps {
		if r == nil {
			continue
		}
		r.Config.Workers = 0
		r.Incremental = nil
		// Served repeat requests warm-start stage 3 from the resident
		// snapshot's fixpoint, so their solver-effort counters shrink
		// relative to a local cold analysis; the assignment itself is
		// identical.
		r.SolverPasses = 0
		r.JFEvaluations = 0
		for i := range r.Passes {
			r.Passes[i].Nanos = 0
		}
	}
}

var e2eConfig = ipcp.Config{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true, Workers: 1}

// TestServerConcurrentClientsMatchLocal fires concurrent clients — an
// even split of an original source and an edited one, all sharing one
// program lineage — and requires every response to equal the local
// from-scratch analysis of its source.
func TestServerConcurrentClientsMatchLocal(t *testing.T) {
	gen := suite.Random(1, 8)
	edited := editFirstLiteral(t, gen.Source, "RANDP")
	wantV1 := ipcp.MustLoad(gen.Source).Analyze(e2eConfig)
	wantV2 := ipcp.MustLoad(edited).Analyze(e2eConfig)
	normalize(wantV1, wantV2)

	_, c := startServer(t, server.Config{Workers: 4})
	const clients = 10
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src, want := gen.Source, wantV1
			if i%2 == 1 {
				src, want = edited, wantV2
			}
			resp, err := c.Analyze(context.Background(), server.AnalyzeRequest{
				Source:  src,
				Program: "randp",
				Config:  server.ConfigOf(e2eConfig),
			})
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			normalize(resp.Report)
			if !reflect.DeepEqual(resp.Report, want) {
				t.Errorf("client %d: served report diverges from local Analyze", i)
			}
		}(i)
	}
	wg.Wait()
}

// TestServerIncrementalAcrossRequests sends an original and then an
// edited source down one lineage: the second response must report a
// partial re-analysis (the snapshot survived between requests) and
// still match scratch.
func TestServerIncrementalAcrossRequests(t *testing.T) {
	gen := suite.Random(2, 8)
	edited := editFirstLiteral(t, gen.Source, "RANDP")
	_, c := startServer(t, server.Config{Workers: 2})

	req := server.AnalyzeRequest{Source: gen.Source, Program: "randp", Config: server.ConfigOf(e2eConfig)}
	first, err := c.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	st := first.Report.Incremental
	if st == nil || st.Reanalyzed != st.TotalProcedures {
		t.Fatalf("cold request should re-analyze everything, got %+v", st)
	}

	req.Source = edited
	second, err := c.Analyze(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	st = second.Report.Incremental
	if st == nil || st.Reanalyzed >= st.TotalProcedures || st.Reused == 0 {
		t.Fatalf("edited request should reuse summaries, got %+v", st)
	}
	want := ipcp.MustLoad(edited).Analyze(e2eConfig)
	normalize(want, second.Report)
	if !reflect.DeepEqual(second.Report, want) {
		t.Fatal("incremental served report diverges from local Analyze")
	}
}

// TestServerSnapshotLRU pins the resident-snapshot bound: with
// MaxSnapshots lineages at most, a third lineage evicts the least
// recently used one, the eviction surfaces in /metrics, and a request
// in the evicted lineage still answers correctly — it loses the
// warm-start seed but not the cached summaries, which the engine
// refetches by content address.
func TestServerSnapshotLRU(t *testing.T) {
	_, c := startServer(t, server.Config{Workers: 1, MaxSnapshots: 2})
	ctx := context.Background()

	sources := map[string]string{
		"a": suite.Random(11, 4).Source,
		"b": suite.Random(12, 4).Source,
		"c": suite.Random(13, 4).Source,
	}
	for _, lineage := range []string{"a", "b", "c"} {
		req := server.AnalyzeRequest{Source: sources[lineage], Program: lineage, Config: server.ConfigOf(e2eConfig)}
		if _, err := c.Analyze(ctx, req); err != nil {
			t.Fatal(err)
		}
	}

	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "ipcpd_snapshots 2\n") {
		t.Fatalf("snapshot gauge not capped at 2:\n%s", text)
	}
	if !strings.Contains(text, "ipcpd_snapshot_evictions_total 1\n") {
		t.Fatalf("eviction counter not surfaced:\n%s", text)
	}

	// Lineage "a" was evicted: its snapshot is gone, but its summaries
	// are still in the shared cache under content-addressed keys, so an
	// unchanged re-request runs without a snapshot yet reuses every
	// procedure — eviction costs resident memory, not recomputation —
	// and the report must match a local Analyze exactly.
	rea, err := c.Analyze(ctx, server.AnalyzeRequest{Source: sources["a"], Program: "a", Config: server.ConfigOf(e2eConfig)})
	if err != nil {
		t.Fatal(err)
	}
	if st := rea.Report.Incremental; st == nil || st.Reused == 0 || st.CacheHits == 0 {
		t.Fatalf("evicted lineage should reuse cached summaries, got %+v", st)
	}
	want := ipcp.MustLoad(sources["a"]).Analyze(e2eConfig)
	normalize(want, rea.Report)
	if !reflect.DeepEqual(rea.Report, want) {
		t.Fatal("evicted-lineage report diverges from local Analyze")
	}

	// Lineage "c" is still resident: an unchanged re-request reuses
	// every summary and visits nothing in the warm re-solve.
	rec, err := c.Analyze(ctx, server.AnalyzeRequest{Source: sources["c"], Program: "c", Config: server.ConfigOf(e2eConfig)})
	if err != nil {
		t.Fatal(err)
	}
	if st := rec.Report.Incremental; st == nil || st.Reanalyzed != 0 || !st.WarmStarted || st.WorklistVisited != 0 {
		t.Fatalf("resident lineage should reuse everything warm, got %+v", st)
	}
}

// gatedServer is startServer plus the analysis gate: every pooled job
// announces itself on the returned channel, then blocks until release
// is called (idempotent, and registered as cleanup so a failing test
// never wedges Shutdown).
func gatedServer(t *testing.T, cfg server.Config) (*server.Server, *client.Client, chan struct{}, func()) {
	t.Helper()
	s, c := startServer(t, cfg)
	entered := make(chan struct{}, 16)
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	t.Cleanup(release)
	s.SetGate(func() { entered <- struct{}{}; <-gate })
	return s, c, entered, release
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerCoalescing holds a leader in flight behind the analysis
// gate, parks three identical requests behind it, and asserts exactly
// those three come back coalesced with bit-identical reports — and
// that the coalesced counter surfaces in /metrics.
func TestServerCoalescing(t *testing.T) {
	gen := suite.Random(3, 6)
	s, c, entered, release := gatedServer(t, server.Config{Workers: 1})

	const followers = 3
	req := server.AnalyzeRequest{Source: gen.Source, Program: "randp", Config: server.ConfigOf(e2eConfig)}
	type outcome struct {
		resp *server.AnalyzeResponse
		err  error
	}
	results := make(chan outcome, followers+1)
	call := func() {
		resp, err := c.Analyze(context.Background(), req)
		results <- outcome{resp, err}
	}
	go call() // leader: enters the pool and blocks on the gate
	<-entered
	for i := 0; i < followers; i++ {
		go call()
	}
	waitFor(t, "followers to park behind the leader", func() bool { return s.Waiters() == followers })
	release()

	coalesced := 0
	for i := 0; i < followers+1; i++ {
		out := <-results
		if out.err != nil {
			t.Fatal(out.err)
		}
		if out.resp.Coalesced {
			coalesced++
		}
		normalize(out.resp.Report)
	}
	if coalesced != followers {
		t.Fatalf("coalesced = %d, want %d", coalesced, followers)
	}

	text, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := fmt.Sprintf("ipcpd_coalesced_total %d", followers); !strings.Contains(text, want) {
		t.Fatalf("metrics missing %q:\n%s", want, text)
	}
}

// TestServerDeadlineDoesNotWedgePool expires a request's deadline
// while its job holds the only worker: the request must answer 504,
// and once the job unblocks the pool must serve again.
func TestServerDeadlineDoesNotWedgePool(t *testing.T) {
	gen := suite.Random(4, 6)
	_, c, _, release := gatedServer(t, server.Config{Workers: 1})

	req := server.AnalyzeRequest{Source: gen.Source, Program: "randp", Config: server.ConfigOf(e2eConfig), TimeoutMS: 50}
	_, err := c.Analyze(context.Background(), req)
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != 504 {
		t.Fatalf("expired request: got %v, want HTTP 504", err)
	}

	release() // the abandoned job aborts on its first context check
	req.TimeoutMS = 0
	if _, err := c.Analyze(context.Background(), req); err != nil {
		t.Fatalf("pool wedged after deadline expiry: %v", err)
	}
}

// TestServerAdmissionControl fills the one-worker, one-slot queue and
// asserts the next (distinct) request is shed with 429 + Retry-After
// while the admitted ones still complete.
func TestServerAdmissionControl(t *testing.T) {
	gen := suite.Random(5, 6)
	s, c, entered, release := gatedServer(t, server.Config{Workers: 1, QueueDepth: 1})

	req := func(program string) server.AnalyzeRequest {
		return server.AnalyzeRequest{Source: gen.Source, Program: program, Config: server.ConfigOf(e2eConfig)}
	}
	results := make(chan error, 2)
	go func() { _, err := c.Analyze(context.Background(), req("a")); results <- err }()
	<-entered
	go func() { _, err := c.Analyze(context.Background(), req("b")); results <- err }()
	waitFor(t, "second request to fill the queue", func() bool { return s.QueueDepth() == 1 })

	_, err := c.Analyze(context.Background(), req("c"))
	var se *client.StatusError
	if !errors.As(err, &se) || !se.Busy() {
		t.Fatalf("overload: got %v, want HTTP 429", err)
	}
	if se.RetryAfter <= 0 {
		t.Fatalf("429 without Retry-After: %+v", se)
	}

	release()
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("admitted request failed: %v", err)
		}
	}
}

// TestServerTransformMatchesLocal compares a served transform to the
// local TransformedSource of a local report.
func TestServerTransformMatchesLocal(t *testing.T) {
	gen := suite.Generate("trfd", 1)
	prog := ipcp.MustLoad(gen.Source)
	wantSrc, wantN, err := prog.TransformedSource(prog.Analyze(e2eConfig))
	if err != nil {
		t.Fatal(err)
	}

	_, c := startServer(t, server.Config{Workers: 2})
	resp, err := c.Transform(context.Background(), server.TransformRequest{
		Source: gen.Source, Program: "trfd", Config: server.ConfigOf(e2eConfig),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Source != wantSrc || resp.Substituted != wantN {
		t.Fatalf("served transform diverges: %d substitutions, want %d", resp.Substituted, wantN)
	}
}

// TestServerMatrixMatchesLocal compares the served configuration sweep
// to a local AnalyzeMatrix over the same generated program.
func TestServerMatrixMatchesLocal(t *testing.T) {
	gen := suite.Generate("trfd", 1)
	prog := ipcp.MustLoad(gen.Source)
	want := prog.AnalyzeMatrix(ipcp.FullMatrix(), 1)
	normalize(want...)

	_, c := startServer(t, server.Config{Workers: 2})
	resp, err := c.Matrix(context.Background(), "trfd", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Reports) != len(want) || len(resp.Configs) != len(want) {
		t.Fatalf("served %d reports / %d configs, want %d", len(resp.Reports), len(resp.Configs), len(want))
	}
	normalize(resp.Reports...)
	for i := range want {
		if !reflect.DeepEqual(resp.Reports[i], want[i]) {
			t.Fatalf("matrix report %d diverges from local AnalyzeMatrix", i)
		}
	}
}

// TestServerShutdownDrains holds a request in flight, shuts the server
// down concurrently, and requires the request to finish successfully
// and later admissions to be refused.
func TestServerShutdownDrains(t *testing.T) {
	gen := suite.Random(6, 6)
	s, c, entered, release := gatedServer(t, server.Config{Workers: 1})

	req := server.AnalyzeRequest{Source: gen.Source, Program: "randp", Config: server.ConfigOf(e2eConfig)}
	results := make(chan error, 1)
	go func() { _, err := c.Analyze(context.Background(), req); results <- err }()
	<-entered

	shutdown := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdown <- s.Shutdown(ctx)
	}()
	time.Sleep(10 * time.Millisecond) // let drain begin
	release()

	if err := <-results; err != nil {
		t.Fatalf("in-flight request not drained: %v", err)
	}
	if err := <-shutdown; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	_, err := c.Analyze(context.Background(), req)
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != 503 {
		t.Fatalf("post-shutdown request: got %v, want HTTP 503", err)
	}
}

// TestServerBadRequests pins the 4xx mapping: malformed body, unknown
// jump flavor, source that does not parse, unknown matrix program.
func TestServerBadRequests(t *testing.T) {
	_, c := startServer(t, server.Config{Workers: 1})
	cases := []struct {
		name string
		call func() error
		code int
	}{
		{"unknown jump", func() error {
			_, err := c.Analyze(context.Background(), server.AnalyzeRequest{
				Source: "      PROGRAM P\n      END\n", Config: server.ConfigRequest{Jump: "quadratic"},
			})
			return err
		}, 400},
		{"unparsable source", func() error {
			_, err := c.Analyze(context.Background(), server.AnalyzeRequest{Source: "not fortran"})
			return err
		}, 400},
		{"unknown program", func() error {
			_, err := c.Matrix(context.Background(), "nonesuch", 1)
			return err
		}, 404},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			var se *client.StatusError
			if !errors.As(err, &se) || se.Code != tc.code {
				t.Fatalf("got %v, want HTTP %d", err, tc.code)
			}
		})
	}
}

// TestClientReadyAndHealth exercises the liveness plumbing end to end.
func TestClientReadyAndHealth(t *testing.T) {
	s, c := startServer(t, server.Config{Workers: 1})
	if err := c.Ready(context.Background()); err != nil {
		t.Fatalf("ready server reported not ready: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	err := c.Ready(context.Background())
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != 503 {
		t.Fatalf("draining server: got %v, want HTTP 503", err)
	}
}
