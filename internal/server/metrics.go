package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ipcp"
)

// This file implements the server's metrics: counters, a latency
// histogram per endpoint, and gauges, exposed in the Prometheus text
// format at GET /metrics. Everything is hand-rolled over sync/atomic —
// the module is dependency-free by policy — and the exposition is the
// de-facto standard so any scraper can consume it.

// LatencyBounds are the request-latency histogram bucket upper bounds,
// in seconds, shared by this package and the fleet router's metrics.
var LatencyBounds = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// BatchSizeBounds are the bucket upper bounds for batch-size
// histograms (items per /v1/batch request).
var BatchSizeBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// Histogram is a fixed-bucket histogram exposed in the Prometheus text
// format. It is exported so internal/fleet shares one implementation.
type Histogram struct {
	bounds []float64
	mu     sync.Mutex
	counts []int64 // one per bound, plus +Inf
	sum    float64
	total  int64
}

// NewHistogram returns a histogram over the given ascending bucket
// upper bounds (plus an implicit +Inf bucket).
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.total++
}

// Expose writes the histogram's cumulative bucket, sum, and count
// series for the metric name. labels, when non-empty, is a rendered
// label list without braces (`endpoint="analyze"`) merged into each
// series alongside le.
func (h *Histogram) Expose(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, bound, cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.total)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", name, h.sum, name, h.total)
		return
	}
	fmt.Fprintf(w, "%s_sum{%s} %g\n%s_count{%s} %d\n", name, labels, h.sum, name, labels, h.total)
}

// endpointMetrics is one endpoint's request tally.
type endpointMetrics struct {
	mu      sync.Mutex
	byCode  map[int]int64
	latency *Histogram
}

func (e *endpointMetrics) record(code int, seconds float64) {
	e.mu.Lock()
	e.byCode[code]++
	e.mu.Unlock()
	e.latency.Observe(seconds)
}

// metrics is the server-wide instrumentation.
type metrics struct {
	start     time.Time
	endpoints map[string]*endpointMetrics
	batchSize *Histogram // items per /v1/batch request

	inFlight    atomic.Int64 // requests admitted and not yet answered
	coalesced   atomic.Int64 // responses served from an identical in-flight request
	rejected    atomic.Int64 // admissions refused with 429
	timeouts    atomic.Int64 // requests abandoned at their deadline
	gcRuns      atomic.Int64 // cache GC sweeps
	gcDeleted   atomic.Int64 // files cache GC deleted
	snapEvicted atomic.Int64 // resident snapshots dropped by the LRU bound
	batchItems  atomic.Int64 // batch items answered with a report
	batchErrors atomic.Int64 // batch items answered with a per-item error
	walReplayed atomic.Int64 // journal records replayed at boot
	walSkipped  atomic.Int64 // journal records already present at boot
	walCorrupt  atomic.Int64 // torn or corrupt journal records dropped at boot
}

func newMetrics(endpoints ...string) *metrics {
	m := &metrics{
		start:     time.Now(),
		endpoints: make(map[string]*endpointMetrics, len(endpoints)),
		batchSize: NewHistogram(BatchSizeBounds),
	}
	for _, ep := range endpoints {
		m.endpoints[ep] = &endpointMetrics{byCode: make(map[int]int64), latency: NewHistogram(LatencyBounds)}
	}
	return m
}

// record tallies one finished request.
func (m *metrics) record(endpoint string, code int, elapsed time.Duration) {
	if e := m.endpoints[endpoint]; e != nil {
		e.record(code, elapsed.Seconds())
	}
}

// write renders the exposition. The point-in-time gauges the metrics
// struct does not own — queue depth, snapshot count, the summary
// cache's counters — are sampled by the caller and passed in.
func (m *metrics) write(w io.Writer, queueDepth, snapshots int, cache ipcp.CacheStats) {
	names := make([]string, 0, len(m.endpoints))
	for ep := range m.endpoints {
		names = append(names, ep)
	}
	sort.Strings(names)

	fmt.Fprintf(w, "# HELP ipcpd_requests_total Served requests by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE ipcpd_requests_total counter\n")
	for _, ep := range names {
		e := m.endpoints[ep]
		e.mu.Lock()
		codes := make([]int, 0, len(e.byCode))
		for c := range e.byCode {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(w, "ipcpd_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, c, e.byCode[c])
		}
		e.mu.Unlock()
	}

	fmt.Fprintf(w, "# HELP ipcpd_request_duration_seconds Request latency by endpoint.\n")
	fmt.Fprintf(w, "# TYPE ipcpd_request_duration_seconds histogram\n")
	for _, ep := range names {
		m.endpoints[ep].latency.Expose(w, "ipcpd_request_duration_seconds", fmt.Sprintf("endpoint=%q", ep))
	}

	fmt.Fprintf(w, "# HELP ipcpd_batch_size Items per /v1/batch request.\n")
	fmt.Fprintf(w, "# TYPE ipcpd_batch_size histogram\n")
	m.batchSize.Expose(w, "ipcpd_batch_size", "")

	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("ipcpd_in_flight", "Requests admitted and not yet answered.", m.inFlight.Load())
	gauge("ipcpd_queue_depth", "Admitted jobs waiting for a worker.", int64(queueDepth))
	gauge("ipcpd_snapshots", "Resident program-lineage snapshots.", int64(snapshots))
	counter("ipcpd_snapshot_evictions_total", "Resident snapshots dropped by the MaxSnapshots LRU bound.", m.snapEvicted.Load())
	counter("ipcpd_batch_items_total", "Batch items answered with a report.", m.batchItems.Load())
	counter("ipcpd_batch_item_errors_total", "Batch items answered with a per-item error.", m.batchErrors.Load())
	counter("ipcpd_coalesced_total", "Responses served from an identical in-flight request.", m.coalesced.Load())
	counter("ipcpd_rejected_total", "Requests refused by admission control (429).", m.rejected.Load())
	counter("ipcpd_timeouts_total", "Requests abandoned at their deadline (504).", m.timeouts.Load())
	counter("ipcpd_summary_cache_hits_total", "Summary-store lookups that found an entry.", cache.Hits)
	counter("ipcpd_summary_cache_misses_total", "Summary-store lookups that found nothing.", cache.Misses)
	counter("ipcpd_summary_cache_puts_total", "Summaries written to the store.", cache.Puts)
	counter("ipcpd_summary_cache_put_bytes_total", "Bytes of summaries written to the store.", cache.BytesSaved)
	counter("ipcpd_summary_cache_evictions_total", "Summaries evicted by a bounded store.", cache.Evictions)
	counter("ipcpd_summary_cache_errors_total", "Summary-store operations that failed (I/O or remote faults, degraded to misses).", cache.Errors)
	counter("ipcpd_cache_gc_runs_total", "Cache GC sweeps completed.", m.gcRuns.Load())
	counter("ipcpd_cache_gc_deleted_total", "Files deleted by cache GC.", m.gcDeleted.Load())
	counter("ipcpd_wal_replayed_total", "Write-ahead journal records replayed into the cache at boot.", m.walReplayed.Load())
	counter("ipcpd_wal_skipped_total", "Journal records already present in the cache at boot.", m.walSkipped.Load())
	counter("ipcpd_wal_corrupt_total", "Torn or corrupt journal records dropped at boot.", m.walCorrupt.Load())
	fmt.Fprintf(w, "# HELP ipcpd_uptime_seconds Seconds since the server started.\n# TYPE ipcpd_uptime_seconds gauge\nipcpd_uptime_seconds %g\n",
		time.Since(m.start).Seconds())
}
