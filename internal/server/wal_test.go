package server_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ipcp/internal/server"
	"ipcp/internal/wal"
)

// These tests prove the daemon half of the durability contract: a
// journal a dead process left behind is replayed into the cache at
// boot, the replay is visible in /metrics, and a clean shutdown
// retires every segment so the next boot has nothing to do.

// seedJournal writes n records into a fresh journal under dir, as a
// process that died before its write-backs confirmed would have, and
// returns the hex keys and payloads.
func seedJournal(t *testing.T, dir string, n int) (keys []string, payloads [][]byte) {
	t.Helper()
	j, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		payload := []byte(strings.Repeat("summary", i+1))
		key := wal.Key(sha256.Sum256(payload))
		if _, err := j.Append(key, payload); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, hex.EncodeToString(key[:]))
		payloads = append(payloads, payload)
	}
	// Close without Confirm: the records stay on disk for recovery.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return keys, payloads
}

func TestServerBootReplaysJournal(t *testing.T) {
	dir := t.TempDir()
	keys, payloads := seedJournal(t, dir, 3)

	s, err := server.New(server.Config{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mux := s.Handler()

	// Every journaled record is servable from the cache.
	for i, key := range keys {
		req, _ := http.NewRequest("GET", "/v1/blob/"+key, nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("blob %d: status %d", i, rec.Code)
		}
		if rec.Body.String() != string(payloads[i]) {
			t.Fatalf("blob %d: recovered payload diverges", i)
		}
	}

	// The replay shows in the metrics exposition.
	req, _ := http.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "ipcpd_wal_replayed_total 3") {
		t.Fatalf("metrics do not report the replay:\n%s", grepLines(rec.Body.String(), "wal"))
	}

	// A clean shutdown flushes, confirms, and retires: no segments left.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.wal"))
	if len(segs) != 0 {
		t.Fatalf("clean shutdown left %d journal segments: %v", len(segs), segs)
	}

	// The next boot replays nothing — the blobs are on disk already.
	s2, err := server.New(server.Config{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	rec = httptest.NewRecorder()
	s2.Handler().ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "ipcpd_wal_replayed_total 0") {
		t.Fatalf("second boot replayed something:\n%s", grepLines(rec.Body.String(), "wal"))
	}
	for i, key := range keys {
		blobReq, _ := http.NewRequest("GET", "/v1/blob/"+key, nil)
		brec := httptest.NewRecorder()
		s2.Handler().ServeHTTP(brec, blobReq)
		if brec.Code != http.StatusOK {
			t.Fatalf("blob %d lost across clean restart: status %d", i, brec.Code)
		}
	}
}

func TestServerDisableWALSkipsReplay(t *testing.T) {
	dir := t.TempDir()
	keys, _ := seedJournal(t, dir, 1)

	s, err := server.New(server.Config{CacheDir: dir, DisableWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())

	// No replay: the journaled blob is not in the cache.
	req, _ := http.NewRequest("GET", "/v1/blob/"+keys[0], nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("journaled blob served with the WAL disabled: status %d", rec.Code)
	}

	// And the foreign segments are left alone for a future WAL-enabled
	// boot to recover.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.wal"))
	if len(segs) == 0 {
		t.Fatal("WAL-disabled server deleted journal segments it does not own")
	}
}

// grepLines filters s to the lines containing substr, for focused
// failure messages.
func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
