package server_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"ipcp"
	"ipcp/internal/server"
	"ipcp/internal/suite"
)

// startBlobServer is startServer for tests that need the raw base URL
// (the blob protocol is binary, not part of the typed client).
func startBlobServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts.URL
}

func blobURL(base, key string) string { return base + "/v1/blob/" + key }

func putBlob(t *testing.T, base, key string, data []byte, sum string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, blobURL(base, key), bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if sum != "" {
		req.Header.Set("X-Blob-Sum", sum)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestServerBlobEndpoint pins the wire contract of GET/PUT /v1/blob/:
// round trip, miss, malformed keys, checksum rejection, and the
// checksum header on the way back out.
func TestServerBlobEndpoint(t *testing.T) {
	_, base := startBlobServer(t, server.Config{Workers: 1})
	key := strings.Repeat("ab", 32)
	data := []byte("blob payload")
	sum := sha256.Sum256(data)
	hexSum := hex.EncodeToString(sum[:])

	if resp, err := http.Get(blobURL(base, key)); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET before PUT: status %d, want 404", resp.StatusCode)
	}

	if resp := putBlob(t, base, key, data, hexSum); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT: status %d, want 204", resp.StatusCode)
	}
	resp, err := http.Get(blobURL(base, key))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, data) {
		t.Fatalf("GET after PUT: status %d body %q", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Blob-Sum"); !strings.EqualFold(got, hexSum) {
		t.Fatalf("GET checksum header = %q, want %q", got, hexSum)
	}

	// A body that does not match its declared checksum must be refused,
	// and must not clobber the stored blob.
	if resp := putBlob(t, base, key, []byte("tampered"), hexSum); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PUT with wrong checksum: status %d, want 400", resp.StatusCode)
	}
	if resp, err := http.Get(blobURL(base, key)); err != nil {
		t.Fatal(err)
	} else {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !bytes.Equal(body, data) {
			t.Fatalf("stored blob changed after rejected PUT: %q", body)
		}
	}

	// Malformed keys: wrong length, non-hex.
	for _, bad := range []string{"abc", strings.Repeat("zz", 32)} {
		if resp, err := http.Get(blobURL(base, bad)); err != nil {
			t.Fatal(err)
		} else if resp.Body.Close(); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET with key %q: status %d, want 400", bad, resp.StatusCode)
		}
		if resp := putBlob(t, base, bad, data, ""); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("PUT with key %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestServerRemoteCacheSharing is the fleet scenario end to end: two
// "machines" (tiered caches with empty local tiers) share one ipcpd
// blob endpoint. The first analyzes and writes back; the second, on
// the same source and configuration, fetches everything through the
// remote tier — full reuse on a machine that has computed nothing —
// and under a different flavor still hits the shared stage-1 layer.
// Both reports must equal a local scratch Analyze.
func TestServerRemoteCacheSharing(t *testing.T) {
	_, base := startBlobServer(t, server.Config{Workers: 1})
	src := suite.Generate("ocean", 2).Source
	cfg := ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true}

	machine1 := ipcp.NewTieredCache(ipcp.NewMemoryCache(), ipcp.NewRemoteCache(base))
	prog := ipcp.MustLoad(src)
	rep1, _ := prog.AnalyzeIncremental(cfg, nil, machine1)
	machine1.Flush() // write-back to the server must land before machine 2 reads

	machine2 := ipcp.NewTieredCache(ipcp.NewMemoryCache(), ipcp.NewRemoteCache(base))
	rep2, _ := prog.AnalyzeIncremental(cfg, nil, machine2)
	if st := rep2.Incremental; st.CacheHits != st.TotalProcedures || st.Reanalyzed != 0 {
		t.Fatalf("machine 2 should reuse everything via the remote tier, got %+v", st)
	}

	// A different flavor on machine 2: stage-1 blobs are shared across
	// flavors, so they arrive from the remote even though no machine has
	// run this flavor before.
	poly := cfg
	poly.Jump = ipcp.Polynomial
	rep3, _ := prog.AnalyzeIncremental(poly, nil, machine2)
	if st := rep3.Incremental; st.Stage1Hits != st.TotalProcedures {
		t.Fatalf("cross-flavor run should hit the shared stage-1 layer, got %+v", st)
	}

	scratch := prog.Analyze(cfg)
	for i, rep := range []*ipcp.Report{rep1, rep2} {
		rep := rep
		normalize(scratch, rep)
		if !reflect.DeepEqual(scratch, rep) {
			t.Fatalf("machine %d report diverges from local scratch Analyze", i+1)
		}
	}
	scratchPoly := prog.Analyze(poly)
	normalize(scratchPoly, rep3)
	if !reflect.DeepEqual(scratchPoly, rep3) {
		t.Fatal("cross-flavor remote-cache report diverges from local scratch Analyze")
	}
}

// TestServerBlobMetrics pins that blob traffic shows up as its own
// endpoint in /metrics and that the new cache counters are exposed.
func TestServerBlobMetrics(t *testing.T) {
	_, base := startBlobServer(t, server.Config{Workers: 1})
	key := strings.Repeat("cd", 32)
	putBlob(t, base, key, []byte("v"), "")
	if resp, err := http.Get(blobURL(base, key)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`ipcpd_requests_total{endpoint="blob",code="200"} 1`,
		`ipcpd_requests_total{endpoint="blob",code="204"} 1`,
		"ipcpd_summary_cache_put_bytes_total",
		"ipcpd_summary_cache_errors_total",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
