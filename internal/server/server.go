package server

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ipcp"
	"ipcp/internal/suite"
	"ipcp/internal/summary"
)

// Config tunes a Server. The zero value is usable: every field has a
// default chosen for an interactive daemon.
type Config struct {
	// Workers is the number of analyses that may run concurrently
	// (default: GOMAXPROCS). The server parallelizes across requests;
	// each analysis runs with the pipeline workers its request asked
	// for (default 1).
	Workers int

	// QueueDepth bounds how many admitted requests may wait for a
	// worker (default: 4×Workers). A request arriving past the bound is
	// rejected with 429 + Retry-After rather than queued.
	QueueDepth int

	// DefaultTimeout is the per-request deadline when the request does
	// not carry its own (default: 30s). MaxTimeout caps what a request
	// may ask for (default: 2m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration

	// CacheDir persists the summary cache on disk, shared with every
	// cmd/ipcp -cache-dir run pointed at the same directory. Empty
	// keeps the cache in memory only.
	CacheDir string

	// CacheBudget is the byte budget GC sweeps the disk cache down to
	// (0 = delete only unreferenced entries). GCInterval enables
	// periodic sweeps (0 = only on demand via GC).
	CacheBudget int64
	GCInterval  time.Duration

	// RemoteCache, when non-empty, layers a shared remote blob tier —
	// another ipcpd's /v1/blob endpoint — behind the local cache, so
	// shard-local caches share stage-1 summaries fleet-wide. Remote
	// faults degrade to misses; queued write-backs are flushed during
	// graceful shutdown.
	RemoteCache string

	// DisableWAL turns off the disk cache's write-ahead journal (the
	// -wal=false escape hatch). With a CacheDir and the WAL on — the
	// default — every accepted summary put is journaled before it is
	// acknowledged and replayed at the next boot if the process dies
	// before the write-back lands.
	DisableWAL bool

	// MaxSnapshots bounds the resident snapshot map: the server keeps
	// the snapshots of at most this many program lineages (default 64),
	// evicting the least recently used past the bound. Eviction only
	// costs the next request in that lineage a cold re-analysis — its
	// summaries are still in the cache — so the bound is a memory
	// ceiling, not a correctness knob.
	MaxSnapshots int

	// Log, when non-nil, receives operational messages (GC sweeps,
	// background errors). Request serving never logs.
	Log *log.Logger
}

// Server is the resident analysis service. Create one with New, mount
// Handler on any mux or call Serve, and stop with Shutdown.
type Server struct {
	cfg     Config
	cache   *ipcp.SummaryCache
	pool    *pool
	flights *flightGroup
	metrics *metrics

	// snapshots maps a lineage — configuration cache key + program
	// name — to the snapshot its last analysis left behind, so the next
	// request in the lineage re-analyzes only what changed. The map is
	// LRU-bounded at cfg.MaxSnapshots; snapOrder keeps the recency list
	// (front = most recently used).
	mu        sync.Mutex
	snapshots map[string]*list.Element
	snapOrder *list.List
	httpSrv   *http.Server

	ready  atomic.Bool
	gcStop chan struct{}
	gcOnce sync.Once
	gcDone sync.WaitGroup

	// gate, when non-nil, is called by each analyze/transform job on a
	// worker before analysis begins — a test hook that holds a leader
	// in flight so coalescing can be observed deterministically.
	gate func()
}

// New builds a Server (opening the disk cache if configured) and
// starts its worker pool and, when configured, its periodic GC.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 2 * time.Minute
	}
	if cfg.MaxSnapshots <= 0 {
		cfg.MaxSnapshots = 64
	}
	var cache *ipcp.SummaryCache
	var replay ipcp.WALReplayStats
	switch {
	case cfg.CacheDir != "" && !cfg.DisableWAL:
		// The durable stack: memory in front of disk (in front of the
		// remote), journaled so a crash loses no acknowledged put.
		// Recovery replays whatever the last process left behind.
		var err error
		cache, replay, err = ipcp.NewDurableCache(ipcp.DurableCacheOptions{
			Dir:        cfg.CacheDir,
			RemoteURL:  cfg.RemoteCache,
			MemEntries: 4096,
		})
		if err != nil {
			return nil, err
		}
	case cfg.CacheDir != "":
		var err error
		if cache, err = ipcp.NewDiskCache(cfg.CacheDir); err != nil {
			return nil, err
		}
	default:
		cache = ipcp.NewMemoryCache()
	}
	if cfg.RemoteCache != "" && (cfg.CacheDir == "" || cfg.DisableWAL) {
		cache = ipcp.NewTieredCache(cache, ipcp.NewRemoteCache(cfg.RemoteCache))
	}
	s := &Server{
		cfg:       cfg,
		cache:     cache,
		pool:      newPool(cfg.Workers, cfg.QueueDepth),
		flights:   newFlightGroup(),
		metrics:   newMetrics("analyze", "transform", "matrix", "batch", "blob"),
		snapshots: make(map[string]*list.Element),
		snapOrder: list.New(),
		gcStop:    make(chan struct{}),
	}
	s.metrics.walReplayed.Store(int64(replay.Replayed))
	s.metrics.walSkipped.Store(int64(replay.Skipped))
	s.metrics.walCorrupt.Store(int64(replay.Corrupt))
	if replay.Replayed > 0 || replay.Corrupt > 0 {
		s.logf("wal recovery: %d records replayed, %d already present, %d corrupt",
			replay.Replayed, replay.Skipped, replay.Corrupt)
	}
	s.ready.Store(true)
	if cfg.CacheDir != "" && cfg.GCInterval > 0 {
		s.gcDone.Add(1)
		go s.gcLoop()
	}
	return s, nil
}

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.instrument("analyze", s.handleAnalyze))
	mux.HandleFunc("POST /v1/transform", s.instrument("transform", s.handleTransform))
	mux.HandleFunc("POST /v1/batch", s.instrument("batch", s.handleBatch))
	mux.HandleFunc("GET /v1/matrix", s.instrument("matrix", s.handleMatrix))
	mux.HandleFunc("GET /v1/blob/{key}", s.instrument("blob", s.handleBlobGet))
	mux.HandleFunc("PUT /v1/blob/{key}", s.instrument("blob", s.handleBlobPut))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.metrics.write(w, s.pool.depth(), s.snapshotCount(), s.cache.Stats())
	})
	return mux
}

// Serve accepts connections on l until Shutdown. It returns nil after
// a graceful shutdown.
func (s *Server) Serve(l net.Listener) error {
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	s.mu.Lock()
	s.httpSrv = srv
	s.mu.Unlock()
	err := srv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the server: readiness goes false (load balancers
// stop sending), the HTTP server stops accepting and waits for open
// requests up to ctx's deadline, then the worker pool finishes every
// admitted job, the cache is closed — pending write-backs flushed so
// no queued put is dropped, then the journal's confirmed segments
// retired (a clean shutdown leaves nothing for the next boot to
// replay) — and the GC loop stops. A write-back the shutdown had to
// abandon is logged, its journal record left for the next boot.
// Admissions racing with shutdown get 503.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	var err error
	if srv != nil {
		err = srv.Shutdown(ctx)
	}
	s.pool.drain()
	if cerr := s.cache.Close(); cerr != nil {
		s.logf("cache close: %v", cerr)
	}
	s.gcOnce.Do(func() { close(s.gcStop) })
	s.gcDone.Wait()
	return err
}

// GC sweeps the disk cache now (no-op without a CacheDir), pinning the
// resident snapshots so warm lineages stay warm.
func (s *Server) GC() (ipcp.CacheGCStats, error) {
	if s.cfg.CacheDir == "" {
		return ipcp.CacheGCStats{}, nil
	}
	s.mu.Lock()
	live := make([]*ipcp.Snapshot, 0, len(s.snapshots))
	for _, el := range s.snapshots {
		//lint:ignore mapiter CacheGC consumes the live snapshots as an unordered pin set; nothing observes their order
		live = append(live, el.Value.(*lineageSnap).snap)
	}
	s.mu.Unlock()
	st, err := ipcp.CacheGC(s.cfg.CacheDir, s.cfg.CacheBudget, live...)
	if err == nil {
		s.metrics.gcRuns.Add(1)
		s.metrics.gcDeleted.Add(int64(st.Unreferenced + st.OverBudget))
	}
	return st, err
}

func (s *Server) gcLoop() {
	defer s.gcDone.Done()
	t := time.NewTicker(s.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-s.gcStop:
			return
		case <-t.C:
			st, err := s.GC()
			if err != nil {
				s.logf("cache gc: %v", err)
			} else {
				s.logf("cache gc: %s", st)
			}
		}
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

// ---------------------------------------------------------------------------
// Endpoints

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if !s.decode(w, r, &req) {
		return
	}
	cfg, err := req.Config.Config()
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.deadline(r.Context(), req.TimeoutMS)
	defer cancel()

	rep, shared, err := s.analyzeFlight(ctx, req.Source, req.Program, cfg)
	if err != nil {
		s.failErr(w, err)
		return
	}
	s.reply(w, AnalyzeResponse{Report: rep, Coalesced: shared})
}

// analyzeFlight serves one source analysis the standard way — parse,
// coalesce with identical in-flight requests, run on the worker pool,
// re-analyze incrementally against the lineage's resident snapshot. It
// is the shared core of /v1/analyze and each /v1/batch item.
func (s *Server) analyzeFlight(ctx context.Context, source, program string, cfg ipcp.Config) (*ipcp.Report, bool, error) {
	prog, err := ipcp.Load(source)
	if err != nil {
		return nil, false, &badRequestError{err}
	}
	lineage := ipcp.ConfigCacheKey(cfg) + "\x00" + program
	key := "analyze\x00" + lineage + "\x00" + sourceHash(source)
	val, err, shared := s.flights.do(ctx, key, func() (any, error) {
		return s.run(ctx, func() (any, error) {
			return s.analyze(ctx, prog, cfg, lineage)
		})
	})
	if shared {
		s.metrics.coalesced.Add(1)
	}
	if err != nil {
		return nil, shared, err
	}
	return val.(*ipcp.Report), shared, nil
}

func (s *Server) handleTransform(w http.ResponseWriter, r *http.Request) {
	var req TransformRequest
	if !s.decode(w, r, &req) {
		return
	}
	cfg, err := req.Config.Config()
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	prog, err := ipcp.Load(req.Source)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.deadline(r.Context(), req.TimeoutMS)
	defer cancel()

	lineage := ipcp.ConfigCacheKey(cfg) + "\x00" + req.Program
	key := "transform\x00" + lineage + "\x00" + sourceHash(req.Source)
	val, err, shared := s.flights.do(ctx, key, func() (any, error) {
		return s.run(ctx, func() (any, error) {
			rep, err := s.analyze(ctx, prog, cfg, lineage)
			if err != nil {
				return nil, err
			}
			src, n, err := prog.TransformedSource(rep)
			if err != nil {
				return nil, err
			}
			return &TransformResponse{Source: src, Substituted: n}, nil
		})
	})
	if shared {
		s.metrics.coalesced.Add(1)
	}
	if err != nil {
		s.failErr(w, err)
		return
	}
	resp := *val.(*TransformResponse)
	resp.Coalesced = shared
	s.reply(w, resp)
}

func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("program")
	scale := suite.DefaultScale
	if v := r.URL.Query().Get("scale"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad scale %q", v))
			return
		}
		scale = n
	}
	gen := suite.Generate(name, scale)
	if gen == nil {
		s.fail(w, http.StatusNotFound,
			fmt.Errorf("unknown program %q (have %v)", name, suite.Names()))
		return
	}
	var timeoutMS int64
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad timeout_ms %q", v))
			return
		}
		timeoutMS = n
	}
	ctx, cancel := s.deadline(r.Context(), timeoutMS)
	defer cancel()

	key := fmt.Sprintf("matrix\x00%s\x00%d", name, scale)
	val, err, shared := s.flights.do(ctx, key, func() (any, error) {
		return s.run(ctx, func() (any, error) {
			prog, err := ipcp.Load(gen.Source)
			if err != nil {
				return nil, err
			}
			cfgs := ipcp.FullMatrix()
			reports, err := prog.AnalyzeMatrixContext(ctx, cfgs, 1)
			if err != nil {
				return nil, err
			}
			resp := &MatrixResponse{Program: name, Scale: scale, Reports: reports}
			for _, cfg := range cfgs {
				resp.Configs = append(resp.Configs, ConfigOf(cfg))
			}
			return resp, nil
		})
	})
	if shared {
		s.metrics.coalesced.Add(1)
	}
	if err != nil {
		s.failErr(w, err)
		return
	}
	resp := *val.(*MatrixResponse)
	resp.Coalesced = shared
	s.reply(w, resp)
}

// handleBlobGet serves one raw summary blob by content address — the
// remote tier of a client's layered cache (summary.RemoteStore) reads
// through it. The body is the blob verbatim; X-Blob-Sum carries its
// hex sha256 so the client can detect truncation or corruption.
func (s *Server) handleBlobGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	data, ok, err := s.cache.GetBlob(key)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !ok {
		http.Error(w, "blob not found", http.StatusNotFound)
		return
	}
	sum := sha256.Sum256(data)
	w.Header().Set("X-Blob-Sum", hex.EncodeToString(sum[:]))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

// handleBlobPut accepts one raw summary blob for the shared cache.
// The key is the content address the client computed; when the
// request carries X-Blob-Sum the body is verified against it before
// anything is stored, so a blob truncated in transit is rejected
// rather than cached.
func (s *Server) handleBlobPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	body := http.MaxBytesReader(w, r.Body, summary.MaxBlobSize)
	data, err := io.ReadAll(body)
	if err != nil {
		http.Error(w, "blob too large or unreadable", http.StatusRequestEntityTooLarge)
		return
	}
	if want := r.Header.Get("X-Blob-Sum"); want != "" {
		sum := sha256.Sum256(data)
		if got := hex.EncodeToString(sum[:]); !strings.EqualFold(got, want) {
			http.Error(w, "blob checksum mismatch", http.StatusBadRequest)
			return
		}
	}
	if err := s.cache.PutBlob(key, data); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// analyze runs one incremental analysis inside a pool worker and
// advances the lineage's snapshot.
func (s *Server) analyze(ctx context.Context, prog *ipcp.Program, cfg ipcp.Config, lineage string) (*ipcp.Report, error) {
	if s.gate != nil {
		s.gate()
	}
	rep, snap, err := prog.AnalyzeIncrementalContext(ctx, cfg, s.snapshot(lineage), s.cache)
	if err != nil {
		return nil, err
	}
	s.setSnapshot(lineage, snap)
	return rep, nil
}

// run executes fn on the worker pool, failing fast when admission is
// refused and abandoning the wait (not the job slot: a job that loses
// its caller aborts on its first context check) when ctx expires.
func (s *Server) run(ctx context.Context, fn func() (any, error)) (any, error) {
	type result struct {
		val any
		err error
	}
	resc := make(chan result, 1)
	err := s.pool.submit(func() {
		if err := ctx.Err(); err != nil {
			resc <- result{nil, err}
			return
		}
		v, e := fn()
		resc <- result{v, e}
	})
	if err != nil {
		return nil, err
	}
	select {
	case res := <-resc:
		return res.val, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// ---------------------------------------------------------------------------
// Plumbing

// lineageSnap is one resident snapshot with its key, stored as a
// snapOrder list element so eviction can find the map entry again.
type lineageSnap struct {
	lineage string
	snap    *ipcp.Snapshot
}

func (s *Server) snapshot(lineage string) *ipcp.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	el := s.snapshots[lineage]
	if el == nil {
		return nil
	}
	s.snapOrder.MoveToFront(el)
	return el.Value.(*lineageSnap).snap
}

func (s *Server) setSnapshot(lineage string, snap *ipcp.Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el := s.snapshots[lineage]; el != nil {
		el.Value.(*lineageSnap).snap = snap
		s.snapOrder.MoveToFront(el)
		return
	}
	s.snapshots[lineage] = s.snapOrder.PushFront(&lineageSnap{lineage: lineage, snap: snap})
	//lint:ignore cancelpoll LRU eviction strictly shrinks len(s.snapshots) each iteration until it meets the budget
	for len(s.snapshots) > s.cfg.MaxSnapshots {
		oldest := s.snapOrder.Back()
		delete(s.snapshots, oldest.Value.(*lineageSnap).lineage)
		s.snapOrder.Remove(oldest)
		s.metrics.snapEvicted.Add(1)
	}
}

func (s *Server) snapshotCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.snapshots)
}

// deadline derives the request context: the request's own timeout,
// defaulted and capped by the server's configuration.
func (s *Server) deadline(parent context.Context, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(parent, d)
}

func sourceHash(source string) string {
	sum := sha256.Sum256([]byte(source))
	return hex.EncodeToString(sum[:])
}

// instrument wraps an endpoint with the in-flight gauge and the
// per-endpoint request counter and latency histogram.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.metrics.inFlight.Add(1)
		defer s.metrics.inFlight.Add(-1)
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.metrics.record(endpoint, sw.code, time.Since(start))
	}
}

// statusWriter remembers the status code an endpoint wrote.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so the batch NDJSON stream stays
// incremental through the instrumentation wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// decode reads a JSON request body (bounded at 32 MiB), answering 400
// itself on failure.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, 32<<20)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func (s *Server) reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The response is already partially written; nothing to mend.
		s.logf("encode response: %v", err)
	}
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error()})
}

// badRequestError marks an analysis-path failure the client caused
// (unparseable source), so errStatus answers 400 rather than 500.
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

// errStatus maps an analysis-path error to its status, counting the
// shed/timeout metrics as a side effect: client errors to 400,
// admission refusal to 429, shutdown to 503, deadline expiry and
// cancellation to 504, anything else to 500. failErr and the per-item
// batch path share it.
func (s *Server) errStatus(err error) int {
	var bad *badRequestError
	switch {
	case errors.As(err, &bad):
		return http.StatusBadRequest
	case errors.Is(err, ErrBusy):
		s.metrics.rejected.Add(1)
		return http.StatusTooManyRequests
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable
	case errors.Is(err, ipcp.ErrCanceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		s.metrics.timeouts.Add(1)
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) failErr(w http.ResponseWriter, err error) {
	code := s.errStatus(err)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	s.fail(w, code, err)
}
