package server

import (
	"context"
	"sync"
)

// This file implements request coalescing: identical concurrent
// requests — same endpoint, configuration cache key, lineage, and
// source hash — run the analysis once and share the result, the
// serving-side form of the value-context observation that resident
// summaries should be reused across queries, applied at whole-request
// granularity. The implementation is a minimal singleflight (the
// stdlib has none and the module is dependency-free by policy).

// flightGroup coalesces concurrent calls by key.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// flightCall is one in-flight leader and its waiters.
type flightCall struct {
	done    chan struct{}
	val     any
	err     error
	waiters int
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do executes fn once per key among concurrent callers. The first
// caller (the leader) runs fn to completion — fn is expected to honor
// the leader's own context — and every caller that arrives before it
// finishes becomes a follower: it waits for the leader's result
// (shared=true) or for its own ctx to expire, whichever is first. A
// follower therefore never occupies a pool slot. Note a follower
// inherits the leader's outcome, error included: if the leader's
// deadline was shorter, the follower shares its timeout — identical
// requests are assumed to carry comparable deadlines.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}

// followers reports how many callers are currently waiting on the
// in-flight call for key (0 when none is in flight) — test and
// metrics instrumentation.
func (g *flightGroup) followers(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.calls[key]; ok {
		return c.waiters
	}
	return 0
}
