package server

import (
	"errors"
	"sync"
)

// This file implements the admission-controlled worker pool the server
// executes analyses on. Admission is load shedding, not backpressure:
// a request that cannot be queued is rejected immediately with 429 +
// Retry-After rather than held open — under overload, fast rejection
// keeps the served latency distribution honest and lets well-behaved
// clients back off.

// ErrBusy reports a submission rejected because the admission queue
// was full (the HTTP layer maps it to 429 Too Many Requests).
var ErrBusy = errors.New("server busy: admission queue full")

// ErrShuttingDown reports a submission after drain began (503).
var ErrShuttingDown = errors.New("server shutting down")

// pool is a fixed-size worker pool behind a bounded admission queue.
type pool struct {
	mu     sync.RWMutex // guards closed vs. submit's channel send
	closed bool
	queue  chan func()
	wg     sync.WaitGroup
}

// newPool starts workers goroutines draining an admission queue of
// queueDepth waiting jobs (beyond the ones actively running).
func newPool(workers, queueDepth int) *pool {
	p := &pool{queue: make(chan func(), queueDepth)}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			//lint:ignore cancelpoll the queue channel closes on drain, ending the range; per-request deadlines are polled inside each job
			for f := range p.queue {
				f()
			}
		}()
	}
	return p
}

// submit admits f to the queue, failing fast with ErrBusy when it is
// full or ErrShuttingDown after drain began. It never blocks.
func (p *pool) submit(f func()) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return ErrShuttingDown
	}
	select {
	case p.queue <- f:
		return nil
	default:
		return ErrBusy
	}
}

// depth reports the number of admitted jobs not yet picked up.
func (p *pool) depth() int {
	return len(p.queue)
}

// drain stops intake and blocks until every admitted job has run —
// the worker-pool half of graceful shutdown. Safe to call twice.
func (p *pool) drain() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
