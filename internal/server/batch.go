package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
)

// This file implements POST /v1/batch on a single server: N sources
// analyzed concurrently in one request, streamed back as NDJSON — one
// BatchItemResult per line, in completion order — with per-item
// statuses so one failing source never voids its siblings. A fleet
// router implements the same wire contract by fanning items out across
// shards (internal/fleet); a single server fans them out across its
// own worker pool.

// MaxBatchItems bounds one /v1/batch request.
const MaxBatchItems = 1024

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Items) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("batch: no items"))
		return
	}
	if len(req.Items) > MaxBatchItems {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("batch: %d items exceeds the %d-item bound", len(req.Items), MaxBatchItems))
		return
	}
	s.metrics.batchSize.Observe(float64(len(req.Items)))

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	var mu sync.Mutex
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(res BatchItemResult) {
		if res.OK() {
			s.metrics.batchItems.Add(1)
		} else {
			s.metrics.batchErrors.Add(1)
		}
		mu.Lock()
		defer mu.Unlock()
		if err := enc.Encode(res); err != nil {
			s.logf("batch: encode item %d: %v", res.Index, err)
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Fan out at most Workers items at a time: one batch can saturate
	// the pool but leaves the admission queue's headroom to concurrent
	// requests — a genuinely overloaded server still sheds per item
	// (status 429 on the item, not the batch).
	sem := make(chan struct{}, s.cfg.Workers)
	var wg sync.WaitGroup
	for i := range req.Items {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			emit(s.batchItem(r.Context(), i, req))
		}(i)
	}
	wg.Wait()
}

// batchItem serves one batch item exactly as a standalone /v1/analyze
// would: its own configuration and deadline, coalesced with identical
// in-flight work, pooled, incremental against its lineage's snapshot.
func (s *Server) batchItem(parent context.Context, i int, req BatchRequest) BatchItemResult {
	item := req.Items[i]
	res := BatchItemResult{Index: i, Shard: -1}
	cfgReq := req.Config
	if item.Config != nil {
		cfgReq = *item.Config
	}
	cfg, err := cfgReq.Config()
	if err != nil {
		res.Status, res.Error = http.StatusBadRequest, err.Error()
		return res
	}
	timeout := req.TimeoutMS
	if item.TimeoutMS > 0 {
		timeout = item.TimeoutMS
	}
	ctx, cancel := s.deadline(parent, timeout)
	defer cancel()
	rep, shared, err := s.analyzeFlight(ctx, item.Source, item.Program, cfg)
	if err != nil {
		res.Status, res.Error = s.errStatus(err), err.Error()
		return res
	}
	res.Status, res.Report, res.Coalesced = http.StatusOK, rep, shared
	return res
}
