package server

// Test-only access for the external e2e suite (server_test): the
// analysis gate that holds a leader in flight, and the coalescing
// group's waiter count, which together make coalescing observable
// deterministically.

// SetGate installs f to run at the start of every pooled analysis job.
// Call before serving traffic.
func (s *Server) SetGate(f func()) { s.gate = f }

// Waiters reports how many requests are currently parked behind
// in-flight leaders, across all flight keys.
func (s *Server) Waiters() int {
	s.flights.mu.Lock()
	defer s.flights.mu.Unlock()
	n := 0
	for _, c := range s.flights.calls {
		n += c.waiters
	}
	return n
}

// QueueDepth reports the worker pool's waiting-job count.
func (s *Server) QueueDepth() int { return s.pool.depth() }
