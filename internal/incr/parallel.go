package incr

import (
	"runtime"
	"sync"
)

// parallelFor runs f(0..n-1) over up to GOMAXPROCS goroutines. Callers
// must only write to per-index slots; the engine's uses keep results
// independent of scheduling.
func parallelFor(n int, f func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	step := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*step, (w+1)*step
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				f(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}
