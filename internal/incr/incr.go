// Package incr is the incremental re-analysis driver — the
// recompilation-analysis half of the program database (internal/summary
// holds the storage half). Given a previous run's snapshot and an
// edited program, it diffs per-procedure source fingerprints,
// invalidates the changed procedures plus everything reachable backward
// through the call graph (whose jump functions may have depended on
// them), rebinds stored summaries for the survivors, and runs the
// interprocedural solver with those summaries injected. The Result is
// reflect.DeepEqual to a from-scratch analysis — the determinism suite
// proves it over random edit sequences.
//
// # Key scheme
//
// The store is content-addressed by *cone keys*. The summary of a
// procedure depends not only on its own source but on everything its
// jump functions were derived from: return jump functions of its
// callees, transitively — its forward cone in the call graph. So each
// strongly-connected component gets a Merkle-style cone hash
//
//	cone(C) = H(configKey, globalsHash, sorted member source hashes,
//	            sorted cone hashes of successor components)
//
// computed callee-first over the condensation, and a procedure's store
// key is H(cone(SCC(p)), hash(p), name(p)). Two runs therefore agree
// on a key exactly when the procedure's whole derivation cone is
// byte-identical — which makes the store safe to share across
// divergent edit histories (snapshot branching) and across processes:
// a stale entry is simply never asked for again.
//
// Each procedure has *two* keys, one per stored blob. The flavor key
// folds the full configuration (ConfigKey) into the cone and addresses
// the FlavorSummary — the stage-2 forward jump functions, which the
// jump-function flavor shapes directly. The shared key folds in only
// the flavor-free SharedConfigKey and addresses the SharedSummary —
// return jump functions, MOD/REF, call edges, use vectors — which are
// identical under every flavor because Config.Jump is consulted
// nowhere before stage 2's filter. A polynomial run therefore hits the
// shared entries a pass-through run wrote, re-deriving only the
// flavor half.
//
// # Invalidation and lookup rule
//
// A procedure is re-analyzed when its own normalized source changed,
// when the configuration or COMMON-block schema changed (everything
// is), or when any procedure it transitively *calls* changed — i.e.
// the changed set is closed backward over caller edges, mirroring the
// recompilation analysis of ParaScope's program compiler. Procedures
// outside the closure have unchanged cone keys, and those are looked
// up in the store. When there is no comparable previous snapshot at
// all (a first run under this configuration), *every* procedure is
// looked up instead: the keys are complete content addresses and
// binding re-validates against the fresh program, so a hit written by
// another run — a different process, lineage, or flavor — is sound to
// reuse, and that is exactly what makes a shared or remote store pay
// off without any snapshot handoff.
package incr

import (
	"fmt"
	"sort"
	"strconv"

	"ipcp/internal/analysis/callgraph"
	"ipcp/internal/analysis/modref"
	"ipcp/internal/core"
	"ipcp/internal/core/jump"
	"ipcp/internal/core/lattice"
	"ipcp/internal/ir"
	"ipcp/internal/ir/irbuild"
	"ipcp/internal/mf/sema"
	"ipcp/internal/summary"
	"ipcp/internal/sym"
)

// Stats reports how one incremental run split the program.
type Stats struct {
	// TotalProcs is the number of procedures in the program; Reanalyzed
	// of them had their summaries rebuilt, Reused ran on stored ones.
	TotalProcs int
	Reanalyzed int
	Reused     int

	// Hits and Misses count this run's full-record lookups: one per
	// candidate procedure (every procedure the invalidation rule kept
	// — all of them when no comparable snapshot exists), a hit when
	// both blobs were present and bound cleanly, so the procedure ran
	// on its seed. (With a comparable snapshot, invalidated procedures
	// are known stale and never looked up.)
	Hits   int
	Misses int

	// SharedHits and SharedMisses count the same lookups at the
	// stage-1 layer: a shared hit means the flavor-free blob was
	// present and bound — possibly written by a run under a different
	// jump-function flavor — even when the flavor blob was not.
	// SharedHits ≥ Hits always; the gap is the cross-flavor sharing.
	SharedHits   int
	SharedMisses int

	// WarmStarted reports whether stage 3 warm-started from the
	// previous fixpoint; ConeProcs counts the procedures the solve
	// reset to their initial cells (everything, on a cold solve).
	WarmStarted bool
	ConeProcs   int

	// WorklistSeeded / WorklistVisited / WorklistEnqueued are the
	// stage-3 worklist counters: items initially scheduled, items
	// popped, and items (re-)enqueued by cell changes. A warm start's
	// win is Visited shrinking to the cone's share of the program.
	WorklistSeeded   int64
	WorklistVisited  int64
	WorklistEnqueued int64
}

// Engine drives incremental analysis over one summary store. An Engine
// is stateless apart from the store and safe for concurrent use.
type Engine struct {
	store summary.Store
}

// NewEngine returns an engine over the given store.
func NewEngine(store summary.Store) *Engine {
	return &Engine{store: store}
}

// Store returns the engine's summary store.
func (e *Engine) Store() summary.Store { return e.store }

// ConfigKey fingerprints the configuration bits stored flavor records
// depend on — the jump-function flavor, the return-JF and MOD toggles
// — plus the codec version. Workers, Debug, the solver choice, and
// Complete deliberately stay out: none of them change what stages 1–2
// compute for a procedure (complete-mode re-propagations run on DCE'd
// programs and never touch the store). Snapshots carry this full key:
// warm-starting stage 3 from a fixpoint computed under a different
// flavor would be unsound, so flavor comparability stays strict there.
func ConfigKey(cfg core.Config) string {
	return summary.KeyOf(
		"config",
		fmt.Sprintf("codec=%d", summary.Version),
		fmt.Sprintf("jump=%d", int(cfg.Jump)),
		fmt.Sprintf("ret=%t", cfg.ReturnJFs),
		fmt.Sprintf("mod=%t", cfg.MOD),
	).String()
}

// SharedConfigKey is ConfigKey with the jump-function flavor left out
// — the key prefix of the stage-1 shared records. Leaving Jump out is
// sound because the flavor is consulted exactly once, by jump.Filter
// inside stage 2's forward-JF construction: return jump functions,
// MOD/REF sets, call edges, use vectors, and the SSA phi count are all
// derived before any filtering, so they coincide bit-for-bit across
// flavors under fixed ReturnJFs/MOD toggles. The return-JF and MOD
// toggles must stay in: the first decides whether return JFs exist at
// all (and restricts them to constants when off), the second changes
// the side-effect oracle everything downstream of MOD/REF sees.
func SharedConfigKey(cfg core.Config) string {
	return summary.KeyOf(
		"config-shared",
		fmt.Sprintf("codec=%d", summary.Version),
		fmt.Sprintf("ret=%t", cfg.ReturnJFs),
		fmt.Sprintf("mod=%t", cfg.MOD),
	).String()
}

// Analyze runs cfg over sp, reusing summaries from the engine's store
// for every procedure the previous snapshot proves unchanged. prev may
// be nil (first run: everything is re-analyzed and stored). It returns
// the analysis result — identical to core.Analyze(sp, cfg) — plus the
// new snapshot and the run's reuse statistics. The error is non-nil
// only when cfg.Cancel reported cancellation mid-run.
func (e *Engine) Analyze(sp *sema.Program, cfg core.Config, prev *summary.Snapshot) (*core.Result, *summary.Snapshot, Stats, error) {
	fps := sp.Fingerprints()
	globalsHash := sp.GlobalsHash()
	cfgKey := ConfigKey(cfg)
	sharedCfgKey := SharedConfigKey(cfg)

	// Lower once and take the whole-program views while the IR is still
	// pre-SSA; they feed both the invalidation decision and — through
	// core.Reuse — the pass Context, so nothing is computed twice.
	irp := irbuild.Build(sp)
	cg := callgraph.Build(irp)
	mods := modref.Compute(irp, cg)

	// Two key families per procedure: the flavor key addresses the
	// stage-2 record, the shared key the flavor-free stage-1 record.
	flavorKeys := coneKeys(cg, fps, cfgKey, globalsHash)
	sharedKeys := coneKeys(cg, fps, sharedCfgKey, globalsHash)
	invalid := invalidProcs(cg, fps, cfgKey, globalsHash, prev)

	stats := Stats{TotalProcs: len(irp.Procs)}
	// Fetch and bind candidate summaries in parallel: binding only reads
	// the shared program views, and the per-procedure results land in
	// distinct slots, so the outcome is independent of scheduling.
	fetched := make([]fetchResult, len(irp.Procs))
	parallelFor(len(irp.Procs), func(i int) {
		proc := irp.Procs[i]
		if invalid[proc.Name] {
			return
		}
		fetched[i] = e.fetch(sharedKeys[proc.Name], flavorKeys[proc.Name], proc, irp, cg, mods, fps)
	})
	seeds := make(map[string]*core.ProcSeed)
	sharedHit := make(map[string]bool)
	for i, proc := range irp.Procs {
		if invalid[proc.Name] {
			continue
		}
		f := fetched[i]
		if f.sharedHit {
			sharedHit[proc.Name] = true
			stats.SharedHits++
		} else {
			stats.SharedMisses++
		}
		if f.seed == nil {
			stats.Misses++
			continue
		}
		seeds[proc.Name] = f.seed
		stats.Hits++
	}
	stats.Reused = len(seeds)
	stats.Reanalyzed = stats.TotalProcs - stats.Reused

	warm := warmSeed(cfg, prev, cfgKey, globalsHash, fps, irp, cg)
	res, sums, err := core.AnalyzeSeeded(irp, cfg, &core.Reuse{CG: cg, Mods: mods, Procs: seeds, Warm: warm})
	if err != nil {
		return nil, nil, stats, err
	}
	stats.WarmStarted = sums.Warm.Started
	stats.ConeProcs = sums.Warm.ConeProcs
	stats.WorklistSeeded = sums.Warm.Seeded
	stats.WorklistVisited = sums.Warm.Visited
	stats.WorklistEnqueued = sums.Warm.Enqueued

	// Stamp the new snapshot — including the jump-function fingerprint
	// and final VAL cells the next run warm-starts from — and persist
	// the blobs this run had to rebuild (reused ones are already stored
	// under the same keys). A procedure whose shared blob hit but whose
	// flavor blob missed re-persists only the flavor half: that skipped
	// re-encoding is exactly the byte saving of the key split.
	snap := &summary.Snapshot{
		ConfigKey:   cfgKey,
		GlobalsHash: globalsHash,
		Procs:       make(map[string]summary.ProcStamp, len(irp.Procs)),
	}
	for _, proc := range irp.Procs {
		name := proc.Name
		n := cg.Nodes[proc]
		var cells *summary.ValCells
		if pc, ok := sums.Vals[name]; ok {
			cells = cellsFromLattice(pc)
		}
		snap.Procs[name] = summary.ProcStamp{
			SourceHash: fps[name],
			Key:        flavorKeys[name],
			SharedKey:  sharedKeys[name],
			Callees:    calleeNames(n),
			JFHash:     sums.SiteHash[name],
			Cells:      cells,
		}
		if seeds[name] != nil {
			continue
		}
		// A failed Put only costs a future recomputation, and the two
		// halves persist independently: a flavor blob without its shared
		// sibling is merely unreachable (lookups probe shared-first),
		// never wrong.
		if !sharedHit[name] {
			if ss, err := encodeShared(proc, n, irp, sums, mods, fps); err == nil {
				//lint:ignore codecerr cache Put is best-effort here; a failed write only costs a future recomputation (comment above)
				_ = e.store.Put(sharedKeys[name], summary.EncodeShared(ss))
			}
		}
		if fs, err := encodeFlavor(proc, sums, fps); err == nil {
			//lint:ignore codecerr cache Put is best-effort here; a failed write only costs a future recomputation (comment above)
			_ = e.store.Put(flavorKeys[name], summary.EncodeFlavor(fs))
		}
	}
	return res, snap, stats, nil
}

// ---------------------------------------------------------------------------
// Warm-start seeding (demand-driven re-solve)

// warmSeed assembles the previous fixpoint as a core.WarmSeed, or nil
// when no sound warm start is possible (no comparable snapshot, no
// main, or the caller opted out). The dirty base it declares covers
// everything core cannot detect from its own jump-function fingerprint
// diff:
//
//   - source-changed and new procedures — their initial cell vectors
//     (formal count, array-ness) may have moved even when their jump
//     functions did not;
//   - targets of removed call edges — losing an incoming meet can only
//     *raise* a cell, which a monotone restart can never do, so the
//     target must re-solve from its initial cells (core's forward cone
//     closure covers added and changed edges, but a removed edge's
//     target is invisible to it);
//   - procedures whose reachability from main flipped — unreachable
//     procedures keep their initial cells and their sites never fire.
func warmSeed(cfg core.Config, prev *summary.Snapshot, cfgKey, globalsHash string, fps map[string]string, irp *ir.Program, cg *callgraph.Graph) *core.WarmSeed {
	if cfg.NoWarmStart || prev == nil || prev.ConfigKey != cfgKey || prev.GlobalsHash != globalsHash || irp.Main == nil {
		return nil
	}
	if _, ok := prev.Procs[irp.Main.Name]; !ok {
		return nil
	}
	w := &core.WarmSeed{
		Cells:  make(map[string]core.ProcCells, len(prev.Procs)),
		JFHash: make(map[string]string, len(prev.Procs)),
		Dirty:  make(map[string]bool),
	}
	for name, st := range prev.Procs {
		if st.JFHash != "" {
			w.JFHash[name] = st.JFHash
		}
		if pc, ok := cellsToLattice(st.Cells); ok {
			w.Cells[name] = pc
		}
	}

	// Source-changed and new procedures.
	for _, proc := range irp.Procs {
		st, ok := prev.Procs[proc.Name]
		if !ok || fps[proc.Name] == "" || st.SourceHash != fps[proc.Name] {
			w.Dirty[proc.Name] = true
		}
	}

	// Targets of removed call edges: every old callee of a deleted
	// procedure, and the old callees a source-changed procedure no
	// longer calls.
	for name, st := range prev.Procs {
		deleted := irp.ProcByName[name] == nil
		if !deleted && !w.Dirty[name] {
			continue
		}
		var kept map[string]bool
		if !deleted {
			kept = make(map[string]bool)
			for _, c := range calleeNames(cg.Nodes[irp.ProcByName[name]]) {
				kept[c] = true
			}
		}
		for _, c := range st.Callees {
			if !kept[c] {
				w.Dirty[c] = true
			}
		}
	}

	// Reachability flips, diffing a BFS over the snapshot's recorded
	// call edges against the current call graph.
	oldReach := map[string]bool{irp.Main.Name: true}
	queue := []string{irp.Main.Name}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		for _, c := range prev.Procs[name].Callees {
			if !oldReach[c] {
				oldReach[c] = true
				queue = append(queue, c)
			}
		}
	}
	newReach := cg.ReachableFromMain()
	for _, proc := range irp.Procs {
		if oldReach[proc.Name] != newReach[proc] {
			w.Dirty[proc.Name] = true
		}
	}
	return w
}

// cellsToLattice rebuilds a persisted VAL assignment as lattice values;
// false when there is none (or a cell kind is unknown).
func cellsToLattice(cs *summary.ValCells) (core.ProcCells, bool) {
	if cs == nil {
		return core.ProcCells{}, false
	}
	conv := func(in []summary.ValCell) ([]lattice.Value, bool) {
		out := make([]lattice.Value, len(in))
		for i, c := range in {
			switch c.Kind {
			case summary.CellTop:
				out[i] = lattice.Top
			case summary.CellBottom:
				out[i] = lattice.Bottom
			case summary.CellInt:
				out[i] = lattice.OfInt(c.Int)
			case summary.CellReal:
				out[i] = lattice.Of(ir.RealConst(c.Real))
			case summary.CellBool:
				out[i] = lattice.OfBool(c.Bool)
			default:
				return nil, false
			}
		}
		return out, true
	}
	var (
		pc core.ProcCells
		ok bool
	)
	if pc.Formals, ok = conv(cs.Formals); !ok {
		return core.ProcCells{}, false
	}
	if pc.Globals, ok = conv(cs.Globals); !ok {
		return core.ProcCells{}, false
	}
	return pc, true
}

// cellsFromLattice converts a final VAL assignment to its persisted
// form; nil when some cell has no portable spelling (a constant of a
// type the codec does not know), in which case the procedure simply
// re-solves cold next run. An all-empty assignment (a procedure with
// no formals in a program with no scalar globals) is still a valid —
// and complete — assignment, and persists as an empty ValCells.
func cellsFromLattice(pc core.ProcCells) *summary.ValCells {
	conv := func(in []lattice.Value) ([]summary.ValCell, bool) {
		out := make([]summary.ValCell, len(in))
		for i, v := range in {
			switch c := v.Const(); {
			case v.IsTop():
				out[i] = summary.ValCell{Kind: summary.CellTop}
			case v.IsBottom():
				out[i] = summary.ValCell{Kind: summary.CellBottom}
			case c.Type == ir.Int:
				out[i] = summary.ValCell{Kind: summary.CellInt, Int: c.Int}
			case c.Type == ir.Real:
				out[i] = summary.ValCell{Kind: summary.CellReal, Real: c.Real}
			case c.Type == ir.Bool:
				out[i] = summary.ValCell{Kind: summary.CellBool, Bool: c.Bool}
			default:
				return nil, false
			}
		}
		return out, true
	}
	cs := &summary.ValCells{}
	var ok bool
	if cs.Formals, ok = conv(pc.Formals); !ok {
		return nil
	}
	if cs.Globals, ok = conv(pc.Globals); !ok {
		return nil
	}
	return cs
}

// ---------------------------------------------------------------------------
// Keys and invalidation

// coneKeys computes the store key of every procedure (see the package
// comment for the scheme). The callgraph's SCCs come callee-first, so
// one forward sweep has every successor component's hash ready.
func coneKeys(cg *callgraph.Graph, fps map[string]string, cfgKey, globalsHash string) map[string]summary.Key {
	cones := make([]string, len(cg.SCCs))
	for si, comp := range cg.SCCs {
		members := make([]string, 0, len(comp))
		succSeen := make(map[int]bool)
		var succs []string
		for _, n := range comp {
			members = append(members, fps[n.Proc.Name])
			for _, m := range n.Callees {
				if m.SCC != si && !succSeen[m.SCC] {
					succSeen[m.SCC] = true
					succs = append(succs, cones[m.SCC])
				}
			}
		}
		sort.Strings(members)
		sort.Strings(succs)
		parts := []string{"cone", cfgKey, globalsHash, strconv.Itoa(len(members))}
		parts = append(parts, members...)
		parts = append(parts, succs...)
		cones[si] = summary.KeyOf(parts...).String()
	}
	keys := make(map[string]summary.Key, len(cg.Nodes))
	for _, n := range cg.BottomUp() {
		name := n.Proc.Name
		keys[name] = summary.KeyOf("proc", cones[n.SCC], fps[name], name)
	}
	return keys
}

// invalidProcs returns the set of procedures whose stored records are
// known stale and not worth looking up: the procedures whose
// normalized source changed (or are new) since the comparable previous
// snapshot, closed backward over caller edges. When there is no
// comparable snapshot the set is empty — not full: every procedure
// becomes a lookup candidate, because the content-addressed keys plus
// bind's re-validation make any hit sound regardless of which run
// (process, lineage, or jump-function flavor) wrote it. A fresh run
// against a warm shared store starts at full reuse instead of zero.
func invalidProcs(cg *callgraph.Graph, fps map[string]string, cfgKey, globalsHash string, prev *summary.Snapshot) map[string]bool {
	invalid := make(map[string]bool)
	if prev == nil || prev.ConfigKey != cfgKey || prev.GlobalsHash != globalsHash {
		return invalid
	}
	var queue []*callgraph.Node
	for _, n := range cg.BottomUp() {
		name := n.Proc.Name
		st, ok := prev.Procs[name]
		if !ok || fps[name] == "" || st.SourceHash != fps[name] {
			invalid[name] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Callers {
			if !invalid[c.Proc.Name] {
				invalid[c.Proc.Name] = true
				queue = append(queue, c)
			}
		}
	}
	return invalid
}

// calleeNames returns a node's distinct callee names, sorted.
func calleeNames(n *callgraph.Node) []string {
	if n == nil || len(n.Callees) == 0 {
		return nil
	}
	names := make([]string, len(n.Callees))
	for i, m := range n.Callees {
		names[i] = m.Proc.Name
	}
	sort.Strings(names)
	return names
}

// ---------------------------------------------------------------------------
// Binding stored summaries into the current program

// fetchResult is one candidate procedure's lookup outcome: seed is the
// fully bound two-blob seed (nil when either half was absent or failed
// to bind), and sharedHit records that the stage-1 blob alone was
// present and bound — worth knowing even without a full seed, because
// the run then skips re-persisting the shared half.
type fetchResult struct {
	seed      *core.ProcSeed
	sharedHit bool
}

// fetch looks up, decodes, and binds one procedure's stored record,
// shared blob first: without a valid stage-1 half the flavor blob is
// useless (and, since both halves persist together, never present), so
// a shared miss skips the second probe. Any failure — absent, corrupt,
// or structurally incompatible — degrades to re-analysis; dropping a
// seed is always sound.
func (e *Engine) fetch(sharedKey, flavorKey summary.Key, proc *ir.Proc, prog *ir.Program, cg *callgraph.Graph, mods *modref.Summary, fps map[string]string) fetchResult {
	data, ok := e.store.Get(sharedKey)
	if !ok {
		return fetchResult{}
	}
	ss, err := summary.DecodeShared(data)
	if err != nil {
		return fetchResult{}
	}
	shared, err := bindShared(ss, proc, prog, cg, mods, fps)
	if err != nil {
		return fetchResult{}
	}
	res := fetchResult{sharedHit: true}
	fdata, ok := e.store.Get(flavorKey)
	if !ok {
		return res
	}
	fs, err := summary.DecodeFlavor(fdata)
	if err != nil {
		return res
	}
	sites, err := bindFlavor(fs, proc, prog, cg, fps)
	if err != nil {
		return res
	}
	res.seed = &core.ProcSeed{SharedSeed: *shared, Sites: sites}
	return res
}

// bindShared validates a decoded stage-1 record against the current
// program and rebinds its portable expressions to sym leaves. The
// MOD/REF sets are cross-checked against the freshly computed summary
// — side-effect facts always come from the current program, and a
// stored record that disagrees is rejected rather than trusted.
func bindShared(ps *summary.SharedSummary, proc *ir.Proc, prog *ir.Program, cg *callgraph.Graph, mods *modref.Summary, fps map[string]string) (*core.SharedSeed, error) {
	if ps.Name != proc.Name {
		return nil, fmt.Errorf("incr: summary names %q, want %q", ps.Name, proc.Name)
	}
	if ps.SourceHash == "" || ps.SourceHash != fps[proc.Name] {
		return nil, fmt.Errorf("incr: source hash mismatch for %s", proc.Name)
	}
	n := cg.Nodes[proc]
	if n == nil {
		return nil, fmt.Errorf("incr: %s missing from call graph", proc.Name)
	}
	if want := calleeNames(n); !equalStrings(ps.Callees, want) {
		return nil, fmt.Errorf("incr: callee set mismatch for %s", proc.Name)
	}
	if err := checkModRef(ps, proc, prog, mods); err != nil {
		return nil, err
	}
	if len(ps.FormalUses) != len(proc.Formals) || len(ps.GlobalUses) != len(proc.GlobalVars) {
		return nil, fmt.Errorf("incr: %s use-vector length mismatch", proc.Name)
	}

	nformals := len(proc.Formals)
	if ps.SSAPhis < 0 {
		return nil, fmt.Errorf("incr: %s has negative phi count", proc.Name)
	}
	seed := &core.SharedSeed{Uses: &core.ProcUses{
		Formal: make([]core.VarUses, len(ps.FormalUses)),
		Global: make([]core.VarUses, len(ps.GlobalUses)),
		Phis:   ps.SSAPhis,
	}}
	for i, u := range ps.FormalUses {
		seed.Uses.Formal[i] = core.VarUses{Subs: u.Subs, Control: u.Control}
	}
	for k, u := range ps.GlobalUses {
		seed.Uses.Global[k] = core.VarUses{Subs: u.Subs, Control: u.Control}
	}
	if ps.Returns != nil {
		if len(ps.Returns.Formal) != nformals {
			return nil, fmt.Errorf("incr: %s return-JF arity mismatch", proc.Name)
		}
		r := &jump.Returns{
			Formal: make([]sym.Expr, nformals),
			Global: make(map[*ir.GlobalVar]sym.Expr),
		}
		var err error
		if r.Result, err = summary.ToSym(ps.Returns.Result, prog, nformals); err != nil {
			return nil, err
		}
		for i, pe := range ps.Returns.Formal {
			if r.Formal[i], err = summary.ToSym(pe, prog, nformals); err != nil {
				return nil, err
			}
		}
		for _, ge := range ps.Returns.Globals {
			if ge.ID < 0 || ge.ID >= len(prog.Globals) || prog.Globals[ge.ID].String() != ge.Ref {
				return nil, fmt.Errorf("incr: %s return-JF global %d/%s unresolvable", proc.Name, ge.ID, ge.Ref)
			}
			se, err := summary.ToSym(ge.E, prog, nformals)
			if err != nil {
				return nil, err
			}
			if se == nil {
				return nil, fmt.Errorf("incr: %s return-JF global %s is ⊥", proc.Name, ge.Ref)
			}
			r.Global[prog.Globals[ge.ID]] = se
		}
		seed.Returns = r
	}
	return seed, nil
}

// bindFlavor validates a decoded stage-2 record against the current
// program and rebinds its site jump functions.
func bindFlavor(fs *summary.FlavorSummary, proc *ir.Proc, prog *ir.Program, cg *callgraph.Graph, fps map[string]string) ([]*core.SeedSite, error) {
	if fs.Name != proc.Name {
		return nil, fmt.Errorf("incr: flavor summary names %q, want %q", fs.Name, proc.Name)
	}
	if fs.SourceHash == "" || fs.SourceHash != fps[proc.Name] {
		return nil, fmt.Errorf("incr: source hash mismatch for %s", proc.Name)
	}
	n := cg.Nodes[proc]
	if n == nil {
		return nil, fmt.Errorf("incr: %s missing from call graph", proc.Name)
	}
	if len(fs.Sites) != len(n.Sites) {
		return nil, fmt.Errorf("incr: %s has %d sites, summary has %d", proc.Name, len(n.Sites), len(fs.Sites))
	}
	nformals := len(proc.Formals)
	sites := make([]*core.SeedSite, len(fs.Sites))
	for si, ss := range fs.Sites {
		call := n.Sites[si]
		if ss.Callee != call.Callee.Name {
			return nil, fmt.Errorf("incr: %s site %d calls %s, summary says %s", proc.Name, si, call.Callee.Name, ss.Callee)
		}
		if len(ss.Formal) != len(call.Callee.Formals) || len(ss.Global) != len(prog.ScalarGlobals) {
			return nil, fmt.Errorf("incr: %s site %d vector length mismatch", proc.Name, si)
		}
		site := &core.SeedSite{
			Formal: make([]sym.Expr, len(ss.Formal)),
			Global: make([]sym.Expr, len(ss.Global)),
		}
		var err error
		for i, pe := range ss.Formal {
			// Site jump functions range over the *caller's* entry values.
			if site.Formal[i], err = summary.ToSym(pe, prog, nformals); err != nil {
				return nil, err
			}
		}
		for k, pe := range ss.Global {
			if site.Global[k], err = summary.ToSym(pe, prog, nformals); err != nil {
				return nil, err
			}
		}
		sites[si] = site
	}
	return sites, nil
}

// checkModRef verifies the stored MOD/REF sets against the current
// program's freshly computed summary.
func checkModRef(ps *summary.SharedSummary, proc *ir.Proc, prog *ir.Program, mods *modref.Summary) error {
	if len(ps.ModFormals) != len(proc.Formals) || len(ps.RefFormals) != len(proc.Formals) {
		return fmt.Errorf("incr: %s MOD/REF formal arity mismatch", proc.Name)
	}
	for i := range proc.Formals {
		if ps.ModFormals[i] != mods.ModFormal(proc, i) || ps.RefFormals[i] != mods.RefFormal(proc, i) {
			return fmt.Errorf("incr: %s MOD/REF formal %d mismatch", proc.Name, i)
		}
	}
	var mg, rg []int
	for _, g := range prog.Globals {
		if mods.ModGlobal(proc, g) {
			mg = append(mg, g.ID)
		}
		if mods.RefGlobal(proc, g) {
			rg = append(rg, g.ID)
		}
	}
	if !equalInts(ps.ModGlobals, mg) || !equalInts(ps.RefGlobals, rg) {
		return fmt.Errorf("incr: %s MOD/REF global set mismatch", proc.Name)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Encoding fresh summaries

// encodeShared converts one procedure's extracted stage-1 summaries to
// portable form. An error (an expression with no portable spelling)
// means that half is unstorable; the caller skips it and the next run
// simply recomputes.
func encodeShared(proc *ir.Proc, n *callgraph.Node, prog *ir.Program, sums *core.Summaries, mods *modref.Summary, fps map[string]string) (*summary.SharedSummary, error) {
	name := proc.Name
	if sums == nil {
		return nil, fmt.Errorf("incr: no summaries extracted")
	}
	if fps[name] == "" {
		return nil, fmt.Errorf("incr: %s has no fingerprint", name)
	}
	ps := &summary.SharedSummary{
		Name:       name,
		SourceHash: fps[name],
		Callees:    calleeNames(n),
	}
	if r := sums.Returns[name]; r != nil {
		rs := &summary.ReturnSummary{Formal: make([]summary.Expr, len(r.Formal))}
		var err error
		if rs.Result, err = summary.FromSym(r.Result); err != nil {
			return nil, err
		}
		for i, e := range r.Formal {
			if rs.Formal[i], err = summary.FromSym(e); err != nil {
				return nil, err
			}
		}
		for g, e := range r.Global {
			pe, err := summary.FromSym(e)
			if err != nil {
				return nil, err
			}
			if pe == nil {
				continue // ⊥ entries carry no information
			}
			rs.Globals = append(rs.Globals, summary.GlobalExpr{ID: g.ID, Ref: g.String(), E: pe})
		}
		summary.SortGlobalExprs(rs.Globals)
		ps.Returns = rs
	}
	ps.ModFormals = make([]bool, len(proc.Formals))
	ps.RefFormals = make([]bool, len(proc.Formals))
	for i := range proc.Formals {
		ps.ModFormals[i] = mods.ModFormal(proc, i)
		ps.RefFormals[i] = mods.RefFormal(proc, i)
	}
	for _, g := range prog.Globals {
		if mods.ModGlobal(proc, g) {
			ps.ModGlobals = append(ps.ModGlobals, g.ID)
		}
		if mods.RefGlobal(proc, g) {
			ps.RefGlobals = append(ps.RefGlobals, g.ID)
		}
	}
	uses := sums.Uses[name]
	if uses == nil {
		return nil, fmt.Errorf("incr: %s has no use vectors", name)
	}
	ps.FormalUses = make([]summary.UseCount, len(uses.Formal))
	for i, u := range uses.Formal {
		ps.FormalUses[i] = summary.UseCount{Subs: u.Subs, Control: u.Control}
	}
	ps.GlobalUses = make([]summary.UseCount, len(uses.Global))
	for k, u := range uses.Global {
		ps.GlobalUses[k] = summary.UseCount{Subs: u.Subs, Control: u.Control}
	}
	ps.SSAPhis = uses.Phis
	return ps, nil
}

// encodeFlavor converts one procedure's extracted stage-2 site jump
// functions to portable form, independently of the shared half.
func encodeFlavor(proc *ir.Proc, sums *core.Summaries, fps map[string]string) (*summary.FlavorSummary, error) {
	name := proc.Name
	if sums == nil {
		return nil, fmt.Errorf("incr: no summaries extracted")
	}
	if fps[name] == "" {
		return nil, fmt.Errorf("incr: %s has no fingerprint", name)
	}
	fs := &summary.FlavorSummary{
		Name:       name,
		SourceHash: fps[name],
	}
	for _, site := range sums.Sites[name] {
		if site == nil {
			return nil, fmt.Errorf("incr: %s has an unextracted site", name)
		}
		ss := &summary.SiteSummary{
			Callee: site.Call.Callee.Name,
			Formal: make([]summary.Expr, len(site.Formal)),
			Global: make([]summary.Expr, len(site.Global)),
		}
		var err error
		for i, e := range site.Formal {
			if ss.Formal[i], err = summary.FromSym(e); err != nil {
				return nil, err
			}
		}
		for k, e := range site.Global {
			if ss.Global[k], err = summary.FromSym(e); err != nil {
				return nil, err
			}
		}
		fs.Sites = append(fs.Sites, ss)
	}
	return fs, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
