// Package sym implements the symbolic integer expressions jump functions
// are made of: polynomial-style expressions whose leaves are compile-time
// constants, the entry values of the enclosing procedure's formal
// parameters, the entry values of global variables (the paper extends
// "parameter" to include globals), and opaque unknowns.
//
// Expressions are hash-consed by a canonical key, constant-folded on
// construction, and lightly normalized (commutative operands sorted), so
// two occurrences of the same computation compare equal — this is the
// "value numbering" part of the SSA-based value-number graph the paper
// builds jump functions on.
package sym

import (
	"fmt"
	"sort"
	"strings"

	"ipcp/internal/core/lattice"
	"ipcp/internal/ir"
)

// Expr is a symbolic expression. Expressions are immutable; compare them
// with Key().
type Expr interface {
	// Key returns the canonical spelling used for equality and hashing.
	Key() string
	String() string
	isExpr()
}

// Const is an integer constant leaf.
type Const struct{ Val int64 }

// Formal is the entry value of the enclosing procedure's Index-th formal.
type Formal struct {
	Index int
	Name  string
}

// GlobalEntry is the entry value of a global variable.
type GlobalEntry struct{ G *ir.GlobalVar }

// Unknown is an opaque value; two Unknowns are equal iff their IDs are.
// IDs are SSA value IDs, so congruent uses share an Unknown.
type Unknown struct{ ID int }

// Op is an operator application over subexpressions.
type Op struct {
	Op   ir.Op
	Args []Expr
	key  string
}

func (*Const) isExpr()       {}
func (*Formal) isExpr()      {}
func (*GlobalEntry) isExpr() {}
func (*Unknown) isExpr()     {}
func (*Op) isExpr()          {}

// Key implementations.
func (e *Const) Key() string       { return fmt.Sprintf("#%d", e.Val) }
func (e *Formal) Key() string      { return fmt.Sprintf("f%d", e.Index) }
func (e *GlobalEntry) Key() string { return fmt.Sprintf("g%d", e.G.ID) }
func (e *Unknown) Key() string     { return fmt.Sprintf("u%d", e.ID) }
func (e *Op) Key() string          { return e.key }

func (e *Const) String() string { return fmt.Sprintf("%d", e.Val) }
func (e *Formal) String() string {
	if e.Name != "" {
		return e.Name
	}
	return fmt.Sprintf("formal(%d)", e.Index)
}
func (e *GlobalEntry) String() string { return e.G.String() }
func (e *Unknown) String() string     { return fmt.Sprintf("?%d", e.ID) }
func (e *Op) String() string {
	parts := make([]string, len(e.Args))
	for i, a := range e.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Op, strings.Join(parts, ", "))
}

// NewConst returns the constant expression for v.
func NewConst(v int64) *Const { return &Const{Val: v} }

// foldable ops and their arities; MakeOp refuses anything else.
func arithOK(op ir.Op) bool {
	switch op {
	case ir.OpNeg, ir.OpAbs, ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpDiv,
		ir.OpPow, ir.OpMod, ir.OpMin, ir.OpMax:
		return true
	}
	return false
}

func commutative(op ir.Op) bool {
	switch op {
	case ir.OpAdd, ir.OpMul, ir.OpMin, ir.OpMax:
		return true
	}
	return false
}

// FoldInt evaluates op over integer operands with the analyzer's
// arithmetic: truncating division, failure on division by zero and on
// negative exponents. All analysis stages share this function, so they
// agree about every fold.
func FoldInt(op ir.Op, args []int64) (int64, bool) {
	switch op {
	case ir.OpNeg:
		return -args[0], true
	case ir.OpAbs:
		if args[0] < 0 {
			return -args[0], true
		}
		return args[0], true
	case ir.OpAdd:
		return args[0] + args[1], true
	case ir.OpSub:
		return args[0] - args[1], true
	case ir.OpMul:
		return args[0] * args[1], true
	case ir.OpDiv:
		if args[1] == 0 {
			return 0, false
		}
		return args[0] / args[1], true
	case ir.OpMod:
		if args[1] == 0 {
			return 0, false
		}
		return args[0] % args[1], true
	case ir.OpPow:
		if args[1] < 0 {
			return 0, false
		}
		r := int64(1)
		for i := int64(0); i < args[1]; i++ {
			r *= args[0]
		}
		return r, true
	case ir.OpMin:
		m := args[0]
		for _, a := range args[1:] {
			if a < m {
				m = a
			}
		}
		return m, true
	case ir.OpMax:
		m := args[0]
		for _, a := range args[1:] {
			if a > m {
				m = a
			}
		}
		return m, true
	}
	return 0, false
}

// MakeOp builds op(args...), constant-folding when every argument is a
// constant and sorting the operands of commutative operators so that
// congruent expressions share a key. Unsupported operators and failed
// folds (division by zero) yield nil, which callers treat as unknown.
func MakeOp(op ir.Op, args ...Expr) Expr {
	if !arithOK(op) {
		return nil
	}
	for _, a := range args {
		if a == nil {
			return nil
		}
	}
	allConst := true
	vals := make([]int64, len(args))
	for i, a := range args {
		if c, ok := a.(*Const); ok {
			vals[i] = c.Val
		} else {
			allConst = false
			break
		}
	}
	if allConst {
		if v, ok := FoldInt(op, vals); ok {
			return NewConst(v)
		}
		return nil
	}

	// Light algebraic identities keep pass-through chains recognizable
	// (x+0, x*1, x-0 arise from lowering and generator boilerplate).
	if len(args) == 2 {
		x, y := args[0], args[1]
		if c, ok := y.(*Const); ok {
			switch {
			case op == ir.OpAdd && c.Val == 0,
				op == ir.OpSub && c.Val == 0,
				op == ir.OpMul && c.Val == 1,
				op == ir.OpDiv && c.Val == 1:
				return x
			case op == ir.OpMul && c.Val == 0:
				return NewConst(0)
			}
		}
		if c, ok := x.(*Const); ok {
			switch {
			case op == ir.OpAdd && c.Val == 0:
				return y
			case op == ir.OpMul && c.Val == 1:
				return y
			case op == ir.OpMul && c.Val == 0:
				return NewConst(0)
			}
		}
	}

	sorted := args
	if commutative(op) {
		sorted = append([]Expr(nil), args...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key() < sorted[j].Key() })
	}
	keys := make([]string, len(sorted))
	for i, a := range sorted {
		keys[i] = a.Key()
	}
	return &Op{
		Op:   op,
		Args: sorted,
		key:  fmt.Sprintf("(%s %s)", op, strings.Join(keys, " ")),
	}
}

// Equal reports whether two expressions are structurally identical.
func Equal(a, b Expr) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Key() == b.Key()
}

// ---------------------------------------------------------------------------
// Queries

// Leaf is a support-set member: a formal or a global entry.
type Leaf struct {
	FormalIndex int           // -1 when the leaf is a global
	Global      *ir.GlobalVar // nil when the leaf is a formal
}

// Support returns the expression's support set (the formals and globals
// whose entry values it reads), and whether the expression is "closed" —
// free of Unknown leaves. A jump function is a valid polynomial exactly
// when its expression is closed (support may be empty: a constant).
func Support(e Expr) (leaves []Leaf, closed bool) {
	seen := map[string]bool{}
	closed = true
	var walk func(Expr)
	walk = func(e Expr) {
		switch e := e.(type) {
		case *Const:
		case *Formal:
			if !seen[e.Key()] {
				seen[e.Key()] = true
				leaves = append(leaves, Leaf{FormalIndex: e.Index})
			}
		case *GlobalEntry:
			if !seen[e.Key()] {
				seen[e.Key()] = true
				leaves = append(leaves, Leaf{FormalIndex: -1, Global: e.G})
			}
		case *Unknown:
			closed = false
		case *Op:
			for _, a := range e.Args {
				walk(a)
			}
		}
	}
	if e == nil {
		return nil, false
	}
	walk(e)
	return leaves, closed
}

// IsClosed reports whether e contains no Unknown leaves.
func IsClosed(e Expr) bool {
	_, closed := Support(e)
	return closed
}

// ---------------------------------------------------------------------------
// Evaluation

// Env supplies lattice values for the leaves of an expression during
// interprocedural propagation.
type Env interface {
	FormalValue(index int) lattice.Value
	GlobalValue(g *ir.GlobalVar) lattice.Value
}

// Eval evaluates e under env with the optimistic rules of the CCKT
// framework: if any leaf is ⊥ the result is ⊥; otherwise if any leaf is
// ⊤ the result is ⊤ (the caller has never been reached yet); otherwise
// the expression folds to a constant. A nil expression is ⊥.
func Eval(e Expr, env Env) lattice.Value {
	if e == nil {
		return lattice.Bottom
	}
	v, ok := eval(e, env)
	if !ok {
		return lattice.Bottom
	}
	return v
}

// eval returns (value, ok); !ok means ⊥ (including fold failure).
func eval(e Expr, env Env) (lattice.Value, bool) {
	switch e := e.(type) {
	case *Const:
		return lattice.OfInt(e.Val), true
	case *Formal:
		return liftLeaf(env.FormalValue(e.Index))
	case *GlobalEntry:
		return liftLeaf(env.GlobalValue(e.G))
	case *Unknown:
		return lattice.Bottom, false
	case *Op:
		sawTop := false
		vals := make([]int64, len(e.Args))
		for i, a := range e.Args {
			v, ok := eval(a, env)
			if !ok {
				return lattice.Bottom, false
			}
			if v.IsTop() {
				sawTop = true
				continue
			}
			c, isInt := v.IntConst()
			if !isInt {
				return lattice.Bottom, false
			}
			vals[i] = c
		}
		if sawTop {
			return lattice.Top, true
		}
		r, ok := FoldInt(e.Op, vals)
		if !ok {
			return lattice.Bottom, false
		}
		return lattice.OfInt(r), true
	}
	return lattice.Bottom, false
}

func liftLeaf(v lattice.Value) (lattice.Value, bool) {
	if v.IsBottom() {
		return lattice.Bottom, false
	}
	if v.IsTop() {
		return lattice.Top, true
	}
	if _, ok := v.IntConst(); !ok {
		return lattice.Bottom, false
	}
	return v, true
}

// EvalConst evaluates a closed expression to an integer when possible
// (no environment: every formal/global leaf makes it non-constant).
func EvalConst(e Expr) (int64, bool) {
	if c, ok := e.(*Const); ok {
		return c.Val, true
	}
	return 0, false
}

// Substitute replaces each Formal and GlobalEntry leaf of e using the
// given mappings (a nil result from a mapping leaves the leaf in place)
// and rebuilds the expression with folding. It returns nil when a
// subexpression fails to fold (division by zero).
func Substitute(e Expr, formal func(int) Expr, global func(*ir.GlobalVar) Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *Const, *Unknown:
		return e
	case *Formal:
		if formal != nil {
			if r := formal(e.Index); r != nil {
				return r
			}
		}
		return e
	case *GlobalEntry:
		if global != nil {
			if r := global(e.G); r != nil {
				return r
			}
		}
		return e
	case *Op:
		args := make([]Expr, len(e.Args))
		for i, a := range e.Args {
			args[i] = Substitute(a, formal, global)
			if args[i] == nil {
				return nil
			}
		}
		return MakeOp(e.Op, args...)
	}
	return nil
}
