package sym

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ipcp/internal/core/lattice"
	"ipcp/internal/ir"
)

func TestConstFolding(t *testing.T) {
	e := MakeOp(ir.OpAdd, NewConst(2), NewConst(3))
	c, ok := e.(*Const)
	if !ok || c.Val != 5 {
		t.Fatalf("2+3 = %v", e)
	}
	if e := MakeOp(ir.OpDiv, NewConst(1), NewConst(0)); e != nil {
		t.Fatalf("1/0 should fail to fold, got %v", e)
	}
	if e := MakeOp(ir.OpPow, NewConst(2), NewConst(-1)); e != nil {
		t.Fatalf("2**-1 should fail to fold, got %v", e)
	}
	if e := MakeOp(ir.OpMod, NewConst(7), NewConst(3)).(*Const); e.Val != 1 {
		t.Fatalf("mod(7,3) = %v", e)
	}
	if e := MakeOp(ir.OpMin, NewConst(4), NewConst(-2), NewConst(9)).(*Const); e.Val != -2 {
		t.Fatalf("min = %v", e)
	}
}

func TestCommutativeCanonicalization(t *testing.T) {
	f := &Formal{Index: 0, Name: "A"}
	g := &Formal{Index: 1, Name: "B"}
	ab := MakeOp(ir.OpAdd, f, g)
	ba := MakeOp(ir.OpAdd, g, f)
	if !Equal(ab, ba) {
		t.Fatalf("a+b and b+a should be congruent: %q vs %q", ab.Key(), ba.Key())
	}
	// Subtraction is not commutative.
	if Equal(MakeOp(ir.OpSub, f, g), MakeOp(ir.OpSub, g, f)) {
		t.Fatal("a-b and b-a must differ")
	}
}

func TestIdentities(t *testing.T) {
	f := &Formal{Index: 0, Name: "A"}
	if e := MakeOp(ir.OpAdd, f, NewConst(0)); !Equal(e, f) {
		t.Errorf("a+0 = %v", e)
	}
	if e := MakeOp(ir.OpMul, NewConst(1), f); !Equal(e, f) {
		t.Errorf("1*a = %v", e)
	}
	if e := MakeOp(ir.OpMul, f, NewConst(0)); !Equal(e, NewConst(0)) {
		t.Errorf("a*0 = %v", e)
	}
	if e := MakeOp(ir.OpSub, f, NewConst(0)); !Equal(e, f) {
		t.Errorf("a-0 = %v", e)
	}
}

func TestUnknownCongruence(t *testing.T) {
	u1, u2 := &Unknown{ID: 10}, &Unknown{ID: 10}
	u3 := &Unknown{ID: 11}
	if !Equal(u1, u2) || Equal(u1, u3) {
		t.Fatal("unknown identity by ID broken")
	}
	// phi(x, x) congruence: the same unknown through two ops.
	a := MakeOp(ir.OpAdd, u1, NewConst(1))
	b := MakeOp(ir.OpAdd, u2, NewConst(1))
	if !Equal(a, b) {
		t.Fatal("u+1 twice should be congruent")
	}
}

func TestSupport(t *testing.T) {
	g := &ir.GlobalVar{ID: 3, Block: "BLK", Name: "G"}
	e := MakeOp(ir.OpAdd,
		MakeOp(ir.OpMul, &Formal{Index: 0}, NewConst(2)),
		&GlobalEntry{G: g})
	leaves, closed := Support(e)
	if !closed {
		t.Fatal("expression should be closed")
	}
	if len(leaves) != 2 {
		t.Fatalf("support: %v", leaves)
	}
	// Unknown poisons closure.
	e2 := MakeOp(ir.OpAdd, e, &Unknown{ID: 1})
	if IsClosed(e2) {
		t.Fatal("expression with unknown should not be closed")
	}
	// Duplicate leaves are reported once.
	e3 := MakeOp(ir.OpAdd, &Formal{Index: 0}, &Formal{Index: 0})
	leaves3, _ := Support(e3)
	if len(leaves3) != 1 {
		t.Fatalf("dedup: %v", leaves3)
	}
	if _, closed := Support(nil); closed {
		t.Fatal("nil expression is not closed")
	}
}

// mapEnv is a test Env.
type mapEnv struct {
	formals map[int]lattice.Value
	globals map[int]lattice.Value
}

func (m mapEnv) FormalValue(i int) lattice.Value {
	if v, ok := m.formals[i]; ok {
		return v
	}
	return lattice.Bottom
}
func (m mapEnv) GlobalValue(g *ir.GlobalVar) lattice.Value {
	if v, ok := m.globals[g.ID]; ok {
		return v
	}
	return lattice.Bottom
}

func TestEval(t *testing.T) {
	g := &ir.GlobalVar{ID: 0, Block: "B", Name: "G"}
	// e = 2*f0 + g
	e := MakeOp(ir.OpAdd, MakeOp(ir.OpMul, NewConst(2), &Formal{Index: 0}), &GlobalEntry{G: g})

	env := mapEnv{
		formals: map[int]lattice.Value{0: lattice.OfInt(10)},
		globals: map[int]lattice.Value{0: lattice.OfInt(1)},
	}
	if v := Eval(e, env); !v.Equal(lattice.OfInt(21)) {
		t.Fatalf("eval: %v", v)
	}

	// A ⊥ leaf forces ⊥.
	env.globals[0] = lattice.Bottom
	if v := Eval(e, env); !v.IsBottom() {
		t.Fatalf("bottom leaf: %v", v)
	}

	// A ⊤ leaf (with no ⊥) keeps the optimistic ⊤.
	env.globals[0] = lattice.Top
	if v := Eval(e, env); !v.IsTop() {
		t.Fatalf("top leaf: %v", v)
	}

	// ⊥ beats ⊤.
	env.formals[0] = lattice.Bottom
	if v := Eval(e, env); !v.IsBottom() {
		t.Fatalf("bottom beats top: %v", v)
	}

	// Unknowns are ⊥.
	if v := Eval(&Unknown{ID: 1}, env); !v.IsBottom() {
		t.Fatalf("unknown: %v", v)
	}
	// nil is ⊥.
	if v := Eval(nil, env); !v.IsBottom() {
		t.Fatalf("nil: %v", v)
	}
	// Division by zero during evaluation is ⊥.
	d := MakeOp(ir.OpDiv, NewConst(1), &Formal{Index: 1})
	env.formals[1] = lattice.OfInt(0)
	if v := Eval(d, env); !v.IsBottom() {
		t.Fatalf("div by zero: %v", v)
	}
	// A logical constant flowing into arithmetic is ⊥ (integers only).
	env.formals[1] = lattice.OfBool(true)
	if v := Eval(d, env); !v.IsBottom() {
		t.Fatalf("bool leaf: %v", v)
	}
}

func TestSubstitute(t *testing.T) {
	g := &ir.GlobalVar{ID: 0, Block: "B", Name: "G"}
	e := MakeOp(ir.OpAdd, &Formal{Index: 0}, &GlobalEntry{G: g})
	// f0 := 3, g stays.
	r := Substitute(e, func(i int) Expr {
		if i == 0 {
			return NewConst(3)
		}
		return nil
	}, nil)
	leaves, closed := Support(r)
	if !closed || len(leaves) != 1 || leaves[0].Global != g {
		t.Fatalf("substitute: %v (leaves %v)", r, leaves)
	}
	// Full substitution folds.
	r2 := Substitute(e, func(int) Expr { return NewConst(3) },
		func(*ir.GlobalVar) Expr { return NewConst(4) })
	if c, ok := r2.(*Const); !ok || c.Val != 7 {
		t.Fatalf("folded substitute: %v", r2)
	}
	// Substitution that triggers a failed fold returns nil.
	d := MakeOp(ir.OpDiv, NewConst(1), &Formal{Index: 0})
	if r := Substitute(d, func(int) Expr { return NewConst(0) }, nil); r != nil {
		t.Fatalf("div-by-zero substitute: %v", r)
	}
}

// genExpr builds a random well-formed expression for property tests.
func genExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(3) {
		case 0:
			return NewConst(int64(r.Intn(7) - 3))
		case 1:
			return &Formal{Index: r.Intn(3)}
		default:
			return &Unknown{ID: r.Intn(3)}
		}
	}
	ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpMin, ir.OpMax}
	op := ops[r.Intn(len(ops))]
	e := MakeOp(op, genExpr(r, depth-1), genExpr(r, depth-1))
	if e == nil {
		return NewConst(1)
	}
	return e
}

type exprBox struct{ E Expr }

func (exprBox) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(exprBox{E: genExpr(r, 3)})
}

// Property: Key equality is a congruence for MakeOp.
func TestKeyCongruenceProperty(t *testing.T) {
	f := func(a, b exprBox) bool {
		e1 := MakeOp(ir.OpAdd, a.E, b.E)
		e2 := MakeOp(ir.OpAdd, a.E, b.E)
		return Equal(e1, e2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: evaluation under a total constant environment never yields ⊤.
func TestEvalTotalEnvProperty(t *testing.T) {
	env := mapEnv{formals: map[int]lattice.Value{
		0: lattice.OfInt(2), 1: lattice.OfInt(-1), 2: lattice.OfInt(5),
	}}
	f := func(b exprBox) bool {
		v := Eval(b.E, env)
		return !v.IsTop()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Substitute with identity mappings preserves the key.
func TestSubstituteIdentityProperty(t *testing.T) {
	f := func(b exprBox) bool {
		r := Substitute(b.E, nil, nil)
		return Equal(r, b.E)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
