// Package report regenerates the paper's exhibits — Figure 1 and
// Tables 1–3 — over the synthetic benchmark suite, formatted as aligned
// text tables like the originals.
package report

import (
	"fmt"
	"strings"
	"sync"

	"ipcp"
	"ipcp/internal/suite"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Note    string
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteString("\n")
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&sb, "%-*s", widths[i], cell)
			} else {
				fmt.Fprintf(&sb, "%*s", widths[i], cell)
			}
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	total := len(t.Headers) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		sb.WriteString(t.Note)
		sb.WriteString("\n")
	}
	return sb.String()
}

// Figure1 renders the constant propagation lattice and its meet rules.
func Figure1() string {
	return `Figure 1: the constant propagation lattice.

          T                    meet rules:
       /  |  \                   any ^  T  = any
  ... c1  c2  c3 ...             any ^ _|_ = _|_
       \  |  /                   ci  ^ cj  = ci    if ci = cj
         _|_                     ci  ^ cj  = _|_   if ci /= cj

The lattice is infinite but has bounded depth: a value can be lowered
at most twice (T -> constant -> _|_).
`
}

// Suite generates and loads the 12-program suite once at the default
// scale, one program per suite-runner worker.
func Suite() []*Loaded {
	return suite.Run(suite.DefaultScale, 0, func(p *suite.Program) *Loaded {
		return NewLoaded(p, ipcp.MustLoad(p.Source))
	})
}

// rows fills one table row per program concurrently — the analyses are
// independent and CPU-bound, so table generation parallelizes cleanly.
// Output order stays deterministic (rows land at their program's index).
func rows(progs []*Loaded, build func(*Loaded) []string) [][]string {
	out := make([][]string, len(progs))
	var wg sync.WaitGroup
	for i, l := range progs {
		wg.Add(1)
		go func(i int, l *Loaded) {
			defer wg.Done()
			out[i] = build(l)
		}(i, l)
	}
	wg.Wait()
	return out
}

// Loaded pairs a generated suite program with its analyzed form.
type Loaded struct {
	meta *suite.Program
	prog *ipcp.Program
}

// NewLoaded pairs a generated program with its loaded form.
func NewLoaded(meta *suite.Program, prog *ipcp.Program) *Loaded {
	return &Loaded{meta: meta, prog: prog}
}

// Prog returns the loaded program.
func (l *Loaded) Prog() *ipcp.Program { return l.prog }

// Meta returns the generated suite program.
func (l *Loaded) Meta() *suite.Program { return l.meta }

// Table1 regenerates the program-characteristics table.
func Table1(progs []*Loaded) *Table {
	t := &Table{
		Title:   "Table 1: Characteristics of program test suite.",
		Headers: []string{"Program", "Lines", "Procs", "Call sites", "Mean lines/proc", "Median lines/proc"},
		Note:    "Line counts exclude comments and blank lines.",
	}
	for _, l := range progs {
		st := l.prog.Stats()
		t.Rows = append(t.Rows, []string{
			l.meta.Name,
			fmt.Sprintf("%d", st.Lines),
			fmt.Sprintf("%d", st.Procedures),
			fmt.Sprintf("%d", st.CallSites),
			fmt.Sprintf("%.1f", st.MeanLinesPerProc),
			fmt.Sprintf("%.1f", st.MedianLinesPerProc),
		})
	}
	return t
}

// analyzeColumns runs one program's table columns as a single
// configuration matrix: the parse + sema + IR lowering are shared and
// the configurations fan out over the worker pool, replacing the old
// one-Analyze-per-cell sequential loop. Column order follows cfgs.
func analyzeColumns(l *Loaded, cfgs []ipcp.Config) []string {
	cells := make([]string, len(cfgs))
	for i, rep := range l.prog.AnalyzeMatrix(cfgs, 0) {
		cells[i] = fmt.Sprintf("%d", rep.TotalSubstituted)
	}
	return cells
}

// Table2 regenerates "Constants found through use of jump functions":
// the four flavors with return jump functions, then polynomial and
// pass-through without them.
func Table2(progs []*Loaded) *Table {
	t := &Table{
		Title: "Table 2: Constants found through use of jump functions.",
		Headers: []string{"Program",
			"Polynomial", "Pass-through", "Intraproc", "Literal",
			"Poly (no RJF)", "Pass (no RJF)"},
		Note: "First four columns use return jump functions; last two do not.",
	}
	cfgs := []ipcp.Config{
		{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true},
		{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true},
		{Jump: ipcp.Intraprocedural, ReturnJumpFunctions: true, MOD: true},
		{Jump: ipcp.Literal, ReturnJumpFunctions: true, MOD: true},
		{Jump: ipcp.Polynomial, MOD: true},
		{Jump: ipcp.PassThrough, MOD: true},
	}
	t.Rows = rows(progs, func(l *Loaded) []string {
		return append([]string{l.meta.Name}, analyzeColumns(l, cfgs)...)
	})
	return t
}

// Table3 regenerates "Comparison of most precise jump function with
// other propagation techniques".
func Table3(progs []*Loaded) *Table {
	t := &Table{
		Title: "Table 3: Comparison of the most precise jump function with other propagation techniques.",
		Headers: []string{"Program",
			"Poly w/o MOD", "Poly w/ MOD", "Complete", "Intraproc only"},
		Note: "Complete = polynomial propagation iterated with dead-code elimination.",
	}
	cfgs := []ipcp.Config{
		{Jump: ipcp.Polynomial, ReturnJumpFunctions: true},
		{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true},
		{Jump: ipcp.Polynomial, ReturnJumpFunctions: true, MOD: true, Complete: true},
	}
	t.Rows = rows(progs, func(l *Loaded) []string {
		return append(append([]string{l.meta.Name}, analyzeColumns(l, cfgs)...),
			fmt.Sprintf("%d", l.prog.AnalyzeIntraprocedural().TotalSubstituted))
	})
	return t
}

// TableCloning is the extension exhibit: substitution counts before and
// after goal-directed procedure cloning (§1/§5; Metzger & Stroud), over
// the pass-through configuration.
func TableCloning(progs []*Loaded) *Table {
	t := &Table{
		Title:   "Extension: goal-directed procedure cloning (Metzger & Stroud).",
		Headers: []string{"Program", "Before", "After", "Clones", "Rounds"},
		Note:    "Pass-through jump functions, return JFs and MOD enabled; up to 8 versions per procedure.",
	}
	cfg := ipcp.Config{Jump: ipcp.PassThrough, ReturnJumpFunctions: true, MOD: true}
	t.Rows = rows(progs, func(l *Loaded) []string {
		out := l.prog.AnalyzeWithCloning(cfg, ipcp.CloneOptions{MaxVersionsPerProc: 8, MaxRounds: 3})
		return []string{
			l.meta.Name,
			fmt.Sprintf("%d", out.Base.TotalSubstituted),
			fmt.Sprintf("%d", out.Final.TotalSubstituted),
			fmt.Sprintf("%d", out.TotalClones),
			fmt.Sprintf("%d", out.Rounds),
		}
	})
	return t
}

// TableIntegration is the §5 experiment the paper says lacked data:
// Wegman & Zadeck's procedure integration + intraprocedural propagation
// versus the jump-function framework.
func TableIntegration(progs []*Loaded) *Table {
	t := &Table{
		Title: "Extension: procedure integration + intraprocedural propagation (Wegman & Zadeck, §5).",
		Headers: []string{"Program",
			"IPCP (poly)", "Integration", "Plain intra", "Inlined sites"},
		Note: "Integration makes call paths explicit, so it can exceed the jump-function framework (which meets all paths into one CONSTANTS set).",
	}
	t.Rows = rows(progs, func(l *Loaded) []string {
		ipcpCount, wzCount, intraCount, sites := l.prog.IntegrationBaseline()
		return []string{
			l.meta.Name,
			fmt.Sprintf("%d", ipcpCount),
			fmt.Sprintf("%d", wzCount),
			fmt.Sprintf("%d", intraCount),
			fmt.Sprintf("%d", sites),
		}
	})
	return t
}

// All renders Figure 1 and the three tables.
func All() string {
	progs := Suite()
	var sb strings.Builder
	sb.WriteString(Figure1())
	sb.WriteString("\n")
	sb.WriteString(Table1(progs).Render())
	sb.WriteString("\n")
	sb.WriteString(Table2(progs).Render())
	sb.WriteString("\n")
	sb.WriteString(Table3(progs).Render())
	return sb.String()
}
