package report

import (
	"strings"
	"testing"

	"ipcp/internal/suite"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "Title line",
		Headers: []string{"Program", "Count"},
		Rows:    [][]string{{"alpha", "12"}, {"betalonger", "3"}},
		Note:    "footnote",
	}
	out := tbl.Render()
	for _, want := range []string{"Title line", "Program", "alpha", "betalonger", "footnote"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Column alignment: both numeric cells end at the same column.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	var dataLines []string
	for _, l := range lines {
		if strings.HasPrefix(l, "alpha") || strings.HasPrefix(l, "betalonger") {
			dataLines = append(dataLines, l)
		}
	}
	if len(dataLines) != 2 || len(dataLines[0]) != len(dataLines[1]) {
		t.Errorf("rows not aligned:\n%s", out)
	}
}

func TestFigure1Content(t *testing.T) {
	f := Figure1()
	for _, want := range []string{"any ^  T  = any", "any ^ _|_ = _|_", "bounded depth"} {
		if !strings.Contains(f, want) {
			t.Errorf("figure missing %q", want)
		}
	}
}

func TestTablesOverSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite table generation")
	}
	progs := Suite()
	if len(progs) != 12 {
		t.Fatalf("suite size: %d", len(progs))
	}
	t1 := Table1(progs).Render()
	t2 := Table2(progs).Render()
	t3 := Table3(progs).Render()
	for _, name := range suite.Names() {
		for i, tb := range []string{t1, t2, t3} {
			if !strings.Contains(tb, name) {
				t.Errorf("table %d missing program %s", i+1, name)
			}
		}
	}
	// Accessors round-trip.
	if progs[0].Prog() == nil || progs[0].Meta() == nil {
		t.Error("Loaded accessors broken")
	}
	all := All()
	if !strings.Contains(all, "Table 1") || !strings.Contains(all, "Table 3") {
		t.Error("All() incomplete")
	}
}
