// Package ir defines the intermediate representation the analyses run
// on: a conventional three-address linear IR over basic blocks, plus
// in-place SSA construction (dominators, dominance frontiers, phi
// placement, renaming).
//
// Two design points are load-bearing for the study:
//
//   - Call instructions model FORTRAN by-reference semantics explicitly.
//     A call lists its actual arguments followed by an implicit use of
//     every scalar global, and after SSA construction carries a CallDef
//     value for every scalar variable the callee may modify (per a MOD
//     oracle). Running SSA with the worst-case oracle reproduces the
//     paper's "no MOD information" configuration exactly.
//
//   - Ret instructions use every value that outlives the procedure (the
//     function result, the scalar formals, and the scalar globals), so
//     the SSA renaming records exit values directly. Return jump
//     functions read them off the Ret operands, and dead-code
//     elimination cannot delete a store whose value escapes.
package ir

import (
	"fmt"

	"ipcp/internal/mf/token"
)

// ---------------------------------------------------------------------------
// Types

// Type is the IR-level type of a value or variable.
type Type int

// IR types. Bool is the type of relational/logical results (LOGICAL).
const (
	Int Type = iota
	Real
	Bool
	IntArray
	RealArray
)

func (t Type) String() string {
	switch t {
	case Int:
		return "int"
	case Real:
		return "real"
	case Bool:
		return "bool"
	case IntArray:
		return "int[]"
	case RealArray:
		return "real[]"
	}
	return "?"
}

// IsArray reports whether t is an array type.
func (t Type) IsArray() bool { return t == IntArray || t == RealArray }

// Elem returns the element type of an array type (or t itself).
func (t Type) Elem() Type {
	switch t {
	case IntArray:
		return Int
	case RealArray:
		return Real
	}
	return t
}

// ---------------------------------------------------------------------------
// Program, procedures, variables

// GlobalVar is one scalar or array COMMON member, shared program-wide.
type GlobalVar struct {
	ID    int // dense index; Program.Globals[ID] == this
	Block string
	Name  string // canonical name (from the first declaring unit)
	Type  Type
	Size  int64   // element count for arrays, 1 for scalars
	Dims  []int64 // per-dimension extents for arrays (column-major)
}

func (g *GlobalVar) String() string { return g.Block + "." + g.Name }

// ProcKind distinguishes the program entry point, subroutines, and
// functions.
type ProcKind int

// Procedure kinds.
const (
	MainProc ProcKind = iota
	SubProc
	FuncProc
)

// Program is a whole MiniFortran program in IR form.
type Program struct {
	Procs      []*Proc
	ProcByName map[string]*Proc
	Main       *Proc
	Globals    []*GlobalVar

	// ScalarGlobals lists the globals tracked by the analyses (the
	// non-array ones), in GlobalVar.ID order. Call and Ret instructions
	// reference globals in exactly this order.
	ScalarGlobals []*GlobalVar
}

// Proc is one procedure in IR form.
type Proc struct {
	Name string
	Kind ProcKind
	Prog *Program

	Formals []*Var // in parameter order
	Result  *Var   // function result variable, nil otherwise
	Vars    []*Var // every variable, including formals, globals view, temps

	// GlobalVars holds this procedure's Var view of each scalar global,
	// parallel to Prog.ScalarGlobals.
	GlobalVars []*Var

	Blocks []*Block
	Entry  *Block

	// RetVars lists the variables whose values every Ret instruction
	// uses, in Ret operand order: the function result (if any), then the
	// scalar formals, then the scalar globals (Prog.ScalarGlobals order).
	RetVars []*Var

	// SSA state, filled by BuildSSA.
	ssaBuilt  bool
	nextValID int

	// EntryValues maps each SSA-tracked variable to its value at
	// procedure entry (EntryDef for formals and globals, UndefDef for
	// locals), filled by BuildSSA.
	EntryValues map[*Var]*Value

	// SrcLines is the number of noncomment source lines of the original
	// program unit (used for Table 1).
	SrcLines int

	// ElidedPhis counts the phi instructions a summary-seeded analysis
	// chose not to materialize by skipping this procedure's SSA
	// conversion (the count BuildSSA would have inserted, replayed from
	// the procedure's stored summary). IR size counts include it so
	// pass traces are identical whether or not summaries were reused;
	// it is zero everywhere outside a seeded run.
	ElidedPhis int
}

// NumScalarFormals returns the number of non-array formals.
func (p *Proc) NumScalarFormals() int {
	n := 0
	for _, f := range p.Formals {
		if !f.Type.IsArray() {
			n++
		}
	}
	return n
}

// VarKind classifies procedure-local variables.
type VarKind int

// Variable kinds.
const (
	FormalVar VarKind = iota
	LocalVar
	GlobalRefVar // this procedure's view of a COMMON member
	TempVar      // compiler temporary (single def, single block)
	ResultVar    // function result
)

func (k VarKind) String() string {
	switch k {
	case FormalVar:
		return "formal"
	case LocalVar:
		return "local"
	case GlobalRefVar:
		return "global"
	case TempVar:
		return "temp"
	case ResultVar:
		return "result"
	}
	return "var"
}

// Var is a variable within one procedure.
type Var struct {
	ID     int // dense per-procedure index
	Name   string
	Kind   VarKind
	Type   Type
	Index  int        // FormalVar: 0-based formal position
	Global *GlobalVar // GlobalRefVar: the global this views
	Size   int64      // element count for arrays
	Dims   []int64    // per-dimension extents for arrays (column-major)
}

func (v *Var) String() string { return v.Name }

// Tracked reports whether the variable participates in SSA renaming:
// scalar formals, locals, globals, and results. Arrays and temps do not
// (temps are single-assignment by construction).
func (v *Var) Tracked() bool {
	if v.Type.IsArray() {
		return false
	}
	return v.Kind != TempVar
}

// ---------------------------------------------------------------------------
// Blocks

// Block is a basic block.
type Block struct {
	ID     int
	Instrs []*Instr
	Succs  []*Block
	Preds  []*Block

	// Dominator-tree fields, filled by ComputeDominators.
	Idom     *Block
	DomChild []*Block
	DomFront []*Block
	RPO      int // reverse postorder number
}

func (b *Block) String() string { return fmt.Sprintf("b%d", b.ID) }

// Terminator returns the block's final instruction, or nil for an empty
// block.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if last.Op.IsTerminator() {
		return last
	}
	return nil
}

// ---------------------------------------------------------------------------
// Values (SSA definitions)

// DefKind says how an SSA value came to be defined.
type DefKind int

// SSA definition kinds.
const (
	InstrDef DefKind = iota // defined by a regular instruction (incl. phi)
	EntryDef                // value of a formal or global at procedure entry
	UndefDef                // local read before any assignment
	CallDef                 // redefined by a call (callee may modify it)
)

// Value is one SSA definition of a variable (or a temp).
type Value struct {
	ID   int
	Var  *Var // the variable this value is a version of
	Kind DefKind
	Def  *Instr // defining instruction (InstrDef), or the call (CallDef)

	// CallDef bookkeeping: which callee binding produced this value.
	// Exactly one of CalleeFormal >= 0 or CalleeGlobal != nil holds.
	CalleeFormal int // formal index in the callee, -1 otherwise
	CalleeGlobal *GlobalVar

	// Uses lists the instructions that use this value (possibly with
	// duplicates when an instruction uses it twice).
	Uses []*Instr
}

func (v *Value) String() string {
	if v == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%s.%d", v.Var.Name, v.ID)
}

// ---------------------------------------------------------------------------
// Constants and operands

// Const is a compile-time constant operand.
type Const struct {
	Type Type
	Int  int64
	Real float64
	Bool bool
}

// IntConst returns an integer constant.
func IntConst(v int64) *Const { return &Const{Type: Int, Int: v} }

// RealConst returns a real constant.
func RealConst(v float64) *Const { return &Const{Type: Real, Real: v} }

// BoolConst returns a logical constant.
func BoolConst(v bool) *Const { return &Const{Type: Bool, Bool: v} }

func (c *Const) String() string {
	switch c.Type {
	case Int:
		return fmt.Sprintf("%d", c.Int)
	case Real:
		return fmt.Sprintf("%g", c.Real)
	case Bool:
		return fmt.Sprintf("%v", c.Bool)
	}
	return "?"
}

// Equal reports whether two constants are identical in type and value.
func (c *Const) Equal(d *Const) bool {
	if c == nil || d == nil {
		return c == d
	}
	if c.Type != d.Type {
		return false
	}
	switch c.Type {
	case Int:
		return c.Int == d.Int
	case Real:
		return c.Real == d.Real
	default:
		return c.Bool == d.Bool
	}
}

// Operand is one argument of an instruction: either a constant or a
// variable use (whose SSA value is filled in by renaming).
type Operand struct {
	Const *Const // non-nil for a constant operand
	Var   *Var   // non-nil for a variable use (arrays stay as Var only)
	Val   *Value // SSA value of the use, filled by BuildSSA

	// Literal marks operands that were literal constants in the source
	// (or PARAMETER constants, which FORTRAN compilers fold at parse
	// time). The literal-constant jump function accepts only these.
	Literal bool

	// Synthetic marks operands that do not correspond to a textual
	// variable reference in the source: the implicit global uses on
	// calls, Ret operands, and the compiler-generated loop-control uses.
	// The substitution counter (the paper's metric) skips them.
	Synthetic bool
}

// ConstOperand returns a constant operand marked as a source literal.
func ConstOperand(c *Const) Operand { return Operand{Const: c, Literal: true} }

// VarOperand returns a variable-use operand.
func VarOperand(v *Var) Operand { return Operand{Var: v} }

// IsConst reports whether the operand is a compile-time constant.
func (o *Operand) IsConst() bool { return o.Const != nil }

func (o Operand) String() string {
	if o.Const != nil {
		return o.Const.String()
	}
	if o.Val != nil {
		return o.Val.String()
	}
	if o.Var != nil {
		return o.Var.Name
	}
	return "<empty>"
}

// ---------------------------------------------------------------------------
// Instructions

// Op is an instruction opcode.
type Op int

// Opcodes.
const (
	OpCopy Op = iota // dst = arg0

	// Unary arithmetic/logical.
	OpNeg
	OpNot
	OpAbs
	OpI2R // int → real conversion
	OpR2I // real → int truncation

	// Binary arithmetic.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpPow
	OpMod

	// Variadic intrinsics.
	OpMin
	OpMax

	// Comparisons (→ Bool).
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// Logical.
	OpAnd
	OpOr

	// Memory.
	OpALoad  // dst = arrayVar(args...)
	OpAStore // arrayVar(args[1:]...) = args[0]

	// Procedure interaction.
	OpCall // callee(args[:NumActuals]); args[NumActuals:] are global uses
	OpRead // dst = runtime input (unknowable)
	OpWrite

	// SSA.
	OpPhi // dst = phi(args...), parallel to Block.Preds

	// Terminators.
	OpBr  // if args[0] then Succs[0] else Succs[1]
	OpJmp // Succs[0]
	OpRet // args use the RetVars values

	// OpStop terminates the program (like Ret, it ends a block but uses
	// no escaping values — nothing outlives the program).
	OpStop
)

var opNames = [...]string{
	OpCopy: "copy", OpNeg: "neg", OpNot: "not", OpAbs: "abs",
	OpI2R: "i2r", OpR2I: "r2i",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpPow: "pow", OpMod: "mod",
	OpMin: "min", OpMax: "max",
	OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpAnd: "and", OpOr: "or",
	OpALoad: "aload", OpAStore: "astore",
	OpCall: "call", OpRead: "read", OpWrite: "write",
	OpPhi: "phi",
	OpBr:  "br", OpJmp: "jmp", OpRet: "ret", OpStop: "stop",
}

func (op Op) String() string { return opNames[op] }

// IsTerminator reports whether op ends a basic block.
func (op Op) IsTerminator() bool {
	return op == OpBr || op == OpJmp || op == OpRet || op == OpStop
}

// DefinesScalar reports whether the op writes a scalar variable through
// Instr.Var (and therefore participates in SSA renaming of Var).
func (op Op) DefinesScalar() bool {
	switch op {
	case OpCopy, OpNeg, OpNot, OpAbs, OpI2R, OpR2I,
		OpAdd, OpSub, OpMul, OpDiv, OpPow, OpMod, OpMin, OpMax,
		OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr,
		OpALoad, OpRead, OpPhi:
		return true
	}
	return false
}

// Role classifies what a computation feeds, for the study's
// control-flow constant analysis (§4: "we were most interested in
// discovering constants that affect control flow — loop bounds, loop
// strides, and conditions that control if-then-else statements").
type Role uint8

// Instruction roles.
const (
	RoleNone      Role = iota
	RoleLoopBound      // part of a DO bound or step expression
	RoleCondition      // part of an IF / DO WHILE condition
)

// Instr is one IR instruction.
type Instr struct {
	ID    int
	Op    Op
	Block *Block
	Pos   token.Pos
	Role  Role

	// Args are the instruction's operands. For OpPhi they are parallel
	// to Block.Preds. For OpCall the first NumActuals are the actual
	// arguments and the rest are the implicit scalar-global uses. For
	// OpRet they are parallel to Proc.RetVars.
	Args []Operand

	// Var is the scalar destination variable for defining ops, or the
	// array variable for OpALoad/OpAStore.
	Var *Var

	// Dst is the SSA value defined for Var (or the call result), filled
	// by BuildSSA.
	Dst *Value

	// Call-specific fields.
	Callee     *Proc
	NumActuals int
	// CallDefs holds the values redefined by the call: indexes
	// [0,NumActuals) correspond to by-reference scalar-variable actuals,
	// and [NumActuals, NumActuals+len(ScalarGlobals)) to globals.
	// Entries are nil where the callee cannot modify the binding.
	CallDefs []*Value
}

// NumArgs returns len(i.Args).
func (i *Instr) NumArgs() int { return len(i.Args) }

// ---------------------------------------------------------------------------
// Construction helpers

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{ProcByName: make(map[string]*Proc)}
}

// AddProc appends a procedure to the program.
func (p *Program) AddProc(proc *Proc) {
	proc.Prog = p
	p.Procs = append(p.Procs, proc)
	p.ProcByName[proc.Name] = proc
	if proc.Kind == MainProc {
		p.Main = proc
	}
}

// NewVar creates and registers a variable in the procedure.
func (p *Proc) NewVar(name string, kind VarKind, typ Type) *Var {
	v := &Var{ID: len(p.Vars), Name: name, Kind: kind, Type: typ, Index: -1, Size: 1}
	p.Vars = append(p.Vars, v)
	return v
}

// NewBlock creates and registers an empty basic block.
func (p *Proc) NewBlock() *Block {
	b := &Block{ID: len(p.Blocks)}
	p.Blocks = append(p.Blocks, b)
	return b
}

// AddEdge records a CFG edge from b to s.
func AddEdge(b, s *Block) {
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
}

// Append adds an instruction to the end of the block.
func (b *Block) Append(i *Instr) *Instr {
	i.Block = b
	b.Instrs = append(b.Instrs, i)
	return i
}

// newValue allocates an SSA value for v.
func (p *Proc) newValue(v *Var, kind DefKind, def *Instr) *Value {
	val := &Value{ID: p.nextValID, Var: v, Kind: kind, Def: def, CalleeFormal: -1}
	p.nextValID++
	return val
}
