package ir

import "testing"

// buildDiamond constructs:
//
//	b0 → b1, b2 ; b1 → b3 ; b2 → b3
func buildDiamond() (*Proc, []*Block) {
	p := &Proc{Name: "T"}
	b0, b1, b2, b3 := p.NewBlock(), p.NewBlock(), p.NewBlock(), p.NewBlock()
	p.Entry = b0
	AddEdge(b0, b1)
	AddEdge(b0, b2)
	AddEdge(b1, b3)
	AddEdge(b2, b3)
	return p, []*Block{b0, b1, b2, b3}
}

func TestDominatorsDiamond(t *testing.T) {
	p, b := buildDiamond()
	p.ComputeDominators()
	if b[1].Idom != b[0] || b[2].Idom != b[0] || b[3].Idom != b[0] {
		t.Fatalf("idoms: %v %v %v", b[1].Idom, b[2].Idom, b[3].Idom)
	}
	if !Dominates(b[0], b[3]) || Dominates(b[1], b[3]) {
		t.Fatal("Dominates wrong on diamond")
	}
	// DF(b1) = DF(b2) = {b3}; DF(b0) = {}.
	if len(b[1].DomFront) != 1 || b[1].DomFront[0] != b[3] {
		t.Fatalf("DF(b1) = %v", b[1].DomFront)
	}
	if len(b[0].DomFront) != 0 {
		t.Fatalf("DF(b0) = %v", b[0].DomFront)
	}
}

func TestDominatorsLoop(t *testing.T) {
	// b0 → b1(header) → b2(body) → b1 ; b1 → b3(exit)
	p := &Proc{Name: "L"}
	b0, b1, b2, b3 := p.NewBlock(), p.NewBlock(), p.NewBlock(), p.NewBlock()
	p.Entry = b0
	AddEdge(b0, b1)
	AddEdge(b1, b2)
	AddEdge(b1, b3)
	AddEdge(b2, b1)
	p.ComputeDominators()
	if b1.Idom != b0 || b2.Idom != b1 || b3.Idom != b1 {
		t.Fatalf("idoms: %v %v %v", b1.Idom, b2.Idom, b3.Idom)
	}
	// The loop header is in the dominance frontier of its own body and
	// of itself (back edge).
	if !containsBlock(b2.DomFront, b1) {
		t.Fatalf("DF(body) = %v, want to contain header", b2.DomFront)
	}
	if !containsBlock(b1.DomFront, b1) {
		t.Fatalf("DF(header) = %v, want self (back edge)", b1.DomFront)
	}
}

func TestDominatorsIrreducible(t *testing.T) {
	// b0 → b1, b2 ; b1 → b2 ; b2 → b1 ; b1 → b3
	p := &Proc{Name: "I"}
	b0, b1, b2, b3 := p.NewBlock(), p.NewBlock(), p.NewBlock(), p.NewBlock()
	p.Entry = b0
	AddEdge(b0, b1)
	AddEdge(b0, b2)
	AddEdge(b1, b2)
	AddEdge(b2, b1)
	AddEdge(b1, b3)
	p.ComputeDominators()
	// In an irreducible region both b1 and b2 are dominated only by b0.
	if b1.Idom != b0 || b2.Idom != b0 {
		t.Fatalf("idoms: %v %v", b1.Idom, b2.Idom)
	}
	if b3.Idom != b1 {
		t.Fatalf("idom(b3) = %v", b3.Idom)
	}
}

func TestRPOUnreachable(t *testing.T) {
	p := &Proc{Name: "U"}
	b0 := p.NewBlock()
	b1 := p.NewBlock() // unreachable
	p.Entry = b0
	rpo := p.ComputeRPO()
	if len(rpo) != 1 || rpo[0] != b0 {
		t.Fatalf("rpo: %v", rpo)
	}
	if b1.RPO != -1 {
		t.Fatalf("unreachable block has RPO %d", b1.RPO)
	}
}

func TestRemoveUnreachable(t *testing.T) {
	p := &Proc{Name: "R"}
	b0, b1, b2 := p.NewBlock(), p.NewBlock(), p.NewBlock()
	p.Entry = b0
	AddEdge(b0, b1)
	AddEdge(b2, b1) // b2 unreachable but an edge into live b1
	p.RemoveUnreachable()
	if len(p.Blocks) != 2 {
		t.Fatalf("blocks: %d", len(p.Blocks))
	}
	if len(b1.Preds) != 1 || b1.Preds[0] != b0 {
		t.Fatalf("b1 preds: %v", b1.Preds)
	}
}

func TestRPOOrderIsTopologicalForAcyclic(t *testing.T) {
	p, b := buildDiamond()
	rpo := p.ComputeRPO()
	pos := make(map[*Block]int)
	for i, blk := range rpo {
		pos[blk] = i
	}
	for _, blk := range b {
		for _, s := range blk.Succs {
			if pos[s] <= pos[blk] {
				t.Fatalf("RPO not topological: %v before %v", s, blk)
			}
		}
	}
}
