package ir

// ComputeRPO numbers the blocks reachable from the entry in reverse
// postorder and returns them in that order. Unreachable blocks get
// RPO = -1 and are excluded from the result.
func (p *Proc) ComputeRPO() []*Block {
	for _, b := range p.Blocks {
		b.RPO = -1
	}
	var post []*Block
	visited := make([]bool, len(p.Blocks))
	// Iterative DFS with an explicit stack to bound recursion depth.
	type frame struct {
		b    *Block
		next int
	}
	stack := []frame{{b: p.Entry}}
	visited[p.Entry.ID] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.b.Succs) {
			s := f.b.Succs[f.next]
			f.next++
			if !visited[s.ID] {
				visited[s.ID] = true
				stack = append(stack, frame{b: s})
			}
			continue
		}
		post = append(post, f.b)
		stack = stack[:len(stack)-1]
	}
	rpo := make([]*Block, len(post))
	for i, b := range post {
		n := len(post) - 1 - i
		b.RPO = n
		rpo[n] = b
	}
	return rpo
}

// ComputeDominators fills in the immediate-dominator tree and dominance
// frontiers for all blocks reachable from the entry, using the
// Cooper–Harvey–Kennedy iterative algorithm. It returns the blocks in
// reverse postorder.
func (p *Proc) ComputeDominators() []*Block {
	rpo := p.ComputeRPO()
	for _, b := range p.Blocks {
		b.Idom = nil
		b.DomChild = nil
		b.DomFront = nil
	}
	if len(rpo) == 0 {
		return rpo
	}
	entry := rpo[0]
	entry.Idom = entry

	intersect := func(b1, b2 *Block) *Block {
		for b1 != b2 {
			for b1.RPO > b2.RPO {
				b1 = b1.Idom
			}
			for b2.RPO > b1.RPO {
				b2 = b2.Idom
			}
		}
		return b1
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom *Block
			for _, pred := range b.Preds {
				if pred.RPO < 0 || pred.Idom == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = pred
				} else {
					newIdom = intersect(pred, newIdom)
				}
			}
			if newIdom != nil && b.Idom != newIdom {
				b.Idom = newIdom
				changed = true
			}
		}
	}

	// Entry's Idom is conventionally nil for tree walks; record children.
	entry.Idom = nil
	for _, b := range rpo[1:] {
		if b.Idom != nil {
			b.Idom.DomChild = append(b.Idom.DomChild, b)
		}
	}

	// Dominance frontiers (Cooper–Harvey–Kennedy): for each join point,
	// walk up from each predecessor to the immediate dominator.
	for _, b := range rpo {
		if len(b.Preds) < 2 {
			continue
		}
		for _, pred := range b.Preds {
			if pred.RPO < 0 {
				continue
			}
			runner := pred
			for runner != nil && runner != b.Idom {
				if !containsBlock(runner.DomFront, b) {
					runner.DomFront = append(runner.DomFront, b)
				}
				runner = runner.Idom
			}
		}
	}
	return rpo
}

func containsBlock(list []*Block, b *Block) bool {
	for _, x := range list {
		if x == b {
			return true
		}
	}
	return false
}

// Dominates reports whether a dominates b (reflexively). Valid only
// after ComputeDominators.
func Dominates(a, b *Block) bool {
	for b != nil {
		if a == b {
			return true
		}
		b = b.Idom
	}
	return false
}
