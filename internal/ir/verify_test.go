package ir

import (
	"strings"
	"testing"
)

func TestVerifyAcceptsWellFormed(t *testing.T) {
	p, _, _ := buildCounterProc()
	if err := p.Verify(); err != nil {
		t.Fatalf("pre-SSA: %v", err)
	}
	p.BuildSSA(WorstCase)
	if err := p.Verify(); err != nil {
		t.Fatalf("post-SSA: %v", err)
	}
}

func expectVerifyError(t *testing.T, p *Proc, want string) {
	t.Helper()
	err := p.Verify()
	if err == nil {
		t.Fatalf("expected error containing %q, got nil", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not contain %q", err, want)
	}
}

func TestVerifyCatchesAsymmetricEdges(t *testing.T) {
	p, _, _ := buildCounterProc()
	// Drop one pred entry without touching succs.
	b1 := p.Blocks[1]
	b1.Preds = b1.Preds[:1]
	expectVerifyError(t, p, "asymmetric")
}

func TestVerifyCatchesMidBlockTerminator(t *testing.T) {
	p, _, _ := buildCounterProc()
	b0 := p.Blocks[0]
	// Insert a jump before the real terminator.
	b0.Instrs = append([]*Instr{{Op: OpJmp, Block: b0}}, b0.Instrs...)
	expectVerifyError(t, p, "mid-block")
}

func TestVerifyCatchesBranchArity(t *testing.T) {
	p, _, _ := buildCounterProc()
	b1 := p.Blocks[1]
	b1.Succs = b1.Succs[:1] // branch with one successor
	// Also fix the other side to keep symmetry and isolate the arity check.
	p.Blocks[3].Preds = nil
	expectVerifyError(t, p, "has 1 successors")
}

func TestVerifyCatchesMissingEntry(t *testing.T) {
	p := &Proc{Name: "X"}
	expectVerifyError(t, p, "no entry")
}

func TestVerifyCatchesPhiAfterNonPhi(t *testing.T) {
	p, _, i := buildCounterProc()
	p.BuildSSA(WorstCase)
	b1 := p.Blocks[1]
	// Move the phi after the compare.
	if b1.Instrs[0].Op != OpPhi {
		t.Fatal("expected phi at head")
	}
	b1.Instrs[0], b1.Instrs[1] = b1.Instrs[1], b1.Instrs[0]
	_ = i
	expectVerifyError(t, p, "phi after non-phi")
}

func TestVerifyCatchesUndefinedValue(t *testing.T) {
	p, _, _ := buildCounterProc()
	p.BuildSSA(WorstCase)
	// Fabricate a use of a value from nowhere.
	rogue := &Value{ID: 999, Var: p.Vars[0]}
	b3 := p.Blocks[3]
	b3.Instrs[0].Args[0].Val = rogue
	expectVerifyError(t, p, "undefined value")
}

func TestVerifyCatchesEmptyOperand(t *testing.T) {
	p, _, _ := buildCounterProc()
	b0 := p.Blocks[0]
	b0.Instrs[0].Args[0] = Operand{}
	expectVerifyError(t, p, "empty operand")
}

func TestVerifyCatchesCallWithoutCallee(t *testing.T) {
	prog := NewProgram()
	p := &Proc{Name: "C", Kind: SubProc}
	prog.AddProc(p)
	b := p.NewBlock()
	p.Entry = b
	b.Append(&Instr{Op: OpCall, NumActuals: 0})
	b.Append(&Instr{Op: OpRet})
	expectVerifyError(t, p, "without callee")
}
