package ir

// RemoveUnreachable prunes blocks not reachable from the entry and
// removes them from the predecessor lists of surviving blocks. It must
// run before BuildSSA so that every phi operand slot corresponds to a
// live edge.
func (p *Proc) RemoveUnreachable() {
	p.ComputeRPO()
	var live []*Block
	for _, b := range p.Blocks {
		if b.RPO < 0 {
			continue
		}
		live = append(live, b)
		var preds []*Block
		for _, pr := range b.Preds {
			if pr.RPO >= 0 {
				preds = append(preds, pr)
			}
		}
		b.Preds = preds
	}
	for i, b := range live {
		b.ID = i
	}
	p.Blocks = live
}

// MergeTrivialJumps collapses straight-line block chains: whenever a
// block ends in an unconditional jump to a block whose only predecessor
// it is, the two merge. Dead-code elimination calls this after pruning
// so the cleaned procedure reads like freshly lowered code. The receiver
// must be in pre-SSA form (no phis).
func (p *Proc) MergeTrivialJumps() {
	changed := true
	for changed {
		changed = false
		for _, b := range p.Blocks {
			t := b.Terminator()
			if t == nil || t.Op != OpJmp {
				continue
			}
			c := b.Succs[0]
			if c == b || len(c.Preds) != 1 {
				continue
			}
			// Splice c into b.
			b.Instrs = b.Instrs[:len(b.Instrs)-1] // drop the jump
			for _, i := range c.Instrs {
				i.Block = b
				b.Instrs = append(b.Instrs, i)
			}
			b.Succs = c.Succs
			for _, s := range c.Succs {
				for pi, pr := range s.Preds {
					if pr == c {
						s.Preds[pi] = b
					}
				}
			}
			c.Succs = nil
			c.Preds = nil
			c.Instrs = nil
			changed = true
		}
		if changed {
			p.RemoveUnreachable()
		}
	}
}

// RewriteFunc maps an operand during cloning; it receives the original
// instruction and the operand (with SSA values intact) and returns the
// operand to place in the clone. The default keeps the operand as a
// pre-SSA use.
type RewriteFunc func(instr *Instr, argIndex int, op Operand) Operand

// CloneStripSSA produces a fresh pre-SSA copy of the procedure suitable
// for re-analysis: phi instructions vanish (the named variables carry
// the merges, exactly as before SSA construction), SSA values and call
// definitions are dropped, and each operand is passed through rewrite
// (when non-nil) so callers can substitute constants.
//
// keepInstr (when non-nil) filters instructions: returning false drops
// the instruction. Terminators are always kept. Dead-code elimination
// uses both hooks.
func (p *Proc) CloneStripSSA(rewrite RewriteFunc, keepInstr func(*Instr) bool) *Proc {
	np := &Proc{
		Name:     p.Name,
		Kind:     p.Kind,
		Prog:     p.Prog,
		SrcLines: p.SrcLines,
	}
	varMap := make(map[*Var]*Var, len(p.Vars))
	for _, v := range p.Vars {
		nv := &Var{ID: v.ID, Name: v.Name, Kind: v.Kind, Type: v.Type, Index: v.Index, Global: v.Global, Size: v.Size, Dims: v.Dims}
		np.Vars = append(np.Vars, nv)
		varMap[v] = nv
	}
	mapVar := func(v *Var) *Var {
		if v == nil {
			return nil
		}
		return varMap[v]
	}
	for _, f := range p.Formals {
		np.Formals = append(np.Formals, varMap[f])
	}
	np.Result = mapVar(p.Result)
	for _, g := range p.GlobalVars {
		np.GlobalVars = append(np.GlobalVars, varMap[g])
	}
	for _, r := range p.RetVars {
		np.RetVars = append(np.RetVars, varMap[r])
	}

	blockMap := make(map[*Block]*Block, len(p.Blocks))
	for _, b := range p.Blocks {
		nb := np.NewBlock()
		blockMap[b] = nb
	}
	np.Entry = blockMap[p.Entry]

	for _, b := range p.Blocks {
		nb := blockMap[b]
		for _, s := range b.Succs {
			nb.Succs = append(nb.Succs, blockMap[s])
		}
		for _, pr := range b.Preds {
			nb.Preds = append(nb.Preds, blockMap[pr])
		}
		for _, i := range b.Instrs {
			if i.Op == OpPhi {
				continue // named variables carry the merge
			}
			if keepInstr != nil && !i.Op.IsTerminator() && !keepInstr(i) {
				continue
			}
			ni := &Instr{
				ID:         i.ID,
				Op:         i.Op,
				Pos:        i.Pos,
				Role:       i.Role,
				Var:        mapVar(i.Var),
				Callee:     i.Callee,
				NumActuals: i.NumActuals,
			}
			ni.Args = make([]Operand, len(i.Args))
			for a := range i.Args {
				op := i.Args[a]
				if rewrite != nil {
					op = rewrite(i, a, op)
				}
				op.Val = nil
				op.Var = mapVar(op.Var)
				ni.Args[a] = op
			}
			nb.Append(ni)
		}
	}
	return np
}

// CloneProgram clones every procedure of a program into a fresh pre-SSA
// program. rewrite and keepInstr are consulted per procedure (keyed by
// the original *Proc) and may be nil.
func CloneProgram(p *Program, rewrite func(*Proc) RewriteFunc, keepInstr func(*Proc) func(*Instr) bool) *Program {
	np := NewProgram()
	np.Globals = p.Globals
	np.ScalarGlobals = p.ScalarGlobals
	for _, proc := range p.Procs {
		var rw RewriteFunc
		if rewrite != nil {
			rw = rewrite(proc)
		}
		var keep func(*Instr) bool
		if keepInstr != nil {
			keep = keepInstr(proc)
		}
		nproc := proc.CloneStripSSA(rw, keep)
		np.AddProc(nproc)
	}
	// Callee pointers still reference the old program; repoint them.
	for _, proc := range np.Procs {
		for _, b := range proc.Blocks {
			for _, i := range b.Instrs {
				if i.Op == OpCall {
					i.Callee = np.ProcByName[i.Callee.Name]
				}
			}
		}
	}
	return np
}
