package ir

import (
	"math/rand"
	"testing"
)

// slowDominators computes dominator sets by the classic iterative
// bitvector dataflow (the textbook reference implementation), used to
// cross-check the Cooper–Harvey–Kennedy idom computation.
func slowDominators(p *Proc, rpo []*Block) map[*Block]map[*Block]bool {
	dom := make(map[*Block]map[*Block]bool, len(rpo))
	all := make(map[*Block]bool, len(rpo))
	for _, b := range rpo {
		all[b] = true
	}
	for _, b := range rpo {
		if b == p.Entry {
			dom[b] = map[*Block]bool{b: true}
			continue
		}
		cp := make(map[*Block]bool, len(all))
		for k := range all {
			cp[k] = true
		}
		dom[b] = cp
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == p.Entry {
				continue
			}
			// dom(b) = {b} ∪ ⋂ dom(pred)
			var acc map[*Block]bool
			for _, pr := range b.Preds {
				if pr.RPO < 0 {
					continue
				}
				if acc == nil {
					acc = make(map[*Block]bool, len(dom[pr]))
					for k := range dom[pr] {
						acc[k] = true
					}
					continue
				}
				for k := range acc {
					if !dom[pr][k] {
						delete(acc, k)
					}
				}
			}
			if acc == nil {
				acc = make(map[*Block]bool)
			}
			acc[b] = true
			if len(acc) != len(dom[b]) {
				dom[b] = acc
				changed = true
				continue
			}
			for k := range acc {
				if !dom[b][k] {
					dom[b] = acc
					changed = true
					break
				}
			}
		}
	}
	return dom
}

// randomCFG builds a random control-flow graph: n body blocks, each
// ending in a jump or branch to random body targets (possibly
// backwards: loops and irreducible regions arise naturally). The entry
// block itself is never a branch target — the invariant every
// program-derived procedure satisfies (lowering always starts labeled
// code in a fresh block) and that the ≥2-predecessor optimization in
// the dominance-frontier computation relies on.
func randomCFG(r *rand.Rand, n int) *Proc {
	p := &Proc{Name: "R"}
	entry := p.NewBlock()
	p.Entry = entry
	for i := 0; i < n; i++ {
		p.NewBlock()
	}
	cond := p.NewVar("C", LocalVar, Bool)
	entry.Append(&Instr{Op: OpJmp})
	AddEdge(entry, p.Blocks[1])
	body := func() *Block { return p.Blocks[1+r.Intn(n)] }
	for _, b := range p.Blocks[1:] {
		switch r.Intn(4) {
		case 0, 1: // jump
			b.Append(&Instr{Op: OpJmp})
			AddEdge(b, body())
		case 2: // branch
			b.Append(&Instr{Op: OpBr, Args: []Operand{VarOperand(cond)}})
			AddEdge(b, body())
			AddEdge(b, body())
		default: // return
			b.Append(&Instr{Op: OpRet})
		}
	}
	p.RemoveUnreachable()
	return p
}

// TestDominatorsMatchReference cross-checks CHK against the iterative
// bitvector reference on 200 random CFGs (including loops and
// irreducible regions).
func TestDominatorsMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		p := randomCFG(r, 2+r.Intn(12))
		rpo := p.ComputeDominators()
		ref := slowDominators(p, rpo)

		for _, b := range rpo {
			if b == p.Entry {
				if b.Idom != nil {
					t.Fatalf("trial %d: entry has idom %v", trial, b.Idom)
				}
				continue
			}
			// The idom must be a strict dominator...
			if b.Idom == nil {
				t.Fatalf("trial %d: %v has no idom", trial, b)
			}
			if !ref[b][b.Idom] {
				t.Fatalf("trial %d: idom(%v)=%v is not a dominator (ref %v)",
					trial, b, b.Idom, ref[b])
			}
			// ...and every other strict dominator must dominate the idom
			// (idom = the closest strict dominator).
			for d := range ref[b] {
				if d == b || d == b.Idom {
					continue
				}
				if !ref[b.Idom][d] {
					t.Fatalf("trial %d: %v strictly dominates %v but not its idom %v",
						trial, d, b, b.Idom)
				}
			}
			// Dominates() must agree with the reference set.
			for _, a := range rpo {
				if Dominates(a, b) != ref[b][a] {
					t.Fatalf("trial %d: Dominates(%v,%v)=%v, ref=%v",
						trial, a, b, Dominates(a, b), ref[b][a])
				}
			}
		}

		// Dominance frontier definition check: w ∈ DF(b) iff b dominates
		// a predecessor of w but does not strictly dominate w.
		inDF := func(b, w *Block) bool {
			for _, x := range b.DomFront {
				if x == w {
					return true
				}
			}
			return false
		}
		for _, b := range rpo {
			for _, w := range rpo {
				want := false
				for _, pr := range w.Preds {
					if pr.RPO < 0 {
						continue
					}
					if ref[pr][b] && !(ref[w][b] && b != w) {
						want = true
					}
				}
				if inDF(b, w) != want {
					t.Fatalf("trial %d: DF(%v) contains %v = %v, want %v",
						trial, b, w, inDF(b, w), want)
				}
			}
		}
	}
}
