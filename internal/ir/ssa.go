package ir

import "sort"

// ModOracle answers, during SSA construction, whether a call may modify
// a by-reference binding. The real oracle is backed by interprocedural
// MOD summaries; the worst-case oracle (paper §4.2, Table 3 column 1)
// says yes to everything, forcing the value-numbering pass to make
// worst-case assumptions at every call site.
type ModOracle interface {
	// ModifiesFormal reports whether callee may modify its idx-th formal.
	ModifiesFormal(callee *Proc, idx int) bool
	// ModifiesGlobal reports whether a call to callee may modify g.
	ModifiesGlobal(callee *Proc, g *GlobalVar) bool
}

// WorstCase is the ModOracle that assumes every call clobbers every
// by-reference binding and every global.
var WorstCase ModOracle = worstCase{}

type worstCase struct{}

func (worstCase) ModifiesFormal(*Proc, int) bool        { return true }
func (worstCase) ModifiesGlobal(*Proc, *GlobalVar) bool { return true }

// BuildSSA converts the procedure into SSA form in place: it computes
// dominators, inserts phi instructions for the tracked variables, and
// renames every use and definition. Call instructions get CallDef values
// for each binding the oracle says the callee may modify.
//
// BuildSSA must be called exactly once per procedure instance; to
// reanalyze under a different oracle, rebuild the IR (see
// irbuild.Build).
func (p *Proc) BuildSSA(oracle ModOracle) {
	if p.ssaBuilt {
		panic("ir: BuildSSA called twice on " + p.Name)
	}
	p.ssaBuilt = true
	rpo := p.ComputeDominators()

	// --- Phi placement -----------------------------------------------------
	// Every tracked variable is implicitly defined at entry (EntryDef or
	// UndefDef), plus at each real definition site.
	defBlocks := make(map[*Var]map[*Block]bool)
	addDef := func(v *Var, b *Block) {
		if !v.Tracked() {
			return
		}
		m := defBlocks[v]
		if m == nil {
			m = make(map[*Block]bool)
			defBlocks[v] = m
		}
		m[b] = true
	}
	for _, v := range p.Vars {
		addDef(v, p.Entry)
	}
	for _, b := range rpo {
		for _, i := range b.Instrs {
			if i.Op.DefinesScalar() && i.Var != nil {
				addDef(i.Var, b)
			}
			if i.Op == OpCall {
				p.addCallDefSites(i, oracle, addDef, b)
			}
		}
	}

	for v, sites := range defBlocks {
		p.placePhis(v, sites)
	}

	// --- Renaming -----------------------------------------------------------
	r := &renamer{
		proc:   p,
		oracle: oracle,
		stacks: make(map[*Var][]*Value),
		undefs: make(map[*Var]*Value),
	}
	p.EntryValues = make(map[*Var]*Value)
	for _, v := range p.Vars {
		if !v.Tracked() {
			continue
		}
		kind := UndefDef
		if v.Kind == FormalVar || v.Kind == GlobalRefVar {
			kind = EntryDef
		}
		val := p.newValue(v, kind, nil)
		p.EntryValues[v] = val
		r.stacks[v] = []*Value{val}
	}
	r.renameBlock(p.Entry)
}

// addCallDefSites registers the definition sites a call contributes: one
// per bare scalar-variable actual whose formal the callee may modify,
// and one per scalar global the callee may modify.
func (p *Proc) addCallDefSites(call *Instr, oracle ModOracle, addDef func(*Var, *Block), b *Block) {
	callee := call.Callee
	for i := 0; i < call.NumActuals; i++ {
		v := callByRefActual(call, i)
		if v == nil || !v.Tracked() {
			continue
		}
		if oracle.ModifiesFormal(callee, i) {
			addDef(v, b)
		}
	}
	for k, gv := range p.GlobalVars {
		if oracle.ModifiesGlobal(callee, p.Prog.ScalarGlobals[k]) {
			addDef(gv, b)
		}
	}
}

// callByRefActual returns the bare scalar variable passed at actual
// position i of the call (the by-reference bindings a callee can write
// through), or nil when the actual is a constant, a temporary holding an
// expression value, or an array.
func callByRefActual(call *Instr, i int) *Var {
	op := call.Args[i]
	if op.Const != nil || op.Var == nil {
		return nil
	}
	v := op.Var
	if v.Type.IsArray() || v.Kind == TempVar {
		return nil
	}
	// The callee's formal must itself be scalar for the binding to be a
	// scalar write-through.
	if call.Callee != nil && i < len(call.Callee.Formals) && call.Callee.Formals[i].Type.IsArray() {
		return nil
	}
	return v
}

// placePhis inserts phi instructions for v on the iterated dominance
// frontier of its definition sites.
func (p *Proc) placePhis(v *Var, sites map[*Block]bool) {
	hasPhi := make(map[*Block]bool)
	work := make([]*Block, 0, len(sites))
	for b := range sites {
		work = append(work, b)
	}
	// The worklist order decides phi insertion order; sort it so SSA
	// construction is deterministic run to run.
	sort.Slice(work, func(i, j int) bool { return work[i].ID < work[j].ID })
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, df := range b.DomFront {
			if hasPhi[df] {
				continue
			}
			hasPhi[df] = true
			phi := &Instr{
				Op:   OpPhi,
				Var:  v,
				Args: make([]Operand, len(df.Preds)),
			}
			for j := range phi.Args {
				phi.Args[j] = VarOperand(v)
			}
			phi.Block = df
			df.Instrs = append([]*Instr{phi}, df.Instrs...)
			if !sites[df] {
				sites[df] = true
				work = append(work, df)
			}
		}
	}
}

type renamer struct {
	proc   *Proc
	oracle ModOracle
	stacks map[*Var][]*Value
	undefs map[*Var]*Value
}

func (r *renamer) top(v *Var) *Value {
	if s := r.stacks[v]; len(s) > 0 {
		return s[len(s)-1]
	}
	// Temps are defined before use within dominating code; an empty
	// stack can only mean an untracked variable read before any write,
	// which lowering never produces, or a tracked local (already seeded
	// with UndefDef). Keep a defensive shared undef.
	u := r.undefs[v]
	if u == nil {
		u = r.proc.newValue(v, UndefDef, nil)
		r.undefs[v] = u
	}
	return u
}

func (r *renamer) push(v *Var, val *Value) int {
	r.stacks[v] = append(r.stacks[v], val)
	return 1
}

func (r *renamer) renameBlock(b *Block) {
	var pushed []*Var

	for _, i := range b.Instrs {
		// Phi definitions first; their arguments are filled from
		// predecessors.
		if i.Op == OpPhi {
			val := r.proc.newValue(i.Var, InstrDef, i)
			i.Dst = val
			pushed = append(pushed, i.Var)
			r.push(i.Var, val)
			continue
		}

		// Rewrite uses.
		for a := range i.Args {
			op := &i.Args[a]
			if op.Const != nil || op.Var == nil || op.Var.Type.IsArray() {
				continue
			}
			val := r.top(op.Var)
			op.Val = val
			val.Uses = append(val.Uses, i)
		}

		// Definitions.
		switch {
		case i.Op == OpCall:
			r.renameCall(i, &pushed)
		case i.Op.DefinesScalar() && i.Var != nil:
			val := r.proc.newValue(i.Var, InstrDef, i)
			i.Dst = val
			pushed = append(pushed, i.Var)
			r.push(i.Var, val)
		}
	}

	// Fill phi arguments of successors. A successor may list b as a
	// predecessor more than once (a conditional branch whose arms meet
	// immediately), so fill every matching slot; process each distinct
	// successor once.
	for si, s := range b.Succs {
		if containsBlockBefore(b.Succs, si, s) {
			continue
		}
		for j, pb := range s.Preds {
			if pb != b {
				continue
			}
			for _, i := range s.Instrs {
				if i.Op != OpPhi {
					break
				}
				val := r.top(i.Var)
				i.Args[j].Val = val
				val.Uses = append(val.Uses, i)
			}
		}
	}

	for _, child := range b.DomChild {
		r.renameBlock(child)
	}

	for _, v := range pushed {
		s := r.stacks[v]
		r.stacks[v] = s[:len(s)-1]
	}
}

// renameCall creates the call's definitions: the function result and the
// CallDef values for modified by-reference bindings.
func (r *renamer) renameCall(i *Instr, pushed *[]*Var) {
	p := r.proc
	if i.Var != nil { // function result temp
		val := p.newValue(i.Var, InstrDef, i)
		i.Dst = val
		*pushed = append(*pushed, i.Var)
		r.push(i.Var, val)
	}
	i.CallDefs = make([]*Value, i.NumActuals+len(p.GlobalVars))
	for a := 0; a < i.NumActuals; a++ {
		v := callByRefActual(i, a)
		if v == nil || !v.Tracked() {
			continue
		}
		if !r.oracle.ModifiesFormal(i.Callee, a) {
			continue
		}
		val := p.newValue(v, CallDef, i)
		val.CalleeFormal = a
		i.CallDefs[a] = val
		*pushed = append(*pushed, v)
		r.push(v, val)
	}
	for k, gv := range p.GlobalVars {
		g := p.Prog.ScalarGlobals[k]
		if !r.oracle.ModifiesGlobal(i.Callee, g) {
			continue
		}
		val := p.newValue(gv, CallDef, i)
		val.CalleeGlobal = g
		i.CallDefs[i.NumActuals+k] = val
		*pushed = append(*pushed, gv)
		r.push(gv, val)
	}
}

// containsBlockBefore reports whether list[:i] already contains b.
func containsBlockBefore(list []*Block, i int, b *Block) bool {
	for _, x := range list[:i] {
		if x == b {
			return true
		}
	}
	return false
}
