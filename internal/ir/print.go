package ir

import (
	"fmt"
	"strings"
)

// String renders the procedure's IR for debugging and golden tests.
func (p *Proc) String() string {
	var sb strings.Builder
	kind := map[ProcKind]string{MainProc: "program", SubProc: "subroutine", FuncProc: "function"}[p.Kind]
	formals := make([]string, len(p.Formals))
	for i, f := range p.Formals {
		formals[i] = fmt.Sprintf("%s %s", f.Type, f.Name)
	}
	fmt.Fprintf(&sb, "%s %s(%s)\n", kind, p.Name, strings.Join(formals, ", "))
	for _, b := range p.Blocks {
		fmt.Fprintf(&sb, "%s:", b)
		if len(b.Preds) > 0 {
			preds := make([]string, len(b.Preds))
			for i, pr := range b.Preds {
				preds[i] = pr.String()
			}
			fmt.Fprintf(&sb, " ; preds %s", strings.Join(preds, " "))
		}
		sb.WriteByte('\n')
		for _, i := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", i)
		}
	}
	return sb.String()
}

// String renders one instruction.
func (i *Instr) String() string {
	args := make([]string, len(i.Args))
	for a := range i.Args {
		args[a] = i.Args[a].String()
	}
	argList := strings.Join(args, ", ")

	dst := ""
	switch {
	case i.Dst != nil:
		dst = i.Dst.String() + " = "
	case i.Var != nil && i.Op != OpAStore:
		dst = i.Var.Name + " = "
	}

	switch i.Op {
	case OpALoad:
		// Args[0] is the array; the rest are subscripts.
		return fmt.Sprintf("%s%s(%s)", dst, args[0], strings.Join(args[1:], ", "))
	case OpAStore:
		return fmt.Sprintf("%s(%s) = %s", i.Var.Name, strings.Join(args[1:], ", "), args[0])
	case OpCall:
		actuals := strings.Join(args[:i.NumActuals], ", ")
		s := fmt.Sprintf("%scall %s(%s)", dst, i.Callee.Name, actuals)
		var defs []string
		for _, d := range i.CallDefs {
			if d != nil {
				defs = append(defs, d.String())
			}
		}
		if len(defs) > 0 {
			s += " ; defs " + strings.Join(defs, ", ")
		}
		return s
	case OpBr:
		return fmt.Sprintf("br %s, %s, %s", args[0], i.Block.Succs[0], i.Block.Succs[1])
	case OpJmp:
		return fmt.Sprintf("jmp %s", i.Block.Succs[0])
	case OpRet:
		return fmt.Sprintf("ret [%s]", argList)
	case OpStop:
		return "stop"
	case OpPhi:
		return fmt.Sprintf("%sphi(%s)", dst, argList)
	}
	return fmt.Sprintf("%s%s %s", dst, i.Op, argList)
}
