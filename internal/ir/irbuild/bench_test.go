package irbuild

import (
	"testing"

	"ipcp/internal/analysis/callgraph"
	"ipcp/internal/analysis/modref"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
	"ipcp/internal/suite"
)

func benchProgram(b *testing.B) *sema.Program {
	b.Helper()
	f, err := parser.Parse(suite.Generate("snasa7", 4).Source)
	if err != nil {
		b.Fatal(err)
	}
	sp, err := sema.Analyze(f)
	if err != nil {
		b.Fatal(err)
	}
	return sp
}

// BenchmarkLower measures AST → IR lowering.
func BenchmarkLower(b *testing.B) {
	sp := benchProgram(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Build(sp)
	}
}

// BenchmarkBuildSSA measures dominators + phi placement + renaming over
// a freshly lowered program.
func BenchmarkBuildSSA(b *testing.B) {
	sp := benchProgram(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		prog := Build(sp)
		cg := callgraph.Build(prog)
		mods := modref.Compute(prog, cg)
		b.StartTimer()
		for _, proc := range prog.Procs {
			proc.BuildSSA(mods.Oracle())
		}
	}
}

// BenchmarkModRef measures the interprocedural MOD/REF summaries.
func BenchmarkModRef(b *testing.B) {
	sp := benchProgram(b)
	prog := Build(sp)
	cg := callgraph.Build(prog)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		modref.Compute(prog, cg)
	}
}
