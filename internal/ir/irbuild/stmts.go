package irbuild

import (
	"ipcp/internal/ir"
	"ipcp/internal/mf/ast"
)

func (b *builder) lowerStmts(list []ast.Stmt) {
	for _, s := range list {
		b.lowerStmt(s)
	}
}

func (b *builder) lowerStmt(s ast.Stmt) {
	// A labeled statement starts a new block so that GOTOs can target it.
	if l := s.Label(); l != 0 {
		blk := b.labelBlock(l)
		b.startBlock(blk)
	}
	switch s := s.(type) {
	case *ast.AssignStmt:
		b.lowerAssign(s)
	case *ast.IfStmt:
		b.lowerIf(s.Cond, s.Then, s.Else, s.Pos())
	case *ast.LogicalIfStmt:
		b.lowerIf(s.Cond, []ast.Stmt{s.Stmt}, nil, s.Pos())
	case *ast.DoStmt:
		b.lowerDo(s)
	case *ast.DoWhileStmt:
		b.lowerDoWhile(s)
	case *ast.GotoStmt:
		target := b.labelBlock(s.Target)
		if b.cur != nil && b.cur.Terminator() == nil {
			b.emit(&ir.Instr{Op: ir.OpJmp, Pos: s.Pos()})
			ir.AddEdge(b.cur, target)
		}
		b.cur = nil
	case *ast.ContinueStmt:
		// No operation; the label (if any) was handled above.
	case *ast.CallStmt:
		b.lowerCallStmt(s)
	case *ast.ReturnStmt:
		if b.cur != nil && b.cur.Terminator() == nil {
			b.emitReturn()
		}
		b.cur = nil
	case *ast.StopStmt:
		if b.cur != nil && b.cur.Terminator() == nil {
			b.emit(&ir.Instr{Op: ir.OpStop, Pos: s.Pos()})
		}
		b.cur = nil
	case *ast.ReadStmt:
		b.lowerRead(s)
	case *ast.WriteStmt:
		b.lowerWrite(s)
	}
}

func (b *builder) lowerAssign(s *ast.AssignStmt) {
	sym := b.sema.RefSym[s.LHS]
	if sym == nil {
		return // semantic error already reported
	}
	v := b.vars[sym]
	if len(s.LHS.Indexes) > 0 {
		// Array element store.
		val, _ := b.genExpr(s.RHS)
		args := make([]ir.Operand, 0, 1+len(s.LHS.Indexes))
		args = append(args, val)
		for _, ix := range s.LHS.Indexes {
			op, _ := b.genExpr(ix)
			args = append(args, op)
		}
		b.emit(&ir.Instr{Op: ir.OpAStore, Var: v, Args: args, Pos: s.Pos()})
		return
	}
	b.genExprInto(v, s.RHS, s.Pos())
}

func (b *builder) lowerIf(cond ast.Expr, then, els []ast.Stmt, pos tokenPos) {
	condOp := b.genRoleExpr(cond, ir.RoleCondition)
	thenB := b.proc.NewBlock()
	joinB := b.proc.NewBlock()
	elseB := joinB
	if len(els) > 0 {
		elseB = b.proc.NewBlock()
	}
	b.emit(&ir.Instr{Op: ir.OpBr, Args: []ir.Operand{condOp}, Pos: pos})
	ir.AddEdge(b.cur, thenB)
	ir.AddEdge(b.cur, elseB)

	b.cur = thenB
	b.lowerStmts(then)
	b.startJoin(joinB)

	if len(els) > 0 {
		b.cur = elseB
		b.lowerStmts(els)
		b.startJoin(joinB)
	}
	b.cur = joinB
}

// startJoin jumps from the (possibly terminated) current block to join.
func (b *builder) startJoin(join *ir.Block) {
	if b.cur != nil && b.cur.Terminator() == nil {
		b.emit(&ir.Instr{Op: ir.OpJmp})
		ir.AddEdge(b.cur, join)
	}
}

// lowerDo lowers a counted DO loop:
//
//	i = lo; hiT = hi; stepT = step
//	header: if i <= hiT goto body else join   (>= for constant negative step)
//	body:   ...
//	latch:  i = i + stepT; goto header
//
// The comparison direction follows the step's compile-time sign; dynamic
// negative steps are analyzed (not executed), so the positive-direction
// test is a sound default for the analyses, which never rely on trip
// counts.
func (b *builder) lowerDo(s *ast.DoStmt) {
	sym := b.unit.Symbols[s.Var]
	iv := b.vars[sym]

	save := b.role
	b.role = ir.RoleLoopBound
	b.genExprInto(iv, s.Lo, s.Pos())

	hiOp, _ := b.genExpr(s.Hi)
	if hiOp.Const == nil {
		// Latch and header re-evaluate the bound; copy it to a temp so
		// body assignments to the bound variable cannot alter the loop
		// (FORTRAN evaluates bounds once).
		t := b.newTemp(ir.Int)
		b.emit(&ir.Instr{Op: ir.OpCopy, Var: t, Args: []ir.Operand{hiOp}, Pos: s.Pos()})
		hiOp = ir.VarOperand(t)
		hiOp.Synthetic = true
	}
	stepOp := ir.ConstOperand(ir.IntConst(1))
	negStep := false
	if s.Step != nil {
		stepOp, _ = b.genExpr(s.Step)
		if stepOp.Const == nil {
			t := b.newTemp(ir.Int)
			b.emit(&ir.Instr{Op: ir.OpCopy, Var: t, Args: []ir.Operand{stepOp}, Pos: s.Pos()})
			stepOp = ir.VarOperand(t)
			stepOp.Synthetic = true
		} else if stepOp.Const.Int < 0 {
			negStep = true
		}
	}

	b.role = save

	header := b.proc.NewBlock()
	body := b.proc.NewBlock()
	join := b.proc.NewBlock()

	b.startBlock(header)
	condT := b.newTemp(ir.Bool)
	cmpOp := ir.OpLe
	if negStep {
		cmpOp = ir.OpGe
	}
	ivUse := ir.VarOperand(iv)
	ivUse.Synthetic = true
	b.emit(&ir.Instr{Op: cmpOp, Var: condT, Args: []ir.Operand{ivUse, hiOp}, Pos: s.Pos()})
	b.emit(&ir.Instr{Op: ir.OpBr, Args: []ir.Operand{ir.VarOperand(condT)}, Pos: s.Pos()})
	ir.AddEdge(b.cur, body)
	ir.AddEdge(b.cur, join)

	b.cur = body
	b.lowerStmts(s.Body)
	// Latch: increment and loop.
	if b.cur != nil && b.cur.Terminator() == nil {
		ivInc := ir.VarOperand(iv)
		ivInc.Synthetic = true
		b.emit(&ir.Instr{Op: ir.OpAdd, Var: iv, Args: []ir.Operand{ivInc, stepOp}, Pos: s.Pos()})
		b.emit(&ir.Instr{Op: ir.OpJmp, Pos: s.Pos()})
		ir.AddEdge(b.cur, header)
	}
	b.cur = join
}

func (b *builder) lowerDoWhile(s *ast.DoWhileStmt) {
	header := b.proc.NewBlock()
	body := b.proc.NewBlock()
	join := b.proc.NewBlock()

	b.startBlock(header)
	condOp := b.genRoleExpr(s.Cond, ir.RoleCondition)
	b.emit(&ir.Instr{Op: ir.OpBr, Args: []ir.Operand{condOp}, Pos: s.Pos()})
	ir.AddEdge(b.cur, body)
	ir.AddEdge(b.cur, join)

	b.cur = body
	b.lowerStmts(s.Body)
	if b.cur != nil && b.cur.Terminator() == nil {
		b.emit(&ir.Instr{Op: ir.OpJmp, Pos: s.Pos()})
		ir.AddEdge(b.cur, header)
	}
	b.cur = join
}

func (b *builder) lowerCallStmt(s *ast.CallStmt) {
	tgt := b.sema.CallTargets[s]
	if tgt == nil || tgt.Unit == nil {
		return // semantic error already reported
	}
	b.genCall(tgt.Unit.Name, s.Args, nil, s.Pos())
}

func (b *builder) lowerRead(s *ast.ReadStmt) {
	for _, t := range s.Targets {
		sym := b.sema.RefSym[t]
		if sym == nil {
			continue
		}
		v := b.vars[sym]
		if len(t.Indexes) > 0 {
			tmp := b.newTemp(v.Type.Elem())
			b.emit(&ir.Instr{Op: ir.OpRead, Var: tmp, Pos: s.Pos()})
			args := []ir.Operand{ir.VarOperand(tmp)}
			for _, ix := range t.Indexes {
				op, _ := b.genExpr(ix)
				args = append(args, op)
			}
			b.emit(&ir.Instr{Op: ir.OpAStore, Var: v, Args: args, Pos: s.Pos()})
			continue
		}
		b.emit(&ir.Instr{Op: ir.OpRead, Var: v, Pos: s.Pos()})
	}
}

func (b *builder) lowerWrite(s *ast.WriteStmt) {
	var args []ir.Operand
	for _, e := range s.Values {
		if _, isStr := e.(*ast.StrLit); isStr {
			continue // strings carry no analyzable value
		}
		op, _ := b.genExpr(e)
		args = append(args, op)
	}
	b.emit(&ir.Instr{Op: ir.OpWrite, Args: args, Pos: s.Pos()})
}

// genRoleExpr lowers an expression with every emitted instruction
// tagged by role (loop bound or condition), for the control-flow
// constant classification.
func (b *builder) genRoleExpr(e ast.Expr, role ir.Role) ir.Operand {
	save := b.role
	b.role = role
	op, _ := b.genExpr(e)
	b.role = save
	return op
}
