package irbuild

import (
	"testing"

	"ipcp/internal/analysis/callgraph"
	"ipcp/internal/analysis/dce"
	"ipcp/internal/analysis/modref"
	"ipcp/internal/analysis/sccp"
	"ipcp/internal/ir"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
	"ipcp/internal/suite"
)

// buildNamed lowers a generated suite or random program.
func buildVerified(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sema.Analyze(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return Build(sp)
}

// Every suite program must verify before SSA, after SSA, and after a
// DCE round — the IR invariants hold through every transformation.
func TestVerifyThroughPipeline(t *testing.T) {
	sources := make(map[string]string)
	for _, name := range suite.Names() {
		sources[name] = suite.Generate(name, 2).Source
	}
	for seed := int64(1); seed <= 10; seed++ {
		p := suite.Random(seed, 5)
		sources[p.Name] = p.Source
	}

	for name, src := range sources {
		prog := buildVerified(t, src)
		if err := ir.VerifyProgram(prog); err != nil {
			t.Fatalf("%s pre-SSA: %v", name, err)
		}
		cg := callgraph.Build(prog)
		mods := modref.Compute(prog, cg)
		for _, proc := range prog.Procs {
			proc.BuildSSA(mods.Oracle())
		}
		if err := ir.VerifyProgram(prog); err != nil {
			t.Fatalf("%s post-SSA: %v", name, err)
		}
		// DCE produces fresh pre-SSA procedures; they must verify and
		// re-SSA cleanly.
		for _, proc := range prog.Procs {
			res := sccp.Run(proc, nil, nil)
			np, _ := dce.Transform(proc, res, &dce.Options{Refs: mods, SweepUseless: true})
			np.Prog = prog
			if err := np.Verify(); err != nil {
				t.Fatalf("%s post-DCE %s: %v", name, proc.Name, err)
			}
		}
	}
}
