package irbuild

import (
	"testing"

	"ipcp/internal/analysis/callgraph"
	"ipcp/internal/analysis/modref"
	"ipcp/internal/ir"
	"ipcp/internal/suite"
)

// TestSSADominanceProperty checks the defining SSA invariant over the
// benchmark suite and a batch of random programs: every use of an SSA
// value is dominated by its definition. For phi uses the definition must
// dominate the corresponding *predecessor* block (the use conceptually
// happens on the incoming edge).
func TestSSADominanceProperty(t *testing.T) {
	var sources []string
	for _, name := range suite.Names() {
		sources = append(sources, suite.Generate(name, 2).Source)
	}
	for seed := int64(1); seed <= 20; seed++ {
		sources = append(sources, suite.Random(seed, 6).Source)
	}

	for si, src := range sources {
		prog := buildVerified(t, src)
		cg := callgraph.Build(prog)
		mods := modref.Compute(prog, cg)
		for _, proc := range prog.Procs {
			proc.BuildSSA(mods.Oracle())
			proc.ComputeDominators()
			checkSSADominance(t, si, proc)
		}
	}
}

func checkSSADominance(t *testing.T, si int, proc *ir.Proc) {
	t.Helper()
	// Definition blocks: instruction defs at their block; entry-ish
	// values (EntryDef/UndefDef) at the entry block.
	defBlock := func(v *ir.Value) *ir.Block {
		if v.Def != nil {
			return v.Def.Block
		}
		return proc.Entry
	}
	for _, b := range proc.Blocks {
		for _, i := range b.Instrs {
			for a := range i.Args {
				val := i.Args[a].Val
				if val == nil {
					continue
				}
				db := defBlock(val)
				useBlock := b
				if i.Op == ir.OpPhi {
					if a >= len(b.Preds) {
						t.Fatalf("program %d: %s: phi arity mismatch", si, proc.Name)
					}
					useBlock = b.Preds[a]
				}
				if !ir.Dominates(db, useBlock) {
					t.Fatalf("program %d: %s: def of %v in %v does not dominate use in %v:\n%s",
						si, proc.Name, val, db, useBlock, proc)
				}
			}
		}
	}
	// Single-definition property: no SSA value is defined twice.
	seen := map[*ir.Value]bool{}
	note := func(v *ir.Value) {
		if v == nil {
			return
		}
		if seen[v] {
			t.Fatalf("program %d: %s: value %v defined twice", si, proc.Name, v)
		}
		seen[v] = true
	}
	for _, b := range proc.Blocks {
		for _, i := range b.Instrs {
			note(i.Dst)
			for _, d := range i.CallDefs {
				note(d)
			}
		}
	}
}
