package irbuild

import (
	"strings"
	"testing"

	"ipcp/internal/ir"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
)

// build parses, analyzes, and lowers src.
func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sema.Analyze(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return Build(sp)
}

// buildSSA additionally converts every procedure to SSA with the given
// oracle.
func buildSSA(t *testing.T, src string, oracle ir.ModOracle) *ir.Program {
	t.Helper()
	p := build(t, src)
	for _, proc := range p.Procs {
		proc.BuildSSA(oracle)
	}
	return p
}

func findProc(t *testing.T, p *ir.Program, name string) *ir.Proc {
	t.Helper()
	proc := p.ProcByName[name]
	if proc == nil {
		t.Fatalf("no proc %s", name)
	}
	return proc
}

// countOps counts instructions with the given opcode in a procedure.
func countOps(p *ir.Proc, op ir.Op) int {
	n := 0
	for _, b := range p.Blocks {
		for _, i := range b.Instrs {
			if i.Op == op {
				n++
			}
		}
	}
	return n
}

func TestLowerStraightLine(t *testing.T) {
	p := build(t, `
PROGRAM P
  INTEGER A, B
  A = 1
  B = A + 2
END
`)
	main := findProc(t, p, "P")
	if len(main.Blocks) != 1 {
		t.Fatalf("blocks: %d\n%s", len(main.Blocks), main)
	}
	if countOps(main, ir.OpCopy) != 1 || countOps(main, ir.OpAdd) != 1 {
		t.Fatalf("ops wrong:\n%s", main)
	}
	term := main.Blocks[0].Terminator()
	if term == nil || term.Op != ir.OpRet {
		t.Fatalf("missing implicit return:\n%s", main)
	}
}

func TestLowerIfCFG(t *testing.T) {
	p := build(t, `
PROGRAM P
  INTEGER A
  A = 0
  IF (A .GT. 0) THEN
    A = 1
  ELSE
    A = 2
  ENDIF
  A = 3
END
`)
	main := findProc(t, p, "P")
	// entry, then, else, join = 4 blocks.
	if len(main.Blocks) != 4 {
		t.Fatalf("blocks: %d\n%s", len(main.Blocks), main)
	}
	entry := main.Entry
	if entry.Terminator().Op != ir.OpBr || len(entry.Succs) != 2 {
		t.Fatalf("entry terminator:\n%s", main)
	}
}

func TestLowerDoLoop(t *testing.T) {
	p := build(t, `
PROGRAM P
  INTEGER I, S, N
  N = 10
  S = 0
  DO I = 1, N
    S = S + I
  ENDDO
END
`)
	main := findProc(t, p, "P")
	// entry, header, body, join.
	if len(main.Blocks) != 4 {
		t.Fatalf("blocks: %d\n%s", len(main.Blocks), main)
	}
	var header *ir.Block
	for _, b := range main.Blocks {
		if len(b.Preds) == 2 { // preheader + latch
			header = b
		}
	}
	if header == nil {
		t.Fatalf("no loop header:\n%s", main)
	}
	if header.Terminator().Op != ir.OpBr {
		t.Fatalf("header should end in branch:\n%s", main)
	}
	if countOps(main, ir.OpLe) != 1 {
		t.Fatalf("positive-step loop should compare with <=:\n%s", main)
	}
}

func TestLowerNegativeConstStep(t *testing.T) {
	p := build(t, `
PROGRAM P
  INTEGER I, S
  DO I = 10, 1, -1
    S = S + I
  ENDDO
END
`)
	main := findProc(t, p, "P")
	if countOps(main, ir.OpGe) != 1 {
		t.Fatalf("negative-step loop should compare with >=:\n%s", main)
	}
}

func TestLowerGotoAndLabels(t *testing.T) {
	p := build(t, `
PROGRAM P
  INTEGER A
  A = 0
  GOTO 20
  A = 1
20 A = 2
END
`)
	main := findProc(t, p, "P")
	// The `A = 1` statement is unreachable and pruned with its block.
	src := main.String()
	if strings.Contains(src, "A = 1") {
		t.Fatalf("unreachable code survived:\n%s", src)
	}
}

func TestLowerArrays(t *testing.T) {
	p := build(t, `
PROGRAM P
  INTEGER A(10), X
  A(1) = 5
  X = A(1) + A(2)
END
`)
	main := findProc(t, p, "P")
	if countOps(main, ir.OpAStore) != 1 || countOps(main, ir.OpALoad) != 2 {
		t.Fatalf("array ops:\n%s", main)
	}
}

func TestLowerCallArgsAndGlobals(t *testing.T) {
	p := build(t, `
PROGRAM P
  COMMON /G/ GA, GB
  INTEGER GA, GB, X
  X = 1
  CALL S(X, 5, X+1)
END
SUBROUTINE S(A, B, C)
  INTEGER A, B, C
  A = B + C
  RETURN
END
`)
	main := findProc(t, p, "P")
	var call *ir.Instr
	for _, b := range main.Blocks {
		for _, i := range b.Instrs {
			if i.Op == ir.OpCall {
				call = i
			}
		}
	}
	if call == nil {
		t.Fatalf("no call:\n%s", main)
	}
	if call.NumActuals != 3 {
		t.Fatalf("NumActuals = %d", call.NumActuals)
	}
	// 3 actuals + 2 implicit global uses.
	if len(call.Args) != 5 {
		t.Fatalf("args = %d, want 5", len(call.Args))
	}
	// Arg 0 is a bare variable (by-ref), arg 1 a literal, arg 2 a temp.
	if call.Args[0].Var == nil || call.Args[0].Var.Name != "X" {
		t.Errorf("arg0: %v", call.Args[0])
	}
	if call.Args[1].Const == nil || !call.Args[1].Literal {
		t.Errorf("arg1: %v", call.Args[1])
	}
	if call.Args[2].Var == nil || call.Args[2].Var.Kind != ir.TempVar {
		t.Errorf("arg2: %v", call.Args[2])
	}
	if !call.Args[3].Synthetic || !call.Args[4].Synthetic {
		t.Error("global uses should be synthetic")
	}
}

func TestLowerFunctionCallAndReturn(t *testing.T) {
	p := build(t, `
PROGRAM P
  INTEGER X
  X = F(3) + 1
END
INTEGER FUNCTION F(N)
  INTEGER N
  F = N*2
  RETURN
END
`)
	f := findProc(t, p, "F")
	if f.Result == nil || f.Result.Kind != ir.ResultVar {
		t.Fatalf("result var: %+v", f.Result)
	}
	// Ret should use [result, formal N] (no globals declared).
	var ret *ir.Instr
	for _, b := range f.Blocks {
		if tm := b.Terminator(); tm != nil && tm.Op == ir.OpRet {
			ret = tm
		}
	}
	if ret == nil || len(ret.Args) != 2 {
		t.Fatalf("ret: %v", ret)
	}
	main := findProc(t, p, "P")
	if countOps(main, ir.OpCall) != 1 {
		t.Fatalf("main should contain the function call:\n%s", main)
	}
}

func TestLowerParameterFoldsToLiteral(t *testing.T) {
	p := build(t, `
PROGRAM P
  PARAMETER (N = 100)
  INTEGER X
  X = N
  CALL S(N)
END
SUBROUTINE S(A)
  INTEGER A
  A = A + 1
  RETURN
END
`)
	main := findProc(t, p, "P")
	var call *ir.Instr
	for _, b := range main.Blocks {
		for _, i := range b.Instrs {
			if i.Op == ir.OpCall {
				call = i
			}
		}
	}
	if call.Args[0].Const == nil || call.Args[0].Const.Int != 100 || !call.Args[0].Literal {
		t.Fatalf("PARAMETER actual should be a literal 100: %v", call.Args[0])
	}
}

func TestLowerDataInit(t *testing.T) {
	p := build(t, `
PROGRAM P
  INTEGER N
  DATA N /42/
  N = N + 1
END
`)
	main := findProc(t, p, "P")
	first := main.Entry.Instrs[0]
	if first.Op != ir.OpCopy || first.Args[0].Const == nil || first.Args[0].Const.Int != 42 {
		t.Fatalf("DATA init not lowered first: %v", first)
	}
}

func TestLowerTypeConversion(t *testing.T) {
	p := build(t, `
PROGRAM P
  INTEGER N
  REAL X
  X = N
  N = X
END
`)
	main := findProc(t, p, "P")
	if countOps(main, ir.OpI2R) != 1 || countOps(main, ir.OpR2I) != 1 {
		t.Fatalf("conversions:\n%s", main)
	}
}

// --- SSA tests ------------------------------------------------------------

func TestSSAPhiAtJoin(t *testing.T) {
	p := buildSSA(t, `
PROGRAM P
  INTEGER A, B
  B = 0
  IF (B .GT. 0) THEN
    A = 1
  ELSE
    A = 2
  ENDIF
  B = A
END
`, ir.WorstCase)
	main := findProc(t, p, "P")
	phis := countOps(main, ir.OpPhi)
	if phis == 0 {
		t.Fatalf("expected a phi for A at the join:\n%s", main)
	}
	// The phi for A must merge two distinct values.
	for _, b := range main.Blocks {
		for _, i := range b.Instrs {
			if i.Op == ir.OpPhi && i.Var.Name == "A" {
				if len(i.Args) != 2 || i.Args[0].Val == nil || i.Args[1].Val == nil {
					t.Fatalf("phi args: %v", i.Args)
				}
				if i.Args[0].Val == i.Args[1].Val {
					t.Fatalf("phi should merge distinct defs")
				}
			}
		}
	}
}

func TestSSALoopPhi(t *testing.T) {
	p := buildSSA(t, `
PROGRAM P
  INTEGER I, S
  S = 0
  DO I = 1, 10
    S = S + 1
  ENDDO
  I = S
END
`, ir.WorstCase)
	main := findProc(t, p, "P")
	// S and I both need phis in the loop header.
	var headerPhis int
	for _, b := range main.Blocks {
		if len(b.Preds) != 2 {
			continue
		}
		for _, i := range b.Instrs {
			if i.Op == ir.OpPhi && (i.Var.Name == "S" || i.Var.Name == "I") {
				headerPhis++
			}
		}
	}
	if headerPhis < 2 {
		t.Fatalf("expected phis for I and S in header, got %d:\n%s", headerPhis, main)
	}
}

func TestSSAEntryValues(t *testing.T) {
	p := buildSSA(t, `
PROGRAM P
  COMMON /G/ GV
  INTEGER GV
  CALL S(1)
END
SUBROUTINE S(A)
  INTEGER A, L
  COMMON /G/ GV
  INTEGER GV
  L = A + GV
  RETURN
END
`, ir.WorstCase)
	s := findProc(t, p, "S")
	if len(s.EntryValues) == 0 {
		t.Fatal("no entry values")
	}
	for _, f := range s.Formals {
		v := s.EntryValues[f]
		if v == nil || v.Kind != ir.EntryDef {
			t.Fatalf("formal %s entry value: %v", f.Name, v)
		}
	}
	for _, gv := range s.GlobalVars {
		v := s.EntryValues[gv]
		if v == nil || v.Kind != ir.EntryDef {
			t.Fatalf("global %s entry value: %v", gv.Name, v)
		}
	}
	// Locals start undefined.
	for _, v := range s.Vars {
		if v.Kind == ir.LocalVar {
			if ev := s.EntryValues[v]; ev == nil || ev.Kind != ir.UndefDef {
				t.Fatalf("local %s entry value: %v", v.Name, ev)
			}
		}
	}
}

func TestSSACallDefsWorstCaseVsNone(t *testing.T) {
	src := `
PROGRAM P
  COMMON /G/ GV
  INTEGER GV, X
  X = 1
  CALL S(X)
  X = X + GV
END
SUBROUTINE S(A)
  INTEGER A
  COMMON /G/ GV
  INTEGER GV
  GV = A
  RETURN
END
`
	// Worst case: the call kills both X (by-ref actual) and GV.
	p := buildSSA(t, src, ir.WorstCase)
	main := findProc(t, p, "P")
	var call *ir.Instr
	for _, b := range main.Blocks {
		for _, i := range b.Instrs {
			if i.Op == ir.OpCall {
				call = i
			}
		}
	}
	defs := 0
	for _, d := range call.CallDefs {
		if d != nil {
			defs++
		}
	}
	if defs != 2 {
		t.Fatalf("worst case: %d call defs, want 2 (X and GV)\n%s", defs, main)
	}
	// A "nothing modified" oracle: no call defs; uses of X after the
	// call see the pre-call value.
	p2 := buildSSA(t, src, noModOracle{})
	main2 := findProc(t, p2, "P")
	var call2, add *ir.Instr
	for _, b := range main2.Blocks {
		for _, i := range b.Instrs {
			if i.Op == ir.OpCall {
				call2 = i
			}
			if i.Op == ir.OpAdd {
				add = i
			}
		}
	}
	for _, d := range call2.CallDefs {
		if d != nil {
			t.Fatalf("noMod: unexpected call def %v", d)
		}
	}
	if add.Args[0].Val == nil || add.Args[0].Val.Kind != ir.InstrDef {
		t.Fatalf("X use after call should see the original def: %v", add.Args[0].Val)
	}
}

type noModOracle struct{}

func (noModOracle) ModifiesFormal(*ir.Proc, int) bool           { return false }
func (noModOracle) ModifiesGlobal(*ir.Proc, *ir.GlobalVar) bool { return false }

func TestSSAUsesRecorded(t *testing.T) {
	p := buildSSA(t, `
PROGRAM P
  INTEGER A, B
  A = 1
  B = A + A
END
`, ir.WorstCase)
	main := findProc(t, p, "P")
	var def *ir.Value
	for _, b := range main.Blocks {
		for _, i := range b.Instrs {
			if i.Op == ir.OpCopy && i.Var.Name == "A" {
				def = i.Dst
			}
		}
	}
	if def == nil {
		t.Fatal("no def of A")
	}
	// A is used twice by the add and once by Ret (A outlives nothing,
	// actually locals are not in RetVars) — so exactly 2 uses.
	if len(def.Uses) != 2 {
		t.Fatalf("uses of A: %d, want 2", len(def.Uses))
	}
}

func TestBranchToSameTargetBothArms(t *testing.T) {
	// IF (cond) GOTO 10 directly followed by 10 CONTINUE produces a
	// branch whose arms meet immediately; SSA must fill both phi slots.
	p := buildSSA(t, `
PROGRAM P
  INTEGER A
  A = 1
  IF (A .GT. 0) GOTO 10
10 A = A + 1
END
`, ir.WorstCase)
	main := findProc(t, p, "P")
	for _, b := range main.Blocks {
		for _, i := range b.Instrs {
			if i.Op != ir.OpPhi {
				continue
			}
			for j, a := range i.Args {
				if a.Val == nil {
					t.Fatalf("phi arg %d unfilled: %v\n%s", j, i, main)
				}
			}
		}
	}
}

func TestSrcLinesCounted(t *testing.T) {
	p := build(t, `
PROGRAM P
  INTEGER A
  A = 1
  IF (A .GT. 0) THEN
    A = 2
  ENDIF
END
`)
	main := findProc(t, p, "P")
	// header + END + 1 decl + (assign, if, assign, endif) = 7.
	if main.SrcLines != 7 {
		t.Fatalf("SrcLines = %d, want 7", main.SrcLines)
	}
}
