package irbuild

import (
	"ipcp/internal/ir"
	"ipcp/internal/mf/ast"
	"ipcp/internal/mf/sema"
	"ipcp/internal/mf/token"
)

type tokenPos = token.Pos

// genExpr lowers an expression and returns the operand holding its value
// together with the operand's IR type.
func (b *builder) genExpr(e ast.Expr) (ir.Operand, ir.Type) {
	switch e := e.(type) {
	case *ast.IntLit:
		return ir.ConstOperand(ir.IntConst(e.Value)), ir.Int
	case *ast.RealLit:
		return ir.ConstOperand(ir.RealConst(e.Value)), ir.Real
	case *ast.LogicalLit:
		return ir.ConstOperand(ir.BoolConst(e.Value)), ir.Bool
	case *ast.VarRef:
		return b.genVarRef(e)
	case *ast.CallExpr:
		return b.genCallExpr(e)
	case *ast.UnaryExpr:
		return b.genUnary(e)
	case *ast.BinaryExpr:
		return b.genBinary(e)
	}
	// StrLit or an errored node: produce a harmless zero.
	return ir.ConstOperand(ir.IntConst(0)), ir.Int
}

func (b *builder) genVarRef(e *ast.VarRef) (ir.Operand, ir.Type) {
	sym := b.sema.RefSym[e]
	if sym == nil {
		return ir.ConstOperand(ir.IntConst(0)), ir.Int
	}
	// PARAMETER constants fold to literals at lowering time (as FORTRAN
	// compilers do at parse time).
	if sym.Kind == sema.ConstSym {
		if sym.Type == ast.Integer {
			return ir.ConstOperand(ir.IntConst(sym.ConstInt)), ir.Int
		}
		return ir.ConstOperand(ir.RealConst(sym.ConstReal)), ir.Real
	}
	v := b.vars[sym]
	if len(e.Indexes) > 0 {
		return b.loadArrayElement(v, e)
	}
	op := ir.VarOperand(v)
	op.Synthetic = b.synthetic
	return op, v.Type
}

// loadArrayElement emits `tmp = aload arr(indexes)`.
//
// OpALoad needs two variables (the array and the scalar destination);
// Instr.Var holds the destination temp and the array travels as the
// first argument (an array-typed operand).
func (b *builder) loadArrayElement(arr *ir.Var, e *ast.VarRef) (ir.Operand, ir.Type) {
	tmp := b.newTemp(arr.Type.Elem())
	args := make([]ir.Operand, 0, 1+len(e.Indexes))
	args = append(args, ir.VarOperand(arr))
	for _, ix := range e.Indexes {
		op, _ := b.genExpr(ix)
		args = append(args, op)
	}
	b.emit(&ir.Instr{Op: ir.OpALoad, Var: tmp, Args: args, Pos: e.Pos()})
	return ir.VarOperand(tmp), tmp.Type
}

var intrinsicOps = map[string]ir.Op{
	"MOD": ir.OpMod, "ABS": ir.OpAbs, "IABS": ir.OpAbs,
	"MIN": ir.OpMin, "MAX": ir.OpMax, "MIN0": ir.OpMin, "MAX0": ir.OpMax,
}

func (b *builder) genCallExpr(e *ast.CallExpr) (ir.Operand, ir.Type) {
	tgt := b.sema.CallTargets[e]
	if tgt == nil {
		return ir.ConstOperand(ir.IntConst(0)), ir.Int
	}
	if tgt.Intrinsic != nil {
		op := intrinsicOps[tgt.Intrinsic.Name]
		t := ir.Int
		args := make([]ir.Operand, 0, len(e.Args))
		for _, a := range e.Args {
			argOp, at := b.genExpr(a)
			if at == ir.Real {
				t = ir.Real
			}
			args = append(args, argOp)
		}
		if tgt.Intrinsic.IntOnly {
			t = ir.Int
		}
		tmp := b.newTemp(t)
		b.emit(&ir.Instr{Op: op, Var: tmp, Args: args, Pos: e.Pos()})
		return ir.VarOperand(tmp), t
	}
	callee := b.irp.ProcByName[tgt.Unit.Name]
	resType := callee.Result.Type
	tmp := b.genCall(tgt.Unit.Name, e.Args, b.newTemp(resType), e.Pos())
	return ir.VarOperand(tmp), resType
}

// genCall emits a call instruction. result is the temp receiving a
// function's value (nil for subroutine calls); genCall returns it.
func (b *builder) genCall(calleeName string, argExprs []ast.Expr, result *ir.Var, pos tokenPos) *ir.Var {
	callee := b.irp.ProcByName[calleeName]
	args := make([]ir.Operand, 0, len(argExprs)+len(b.proc.GlobalVars))
	for _, a := range argExprs {
		args = append(args, b.genActual(a))
	}
	n := len(args)
	// Implicit uses of every scalar global (the callee may read them).
	for _, gv := range b.proc.GlobalVars {
		op := ir.VarOperand(gv)
		op.Synthetic = true
		args = append(args, op)
	}
	b.emit(&ir.Instr{
		Op:         ir.OpCall,
		Callee:     callee,
		Var:        result,
		Args:       args,
		NumActuals: n,
		Pos:        pos,
	})
	return result
}

// genActual lowers one actual argument. Bare scalar variables stay as
// variable operands (the by-reference binding a callee can write
// through); bare array names pass the array; everything else evaluates
// into a constant or temp.
func (b *builder) genActual(a ast.Expr) ir.Operand {
	if vr, ok := a.(*ast.VarRef); ok && len(vr.Indexes) == 0 {
		sym := b.sema.RefSym[vr]
		if sym != nil && sym.Kind != sema.ConstSym {
			op := ir.VarOperand(b.vars[sym])
			op.Synthetic = b.synthetic
			return op
		}
	}
	op, _ := b.genExpr(a)
	return op
}

func (b *builder) genUnary(e *ast.UnaryExpr) (ir.Operand, ir.Type) {
	x, t := b.genExpr(e.X)
	// Fold negated literals: `-1` is textually a literal constant, and
	// the negative-step DO lowering depends on seeing it as one.
	if e.Op == ast.Neg && x.Const != nil {
		switch x.Const.Type {
		case ir.Int:
			c := ir.ConstOperand(ir.IntConst(-x.Const.Int))
			c.Literal = x.Literal
			return c, ir.Int
		case ir.Real:
			c := ir.ConstOperand(ir.RealConst(-x.Const.Real))
			c.Literal = x.Literal
			return c, ir.Real
		}
	}
	if e.Op == ast.Not && x.Const != nil && x.Const.Type == ir.Bool {
		c := ir.ConstOperand(ir.BoolConst(!x.Const.Bool))
		c.Literal = x.Literal
		return c, ir.Bool
	}
	var op ir.Op
	switch e.Op {
	case ast.Neg:
		op = ir.OpNeg
	case ast.Not:
		op = ir.OpNot
		t = ir.Bool
	}
	tmp := b.newTemp(t)
	b.emit(&ir.Instr{Op: op, Var: tmp, Args: []ir.Operand{x}, Pos: e.Pos()})
	return ir.VarOperand(tmp), t
}

var binOps = map[ast.BinaryOp]ir.Op{
	ast.Add: ir.OpAdd, ast.Sub: ir.OpSub, ast.Mul: ir.OpMul,
	ast.Div: ir.OpDiv, ast.Pow: ir.OpPow,
	ast.Eq: ir.OpEq, ast.Ne: ir.OpNe, ast.Lt: ir.OpLt,
	ast.Le: ir.OpLe, ast.Gt: ir.OpGt, ast.Ge: ir.OpGe,
	ast.And: ir.OpAnd, ast.Or: ir.OpOr,
}

func (b *builder) genBinary(e *ast.BinaryExpr) (ir.Operand, ir.Type) {
	x, xt := b.genExpr(e.X)
	y, yt := b.genExpr(e.Y)
	op := binOps[e.Op]
	var t ir.Type
	switch {
	case e.Op.IsArithmetic():
		t = ir.Int
		if xt == ir.Real || yt == ir.Real {
			t = ir.Real
		}
	default:
		t = ir.Bool
	}
	tmp := b.newTemp(t)
	b.emit(&ir.Instr{Op: op, Var: tmp, Args: []ir.Operand{x, y}, Pos: e.Pos()})
	return ir.VarOperand(tmp), t
}

// genExprInto lowers an expression so that its result lands in dst,
// writing the root operation directly to dst when possible and inserting
// the int/real conversion when the types differ.
func (b *builder) genExprInto(dst *ir.Var, e ast.Expr, pos tokenPos) {
	op, t := b.genExpr(e)
	// Retarget the just-emitted root instruction when it defined a temp
	// of matching type (saves a copy and keeps the IR readable).
	if op.Var != nil && op.Var.Kind == ir.TempVar && t == dst.Type && b.cur != nil && len(b.cur.Instrs) > 0 {
		last := b.cur.Instrs[len(b.cur.Instrs)-1]
		if last.Var == op.Var && last.Op != ir.OpCall {
			last.Var = dst
			return
		}
	}
	switch {
	case t == ir.Int && dst.Type == ir.Real:
		b.emit(&ir.Instr{Op: ir.OpI2R, Var: dst, Args: []ir.Operand{op}, Pos: pos})
	case t == ir.Real && dst.Type == ir.Int:
		b.emit(&ir.Instr{Op: ir.OpR2I, Var: dst, Args: []ir.Operand{op}, Pos: pos})
	default:
		b.emit(&ir.Instr{Op: ir.OpCopy, Var: dst, Args: []ir.Operand{op}, Pos: pos})
	}
}

// UnitLines approximates the noncomment line count of a unit:
// header + END + one line per declaration + the statement count
// (recursively, counting block statement delimiters).
func UnitLines(u *ast.Unit) int {
	n := 2 + len(u.Decls)
	n += countStmtLines(u.Body)
	return n
}

func countStmtLines(list []ast.Stmt) int {
	n := 0
	for _, s := range list {
		n++
		switch s := s.(type) {
		case *ast.IfStmt:
			n += countStmtLines(s.Then)
			if len(s.Else) > 0 {
				n++ // ELSE line
				n += countStmtLines(s.Else)
			}
			n++ // ENDIF
		case *ast.DoStmt:
			n += countStmtLines(s.Body)
			if s.EndLabel == 0 {
				n++ // ENDDO
			}
		case *ast.DoWhileStmt:
			n += countStmtLines(s.Body)
			n++ // ENDDO
		}
	}
	return n
}
