// Package irbuild lowers a semantically analyzed MiniFortran program
// into the ir package's representation: one CFG of three-address
// instructions per procedure.
//
// Lowering is deliberately rebuildable: the analyses mutate the IR (SSA
// construction, dead-code elimination), so each analysis configuration
// calls Build to get a fresh program rather than sharing one.
package irbuild

import (
	"fmt"

	"ipcp/internal/ir"
	"ipcp/internal/mf/ast"
	"ipcp/internal/mf/sema"
)

// Build lowers the analyzed program to IR.
func Build(prog *sema.Program) *ir.Program {
	b := &builder{sema: prog, irp: ir.NewProgram(), states: make(map[*sema.UnitInfo]*unitState)}
	b.declareGlobals()
	// Create all procedures and their variables first: bodies reference
	// other procedures' formals and results (function calls, by-ref
	// binding checks), so every signature must exist before any body is
	// lowered.
	for _, u := range prog.Units {
		b.declareProc(u)
	}
	for _, u := range prog.Units {
		b.states[u] = b.declareVars(u)
	}
	for _, u := range prog.Units {
		b.lowerBody(u)
	}
	return b.irp
}

// unitState carries the per-unit lowering tables between the declaration
// and body passes.
type unitState struct {
	vars map[*sema.Symbol]*ir.Var
}

type builder struct {
	sema   *sema.Program
	irp    *ir.Program
	states map[*sema.UnitInfo]*unitState

	// Per-unit lowering state.
	unit    *sema.UnitInfo
	proc    *ir.Proc
	vars    map[*sema.Symbol]*ir.Var
	labels  map[int]*ir.Block
	cur     *ir.Block
	nextTmp int

	// synthetic marks generated (non-textual) variable uses; see
	// ir.Operand.Synthetic.
	synthetic bool

	// role tags emitted instructions as loop-bound or condition
	// computations (ir.Instr.Role).
	role ir.Role
}

func irType(t ast.BaseType, isArray bool) ir.Type {
	switch t {
	case ast.Integer:
		if isArray {
			return ir.IntArray
		}
		return ir.Int
	case ast.Logical:
		return ir.Bool
	default:
		if isArray {
			return ir.RealArray
		}
		return ir.Real
	}
}

func (b *builder) declareGlobals() {
	for _, g := range b.sema.Globals {
		ig := &ir.GlobalVar{
			ID:    g.ID,
			Block: g.Block,
			Name:  g.Name,
			Type:  irType(g.Type, g.IsArray()),
			Size:  1,
			Dims:  g.Dims,
		}
		for _, d := range g.Dims {
			ig.Size *= d
		}
		b.irp.Globals = append(b.irp.Globals, ig)
		if !ig.Type.IsArray() {
			b.irp.ScalarGlobals = append(b.irp.ScalarGlobals, ig)
		}
	}
}

func (b *builder) declareProc(u *sema.UnitInfo) {
	kind := ir.SubProc
	switch u.Unit.Kind {
	case ast.ProgramUnit:
		kind = ir.MainProc
	case ast.FunctionUnit:
		kind = ir.FuncProc
	}
	proc := &ir.Proc{Name: u.Name, Kind: kind, SrcLines: UnitLines(u.Unit)}
	b.irp.AddProc(proc)
}

// declareVars creates the procedure's formals, result, global views,
// and locals, plus the Ret operand layout.
func (b *builder) declareVars(u *sema.UnitInfo) *unitState {
	b.vars = make(map[*sema.Symbol]*ir.Var)
	p := b.irp.ProcByName[u.Name]

	// Formals, in order.
	for _, s := range u.Params {
		v := p.NewVar(s.Name, ir.FormalVar, irType(s.Type, s.IsArray()))
		v.Index = s.ParamIndex
		v.Size = s.Size()
		v.Dims = s.Dims
		p.Formals = append(p.Formals, v)
		b.vars[s] = v
	}
	// Function result.
	if u.Result != nil {
		v := p.NewVar(u.Result.Name, ir.ResultVar, irType(u.Result.Type, false))
		p.Result = v
		b.vars[u.Result] = v
	}
	// Every scalar global gets a per-procedure view, named by this
	// unit's COMMON declaration when it has one, canonically otherwise.
	localName := make(map[*ir.GlobalVar]string)
	for _, s := range u.CommonVars {
		g := b.irp.Globals[s.Global.ID]
		localName[g] = s.Name
	}
	for _, g := range b.irp.ScalarGlobals {
		name := localName[g]
		if name == "" {
			name = g.Name
		}
		v := p.NewVar(name, ir.GlobalRefVar, g.Type)
		v.Global = g
		p.GlobalVars = append(p.GlobalVars, v)
	}
	// Bind this unit's COMMON symbols (scalars to the views above,
	// arrays to fresh array vars).
	for _, s := range u.CommonVars {
		g := b.irp.Globals[s.Global.ID]
		if g.Type.IsArray() {
			v := p.NewVar(s.Name, ir.GlobalRefVar, g.Type)
			v.Global = g
			v.Size = g.Size
			v.Dims = g.Dims
			b.vars[s] = v
			continue
		}
		for i, sg := range b.irp.ScalarGlobals {
			if sg == g {
				b.vars[s] = p.GlobalVars[i]
				break
			}
		}
	}
	// Locals (declared or implicit).
	for _, s := range u.Symbols {
		if s.Kind != sema.LocalSym {
			continue
		}
		v := p.NewVar(s.Name, ir.LocalVar, irType(s.Type, s.IsArray()))
		v.Size = s.Size()
		v.Dims = s.Dims
		b.vars[s] = v
	}

	// Ret operand layout.
	if p.Result != nil {
		p.RetVars = append(p.RetVars, p.Result)
	}
	for _, f := range p.Formals {
		if !f.Type.IsArray() {
			p.RetVars = append(p.RetVars, f)
		}
	}
	p.RetVars = append(p.RetVars, p.GlobalVars...)

	return &unitState{vars: b.vars}
}

// lowerBody fills in the body of the already-declared procedure.
func (b *builder) lowerBody(u *sema.UnitInfo) {
	b.unit = u
	b.proc = b.irp.ProcByName[u.Name]
	b.vars = b.states[u].vars
	b.labels = make(map[int]*ir.Block)
	b.nextTmp = 0

	p := b.proc
	p.Entry = p.NewBlock()
	b.cur = p.Entry

	// DATA initializations (PROGRAM unit only) lower to entry
	// assignments of literal constants.
	for _, s := range orderedSymbols(u) {
		if !s.HasInit {
			continue
		}
		v := b.vars[s]
		var c *ir.Const
		if v.Type == ir.Int {
			c = ir.IntConst(s.InitInt)
		} else {
			c = ir.RealConst(s.InitReal)
		}
		b.emit(&ir.Instr{Op: ir.OpCopy, Var: v, Args: []ir.Operand{ir.ConstOperand(c)}})
	}

	b.lowerStmts(u.Unit.Body)
	b.finishWithReturn()
	b.proc.RemoveUnreachable()
}

// orderedSymbols returns the unit's symbols in a deterministic order
// (map iteration is randomized).
func orderedSymbols(u *sema.UnitInfo) []*sema.Symbol {
	var names []string
	for n := range u.Symbols {
		names = append(names, n)
	}
	sortStrings(names)
	syms := make([]*sema.Symbol, len(names))
	for i, n := range names {
		syms[i] = u.Symbols[n]
	}
	return syms
}

func sortStrings(s []string) {
	// Insertion sort keeps this dependency-free; symbol tables are small.
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// finishWithReturn terminates the final block with an implicit RETURN if
// control can fall off the end of the unit.
func (b *builder) finishWithReturn() {
	if b.cur != nil && b.cur.Terminator() == nil {
		b.emitReturn()
	}
}

func (b *builder) emit(i *ir.Instr) *ir.Instr {
	if i.Role == ir.RoleNone {
		i.Role = b.role
	}
	if b.cur == nil {
		// Unreachable code after a GOTO/RETURN: collect it in a fresh
		// (predecessor-less) block; RemoveUnreachable prunes it.
		b.cur = b.proc.NewBlock()
	}
	return b.cur.Append(i)
}

func (b *builder) newTemp(t ir.Type) *ir.Var {
	v := b.proc.NewVar(fmt.Sprintf("t%d", b.nextTmp), ir.TempVar, t)
	b.nextTmp++
	return v
}

// startBlock ends the current block with a jump into next (if it is
// still open) and makes next current.
func (b *builder) startBlock(next *ir.Block) {
	if b.cur != nil && b.cur.Terminator() == nil {
		b.emit(&ir.Instr{Op: ir.OpJmp})
		ir.AddEdge(b.cur, next)
	}
	b.cur = next
}

// labelBlock returns (creating on demand) the block a numeric label
// denotes.
func (b *builder) labelBlock(label int) *ir.Block {
	if blk, ok := b.labels[label]; ok {
		return blk
	}
	blk := b.proc.NewBlock()
	b.labels[label] = blk
	return blk
}

func (b *builder) emitReturn() {
	args := make([]ir.Operand, len(b.proc.RetVars))
	for i, v := range b.proc.RetVars {
		args[i] = ir.VarOperand(v)
		args[i].Synthetic = true
	}
	b.emit(&ir.Instr{Op: ir.OpRet, Args: args})
	b.cur = nil
}
