package ir

import (
	"strings"
	"testing"
)

// buildCounterProc constructs, by hand:
//
//	sub COUNT(n)
//	  b0: i = copy 0 ; jmp b1
//	  b1: t = lt i, n ; br t, b2, b3
//	  b2: i = add i, 1 ; jmp b1
//	  b3: ret [n]
func buildCounterProc() (*Proc, *Var, *Var) {
	prog := NewProgram()
	p := &Proc{Name: "COUNT", Kind: SubProc}
	prog.AddProc(p)
	n := p.NewVar("N", FormalVar, Int)
	n.Index = 0
	p.Formals = []*Var{n}
	i := p.NewVar("I", LocalVar, Int)
	t := p.NewVar("T", TempVar, Bool)
	p.RetVars = []*Var{n}

	b0, b1, b2, b3 := p.NewBlock(), p.NewBlock(), p.NewBlock(), p.NewBlock()
	p.Entry = b0
	b0.Append(&Instr{Op: OpCopy, Var: i, Args: []Operand{ConstOperand(IntConst(0))}})
	b0.Append(&Instr{Op: OpJmp})
	AddEdge(b0, b1)

	b1.Append(&Instr{Op: OpLt, Var: t, Args: []Operand{VarOperand(i), VarOperand(n)}})
	b1.Append(&Instr{Op: OpBr, Args: []Operand{VarOperand(t)}})
	AddEdge(b1, b2)
	AddEdge(b1, b3)

	b2.Append(&Instr{Op: OpAdd, Var: i, Args: []Operand{VarOperand(i), ConstOperand(IntConst(1))}})
	b2.Append(&Instr{Op: OpJmp})
	AddEdge(b2, b1)

	ret := Operand{Var: n, Synthetic: true}
	b3.Append(&Instr{Op: OpRet, Args: []Operand{ret}})
	return p, n, i
}

func TestBuildSSAByHand(t *testing.T) {
	p, n, i := buildCounterProc()
	p.BuildSSA(WorstCase)

	// The loop header needs a phi for I.
	phis := 0
	for _, instr := range p.Blocks[1].Instrs {
		if instr.Op == OpPhi {
			phis++
			if instr.Var != i {
				t.Errorf("phi for %v, want I", instr.Var)
			}
			if len(instr.Args) != 2 || instr.Args[0].Val == nil || instr.Args[1].Val == nil {
				t.Errorf("phi args unfilled: %v", instr.Args)
			}
		}
	}
	if phis != 1 {
		t.Fatalf("header phis = %d, want 1 (only I merges)\n%s", phis, p)
	}
	if p.EntryValues[n] == nil || p.EntryValues[n].Kind != EntryDef {
		t.Error("formal entry value missing")
	}
	// Building twice must panic (the IR is consumed).
	defer func() {
		if recover() == nil {
			t.Error("second BuildSSA should panic")
		}
	}()
	p.BuildSSA(WorstCase)
}

func TestPrintForms(t *testing.T) {
	p, _, _ := buildCounterProc()
	p.BuildSSA(WorstCase)
	out := p.String()
	for _, want := range []string{"subroutine COUNT(int N)", "phi(", "br ", "jmp ", "ret ["} {
		if !strings.Contains(out, want) {
			t.Errorf("print missing %q:\n%s", want, out)
		}
	}
}

func TestPrintArrayOps(t *testing.T) {
	prog := NewProgram()
	p := &Proc{Name: "A", Kind: SubProc}
	prog.AddProc(p)
	arr := p.NewVar("BUF", LocalVar, IntArray)
	tmp := p.NewVar("t0", TempVar, Int)
	b := p.NewBlock()
	p.Entry = b
	b.Append(&Instr{Op: OpALoad, Var: tmp, Args: []Operand{VarOperand(arr), ConstOperand(IntConst(1))}})
	b.Append(&Instr{Op: OpAStore, Var: arr, Args: []Operand{VarOperand(tmp), ConstOperand(IntConst(2))}})
	b.Append(&Instr{Op: OpStop})
	out := p.String()
	if !strings.Contains(out, "t0 = BUF(1)") {
		t.Errorf("aload print:\n%s", out)
	}
	if !strings.Contains(out, "BUF(2) = t0") {
		t.Errorf("astore print:\n%s", out)
	}
}

func TestCloneStripSSA(t *testing.T) {
	p, _, _ := buildCounterProc()
	p.BuildSSA(WorstCase)
	np := p.CloneStripSSA(nil, nil)

	// No phis, no SSA values; same block structure.
	if len(np.Blocks) != len(p.Blocks) {
		t.Fatalf("blocks: %d vs %d", len(np.Blocks), len(p.Blocks))
	}
	for _, b := range np.Blocks {
		for _, i := range b.Instrs {
			if i.Op == OpPhi {
				t.Fatal("phi survived clone")
			}
			if i.Dst != nil {
				t.Fatal("SSA value survived clone")
			}
			for _, a := range i.Args {
				if a.Val != nil {
					t.Fatal("SSA use survived clone")
				}
			}
		}
	}
	// Vars are fresh objects with the same names.
	if np.Formals[0] == p.Formals[0] || np.Formals[0].Name != "N" {
		t.Error("formals not deep-copied")
	}
	// The clone is analyzable from scratch.
	np.BuildSSA(WorstCase)
}

func TestCloneRewriteHook(t *testing.T) {
	p, n, _ := buildCounterProc()
	p.BuildSSA(WorstCase)
	entryN := p.EntryValues[n]
	np := p.CloneStripSSA(func(_ *Instr, _ int, op Operand) Operand {
		if op.Val == entryN {
			return ConstOperand(IntConst(42))
		}
		return op
	}, nil)
	out := np.String()
	if !strings.Contains(out, "lt I, 42") {
		t.Errorf("rewrite did not substitute:\n%s", out)
	}
}

func TestCloneKeepFilter(t *testing.T) {
	p, _, _ := buildCounterProc()
	p.BuildSSA(WorstCase)
	np := p.CloneStripSSA(nil, func(i *Instr) bool { return i.Op != OpAdd })
	if strings.Contains(np.String(), "add") {
		t.Errorf("filtered instruction survived:\n%s", np)
	}
	// Terminators are always kept.
	if np.Blocks[1].Terminator() == nil {
		t.Error("terminator dropped")
	}
}

func TestMergeTrivialJumps(t *testing.T) {
	prog := NewProgram()
	p := &Proc{Name: "M", Kind: SubProc}
	prog.AddProc(p)
	v := p.NewVar("I", LocalVar, Int)
	b0, b1, b2 := p.NewBlock(), p.NewBlock(), p.NewBlock()
	p.Entry = b0
	b0.Append(&Instr{Op: OpCopy, Var: v, Args: []Operand{ConstOperand(IntConst(1))}})
	b0.Append(&Instr{Op: OpJmp})
	AddEdge(b0, b1)
	b1.Append(&Instr{Op: OpCopy, Var: v, Args: []Operand{ConstOperand(IntConst(2))}})
	b1.Append(&Instr{Op: OpJmp})
	AddEdge(b1, b2)
	b2.Append(&Instr{Op: OpRet})

	p.MergeTrivialJumps()
	if len(p.Blocks) != 1 {
		t.Fatalf("blocks after merge: %d\n%s", len(p.Blocks), p)
	}
	if got := len(p.Blocks[0].Instrs); got != 3 { // two copies + ret
		t.Fatalf("instrs: %d\n%s", got, p)
	}
}

func TestMergeKeepsLoops(t *testing.T) {
	prog := NewProgram()
	p := &Proc{Name: "L", Kind: SubProc}
	prog.AddProc(p)
	b0, b1 := p.NewBlock(), p.NewBlock()
	p.Entry = b0
	b0.Append(&Instr{Op: OpJmp})
	AddEdge(b0, b1)
	b1.Append(&Instr{Op: OpJmp})
	AddEdge(b1, b1) // self loop: b1 has 2 preds, cannot merge
	p.MergeTrivialJumps()
	if len(p.Blocks) != 2 {
		t.Fatalf("self-loop merged away:\n%s", p)
	}
}

func TestConstHelpers(t *testing.T) {
	if !IntConst(3).Equal(IntConst(3)) || IntConst(3).Equal(IntConst(4)) {
		t.Error("int equality")
	}
	if IntConst(1).Equal(BoolConst(true)) {
		t.Error("cross-type equality")
	}
	if !RealConst(1.5).Equal(RealConst(1.5)) {
		t.Error("real equality")
	}
	if IntConst(1).Equal(nil) {
		t.Error("nil equality")
	}
	if IntConst(7).String() != "7" || BoolConst(true).String() != "true" {
		t.Error("const strings")
	}
}

func TestTypeMethods(t *testing.T) {
	if !IntArray.IsArray() || Int.IsArray() {
		t.Error("IsArray")
	}
	if IntArray.Elem() != Int || RealArray.Elem() != Real || Bool.Elem() != Bool {
		t.Error("Elem")
	}
	for _, typ := range []Type{Int, Real, Bool, IntArray, RealArray} {
		if typ.String() == "?" {
			t.Errorf("missing name for %d", typ)
		}
	}
}

func TestVarTracked(t *testing.T) {
	p := &Proc{Name: "T"}
	if !p.NewVar("A", FormalVar, Int).Tracked() {
		t.Error("formal should be tracked")
	}
	if p.NewVar("t0", TempVar, Int).Tracked() {
		t.Error("temp should not be tracked")
	}
	if p.NewVar("ARR", LocalVar, IntArray).Tracked() {
		t.Error("array should not be tracked")
	}
}

func TestOperandStrings(t *testing.T) {
	v := &Var{Name: "X"}
	if VarOperand(v).String() != "X" {
		t.Error("var operand string")
	}
	if ConstOperand(IntConst(5)).String() != "5" {
		t.Error("const operand string")
	}
	var empty Operand
	if empty.String() != "<empty>" {
		t.Error("empty operand string")
	}
}

func TestWorstCaseOracle(t *testing.T) {
	if !WorstCase.ModifiesFormal(nil, 0) || !WorstCase.ModifiesGlobal(nil, nil) {
		t.Error("worst case must say yes")
	}
}

func TestCloneProgramRepointsCallees(t *testing.T) {
	prog := NewProgram()
	callee := &Proc{Name: "LEAF", Kind: SubProc}
	prog.AddProc(callee)
	cb := callee.NewBlock()
	callee.Entry = cb
	cb.Append(&Instr{Op: OpRet})

	caller := &Proc{Name: "TOP", Kind: MainProc}
	prog.AddProc(caller)
	b := caller.NewBlock()
	caller.Entry = b
	b.Append(&Instr{Op: OpCall, Callee: callee, NumActuals: 0})
	b.Append(&Instr{Op: OpRet})

	np := CloneProgram(prog, nil, nil)
	if np.Main == nil || np.Main.Name != "TOP" {
		t.Fatal("main lost")
	}
	call := np.Main.Entry.Instrs[0]
	if call.Callee != np.ProcByName["LEAF"] {
		t.Error("callee not repointed into the clone")
	}
	if call.Callee == callee {
		t.Error("callee still points at the original program")
	}
}
