package ir

import "fmt"

// Verify checks the procedure's structural invariants and returns a
// descriptive error for the first violation. It accepts both pre-SSA
// and SSA-form procedures (SSA-only checks run once EntryValues is set).
// Tests run it over every constructed and transformed procedure.
//
// Checked invariants:
//
//   - the entry block exists and belongs to the procedure;
//   - successor/predecessor lists are symmetric (with multiplicity);
//   - every reachable block ends in exactly one terminator, branch
//     blocks have two successors, jump blocks one, ret/stop none;
//   - no terminator appears in the middle of a block;
//   - phis appear only at block heads, with one argument per
//     predecessor (SSA form only);
//   - every operand's SSA value, when present, is defined by an
//     instruction of this procedure or is an entry/undef value;
//   - call instructions have a callee and NumActuals within bounds.
func (p *Proc) Verify() error {
	if p.Entry == nil {
		return fmt.Errorf("%s: no entry block", p.Name)
	}
	inProc := make(map[*Block]bool, len(p.Blocks))
	for _, b := range p.Blocks {
		inProc[b] = true
	}
	if !inProc[p.Entry] {
		return fmt.Errorf("%s: entry block not in Blocks", p.Name)
	}
	// The entry block is never a branch target: lowering starts labeled
	// code in a fresh block, and the dominance-frontier computation's
	// ≥2-predecessor shortcut assumes it (an entry inside a loop would
	// need a phi merging the external and loop-carried paths).
	if len(p.Entry.Preds) != 0 {
		return fmt.Errorf("%s: entry block has %d predecessors", p.Name, len(p.Entry.Preds))
	}

	// Collect definitions for SSA checking.
	ssa := p.EntryValues != nil
	defined := make(map[*Value]bool)
	if ssa {
		for _, v := range p.EntryValues {
			defined[v] = true
		}
		for _, b := range p.Blocks {
			for _, i := range b.Instrs {
				if i.Dst != nil {
					defined[i.Dst] = true
				}
				for _, d := range i.CallDefs {
					if d != nil {
						defined[d] = true
					}
				}
			}
		}
	}

	count := func(list []*Block, b *Block) int {
		n := 0
		for _, x := range list {
			if x == b {
				n++
			}
		}
		return n
	}

	for _, b := range p.Blocks {
		// Edge symmetry with multiplicity.
		for _, s := range b.Succs {
			if !inProc[s] {
				return fmt.Errorf("%s: %v has successor outside the procedure", p.Name, b)
			}
			if count(b.Succs, s) != count(s.Preds, b) {
				return fmt.Errorf("%s: edge %v→%v asymmetric (%d succs vs %d preds)",
					p.Name, b, s, count(b.Succs, s), count(s.Preds, b))
			}
		}
		for _, pr := range b.Preds {
			if !inProc[pr] {
				return fmt.Errorf("%s: %v has predecessor outside the procedure", p.Name, b)
			}
		}

		// Terminator discipline.
		for k, i := range b.Instrs {
			if i.Op.IsTerminator() && k != len(b.Instrs)-1 {
				return fmt.Errorf("%s: %v has terminator %v mid-block", p.Name, b, i.Op)
			}
		}
		if t := b.Terminator(); t != nil {
			want := -1
			switch t.Op {
			case OpBr:
				want = 2
			case OpJmp:
				want = 1
			case OpRet, OpStop:
				want = 0
			}
			if want >= 0 && len(b.Succs) != want {
				return fmt.Errorf("%s: %v ends in %v but has %d successors",
					p.Name, b, t.Op, len(b.Succs))
			}
		} else if len(b.Instrs) > 0 || len(b.Succs) > 0 {
			// Blocks must not fall through.
			if len(b.Succs) > 0 {
				return fmt.Errorf("%s: %v has successors but no terminator", p.Name, b)
			}
		}

		// Phi placement and arity; operand definitions.
		seenNonPhi := false
		for _, i := range b.Instrs {
			if i.Op == OpPhi {
				if seenNonPhi {
					return fmt.Errorf("%s: %v has phi after non-phi", p.Name, b)
				}
				if ssa && len(i.Args) != len(b.Preds) {
					return fmt.Errorf("%s: %v phi arity %d vs %d preds",
						p.Name, b, len(i.Args), len(b.Preds))
				}
			} else {
				seenNonPhi = true
			}
			if i.Op == OpCall {
				if i.Callee == nil {
					return fmt.Errorf("%s: call without callee in %v", p.Name, b)
				}
				if i.NumActuals > len(i.Args) {
					return fmt.Errorf("%s: call NumActuals %d > args %d",
						p.Name, i.NumActuals, len(i.Args))
				}
			}
			for a := range i.Args {
				op := i.Args[a]
				if op.Val != nil && ssa && !defined[op.Val] {
					return fmt.Errorf("%s: %v uses undefined value %v", p.Name, b, op.Val)
				}
				if op.Const == nil && op.Var == nil && op.Val == nil {
					return fmt.Errorf("%s: %v has empty operand %d of %v", p.Name, b, a, i.Op)
				}
			}
		}
	}
	return nil
}

// VerifyProgram runs Verify over every procedure.
func VerifyProgram(prog *Program) error {
	for _, proc := range prog.Procs {
		if err := proc.Verify(); err != nil {
			return err
		}
	}
	return nil
}
