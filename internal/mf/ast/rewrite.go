package ast

// RewriteExprs applies f to every expression in the unit's executable
// statements, bottom-up (children first, then the enclosing expression),
// replacing each expression with f's result. Assignment targets and READ
// targets are visited as l-values: their subscript expressions are
// rewritten but the VarRef node itself is not replaced (a store target
// cannot become a literal).
func RewriteExprs(u *Unit, f func(Expr) Expr) {
	rewriteStmts(u.Body, f)
}

func rewriteStmts(list []Stmt, f func(Expr) Expr) {
	for _, s := range list {
		rewriteStmt(s, f)
	}
}

func rewriteStmt(s Stmt, f func(Expr) Expr) {
	switch s := s.(type) {
	case *AssignStmt:
		rewriteLValue(s.LHS, f)
		s.RHS = rewriteExpr(s.RHS, f)
	case *IfStmt:
		s.Cond = rewriteExpr(s.Cond, f)
		rewriteStmts(s.Then, f)
		rewriteStmts(s.Else, f)
	case *LogicalIfStmt:
		s.Cond = rewriteExpr(s.Cond, f)
		rewriteStmt(s.Stmt, f)
	case *DoStmt:
		s.Lo = rewriteExpr(s.Lo, f)
		s.Hi = rewriteExpr(s.Hi, f)
		if s.Step != nil {
			s.Step = rewriteExpr(s.Step, f)
		}
		rewriteStmts(s.Body, f)
	case *DoWhileStmt:
		s.Cond = rewriteExpr(s.Cond, f)
		rewriteStmts(s.Body, f)
	case *CallStmt:
		for i := range s.Args {
			s.Args[i] = rewriteExpr(s.Args[i], f)
		}
	case *ReadStmt:
		for _, t := range s.Targets {
			rewriteLValue(t, f)
		}
	case *WriteStmt:
		for i := range s.Values {
			s.Values[i] = rewriteExpr(s.Values[i], f)
		}
	}
}

// rewriteLValue rewrites only the subscripts of a store target.
func rewriteLValue(ref *VarRef, f func(Expr) Expr) {
	for i := range ref.Indexes {
		ref.Indexes[i] = rewriteExpr(ref.Indexes[i], f)
	}
}

func rewriteExpr(e Expr, f func(Expr) Expr) Expr {
	switch e := e.(type) {
	case *VarRef:
		for i := range e.Indexes {
			e.Indexes[i] = rewriteExpr(e.Indexes[i], f)
		}
	case *CallExpr:
		for i := range e.Args {
			e.Args[i] = rewriteExpr(e.Args[i], f)
		}
	case *UnaryExpr:
		e.X = rewriteExpr(e.X, f)
	case *BinaryExpr:
		e.X = rewriteExpr(e.X, f)
		e.Y = rewriteExpr(e.Y, f)
	}
	return f(e)
}
