// Package ast defines the abstract syntax tree for MiniFortran programs.
//
// A source file holds one Program unit and any number of SUBROUTINE and
// FUNCTION units. Declarations (type statements, DIMENSION, COMMON,
// PARAMETER) precede executable statements within each unit, matching
// FORTRAN-77 layout.
package ast

import "ipcp/internal/mf/token"

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------------------
// Program structure

// File is a parsed source file: an ordered list of program units.
type File struct {
	Units []*Unit
}

// UnitKind distinguishes the three kinds of program unit.
type UnitKind int

// Program unit kinds.
const (
	ProgramUnit UnitKind = iota
	SubroutineUnit
	FunctionUnit
)

func (k UnitKind) String() string {
	switch k {
	case ProgramUnit:
		return "PROGRAM"
	case SubroutineUnit:
		return "SUBROUTINE"
	case FunctionUnit:
		return "FUNCTION"
	}
	return "UNIT"
}

// Unit is a program unit: the main PROGRAM, a SUBROUTINE, or a FUNCTION.
type Unit struct {
	Kind       UnitKind
	Name       string
	ResultType BaseType // FunctionUnit only: declared result type
	Params     []string // formal parameter names, in order
	Decls      []Decl
	Body       []Stmt
	UnitPos    token.Pos
}

// Pos returns the position of the unit header.
func (u *Unit) Pos() token.Pos { return u.UnitPos }

// ---------------------------------------------------------------------------
// Types and declarations

// BaseType is a scalar MiniFortran type.
type BaseType int

// Scalar types. NoType marks "not declared; use implicit rule".
const (
	NoType BaseType = iota
	Integer
	Real
	Logical
)

func (t BaseType) String() string {
	switch t {
	case Integer:
		return "INTEGER"
	case Real:
		return "REAL"
	case Logical:
		return "LOGICAL"
	}
	return "NOTYPE"
}

// Decl is implemented by declaration statements.
type Decl interface {
	Node
	declNode()
}

// Declarator introduces one name in a type or DIMENSION statement,
// optionally with array bounds: `A` or `A(10)` or `A(10,20)`.
type Declarator struct {
	Name    string
	Dims    []Expr // nil for scalars; constant expressions for arrays
	NamePos token.Pos
}

// Pos returns the position of the declared name.
func (d *Declarator) Pos() token.Pos { return d.NamePos }

// TypeDecl is `INTEGER a, b(10)` / `REAL x` / `LOGICAL flag`.
type TypeDecl struct {
	Type    BaseType
	Items   []*Declarator
	TypePos token.Pos
}

// DimensionDecl is `DIMENSION a(100), b(10,10)`; element type comes from
// a type statement or the implicit rule.
type DimensionDecl struct {
	Items  []*Declarator
	DimPos token.Pos
}

// CommonDecl is `COMMON /blk/ a, b, c`. Variables in a COMMON block are
// the program's global variables; identity is (block name, position).
type CommonDecl struct {
	Block     string // block name, upper-cased; "" for blank common
	Items     []*Declarator
	CommonPos token.Pos
}

// ParameterDecl is `PARAMETER (N = 100, M = N*2)`: named compile-time
// constants.
type ParameterDecl struct {
	Names    []string
	Values   []Expr
	ParamPos token.Pos
}

// ImplicitNoneDecl is `IMPLICIT NONE`: disables implicit typing for the
// unit, so every name must be declared.
type ImplicitNoneDecl struct {
	ImplicitPos token.Pos
}

// DataDecl is `DATA v /5/, w /2/`: static initialization of variables.
type DataDecl struct {
	Names   []string
	Values  []Expr
	DataPos token.Pos
}

// Pos implementations and marker methods for declarations.
func (d *TypeDecl) Pos() token.Pos         { return d.TypePos }
func (d *TypeDecl) declNode()              {}
func (d *DimensionDecl) Pos() token.Pos    { return d.DimPos }
func (d *DimensionDecl) declNode()         {}
func (d *CommonDecl) Pos() token.Pos       { return d.CommonPos }
func (d *CommonDecl) declNode()            {}
func (d *ParameterDecl) Pos() token.Pos    { return d.ParamPos }
func (d *ParameterDecl) declNode()         {}
func (d *ImplicitNoneDecl) Pos() token.Pos { return d.ImplicitPos }
func (d *ImplicitNoneDecl) declNode()      {}
func (d *DataDecl) Pos() token.Pos         { return d.DataPos }
func (d *DataDecl) declNode()              {}

// ---------------------------------------------------------------------------
// Statements

// Stmt is implemented by executable statements. Every statement may carry
// a numeric label (0 when absent), the target of GOTO and labeled DO.
type Stmt interface {
	Node
	Label() int
	SetLabel(int)
	stmtNode()
}

// stmtBase provides label storage shared by all statements.
type stmtBase struct {
	label int
}

func (s *stmtBase) Label() int     { return s.label }
func (s *stmtBase) SetLabel(l int) { s.label = l }
func (s *stmtBase) stmtNode()      {}

// AssignStmt is `lhs = rhs`; the left side is a variable or array element.
type AssignStmt struct {
	stmtBase
	LHS *VarRef
	RHS Expr
}

// Pos returns the position of the assignment target.
func (s *AssignStmt) Pos() token.Pos { return s.LHS.Pos() }

// IfStmt is a block IF: IF (cond) THEN ... [ELSEIF...] [ELSE ...] ENDIF.
// Parsed ELSEIF chains become nested IfStmts in Else.
type IfStmt struct {
	stmtBase
	Cond  Expr
	Then  []Stmt
	Else  []Stmt // nil when absent
	IfPos token.Pos
}

// Pos returns the position of the IF keyword.
func (s *IfStmt) Pos() token.Pos { return s.IfPos }

// LogicalIfStmt is `IF (cond) stmt` with a single action statement.
type LogicalIfStmt struct {
	stmtBase
	Cond  Expr
	Stmt  Stmt
	IfPos token.Pos
}

// Pos returns the position of the IF keyword.
func (s *LogicalIfStmt) Pos() token.Pos { return s.IfPos }

// DoStmt is a counted DO loop:
//
//	DO v = lo, hi [, step] ... ENDDO
//	DO 10 v = lo, hi [, step] ... 10 CONTINUE
//
// EndLabel is nonzero for the labeled form.
type DoStmt struct {
	stmtBase
	Var      string
	Lo, Hi   Expr
	Step     Expr // nil means 1
	Body     []Stmt
	EndLabel int
	DoPos    token.Pos
}

// Pos returns the position of the DO keyword.
func (s *DoStmt) Pos() token.Pos { return s.DoPos }

// DoWhileStmt is `DO WHILE (cond) ... ENDDO`.
type DoWhileStmt struct {
	stmtBase
	Cond  Expr
	Body  []Stmt
	DoPos token.Pos
}

// Pos returns the position of the DO keyword.
func (s *DoWhileStmt) Pos() token.Pos { return s.DoPos }

// GotoStmt is `GOTO label`.
type GotoStmt struct {
	stmtBase
	Target  int
	GotoPos token.Pos
}

// Pos returns the position of the GOTO keyword.
func (s *GotoStmt) Pos() token.Pos { return s.GotoPos }

// ContinueStmt is `CONTINUE`: a no-op statement, usually a label carrier.
type ContinueStmt struct {
	stmtBase
	ContinuePos token.Pos
}

// Pos returns the position of the CONTINUE keyword.
func (s *ContinueStmt) Pos() token.Pos { return s.ContinuePos }

// CallStmt is `CALL name(args...)` or `CALL name`.
type CallStmt struct {
	stmtBase
	Name    string
	Args    []Expr
	CallPos token.Pos
}

// Pos returns the position of the CALL keyword.
func (s *CallStmt) Pos() token.Pos { return s.CallPos }

// ReturnStmt is `RETURN`.
type ReturnStmt struct {
	stmtBase
	ReturnPos token.Pos
}

// Pos returns the position of the RETURN keyword.
func (s *ReturnStmt) Pos() token.Pos { return s.ReturnPos }

// StopStmt is `STOP`: terminates the program.
type StopStmt struct {
	stmtBase
	StopPos token.Pos
}

// Pos returns the position of the STOP keyword.
func (s *StopStmt) Pos() token.Pos { return s.StopPos }

// ReadStmt is `READ v1, v2` or `READ(*,*) v1, v2`: assigns opaque runtime
// input to each listed variable (the analyzer treats these values as
// unknowable, i.e. lattice bottom).
type ReadStmt struct {
	stmtBase
	Targets []*VarRef
	ReadPos token.Pos
}

// Pos returns the position of the READ keyword.
func (s *ReadStmt) Pos() token.Pos { return s.ReadPos }

// WriteStmt is `WRITE(*,*) e1, e2` or `PRINT *, e1, e2`: evaluates and
// outputs each expression.
type WriteStmt struct {
	stmtBase
	Values   []Expr
	WritePos token.Pos
}

// Pos returns the position of the WRITE/PRINT keyword.
func (s *WriteStmt) Pos() token.Pos { return s.WritePos }

// ---------------------------------------------------------------------------
// Expressions

// Expr is implemented by expression nodes.
type Expr interface {
	Node
	exprNode()
}

// IntLit is an integer literal.
type IntLit struct {
	Value  int64
	LitPos token.Pos
}

// RealLit is a real literal.
type RealLit struct {
	Value  float64
	Text   string
	LitPos token.Pos
}

// StrLit is a character literal (used only in WRITE/PRINT lists).
type StrLit struct {
	Value  string
	LitPos token.Pos
}

// LogicalLit is `.TRUE.` or `.FALSE.`.
type LogicalLit struct {
	Value  bool
	LitPos token.Pos
}

// VarRef is a reference to a scalar variable (`N`), an array element
// (`A(I,J)`), or — before semantic analysis disambiguates — a function
// call (`F(X)`), since the two are syntactically identical in Fortran.
type VarRef struct {
	Name    string
	Indexes []Expr // nil for scalar references
	NamePos token.Pos
}

// CallExpr is a function invocation. The parser produces VarRef for all
// `name(args)` forms; semantic analysis rewrites those that name
// functions or intrinsics into CallExpr.
type CallExpr struct {
	Name    string
	Args    []Expr
	NamePos token.Pos
}

// UnaryOp is the operator of a UnaryExpr.
type UnaryOp int

// Unary operators.
const (
	Neg UnaryOp = iota // -x
	Not                // .NOT. x
)

func (op UnaryOp) String() string {
	if op == Neg {
		return "-"
	}
	return ".NOT."
}

// UnaryExpr is `-x` or `.NOT. x`.
type UnaryExpr struct {
	Op    UnaryOp
	X     Expr
	OpPos token.Pos
}

// BinaryOp is the operator of a BinaryExpr.
type BinaryOp int

// Binary operators.
const (
	Add BinaryOp = iota // +
	Sub                 // -
	Mul                 // *
	Div                 // /
	Pow                 // **
	Eq                  // .EQ.
	Ne                  // .NE.
	Lt                  // .LT.
	Le                  // .LE.
	Gt                  // .GT.
	Ge                  // .GE.
	And                 // .AND.
	Or                  // .OR.
)

var binOpNames = [...]string{
	Add: "+", Sub: "-", Mul: "*", Div: "/", Pow: "**",
	Eq: ".EQ.", Ne: ".NE.", Lt: ".LT.", Le: ".LE.", Gt: ".GT.", Ge: ".GE.",
	And: ".AND.", Or: ".OR.",
}

func (op BinaryOp) String() string { return binOpNames[op] }

// IsRelational reports whether op compares two arithmetic operands.
func (op BinaryOp) IsRelational() bool { return op >= Eq && op <= Ge }

// IsLogical reports whether op combines two logical operands.
func (op BinaryOp) IsLogical() bool { return op == And || op == Or }

// IsArithmetic reports whether op produces an arithmetic result.
func (op BinaryOp) IsArithmetic() bool { return op <= Pow }

// BinaryExpr is `x op y`.
type BinaryExpr struct {
	Op   BinaryOp
	X, Y Expr
}

// Pos implementations and marker methods for expressions.
func (e *IntLit) Pos() token.Pos     { return e.LitPos }
func (e *IntLit) exprNode()          {}
func (e *RealLit) Pos() token.Pos    { return e.LitPos }
func (e *RealLit) exprNode()         {}
func (e *StrLit) Pos() token.Pos     { return e.LitPos }
func (e *StrLit) exprNode()          {}
func (e *LogicalLit) Pos() token.Pos { return e.LitPos }
func (e *LogicalLit) exprNode()      {}
func (e *VarRef) Pos() token.Pos     { return e.NamePos }
func (e *VarRef) exprNode()          {}
func (e *CallExpr) Pos() token.Pos   { return e.NamePos }
func (e *CallExpr) exprNode()        {}
func (e *UnaryExpr) Pos() token.Pos  { return e.OpPos }
func (e *UnaryExpr) exprNode()       {}
func (e *BinaryExpr) Pos() token.Pos { return e.X.Pos() }
func (e *BinaryExpr) exprNode()      {}
