package ast

import (
	"strings"
	"testing"

	"ipcp/internal/mf/token"
)

func intLit(v int64) *IntLit { return &IntLit{Value: v} }
func ref(name string) *VarRef {
	return &VarRef{Name: name, NamePos: token.Pos{Line: 1, Col: 1}}
}

func TestFormatExprPrecedence(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		// (1+2)*3 needs parentheses.
		{&BinaryExpr{Op: Mul, X: &BinaryExpr{Op: Add, X: intLit(1), Y: intLit(2)}, Y: intLit(3)}, "(1+2)*3"},
		// 1+2*3 does not.
		{&BinaryExpr{Op: Add, X: intLit(1), Y: &BinaryExpr{Op: Mul, X: intLit(2), Y: intLit(3)}}, "1+2*3"},
		// Left-associativity: (a-b)-c prints flat, a-(b-c) keeps parens.
		{&BinaryExpr{Op: Sub, X: &BinaryExpr{Op: Sub, X: ref("A"), Y: ref("B")}, Y: ref("C")}, "A-B-C"},
		{&BinaryExpr{Op: Sub, X: ref("A"), Y: &BinaryExpr{Op: Sub, X: ref("B"), Y: ref("C")}}, "A-(B-C)"},
		// Unary minus binding.
		// -A*B means -(A*B) in Fortran, so no parentheses are needed.
		{&UnaryExpr{Op: Neg, X: &BinaryExpr{Op: Mul, X: ref("A"), Y: ref("B")}}, "-A*B"},
		// Relational spacing.
		{&BinaryExpr{Op: Le, X: ref("I"), Y: ref("N")}, "I .LE. N"},
		// Logical operators.
		{&BinaryExpr{Op: And, X: &LogicalLit{Value: true}, Y: &UnaryExpr{Op: Not, X: ref("L")}}, ".TRUE. .AND. .NOT. L"},
		// Array reference and call.
		{&VarRef{Name: "A", Indexes: []Expr{ref("I"), intLit(2)}}, "A(I, 2)"},
		{&CallExpr{Name: "MOD", Args: []Expr{ref("I"), intLit(4)}}, "MOD(I, 4)"},
		// Power is right-associative.
		{&BinaryExpr{Op: Pow, X: intLit(2), Y: &BinaryExpr{Op: Pow, X: intLit(3), Y: intLit(2)}}, "2**3**2"},
		{&BinaryExpr{Op: Pow, X: &BinaryExpr{Op: Pow, X: intLit(2), Y: intLit(3)}, Y: intLit(2)}, "(2**3)**2"},
		// String and real literals.
		{&StrLit{Value: "hi"}, "'hi'"},
		{&RealLit{Value: 2.5, Text: "2.5"}, "2.5"},
		{&RealLit{Value: 0.5}, "0.5"},
	}
	for _, tc := range cases {
		if got := FormatExpr(tc.e); got != tc.want {
			t.Errorf("FormatExpr = %q, want %q", got, tc.want)
		}
	}
}

func TestFormatUnitKinds(t *testing.T) {
	f := &File{Units: []*Unit{
		{Kind: ProgramUnit, Name: "P"},
		{Kind: SubroutineUnit, Name: "S", Params: []string{"A", "B"}},
		{Kind: FunctionUnit, Name: "F", ResultType: Integer, Params: []string{"X"}},
	}}
	out := Format(f)
	for _, want := range []string{"PROGRAM P", "SUBROUTINE S(A, B)", "INTEGER FUNCTION F(X)"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFormatStatements(t *testing.T) {
	u := &Unit{Kind: ProgramUnit, Name: "P", Body: []Stmt{
		&AssignStmt{LHS: ref("X"), RHS: intLit(1)},
		&GotoStmt{Target: 10},
		&ContinueStmt{},
		&ReturnStmt{},
		&StopStmt{},
		&ReadStmt{Targets: []*VarRef{ref("A"), {Name: "B", Indexes: []Expr{intLit(1)}}}},
		&WriteStmt{Values: []Expr{ref("A"), &StrLit{Value: "done"}}},
	}}
	u.Body[2].SetLabel(10)
	out := Format(&File{Units: []*Unit{u}})
	for _, want := range []string{"X = 1", "GOTO 10", "10 CONTINUE", "RETURN", "STOP",
		"READ A, B(1)", "WRITE(*,*) A, 'done'"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFormatLogicalIfInline(t *testing.T) {
	u := &Unit{Kind: ProgramUnit, Name: "P", Body: []Stmt{
		&LogicalIfStmt{
			Cond: &BinaryExpr{Op: Gt, X: ref("N"), Y: intLit(0)},
			Stmt: &GotoStmt{Target: 20},
		},
		&ContinueStmt{},
	}}
	u.Body[1].SetLabel(20)
	out := Format(&File{Units: []*Unit{u}})
	if !strings.Contains(out, "IF (N .GT. 0) GOTO 20") {
		t.Errorf("logical IF:\n%s", out)
	}
}

func TestRewriteExprsReplacesUses(t *testing.T) {
	// X = N + 1; IF (N .GT. 0) THEN WRITE N ENDIF ; substitute N := 5.
	u := &Unit{Kind: ProgramUnit, Name: "P", Body: []Stmt{
		&AssignStmt{LHS: ref("X"), RHS: &BinaryExpr{Op: Add, X: ref("N"), Y: intLit(1)}},
		&IfStmt{
			Cond: &BinaryExpr{Op: Gt, X: ref("N"), Y: intLit(0)},
			Then: []Stmt{&WriteStmt{Values: []Expr{ref("N")}}},
		},
		&DoStmt{Var: "I", Lo: intLit(1), Hi: ref("N"), Body: []Stmt{
			&AssignStmt{LHS: &VarRef{Name: "A", Indexes: []Expr{ref("N")}}, RHS: ref("N")},
		}},
	}}
	count := 0
	RewriteExprs(u, func(e Expr) Expr {
		if r, ok := e.(*VarRef); ok && r.Name == "N" && len(r.Indexes) == 0 {
			count++
			return intLit(5)
		}
		return e
	})
	if count != 6 {
		t.Fatalf("replaced %d references, want 6", count)
	}
	out := Format(&File{Units: []*Unit{u}})
	for _, want := range []string{"X = 5+1", "IF (5 .GT. 0)", "DO I = 1, 5", "A(5) = 5"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q after rewrite:\n%s", want, out)
		}
	}
}

func TestRewriteDoesNotTouchStoreTargets(t *testing.T) {
	u := &Unit{Kind: ProgramUnit, Name: "P", Body: []Stmt{
		&AssignStmt{LHS: ref("N"), RHS: intLit(1)},
		&ReadStmt{Targets: []*VarRef{ref("N")}},
	}}
	RewriteExprs(u, func(e Expr) Expr {
		if r, ok := e.(*VarRef); ok && r.Name == "N" {
			t.Error("store target visited as an expression")
		}
		return e
	})
}

func TestBinaryOpPredicates(t *testing.T) {
	if !Add.IsArithmetic() || Add.IsRelational() || Add.IsLogical() {
		t.Error("Add classification")
	}
	if !Lt.IsRelational() || Lt.IsArithmetic() {
		t.Error("Lt classification")
	}
	if !And.IsLogical() || And.IsRelational() {
		t.Error("And classification")
	}
	for op := Add; op <= Or; op++ {
		if op.String() == "" {
			t.Errorf("missing name for op %d", op)
		}
	}
	if Neg.String() != "-" || Not.String() != ".NOT." {
		t.Error("unary names")
	}
}

func TestUnitKindStrings(t *testing.T) {
	if ProgramUnit.String() != "PROGRAM" || SubroutineUnit.String() != "SUBROUTINE" || FunctionUnit.String() != "FUNCTION" {
		t.Error("unit kind names")
	}
	if Integer.String() != "INTEGER" || Real.String() != "REAL" || Logical.String() != "LOGICAL" {
		t.Error("type names")
	}
}
