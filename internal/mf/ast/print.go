package ast

import (
	"fmt"
	"strings"
)

// Fprint writes file back out as MiniFortran source. The output is
// parseable by the parser (round-trippable modulo formatting), which the
// test suite verifies.
func Fprint(sb *strings.Builder, file *File) {
	p := printer{sb: sb}
	for i, u := range file.Units {
		if i > 0 {
			sb.WriteByte('\n')
		}
		p.unit(u)
	}
}

// Format returns file rendered as MiniFortran source.
func Format(file *File) string {
	var sb strings.Builder
	Fprint(&sb, file)
	return sb.String()
}

// FormatUnit renders a single program unit as source text. The output
// is the unit exactly as Format would print it inside the whole file —
// the normalized form the incremental engine fingerprints, so that
// whitespace and comment differences never invalidate a summary.
func FormatUnit(u *Unit) string {
	var sb strings.Builder
	p := printer{sb: &sb}
	p.unit(u)
	return sb.String()
}

// FormatExpr renders a single expression as source text.
func FormatExpr(e Expr) string {
	var p printer
	var sb strings.Builder
	p.sb = &sb
	p.expr(e, 0)
	return sb.String()
}

type printer struct {
	sb     *strings.Builder
	indent int
}

func (p *printer) linef(format string, args ...any) {
	p.sb.WriteString(strings.Repeat("  ", p.indent))
	fmt.Fprintf(p.sb, format, args...)
	p.sb.WriteByte('\n')
}

func (p *printer) unit(u *Unit) {
	switch u.Kind {
	case ProgramUnit:
		p.linef("PROGRAM %s", u.Name)
	case SubroutineUnit:
		p.linef("SUBROUTINE %s(%s)", u.Name, strings.Join(u.Params, ", "))
	case FunctionUnit:
		p.linef("%s FUNCTION %s(%s)", u.ResultType, u.Name, strings.Join(u.Params, ", "))
	}
	p.indent++
	for _, d := range u.Decls {
		p.decl(d)
	}
	p.stmts(u.Body)
	p.indent--
	p.linef("END")
}

func (p *printer) decl(d Decl) {
	switch d := d.(type) {
	case *TypeDecl:
		p.linef("%s %s", d.Type, p.declarators(d.Items))
	case *DimensionDecl:
		p.linef("DIMENSION %s", p.declarators(d.Items))
	case *CommonDecl:
		p.linef("COMMON /%s/ %s", d.Block, p.declarators(d.Items))
	case *ParameterDecl:
		parts := make([]string, len(d.Names))
		for i, n := range d.Names {
			parts[i] = fmt.Sprintf("%s = %s", n, FormatExpr(d.Values[i]))
		}
		p.linef("PARAMETER (%s)", strings.Join(parts, ", "))
	case *ImplicitNoneDecl:
		p.linef("IMPLICIT NONE")
	case *DataDecl:
		parts := make([]string, len(d.Names))
		for i, n := range d.Names {
			parts[i] = fmt.Sprintf("%s /%s/", n, FormatExpr(d.Values[i]))
		}
		p.linef("DATA %s", strings.Join(parts, ", "))
	default:
		p.linef("! unknown decl %T", d)
	}
}

func (p *printer) declarators(items []*Declarator) string {
	parts := make([]string, len(items))
	for i, it := range items {
		if len(it.Dims) == 0 {
			parts[i] = it.Name
			continue
		}
		dims := make([]string, len(it.Dims))
		for j, d := range it.Dims {
			dims[j] = FormatExpr(d)
		}
		parts[i] = fmt.Sprintf("%s(%s)", it.Name, strings.Join(dims, ", "))
	}
	return strings.Join(parts, ", ")
}

func (p *printer) stmts(list []Stmt) {
	for _, s := range list {
		p.stmt(s)
	}
}

// labelPrefix renders a numeric statement label, if present.
func labelPrefix(s Stmt) string {
	if s.Label() != 0 {
		return fmt.Sprintf("%d ", s.Label())
	}
	return ""
}

func (p *printer) stmt(s Stmt) {
	lp := labelPrefix(s)
	switch s := s.(type) {
	case *AssignStmt:
		p.linef("%s%s = %s", lp, FormatExpr(s.LHS), FormatExpr(s.RHS))
	case *IfStmt:
		p.linef("%sIF (%s) THEN", lp, FormatExpr(s.Cond))
		p.indent++
		p.stmts(s.Then)
		p.indent--
		if len(s.Else) > 0 {
			p.linef("ELSE")
			p.indent++
			p.stmts(s.Else)
			p.indent--
		}
		p.linef("ENDIF")
	case *LogicalIfStmt:
		p.sb.WriteString(strings.Repeat("  ", p.indent))
		fmt.Fprintf(p.sb, "%sIF (%s) ", lp, FormatExpr(s.Cond))
		p.inlineStmt(s.Stmt)
		p.sb.WriteByte('\n')
	case *DoStmt:
		step := ""
		if s.Step != nil {
			step = ", " + FormatExpr(s.Step)
		}
		p.linef("%sDO %s = %s, %s%s", lp, s.Var, FormatExpr(s.Lo), FormatExpr(s.Hi), step)
		p.indent++
		p.stmts(s.Body)
		p.indent--
		p.linef("ENDDO")
	case *DoWhileStmt:
		p.linef("%sDO WHILE (%s)", lp, FormatExpr(s.Cond))
		p.indent++
		p.stmts(s.Body)
		p.indent--
		p.linef("ENDDO")
	case *GotoStmt:
		p.linef("%sGOTO %d", lp, s.Target)
	case *ContinueStmt:
		p.linef("%sCONTINUE", lp)
	case *CallStmt:
		p.linef("%sCALL %s(%s)", lp, s.Name, p.exprList(s.Args))
	case *ReturnStmt:
		p.linef("%sRETURN", lp)
	case *StopStmt:
		p.linef("%sSTOP", lp)
	case *ReadStmt:
		targets := make([]string, len(s.Targets))
		for i, t := range s.Targets {
			targets[i] = FormatExpr(t)
		}
		p.linef("%sREAD %s", lp, strings.Join(targets, ", "))
	case *WriteStmt:
		p.linef("%sWRITE(*,*) %s", lp, p.exprList(s.Values))
	default:
		p.linef("! unknown stmt %T", s)
	}
}

// inlineStmt prints the action of a logical IF without indentation or a
// trailing newline.
func (p *printer) inlineStmt(s Stmt) {
	switch s := s.(type) {
	case *AssignStmt:
		fmt.Fprintf(p.sb, "%s = %s", FormatExpr(s.LHS), FormatExpr(s.RHS))
	case *GotoStmt:
		fmt.Fprintf(p.sb, "GOTO %d", s.Target)
	case *CallStmt:
		fmt.Fprintf(p.sb, "CALL %s(%s)", s.Name, p.exprList(s.Args))
	case *ReturnStmt:
		p.sb.WriteString("RETURN")
	case *StopStmt:
		p.sb.WriteString("STOP")
	case *ContinueStmt:
		p.sb.WriteString("CONTINUE")
	default:
		fmt.Fprintf(p.sb, "! unknown inline stmt %T", s)
	}
}

func (p *printer) exprList(list []Expr) string {
	parts := make([]string, len(list))
	for i, e := range list {
		parts[i] = FormatExpr(e)
	}
	return strings.Join(parts, ", ")
}

// binding powers for parenthesization during printing.
func exprPrec(e Expr) int {
	switch e := e.(type) {
	case *BinaryExpr:
		switch {
		case e.Op == Or:
			return 1
		case e.Op == And:
			return 2
		case e.Op.IsRelational():
			return 3
		case e.Op == Add || e.Op == Sub:
			return 4
		case e.Op == Mul || e.Op == Div:
			return 5
		case e.Op == Pow:
			return 6
		}
	case *UnaryExpr:
		if e.Op == Not {
			return 3
		}
		return 4
	}
	return 10
}

func (p *printer) expr(e Expr, parentPrec int) {
	prec := exprPrec(e)
	if prec < parentPrec {
		p.sb.WriteByte('(')
		defer p.sb.WriteByte(')')
	}
	switch e := e.(type) {
	case *IntLit:
		fmt.Fprintf(p.sb, "%d", e.Value)
	case *RealLit:
		if e.Text != "" {
			p.sb.WriteString(e.Text)
		} else {
			fmt.Fprintf(p.sb, "%g", e.Value)
		}
	case *StrLit:
		// Embedded quotes escape by doubling, as in the source form.
		fmt.Fprintf(p.sb, "'%s'", strings.ReplaceAll(e.Value, "'", "''"))
	case *LogicalLit:
		if e.Value {
			p.sb.WriteString(".TRUE.")
		} else {
			p.sb.WriteString(".FALSE.")
		}
	case *VarRef:
		p.sb.WriteString(e.Name)
		if len(e.Indexes) > 0 {
			p.sb.WriteByte('(')
			p.sb.WriteString(p.exprList(e.Indexes))
			p.sb.WriteByte(')')
		}
	case *CallExpr:
		p.sb.WriteString(e.Name)
		p.sb.WriteByte('(')
		p.sb.WriteString(p.exprList(e.Args))
		p.sb.WriteByte(')')
	case *UnaryExpr:
		p.sb.WriteString(e.Op.String())
		if e.Op == Not {
			p.sb.WriteByte(' ')
		}
		p.expr(e.X, prec+1)
	case *BinaryExpr:
		// Associativity decides which side needs the tighter context:
		// ** is right-associative (2**(3**2) reparses flat, (2**3)**2
		// needs parens), everything else is left-associative (a-b-c
		// prints flat, a-(b-c) keeps its parens).
		leftPrec, rightPrec := prec, prec+1
		if e.Op == Pow {
			leftPrec, rightPrec = prec+1, prec
		}
		p.expr(e.X, leftPrec)
		if e.Op.IsArithmetic() {
			p.sb.WriteString(e.Op.String())
		} else {
			fmt.Fprintf(p.sb, " %s ", e.Op)
		}
		p.expr(e.Y, rightPrec)
	default:
		fmt.Fprintf(p.sb, "?%T?", e)
	}
}
