package parser

import (
	"strings"
	"testing"

	"ipcp/internal/mf/ast"
)

func mustParse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse failed: %v", err)
	}
	return f
}

const tinyProgram = `
PROGRAM MAIN
  INTEGER N
  N = 100
  CALL FOO(N, 5)
END

SUBROUTINE FOO(A, B)
  INTEGER A, B
  A = A + B
  RETURN
END
`

func TestParseUnits(t *testing.T) {
	f := mustParse(t, tinyProgram)
	if len(f.Units) != 2 {
		t.Fatalf("got %d units, want 2", len(f.Units))
	}
	if f.Units[0].Kind != ast.ProgramUnit || f.Units[0].Name != "MAIN" {
		t.Errorf("unit 0: %v %q", f.Units[0].Kind, f.Units[0].Name)
	}
	sub := f.Units[1]
	if sub.Kind != ast.SubroutineUnit || sub.Name != "FOO" {
		t.Errorf("unit 1: %v %q", sub.Kind, sub.Name)
	}
	if len(sub.Params) != 2 || sub.Params[0] != "A" || sub.Params[1] != "B" {
		t.Errorf("params: %v", sub.Params)
	}
}

func TestParseFunction(t *testing.T) {
	f := mustParse(t, `
INTEGER FUNCTION TWICE(X)
  INTEGER X
  TWICE = 2*X
  RETURN
END
`)
	u := f.Units[0]
	if u.Kind != ast.FunctionUnit || u.ResultType != ast.Integer || u.Name != "TWICE" {
		t.Fatalf("got %v %v %q", u.Kind, u.ResultType, u.Name)
	}
}

func TestParseDecls(t *testing.T) {
	f := mustParse(t, `
PROGRAM P
  IMPLICIT NONE
  INTEGER A, B(10), C(5,5)
  REAL X
  LOGICAL FLAG
  DIMENSION D(100)
  COMMON /BLK/ G1, G2
  PARAMETER (N = 100, M = N*2)
  DATA A /5/, X /1.5/
END
`)
	decls := f.Units[0].Decls
	if len(decls) != 8 {
		t.Fatalf("got %d decls, want 8", len(decls))
	}
	td := decls[1].(*ast.TypeDecl)
	if td.Type != ast.Integer || len(td.Items) != 3 {
		t.Fatalf("INTEGER decl: %+v", td)
	}
	if len(td.Items[1].Dims) != 1 || len(td.Items[2].Dims) != 2 {
		t.Errorf("array dims wrong: %+v", td.Items)
	}
	cd := decls[5].(*ast.CommonDecl)
	if cd.Block != "BLK" || len(cd.Items) != 2 {
		t.Fatalf("COMMON decl: %+v", cd)
	}
	pd := decls[6].(*ast.ParameterDecl)
	if len(pd.Names) != 2 || pd.Names[0] != "N" {
		t.Fatalf("PARAMETER decl: %+v", pd)
	}
}

func TestParseIfForms(t *testing.T) {
	f := mustParse(t, `
PROGRAM P
  INTEGER A
  IF (A .GT. 0) THEN
    A = 1
  ELSE IF (A .LT. 0) THEN
    A = 2
  ELSEIF (A .EQ. 0) THEN
    A = 3
  ELSE
    A = 4
  END IF
  IF (A .EQ. 1) A = 5
  IF (A .EQ. 2) GOTO 10
10 CONTINUE
END
`)
	body := f.Units[0].Body
	ifs, ok := body[0].(*ast.IfStmt)
	if !ok {
		t.Fatalf("stmt 0 is %T", body[0])
	}
	// ELSE IF chain nests: else contains one IfStmt, whose else contains
	// another, whose else has the final assignment.
	lvl2, ok := ifs.Else[0].(*ast.IfStmt)
	if !ok {
		t.Fatalf("else[0] is %T", ifs.Else[0])
	}
	lvl3, ok := lvl2.Else[0].(*ast.IfStmt)
	if !ok {
		t.Fatalf("nested else is %T", lvl2.Else[0])
	}
	if len(lvl3.Else) != 1 {
		t.Fatalf("final else: %v", lvl3.Else)
	}
	if _, ok := body[1].(*ast.LogicalIfStmt); !ok {
		t.Fatalf("stmt 1 is %T, want LogicalIfStmt", body[1])
	}
	lif := body[2].(*ast.LogicalIfStmt)
	if g, ok := lif.Stmt.(*ast.GotoStmt); !ok || g.Target != 10 {
		t.Fatalf("logical IF GOTO: %+v", lif.Stmt)
	}
	if body[3].Label() != 10 {
		t.Fatalf("label: %d", body[3].Label())
	}
}

func TestParseDoForms(t *testing.T) {
	f := mustParse(t, `
PROGRAM P
  INTEGER I, J, S
  DO I = 1, 10
    S = S + I
  ENDDO
  DO J = 10, 1, -1
    S = S - J
  END DO
  DO 20 I = 1, 5
    S = S + 1
20 CONTINUE
  DO WHILE (S .GT. 0)
    S = S - 1
  ENDDO
END
`)
	body := f.Units[0].Body
	d0 := body[0].(*ast.DoStmt)
	if d0.Var != "I" || d0.Step != nil || len(d0.Body) != 1 {
		t.Fatalf("do 0: %+v", d0)
	}
	d1 := body[1].(*ast.DoStmt)
	if d1.Step == nil {
		t.Fatalf("do 1 missing step")
	}
	d2 := body[2].(*ast.DoStmt)
	if d2.EndLabel != 20 || len(d2.Body) != 2 {
		t.Fatalf("labeled do: endlabel=%d body=%d", d2.EndLabel, len(d2.Body))
	}
	if d2.Body[1].Label() != 20 {
		t.Fatalf("labeled do terminator label: %d", d2.Body[1].Label())
	}
	if _, ok := body[3].(*ast.DoWhileStmt); !ok {
		t.Fatalf("stmt 3 is %T", body[3])
	}
}

func TestParseNestedLabeledDo(t *testing.T) {
	f := mustParse(t, `
PROGRAM P
  INTEGER I, J, S
  DO 10 I = 1, 5
  DO 20 J = 1, 5
    S = S + 1
20 CONTINUE
10 CONTINUE
END
`)
	outer := f.Units[0].Body[0].(*ast.DoStmt)
	inner, ok := outer.Body[0].(*ast.DoStmt)
	if !ok {
		t.Fatalf("inner is %T", outer.Body[0])
	}
	if inner.EndLabel != 20 || outer.EndLabel != 10 {
		t.Fatalf("labels: %d %d", inner.EndLabel, outer.EndLabel)
	}
}

func TestParseIO(t *testing.T) {
	f := mustParse(t, `
PROGRAM P
  INTEGER N, A(10)
  READ N
  READ(*,*) N, A(2)
  READ *, N
  WRITE(*,*) N, N+1, 'done'
  PRINT *, N
END
`)
	body := f.Units[0].Body
	if r := body[1].(*ast.ReadStmt); len(r.Targets) != 2 || len(r.Targets[1].Indexes) != 1 {
		t.Fatalf("read 1: %+v", body[1])
	}
	if w := body[3].(*ast.WriteStmt); len(w.Values) != 3 {
		t.Fatalf("write: %+v", body[3])
	}
}

func TestExpressionPrecedence(t *testing.T) {
	f := mustParse(t, "PROGRAM P\nINTEGER A\nA = 1 + 2*3**2\nEND\n")
	asg := f.Units[0].Body[0].(*ast.AssignStmt)
	add := asg.RHS.(*ast.BinaryExpr)
	if add.Op != ast.Add {
		t.Fatalf("top op %v", add.Op)
	}
	mul := add.Y.(*ast.BinaryExpr)
	if mul.Op != ast.Mul {
		t.Fatalf("mul op %v", mul.Op)
	}
	pow := mul.Y.(*ast.BinaryExpr)
	if pow.Op != ast.Pow {
		t.Fatalf("pow op %v", pow.Op)
	}
}

func TestPowerRightAssociative(t *testing.T) {
	f := mustParse(t, "PROGRAM P\nINTEGER A\nA = 2**3**2\nEND\n")
	asg := f.Units[0].Body[0].(*ast.AssignStmt)
	outer := asg.RHS.(*ast.BinaryExpr)
	inner, ok := outer.Y.(*ast.BinaryExpr)
	if !ok || inner.Op != ast.Pow {
		t.Fatalf("2**3**2 should parse as 2**(3**2): %+v", asg.RHS)
	}
}

func TestUnaryMinusBindsTerm(t *testing.T) {
	// -A*B parses as -(A*B) in Fortran.
	f := mustParse(t, "PROGRAM P\nINTEGER A, B, C\nC = -A*B\nEND\n")
	asg := f.Units[0].Body[0].(*ast.AssignStmt)
	neg, ok := asg.RHS.(*ast.UnaryExpr)
	if !ok || neg.Op != ast.Neg {
		t.Fatalf("top is %T", asg.RHS)
	}
	if mul, ok := neg.X.(*ast.BinaryExpr); !ok || mul.Op != ast.Mul {
		t.Fatalf("inner is %+v", neg.X)
	}
}

func TestLogicalPrecedence(t *testing.T) {
	// A.EQ.1 .OR. B.EQ.2 .AND. C.EQ.3 => OR(eq, AND(eq, eq))
	f := mustParse(t, "PROGRAM P\nINTEGER A,B,C\nLOGICAL L\nL = A.EQ.1 .OR. B.EQ.2 .AND. C.EQ.3\nEND\n")
	asg := f.Units[0].Body[0].(*ast.AssignStmt)
	or := asg.RHS.(*ast.BinaryExpr)
	if or.Op != ast.Or {
		t.Fatalf("top %v", or.Op)
	}
	and := or.Y.(*ast.BinaryExpr)
	if and.Op != ast.And {
		t.Fatalf("right %v", and.Op)
	}
}

func TestCallForms(t *testing.T) {
	f := mustParse(t, `
PROGRAM P
  INTEGER X
  CALL NOARG
  CALL NOARG()
  CALL ONEARG(X+1)
END
`)
	body := f.Units[0].Body
	if c := body[0].(*ast.CallStmt); c.Name != "NOARG" || len(c.Args) != 0 {
		t.Fatalf("call 0: %+v", c)
	}
	if c := body[1].(*ast.CallStmt); len(c.Args) != 0 {
		t.Fatalf("call 1: %+v", c)
	}
	if c := body[2].(*ast.CallStmt); len(c.Args) != 1 {
		t.Fatalf("call 2: %+v", c)
	}
}

func TestSyntaxErrorsRecover(t *testing.T) {
	src := `
PROGRAM P
  INTEGER A
  A = = 1
  A = 2
END
`
	f, err := Parse(src)
	if err == nil {
		t.Fatal("expected syntax error")
	}
	if len(f.Units) != 1 {
		t.Fatalf("units: %d", len(f.Units))
	}
	// The good statement after the bad one still parses.
	found := false
	for _, s := range f.Units[0].Body {
		if a, ok := s.(*ast.AssignStmt); ok {
			if lit, ok := a.RHS.(*ast.IntLit); ok && lit.Value == 2 {
				found = true
			}
		}
	}
	if !found {
		t.Error("statement after error was not recovered")
	}
}

func TestErrorMessagesCarryPositions(t *testing.T) {
	_, err := Parse("PROGRAM P\nA = \nEND\n")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line number: %v", err)
	}
}

// Round-trip: print the AST and reparse; unit/stmt structure must survive.
func TestPrintReparse(t *testing.T) {
	srcs := []string{tinyProgram, `
PROGRAM P
  INTEGER I, S, A(10)
  COMMON /G/ GV
  PARAMETER (N = 3)
  S = 0
  DO I = 1, N
    IF (S .LT. 100 .AND. I .NE. 2) THEN
      S = S + A(I)*2 - (-I)
    ELSE
      CALL HELPER(S, I, 7)
    ENDIF
  ENDDO
  WRITE(*,*) S
END
SUBROUTINE HELPER(X, Y, Z)
  INTEGER X, Y, Z
  X = X + Y**Z
  RETURN
END
`}
	for _, src := range srcs {
		f1 := mustParse(t, src)
		printed := ast.Format(f1)
		f2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse failed: %v\nprinted source:\n%s", err, printed)
		}
		p2 := ast.Format(f2)
		if printed != p2 {
			t.Fatalf("print not stable:\n--- first ---\n%s\n--- second ---\n%s", printed, p2)
		}
	}
}
