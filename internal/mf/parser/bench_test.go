package parser

import (
	"testing"

	"ipcp/internal/mf/lexer"
	"ipcp/internal/mf/sema"
	"ipcp/internal/suite"
)

var benchSrc = suite.Generate("snasa7", 4).Source

// BenchmarkLex measures the scanner alone.
func BenchmarkLex(b *testing.B) {
	b.SetBytes(int64(len(benchSrc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lx := lexer.New(benchSrc)
		lx.All()
	}
}

// BenchmarkParse measures lexing + parsing.
func BenchmarkParse(b *testing.B) {
	b.SetBytes(int64(len(benchSrc)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(benchSrc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSema measures semantic analysis on a pre-parsed file.
func BenchmarkSema(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f, err := Parse(benchSrc) // sema mutates the AST; reparse per iteration
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := sema.Analyze(f); err != nil {
			b.Fatal(err)
		}
	}
}
