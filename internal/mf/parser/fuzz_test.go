package parser

import (
	"testing"

	"ipcp/internal/mf/ast"
	"ipcp/internal/mf/sema"
)

// FuzzParse asserts the front end's robustness contract: Parse and
// Analyze never panic, and any program that parses and checks cleanly
// must survive a format→reparse→recheck round trip.
//
// Run with `go test -fuzz FuzzParse ./internal/mf/parser` for a real
// fuzzing session; the seed corpus below runs under plain `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"PROGRAM P\nEND\n",
		"PROGRAM P\n  INTEGER A(10), I\n  DO I = 1, 10\n    A(I) = I\n  ENDDO\nEND\n",
		"SUBROUTINE S(A, B)\n  INTEGER A, B\n  A = B**2\n  RETURN\nEND\n",
		"PROGRAM P\n  IF (1 .LT. 2 .AND. .NOT. .FALSE.) THEN\n  ENDIF\nEND\n",
		"PROGRAM P\n10 GOTO 10\nEND\n",
		"PROGRAM P\n  COMMON /B/ X\n  PARAMETER (N = 2**10)\n  READ(*,*) X\nEND\n",
		"PROGRAM P\n  WRITE(*,*) 'it''s', 1.5E-3, .5\nEND\n",
		"PROGRAM P\n  A = 1 + & ! comment\n      2\nEND\n",
		"program p\n  integer function oops\nend\n",
		"PROGRAM P\n  X = MOD(1, 0) + MAX(1)\nEND\n",
		"PROGRAM P\n  DO 10 I = 1, 5\n10 CONTINUE\nEND\n",
		"\x00\x01\x02",
		"PROGRAM P\n  X = ((((((1))))))\nEND\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return // keep individual cases fast
		}
		file, err := Parse(src)
		if err != nil || file == nil {
			return
		}
		sp, err := sema.Analyze(file)
		if err != nil || sp == nil {
			return
		}
		// Round trip: a clean program must reparse and recheck.
		printed := ast.Format(file)
		file2, err := Parse(printed)
		if err != nil {
			t.Fatalf("format not reparseable: %v\noriginal: %q\nprinted:\n%s", err, src, printed)
		}
		if _, err := sema.Analyze(file2); err != nil {
			t.Fatalf("reparsed program fails sema: %v\nprinted:\n%s", err, printed)
		}
	})
}
