// Package parser implements a recursive-descent parser for MiniFortran.
//
// The grammar is line-oriented: every statement ends at a newline (or a
// `&` continuation). Declarations precede executable statements inside
// each program unit. The parser recovers from errors by skipping to the
// next statement boundary, so a single pass reports multiple diagnostics.
package parser

import (
	"fmt"
	"strconv"
	"strings"

	"ipcp/internal/mf/ast"
	"ipcp/internal/mf/lexer"
	"ipcp/internal/mf/token"
)

// Error is a syntax error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: syntax error: %s", e.Pos, e.Msg) }

// ErrorList is a non-empty collection of syntax errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	if len(l) == 1 {
		return l[0].Error()
	}
	msgs := make([]string, len(l))
	for i, e := range l {
		msgs[i] = e.Error()
	}
	return fmt.Sprintf("%d syntax errors:\n%s", len(l), strings.Join(msgs, "\n"))
}

// Parse parses a MiniFortran source file. On failure it returns the
// partial AST together with an ErrorList.
func Parse(src string) (*ast.File, error) {
	lx := lexer.New(src)
	p := &parser{toks: lx.All()}
	for _, le := range lx.Errors() {
		p.errs = append(p.errs, &Error{Pos: le.Pos, Msg: le.Msg})
	}
	file := p.parseFile()
	if len(p.errs) > 0 {
		return file, p.errs
	}
	return file, nil
}

type parser struct {
	toks []token.Token
	pos  int
	errs ErrorList
}

// bailout is panicked on unrecoverable per-statement errors; recovery
// resynchronizes at the next statement.
type bailout struct{}

func (p *parser) cur() token.Token { return p.toks[p.pos] }
func (p *parser) kind() token.Kind { return p.toks[p.pos].Kind }
func (p *parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.kind() == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// fail records an error and aborts the current statement.
func (p *parser) fail(format string, args ...any) {
	p.errorf(p.cur().Pos, format, args...)
	panic(bailout{})
}

func (p *parser) expect(k token.Kind) token.Token {
	if !p.at(k) {
		p.fail("expected %s, found %s", k, p.cur())
	}
	return p.next()
}

// endOfStatement consumes the statement terminator (NEWLINE or EOF).
func (p *parser) endOfStatement() {
	if p.at(token.EOF) {
		return
	}
	p.expect(token.NEWLINE)
}

// syncStatement skips tokens until the start of the next statement.
func (p *parser) syncStatement() {
	for !p.at(token.EOF) && !p.at(token.NEWLINE) {
		p.next()
	}
	p.accept(token.NEWLINE)
}

// ---------------------------------------------------------------------------
// File and unit structure

func (p *parser) parseFile() *ast.File {
	file := &ast.File{}
	p.accept(token.NEWLINE)
	for !p.at(token.EOF) {
		u := p.parseUnit()
		if u != nil {
			file.Units = append(file.Units, u)
		}
		p.accept(token.NEWLINE)
	}
	return file
}

// parseUnit parses one program unit; it returns nil after an
// unrecoverable header error.
func (p *parser) parseUnit() (unit *ast.Unit) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); !ok {
				panic(r)
			}
			// Skip forward to the end of the broken unit.
			for !p.at(token.EOF) {
				if p.at(token.END) && (p.peek().Kind == token.NEWLINE || p.peek().Kind == token.EOF) {
					p.next()
					p.accept(token.NEWLINE)
					break
				}
				p.next()
			}
			unit = nil
		}
	}()

	pos := p.cur().Pos
	u := &ast.Unit{UnitPos: pos}
	switch p.kind() {
	case token.PROGRAM:
		p.next()
		u.Kind = ast.ProgramUnit
		u.Name = p.expect(token.IDENT).Text
		p.endOfStatement()
	case token.SUBROUTINE:
		p.next()
		u.Kind = ast.SubroutineUnit
		u.Name = p.expect(token.IDENT).Text
		u.Params = p.parseParamList()
		p.endOfStatement()
	case token.INTEGER, token.REAL, token.LOGICAL:
		bt := baseTypeOf(p.kind())
		if p.peek().Kind != token.FUNCTION {
			p.fail("expected program unit header, found %s", p.cur())
		}
		p.next() // type
		p.next() // FUNCTION
		u.Kind = ast.FunctionUnit
		u.ResultType = bt
		u.Name = p.expect(token.IDENT).Text
		u.Params = p.parseParamList()
		p.endOfStatement()
	default:
		p.fail("expected PROGRAM, SUBROUTINE, or FUNCTION, found %s", p.cur())
	}

	u.Decls = p.parseDecls()
	u.Body = p.parseStmtsUntil(unitEnd)
	// Consume the END line.
	p.expect(token.END)
	p.accept(token.IDENT) // optional `END SUBNAME` style is tolerated
	p.endOfStatement()
	return u
}

func baseTypeOf(k token.Kind) ast.BaseType {
	switch k {
	case token.INTEGER:
		return ast.Integer
	case token.REAL:
		return ast.Real
	case token.LOGICAL:
		return ast.Logical
	}
	return ast.NoType
}

func (p *parser) parseParamList() []string {
	var params []string
	if !p.accept(token.LPAREN) {
		return nil
	}
	if p.accept(token.RPAREN) {
		return nil
	}
	for {
		params = append(params, p.expect(token.IDENT).Text)
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.RPAREN)
	return params
}

// ---------------------------------------------------------------------------
// Declarations

func (p *parser) parseDecls() []ast.Decl {
	var decls []ast.Decl
	for {
		var d ast.Decl
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(bailout); !ok {
						panic(r)
					}
					p.syncStatement()
					d = nil
				}
			}()
			d = p.parseDecl()
		}()
		if d == nil {
			if len(p.errs) == 0 || !p.isDeclStart() {
				break
			}
			continue
		}
		decls = append(decls, d)
	}
	return decls
}

func (p *parser) isDeclStart() bool {
	switch p.kind() {
	case token.DIMENSION, token.COMMON, token.PARAMETER, token.IMPLICIT, token.DATA:
		return true
	case token.INTEGER, token.REAL, token.LOGICAL:
		return true
	}
	return false
}

// parseDecl parses one declaration statement, or returns nil when the
// next statement is executable.
func (p *parser) parseDecl() ast.Decl {
	pos := p.cur().Pos
	switch p.kind() {
	case token.INTEGER, token.REAL, token.LOGICAL:
		bt := baseTypeOf(p.next().Kind)
		d := &ast.TypeDecl{Type: bt, Items: p.parseDeclarators(), TypePos: pos}
		p.endOfStatement()
		return d
	case token.DIMENSION:
		p.next()
		d := &ast.DimensionDecl{Items: p.parseDeclarators(), DimPos: pos}
		p.endOfStatement()
		return d
	case token.COMMON:
		p.next()
		p.expect(token.SLASH)
		name := p.expect(token.IDENT).Text
		p.expect(token.SLASH)
		d := &ast.CommonDecl{Block: name, Items: p.parseDeclarators(), CommonPos: pos}
		p.endOfStatement()
		return d
	case token.PARAMETER:
		p.next()
		p.expect(token.LPAREN)
		d := &ast.ParameterDecl{ParamPos: pos}
		for {
			d.Names = append(d.Names, p.expect(token.IDENT).Text)
			p.expect(token.ASSIGN)
			d.Values = append(d.Values, p.parseExpr())
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RPAREN)
		p.endOfStatement()
		return d
	case token.IMPLICIT:
		p.next()
		p.expect(token.NONE)
		p.endOfStatement()
		return &ast.ImplicitNoneDecl{ImplicitPos: pos}
	case token.DATA:
		p.next()
		d := &ast.DataDecl{DataPos: pos}
		for {
			d.Names = append(d.Names, p.expect(token.IDENT).Text)
			p.expect(token.SLASH)
			d.Values = append(d.Values, p.parseSignedLiteral())
			p.expect(token.SLASH)
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.endOfStatement()
		return d
	}
	return nil
}

func (p *parser) parseDeclarators() []*ast.Declarator {
	var items []*ast.Declarator
	for {
		nameTok := p.expect(token.IDENT)
		d := &ast.Declarator{Name: nameTok.Text, NamePos: nameTok.Pos}
		if p.accept(token.LPAREN) {
			for {
				d.Dims = append(d.Dims, p.parseExpr())
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
		}
		items = append(items, d)
		if !p.accept(token.COMMA) {
			return items
		}
	}
}

func (p *parser) parseSignedLiteral() ast.Expr {
	pos := p.cur().Pos
	neg := false
	if p.accept(token.MINUS) {
		neg = true
	} else {
		p.accept(token.PLUS)
	}
	var e ast.Expr
	switch p.kind() {
	case token.INTLIT:
		v, _ := strconv.ParseInt(p.next().Text, 10, 64)
		e = &ast.IntLit{Value: v, LitPos: pos}
	case token.REALLIT:
		t := p.next()
		v, _ := strconv.ParseFloat(t.Text, 64)
		e = &ast.RealLit{Value: v, Text: t.Text, LitPos: pos}
	default:
		p.fail("expected literal in DATA value, found %s", p.cur())
	}
	if neg {
		e = &ast.UnaryExpr{Op: ast.Neg, X: e, OpPos: pos}
	}
	return e
}

// ---------------------------------------------------------------------------
// Statements

// terminator describes what token sequence ends a statement list.
type terminator int

const (
	unitEnd    terminator = iota // END (of unit)
	ifEnd                        // ELSE / ELSEIF / ENDIF / END IF
	doEnd                        // ENDDO / END DO
	labeledEnd                   // statement carrying a specific label
)

// atTerminator reports whether the current token starts the given block
// terminator. For END IF / END DO the two-token spelling is recognized.
func (p *parser) atTerminator(t terminator) bool {
	switch t {
	case unitEnd:
		return p.at(token.END) && p.peek().Kind != token.IF && p.peek().Kind != token.DO
	case ifEnd:
		if p.at(token.ELSE) || p.at(token.ELSEIF) || p.at(token.ENDIF) {
			return true
		}
		return p.at(token.END) && p.peek().Kind == token.IF
	case doEnd:
		if p.at(token.ENDDO) {
			return true
		}
		return p.at(token.END) && p.peek().Kind == token.DO
	}
	return false
}

// parseStmtsUntil parses statements until the terminator is at the front
// of the input (which is left unconsumed).
func (p *parser) parseStmtsUntil(t terminator) []ast.Stmt {
	var stmts []ast.Stmt
	for !p.at(token.EOF) && !p.atTerminator(t) && !p.atTerminator(unitEnd) {
		s := p.parseStmtRecover()
		if s != nil {
			stmts = append(stmts, s)
		}
	}
	return stmts
}

func (p *parser) parseStmtRecover() (s ast.Stmt) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); !ok {
				panic(r)
			}
			p.syncStatement()
			s = nil
		}
	}()
	return p.parseStmt()
}

func (p *parser) parseStmt() ast.Stmt {
	label := 0
	if p.at(token.INTLIT) {
		v, err := strconv.Atoi(p.cur().Text)
		if err != nil || v <= 0 {
			p.fail("invalid statement label %q", p.cur().Text)
		}
		label = v
		p.next()
	}
	s := p.parseUnlabeledStmt()
	if label != 0 {
		s.SetLabel(label)
	}
	return s
}

func (p *parser) parseUnlabeledStmt() ast.Stmt {
	pos := p.cur().Pos
	switch p.kind() {
	case token.IF:
		return p.parseIf(pos)
	case token.DO:
		return p.parseDo(pos)
	case token.GOTO:
		p.next()
		t, err := strconv.Atoi(p.expect(token.INTLIT).Text)
		if err != nil {
			p.fail("invalid GOTO target")
		}
		p.endOfStatement()
		return &ast.GotoStmt{Target: t, GotoPos: pos}
	case token.CONTINUE:
		p.next()
		p.endOfStatement()
		return &ast.ContinueStmt{ContinuePos: pos}
	case token.CALL:
		s := p.parseCall(pos)
		p.endOfStatement()
		return s
	case token.RETURN:
		p.next()
		p.endOfStatement()
		return &ast.ReturnStmt{ReturnPos: pos}
	case token.STOP:
		p.next()
		p.accept(token.INTLIT) // optional stop code, ignored
		p.endOfStatement()
		return &ast.StopStmt{StopPos: pos}
	case token.READ:
		return p.parseRead(pos)
	case token.WRITE, token.PRINT:
		return p.parseWrite(pos)
	case token.IDENT:
		s := p.parseAssign()
		p.endOfStatement()
		return s
	}
	p.fail("expected statement, found %s", p.cur())
	return nil
}

func (p *parser) parseAssign() *ast.AssignStmt {
	nameTok := p.expect(token.IDENT)
	lhs := &ast.VarRef{Name: nameTok.Text, NamePos: nameTok.Pos}
	if p.accept(token.LPAREN) {
		for {
			lhs.Indexes = append(lhs.Indexes, p.parseExpr())
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RPAREN)
	}
	p.expect(token.ASSIGN)
	rhs := p.parseExpr()
	return &ast.AssignStmt{LHS: lhs, RHS: rhs}
}

func (p *parser) parseCall(pos token.Pos) *ast.CallStmt {
	p.expect(token.CALL)
	name := p.expect(token.IDENT).Text
	s := &ast.CallStmt{Name: name, CallPos: pos}
	if p.accept(token.LPAREN) {
		if !p.accept(token.RPAREN) {
			for {
				s.Args = append(s.Args, p.parseExpr())
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
		}
	}
	return s
}

// parseIf parses both block IF (… THEN) and logical IF forms.
func (p *parser) parseIf(pos token.Pos) ast.Stmt {
	p.expect(token.IF)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)

	if !p.at(token.THEN) {
		// Logical IF: one action statement on the same line.
		action := p.parseLogicalIfAction()
		p.endOfStatement()
		return &ast.LogicalIfStmt{Cond: cond, Stmt: action, IfPos: pos}
	}
	p.next() // THEN
	p.endOfStatement()

	s := &ast.IfStmt{Cond: cond, IfPos: pos}
	s.Then = p.parseStmtsUntil(ifEnd)
	switch {
	case p.at(token.ELSEIF):
		elsePos := p.cur().Pos
		p.next()
		nested := p.parseElseIfChain(elsePos)
		s.Else = []ast.Stmt{nested}
	case p.at(token.ELSE) && p.peek().Kind == token.IF:
		elsePos := p.cur().Pos
		p.next() // ELSE
		nested := p.parseElseIfChain(elsePos)
		s.Else = []ast.Stmt{nested}
	case p.at(token.ELSE):
		p.next()
		p.endOfStatement()
		s.Else = p.parseStmtsUntil(ifEnd)
		p.expectEndIf()
	default:
		p.expectEndIf()
	}
	return s
}

// parseElseIfChain parses `… (cond) THEN body [ELSE…] ` after an ELSEIF
// or ELSE IF has been recognized (with ELSEIF consumed, or ELSE consumed
// and IF pending).
func (p *parser) parseElseIfChain(pos token.Pos) *ast.IfStmt {
	p.accept(token.IF) // present in the `ELSE IF` spelling
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	p.expect(token.THEN)
	p.endOfStatement()

	s := &ast.IfStmt{Cond: cond, IfPos: pos}
	s.Then = p.parseStmtsUntil(ifEnd)
	switch {
	case p.at(token.ELSEIF):
		elsePos := p.cur().Pos
		p.next()
		s.Else = []ast.Stmt{p.parseElseIfChain(elsePos)}
	case p.at(token.ELSE) && p.peek().Kind == token.IF:
		elsePos := p.cur().Pos
		p.next()
		s.Else = []ast.Stmt{p.parseElseIfChain(elsePos)}
	case p.at(token.ELSE):
		p.next()
		p.endOfStatement()
		s.Else = p.parseStmtsUntil(ifEnd)
		p.expectEndIf()
	default:
		p.expectEndIf()
	}
	return s
}

func (p *parser) expectEndIf() {
	if p.accept(token.ENDIF) {
		p.endOfStatement()
		return
	}
	p.expect(token.END)
	p.expect(token.IF)
	p.endOfStatement()
}

func (p *parser) parseLogicalIfAction() ast.Stmt {
	pos := p.cur().Pos
	switch p.kind() {
	case token.GOTO:
		p.next()
		t, err := strconv.Atoi(p.expect(token.INTLIT).Text)
		if err != nil {
			p.fail("invalid GOTO target")
		}
		return &ast.GotoStmt{Target: t, GotoPos: pos}
	case token.CALL:
		return p.parseCall(pos)
	case token.RETURN:
		p.next()
		return &ast.ReturnStmt{ReturnPos: pos}
	case token.STOP:
		p.next()
		p.accept(token.INTLIT)
		return &ast.StopStmt{StopPos: pos}
	case token.CONTINUE:
		p.next()
		return &ast.ContinueStmt{ContinuePos: pos}
	case token.IDENT:
		return p.parseAssign()
	}
	p.fail("expected action statement after logical IF, found %s", p.cur())
	return nil
}

func (p *parser) parseDo(pos token.Pos) ast.Stmt {
	p.expect(token.DO)

	if p.at(token.WHILE) {
		p.next()
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		p.endOfStatement()
		s := &ast.DoWhileStmt{Cond: cond, DoPos: pos}
		s.Body = p.parseStmtsUntil(doEnd)
		p.expectEndDo()
		return s
	}

	endLabel := 0
	if p.at(token.INTLIT) {
		v, err := strconv.Atoi(p.next().Text)
		if err != nil || v <= 0 {
			p.fail("invalid DO label")
		}
		endLabel = v
	}
	v := p.expect(token.IDENT).Text
	p.expect(token.ASSIGN)
	lo := p.parseExpr()
	p.expect(token.COMMA)
	hi := p.parseExpr()
	var step ast.Expr
	if p.accept(token.COMMA) {
		step = p.parseExpr()
	}
	p.endOfStatement()

	s := &ast.DoStmt{Var: v, Lo: lo, Hi: hi, Step: step, EndLabel: endLabel, DoPos: pos}
	if endLabel == 0 {
		s.Body = p.parseStmtsUntil(doEnd)
		p.expectEndDo()
		return s
	}
	// Labeled DO: the body extends through the statement carrying the
	// end label (classically `<label> CONTINUE`), which stays in the body.
	for {
		if p.at(token.EOF) || p.atTerminator(unitEnd) {
			p.fail("labeled DO %d not terminated before unit END", endLabel)
		}
		st := p.parseStmtRecover()
		if st == nil {
			continue
		}
		s.Body = append(s.Body, st)
		if st.Label() == endLabel {
			return s
		}
	}
}

func (p *parser) expectEndDo() {
	if p.accept(token.ENDDO) {
		p.endOfStatement()
		return
	}
	p.expect(token.END)
	p.expect(token.DO)
	p.endOfStatement()
}

// parseRead parses `READ v`, `READ *, v`, and `READ(*,*) v1, v2`.
func (p *parser) parseRead(pos token.Pos) ast.Stmt {
	p.expect(token.READ)
	p.parseIOControl()
	s := &ast.ReadStmt{ReadPos: pos}
	for {
		nameTok := p.expect(token.IDENT)
		vr := &ast.VarRef{Name: nameTok.Text, NamePos: nameTok.Pos}
		if p.accept(token.LPAREN) {
			for {
				vr.Indexes = append(vr.Indexes, p.parseExpr())
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.RPAREN)
		}
		s.Targets = append(s.Targets, vr)
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.endOfStatement()
	return s
}

// parseWrite parses `WRITE(*,*) e, ...` and `PRINT *, e, ...`.
func (p *parser) parseWrite(pos token.Pos) ast.Stmt {
	p.next() // WRITE or PRINT
	p.parseIOControl()
	s := &ast.WriteStmt{WritePos: pos}
	if p.at(token.NEWLINE) || p.at(token.EOF) {
		p.endOfStatement()
		return s
	}
	for {
		s.Values = append(s.Values, p.parseExpr())
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.endOfStatement()
	return s
}

// parseIOControl consumes the optional `(*,*)` or `*,` unit/format
// control of READ/WRITE/PRINT.
func (p *parser) parseIOControl() {
	if p.accept(token.LPAREN) {
		p.expect(token.STAR)
		p.expect(token.COMMA)
		p.expect(token.STAR)
		p.expect(token.RPAREN)
		return
	}
	if p.accept(token.STAR) {
		p.expect(token.COMMA)
	}
}

// ---------------------------------------------------------------------------
// Expressions
//
// Precedence (low → high): .OR. < .AND. < .NOT. < relational < +,-
// (binary and leading unary) < *,/ < ** (right-assoc).

func (p *parser) parseExpr() ast.Expr { return p.parseOr() }

func (p *parser) parseOr() ast.Expr {
	x := p.parseAnd()
	for p.at(token.OR) {
		p.next()
		x = &ast.BinaryExpr{Op: ast.Or, X: x, Y: p.parseAnd()}
	}
	return x
}

func (p *parser) parseAnd() ast.Expr {
	x := p.parseNot()
	for p.at(token.AND) {
		p.next()
		x = &ast.BinaryExpr{Op: ast.And, X: x, Y: p.parseNot()}
	}
	return x
}

func (p *parser) parseNot() ast.Expr {
	if p.at(token.NOT) {
		pos := p.next().Pos
		return &ast.UnaryExpr{Op: ast.Not, X: p.parseNot(), OpPos: pos}
	}
	return p.parseRelational()
}

var relOps = map[token.Kind]ast.BinaryOp{
	token.EQ: ast.Eq, token.NE: ast.Ne, token.LT: ast.Lt,
	token.LE: ast.Le, token.GT: ast.Gt, token.GE: ast.Ge,
}

func (p *parser) parseRelational() ast.Expr {
	x := p.parseAdditive()
	if op, ok := relOps[p.kind()]; ok {
		p.next()
		return &ast.BinaryExpr{Op: op, X: x, Y: p.parseAdditive()}
	}
	return x
}

func (p *parser) parseAdditive() ast.Expr {
	var x ast.Expr
	// Leading sign binds the whole first term: -a*b parses as -(a*b)
	// per Fortran rules; the printer re-parenthesizes accordingly.
	if p.at(token.MINUS) {
		pos := p.next().Pos
		x = &ast.UnaryExpr{Op: ast.Neg, X: p.parseMultiplicative(), OpPos: pos}
	} else {
		p.accept(token.PLUS)
		x = p.parseMultiplicative()
	}
	for {
		switch p.kind() {
		case token.PLUS:
			p.next()
			x = &ast.BinaryExpr{Op: ast.Add, X: x, Y: p.parseMultiplicative()}
		case token.MINUS:
			p.next()
			x = &ast.BinaryExpr{Op: ast.Sub, X: x, Y: p.parseMultiplicative()}
		default:
			return x
		}
	}
}

func (p *parser) parseMultiplicative() ast.Expr {
	x := p.parsePower()
	for {
		switch p.kind() {
		case token.STAR:
			p.next()
			x = &ast.BinaryExpr{Op: ast.Mul, X: x, Y: p.parsePower()}
		case token.SLASH:
			p.next()
			x = &ast.BinaryExpr{Op: ast.Div, X: x, Y: p.parsePower()}
		default:
			return x
		}
	}
}

func (p *parser) parsePower() ast.Expr {
	x := p.parsePrimary()
	if p.at(token.POW) {
		p.next()
		// Right-associative: a**b**c = a**(b**c). A negative exponent
		// is allowed: a**-2.
		var y ast.Expr
		if p.at(token.MINUS) {
			pos := p.next().Pos
			y = &ast.UnaryExpr{Op: ast.Neg, X: p.parsePower(), OpPos: pos}
		} else {
			y = p.parsePower()
		}
		return &ast.BinaryExpr{Op: ast.Pow, X: x, Y: y}
	}
	return x
}

func (p *parser) parsePrimary() ast.Expr {
	pos := p.cur().Pos
	switch p.kind() {
	case token.INTLIT:
		t := p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			p.fail("integer literal %q out of range", t.Text)
		}
		return &ast.IntLit{Value: v, LitPos: pos}
	case token.REALLIT:
		t := p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			p.fail("malformed real literal %q", t.Text)
		}
		return &ast.RealLit{Value: v, Text: t.Text, LitPos: pos}
	case token.STRLIT:
		t := p.next()
		return &ast.StrLit{Value: t.Text, LitPos: pos}
	case token.TRUE:
		p.next()
		return &ast.LogicalLit{Value: true, LitPos: pos}
	case token.FALSE:
		p.next()
		return &ast.LogicalLit{Value: false, LitPos: pos}
	case token.LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return e
	case token.IDENT:
		t := p.next()
		ref := &ast.VarRef{Name: t.Text, NamePos: pos}
		if p.accept(token.LPAREN) {
			// Array reference or function call; semantic analysis
			// disambiguates.
			if !p.accept(token.RPAREN) {
				for {
					ref.Indexes = append(ref.Indexes, p.parseExpr())
					if !p.accept(token.COMMA) {
						break
					}
				}
				p.expect(token.RPAREN)
			}
		}
		return ref
	}
	p.fail("expected expression, found %s", p.cur())
	return nil
}
