package sema

import "testing"

// Battery of diagnostics: each source must produce an error containing
// the expected fragment.
func TestDiagnosticsBattery(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"array bound not constant", `
PROGRAM P
  INTEGER N
  INTEGER A(N)
END
`, "not a constant"},
		{"array bound negative", `
PROGRAM P
  INTEGER A(-3)
END
`, "must be positive"},
		{"array redeclared", `
PROGRAM P
  INTEGER A(5)
  DIMENSION A(6)
END
`, "redeclared"},
		{"function result array", `
INTEGER FUNCTION F(X)
  INTEGER X
  INTEGER F(10)
  RETURN
END
PROGRAM P
END
`, "cannot be an array"},
		{"common member count mismatch", `
PROGRAM P
  COMMON /B/ X, Y
END
SUBROUTINE S
  COMMON /B/ X, Y, Z
  RETURN
END
`, "members"},
		{"common name reuse", `
PROGRAM P
  INTEGER X
  COMMON /B/ X
END
`, "fresh names"},
		{"parameter not constant", `
PROGRAM P
  INTEGER V
  PARAMETER (N = V)
END
`, "not a constant"},
		{"duplicate parameter decl", `
PROGRAM P
  INTEGER N
  PARAMETER (N = 1)
END
`, "already declared"},
		{"data on array", `
PROGRAM P
  INTEGER A(3)
  DATA A /1/
END
`, "arrays"},
		{"data on parameter", `
PROGRAM P
  PARAMETER (N = 1)
  DATA N /2/
END
`, "cannot initialize"},
		{"subscripted parameter", `
PROGRAM P
  PARAMETER (N = 1)
  INTEGER X
  X = N(2)
END
`, "N"},
		{"call function as subroutine", `
PROGRAM P
  CALL F(1)
END
INTEGER FUNCTION F(X)
  INTEGER X
  F = X
  RETURN
END
`, "not a SUBROUTINE"},
		{"intrinsic arity", `
PROGRAM P
  INTEGER X
  X = MOD(1)
END
`, "MOD"},
		{"intrinsic logical arg", `
PROGRAM P
  INTEGER X
  X = MOD(1, .TRUE.)
END
`, "arithmetic"},
		{"unary minus on logical", `
PROGRAM P
  INTEGER X
  X = -.TRUE.
END
`, "arithmetic operand"},
		{"not on integer", `
PROGRAM P
  LOGICAL L
  L = .NOT. 3
END
`, "LOGICAL operand"},
		{"relational on logical", `
PROGRAM P
  LOGICAL L
  L = .TRUE. .LT. .FALSE.
END
`, "arithmetic operands"},
		{"do while condition type", `
PROGRAM P
  INTEGER N
  DO WHILE (N)
    N = N - 1
  ENDDO
END
`, "must be LOGICAL"},
		{"do variable array", `
PROGRAM P
  INTEGER A(3)
  DO A = 1, 3
  ENDDO
END
`, "array"},
		{"do bound type", `
PROGRAM P
  INTEGER I
  DO I = 1, 2.5
  ENDDO
END
`, "must be INTEGER"},
		{"call with function in expression position", `
PROGRAM P
  INTEGER X
  X = S(1)
END
SUBROUTINE S(A)
  INTEGER A
  RETURN
END
`, "only FUNCTIONs"},
		{"undefined function", `
PROGRAM P
  INTEGER X, Y
  X = NOFUNC(Y)
END
`, "NOFUNC"},
		{"scalar with subscripts", `
PROGRAM P
  INTEGER X, Y
  X = 1
  Y = X(2)
END
`, "X"},
		{"implicit none on data", `
PROGRAM P
  IMPLICIT NONE
  DATA Q /1/
END
`, "IMPLICIT NONE"},
		{"scalar actual to array formal", `
PROGRAM P
  INTEGER X
  CALL S(X)
END
SUBROUTINE S(A)
  INTEGER A(5)
  RETURN
END
`, "array formal"},
		{"array actual to scalar formal", `
PROGRAM P
  INTEGER A(5)
  CALL S(A)
END
SUBROUTINE S(X)
  INTEGER X
  RETURN
END
`, "scalar formal bound to an array"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			analyzeExpectError(t, tc.src, tc.want)
		})
	}
}

// Valid corner cases that must NOT error.
func TestAcceptedCorners(t *testing.T) {
	srcs := []string{
		// Function result assigned through multiple paths.
		`
INTEGER FUNCTION PICK(A, B, C)
  INTEGER A, B, C
  IF (A .GT. 0) THEN
    PICK = B
  ELSE
    PICK = C
  ENDIF
  RETURN
END
PROGRAM P
  INTEGER X
  X = PICK(1, 2, 3)
END
`,
		// COMMON member refined by later type statement, array via
		// DIMENSION.
		`
PROGRAM P
  COMMON /B/ N, ARR
  INTEGER N
  DIMENSION ARR(10)
  INTEGER ARR
  N = 1
  ARR(1) = 2
END
`,
		// Negative DATA values, real PARAMETER.
		`
PROGRAM P
  INTEGER N
  REAL X
  PARAMETER (PI = 3.14159)
  DATA N /-5/, X /-1.5/
  N = N + 1
END
`,
		// Intrinsics in every position.
		`
PROGRAM P
  INTEGER I, J
  REAL X
  I = MAX(1, 2, 3) + MIN0(4, 5) + IABS(-2) + MOD(9, 4)
  X = ABS(-1.5)
  J = MAX(I, 7)
END
`,
		// Logical IF with CALL; empty WRITE.
		`
PROGRAM P
  INTEGER N
  N = 1
  IF (N .GT. 0) CALL S(N)
  WRITE(*,*)
END
SUBROUTINE S(A)
  INTEGER A
  RETURN
END
`,
	}
	for i, src := range srcs {
		if p := analyze(t, src); p == nil {
			t.Errorf("case %d rejected", i)
		}
	}
}
