// Package sema performs semantic analysis of a parsed MiniFortran file:
// it builds per-unit symbol tables, applies FORTRAN implicit typing,
// resolves COMMON blocks to program-wide global variables, folds
// PARAMETER constants, disambiguates the `name(args)` syntax between
// array references and function calls, and type-checks every expression
// and statement.
//
// The result (Program) is the input to IR construction and carries the
// side tables the lowerer needs: resolved symbols per variable
// reference, call targets per call expression, and the type of every
// expression.
package sema

import (
	"fmt"
	"strings"

	"ipcp/internal/mf/ast"
	"ipcp/internal/mf/token"
)

// Error is a semantic error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList is a non-empty collection of semantic errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	if len(l) == 1 {
		return l[0].Error()
	}
	msgs := make([]string, len(l))
	for i, e := range l {
		msgs[i] = e.Error()
	}
	return fmt.Sprintf("%d semantic errors:\n%s", len(l), strings.Join(msgs, "\n"))
}

// SymbolKind classifies the names visible inside one program unit.
type SymbolKind int

// Symbol kinds.
const (
	ParamSym     SymbolKind = iota // formal parameter (by reference)
	LocalSym                       // local variable
	GlobalSym                      // COMMON block member
	ConstSym                       // PARAMETER constant
	ResultSym                      // function result variable
	ProcedureSym                   // a SUBROUTINE or FUNCTION name
)

func (k SymbolKind) String() string {
	switch k {
	case ParamSym:
		return "parameter"
	case LocalSym:
		return "local"
	case GlobalSym:
		return "global"
	case ConstSym:
		return "constant"
	case ResultSym:
		return "result"
	case ProcedureSym:
		return "procedure"
	}
	return "symbol"
}

// Symbol is one resolved name within a program unit.
type Symbol struct {
	Name string
	Kind SymbolKind
	Type ast.BaseType

	Dims []int64 // array dimensions (nil for scalars)

	ParamIndex int     // ParamSym: 0-based position in the formal list
	Global     *Global // GlobalSym: the program-wide global this maps to

	// ConstSym: the folded compile-time value.
	ConstInt  int64
	ConstReal float64

	// DATA initialization (PROGRAM unit only). When HasInit is set the
	// lowerer emits an assignment at entry.
	HasInit  bool
	InitInt  int64
	InitReal float64
}

// IsArray reports whether the symbol names an array.
func (s *Symbol) IsArray() bool { return len(s.Dims) > 0 }

// Size returns the total element count of an array symbol (1 for
// scalars).
func (s *Symbol) Size() int64 {
	n := int64(1)
	for _, d := range s.Dims {
		n *= d
	}
	return n
}

// Global is a program-wide variable: one member of a COMMON block.
// Identity is (Block, Index); the canonical Name comes from the first
// unit that declares the block.
type Global struct {
	ID    int // dense index over all globals in the program
	Block string
	Index int // position within the block
	Name  string
	Type  ast.BaseType
	Dims  []int64
}

// IsArray reports whether the global is an array.
func (g *Global) IsArray() bool { return len(g.Dims) > 0 }

// String returns "BLOCK.NAME".
func (g *Global) String() string { return g.Block + "." + g.Name }

// Intrinsic describes a built-in pure function.
type Intrinsic struct {
	Name    string
	MinArgs int
	MaxArgs int // -1 for unbounded (MIN/MAX)
	// IntOnly intrinsics require and return INTEGER; otherwise the
	// result type is the promoted argument type.
	IntOnly bool
}

// Intrinsics is the table of supported built-in functions.
var Intrinsics = map[string]*Intrinsic{
	"MOD":  {Name: "MOD", MinArgs: 2, MaxArgs: 2, IntOnly: true},
	"IABS": {Name: "IABS", MinArgs: 1, MaxArgs: 1, IntOnly: true},
	"ABS":  {Name: "ABS", MinArgs: 1, MaxArgs: 1},
	"MIN":  {Name: "MIN", MinArgs: 2, MaxArgs: -1},
	"MAX":  {Name: "MAX", MinArgs: 2, MaxArgs: -1},
	"MIN0": {Name: "MIN0", MinArgs: 2, MaxArgs: -1, IntOnly: true},
	"MAX0": {Name: "MAX0", MinArgs: 2, MaxArgs: -1, IntOnly: true},
}

// CallTarget is the resolved callee of a CallExpr or CallStmt.
type CallTarget struct {
	Unit      *UnitInfo  // user procedure, nil for intrinsics
	Intrinsic *Intrinsic // nil for user procedures
}

// UnitInfo is the semantic summary of one program unit.
type UnitInfo struct {
	Unit    *ast.Unit
	Name    string
	Symbols map[string]*Symbol
	Params  []*Symbol // in declaration order
	Result  *Symbol   // function result, nil for PROGRAM/SUBROUTINE

	// CommonVars lists this unit's GlobalSym symbols in declaration
	// order (the unit's view of the COMMON blocks it declares).
	CommonVars []*Symbol

	implicitNone bool
}

// IsFunction reports whether the unit is a FUNCTION.
func (u *UnitInfo) IsFunction() bool { return u.Unit.Kind == ast.FunctionUnit }

// Program is the fully analyzed file.
type Program struct {
	File  *ast.File
	Units []*UnitInfo
	Main  *UnitInfo

	// UnitByName maps upper-cased unit names to their info.
	UnitByName map[string]*UnitInfo

	// Globals lists every COMMON member in the whole program, densely
	// numbered (Global.ID indexes this slice).
	Globals []*Global

	// RefSym resolves each variable reference (including assignment
	// targets and READ targets) to its symbol.
	RefSym map[*ast.VarRef]*Symbol

	// CallTargets resolves each rewritten CallExpr and each CallStmt.
	CallTargets map[ast.Node]*CallTarget

	// ExprType records the computed type of every expression.
	ExprType map[ast.Expr]ast.BaseType
}

// Analyze performs semantic analysis on file. On failure it returns the
// partial Program along with an ErrorList.
func Analyze(file *ast.File) (*Program, error) {
	c := &checker{
		prog: &Program{
			File:        file,
			UnitByName:  make(map[string]*UnitInfo),
			RefSym:      make(map[*ast.VarRef]*Symbol),
			CallTargets: make(map[ast.Node]*CallTarget),
			ExprType:    make(map[ast.Expr]ast.BaseType),
		},
		blocks: make(map[string][]*Global),
	}
	c.run()
	if len(c.errs) > 0 {
		return c.prog, c.errs
	}
	return c.prog, nil
}

type checker struct {
	prog   *Program
	blocks map[string][]*Global // COMMON block layouts by name
	errs   ErrorList

	// Per-unit state while checking one unit.
	unit *UnitInfo
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// implicitType applies the FORTRAN implicit typing rule: names starting
// with I..N are INTEGER, all others REAL.
func implicitType(name string) ast.BaseType {
	if name == "" {
		return ast.Real
	}
	if c := name[0]; c >= 'I' && c <= 'N' {
		return ast.Integer
	}
	return ast.Real
}

func (c *checker) run() {
	// Pass 1: register all unit names so calls can resolve forward.
	mainCount := 0
	for _, u := range c.prog.File.Units {
		info := &UnitInfo{Unit: u, Name: u.Name, Symbols: make(map[string]*Symbol)}
		if prev, dup := c.prog.UnitByName[u.Name]; dup {
			c.errorf(u.Pos(), "duplicate program unit name %s (first at %s)", u.Name, prev.Unit.Pos())
			continue
		}
		c.prog.UnitByName[u.Name] = info
		c.prog.Units = append(c.prog.Units, info)
		if u.Kind == ast.ProgramUnit {
			mainCount++
			c.prog.Main = info
		}
	}
	if mainCount == 0 {
		c.errorf(token.Pos{Line: 1, Col: 1}, "no PROGRAM unit")
	} else if mainCount > 1 {
		c.errorf(c.prog.Main.Unit.Pos(), "multiple PROGRAM units")
	}

	// Pass 2: declarations (symbol tables, COMMON layouts, PARAMETERs).
	for _, info := range c.prog.Units {
		c.unit = info
		c.declareUnit(info)
	}
	// Pass 3: bodies (resolution + type checking).
	for _, info := range c.prog.Units {
		c.unit = info
		c.checkBody(info)
	}
}

// ---------------------------------------------------------------------------
// Declarations

func (c *checker) declareUnit(info *UnitInfo) {
	u := info.Unit

	// Formal parameters first; types may be refined by type statements.
	for i, p := range u.Params {
		if _, dup := info.Symbols[p]; dup {
			c.errorf(u.Pos(), "duplicate formal parameter %s in %s", p, u.Name)
			continue
		}
		sym := &Symbol{Name: p, Kind: ParamSym, Type: implicitType(p), ParamIndex: i}
		info.Symbols[p] = sym
		info.Params = append(info.Params, sym)
	}
	// Function result variable: same name as the unit.
	if u.Kind == ast.FunctionUnit {
		rt := u.ResultType
		if rt == ast.NoType {
			rt = implicitType(u.Name)
		}
		sym := &Symbol{Name: u.Name, Kind: ResultSym, Type: rt}
		info.Symbols[u.Name] = sym
		info.Result = sym
	}

	for _, d := range u.Decls {
		switch d := d.(type) {
		case *ast.ImplicitNoneDecl:
			info.implicitNone = true
		case *ast.TypeDecl:
			c.declareTyped(info, d)
		case *ast.DimensionDecl:
			for _, item := range d.Items {
				c.declareVar(info, item, ast.NoType)
			}
		case *ast.CommonDecl:
			c.declareCommon(info, d)
		case *ast.ParameterDecl:
			c.declareParameters(info, d)
		case *ast.DataDecl:
			c.declareData(info, d)
		}
	}

	if info.implicitNone {
		for _, p := range info.Params {
			if p.Type == ast.NoType {
				c.errorf(u.Pos(), "IMPLICIT NONE: parameter %s of %s has no declared type", p.Name, u.Name)
			}
		}
	}
}

// declareTyped handles `INTEGER a, b(10)` style statements.
func (c *checker) declareTyped(info *UnitInfo, d *ast.TypeDecl) {
	for _, item := range d.Items {
		c.declareVar(info, item, d.Type)
	}
}

// declareVar declares or refines one name from a type or DIMENSION
// statement. typ is NoType for DIMENSION.
func (c *checker) declareVar(info *UnitInfo, item *ast.Declarator, typ ast.BaseType) {
	dims := c.foldDims(info, item)
	if sym, exists := info.Symbols[item.Name]; exists {
		// Refinement of an already-declared name (parameter, result, or
		// COMMON member declared earlier).
		if typ != ast.NoType {
			sym.Type = typ
		}
		if len(dims) > 0 {
			if sym.IsArray() {
				c.errorf(item.Pos(), "array %s redeclared", item.Name)
			}
			if sym.Kind == ResultSym {
				c.errorf(item.Pos(), "function result %s cannot be an array", item.Name)
				return
			}
			sym.Dims = dims
			if sym.Kind == GlobalSym && sym.Global != nil {
				sym.Global.Dims = dims
			}
		}
		if sym.Kind == GlobalSym && sym.Global != nil && typ != ast.NoType {
			sym.Global.Type = typ
		}
		return
	}
	t := typ
	if t == ast.NoType {
		t = implicitType(item.Name)
	}
	info.Symbols[item.Name] = &Symbol{Name: item.Name, Kind: LocalSym, Type: t, Dims: dims}
}

func (c *checker) foldDims(info *UnitInfo, item *ast.Declarator) []int64 {
	if len(item.Dims) == 0 {
		return nil
	}
	dims := make([]int64, 0, len(item.Dims))
	for _, e := range item.Dims {
		v, ok := c.evalConstInt(info, e)
		if !ok {
			c.errorf(e.Pos(), "array bound of %s is not a constant integer expression", item.Name)
			v = 1
		}
		if v < 1 {
			c.errorf(e.Pos(), "array bound of %s must be positive, got %d", item.Name, v)
			v = 1
		}
		dims = append(dims, v)
	}
	return dims
}

func (c *checker) declareCommon(info *UnitInfo, d *ast.CommonDecl) {
	layout, seen := c.blocks[d.Block]
	for i, item := range d.Items {
		dims := c.foldDims(info, item)
		t := ast.NoType

		var g *Global
		if seen {
			if i >= len(layout) {
				c.errorf(item.Pos(), "COMMON /%s/ declares %d members here but %d elsewhere", d.Block, len(d.Items), len(layout))
				break
			}
			g = layout[i]
			// Positional agreement: scalar/array kind must match.
			if (len(dims) > 0) != g.IsArray() {
				c.errorf(item.Pos(), "COMMON /%s/ member %d: %s is %s here but %s in the defining unit",
					d.Block, i+1, item.Name, kindWord(len(dims) > 0), kindWord(g.IsArray()))
			}
		} else {
			t = implicitType(item.Name)
			g = &Global{
				ID:    len(c.prog.Globals),
				Block: d.Block,
				Index: i,
				Name:  item.Name,
				Type:  t,
				Dims:  dims,
			}
			c.prog.Globals = append(c.prog.Globals, g)
			layout = append(layout, g)
		}

		if _, dup := info.Symbols[item.Name]; dup {
			c.errorf(item.Pos(), "%s already declared in %s; COMMON members must be fresh names", item.Name, info.Name)
			continue
		}
		sym := &Symbol{Name: item.Name, Kind: GlobalSym, Type: g.Type, Dims: g.Dims, Global: g}
		if !seen {
			sym.Dims = dims
		}
		info.Symbols[item.Name] = sym
		info.CommonVars = append(info.CommonVars, sym)
	}
	if !seen {
		c.blocks[d.Block] = layout
	}
	_ = d.CommonPos
}

func kindWord(isArray bool) string {
	if isArray {
		return "an array"
	}
	return "a scalar"
}

func (c *checker) declareParameters(info *UnitInfo, d *ast.ParameterDecl) {
	for i, name := range d.Names {
		if _, dup := info.Symbols[name]; dup {
			c.errorf(d.Pos(), "PARAMETER %s already declared in %s", name, info.Name)
			continue
		}
		sym := &Symbol{Name: name, Kind: ConstSym, Type: implicitType(name)}
		switch sym.Type {
		case ast.Integer:
			v, ok := c.evalConstInt(info, d.Values[i])
			if !ok {
				c.errorf(d.Values[i].Pos(), "PARAMETER %s value is not a constant integer expression", name)
			}
			sym.ConstInt = v
		default:
			v, ok := c.evalConstReal(info, d.Values[i])
			if !ok {
				c.errorf(d.Values[i].Pos(), "PARAMETER %s value is not a constant expression", name)
			}
			sym.ConstReal = v
		}
		info.Symbols[name] = sym
	}
}

func (c *checker) declareData(info *UnitInfo, d *ast.DataDecl) {
	if info.Unit.Kind != ast.ProgramUnit {
		c.errorf(d.Pos(), "DATA is only supported in the PROGRAM unit (it lowers to entry assignments)")
		return
	}
	for i, name := range d.Names {
		sym, ok := info.Symbols[name]
		if !ok {
			// Implicitly declare the local being initialized.
			if info.implicitNone {
				c.errorf(d.Pos(), "IMPLICIT NONE: %s in DATA has no declared type", name)
				continue
			}
			sym = &Symbol{Name: name, Kind: LocalSym, Type: implicitType(name)}
			info.Symbols[name] = sym
		}
		if sym.IsArray() {
			c.errorf(d.Pos(), "DATA for arrays is not supported (%s)", name)
			continue
		}
		if sym.Kind == ConstSym || sym.Kind == ParamSym {
			c.errorf(d.Pos(), "DATA cannot initialize %s %s", sym.Kind, name)
			continue
		}
		sym.HasInit = true
		switch sym.Type {
		case ast.Integer:
			v, ok := c.evalConstInt(info, d.Values[i])
			if !ok {
				c.errorf(d.Values[i].Pos(), "DATA value for %s is not a constant integer", name)
			}
			sym.InitInt = v
		default:
			v, ok := c.evalConstReal(info, d.Values[i])
			if !ok {
				c.errorf(d.Values[i].Pos(), "DATA value for %s is not a constant", name)
			}
			sym.InitReal = v
		}
	}
}

// ---------------------------------------------------------------------------
// Constant expression evaluation (PARAMETER values, array bounds)

func (c *checker) evalConstInt(info *UnitInfo, e ast.Expr) (int64, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value, true
	case *ast.VarRef:
		if len(e.Indexes) != 0 {
			return 0, false
		}
		if sym, ok := info.Symbols[e.Name]; ok && sym.Kind == ConstSym && sym.Type == ast.Integer {
			return sym.ConstInt, true
		}
		return 0, false
	case *ast.UnaryExpr:
		if e.Op != ast.Neg {
			return 0, false
		}
		v, ok := c.evalConstInt(info, e.X)
		return -v, ok
	case *ast.BinaryExpr:
		x, okx := c.evalConstInt(info, e.X)
		y, oky := c.evalConstInt(info, e.Y)
		if !okx || !oky {
			return 0, false
		}
		return FoldIntBinary(e.Op, x, y)
	}
	return 0, false
}

func (c *checker) evalConstReal(info *UnitInfo, e ast.Expr) (float64, bool) {
	switch e := e.(type) {
	case *ast.RealLit:
		return e.Value, true
	case *ast.IntLit:
		return float64(e.Value), true
	case *ast.VarRef:
		if len(e.Indexes) != 0 {
			return 0, false
		}
		if sym, ok := info.Symbols[e.Name]; ok && sym.Kind == ConstSym {
			if sym.Type == ast.Integer {
				return float64(sym.ConstInt), true
			}
			return sym.ConstReal, true
		}
		return 0, false
	case *ast.UnaryExpr:
		if e.Op != ast.Neg {
			return 0, false
		}
		v, ok := c.evalConstReal(info, e.X)
		return -v, ok
	case *ast.BinaryExpr:
		x, okx := c.evalConstReal(info, e.X)
		y, oky := c.evalConstReal(info, e.Y)
		if !okx || !oky {
			return 0, false
		}
		switch e.Op {
		case ast.Add:
			return x + y, true
		case ast.Sub:
			return x - y, true
		case ast.Mul:
			return x * y, true
		case ast.Div:
			if y == 0 {
				return 0, false
			}
			return x / y, true
		}
		return 0, false
	}
	return 0, false
}

// FoldIntBinary evaluates an integer binary operation at compile time.
// It reports failure for division by zero and for negative exponents,
// matching the analyzer's folding rules exactly (the same function is
// used by SCCP, value numbering, and the jump-function evaluator, so
// every stage agrees on arithmetic).
func FoldIntBinary(op ast.BinaryOp, x, y int64) (int64, bool) {
	switch op {
	case ast.Add:
		return x + y, true
	case ast.Sub:
		return x - y, true
	case ast.Mul:
		return x * y, true
	case ast.Div:
		if y == 0 {
			return 0, false
		}
		return x / y, true
	case ast.Pow:
		if y < 0 {
			return 0, false
		}
		r := int64(1)
		for i := int64(0); i < y; i++ {
			r *= x
		}
		return r, true
	}
	return 0, false
}
