package sema

import (
	"ipcp/internal/mf/ast"
	"ipcp/internal/mf/token"
)

// checkBody resolves and type-checks the executable statements of a unit.
func (c *checker) checkBody(info *UnitInfo) {
	c.checkStmts(info, info.Unit.Body)
	c.checkLabels(info)
}

func (c *checker) checkStmts(info *UnitInfo, list []ast.Stmt) {
	for _, s := range list {
		c.checkStmt(info, s)
	}
}

func (c *checker) checkStmt(info *UnitInfo, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.checkAssign(info, s)
	case *ast.IfStmt:
		s.Cond = c.requireLogical(info, s.Cond, "IF condition")
		c.checkStmts(info, s.Then)
		c.checkStmts(info, s.Else)
	case *ast.LogicalIfStmt:
		s.Cond = c.requireLogical(info, s.Cond, "IF condition")
		c.checkStmt(info, s.Stmt)
	case *ast.DoStmt:
		ref := &ast.VarRef{Name: s.Var, NamePos: s.Pos()}
		sym := c.resolveVar(info, ref, true)
		if sym != nil {
			if sym.IsArray() {
				c.errorf(s.Pos(), "DO variable %s cannot be an array", s.Var)
			}
			if sym.Type != ast.Integer {
				c.errorf(s.Pos(), "DO variable %s must be INTEGER", s.Var)
			}
			if sym.Kind == ConstSym {
				c.errorf(s.Pos(), "DO variable %s is a PARAMETER constant", s.Var)
			}
		}
		s.Lo = c.requireInteger(info, s.Lo, "DO lower bound")
		s.Hi = c.requireInteger(info, s.Hi, "DO upper bound")
		if s.Step != nil {
			s.Step = c.requireInteger(info, s.Step, "DO step")
		}
		c.checkStmts(info, s.Body)
	case *ast.DoWhileStmt:
		s.Cond = c.requireLogical(info, s.Cond, "DO WHILE condition")
		c.checkStmts(info, s.Body)
	case *ast.CallStmt:
		c.checkCallStmt(info, s)
	case *ast.ReadStmt:
		for _, t := range s.Targets {
			c.checkLValue(info, t)
		}
	case *ast.WriteStmt:
		for i, e := range s.Values {
			s.Values[i], _ = c.checkExpr(info, e)
		}
	case *ast.GotoStmt, *ast.ContinueStmt, *ast.ReturnStmt, *ast.StopStmt:
		// Nothing to resolve; GOTO targets are checked in checkLabels.
	}
}

func (c *checker) checkAssign(info *UnitInfo, s *ast.AssignStmt) {
	ltype := c.checkLValue(info, s.LHS)
	var rtype ast.BaseType
	s.RHS, rtype = c.checkExpr(info, s.RHS)
	if ltype == ast.NoType || rtype == ast.NoType {
		return // error already reported
	}
	if (ltype == ast.Logical) != (rtype == ast.Logical) {
		c.errorf(s.Pos(), "type mismatch in assignment to %s: %s = %s", s.LHS.Name, ltype, rtype)
	}
}

// checkLValue resolves an assignment or READ target and returns its
// element type.
func (c *checker) checkLValue(info *UnitInfo, ref *ast.VarRef) ast.BaseType {
	sym := c.resolveVar(info, ref, true)
	if sym == nil {
		return ast.NoType
	}
	switch sym.Kind {
	case ConstSym:
		c.errorf(ref.Pos(), "cannot assign to PARAMETER constant %s", ref.Name)
		return ast.NoType
	case ProcedureSym:
		c.errorf(ref.Pos(), "cannot assign to procedure %s", ref.Name)
		return ast.NoType
	}
	if sym.IsArray() {
		if len(ref.Indexes) == 0 {
			c.errorf(ref.Pos(), "assignment to whole array %s is not supported", ref.Name)
			return ast.NoType
		}
		if len(ref.Indexes) != len(sym.Dims) {
			c.errorf(ref.Pos(), "%s has %d dimensions but %d subscripts", ref.Name, len(sym.Dims), len(ref.Indexes))
		}
		for i, ix := range ref.Indexes {
			ref.Indexes[i] = c.requireInteger(info, ix, "array subscript")
		}
	} else if len(ref.Indexes) != 0 {
		c.errorf(ref.Pos(), "%s is scalar but has subscripts", ref.Name)
		return ast.NoType
	}
	c.prog.RefSym[ref] = sym
	return sym.Type
}

func (c *checker) checkCallStmt(info *UnitInfo, s *ast.CallStmt) {
	callee, ok := c.prog.UnitByName[s.Name]
	if !ok {
		c.errorf(s.Pos(), "CALL of undefined subroutine %s", s.Name)
		return
	}
	if callee.Unit.Kind != ast.SubroutineUnit {
		c.errorf(s.Pos(), "CALL target %s is a %s, not a SUBROUTINE", s.Name, callee.Unit.Kind)
		return
	}
	c.checkArguments(info, s.Pos(), callee, s.Args)
	c.prog.CallTargets[s] = &CallTarget{Unit: callee}
}

// checkArguments type-checks an actual argument list against the
// callee's formals, rewriting each argument expression in place.
func (c *checker) checkArguments(info *UnitInfo, pos token.Pos, callee *UnitInfo, args []ast.Expr) {
	if len(args) != len(callee.Params) {
		c.errorf(pos, "%s expects %d arguments, got %d", callee.Name, len(callee.Params), len(args))
	}
	for i := range args {
		var at ast.BaseType
		args[i], at = c.checkExpr(info, args[i])
		if i >= len(callee.Params) {
			continue
		}
		formal := callee.Params[i]

		// An unsubscripted array name passes the whole array; the formal
		// must be an array too (and vice versa).
		actualIsArray := false
		if vr, ok := args[i].(*ast.VarRef); ok && len(vr.Indexes) == 0 {
			if sym := c.prog.RefSym[vr]; sym != nil && sym.IsArray() {
				actualIsArray = true
			}
		}
		if actualIsArray != formal.IsArray() {
			c.errorf(args[i].Pos(), "argument %d of %s: %s formal bound to %s actual",
				i+1, callee.Name, kindWord(formal.IsArray()), kindWord(actualIsArray))
			continue
		}
		if actualIsArray {
			continue // element type agreement checked below via at
		}
		if at == ast.NoType {
			continue
		}
		if (formal.Type == ast.Logical) != (at == ast.Logical) {
			c.errorf(args[i].Pos(), "argument %d of %s: cannot pass %s to %s formal",
				i+1, callee.Name, at, formal.Type)
		}
	}
}

// resolveVar looks up (or implicitly declares) the symbol for a variable
// reference. If lvalue is false and the reference has subscripts but the
// name is not an array, the caller is expected to reinterpret it as a
// function call, so no error is reported and nil is returned with
// notArray=true semantics.
func (c *checker) resolveVar(info *UnitInfo, ref *ast.VarRef, lvalue bool) *Symbol {
	if sym, ok := info.Symbols[ref.Name]; ok {
		return sym
	}
	// Unknown name: a scalar reference implicitly declares a local;
	// IMPLICIT NONE forbids that.
	if info.implicitNone {
		c.errorf(ref.Pos(), "IMPLICIT NONE: %s is not declared", ref.Name)
		return nil
	}
	sym := &Symbol{Name: ref.Name, Kind: LocalSym, Type: implicitType(ref.Name)}
	info.Symbols[ref.Name] = sym
	return sym
}

// requireInteger checks (and rewrites) an expression that must be
// INTEGER.
func (c *checker) requireInteger(info *UnitInfo, e ast.Expr, what string) ast.Expr {
	e2, t := c.checkExpr(info, e)
	if t != ast.NoType && t != ast.Integer {
		c.errorf(e.Pos(), "%s must be INTEGER, got %s", what, t)
	}
	return e2
}

// requireLogical checks (and rewrites) an expression that must be
// LOGICAL.
func (c *checker) requireLogical(info *UnitInfo, e ast.Expr, what string) ast.Expr {
	e2, t := c.checkExpr(info, e)
	if t != ast.NoType && t != ast.Logical {
		c.errorf(e.Pos(), "%s must be LOGICAL, got %s", what, t)
	}
	return e2
}

// checkExpr resolves and types an expression, returning the (possibly
// rewritten) expression. VarRefs with subscripts that name functions or
// intrinsics are rewritten to CallExprs here.
func (c *checker) checkExpr(info *UnitInfo, e ast.Expr) (ast.Expr, ast.BaseType) {
	switch e := e.(type) {
	case *ast.IntLit:
		c.prog.ExprType[e] = ast.Integer
		return e, ast.Integer
	case *ast.RealLit:
		c.prog.ExprType[e] = ast.Real
		return e, ast.Real
	case *ast.StrLit:
		// Strings appear only in WRITE lists; give them NoType.
		return e, ast.NoType
	case *ast.LogicalLit:
		c.prog.ExprType[e] = ast.Logical
		return e, ast.Logical
	case *ast.VarRef:
		return c.checkVarRefExpr(info, e)
	case *ast.CallExpr:
		return c.checkCallExpr(info, e)
	case *ast.UnaryExpr:
		var t ast.BaseType
		e.X, t = c.checkExpr(info, e.X)
		switch e.Op {
		case ast.Neg:
			if t != ast.NoType && t != ast.Integer && t != ast.Real {
				c.errorf(e.Pos(), "unary - requires arithmetic operand, got %s", t)
				t = ast.NoType
			}
		case ast.Not:
			if t != ast.NoType && t != ast.Logical {
				c.errorf(e.Pos(), ".NOT. requires LOGICAL operand, got %s", t)
			}
			t = ast.Logical
		}
		c.prog.ExprType[e] = t
		return e, t
	case *ast.BinaryExpr:
		var xt, yt ast.BaseType
		e.X, xt = c.checkExpr(info, e.X)
		e.Y, yt = c.checkExpr(info, e.Y)
		t := c.binaryType(e, xt, yt)
		c.prog.ExprType[e] = t
		return e, t
	}
	return e, ast.NoType
}

func (c *checker) binaryType(e *ast.BinaryExpr, xt, yt ast.BaseType) ast.BaseType {
	if xt == ast.NoType || yt == ast.NoType {
		if e.Op.IsLogical() || e.Op.IsRelational() {
			return ast.Logical
		}
		return ast.NoType
	}
	arith := func(t ast.BaseType) bool { return t == ast.Integer || t == ast.Real }
	switch {
	case e.Op.IsArithmetic():
		if !arith(xt) || !arith(yt) {
			c.errorf(e.Pos(), "operator %s requires arithmetic operands, got %s and %s", e.Op, xt, yt)
			return ast.NoType
		}
		if xt == ast.Real || yt == ast.Real {
			return ast.Real
		}
		return ast.Integer
	case e.Op.IsRelational():
		if !arith(xt) || !arith(yt) {
			c.errorf(e.Pos(), "operator %s requires arithmetic operands, got %s and %s", e.Op, xt, yt)
		}
		return ast.Logical
	default: // logical
		if xt != ast.Logical || yt != ast.Logical {
			c.errorf(e.Pos(), "operator %s requires LOGICAL operands, got %s and %s", e.Op, xt, yt)
		}
		return ast.Logical
	}
}

// checkVarRefExpr types a variable reference in expression position,
// rewriting `name(args)` to a CallExpr when name is a function or
// intrinsic.
func (c *checker) checkVarRefExpr(info *UnitInfo, ref *ast.VarRef) (ast.Expr, ast.BaseType) {
	sym, declared := info.Symbols[ref.Name]

	// `name(args)` where name is not a declared array: a function call.
	if len(ref.Indexes) > 0 && (!declared || sym.Kind == ProcedureSym || (declared && !sym.IsArray() && isCallable(c, ref.Name))) {
		call := &ast.CallExpr{Name: ref.Name, Args: ref.Indexes, NamePos: ref.NamePos}
		return c.checkCallExpr(info, call)
	}

	if !declared {
		if len(ref.Indexes) > 0 {
			c.errorf(ref.Pos(), "%s is not an array, function, or intrinsic", ref.Name)
			return ref, ast.NoType
		}
		if info.implicitNone {
			c.errorf(ref.Pos(), "IMPLICIT NONE: %s is not declared", ref.Name)
			return ref, ast.NoType
		}
		sym = &Symbol{Name: ref.Name, Kind: LocalSym, Type: implicitType(ref.Name)}
		info.Symbols[ref.Name] = sym
	}

	switch sym.Kind {
	case ConstSym:
		if len(ref.Indexes) != 0 {
			c.errorf(ref.Pos(), "PARAMETER %s cannot be subscripted", ref.Name)
			return ref, ast.NoType
		}
		c.prog.RefSym[ref] = sym
		c.prog.ExprType[ref] = sym.Type
		return ref, sym.Type
	case ProcedureSym:
		c.errorf(ref.Pos(), "procedure %s used as a variable", ref.Name)
		return ref, ast.NoType
	}

	if sym.IsArray() {
		if len(ref.Indexes) == 0 {
			// Whole-array reference: legal only as an actual argument;
			// checkArguments validates the context.
			c.prog.RefSym[ref] = sym
			c.prog.ExprType[ref] = sym.Type
			return ref, sym.Type
		}
		if len(ref.Indexes) != len(sym.Dims) {
			c.errorf(ref.Pos(), "%s has %d dimensions but %d subscripts", ref.Name, len(sym.Dims), len(ref.Indexes))
		}
		for i, ix := range ref.Indexes {
			ref.Indexes[i] = c.requireInteger(info, ix, "array subscript")
		}
	} else if len(ref.Indexes) != 0 {
		c.errorf(ref.Pos(), "%s is scalar but has subscripts", ref.Name)
		return ref, ast.NoType
	}
	c.prog.RefSym[ref] = sym
	c.prog.ExprType[ref] = sym.Type
	return ref, sym.Type
}

// isCallable reports whether name refers to a FUNCTION unit or intrinsic.
func isCallable(c *checker, name string) bool {
	if u, ok := c.prog.UnitByName[name]; ok && u.Unit.Kind == ast.FunctionUnit {
		return true
	}
	_, ok := Intrinsics[name]
	return ok
}

func (c *checker) checkCallExpr(info *UnitInfo, call *ast.CallExpr) (ast.Expr, ast.BaseType) {
	if in, ok := Intrinsics[call.Name]; ok {
		return c.checkIntrinsicCall(info, call, in)
	}
	callee, ok := c.prog.UnitByName[call.Name]
	if !ok {
		c.errorf(call.Pos(), "call of undefined function %s", call.Name)
		return call, ast.NoType
	}
	if callee.Unit.Kind != ast.FunctionUnit {
		c.errorf(call.Pos(), "%s is a %s; only FUNCTIONs can be called in expressions", call.Name, callee.Unit.Kind)
		return call, ast.NoType
	}
	c.checkArguments(info, call.Pos(), callee, call.Args)
	c.prog.CallTargets[call] = &CallTarget{Unit: callee}
	t := callee.Result.Type
	c.prog.ExprType[call] = t
	return call, t
}

func (c *checker) checkIntrinsicCall(info *UnitInfo, call *ast.CallExpr, in *Intrinsic) (ast.Expr, ast.BaseType) {
	if len(call.Args) < in.MinArgs || (in.MaxArgs >= 0 && len(call.Args) > in.MaxArgs) {
		c.errorf(call.Pos(), "intrinsic %s called with %d arguments", in.Name, len(call.Args))
	}
	result := ast.Integer
	anyReal := false
	for i := range call.Args {
		var at ast.BaseType
		call.Args[i], at = c.checkExpr(info, call.Args[i])
		if at == ast.Real {
			anyReal = true
		}
		if at == ast.Logical {
			c.errorf(call.Args[i].Pos(), "intrinsic %s requires arithmetic arguments", in.Name)
		}
		if in.IntOnly && at == ast.Real {
			c.errorf(call.Args[i].Pos(), "intrinsic %s requires INTEGER arguments", in.Name)
		}
	}
	if !in.IntOnly && anyReal {
		result = ast.Real
	}
	c.prog.CallTargets[call] = &CallTarget{Intrinsic: in}
	c.prog.ExprType[call] = result
	return call, result
}

// ---------------------------------------------------------------------------
// Label checking

// checkLabels verifies that every GOTO target exists in its unit and
// that no label is defined twice.
func (c *checker) checkLabels(info *UnitInfo) {
	defined := map[int]token.Pos{}
	var gotos []*ast.GotoStmt
	var walk func(list []ast.Stmt)
	walk = func(list []ast.Stmt) {
		for _, s := range list {
			if l := s.Label(); l != 0 {
				if prev, dup := defined[l]; dup {
					c.errorf(s.Pos(), "label %d already defined at %s", l, prev)
				} else {
					defined[l] = s.Pos()
				}
			}
			switch s := s.(type) {
			case *ast.IfStmt:
				walk(s.Then)
				walk(s.Else)
			case *ast.LogicalIfStmt:
				walk([]ast.Stmt{s.Stmt})
			case *ast.DoStmt:
				walk(s.Body)
			case *ast.DoWhileStmt:
				walk(s.Body)
			case *ast.GotoStmt:
				gotos = append(gotos, s)
			}
		}
	}
	walk(info.Unit.Body)
	for _, g := range gotos {
		if _, ok := defined[g.Target]; !ok {
			c.errorf(g.Pos(), "GOTO %d: label not defined in %s", g.Target, info.Name)
		}
	}
}
