package sema

import (
	"strings"
	"testing"

	"ipcp/internal/mf/ast"
	"ipcp/internal/mf/parser"
)

func analyze(t *testing.T, src string) *Program {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := Analyze(f)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return p
}

func analyzeExpectError(t *testing.T, src, wantSubstr string) {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = Analyze(f)
	if err == nil {
		t.Fatalf("expected semantic error containing %q, got none", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q does not contain %q", err, wantSubstr)
	}
}

func TestImplicitTyping(t *testing.T) {
	p := analyze(t, `
PROGRAM P
  N = 1
  X = 2.0
END
`)
	u := p.Main
	if u.Symbols["N"].Type != ast.Integer {
		t.Errorf("N should be INTEGER")
	}
	if u.Symbols["X"].Type != ast.Real {
		t.Errorf("X should be REAL")
	}
	for _, name := range "IJKLMN" {
		if implicitType(string(name)+"VAR") != ast.Integer {
			t.Errorf("%cVAR should be INTEGER", name)
		}
	}
	if implicitType("HVAR") != ast.Real || implicitType("OVAR") != ast.Real {
		t.Error("H/O prefixes should be REAL")
	}
}

func TestImplicitNone(t *testing.T) {
	analyzeExpectError(t, `
PROGRAM P
  IMPLICIT NONE
  N = 1
END
`, "IMPLICIT NONE")
}

func TestParamsAndResult(t *testing.T) {
	p := analyze(t, `
PROGRAM P
  INTEGER R
  R = F(3)
END
INTEGER FUNCTION F(X)
  INTEGER X
  F = X + 1
  RETURN
END
`)
	f := p.UnitByName["F"]
	if len(f.Params) != 1 || f.Params[0].Kind != ParamSym || f.Params[0].ParamIndex != 0 {
		t.Fatalf("params: %+v", f.Params)
	}
	if f.Result == nil || f.Result.Kind != ResultSym || f.Result.Type != ast.Integer {
		t.Fatalf("result: %+v", f.Result)
	}
}

func TestCommonBlocks(t *testing.T) {
	p := analyze(t, `
PROGRAM P
  COMMON /BLK/ N, X, ARR(10)
  INTEGER N, ARR
  N = 1
  CALL S
END
SUBROUTINE S
  COMMON /BLK/ M, Y, BUF(10)
  INTEGER M, BUF
  M = 2
  RETURN
END
`)
	if len(p.Globals) != 3 {
		t.Fatalf("globals: %d, want 3", len(p.Globals))
	}
	// Canonical names come from the first declaring unit.
	if p.Globals[0].Name != "N" || p.Globals[0].Block != "BLK" {
		t.Errorf("global 0: %+v", p.Globals[0])
	}
	// Both units' symbols map to the same Global.
	n := p.Main.Symbols["N"]
	m := p.UnitByName["S"].Symbols["M"]
	if n.Global == nil || n.Global != m.Global {
		t.Errorf("N and M should share a global: %v vs %v", n.Global, m.Global)
	}
	if !p.Main.Symbols["ARR"].IsArray() {
		t.Error("ARR should be an array")
	}
}

func TestCommonShapeMismatch(t *testing.T) {
	analyzeExpectError(t, `
PROGRAM P
  COMMON /BLK/ N
  N = 1
END
SUBROUTINE S
  COMMON /BLK/ BUF(10)
  RETURN
END
`, "COMMON /BLK/")
}

func TestParameterConstants(t *testing.T) {
	p := analyze(t, `
PROGRAM P
  PARAMETER (N = 100, M = N*2+1)
  INTEGER A(M)
  A(N) = N
END
`)
	m := p.Main.Symbols["M"]
	if m.Kind != ConstSym || m.ConstInt != 201 {
		t.Fatalf("M: %+v", m)
	}
	a := p.Main.Symbols["A"]
	if len(a.Dims) != 1 || a.Dims[0] != 201 {
		t.Fatalf("A dims: %v", a.Dims)
	}
}

func TestAssignToParameterRejected(t *testing.T) {
	analyzeExpectError(t, `
PROGRAM P
  PARAMETER (N = 1)
  N = 2
END
`, "PARAMETER")
}

func TestFunctionCallDisambiguation(t *testing.T) {
	p := analyze(t, `
PROGRAM P
  INTEGER A(10), R
  A(1) = 5
  R = A(1) + F(2) + MOD(7, 3)
END
INTEGER FUNCTION F(X)
  INTEGER X
  F = X
  RETURN
END
`)
	// Find the assignment R = ... and inspect its RHS shape.
	var asg *ast.AssignStmt
	for _, s := range p.Main.Unit.Body {
		if a, ok := s.(*ast.AssignStmt); ok && a.LHS.Name == "R" {
			asg = a
		}
	}
	if asg == nil {
		t.Fatal("assignment to R not found")
	}
	add := asg.RHS.(*ast.BinaryExpr)
	inner := add.X.(*ast.BinaryExpr)
	if _, ok := inner.X.(*ast.VarRef); !ok {
		t.Errorf("A(1) should stay a VarRef, got %T", inner.X)
	}
	if call, ok := inner.Y.(*ast.CallExpr); !ok || call.Name != "F" {
		t.Errorf("F(2) should become CallExpr, got %T", inner.Y)
	} else if p.CallTargets[call] == nil || p.CallTargets[call].Unit == nil {
		t.Error("F call target not recorded")
	}
	if call, ok := add.Y.(*ast.CallExpr); !ok || call.Name != "MOD" {
		t.Errorf("MOD should become CallExpr, got %T", add.Y)
	} else if tgt := p.CallTargets[call]; tgt == nil || tgt.Intrinsic == nil {
		t.Error("MOD target should be intrinsic")
	}
}

func TestTypeErrors(t *testing.T) {
	analyzeExpectError(t, `
PROGRAM P
  LOGICAL L
  INTEGER N
  N = L
END
`, "type mismatch")
	analyzeExpectError(t, `
PROGRAM P
  INTEGER N
  IF (N) THEN
    N = 1
  ENDIF
END
`, "must be LOGICAL")
	analyzeExpectError(t, `
PROGRAM P
  REAL X
  DO X = 1, 10
  ENDDO
END
`, "must be INTEGER")
	analyzeExpectError(t, `
PROGRAM P
  LOGICAL L
  L = 1 .AND. 2
END
`, ".AND.")
}

func TestCallErrors(t *testing.T) {
	analyzeExpectError(t, `
PROGRAM P
  CALL NOSUCH(1)
END
`, "undefined subroutine")
	analyzeExpectError(t, `
PROGRAM P
  CALL S(1, 2)
END
SUBROUTINE S(A)
  INTEGER A
  RETURN
END
`, "expects 1 arguments")
	analyzeExpectError(t, `
PROGRAM P
  INTEGER R
  R = S(1)
END
SUBROUTINE S(A)
  INTEGER A
  RETURN
END
`, "only FUNCTIONs")
}

func TestArrayArgumentBinding(t *testing.T) {
	analyze(t, `
PROGRAM P
  INTEGER A(10)
  CALL S(A, 10)
END
SUBROUTINE S(BUF, N)
  INTEGER BUF(10), N
  BUF(1) = N
  RETURN
END
`)
	analyzeExpectError(t, `
PROGRAM P
  INTEGER X
  CALL S(X)
END
SUBROUTINE S(BUF)
  INTEGER BUF(10)
  RETURN
END
`, "array formal bound to a scalar")
}

func TestGotoLabels(t *testing.T) {
	analyzeExpectError(t, `
PROGRAM P
  GOTO 99
END
`, "label not defined")
	analyzeExpectError(t, `
PROGRAM P
10 CONTINUE
10 CONTINUE
END
`, "already defined")
}

func TestDataOnlyInProgram(t *testing.T) {
	p := analyze(t, `
PROGRAM P
  INTEGER N
  DATA N /42/
  N = N + 1
END
`)
	sym := p.Main.Symbols["N"]
	if !sym.HasInit || sym.InitInt != 42 {
		t.Fatalf("DATA init lost: %+v", sym)
	}
	analyzeExpectError(t, `
PROGRAM P
END
SUBROUTINE S
  INTEGER N
  DATA N /1/
  RETURN
END
`, "only supported in the PROGRAM unit")
}

func TestNoProgramUnit(t *testing.T) {
	analyzeExpectError(t, `
SUBROUTINE S
  RETURN
END
`, "no PROGRAM unit")
}

func TestDuplicateUnits(t *testing.T) {
	analyzeExpectError(t, `
PROGRAM P
END
SUBROUTINE S
  RETURN
END
SUBROUTINE S
  RETURN
END
`, "duplicate program unit")
}

func TestFoldIntBinary(t *testing.T) {
	cases := []struct {
		op   ast.BinaryOp
		x, y int64
		want int64
		ok   bool
	}{
		{ast.Add, 2, 3, 5, true},
		{ast.Sub, 2, 3, -1, true},
		{ast.Mul, 4, 5, 20, true},
		{ast.Div, 7, 2, 3, true},
		{ast.Div, -7, 2, -3, true}, // Go and Fortran both truncate toward zero
		{ast.Div, 1, 0, 0, false},
		{ast.Pow, 2, 10, 1024, true},
		{ast.Pow, 3, 0, 1, true},
		{ast.Pow, 2, -1, 0, false},
	}
	for _, tc := range cases {
		got, ok := FoldIntBinary(tc.op, tc.x, tc.y)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("FoldIntBinary(%v, %d, %d) = %d,%v want %d,%v", tc.op, tc.x, tc.y, got, ok, tc.want, tc.ok)
		}
	}
}

func TestWholeArrayAssignmentRejected(t *testing.T) {
	analyzeExpectError(t, `
PROGRAM P
  INTEGER A(10)
  A = 1
END
`, "whole array")
}

func TestSubscriptCountChecked(t *testing.T) {
	analyzeExpectError(t, `
PROGRAM P
  INTEGER A(10, 10)
  A(1) = 5
END
`, "2 dimensions but 1 subscripts")
}
