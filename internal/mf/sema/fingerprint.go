package sema

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"ipcp/internal/mf/ast"
)

// This file gives every program unit a stable fingerprint, the
// foundation of the incremental re-analysis engine (internal/incr): a
// procedure's summary may be reused across runs exactly when its
// fingerprint — and those of the procedures it transitively calls —
// are unchanged. Fingerprints hash the *normalized* pretty-printed
// source, so formatting-only edits (whitespace, comments, line breaks)
// never invalidate a summary.

// UnitSource returns the normalized source text of one unit: the unit
// as the AST printer renders it.
func UnitSource(u *UnitInfo) string { return ast.FormatUnit(u.Unit) }

// UnitHash returns the hex SHA-256 of a unit's normalized source.
func UnitHash(u *UnitInfo) string {
	sum := sha256.Sum256([]byte(UnitSource(u)))
	return hex.EncodeToString(sum[:])
}

// Fingerprints returns the UnitHash of every unit, keyed by unit name
// (unit names are unique — sema enforces it). Units hash independently,
// so the work fans out over the CPUs; the result does not depend on
// scheduling.
func (p *Program) Fingerprints() map[string]string {
	hashes := make([]string, len(p.Units))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(p.Units) {
		workers = len(p.Units)
	}
	var next sync.WaitGroup
	step := (len(p.Units) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * step
		hi := lo + step
		if hi > len(p.Units) {
			hi = len(p.Units)
		}
		if lo >= hi {
			break
		}
		next.Add(1)
		go func(lo, hi int) {
			defer next.Done()
			for i := lo; i < hi; i++ {
				hashes[i] = UnitHash(p.Units[i])
			}
		}(lo, hi)
	}
	next.Wait()
	fps := make(map[string]string, len(p.Units))
	for i, u := range p.Units {
		fps[u.Name] = hashes[i]
	}
	return fps
}

// GlobalsSchema renders the program's COMMON-block layout — every
// global in dense ID order with its block, position, name, type, and
// dimensions. Two programs with equal schemas agree about the identity
// and numbering of every global, which is what stored summaries that
// mention globals by ID depend on.
func (p *Program) GlobalsSchema() string {
	var sb strings.Builder
	for _, g := range p.Globals {
		fmt.Fprintf(&sb, "%d %s %d %s %s %v\n", g.ID, g.Block, g.Index, g.Name, g.Type, g.Dims)
	}
	return sb.String()
}

// GlobalsHash returns the hex SHA-256 of the globals schema.
func (p *Program) GlobalsHash() string {
	sum := sha256.Sum256([]byte(p.GlobalsSchema()))
	return hex.EncodeToString(sum[:])
}
