package lexer

import (
	"testing"

	"ipcp/internal/mf/token"
)

// kindsOf scans src and returns the token kinds, excluding the final EOF.
func kindsOf(t *testing.T, src string) []token.Kind {
	t.Helper()
	lx := New(src)
	toks := lx.All()
	if errs := lx.Errors(); len(errs) > 0 {
		t.Fatalf("unexpected lexical errors: %v", errs)
	}
	kinds := make([]token.Kind, 0, len(toks)-1)
	for _, tok := range toks[:len(toks)-1] {
		kinds = append(kinds, tok.Kind)
	}
	return kinds
}

func expectKinds(t *testing.T, src string, want ...token.Kind) {
	t.Helper()
	got := kindsOf(t, src)
	if len(got) != len(want) {
		t.Fatalf("src %q: got %v, want %v", src, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("src %q: token %d: got %s, want %s (full: %v)", src, i, got[i], want[i], got)
		}
	}
}

func TestKeywordsAndIdentifiers(t *testing.T) {
	expectKinds(t, "program main",
		token.PROGRAM, token.IDENT)
	expectKinds(t, "SUBROUTINE FOO(A, B)",
		token.SUBROUTINE, token.IDENT, token.LPAREN, token.IDENT, token.COMMA, token.IDENT, token.RPAREN)
	expectKinds(t, "integer function f(x)",
		token.INTEGER, token.FUNCTION, token.IDENT, token.LPAREN, token.IDENT, token.RPAREN)
}

func TestCaseInsensitivity(t *testing.T) {
	lx := New("Program MyProg")
	toks := lx.All()
	if toks[0].Kind != token.PROGRAM {
		t.Fatalf("got %v, want PROGRAM", toks[0])
	}
	if toks[1].Text != "MYPROG" {
		t.Fatalf("identifier not upper-cased: %q", toks[1].Text)
	}
}

func TestOperators(t *testing.T) {
	expectKinds(t, "a = b*c + d/e - f**2",
		token.IDENT, token.ASSIGN, token.IDENT, token.STAR, token.IDENT,
		token.PLUS, token.IDENT, token.SLASH, token.IDENT,
		token.MINUS, token.IDENT, token.POW, token.INTLIT)
}

func TestDotOperators(t *testing.T) {
	expectKinds(t, "a .eq. b .and. c .lt. d",
		token.IDENT, token.EQ, token.IDENT, token.AND, token.IDENT, token.LT, token.IDENT)
	expectKinds(t, ".NOT. .TRUE. .OR. .FALSE.",
		token.NOT, token.TRUE, token.OR, token.FALSE)
	expectKinds(t, "x .ne. y .le. z .gt. w .ge. v",
		token.IDENT, token.NE, token.IDENT, token.LE, token.IDENT,
		token.GT, token.IDENT, token.GE, token.IDENT)
}

func TestNumbers(t *testing.T) {
	expectKinds(t, "42", token.INTLIT)
	expectKinds(t, "3.5", token.REALLIT)
	expectKinds(t, ".5", token.REALLIT)
	expectKinds(t, "2.", token.REALLIT)
	expectKinds(t, "1.5E-3", token.REALLIT)
	expectKinds(t, "1E3", token.REALLIT)
	expectKinds(t, "1.5D0", token.REALLIT)
}

// 1.EQ.2 must lex as INTLIT EQ INTLIT, not a malformed real.
func TestIntegerDotOperatorAmbiguity(t *testing.T) {
	expectKinds(t, "1.EQ.2", token.INTLIT, token.EQ, token.INTLIT)
	expectKinds(t, "10.LT.N", token.INTLIT, token.LT, token.IDENT)
}

func TestRealLiteralValues(t *testing.T) {
	lx := New("2.5 1D2")
	toks := lx.All()
	if toks[0].Text != "2.5" {
		t.Errorf("got %q", toks[0].Text)
	}
	// D exponents normalize to E for parsing.
	if toks[1].Text != "1E2" {
		t.Errorf("got %q, want 1E2", toks[1].Text)
	}
}

func TestNewlinesCollapse(t *testing.T) {
	expectKinds(t, "a = 1\n\n\nb = 2",
		token.IDENT, token.ASSIGN, token.INTLIT, token.NEWLINE,
		token.IDENT, token.ASSIGN, token.INTLIT)
}

func TestLeadingBlankLinesSuppressed(t *testing.T) {
	expectKinds(t, "\n\na = 1", token.IDENT, token.ASSIGN, token.INTLIT)
}

func TestComments(t *testing.T) {
	expectKinds(t, "a = 1 ! set a\nb = 2",
		token.IDENT, token.ASSIGN, token.INTLIT, token.NEWLINE,
		token.IDENT, token.ASSIGN, token.INTLIT)
	// Comment lines: '*' in column one.
	expectKinds(t, "* another comment\na = 1",
		token.IDENT, token.ASSIGN, token.INTLIT)
	// Unlike fixed-form FORTRAN, 'C' at line start is NOT a comment:
	// C is a perfectly good variable name in free form.
	expectKinds(t, "C = 1", token.IDENT, token.ASSIGN, token.INTLIT)
}

func TestContinuation(t *testing.T) {
	expectKinds(t, "a = 1 + &\n    2",
		token.IDENT, token.ASSIGN, token.INTLIT, token.PLUS, token.INTLIT)
	expectKinds(t, "a = 1 + & ! trailing comment\n 2",
		token.IDENT, token.ASSIGN, token.INTLIT, token.PLUS, token.INTLIT)
}

func TestStringLiterals(t *testing.T) {
	lx := New("WRITE(*,*) 'hello ''world'''")
	toks := lx.All()
	var str *token.Token
	for i := range toks {
		if toks[i].Kind == token.STRLIT {
			str = &toks[i]
			break
		}
	}
	if str == nil {
		t.Fatal("no string literal found")
	}
	if str.Text != "hello 'world'" {
		t.Fatalf("got %q", str.Text)
	}
}

func TestPositions(t *testing.T) {
	lx := New("a = 1\n  b = 2")
	toks := lx.All()
	if toks[0].Pos != (token.Pos{Line: 1, Col: 1}) {
		t.Errorf("a at %v", toks[0].Pos)
	}
	// toks: a = 1 NEWLINE b ...
	if toks[4].Pos != (token.Pos{Line: 2, Col: 3}) {
		t.Errorf("b at %v, want 2:3", toks[4].Pos)
	}
}

func TestErrors(t *testing.T) {
	lx := New("a = 'unterminated\nb = #")
	lx.All()
	if len(lx.Errors()) < 2 {
		t.Fatalf("expected at least 2 errors, got %v", lx.Errors())
	}
}

func TestEOFIsSticky(t *testing.T) {
	lx := New("a")
	lx.All()
	for i := 0; i < 3; i++ {
		if got := lx.Next().Kind; got != token.EOF {
			t.Fatalf("Next after EOF returned %s", got)
		}
	}
}
