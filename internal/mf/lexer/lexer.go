// Package lexer tokenizes MiniFortran source text.
//
// MiniFortran is free-form: statements end at a newline, `!` starts a
// comment that runs to end of line, and a line whose first column is `C`
// or `c` followed by whitespace (or `*` in column one) is a comment line,
// as in fixed-form FORTRAN. A trailing `&` continues a statement onto the
// next line. All letters outside character literals are upper-cased, so
// keywords and identifiers are case-insensitive.
package lexer

import (
	"fmt"
	"strconv"
	"strings"

	"ipcp/internal/mf/token"
)

// Error is a lexical error with its source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans MiniFortran source text into tokens.
type Lexer struct {
	src      string
	off      int // byte offset of next unread character
	line     int
	col      int
	atBOL    bool // at beginning of line (for comment-line detection)
	lastKind token.Kind
	errs     []*Error
}

// New returns a Lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1, atBOL: true}
}

// Errors returns the lexical errors encountered so far.
func (lx *Lexer) Errors() []*Error { return lx.errs }

func (lx *Lexer) errorf(pos token.Pos, format string, args ...any) {
	lx.errs = append(lx.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (lx *Lexer) pos() token.Pos { return token.Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekAt(n int) byte {
	if lx.off+n >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+n]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isLetter(c byte) bool { return c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isIdentChar(c byte) bool {
	return isLetter(c) || isDigit(c) || c == '_'
}

// skipCommentLine consumes a whole-line comment when positioned at the
// start of one, returning true if a line was skipped. Only `*` in column
// one marks a comment line; the fixed-form `C` rule is deliberately not
// supported because MiniFortran is free-form and `C = ...` must remain an
// assignment to the variable C. (`!` comments work anywhere.)
func (lx *Lexer) skipCommentLine() bool {
	if !lx.atBOL || lx.peek() != '*' {
		return false
	}
	for lx.off < len(lx.src) && lx.peek() != '\n' {
		lx.advance()
	}
	if lx.off < len(lx.src) {
		lx.advance() // consume the newline; comment lines emit no NEWLINE token
	}
	return true
}

// Next returns the next token. At end of input it returns EOF forever.
// Consecutive newlines collapse into a single NEWLINE token, and leading
// newlines are suppressed.
func (lx *Lexer) Next() token.Token {
	for {
		t := lx.scan()
		if t.Kind == token.NEWLINE && (lx.lastKind == token.NEWLINE || lx.lastKind == token.ILLEGAL) {
			continue // collapse blank lines; ILLEGAL is the "nothing yet" state
		}
		lx.lastKind = t.Kind
		return t
	}
}

// All scans the entire input and returns all tokens including the final
// EOF. Lexical errors are available via Errors.
func (lx *Lexer) All() []token.Token {
	var toks []token.Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}

func (lx *Lexer) scan() token.Token {
	// Skip horizontal whitespace, comments, comment lines, continuations.
	for lx.off < len(lx.src) {
		if lx.skipCommentLine() {
			continue
		}
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			lx.advance()
		case c == '!':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '&':
			// Continuation: skip the '&', the rest of the line
			// (whitespace/comment only), and the newline.
			pos := lx.pos()
			lx.advance()
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				ch := lx.peek()
				if ch == ' ' || ch == '\t' || ch == '\r' {
					lx.advance()
					continue
				}
				if ch == '!' {
					for lx.off < len(lx.src) && lx.peek() != '\n' {
						lx.advance()
					}
					continue
				}
				lx.errorf(pos, "unexpected %q after continuation '&'", string(ch))
				break
			}
			if lx.off < len(lx.src) {
				lx.advance() // newline
			}
			lx.atBOL = true
		default:
			goto scanToken
		}
	}
	return token.Token{Kind: token.EOF, Pos: lx.pos()}

scanToken:
	pos := lx.pos()
	lx.atBOL = false
	c := lx.peek()

	switch {
	case c == '\n':
		lx.advance()
		lx.atBOL = true
		return token.Token{Kind: token.NEWLINE, Pos: pos, Text: "\n"}

	case isLetter(c) || c == '_':
		start := lx.off
		for lx.off < len(lx.src) && isIdentChar(lx.peek()) {
			lx.advance()
		}
		text := strings.ToUpper(lx.src[start:lx.off])
		return token.Token{Kind: token.Lookup(text), Pos: pos, Text: text}

	case isDigit(c):
		return lx.scanNumber(pos)

	case c == '.':
		// Either a dot operator (.EQ., .AND., ...) or a real literal
		// like .5 — disambiguate by what follows the dot.
		if isDigit(lx.peekAt(1)) {
			return lx.scanNumber(pos)
		}
		return lx.scanDotOperator(pos)

	case c == '\'':
		return lx.scanString(pos)
	}

	lx.advance()
	switch c {
	case '+':
		return token.Token{Kind: token.PLUS, Pos: pos, Text: "+"}
	case '-':
		return token.Token{Kind: token.MINUS, Pos: pos, Text: "-"}
	case '*':
		if lx.peek() == '*' {
			lx.advance()
			return token.Token{Kind: token.POW, Pos: pos, Text: "**"}
		}
		return token.Token{Kind: token.STAR, Pos: pos, Text: "*"}
	case '/':
		return token.Token{Kind: token.SLASH, Pos: pos, Text: "/"}
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos, Text: "("}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos, Text: ")"}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos, Text: ","}
	case '=':
		return token.Token{Kind: token.ASSIGN, Pos: pos, Text: "="}
	case ':':
		return token.Token{Kind: token.COLON, Pos: pos, Text: ":"}
	}
	lx.errorf(pos, "illegal character %q", string(c))
	return token.Token{Kind: token.ILLEGAL, Pos: pos, Text: string(c)}
}

// scanNumber scans an integer or real literal. Reals have a decimal
// point and/or an exponent: 1.5, .5, 2., 1E3, 1.5E-3.
func (lx *Lexer) scanNumber(pos token.Pos) token.Token {
	start := lx.off
	for lx.off < len(lx.src) && isDigit(lx.peek()) {
		lx.advance()
	}
	isReal := false
	if lx.peek() == '.' {
		// A dot followed by letters is a dot operator (1.EQ.2), not a
		// decimal point.
		if !isLetter(lx.peekAt(1)) {
			isReal = true
			lx.advance()
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		} else if k, size := lx.dotOpLookahead(); k != token.ILLEGAL {
			_ = size // dot operator follows; stop the number here
		} else {
			// ".E5" etc. — treat the dot as a decimal point with an
			// exponent; fall through to exponent handling below.
			isReal = true
			lx.advance()
		}
	}
	if e := lx.peek(); e == 'E' || e == 'e' || e == 'D' || e == 'd' {
		next := lx.peekAt(1)
		next2 := lx.peekAt(2)
		if isDigit(next) || ((next == '+' || next == '-') && isDigit(next2)) {
			isReal = true
			lx.advance() // E
			if lx.peek() == '+' || lx.peek() == '-' {
				lx.advance()
			}
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
	}
	text := lx.src[start:lx.off]
	if isReal {
		norm := strings.ToUpper(text)
		norm = strings.ReplaceAll(norm, "D", "E")
		if _, err := strconv.ParseFloat(norm, 64); err != nil {
			lx.errorf(pos, "malformed real literal %q", text)
			return token.Token{Kind: token.ILLEGAL, Pos: pos, Text: text}
		}
		return token.Token{Kind: token.REALLIT, Pos: pos, Text: norm}
	}
	if _, err := strconv.ParseInt(text, 10, 64); err != nil {
		lx.errorf(pos, "integer literal %q out of range", text)
		return token.Token{Kind: token.ILLEGAL, Pos: pos, Text: text}
	}
	return token.Token{Kind: token.INTLIT, Pos: pos, Text: text}
}

// dotOpLookahead checks whether the input at the current '.' starts a dot
// operator, returning its kind and total length (including both dots).
// It does not consume input.
func (lx *Lexer) dotOpLookahead() (token.Kind, int) {
	i := 1
	for isLetter(lx.peekAt(i)) {
		i++
	}
	if i == 1 || lx.peekAt(i) != '.' {
		return token.ILLEGAL, 0
	}
	word := strings.ToUpper(lx.src[lx.off+1 : lx.off+i])
	if k, ok := token.LookupDot(word); ok {
		return k, i + 1
	}
	return token.ILLEGAL, 0
}

func (lx *Lexer) scanDotOperator(pos token.Pos) token.Token {
	k, size := lx.dotOpLookahead()
	if k == token.ILLEGAL {
		lx.advance()
		lx.errorf(pos, "malformed dot operator")
		return token.Token{Kind: token.ILLEGAL, Pos: pos, Text: "."}
	}
	start := lx.off
	for i := 0; i < size; i++ {
		lx.advance()
	}
	return token.Token{Kind: k, Pos: pos, Text: strings.ToUpper(lx.src[start : start+size])}
}

func (lx *Lexer) scanString(pos token.Pos) token.Token {
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		if lx.off >= len(lx.src) || lx.peek() == '\n' {
			lx.errorf(pos, "unterminated character literal")
			return token.Token{Kind: token.ILLEGAL, Pos: pos, Text: sb.String()}
		}
		c := lx.advance()
		if c == '\'' {
			if lx.peek() == '\'' { // doubled quote escapes a quote
				lx.advance()
				sb.WriteByte('\'')
				continue
			}
			return token.Token{Kind: token.STRLIT, Pos: pos, Text: sb.String()}
		}
		sb.WriteByte(c)
	}
}
