// Package token defines the lexical tokens of MiniFortran, the
// FORTRAN-77-flavored source language analyzed by this library.
//
// MiniFortran stands in for the FORTRAN front end of ParaScope used in
// Grove & Torczon (PLDI 1993). It is free-form (statements end at
// newline), case-insensitive, and supports the constructs the study
// depends on: program units with by-reference parameters, COMMON blocks,
// PARAMETER constants, integer and real arithmetic, arrays, DO loops,
// block and logical IF, GOTO with numeric labels, CALL/RETURN, and
// opaque READ input.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds.
const (
	ILLEGAL Kind = iota
	EOF
	NEWLINE // statement terminator

	IDENT   // X, LOOPVAR
	INTLIT  // 42
	REALLIT // 3.5, 1.0E-3
	STRLIT  // 'hello'

	// Operators and delimiters.
	PLUS   // +
	MINUS  // -
	STAR   // *
	SLASH  // /
	POW    // **
	LPAREN // (
	RPAREN // )
	COMMA  // ,
	ASSIGN // =
	COLON  // :

	// Relational operators (dot form, e.g. .EQ.).
	EQ // .EQ.
	NE // .NE.
	LT // .LT.
	LE // .LE.
	GT // .GT.
	GE // .GE.

	// Logical operators and literals.
	AND   // .AND.
	OR    // .OR.
	NOT   // .NOT.
	TRUE  // .TRUE.
	FALSE // .FALSE.

	keywordStart
	PROGRAM
	SUBROUTINE
	FUNCTION
	INTEGER
	REAL
	LOGICAL
	DIMENSION
	COMMON
	PARAMETER
	IMPLICIT
	NONE
	DATA
	IF
	THEN
	ELSE
	ELSEIF
	ENDIF
	DO
	ENDDO
	WHILE
	GOTO
	CONTINUE
	CALL
	RETURN
	STOP
	READ
	WRITE
	PRINT
	END
	keywordEnd
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", NEWLINE: "NEWLINE",
	IDENT: "IDENT", INTLIT: "INTLIT", REALLIT: "REALLIT", STRLIT: "STRLIT",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", POW: "**",
	LPAREN: "(", RPAREN: ")", COMMA: ",", ASSIGN: "=", COLON: ":",
	EQ: ".EQ.", NE: ".NE.", LT: ".LT.", LE: ".LE.", GT: ".GT.", GE: ".GE.",
	AND: ".AND.", OR: ".OR.", NOT: ".NOT.", TRUE: ".TRUE.", FALSE: ".FALSE.",
	PROGRAM: "PROGRAM", SUBROUTINE: "SUBROUTINE", FUNCTION: "FUNCTION",
	INTEGER: "INTEGER", REAL: "REAL", LOGICAL: "LOGICAL",
	DIMENSION: "DIMENSION", COMMON: "COMMON", PARAMETER: "PARAMETER",
	IMPLICIT: "IMPLICIT", NONE: "NONE", DATA: "DATA",
	IF: "IF", THEN: "THEN", ELSE: "ELSE", ELSEIF: "ELSEIF", ENDIF: "ENDIF",
	DO: "DO", ENDDO: "ENDDO", WHILE: "WHILE", GOTO: "GOTO",
	CONTINUE: "CONTINUE", CALL: "CALL", RETURN: "RETURN", STOP: "STOP",
	READ: "READ", WRITE: "WRITE", PRINT: "PRINT", END: "END",
}

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsKeyword reports whether k is a reserved keyword.
func (k Kind) IsKeyword() bool { return k > keywordStart && k < keywordEnd }

var keywords = map[string]Kind{
	"PROGRAM": PROGRAM, "SUBROUTINE": SUBROUTINE, "FUNCTION": FUNCTION,
	"INTEGER": INTEGER, "REAL": REAL, "LOGICAL": LOGICAL,
	"DIMENSION": DIMENSION, "COMMON": COMMON, "PARAMETER": PARAMETER,
	"IMPLICIT": IMPLICIT, "NONE": NONE, "DATA": DATA,
	"IF": IF, "THEN": THEN, "ELSE": ELSE, "ELSEIF": ELSEIF, "ENDIF": ENDIF,
	"DO": DO, "ENDDO": ENDDO, "WHILE": WHILE, "GOTO": GOTO,
	"CONTINUE": CONTINUE, "CALL": CALL, "RETURN": RETURN, "STOP": STOP,
	"READ": READ, "WRITE": WRITE, "PRINT": PRINT, "END": END,
}

// Lookup maps an upper-cased identifier spelling to its keyword kind, or
// IDENT when the spelling is not reserved.
func Lookup(upper string) Kind {
	if k, ok := keywords[upper]; ok {
		return k
	}
	return IDENT
}

// dotOperators maps the inner spelling of dot-delimited operators
// (.EQ., .AND., ...) to their kinds.
var dotOperators = map[string]Kind{
	"EQ": EQ, "NE": NE, "LT": LT, "LE": LE, "GT": GT, "GE": GE,
	"AND": AND, "OR": OR, "NOT": NOT, "TRUE": TRUE, "FALSE": FALSE,
}

// LookupDot maps the inner spelling of a dot operator (e.g. "EQ" for
// ".EQ.") to its kind. The second result reports whether the spelling is
// a recognized dot operator.
func LookupDot(upper string) (Kind, bool) {
	k, ok := dotOperators[upper]
	return k, ok
}

// Pos is a source position: 1-based line and column.
type Pos struct {
	Line int
	Col  int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token with its source position and spelling.
type Token struct {
	Kind Kind
	Pos  Pos
	Text string // original spelling (upper-cased for identifiers/keywords)
}

// String formats the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, REALLIT, STRLIT:
		return fmt.Sprintf("%s(%s)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
