// Package driver loads Go packages and applies the lint suite to
// them. It is the stdlib-only replacement for the x/tools analysis
// drivers (the module is dependency-free by policy) and supports the
// two ways ipcplint runs:
//
//   - standalone (`ipcplint ./...`): package metadata and compiled
//     export data come from `go list -export -deps -json`, each target
//     package is parsed from source and type-checked against its
//     dependencies' export data — the same shape a unitchecker sees;
//   - as a vet tool (`go vet -vettool=ipcplint ./...`): the go
//     command hands the tool one JSON config per compilation unit; see
//     unitchecker.go.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"ipcp/internal/lint"
)

// A Unit is one type-checked package ready for analysis.
type Unit struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// A Finding is one diagnostic attributed to its analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the vet-style line: position, message, analyzer.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// RunAnalyzers applies the analyzers to one unit, resolving
// //lint:ignore suppressions. Malformed suppressions are themselves
// findings (analyzer "lint"), so every ignore in the tree carries its
// audit reason.
//
// Test files are exempt: the invariants audit production paths, and a
// test's deliberate fault injection — dropped Close errors on cleanup,
// hand-built lattice cells in expectation tables — is the harness, not
// a contract violation. Vet units include _test.go sources (the
// standalone loader never sees them), so the exemption is applied
// here, where both drivers converge.
func RunAnalyzers(unit *Unit, analyzers []*lint.Analyzer) ([]Finding, error) {
	srcFiles := unit.Files
	if n := len(srcFiles); n > 0 {
		kept := make([]*ast.File, 0, n)
		for _, f := range srcFiles {
			if !strings.HasSuffix(unit.Fset.Position(f.Pos()).Filename, "_test.go") {
				kept = append(kept, f)
			}
		}
		srcFiles = kept
	}
	sup := lint.BuildSuppressions(unit.Fset, unit.Files)
	var findings []Finding
	for _, d := range sup.Malformed {
		findings = append(findings, Finding{
			Analyzer: "lint",
			Pos:      unit.Fset.Position(d.Pos),
			Message:  d.Message,
		})
	}
	for _, a := range analyzers {
		pass := &lint.Pass{
			Analyzer: a,
			Fset:     unit.Fset,
			Files:    srcFiles,
			Pkg:      unit.Pkg,
			Info:     unit.Info,
		}
		name := a.Name
		pass.Report = func(d lint.Diagnostic) {
			if sup.Suppressed(unit.Fset, name, d.Pos) {
				return
			}
			findings = append(findings, Finding{
				Analyzer: name,
				Pos:      unit.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzing %s: %w", a.Name, unit.Path, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// newInfo allocates the types.Info maps the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// listPkg is the slice of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
}

// Load resolves the patterns with the go command and type-checks
// every matched (non-dependency) package from source against the
// compiled export data of its dependencies.
func Load(patterns []string) ([]*Unit, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard", "--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}

	var units []*Unit
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
		pkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		units = append(units, &Unit{Path: p.ImportPath, Fset: fset, Files: files, Pkg: pkg, Info: info})
	}
	return units, nil
}
