package driver

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"

	"ipcp/internal/lint"
)

// This file speaks the go command's vet-tool protocol, so ipcplint
// runs as `go vet -vettool=$(pwd)/ipcplint ./...`:
//
//   1. cmd/go invokes the tool once with -V=full to obtain a
//      content-based tool ID for its action cache (handled in
//      cmd/ipcplint before flag parsing);
//   2. per compilation unit it writes a JSON config (vet.cfg) naming
//      the unit's sources, its dependencies' export-data files, and a
//      facts-output path, then invokes the tool with the config path
//      as the sole argument;
//   3. the tool type-checks the unit against the export data, runs
//      its analyzers, writes the (for ipcplint: empty — no analyzer
//      exports facts) facts file, prints diagnostics to stderr as
//      `file:line:col: message [analyzer]`, and exits 2 when it found
//      any — which cmd/go reports as a vet failure naming analyzer
//      and position.
//
// The config schema below mirrors cmd/go/internal/work.vetConfig;
// unknown fields are ignored on decode, so the schema may grow.

// VetConfig is the per-unit configuration cmd/go hands a vet tool.
type VetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// RunVet executes one vet compilation unit. It returns the process
// exit code: 0 clean, 1 operational failure, 2 diagnostics reported.
func RunVet(cfgPath string, analyzers []*lint.Analyzer, out io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(out, "ipcplint: reading vet config: %v\n", err)
		return 1
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(out, "ipcplint: parsing vet config %s: %v\n", cfgPath, err)
		return 1
	}

	// The facts file must exist for cmd/go to cache the unit; no
	// ipcplint analyzer exports facts, so it is always empty.
	writeVetx := func() int {
		if cfg.VetxOutput == "" {
			return 0
		}
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(out, "ipcplint: writing facts: %v\n", err)
			return 1
		}
		return 0
	}

	// Fact-only invocations (dependencies of the vetted packages) have
	// nothing to compute here.
	if cfg.VetxOnly {
		return writeVetx()
	}

	unit, err := typecheckUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return writeVetx()
		}
		fmt.Fprintf(out, "ipcplint: %v\n", err)
		return 1
	}

	findings, err := RunAnalyzers(unit, analyzers)
	if err != nil {
		fmt.Fprintf(out, "ipcplint: %v\n", err)
		return 1
	}
	if code := writeVetx(); code != 0 {
		return code
	}
	if len(findings) == 0 {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintln(out, f)
	}
	return 2
}

// typecheckUnit parses and type-checks one vet unit against its
// dependencies' export data.
func typecheckUnit(cfg *VetConfig) (*Unit, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}

	info := newInfo()
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, compilerName(cfg.Compiler), lookup),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", cfg.ImportPath, err)
	}
	return &Unit{Path: cfg.ImportPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// compilerName normalizes the config's compiler for go/importer.
func compilerName(c string) string {
	if c == "" {
		return "gc"
	}
	return c
}
