package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metricPkgs are the packages whose /metrics expositions are checked
// against their declarations.
var metricPkgs = []string{
	"ipcp/internal/server",
	"ipcp/internal/fleet",
}

// MetricReg cross-checks a metrics struct against its exposition: a
// counter or histogram that is declared (an atomic.Int64 or
// *Histogram field of a struct that owns a `write` exposition method)
// but never rendered is a silent observability gap — the regression
// it would have caught scrolls by uncounted; conversely an exposition
// line whose value is a bare literal is a metric that no declared
// counter backs, and a metric name emitted twice corrupts the
// Prometheus exposition outright.
var MetricReg = &Analyzer{
	Name: "metricreg",
	Doc: `cross-check declared counters/histograms against the /metrics exposition

Every atomic.Int64 / *Histogram field of a metrics struct must be
written into the struct's exposition (write) method; every exposed
series must be backed by state rather than a literal; no metric name
may be exposed twice.`,
	Run: runMetricReg,
}

func runMetricReg(pass *Pass) error {
	inScope := false
	for _, p := range metricPkgs {
		if pkgPathMatches(pass.Pkg.Path(), p) || strings.HasPrefix(pass.Pkg.Path(), p+"/") {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	// Pass 1: find exposition methods — methods named `write` or
	// `Write` whose first parameter is an io.Writer — keyed by their
	// receiver's named type.
	writeMethods := make(map[*types.TypeName]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "write" && fd.Name.Name != "Write" {
				continue
			}
			params := fd.Type.Params
			if params == nil || len(params.List) == 0 {
				continue
			}
			if t := pass.Info.TypeOf(params.List[0].Type); !implementsWriter(t) {
				continue
			}
			if tn := recvTypeName(pass.Info, fd); tn != nil {
				writeMethods[tn] = fd
			}
		}
	}
	if len(writeMethods) == 0 {
		return nil
	}

	// Pass 2: for each struct owning an exposition, collect its metric
	// fields and check each is referenced inside the write body; then
	// audit the write body's emitted names and value expressions.
	names := make([]*types.TypeName, 0, len(writeMethods))
	for tn := range writeMethods {
		names = append(names, tn)
	}
	sort.Slice(names, func(i, j int) bool { return names[i].Pos() < names[j].Pos() })
	for _, tn := range names {
		fd := writeMethods[tn]
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			if !isMetricField(field.Type()) {
				continue
			}
			if !fieldMentioned(pass.Info, fd.Body, field) {
				pass.Reportf(field.Pos(),
					"metric field %s.%s is declared but never written to the exposition in %s.%s — the series will silently not exist",
					tn.Name(), field.Name(), tn.Name(), fd.Name.Name)
			}
		}
		auditExposition(pass, fd)
	}
	return nil
}

// recvTypeName resolves a method's receiver to its named type.
func recvTypeName(info *types.Info, fd *ast.FuncDecl) *types.TypeName {
	if len(fd.Recv.List) == 0 {
		return nil
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// isMetricField reports whether a field holds metric state: an
// atomic.Int64, a *Histogram, or a slice/map of *Histogram.
func isMetricField(t types.Type) bool {
	switch tt := t.Underlying().(type) {
	case *types.Slice:
		return isHistogram(tt.Elem())
	case *types.Map:
		return isHistogram(tt.Elem())
	}
	return namedFrom(t, "sync/atomic", "Int64") || isHistogram(t)
}

// isHistogram reports whether t is a (pointer to a) type named
// Histogram — the shared fixed-bucket histogram.
func isHistogram(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Histogram"
}

// fieldMentioned reports whether the write body selects the field.
func fieldMentioned(info *types.Info, body *ast.BlockStmt, field *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if s, ok := info.Selections[sel]; ok && s.Obj() == field {
			found = true
			return false
		}
		return true
	})
	return found
}

// metricNameRe is the shape of an exposed series name.
var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)+$`)

// auditExposition checks the emission calls inside one write method:
// counter/gauge helper calls and Histogram.Expose calls. Duplicate
// names corrupt the exposition; a literal value argument means the
// series is not backed by any declared state.
func auditExposition(pass *Pass, fd *ast.FuncDecl) {
	seen := make(map[string]token.Pos)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		helper, nameIdx, valIdx := emissionCall(call)
		if !helper {
			return true
		}
		name, ok := stringLit(call.Args[nameIdx])
		if !ok || !metricNameRe.MatchString(name) {
			return true
		}
		if prev, dup := seen[name]; dup {
			pass.Reportf(call.Args[nameIdx].Pos(),
				"metric %q exposed twice (previous emission at %s) — duplicate series corrupt the exposition",
				name, pass.Fset.Position(prev))
		} else {
			seen[name] = call.Args[nameIdx].Pos()
		}
		if valIdx >= 0 && valIdx < len(call.Args) && !mentionsState(pass.Info, call.Args[valIdx]) {
			pass.Reportf(call.Args[valIdx].Pos(),
				"metric %q is exposed with a constant value — no declared counter backs it", name)
		}
		return true
	})
}

// emissionCall classifies a call inside write as a series emission:
// counter(name, help, v) / gauge(name, help, v) helpers (nameIdx 0,
// valIdx 2) or h.Expose(w, name, labels) (nameIdx 1, no value).
func emissionCall(call *ast.CallExpr) (ok bool, nameIdx, valIdx int) {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if (fn.Name == "counter" || fn.Name == "gauge") && len(call.Args) >= 3 {
			return true, 0, 2
		}
	case *ast.SelectorExpr:
		if fn.Sel.Name == "Expose" && len(call.Args) >= 2 {
			return true, 1, -1
		}
	}
	return false, 0, -1
}

// stringLit extracts a constant string literal.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	return s, err == nil
}

// mentionsState reports whether the value expression references any
// variable (receiver field, parameter, or derived local) — i.e. the
// series is backed by state rather than a hardcoded literal.
func mentionsState(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := info.Uses[id]; obj != nil {
			if _, isVar := obj.(*types.Var); isVar {
				found = true
				return false
			}
			if _, isFn := obj.(*types.Func); isFn {
				found = true // a sampled accessor counts as state
				return false
			}
		}
		return true
	})
	return found
}
