// Package lattice is the fixture stand-in for
// ipcp/internal/core/lattice: its one-segment import path matches the
// real package by final segment, so the latticeflow analyzer treats
// these as the real constructors and elements.
package lattice

// Value is the three-level constant-propagation lattice element.
type Value struct {
	kind int
	c    int64
}

// Top and Bottom are the lattice's extreme elements.
var (
	Top    = Value{kind: 0}
	Bottom = Value{kind: 2}
)

// OfInt makes a constant element.
func OfInt(c int64) Value { return Value{kind: 1, c: c} }

// OfBool makes a constant element from a boolean.
func OfBool(b bool) Value {
	if b {
		return OfInt(1)
	}
	return OfInt(0)
}

// Meet is the lattice meet: the greatest lower bound.
func Meet(a, b Value) Value {
	switch {
	case a.kind == 0:
		return b
	case b.kind == 0:
		return a
	case a == b:
		return a
	}
	return Bottom
}
