// Package server mirrors the daemon's metrics surface for the
// metricreg fixtures; its one-segment import path matches the real
// ipcp/internal/server by final segment, putting it in the analyzer's
// scope.
package server

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Histogram mirrors the shared fixed-bucket histogram.
type Histogram struct{ n int64 }

// Observe records one sample.
func (h *Histogram) Observe(v float64) { h.n++ }

// Expose renders the histogram series.
func (h *Histogram) Expose(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.n)
}

// metrics declares the counters the exposition must cover; two of
// them are deliberately missing from write.
type metrics struct {
	hits       atomic.Int64
	misses     atomic.Int64 // want `declared but never written to the exposition`
	latency    *Histogram
	unexposed  *Histogram // want `declared but never written to the exposition`
	generation int
}

// write renders the exposition, with one literal-backed series and
// one duplicated name.
func (m *metrics) write(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n%s %d\n", name, help, name, v)
	}
	counter("ipcpd_test_hits_total", "Cache hits.", m.hits.Load())
	counter("ipcpd_test_free_total", "Backed by nothing.", 42) // want `exposed with a constant value`
	counter("ipcpd_test_dup_total", "Duplicated.", m.hits.Load())
	counter("ipcpd_test_dup_total", "Duplicated again.", m.hits.Load()) // want `exposed twice`
	m.latency.Expose(w, "ipcpd_test_latency_seconds", "")
}
