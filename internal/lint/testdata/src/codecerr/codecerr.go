// Package codecerr exercises the discarded-error shapes against the
// summary and wal stubs (positive cases) and the contract-honoring
// handling idiom (negative cases).
package codecerr

import (
	"summary"
	"wal"
)

// discard drops contract errors in every statement position.
func discard(s *summary.Store, j *wal.Journal, k summary.Key) {
	s.Put(k, nil)    // want `call discards its error result`
	defer j.Close()  // want `deferred call discards its error result`
	go j.Append(nil) // want `goroutine call discards its error result`
}

// blanks launders contract errors through the blank identifier.
func blanks(s *summary.Store, k summary.Key) int {
	_ = s.Put(k, nil)           // want `error from summary.Put assigned to _`
	v, _ := summary.Decode(nil) // want `error from summary.Decode assigned to _`
	return v
}

// handled is the contract-honoring shape: every error is propagated.
func handled(s *summary.Store, j *wal.Journal, k summary.Key) error {
	if err := s.Put(k, nil); err != nil {
		return err
	}
	v, err := summary.Decode(nil)
	if err != nil {
		return err
	}
	b, err := summary.Encode(v)
	if err != nil {
		return err
	}
	if err := j.Append(b); err != nil {
		return err
	}
	return j.Close()
}

// audited suppresses a best-effort drop with its reason in place.
func audited(s *summary.Store, k summary.Key) {
	//lint:ignore codecerr best-effort read-through fill; the tier counts the fault itself
	_ = s.Put(k, nil)
}

// nonContract calls — errors from other packages — are out of scope.
func nonContract() {
	local()
}

func local() error { return nil }
