// Package core mirrors the solver package's loop shapes for the
// cancelpoll fixtures; its one-segment import path matches the real
// ipcp/internal/core by final segment, putting it in the analyzer's
// scope.
package core

// Config mirrors the solver's cancellation hook.
type Config struct {
	Cancel func() bool
}

// token mirrors context.Context's cancellation surface.
type token struct{}

func (token) Done() <-chan struct{} { return nil }
func (token) Err() error            { return nil }

// wedge drains a worklist without ever polling.
func wedge(work []int) {
	for len(work) > 0 { // want `unbounded loop never polls cancellation`
		work = work[1:]
	}
}

// spin is the bare-for shape.
func spin(step func()) {
	for { // want `unbounded loop never polls cancellation`
		step()
	}
}

// chanWedge ranges a channel with no way out but the producer.
func chanWedge(ch chan int) int {
	total := 0
	for v := range ch { // want `channel-range loop never polls cancellation`
		total += v
	}
	return total
}

// polled drains the same worklist but honors Config.Cancel each lap.
func polled(cfg Config, work []int) {
	for len(work) > 0 {
		if cfg.Cancel != nil && cfg.Cancel() {
			return
		}
		work = work[1:]
	}
}

// ctxPolled checks a context-shaped token's Err each lap.
func ctxPolled(ctx token, work []int) {
	for len(work) > 0 {
		if ctx.Err() != nil {
			return
		}
		work = work[1:]
	}
}

// chanPolled selects on a stop channel per message.
func chanPolled(ch chan int, stop chan struct{}) {
	for v := range ch {
		select {
		case <-stop:
			return
		default:
		}
		_ = v
	}
}

// deferPolled polls on the way out of each per-iteration frame: the
// deferred cancel check still runs every lap, so the loop carries a
// poll and is not flagged.
func deferPolled(cfg Config, ch chan int) {
	for range ch {
		func() {
			defer pollCancel(cfg)
		}()
	}
}

// pollCancel is the named-poll helper shape.
func pollCancel(cfg Config) {
	if cfg.Cancel != nil {
		cfg.Cancel()
	}
}

// bounded three-clause loops are never flagged.
func bounded(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}

// sliceRange is bounded by its operand.
func sliceRange(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// evict is the audited-false-positive shape: the condition strictly
// shrinks, so the suppression documents the termination argument.
func evict(snapshots map[int]int, max int) {
	//lint:ignore cancelpoll eviction strictly shrinks its own condition each iteration
	for len(snapshots) > max {
		for k := range snapshots {
			delete(snapshots, k)
			break
		}
	}
}
