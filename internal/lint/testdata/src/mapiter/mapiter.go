// Package mapiter holds the mapiter fixtures: map ranges feeding
// order-sensitive sinks (positive cases) and the collect-sort-emit
// idiom (negative cases).
package mapiter

import (
	"bytes"
	"fmt"
	"sort"
)

// emitUnsorted writes during iteration: no later sort can repair it.
func emitUnsorted(w *bytes.Buffer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s %d\n", k, v) // want `map iteration feeds an io.Writer`
	}
}

// sink is any Write-shaped receiver (a hash, an exposition writer).
type sink struct{ n int }

func (s *sink) Write(p []byte) (int, error) {
	s.n += len(p)
	return len(p), nil
}

// hashUnsorted feeds a hash one key at a time, in map order.
func hashUnsorted(h *sink, m map[string]int) {
	for k := range m {
		h.Write([]byte(k)) // want `map iteration feeds an io.Writer/hash`
	}
}

// blobWriter mirrors the summary codec's writer helpers.
type blobWriter struct{ buf []byte }

func (w *blobWriter) str(s string) { w.buf = append(w.buf, s...) }

// encodeUnsorted emits into the encoded blob in map order.
func encodeUnsorted(w *blobWriter, m map[string]int) {
	for k := range m {
		w.str(k) // want `codec writer method`
	}
}

// collectUnsorted leaks the iteration order through the slice.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `accumulates map keys in randomized order`
	}
	return keys
}

// collectSorted is the canonical collect-sort-emit idiom.
func collectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectLocalSort sorts with a dependency-free local helper.
func collectLocalSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

// sortStrings is the repo's dependency-free insertion sort shape.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// perKeyScratch appends only to a slice scoped inside the loop, which
// cannot leak the iteration order past it.
func perKeyScratch(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var scratch []int
		scratch = append(scratch, vs...)
		total += len(scratch)
	}
	return total
}

// pinSet is the audited-false-positive shape: the result is consumed
// as an unordered set, so the suppression documents the audit.
func pinSet(m map[string]int) []string {
	var pins []string
	for k := range m {
		//lint:ignore mapiter consumed as an unordered pin set; nothing observes the order
		pins = append(pins, k)
	}
	return pins
}
