// Package wal is the write-ahead-journal stub for the codecerr
// fixtures; its one-segment import path matches the real
// ipcp/internal/wal by final segment.
package wal

// Journal mirrors the journal's error-returning surface.
type Journal struct{}

// Append journals one record.
func (*Journal) Append(p []byte) error { return nil }

// Confirm marks the last appended record applied.
func (*Journal) Confirm() error { return nil }

// Close releases the journal.
func (*Journal) Close() error { return nil }
