// Package summary is the durability-contract stub for the codecerr
// fixtures: its error-returning surface mirrors the real
// ipcp/internal/summary store and codec APIs, and its one-segment
// import path matches the real package by final segment.
package summary

// Key identifies a stored blob.
type Key [4]byte

// Store mirrors the error-returning store surface.
type Store struct{}

// Put persists one blob.
func (*Store) Put(k Key, v []byte) error { return nil }

// FlushErr reports the first asynchronous write-back failure.
func (*Store) FlushErr() error { return nil }

// Decode mirrors the codec's decode half.
func Decode(b []byte) (int, error) { return 0, nil }

// Encode mirrors the codec's encode half.
func Encode(v int) ([]byte, error) { return nil, nil }
