// Package latticeflow holds the latticeflow fixtures: raw VAL-cell
// overwrites (positive cases) against the constructor/Meet/cell-copy
// idioms of the stage-3 solvers (negative cases).
package latticeflow

import "lattice"

// eval stands in for a jump-function evaluation outside the lattice
// package — the producer a raw overwrite would launder into a cell.
func eval() lattice.Value { return lattice.Bottom }

// rawOverwrite replaces the cell instead of meeting into it.
func rawOverwrite(cells []lattice.Value, i int) {
	cells[i] = eval() // want `non-monotone update can raise the cell`
}

// rawConstruct builds a Value from raw parts outside the lattice
// package.
func rawConstruct() lattice.Value {
	return lattice.Value{} // want `constructed directly`
}

// taintedLocal launders a raw value through a local.
func taintedLocal(cells []lattice.Value, i int) {
	v := eval()
	cells[i] = v // want `non-monotone update can raise the cell`
}

// mixedLocal shows one approved definition does not wash out a raw
// one.
func mixedLocal(cells []lattice.Value, i int) {
	v := lattice.Bottom
	v = eval()
	cells[i] = v // want `non-monotone update can raise the cell`
}

// meetInPlace is the canonical stage-3 descent.
func meetInPlace(cells []lattice.Value, i int, v lattice.Value) {
	cells[i] = lattice.Meet(cells[i], v)
}

// meetViaLocal is both solvers' idiom: meet into a named value, then
// store it.
func meetViaLocal(cells []lattice.Value, i int, v lattice.Value) {
	nv := lattice.Meet(cells[i], v)
	cells[i] = nv
}

// initCells seeds from the constructors and the extreme elements.
func initCells(cells []lattice.Value) {
	for i := range cells {
		cells[i] = lattice.Top
	}
	cells[0] = lattice.OfInt(1)
	cells[1] = lattice.OfBool(true)
}

// cellCopy moves a value between cells.
func cellCopy(cells []lattice.Value) {
	cells[1] = cells[0]
}

// frame mirrors the solvers' per-procedure cell vectors.
type frame struct{ formals []lattice.Value }

// fieldChainCopy copies a cell out of a field chain.
func fieldChainCopy(f *frame, cells []lattice.Value, i int) {
	cells[i] = f.formals[0]
}

// seedCopy propagates a cell out of a comma-ok map lookup — the
// warm-start seeding shape.
func seedCopy(cells []lattice.Value, seed map[int]lattice.Value, i int) {
	if sv, ok := seed[i]; ok {
		cells[i] = sv
	}
}
