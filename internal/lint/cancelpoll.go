package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// cancelPkgs are the subsystems whose loops sit on request paths: the
// stage-3 solvers and pass runner (deadline into the solve), the
// serving daemon, and the fleet router/supervisor. A wedged loop in
// any of them turns a deadline miss (504) into a stuck worker.
var cancelPkgs = []string{
	"ipcp/internal/core",
	"ipcp/internal/server",
	"ipcp/internal/fleet",
}

// CancelPoll enforces the deadline guarantee behind
// 504-without-wedge: every loop that can iterate unboundedly — a bare
// `for {}`, a condition-only worklist loop (`for len(work) > 0`), or
// a channel range — must poll a cancellation signal each iteration:
// the solver's Config.Cancel hook, ctx.Done()/ctx.Err(), a stop
// channel receive, or a helper whose name says it polls.
//
// Bounded loops (slice/map ranges, three-clause `for i := 0; i < n;
// i++`) are never flagged. Loops whose unboundedness is illusory —
// e.g. an LRU eviction loop that strictly shrinks its own condition —
// are audited false positives and carry //lint:ignore with the
// argument.
var CancelPoll = &Analyzer{
	Name: "cancelpoll",
	Doc: `flag unbounded loops in core/server/fleet with no cancellation poll

A loop that can iterate unboundedly without polling Config.Cancel or
ctx.Done() outlives its request deadline: the server answers 504 but
the worker stays wedged on the dead request.`,
	Run: runCancelPoll,
}

func runCancelPoll(pass *Pass) error {
	inScope := false
	for _, p := range cancelPkgs {
		if pkgPathMatches(pass.Pkg.Path(), p) || strings.HasPrefix(pass.Pkg.Path(), p+"/") {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				if n.Post != nil {
					return true // three-clause loops advance a bound
				}
				if !pollsCancellation(pass.Info, n.Body) {
					pass.Reportf(n.Pos(),
						"unbounded loop never polls cancellation; poll Config.Cancel/ctx.Done() (or a stop channel) each iteration so a deadline cannot wedge the worker")
				}
			case *ast.RangeStmt:
				t := pass.Info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Chan); ok {
					// A channel range parks on the producer, which is
					// itself a cancellation point only if the producer
					// closes on shutdown; require an explicit poll in
					// the body like any other unbounded loop.
					if !pollsCancellation(pass.Info, n.Body) {
						pass.Reportf(n.Pos(),
							"channel-range loop never polls cancellation; poll Config.Cancel/ctx.Done() per message or select on a stop channel")
					}
				}
			}
			return true
		})
	}
	return nil
}

// pollsCancellation reports whether the loop body contains a
// recognizable cancellation poll.
func pollsCancellation(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if cancelishCall(info, n) {
				found = true
				return false
			}
		case *ast.UnaryExpr:
			// A blocking or selected channel receive parks the loop on
			// an external signal — the stop-channel idiom.
			if n.Op == token.ARROW {
				found = true
				return false
			}
		case *ast.SelectStmt:
			for _, c := range n.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// cancelishCall reports whether the call is a recognizable poll: a
// callee whose name mentions cancel/poll, a context Done()/Err(), or
// the pass Context's Canceled().
func cancelishCall(info *types.Info, call *ast.CallExpr) bool {
	var name string
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fn.Name
	case *ast.SelectorExpr:
		name = fn.Sel.Name
		if name == "Done" || name == "Err" {
			// Only count context-ish receivers: Done() <-chan struct{},
			// or Err() on something with a Done() — approximated by the
			// receiver implementing { Done() <-chan struct{} }.
			if t := info.TypeOf(fn.X); t != nil && hasDoneMethod(t) {
				return true
			}
			return false
		}
	default:
		return false
	}
	lower := strings.ToLower(name)
	return strings.Contains(lower, "cancel") || strings.Contains(lower, "poll") ||
		lower == "canceled" || lower == "cancelled"
}

// doneIface is the structural { Done() <-chan struct{} } interface.
var doneIface = types.NewInterfaceType([]*types.Func{
	types.NewFunc(0, nil, "Done", types.NewSignatureType(nil, nil, nil, nil,
		types.NewTuple(types.NewVar(0, nil, "",
			types.NewChan(types.RecvOnly, types.NewStruct(nil, nil)))), false)),
}, nil).Complete()

// hasDoneMethod reports whether t looks like a context.Context.
func hasDoneMethod(t types.Type) bool {
	if types.Implements(t, doneIface) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(t), doneIface)
	}
	return false
}
