package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const suppressSrc = `package p

func f() {
	//lint:ignore mapiter audited: consumed as a set
	x := 1
	_ = x
	//lint:ignore mapiter
	y := 2
	_ = y
	//lint:ignore all everything here is audited
	z := 3
	_ = z
}
`

func buildSuppressions(t *testing.T) (*token.FileSet, *Suppressions) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", suppressSrc, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, BuildSuppressions(fset, []*ast.File{f})
}

func lineStart(t *testing.T, fset *token.FileSet, line int) token.Pos {
	t.Helper()
	var pos token.Pos
	fset.Iterate(func(f *token.File) bool {
		pos = f.LineStart(line)
		return false
	})
	return pos
}

func TestSuppressionCoversCommentAndNextLine(t *testing.T) {
	fset, s := buildSuppressions(t)
	if !s.Suppressed(fset, "mapiter", lineStart(t, fset, 4)) {
		t.Error("comment line itself not suppressed")
	}
	if !s.Suppressed(fset, "mapiter", lineStart(t, fset, 5)) {
		t.Error("line below the comment not suppressed")
	}
	if s.Suppressed(fset, "mapiter", lineStart(t, fset, 6)) {
		t.Error("suppression leaked two lines past the comment")
	}
	if s.Suppressed(fset, "latticeflow", lineStart(t, fset, 5)) {
		t.Error("suppression applied to an analyzer it does not name")
	}
}

func TestSuppressionAllWildcard(t *testing.T) {
	fset, s := buildSuppressions(t)
	for _, name := range []string{"mapiter", "latticeflow", "cancelpoll"} {
		if !s.Suppressed(fset, name, lineStart(t, fset, 11)) {
			t.Errorf("all-wildcard did not silence %s", name)
		}
	}
}

func TestSuppressionWithoutReasonIsMalformed(t *testing.T) {
	fset, s := buildSuppressions(t)
	if len(s.Malformed) != 1 {
		t.Fatalf("got %d malformed suppressions, want 1", len(s.Malformed))
	}
	if got := fset.Position(s.Malformed[0].Pos).Line; got != 7 {
		t.Errorf("malformed suppression reported at line %d, want 7", got)
	}
	if !strings.Contains(s.Malformed[0].Message, "needs a reason") {
		t.Errorf("malformed message %q does not explain the policy", s.Malformed[0].Message)
	}
	// A reasonless ignore must not silence anything.
	if s.Suppressed(fset, "mapiter", lineStart(t, fset, 8)) {
		t.Error("reasonless ignore still suppressed the next line")
	}
}
