package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// The analyzers key on this module's import paths. Fixture packages
// under testdata/src reproduce the same shapes under bare one-segment
// paths ("lattice", "summary", ...), so path matching accepts the real
// path or anything sharing its final segment — precise enough for a
// self-lint, and what lets the analysistest fixtures exercise the
// exact production code paths.

// pkgPathMatches reports whether path is full or shares its last
// segment (the fixture spelling).
func pkgPathMatches(path, full string) bool {
	if path == full {
		return true
	}
	last := full
	if i := strings.LastIndexByte(full, '/'); i >= 0 {
		last = full[i+1:]
	}
	return path == last || strings.HasSuffix(path, "/"+last)
}

// pkgMatches reports whether pkg (possibly nil) matches full.
func pkgMatches(pkg *types.Package, full string) bool {
	return pkg != nil && pkgPathMatches(pkg.Path(), full)
}

// namedFrom reports whether t (after pointer and alias stripping) is
// the named type pkg.name for a package matching full.
func namedFrom(t types.Type, full, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && pkgMatches(obj.Pkg(), full)
}

// calleeFunc resolves the *types.Func a call invokes (nil for builtins,
// function-typed variables, and type conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// ioWriter is a structural io.Writer built by hand so the check does
// not depend on the package under analysis importing "io".
var ioWriter = types.NewInterfaceType([]*types.Func{
	types.NewFunc(0, nil, "Write", types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(0, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(
			types.NewVar(0, nil, "n", types.Typ[types.Int]),
			types.NewVar(0, nil, "err", types.Universe.Lookup("error").Type()),
		), false)),
}, nil).Complete()

// implementsWriter reports whether t satisfies io.Writer.
func implementsWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.Implements(t, ioWriter) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(t), ioWriter)
	}
	return false
}

// rootIdent walks to the leftmost identifier of a selector/index
// chain: rootIdent(p.vals.formals[callee]) = p.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprMentionsObj reports whether the expression references obj.
func exprMentionsObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// funcFor returns the innermost enclosing FuncDecl/FuncLit body of a
// node path. Analyzers that need the enclosing function walk with
// withStack below.
type stackVisitor func(n ast.Node, stack []ast.Node) bool

// withStack walks root calling fn with the ancestor stack (root
// first). Returning false prunes the subtree.
func withStack(root ast.Node, fn stackVisitor) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		stack = append(stack, n)
		if !keep {
			// Still push/pop symmetrically: Inspect will not descend,
			// so pop now and skip children.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}
