package lint_test

import (
	"testing"

	"ipcp/internal/lint"
	"ipcp/internal/lint/lintest"
)

func TestMapIter(t *testing.T) {
	lintest.Run(t, "testdata", lint.MapIter, "mapiter")
}

func TestLatticeFlow(t *testing.T) {
	lintest.Run(t, "testdata", lint.LatticeFlow, "latticeflow")
}

func TestCancelPoll(t *testing.T) {
	lintest.Run(t, "testdata", lint.CancelPoll, "core")
}

func TestCodecErr(t *testing.T) {
	lintest.Run(t, "testdata", lint.CodecErr, "codecerr")
}

func TestMetricReg(t *testing.T) {
	lintest.Run(t, "testdata", lint.MetricReg, "server")
}

func TestSelect(t *testing.T) {
	all := lint.All()
	picked, err := lint.Select(all, "mapiter,codecerr")
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if len(picked) != 2 || picked[0].Name != "mapiter" || picked[1].Name != "codecerr" {
		t.Fatalf("Select picked %v", picked)
	}
	if _, err := lint.Select(all, "nosuch"); err == nil {
		t.Fatal("Select accepted an unknown analyzer")
	}
	whole, err := lint.Select(all, "")
	if err != nil || len(whole) != len(all) {
		t.Fatalf("empty -only should select the whole suite, got %d, %v", len(whole), err)
	}
}
