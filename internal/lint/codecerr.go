package lint

import (
	"go/ast"
	"go/types"
)

// errPkgs are the durability-contract packages: every error their
// APIs return is part of an acknowledgment protocol. A codec decode
// error distinguishes corruption from absence; a WAL append error
// means the Put was never journaled and must not be acked; a store
// Put/Flush error is the difference between "durable" and "silently
// dropped".
var errPkgs = []string{
	"ipcp/internal/summary",
	"ipcp/internal/wal",
}

// CodecErr enforces the durability ack contract: errors returned by
// the summary codec (Encode/Decode families), the write-ahead journal
// (Append, Replay, Close, ...), and the summary stores (Put,
// FlushErr, ...) must never be discarded — neither by calling in
// statement position nor by assigning the error to the blank
// identifier. Best-effort paths that genuinely may drop the error
// (e.g. an async write-back that already counts it) say so with
// //lint:ignore and a reason.
var CodecErr = &Analyzer{
	Name: "codecerr",
	Doc: `flag discarded errors from summary codec / WAL / store APIs

An acked Put that silently failed to journal, a decode error folded
into "miss", or an unflushed write-back breaks the crash-durability
contract: errors from ipcp/internal/summary and ipcp/internal/wal
must be handled or explicitly suppressed with an audit note.`,
	Run: runCodecErr,
}

func runCodecErr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					reportDiscarded(pass, call, "call discards its error result")
				}
			case *ast.DeferStmt:
				reportDiscarded(pass, n.Call, "deferred call discards its error result")
			case *ast.GoStmt:
				reportDiscarded(pass, n.Call, "goroutine call discards its error result")
			case *ast.AssignStmt:
				checkBlankErr(pass, n)
			}
			return true
		})
	}
	return nil
}

// contractErrFunc resolves a call to a durability-contract function
// whose results include an error; it returns the function and the
// index of the error result, or (nil, -1).
func contractErrFunc(info *types.Info, call *ast.CallExpr) (*types.Func, int) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return nil, -1
	}
	match := false
	for _, p := range errPkgs {
		if pkgMatches(fn.Pkg(), p) {
			match = true
			break
		}
	}
	if !match {
		return nil, -1
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, -1
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return fn, i
		}
	}
	return nil, -1
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// reportDiscarded flags a statement-position contract call.
func reportDiscarded(pass *Pass, call *ast.CallExpr, how string) {
	fn, _ := contractErrFunc(pass.Info, call)
	if fn == nil {
		return
	}
	pass.Reportf(call.Pos(),
		"%s: %s.%s's error is part of the durability ack contract — handle it or suppress with an audit note", how, fn.Pkg().Name(), fn.Name())
}

// checkBlankErr flags `_ = store.Put(...)` and `v, _ := Decode(...)`
// where the blank identifier lands on the contract error.
func checkBlankErr(pass *Pass, assign *ast.AssignStmt) {
	// Multi-value destructuring of a single call.
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		call, ok := ast.Unparen(assign.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		fn, errIdx := contractErrFunc(pass.Info, call)
		if fn == nil || errIdx >= len(assign.Lhs) {
			return
		}
		if isBlank(assign.Lhs[errIdx]) {
			pass.Reportf(assign.Pos(),
				"error from %s.%s assigned to _ — it is part of the durability ack contract; handle it or suppress with an audit note", fn.Pkg().Name(), fn.Name())
		}
		return
	}
	// One-to-one assignments: `_ = j.Close()`.
	for i, rhs := range assign.Rhs {
		if i >= len(assign.Lhs) || !isBlank(assign.Lhs[i]) {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if fn, _ := contractErrFunc(pass.Info, call); fn != nil {
			pass.Reportf(assign.Pos(),
				"error from %s.%s assigned to _ — it is part of the durability ack contract; handle it or suppress with an audit note", fn.Pkg().Name(), fn.Name())
		}
	}
}

// isBlank reports whether e is the blank identifier.
func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}
