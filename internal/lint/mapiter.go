package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIter enforces the determinism invariant behind everything the
// analyzer emits or hashes: Go map iteration order is random, so a
// `range` over a map must never feed an order-sensitive sink — an
// io.Writer (exposition, codec output), a hash (codec checksums,
// Merkle cone keys, jump-function fingerprints), or an encoder —
// directly, and a slice accumulated from one must be sorted before
// anything downstream can observe its order.
//
// Flagged:
//   - a map-range body that calls fmt.Fprint*/Write*/Encode* on a
//     writer, hash, or codec writer (no sort can repair in-loop
//     emission);
//   - a map-range body that appends to a slice declared outside the
//     loop, when no later statement of the enclosing function passes
//     that slice to sort.* / slices.Sort*.
//
// The collect-sort-emit idiom used throughout the repo is the
// negative case and is never flagged.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: `flag map iteration feeding order-sensitive sinks without a sort

Map ranges that write to an io.Writer/hash/encoder, or that accumulate
a slice that is never sorted afterwards, leak randomized iteration
order into emitted bytes, cache keys, and fingerprints — the
determinism invariant behind codec V3/V4, Merkle cone keys, and the
/metrics exposition.`,
	Run: runMapIter,
}

func runMapIter(pass *Pass) error {
	for _, f := range pass.Files {
		withStack(f, func(n ast.Node, stack []ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if !isMapRange(pass.Info, rng) {
				return true
			}
			checkMapRange(pass, rng, stack)
			return true
		})
	}
	return nil
}

// isMapRange reports whether the range statement iterates a map.
func isMapRange(info *types.Info, rng *ast.RangeStmt) bool {
	t := info.TypeOf(rng.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange inspects one map-range loop.
func checkMapRange(pass *Pass, rng *ast.RangeStmt, stack []ast.Node) {
	// appended maps each outer slice object to the first append site.
	appended := make(map[types.Object]token.Pos)
	var appendOrder []types.Object

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sink, what := emissionSink(pass.Info, n); sink {
				pass.Reportf(n.Pos(),
					"map iteration feeds %s; iteration order is randomized — collect and sort keys first", what)
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltin(pass.Info, call, "append") || len(call.Args) == 0 {
					continue
				}
				if i >= len(n.Lhs) {
					continue
				}
				id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				// Only slices declared outside the loop can leak the
				// iteration order past it.
				if obj == nil || insideNode(obj.Pos(), rng) {
					continue
				}
				if _, seen := appended[obj]; !seen {
					appended[obj] = n.Pos()
					appendOrder = append(appendOrder, obj)
				}
			}
		}
		return true
	})

	if len(appendOrder) == 0 {
		return
	}
	fn := enclosingFuncBody(stack)
	for _, obj := range appendOrder {
		if fn != nil && sortedAfter(pass.Info, fn, obj, rng.End()) {
			continue
		}
		pass.Reportf(appended[obj],
			"slice %q accumulates map keys in randomized order and is never sorted afterwards — sort it before it is emitted or hashed", obj.Name())
	}
}

// emissionSink classifies a call inside a map-range body as an
// order-sensitive emission.
func emissionSink(info *types.Info, call *ast.CallExpr) (bool, string) {
	if fn := calleeFunc(info, call); fn != nil {
		if pkgMatches(fn.Pkg(), "fmt") && strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
			return true, "an io.Writer via fmt." + fn.Name()
		}
		if strings.HasPrefix(fn.Name(), "Encode") && fn.Pkg() != nil {
			return true, "encoder " + fn.Pkg().Name() + "." + fn.Name()
		}
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false, ""
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		recv := info.TypeOf(sel.X)
		if implementsWriter(recv) {
			return true, "an io.Writer/hash via " + sel.Sel.Name
		}
	}
	// The summary codec's writer helpers (w.str, w.bytes, ...) emit
	// into the encoded blob; any method on a codec writer counts.
	if recv := info.TypeOf(sel.X); recv != nil {
		name := typeName(recv)
		if strings.Contains(strings.ToLower(name), "writer") || strings.HasSuffix(name, "Encoder") {
			return true, "codec writer method ." + sel.Sel.Name
		}
	}
	return false, ""
}

// typeName returns the bare name of a (possibly pointer) named type.
func typeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// insideNode reports whether pos falls within node's span.
func insideNode(pos token.Pos, node ast.Node) bool {
	return pos >= node.Pos() && pos < node.End()
}

// enclosingFuncBody returns the innermost function body on the stack.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// sortedAfter reports whether obj is passed to a sort.*/slices.Sort*
// call (directly or inside a closure argument) at a position after
// the range loop within the enclosing function body.
func sortedAfter(info *types.Info, body *ast.BlockStmt, obj types.Object, after token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		// sort.* and slices.Sort* count, and so does any local helper
		// whose name says it sorts (the repo's dependency-free
		// insertion sorts).
		isSort := pkgMatches(fn.Pkg(), "sort") ||
			(pkgMatches(fn.Pkg(), "slices") && strings.HasPrefix(fn.Name(), "Sort")) ||
			strings.Contains(strings.ToLower(fn.Name()), "sort")
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if exprMentionsObj(info, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
