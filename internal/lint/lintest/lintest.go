// Package lintest runs lint analyzers over fixture packages and
// checks their diagnostics against `// want "regexp"` comments — the
// analysistest analogue for the stdlib-only suite.
//
// Fixtures live under <testdata>/src/<path>. Imports between fixture
// packages resolve under the same root, so a fixture can import a stub
// "lattice" or "summary" package whose one-segment path matches the
// real package by final segment (see pkgPathMatches in package lint);
// stdlib imports resolve through the toolchain's compiled export data.
//
// A want comment sits on the line the diagnostic is expected on and
// holds one or more patterns, each matched (as a regexp search)
// against one diagnostic's message:
//
//	keys = append(keys, k) // want `accumulates map keys`
//
// Diagnostics with no matching want, and wants with no matching
// diagnostic, are test failures. Suppression comments work exactly as
// in production: the findings are filtered through the same driver.
package lintest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"ipcp/internal/lint"
	"ipcp/internal/lint/driver"
)

// Run applies one analyzer to each fixture package rooted at
// <testdata>/src and reports every mismatch against the fixtures'
// want comments as a test error.
func Run(t *testing.T, testdata string, a *lint.Analyzer, paths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(testdata, "src"))
	for _, path := range paths {
		unit, err := l.unit(path)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", path, err)
		}
		findings, err := driver.RunAnalyzers(unit, []*lint.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		checkExpectations(t, unit, findings)
	}
}

// An expectation is one want pattern anchored to a file and line.
type expectation struct {
	file      string
	line      int
	re        *regexp.Regexp
	satisfied bool
}

// wantArgRe splits a want comment's payload into quoted patterns:
// double-quoted Go strings or backquoted raw strings.
var wantArgRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// parseWants extracts the expectations from a fixture's comments.
func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				payload, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				args := wantArgRe.FindAllString(payload, -1)
				if len(args) == 0 {
					t.Errorf("%s: want comment has no quoted pattern: %q", pos, c.Text)
					continue
				}
				for _, arg := range args {
					pat := arg
					if strings.HasPrefix(arg, "\"") {
						unq, err := strconv.Unquote(arg)
						if err != nil {
							t.Errorf("%s: bad want pattern %s: %v", pos, arg, err)
							continue
						}
						pat = unq
					} else {
						pat = strings.Trim(arg, "`")
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// checkExpectations matches findings against wants one-to-one.
func checkExpectations(t *testing.T, unit *driver.Unit, findings []driver.Finding) {
	t.Helper()
	wants := parseWants(t, unit.Fset, unit.Files)
	type lineKey struct {
		file string
		line int
	}
	byLine := make(map[lineKey][]*expectation)
	for _, w := range wants {
		k := lineKey{w.file, w.line}
		byLine[k] = append(byLine[k], w)
	}
	for _, f := range findings {
		matched := false
		for _, w := range byLine[lineKey{f.Pos.Filename, f.Pos.Line}] {
			if !w.satisfied && w.re.MatchString(f.Message) {
				w.satisfied = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", f.Pos, f.Message, f.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.satisfied {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

// A loader resolves fixture packages from source and everything else
// from the toolchain's export data, all on one shared FileSet.
type loader struct {
	srcRoot string
	fset    *token.FileSet
	cache   map[string]loadResult
	std     types.Importer
	exports map[string]string
}

type loadResult struct {
	u   *driver.Unit
	err error
}

func newLoader(srcRoot string) *loader {
	l := &loader{
		srcRoot: srcRoot,
		fset:    token.NewFileSet(),
		cache:   make(map[string]loadResult),
		exports: make(map[string]string),
	}
	l.std = importer.ForCompiler(l.fset, "gc", l.lookupStd)
	return l
}

// lookupStd resolves a non-fixture import to its compiled export data
// via the go command (the same offline mechanism the standalone
// driver uses).
func (l *loader) lookupStd(path string) (io.ReadCloser, error) {
	file, ok := l.exports[path]
	if !ok {
		cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", "--", path)
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go list -export %s: %v", path, err)
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		l.exports[path] = file
	}
	return os.Open(file)
}

// Import implements types.Importer: fixture-root packages first,
// stdlib for everything else.
func (l *loader) Import(path string) (*types.Package, error) {
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		u, err := l.unit(path)
		if err != nil {
			return nil, err
		}
		return u.Pkg, nil
	}
	return l.std.Import(path)
}

// unit loads (or returns the cached) fixture package at path.
func (l *loader) unit(path string) (*driver.Unit, error) {
	if r, ok := l.cache[path]; ok {
		return r.u, r.err
	}
	// Seed the cache so a cyclic fixture import fails instead of
	// recursing forever.
	l.cache[path] = loadResult{err: fmt.Errorf("fixture import cycle through %q", path)}
	u, err := l.load(path)
	l.cache[path] = loadResult{u: u, err: err}
	return u, err
}

func (l *loader) load(path string) (*driver.Unit, error) {
	dir := filepath.Join(l.srcRoot, filepath.FromSlash(path))
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		return nil, fmt.Errorf("no fixture sources in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing fixture %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", path, err)
	}
	return &driver.Unit{Path: path, Fset: l.fset, Files: files, Pkg: pkg, Info: info}, nil
}
