// Package lint is a static-analysis suite for the analyzer itself: a
// set of custom checkers encoding the repo's own correctness
// invariants — deterministic iteration before anything is emitted or
// hashed, lattice cells that only descend, cancellation polled in
// every unbounded loop, codec/WAL/store errors never dropped, and a
// metrics exposition that matches its declarations — run at `go vet`
// time so invariant drift is caught before the differential sweeps
// ever get a chance to flake.
//
// The package mirrors the golang.org/x/tools/go/analysis shape
// (Analyzer, Pass, Diagnostic) but is built on the standard library
// only: the module is dependency-free by policy, so the framework,
// the drivers (standalone and `go vet -vettool` unitchecker), and the
// fixture test runner are all hand-rolled over go/ast, go/types, and
// go/importer.
//
// # Suppression policy
//
// A finding that an audit decides is a false positive is silenced in
// place, never globally:
//
//	//lint:ignore mapiter order is canonicalized by the codec below
//	for k, v := range m { ... }
//
// The comment names the analyzers it silences (comma-separated) and
// must carry a reason; it applies to diagnostics reported on its own
// line or the line directly below it. Unexplained or analyzer-less
// ignores are themselves reported, so every suppression in the tree
// documents its audit.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -only flags, and
	// //lint:ignore comments. It must be a valid identifier.
	Name string

	// Doc is the one-paragraph description `ipcplint -list` prints;
	// the first line is the summary.
	Doc string

	// Run applies the analyzer to one package, reporting findings
	// through pass.Report.
	Run func(pass *Pass) error
}

// A Pass hands one package's syntax and types to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Report delivers one diagnostic. The driver installs it and
	// applies the suppression filter before recording.
	Report func(Diagnostic)
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// All returns the full ipcplint suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		MapIter,
		LatticeFlow,
		CancelPoll,
		CodecErr,
		MetricReg,
	}
}

// Select resolves a comma-separated -only list against the suite.
func Select(all []*Analyzer, only string) ([]*Analyzer, error) {
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a := byName[name]
		if a == nil {
			known := make([]string, 0, len(all))
			for _, a := range all {
				known = append(known, a.Name)
			}
			sort.Strings(known)
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(known, ", "))
		}
		picked = append(picked, a)
	}
	return picked, nil
}

// ignoreRe matches the suppression comment:
//
//	//lint:ignore name1,name2 reason...
var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s*(.*)$`)

// Suppressions indexes the //lint:ignore comments of one package.
// A key of (file, line) lists the analyzer names silenced at that
// line; the comment suppresses its own line and the following one, so
// it can sit on the flagged line or directly above the flagged
// statement.
type Suppressions struct {
	byLine map[suppressKey][]string

	// Malformed collects ignore comments with no analyzer list or no
	// reason; the driver reports them so suppressions stay audited.
	Malformed []Diagnostic
}

type suppressKey struct {
	file string
	line int
}

// BuildSuppressions scans a package's comments for ignore directives.
func BuildSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{byLine: make(map[suppressKey][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				names, reason := m[1], strings.TrimSpace(m[2])
				if reason == "" {
					s.Malformed = append(s.Malformed, Diagnostic{
						Pos:     c.Pos(),
						Message: "lint:ignore needs a reason: //lint:ignore <analyzers> <why this is a false positive>",
					})
					continue
				}
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						k := suppressKey{file: pos.Filename, line: line}
						s.byLine[k] = append(s.byLine[k], name)
					}
				}
			}
		}
	}
	return s
}

// Suppressed reports whether a diagnostic from the named analyzer at
// pos is silenced by an ignore comment.
func (s *Suppressions) Suppressed(fset *token.FileSet, name string, pos token.Pos) bool {
	if s == nil {
		return false
	}
	p := fset.Position(pos)
	for _, n := range s.byLine[suppressKey{file: p.Filename, line: p.Line}] {
		if n == name || n == "all" {
			return true
		}
	}
	return false
}
