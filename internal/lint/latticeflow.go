package lint

import (
	"go/ast"
	"go/types"
)

// latticePkg is the one package allowed to construct lattice.Value
// elements from raw parts.
const latticePkg = "ipcp/internal/core/lattice"

// LatticeFlow enforces the monotone-descent invariant of stage 3: a
// VAL cell — an element of a slice or map of lattice.Value — may only
// ever be initialized from the lattice package's constructors
// (Top/Bottom/Of/OfInt/OfBool), lowered through lattice.Meet, or
// copied from another cell. Any other write risks raising a cell
// mid-solve, which silently breaks the fixpoint the whole flavor
// study rests on (a warm-started re-solve that diverges from the cold
// one, a solver that never terminates, or — worst — one that
// terminates on a wrong answer).
//
// Flagged:
//   - composite literals of lattice.Value outside the lattice package
//     (construction must go through the constructors so the kind/const
//     pairing stays coherent);
//   - an assignment storing into a lattice.Value element whose
//     right-hand side is not a lattice constructor, a lattice.Meet
//     call, a copy of another cell, or a local whose every definition
//     is one of those.
//
// Writes like `cells[i] = sym.Eval(jf, env)` — overwriting a cell
// with a freshly evaluated value instead of meeting into it — are
// exactly the bug shape this catches.
var LatticeFlow = &Analyzer{
	Name: "latticeflow",
	Doc: `flag lattice.Value cell writes that bypass Meet and the constructors

VAL cells must only descend: initialization via lattice.Top/Bottom/
Of/OfInt/OfBool, lowering via lattice.Meet, or copies of other cells.
A raw overwrite can raise a cell mid-solve and corrupt the fixpoint.`,
	Run: runLatticeFlow,
}

func runLatticeFlow(pass *Pass) error {
	if pkgPathMatches(pass.Pkg.Path(), latticePkg) {
		return nil // the lattice package owns its representation
	}
	for _, f := range pass.Files {
		withStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if t := pass.Info.TypeOf(n); t != nil && isLatticeValue(t) {
					pass.Reportf(n.Pos(),
						"lattice.Value constructed directly; use lattice.Top/Bottom/Of/OfInt/OfBool so the element stays coherent")
				}
			case *ast.AssignStmt:
				checkCellAssign(pass, n, stack)
			}
			return true
		})
	}
	return nil
}

// isLatticeValue reports whether t is lattice.Value.
func isLatticeValue(t types.Type) bool {
	return namedFrom(t, latticePkg, "Value")
}

// checkCellAssign flags stores into lattice.Value elements with an
// unapproved right-hand side.
func checkCellAssign(pass *Pass, assign *ast.AssignStmt, stack []ast.Node) {
	if len(assign.Lhs) != len(assign.Rhs) {
		return // comma-ok / multi-value calls never store raw cells
	}
	for i, lhs := range assign.Lhs {
		idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok {
			continue
		}
		if t := pass.Info.TypeOf(idx); t == nil || !isLatticeValue(t) {
			continue
		}
		rhs := assign.Rhs[i]
		if descendingExpr(pass.Info, rhs) {
			continue
		}
		if id, ok := ast.Unparen(rhs).(*ast.Ident); ok {
			if body := enclosingFuncBody(stack); body != nil && descendingLocal(pass.Info, body, id) {
				continue
			}
		}
		pass.Reportf(assign.Pos(),
			"lattice.Value cell overwritten by a value that is not a lattice constructor, a Meet, or a cell copy — non-monotone update can raise the cell mid-solve")
	}
}

// descendingExpr reports whether e is an approved cell source: a
// lattice-package constructor/Meet call, the Top/Bottom elements, or
// a copy of another cell (index/selector of type lattice.Value).
func descendingExpr(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		fn := calleeFunc(info, e)
		return fn != nil && pkgMatches(fn.Pkg(), latticePkg)
	case *ast.SelectorExpr:
		// lattice.Top / lattice.Bottom, or a cell read through a field
		// chain (cells.Formals[i] is an IndexExpr; plain field reads of
		// type Value are cell copies too).
		if obj, ok := info.Uses[e.Sel]; ok && pkgMatches(obj.Pkg(), latticePkg) {
			return true
		}
		t := info.TypeOf(e)
		return t != nil && isLatticeValue(t)
	case *ast.IndexExpr:
		t := info.TypeOf(e)
		if t != nil && isLatticeValue(t) {
			return true // copy of another cell
		}
		// In comma-ok position (`sv, ok := seed[val]`) the index
		// expression's recorded type is the (Value, bool) tuple; look
		// at the container's element type instead.
		if base := info.TypeOf(e.X); base != nil {
			switch bt := base.Underlying().(type) {
			case *types.Map:
				return isLatticeValue(bt.Elem())
			case *types.Slice:
				return isLatticeValue(bt.Elem())
			case *types.Array:
				return isLatticeValue(bt.Elem())
			}
		}
	}
	return false
}

// descendingLocal reports whether every assignment to the local id in
// the enclosing function body has an approved right-hand side — the
// `nv := lattice.Meet(old, v); cells[i] = nv` idiom of both stage-3
// solvers.
func descendingLocal(info *types.Info, body *ast.BlockStmt, id *ast.Ident) bool {
	obj := info.Uses[id]
	if obj == nil {
		return false
	}
	approved, all := 0, 0
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range assign.Lhs {
			lid, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || (info.Defs[lid] != obj && info.Uses[lid] != obj) {
				continue
			}
			all++
			var rhs ast.Expr
			switch {
			case len(assign.Rhs) == len(assign.Lhs):
				rhs = assign.Rhs[i]
			case len(assign.Rhs) == 1:
				// Comma-ok destructuring: `sv, ok := seed[val]`.
				rhs = assign.Rhs[0]
			}
			if rhs != nil && descendingExpr(info, rhs) {
				approved++
			}
		}
		return true
	})
	return all > 0 && approved == all
}
