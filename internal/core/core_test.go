package core

import (
	"testing"

	"ipcp/internal/core/jump"
	"ipcp/internal/mf/parser"
	"ipcp/internal/mf/sema"
)

func analyzeSrc(t *testing.T, src string, cfg Config) *Result {
	t.Helper()
	return Analyze(mustSema(t, src), cfg)
}

func mustSema(t *testing.T, src string) *sema.Program {
	t.Helper()
	f, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sema.Analyze(f)
	if err != nil {
		t.Fatalf("sema: %v", err)
	}
	return sp
}

// constVal returns the constant value of name in CONSTANTS(proc), or
// (0, false).
func constVal(res *Result, proc, name string) (int64, bool) {
	pr := res.Procs[proc]
	if pr == nil {
		return 0, false
	}
	for _, c := range pr.Constants {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

func cfgAll(kind jump.Kind) Config {
	return Config{Jump: kind, ReturnJFs: true, MOD: true}
}

// ---------------------------------------------------------------------------
// Flavor-specific detection

const literalSrc = `
PROGRAM MAIN
  CALL S(42)
END
SUBROUTINE S(N)
  INTEGER N, X
  X = N
  RETURN
END
`

func TestLiteralJumpFunctionFindsLiterals(t *testing.T) {
	for _, kind := range jump.Kinds {
		res := analyzeSrc(t, literalSrc, cfgAll(kind))
		if v, ok := constVal(res, "S", "N"); !ok || v != 42 {
			t.Errorf("%v: N = %v,%v want 42", kind, v, ok)
		}
	}
}

const intraSrc = `
PROGRAM MAIN
  INTEGER K
  K = 6*7
  CALL S(K)
END
SUBROUTINE S(N)
  INTEGER N, X
  X = N
  RETURN
END
`

func TestIntraproceduralConstantBeyondLiteral(t *testing.T) {
	// The literal flavor misses a locally computed constant...
	res := analyzeSrc(t, intraSrc, cfgAll(jump.Literal))
	if _, ok := constVal(res, "S", "N"); ok {
		t.Error("literal flavor should miss K = 6*7")
	}
	// ...every other flavor finds it.
	for _, kind := range []jump.Kind{jump.Intraprocedural, jump.PassThrough, jump.Polynomial} {
		res := analyzeSrc(t, intraSrc, cfgAll(kind))
		if v, ok := constVal(res, "S", "N"); !ok || v != 42 {
			t.Errorf("%v: N = %v,%v want 42", kind, v, ok)
		}
	}
}

const globalSrc = `
PROGRAM MAIN
  COMMON /C/ G
  INTEGER G
  G = 5
  CALL S
END
SUBROUTINE S
  COMMON /C/ G
  INTEGER G, X
  X = G
  RETURN
END
`

func TestConstantGlobalsMissedByLiteralFlavor(t *testing.T) {
	// §3.1.1: the literal flavor "misses any constant globals which are
	// passed implicitly at the call site".
	res := analyzeSrc(t, globalSrc, cfgAll(jump.Literal))
	if _, ok := constVal(res, "S", "C.G"); ok {
		t.Error("literal flavor should miss the global")
	}
	res = analyzeSrc(t, globalSrc, cfgAll(jump.Intraprocedural))
	if v, ok := constVal(res, "S", "C.G"); !ok || v != 5 {
		t.Errorf("intraprocedural flavor: G = %v,%v want 5", v, ok)
	}
}

const passThroughSrc = `
PROGRAM MAIN
  CALL A(7)
END
SUBROUTINE A(X)
  INTEGER X
  CALL B(X)
  RETURN
END
SUBROUTINE B(Y)
  INTEGER Y
  CALL C(Y)
  RETURN
END
SUBROUTINE C(Z)
  INTEGER Z, W
  W = Z
  RETURN
END
`

func TestPassThroughChains(t *testing.T) {
	// Intraprocedural flavor propagates only one edge deep: X is 7 in A
	// but nothing flows to B or C.
	res := analyzeSrc(t, passThroughSrc, cfgAll(jump.Intraprocedural))
	if v, ok := constVal(res, "A", "X"); !ok || v != 7 {
		t.Fatalf("A.X = %v,%v", v, ok)
	}
	if _, ok := constVal(res, "C", "Z"); ok {
		t.Error("intraprocedural flavor should not reach C")
	}
	// Pass-through (and polynomial) carry it all the way down.
	for _, kind := range []jump.Kind{jump.PassThrough, jump.Polynomial} {
		res := analyzeSrc(t, passThroughSrc, cfgAll(kind))
		if v, ok := constVal(res, "C", "Z"); !ok || v != 7 {
			t.Errorf("%v: C.Z = %v,%v want 7", kind, v, ok)
		}
	}
}

const polynomialSrc = `
PROGRAM MAIN
  CALL A(10)
END
SUBROUTINE A(X)
  INTEGER X
  CALL B(2*X + 1)
  RETURN
END
SUBROUTINE B(Y)
  INTEGER Y, W
  W = Y
  RETURN
END
`

func TestPolynomialBeyondPassThrough(t *testing.T) {
	res := analyzeSrc(t, polynomialSrc, cfgAll(jump.PassThrough))
	if _, ok := constVal(res, "B", "Y"); ok {
		t.Error("pass-through flavor should miss 2*X+1")
	}
	res = analyzeSrc(t, polynomialSrc, cfgAll(jump.Polynomial))
	if v, ok := constVal(res, "B", "Y"); !ok || v != 21 {
		t.Errorf("polynomial: Y = %v,%v want 21", v, ok)
	}
}

// ---------------------------------------------------------------------------
// Meet behavior

func TestConflictingCallSitesMeetToBottom(t *testing.T) {
	res := analyzeSrc(t, `
PROGRAM MAIN
  CALL S(1)
  CALL S(2)
  CALL T(3)
  CALL T(3)
END
SUBROUTINE S(N)
  INTEGER N, X
  X = N
  RETURN
END
SUBROUTINE T(N)
  INTEGER N, X
  X = N
  RETURN
END
`, cfgAll(jump.Polynomial))
	if _, ok := constVal(res, "S", "N"); ok {
		t.Error("S.N receives 1 and 2: not constant")
	}
	if v, ok := constVal(res, "T", "N"); !ok || v != 3 {
		t.Errorf("T.N = %v,%v want 3", v, ok)
	}
}

func TestNeverCalledProcedureStaysTop(t *testing.T) {
	res := analyzeSrc(t, `
PROGRAM MAIN
  INTEGER X
  X = 0
END
SUBROUTINE DEADPROC(N)
  INTEGER N, X
  X = N
  RETURN
END
`, cfgAll(jump.Polynomial))
	pr := res.Procs["DEADPROC"]
	if !pr.FormalVals[0].IsTop() {
		t.Errorf("never-called formal should stay ⊤, got %v", pr.FormalVals[0])
	}
	if len(pr.Constants) != 0 {
		t.Errorf("⊤ values are not constants: %v", pr.Constants)
	}
}

// ---------------------------------------------------------------------------
// Return jump functions

// oceanSrc models the paper's ocean result: an initialization routine
// assigns constants to COMMON variables; with return jump functions the
// analyzer knows the globals' values after the CALL INIT site and
// propagates them to the rest of the program.
const oceanSrc = `
PROGRAM MAIN
  COMMON /STATE/ NX, NY, NITER
  INTEGER NX, NY, NITER
  CALL INIT
  CALL SOLVE
END
SUBROUTINE INIT
  COMMON /STATE/ NX, NY, NITER
  INTEGER NX, NY, NITER
  NX = 64
  NY = 32
  NITER = 100
  RETURN
END
SUBROUTINE SOLVE
  COMMON /STATE/ NX, NY, NITER
  INTEGER NX, NY, NITER
  INTEGER I, J, S
  S = 0
  DO I = 1, NX
    DO J = 1, NY
      S = S + I*J
    ENDDO
  ENDDO
  WRITE(*,*) S
  RETURN
END
`

func TestReturnJumpFunctionsInitRoutine(t *testing.T) {
	with := analyzeSrc(t, oceanSrc, Config{Jump: jump.Polynomial, ReturnJFs: true, MOD: true})
	if v, ok := constVal(with, "SOLVE", "STATE.NX"); !ok || v != 64 {
		t.Fatalf("with return JFs: SOLVE sees NX = %v,%v want 64", v, ok)
	}
	if v, ok := constVal(with, "SOLVE", "STATE.NITER"); !ok || v != 100 {
		t.Fatalf("with return JFs: NITER = %v,%v", v, ok)
	}

	without := analyzeSrc(t, oceanSrc, Config{Jump: jump.Polynomial, ReturnJFs: false, MOD: true})
	if _, ok := constVal(without, "SOLVE", "STATE.NX"); ok {
		t.Fatal("without return JFs the INIT effect is invisible")
	}
	if without.TotalSubstituted >= with.TotalSubstituted {
		t.Errorf("return JFs should increase substitutions: %d vs %d",
			without.TotalSubstituted, with.TotalSubstituted)
	}
}

func TestReturnJFThroughFunctionResult(t *testing.T) {
	res := analyzeSrc(t, `
PROGRAM MAIN
  INTEGER X
  X = SEVEN(0)
  CALL S(X)
END
INTEGER FUNCTION SEVEN(D)
  INTEGER D
  SEVEN = 7
  RETURN
END
SUBROUTINE S(N)
  INTEGER N, W
  W = N
  RETURN
END
`, cfgAll(jump.Polynomial))
	if v, ok := constVal(res, "S", "N"); !ok || v != 7 {
		t.Errorf("function-result return JF: N = %v,%v want 7", v, ok)
	}
}

func TestReturnJFDependingOnCallerParamIsBottom(t *testing.T) {
	// §3.2: "return jump functions that depend on parameters to the
	// calling procedure can never be evaluated as constant."
	res := analyzeSrc(t, `
PROGRAM MAIN
  INTEGER X
  READ X
  CALL MID(X)
END
SUBROUTINE MID(P)
  INTEGER P, Y
  Y = 0
  CALL SETTER(Y, P)
  CALL SINK(Y)
  RETURN
END
SUBROUTINE SETTER(OUT, V)
  INTEGER OUT, V
  OUT = V
  RETURN
END
SUBROUTINE SINK(N)
  INTEGER N, W
  W = N
  RETURN
END
`, cfgAll(jump.Polynomial))
	// Y after SETTER is R(OUT) = V = P (a caller parameter): unknown,
	// even though P itself flows around; SINK.N must not be constant.
	if _, ok := constVal(res, "SINK", "N"); ok {
		t.Error("return JF over caller parameter must evaluate to ⊥")
	}
}

func TestReturnJFConstantArgument(t *testing.T) {
	// But when the actual is an intraprocedural constant, the same
	// return jump function folds.
	res := analyzeSrc(t, `
PROGRAM MAIN
  INTEGER Y
  Y = 0
  CALL SETTER(Y, 9)
  CALL SINK(Y)
END
SUBROUTINE SETTER(OUT, V)
  INTEGER OUT, V
  OUT = V
  RETURN
END
SUBROUTINE SINK(N)
  INTEGER N, W
  W = N
  RETURN
END
`, cfgAll(jump.Polynomial))
	if v, ok := constVal(res, "SINK", "N"); !ok || v != 9 {
		t.Errorf("SINK.N = %v,%v want 9", v, ok)
	}
}

// ---------------------------------------------------------------------------
// MOD information (Table 3, columns 1 vs 2)

const modSrc = `
PROGRAM MAIN
  COMMON /C/ G
  INTEGER G, K
  G = 5
  K = 3
  CALL NOP(K)
  CALL USER
END
SUBROUTINE NOP(T)
  INTEGER T, L
  L = T
  RETURN
END
SUBROUTINE USER
  COMMON /C/ G
  INTEGER G, X
  X = G
  RETURN
END
`

func TestMODInformationMatters(t *testing.T) {
	with := analyzeSrc(t, modSrc, Config{Jump: jump.Polynomial, ReturnJFs: true, MOD: true})
	if v, ok := constVal(with, "USER", "C.G"); !ok || v != 5 {
		t.Fatalf("with MOD: G = %v,%v want 5", v, ok)
	}
	// Without MOD, the CALL NOP(K) clobbers G from the analyzer's view
	// — but the return jump function of NOP (identity on G) rescues it.
	// Remove return JFs too to see the raw effect.
	without := analyzeSrc(t, modSrc, Config{Jump: jump.Polynomial, ReturnJFs: false, MOD: false})
	if _, ok := constVal(without, "USER", "C.G"); ok {
		t.Fatal("without MOD or return JFs, the call kills G")
	}
	if without.TotalSubstituted >= with.TotalSubstituted {
		t.Errorf("MOD should increase substitutions: %d vs %d",
			without.TotalSubstituted, with.TotalSubstituted)
	}
}

// ---------------------------------------------------------------------------
// Complete propagation (Table 3, column 3)

// completeSrc models the paper's mechanism: DBG is an interprocedural
// constant 0; the guarded READ of G is dead; removing it makes G's
// return jump function in INIT constant, exposing G = 5 to USER.
const completeSrc = `
PROGRAM MAIN
  COMMON /C/ G
  INTEGER G
  CALL INIT(0)
  CALL USER
END
SUBROUTINE INIT(DBG)
  INTEGER DBG
  COMMON /C/ G
  INTEGER G
  G = 5
  IF (DBG .NE. 0) THEN
    READ G
  ENDIF
  RETURN
END
SUBROUTINE USER
  COMMON /C/ G
  INTEGER G, X, Y
  X = G
  Y = G + G*2
  RETURN
END
`

func TestCompletePropagationExposesConstants(t *testing.T) {
	plain := analyzeSrc(t, completeSrc, Config{Jump: jump.Polynomial, ReturnJFs: true, MOD: true})
	if _, ok := constVal(plain, "USER", "C.G"); ok {
		t.Fatal("plain propagation should not see through the guarded READ")
	}
	complete := analyzeSrc(t, completeSrc, Config{Jump: jump.Polynomial, ReturnJFs: true, MOD: true, Complete: true})
	if v, ok := constVal(complete, "USER", "C.G"); !ok || v != 5 {
		t.Fatalf("complete propagation: G = %v,%v want 5", v, ok)
	}
	if complete.DCERounds != 1 {
		t.Errorf("DCE rounds = %d, want 1 (paper: one pass suffices)", complete.DCERounds)
	}
	if complete.TotalSubstituted <= plain.TotalSubstituted {
		t.Errorf("complete should add substitutions: %d vs %d",
			complete.TotalSubstituted, plain.TotalSubstituted)
	}
}

// ---------------------------------------------------------------------------
// The subset property (§3.1): each flavor finds at least what the
// simpler flavors find, on every program in this file.

func TestFlavorSubsetProperty(t *testing.T) {
	srcs := map[string]string{
		"literal": literalSrc, "intra": intraSrc, "global": globalSrc,
		"passthrough": passThroughSrc, "polynomial": polynomialSrc,
		"ocean": oceanSrc, "mod": modSrc, "complete": completeSrc,
	}
	order := []jump.Kind{jump.Literal, jump.Intraprocedural, jump.PassThrough, jump.Polynomial}
	for name, src := range srcs {
		prev := -1
		for _, kind := range order {
			res := analyzeSrc(t, src, cfgAll(kind))
			if res.TotalSubstituted < prev {
				t.Errorf("%s: %v finds fewer substitutions than a simpler flavor (%d < %d)",
					name, kind, res.TotalSubstituted, prev)
			}
			prev = res.TotalSubstituted
		}
	}
}

// ---------------------------------------------------------------------------
// Substitution counting

func TestSubstitutionCountsReferences(t *testing.T) {
	res := analyzeSrc(t, `
PROGRAM MAIN
  CALL S(4)
END
SUBROUTINE S(N)
  INTEGER N, A, B, C
  A = N + 1
  B = N * N
  C = 7
  RETURN
END
`, cfgAll(jump.Polynomial))
	// N is referenced three times (N+1 once, N*N twice).
	if got := res.Procs["S"].Substituted; got != 3 {
		t.Errorf("substitutions = %d, want 3", got)
	}
}

func TestKnownButIrrelevantCountsZero(t *testing.T) {
	// Metzger–Stroud: constants that are known but never referenced
	// count zero.
	res := analyzeSrc(t, `
PROGRAM MAIN
  COMMON /C/ G
  INTEGER G
  G = 5
  CALL S(1)
END
SUBROUTINE S(N)
  INTEGER N, X
  X = N
  RETURN
END
`, cfgAll(jump.Polynomial))
	pr := res.Procs["S"]
	// G is in CONSTANTS(S) but unreferenced.
	if _, ok := constVal(res, "S", "C.G"); !ok {
		t.Fatal("G should be a known constant in S")
	}
	// Only the N reference counts.
	if pr.Substituted != 1 {
		t.Errorf("substitutions = %d, want 1", pr.Substituted)
	}
}

func TestByRefModifiedActualNotSubstituted(t *testing.T) {
	res := analyzeSrc(t, `
PROGRAM MAIN
  CALL OUTER(3)
END
SUBROUTINE OUTER(N)
  INTEGER N, X
  X = N
  CALL CLOBBER(N)
  RETURN
END
SUBROUTINE CLOBBER(A)
  INTEGER A
  READ A
  RETURN
END
`, cfgAll(jump.Polynomial))
	// N = 3 on entry to OUTER; the X = N reference substitutes, but the
	// by-reference actual at CALL CLOBBER(N) cannot (CLOBBER writes A).
	if got := res.Procs["OUTER"].Substituted; got != 1 {
		t.Errorf("substitutions = %d, want 1", got)
	}
}

// ---------------------------------------------------------------------------
// Robustness

func TestRecursionIsSound(t *testing.T) {
	res := analyzeSrc(t, `
PROGRAM MAIN
  INTEGER R
  R = FACT(5)
  WRITE(*,*) R
END
INTEGER FUNCTION FACT(N)
  INTEGER N
  IF (N .LE. 1) THEN
    FACT = 1
  ELSE
    FACT = N * FACT(N-1)
  ENDIF
  RETURN
END
`, cfgAll(jump.Polynomial))
	// N is 5 at the outer call but N-1 varies: the meet is ⊥. The
	// analysis must terminate and stay sound.
	if _, ok := constVal(res, "FACT", "N"); ok {
		t.Error("recursive N is not constant")
	}
}

func TestSolverConvergesQuickly(t *testing.T) {
	res := analyzeSrc(t, passThroughSrc, cfgAll(jump.PassThrough))
	// 4 procedures; the worklist should settle in a handful of passes.
	if res.SolverPasses > 12 {
		t.Errorf("solver passes = %d, suspiciously many", res.SolverPasses)
	}
	if res.JFEvaluations == 0 {
		t.Error("no JF evaluations recorded")
	}
}

func TestAnalyzeIsRepeatable(t *testing.T) {
	sp := mustSema(t, oceanSrc)
	a := Analyze(sp, cfgAll(jump.Polynomial))
	b := Analyze(sp, cfgAll(jump.Polynomial))
	if a.TotalSubstituted != b.TotalSubstituted || a.TotalConstants != b.TotalConstants {
		t.Errorf("nondeterministic results: %d/%d vs %d/%d",
			a.TotalSubstituted, a.TotalConstants, b.TotalSubstituted, b.TotalConstants)
	}
}
